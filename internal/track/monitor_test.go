package track

import (
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"sync"
	"testing"

	"mixedclock/internal/detect"
	"mixedclock/internal/event"
	"mixedclock/internal/predicate"
	"mixedclock/internal/trace"
	"mixedclock/internal/vclock"
)

// oddPred is the monitor-equivalence predicate: threads 0 and 1 are both
// mid-"transaction" (odd local event count). It exercises the Executed
// accessor and is satisfiable-but-not-trivial on the generator workloads.
func oddPred(s *predicate.State) bool {
	return s.Executed(0)%2 == 1 && s.Executed(1)%2 == 1
}

// sortedPairs normalizes a pair set for set-equality comparison; the
// streaming scanner emits at the second event, the offline scan at the
// first, so only the sets match, not the orders.
func sortedPairs(ps []detect.Pair) []detect.Pair {
	out := append([]detect.Pair(nil), ps...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].First.Index != out[j].First.Index {
			return out[i].First.Index < out[j].First.Index
		}
		return out[i].Second.Index < out[j].Second.Index
	})
	return out
}

// TestMonitorMatchesOffline is the online-detection equivalence property:
// for every generator workload, on both backends, a Monitor with an
// unbounded window fed through real seals must agree exactly with the
// offline analyses over the final snapshot — census, schedule-sensitive
// pair set, predicate-watch verdict and witness, and happened-before
// answers.
func TestMonitorMatchesOffline(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	for _, wl := range trace.Workloads() {
		src, err := trace.Generate(wl, trace.Config{Threads: 6, Objects: 6, Events: 240}, rng)
		if err != nil {
			t.Fatal(err)
		}
		for _, backend := range []vclock.Backend{vclock.BackendFlat, vclock.BackendTree} {
			t.Run(fmt.Sprintf("%v/%v", wl, backend), func(t *testing.T) {
				tr := NewTracker(
					WithBackend(backend),
					WithSpill(SpillPolicy{Dir: t.TempDir(), SealEvents: 75}),
				)
				m := tr.NewMonitor(MonitorPolicy{})
				m.WatchPossibly("both-odd", oddPred)
				defer m.Close()

				replayTrace(t, tr, src, -1)
				if err := m.Sync(); err != nil {
					t.Fatal(err)
				}
				if err := m.Err(); err != nil {
					t.Fatal(err)
				}

				full, stamps := tr.Snapshot()
				stats := m.Stats()
				if stats.Consumed != full.Len() {
					t.Fatalf("consumed %d of %d events", stats.Consumed, full.Len())
				}
				if want := detect.TakeCensus(stamps); stats.Census != want || stats.CensusSkipped != 0 {
					t.Fatalf("census %+v (skipped %d), want %+v", stats.Census, stats.CensusSkipped, want)
				}
				if stats.CoverLowerBound > stats.ClockWidth {
					t.Fatalf("König lower bound %d exceeds live clock width %d", stats.CoverLowerBound, stats.ClockWidth)
				}

				var online []detect.Pair
				var possibly []Detection
				for _, d := range m.Detections() {
					switch d.Kind {
					case DetectPair:
						online = append(online, detect.Pair{First: d.Other, Second: d.Event})
					case DetectPossibly:
						possibly = append(possibly, d)
					}
				}
				if want := ScheduleSensitivePairsOffline(full); !reflect.DeepEqual(sortedPairs(online), want) {
					t.Fatalf("pair sets differ: online %d, offline %d", len(online), len(want))
				}

				witness, found, err := predicate.Possibly(full, oddPred, 0)
				if err != nil {
					t.Fatal(err)
				}
				if found != (len(possibly) == 1) {
					t.Fatalf("possibly: online fired=%v, offline found=%v", len(possibly) == 1, found)
				}
				if found && possibly[0].Witness.String() != witness.String() {
					t.Fatalf("witness %v, want %v", possibly[0].Witness, witness)
				}

				for trial := 0; trial < 200; trial++ {
					i, j := rng.Intn(full.Len()), rng.Intn(full.Len())
					got, ok := m.HappenedBefore(i, j)
					if !ok {
						t.Fatalf("unbounded window refused query (%d,%d)", i, j)
					}
					if want := stamps[i].Less(stamps[j]); got != want {
						t.Fatalf("hb(%d,%d)=%v, want %v", i, j, got, want)
					}
				}
			})
		}
	}
}

// ScheduleSensitivePairsOffline is the sorted offline pair set; a seam so
// the equivalence test reads symmetrically.
func ScheduleSensitivePairsOffline(tr *event.Trace) []detect.Pair {
	return sortedPairs(detect.ScheduleSensitivePairs(tr))
}

// TestMonitorWatchOrder checks order-watch semantics on a hand-built
// history: a write racing the guarded write fires with exact provenance,
// a causally ordered one does not, and the first detection arms a
// consistent recovery line.
func TestMonitorWatchOrder(t *testing.T) {
	tr := NewTracker()
	m := tr.NewMonitor(MonitorPolicy{})
	guard := tr.NewObject("guard")
	data := tr.NewObject("data")
	m.WatchOrder("data-after-guard",
		func(e event.Event) bool { return e.Object == 0 && e.Op == event.OpWrite },
		func(e event.Event) bool { return e.Object == 1 && e.Op == event.OpWrite },
	)
	a := tr.NewThread("a")
	b := tr.NewThread("b")

	a.Write(guard, nil)
	b.Write(data, nil) // concurrent with a's guard write: violation
	b.Read(guard, nil) // picks up a's write: causal edge a -> b
	b.Write(data, nil) // ordered after the guard write: clean
	if err := m.Sync(); err != nil {
		t.Fatal(err)
	}
	ds := m.Detections()
	var orders []Detection
	for _, d := range ds {
		if d.Kind == DetectOrder {
			orders = append(orders, d)
		}
	}
	if len(orders) != 1 {
		t.Fatalf("got %d order detections, want 1: %v", len(orders), ds)
	}
	d := orders[0]
	if d.Index != 1 || d.Other.Index != 0 || d.Epoch != 0 {
		t.Fatalf("provenance: %+v", d)
	}
	line, ok := m.RecoveryLine()
	if !ok {
		t.Fatal("recovery line not armed after order detection")
	}
	full, _ := tr.Snapshot()
	if got := line.String(); got == "" {
		t.Fatalf("empty recovery line for %d-event history", full.Len())
	}
}

// TestMonitorOverlapsCommits races a live monitor against concurrent
// committers with auto-sealing armed: sealed-segment evaluation must not
// stop the world (commits keep landing while the monitor consumes), and
// after a final Seal+Sync the monitor has evaluated every committed record
// with in-range provenance. Run under -race and -count in CI.
func TestMonitorOverlapsCommits(t *testing.T) {
	tr := NewTracker(WithSpill(SpillPolicy{Dir: t.TempDir(), SealEvents: 64}))
	const nWorkers, nObjects, opsPer = 6, 4, 300
	objects := make([]*Object, nObjects)
	for i := range objects {
		objects[i] = tr.NewObject(fmt.Sprintf("o%d", i))
	}
	var cbMu sync.Mutex
	var viaCallback int
	m := tr.NewMonitor(MonitorPolicy{
		Window: 128,
		OnDetection: func(d Detection) {
			cbMu.Lock()
			viaCallback++
			cbMu.Unlock()
		},
	})
	defer m.Close()

	var wg sync.WaitGroup
	for w := 0; w < nWorkers; w++ {
		th := tr.NewThread(fmt.Sprintf("w%d", w))
		wg.Add(1)
		go func(th *Thread, w int) {
			defer wg.Done()
			for i := 0; i < opsPer; i++ {
				if (w+i)%3 == 0 {
					th.Read(objects[(w+i)%nObjects], nil)
				} else {
					th.Write(objects[(w+i)%nObjects], nil)
				}
			}
		}(th, w)
	}
	wg.Wait()
	if err := tr.Seal(); err != nil {
		t.Fatal(err)
	}
	if err := m.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := m.Err(); err != nil {
		t.Fatal(err)
	}
	total := tr.Events()
	if total != nWorkers*opsPer {
		t.Fatalf("committed %d events, want %d", total, nWorkers*opsPer)
	}
	stats := m.Stats()
	if stats.Consumed != total {
		t.Fatalf("monitor consumed %d of %d", stats.Consumed, total)
	}
	ds := m.Detections()
	for _, d := range ds {
		if d.Index < 0 || d.Index >= total {
			t.Fatalf("detection index %d out of range [0,%d): %v", d.Index, total, d)
		}
	}
	// The goroutine may still be mid-delivery for a seal-triggered batch
	// when Sync returns; Close joins it, after which every detection has
	// gone through the callback.
	m.Close()
	cbMu.Lock()
	defer cbMu.Unlock()
	if viaCallback != len(ds) {
		t.Fatalf("callback saw %d detections, Detections() has %d", viaCallback, len(ds))
	}
	if err := tr.Err(); err != nil {
		t.Fatal(err)
	}
}
