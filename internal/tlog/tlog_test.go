package tlog

import (
	"bytes"
	"errors"
	"io"
	"math/rand"
	"testing"

	"mixedclock/internal/clock"
	"mixedclock/internal/core"
	"mixedclock/internal/event"
	"mixedclock/internal/vclock"
)

func sampleComputation(t *testing.T) (*event.Trace, []vclock.Vector) {
	t.Helper()
	rng := rand.New(rand.NewSource(5))
	tr := event.NewTrace()
	for i := 0; i < 60; i++ {
		op := event.OpWrite
		if rng.Intn(3) == 0 {
			op = event.OpRead
		}
		tr.Append(event.ThreadID(rng.Intn(5)), event.ObjectID(rng.Intn(5)), op)
	}
	stamps, err := clock.RunAndValidate(tr, core.AnalyzeTrace(tr).NewClock())
	if err != nil {
		t.Fatal(err)
	}
	return tr, stamps
}

func TestRoundTrip(t *testing.T) {
	tr, stamps := sampleComputation(t)
	var buf bytes.Buffer
	if err := WriteAll(&buf, tr, stamps); err != nil {
		t.Fatal(err)
	}
	gotTr, gotStamps, err := ReadAll(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if gotTr.Len() != tr.Len() {
		t.Fatalf("events: %d, want %d", gotTr.Len(), tr.Len())
	}
	for i := 0; i < tr.Len(); i++ {
		if gotTr.At(i) != tr.At(i) {
			t.Fatalf("event %d: %+v != %+v", i, gotTr.At(i), tr.At(i))
		}
		if !gotStamps[i].Equal(stamps[i]) {
			t.Fatalf("stamp %d: %v != %v", i, gotStamps[i], stamps[i])
		}
	}
}

func TestEmptyStream(t *testing.T) {
	tr, stamps, err := ReadAll(bytes.NewReader(nil))
	if err != nil {
		t.Fatalf("empty stream: %v", err)
	}
	if tr.Len() != 0 || len(stamps) != 0 {
		t.Fatal("empty stream produced data")
	}
}

func TestWriterLazyHeader(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 0 {
		t.Fatalf("abandoned writer left %d bytes", buf.Len())
	}
}

func TestBadMagic(t *testing.T) {
	if _, _, err := ReadAll(bytes.NewReader([]byte("NOTALOG!data"))); !errors.Is(err, ErrBadMagic) {
		t.Fatalf("want ErrBadMagic, got %v", err)
	}
}

func TestTruncationRecoversPrefix(t *testing.T) {
	tr, stamps := sampleComputation(t)
	var buf bytes.Buffer
	if err := WriteAll(&buf, tr, stamps); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()

	// Cut the log at many points; every cut must yield a clean prefix and
	// ErrTruncated (or a clean EOF exactly at record boundaries).
	for cutAt := len(magic) + 1; cutAt < len(full); cutAt += 7 {
		gotTr, gotStamps, err := ReadAll(bytes.NewReader(full[:cutAt]))
		if err != nil && !errors.Is(err, ErrTruncated) {
			t.Fatalf("cut %d: unexpected error %v", cutAt, err)
		}
		if len(gotStamps) != gotTr.Len() {
			t.Fatalf("cut %d: %d stamps for %d events", cutAt, len(gotStamps), gotTr.Len())
		}
		for i := 0; i < gotTr.Len(); i++ {
			if gotTr.At(i) != tr.At(i) || !gotStamps[i].Equal(stamps[i]) {
				t.Fatalf("cut %d: prefix record %d corrupted", cutAt, i)
			}
		}
	}
}

func TestWriteAllLengthMismatch(t *testing.T) {
	tr, stamps := sampleComputation(t)
	var buf bytes.Buffer
	if err := WriteAll(&buf, tr, stamps[:3]); err == nil {
		t.Fatal("length mismatch accepted")
	}
}

func TestAppendRejectsNegative(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.Append(event.Event{Thread: -1}, nil); err == nil {
		t.Fatal("negative thread accepted")
	}
}

func TestReaderNextSequencing(t *testing.T) {
	tr, stamps := sampleComputation(t)
	var buf bytes.Buffer
	if err := WriteAll(&buf, tr, stamps); err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; ; i++ {
		e, _, err := r.Next()
		if err == io.EOF {
			if i != tr.Len() {
				t.Fatalf("EOF after %d records, want %d", i, tr.Len())
			}
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if e.Index != i {
			t.Fatalf("record %d has index %d", i, e.Index)
		}
	}
}

func TestRecoveryLineFromTruncatedLog(t *testing.T) {
	// End-to-end crash story: a log truncated mid-write still yields a
	// usable computation whose stamps validate.
	tr, stamps := sampleComputation(t)
	var buf bytes.Buffer
	if err := WriteAll(&buf, tr, stamps); err != nil {
		t.Fatal(err)
	}
	cutBytes := buf.Bytes()[:buf.Len()*2/3]
	gotTr, gotStamps, err := ReadAll(bytes.NewReader(cutBytes))
	if err != nil && !errors.Is(err, ErrTruncated) {
		t.Fatal(err)
	}
	if gotTr.Len() == 0 {
		t.Fatal("nothing recovered")
	}
	if err := clock.Validate(gotTr, gotStamps, "recovered"); err != nil {
		t.Fatalf("recovered prefix invalid: %v", err)
	}
}

func TestCorruptFieldsRejected(t *testing.T) {
	// Hand-craft records with out-of-bounds fields; the reader must report
	// ErrCorrupt rather than allocating or wrapping around.
	encode := func(fields ...uint64) []byte {
		out := append([]byte(nil), magic[:]...)
		for _, f := range fields {
			var tmp [10]byte
			n := putUvarint(tmp[:], f)
			out = append(out, tmp[:n]...)
		}
		return out
	}
	tests := []struct {
		name string
		data []byte
	}{
		{"huge thread", encode(1 << 40)},
		{"huge object", encode(1, 1<<40)},
		{"huge op", encode(1, 1, 1<<40)},
		{"huge component count", encode(1, 1, 0, 1<<40)},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, _, err := ReadAll(bytes.NewReader(tt.data))
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("want ErrCorrupt, got %v", err)
			}
		})
	}
}

// putUvarint is binary.PutUvarint, aliased locally for the test table.
func putUvarint(buf []byte, x uint64) int {
	i := 0
	for x >= 0x80 {
		buf[i] = byte(x) | 0x80
		x >>= 7
		i++
	}
	buf[i] = byte(x)
	return i + 1
}

func TestCompactness(t *testing.T) {
	// The binary log should be much smaller than the JSONL trace alone,
	// despite carrying the timestamps too.
	tr, stamps := sampleComputation(t)
	var bin, jsonl bytes.Buffer
	if err := WriteAll(&bin, tr, stamps); err != nil {
		t.Fatal(err)
	}
	if err := tr.WriteJSONL(&jsonl); err != nil {
		t.Fatal(err)
	}
	if bin.Len() >= jsonl.Len() {
		t.Fatalf("binary log %dB not smaller than JSONL %dB", bin.Len(), jsonl.Len())
	}
}
