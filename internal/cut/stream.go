package cut

import (
	"mixedclock/internal/event"
	"mixedclock/internal/vclock"
)

// LineTracker maintains a recovery line incrementally over a live stamp
// stream: armed with one bad event's stamp, it classifies every subsequent
// event as clean or contaminated the moment it arrives and keeps the
// maximal consistent cut excluding the bad event's causal future — what
// RecoveryLine computes offline, without retaining the stream. State is
// O(threads): per-thread clean-prefix lengths and frozen flags.
//
// Events in epochs after the bad event's are causally after it (a Compact
// barrier separates epochs) and therefore always contaminated; events from
// the bad event's own epoch are compared by stamp (contaminated iff
// badStamp < stamp). Events streamed before arming — including every epoch
// before the bad one — must be fed through Add as well so the clean
// prefixes count them.
type LineTracker struct {
	bad      int
	badEpoch int
	badStamp vclock.Vector
	armed    bool
	per      []int
	seq      []int
	frozen   []bool
}

// NewLineTracker returns a tracker; call Arm when the bad event is known.
// Add may be called before Arm (events then count as clean).
func NewLineTracker() *LineTracker {
	return &LineTracker{bad: -1}
}

// Arm fixes the bad event. The stamp is cloned. Events already streamed
// are retroactively clean except the bad event itself, which callers arm
// at the moment it is consumed — the usual monitor flow.
func (lt *LineTracker) Arm(bad, epoch int, stamp vclock.Vector) {
	lt.bad = bad
	lt.badEpoch = epoch
	lt.badStamp = stamp.Clone()
	lt.armed = true
}

// Armed reports whether a bad event has been fixed.
func (lt *LineTracker) Armed() bool { return lt.armed }

// Bad returns the armed bad event's trace index, or -1.
func (lt *LineTracker) Bad() int { return lt.bad }

// grow extends per-thread state to cover thread t.
func (lt *LineTracker) grow(t int) {
	for len(lt.per) <= t {
		lt.per = append(lt.per, 0)
		lt.seq = append(lt.seq, 0)
		lt.frozen = append(lt.frozen, false)
	}
}

// Add consumes the next event of the stream with its epoch and (borrowed)
// stamp. Indices must arrive in trace order.
func (lt *LineTracker) Add(e event.Event, epoch int, v vclock.Vector) {
	t := int(e.Thread)
	lt.grow(t)
	contaminated := false
	if lt.armed {
		switch {
		case e.Index == lt.bad:
			contaminated = true
		case epoch > lt.badEpoch:
			contaminated = true
		case epoch == lt.badEpoch:
			contaminated = lt.badStamp.Less(v)
		}
	}
	if contaminated {
		// Contamination is closed under program order: freeze the
		// thread's clean prefix here.
		lt.frozen[t] = true
	}
	if !lt.frozen[t] {
		lt.per[t] = lt.seq[t] + 1
	}
	lt.seq[t]++
}

// Line returns the current recovery line: the maximal consistent cut of
// the events streamed so far that excludes the bad event and its causal
// future. Before Arm it is simply everything seen.
func (lt *LineTracker) Line() Cut {
	return Cut{PerThread: append([]int(nil), lt.per...)}
}
