package tlog

import (
	"bytes"
	"errors"
	"testing"

	"mixedclock/internal/event"
	"mixedclock/internal/vclock"
)

// FuzzReadAll checks the log reader never panics, returns only well-formed
// prefixes, and that accepted data re-encodes losslessly.
func FuzzReadAll(f *testing.F) {
	// Seed with a real log and a few corruptions of it.
	tr := event.NewTrace()
	tr.Append(0, 0, event.OpWrite)
	tr.Append(1, 2, event.OpRead)
	var buf bytes.Buffer
	if err := WriteAll(&buf, tr, []vclock.Vector{{1}, {1, 1}}); err != nil {
		f.Fatal(err)
	}
	good := buf.Bytes()
	f.Add(good)
	f.Add(good[:len(good)-1])
	f.Add([]byte{})
	f.Add([]byte("MVCLOG01"))
	f.Add([]byte("garbage."))
	// Delta-format seeds: a real v2 log, a truncation of it, and a bare
	// header, so the reader's reconstruction paths get fuzzed too.
	var dbuf bytes.Buffer
	if err := WriteAllDelta(&dbuf, tr, []vclock.Vector{{1}, {1, 1}}); err != nil {
		f.Fatal(err)
	}
	dgood := dbuf.Bytes()
	f.Add(dgood)
	f.Add(dgood[:len(dgood)-1])
	f.Add([]byte("MVCLOG02"))
	f.Fuzz(func(t *testing.T, data []byte) {
		gotTr, stamps, err := ReadAll(bytes.NewReader(data))
		if err != nil && !errors.Is(err, ErrTruncated) && !errors.Is(err, ErrBadMagic) && !errors.Is(err, ErrCorrupt) {
			t.Fatalf("unexpected error class: %v", err)
		}
		if gotTr == nil {
			return
		}
		if len(stamps) != gotTr.Len() {
			t.Fatalf("%d stamps for %d events", len(stamps), gotTr.Len())
		}
		if verr := gotTr.Validate(); verr != nil {
			t.Fatalf("accepted trace invalid: %v", verr)
		}
		var out bytes.Buffer
		if werr := WriteAll(&out, gotTr, stamps); werr != nil {
			t.Fatalf("re-encoding accepted log: %v", werr)
		}
		tr2, stamps2, rerr := ReadAll(&out)
		if rerr != nil {
			t.Fatalf("re-reading own output: %v", rerr)
		}
		if tr2.Len() != gotTr.Len() {
			t.Fatalf("round trip changed length")
		}
		for i := range stamps2 {
			if !stamps2[i].Equal(stamps[i]) {
				t.Fatalf("round trip changed stamp %d", i)
			}
		}
	})
}
