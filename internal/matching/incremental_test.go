package matching

import (
	"math/rand"
	"testing"

	"mixedclock/internal/bipartite"
)

// TestIncrementalMatchesHopcroftKarp inserts random edge sequences one at a
// time and checks after every insertion that the incremental matching size
// equals a from-scratch Hopcroft–Karp run on the revealed graph — the
// invariant the monitor's live cover lower bound depends on.
func TestIncrementalMatchesHopcroftKarp(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 30; trial++ {
		nT := 1 + rng.Intn(8)
		nO := 1 + rng.Intn(10)
		g := bipartite.New(nT, nO)
		inc := NewIncremental()
		edges := 1 + rng.Intn(nT*nO)
		for i := 0; i < edges; i++ {
			et, eo := rng.Intn(nT), rng.Intn(nO)
			g.AddEdge(et, eo)
			inc.AddEdge(et, eo)
			want := HopcroftKarp(g).Size()
			if inc.Size() != want {
				t.Fatalf("trial %d after edge %d (%d,%d): incremental size %d, Hopcroft-Karp %d",
					trial, i, et, eo, inc.Size(), want)
			}
		}
		if inc.Edges() != g.Edges() {
			t.Fatalf("trial %d: %d edges recorded, graph has %d", trial, inc.Edges(), g.Edges())
		}
	}
}

// TestIncrementalDuplicatesAndBounds checks duplicate edges are no-ops and
// negative IDs are rejected without panicking.
func TestIncrementalDuplicatesAndBounds(t *testing.T) {
	inc := NewIncremental()
	if !inc.AddEdge(0, 0) {
		t.Fatal("first edge should grow the matching")
	}
	if inc.AddEdge(0, 0) {
		t.Fatal("duplicate edge should not grow the matching")
	}
	if inc.Edges() != 1 {
		t.Fatalf("edges = %d, want 1", inc.Edges())
	}
	if inc.AddEdge(-1, 2) || inc.AddEdge(2, -1) {
		t.Fatal("negative IDs must be ignored")
	}
	if inc.Size() != 1 {
		t.Fatalf("size = %d, want 1", inc.Size())
	}
}

// TestIncrementalBothMatchedAugment covers the case where the new edge's
// endpoints are both already matched yet the matching can still grow — the
// augmenting path starts at a different unmatched thread and merely passes
// through the new edge.
func TestIncrementalBothMatchedAugment(t *testing.T) {
	inc := NewIncremental()
	// t0-o0, t1-o1 matched; t2 only reaches o0; t1 also reaches o2.
	inc.AddEdge(0, 0)
	inc.AddEdge(1, 1)
	inc.AddEdge(2, 0)
	inc.AddEdge(1, 2)
	if inc.Size() != 3 {
		// With edges so far a perfect 3-matching may already exist
		// depending on augmentation order; establish the both-matched
		// scenario explicitly below instead of asserting here.
		t.Logf("size after setup: %d", inc.Size())
	}
	// Fresh instance with a forced shape: t0-o0 and t1-o1 matched, then
	// edge (t0,o1)... build the classic chain t2-o0-t0-o1-t1-o2.
	inc = NewIncremental()
	inc.AddEdge(0, 0) // matched t0-o0
	inc.AddEdge(1, 1) // matched t1-o1
	inc.AddEdge(2, 0) // t2 blocked: o0 taken, no augment beyond t0
	inc.AddEdge(1, 2) // t1 gains o2 (no growth yet: t1 matched, both ends free? o2 free -> no, matching can't grow: t2 still stuck)
	before := inc.Size()
	grew := inc.AddEdge(0, 1) // both t0 and o1 matched; unlocks t2-o0-t0-o1-t1-o2
	if !grew || inc.Size() != before+1 {
		t.Fatalf("both-matched edge should augment: grew=%v size %d -> %d", grew, before, inc.Size())
	}
}
