package experiment

import (
	"testing"
)

// Small, fast option sets for unit tests; the paper-scale reproductions run
// in the benchmarks and in TestPaperHeadlineClaims below.
func quickOpts() Options {
	return Options{
		Trials:     3,
		Seed:       17,
		Nodes:      20,
		Density:    0.05,
		Densities:  []float64{0.02, 0.1, 0.5},
		NodeCounts: []int{10, 30, 50},
	}
}

func TestFig4Shape(t *testing.T) {
	uni, non, err := Fig4(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range []*Result{uni, non} {
		if len(r.X) != 3 || len(r.Series) != 4 {
			t.Fatalf("result shape wrong: %d x, %d series", len(r.X), len(r.Series))
		}
		for _, s := range r.Series {
			if len(s.Values) != len(r.X) {
				t.Fatalf("series %s has %d values for %d x", s.Name, len(s.Values), len(r.X))
			}
			for i, v := range s.Values {
				if v < 0 || v > 40 {
					t.Fatalf("series %s value %f at %d out of range", s.Name, v, i)
				}
			}
		}
	}
}

func TestFig4Deterministic(t *testing.T) {
	u1, _, err := Fig4(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	u2, _, err := Fig4(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	for si := range u1.Series {
		for i := range u1.Series[si].Values {
			if u1.Series[si].Values[i] != u2.Series[si].Values[i] {
				t.Fatalf("same options, different values at series %d point %d", si, i)
			}
		}
	}
}

func TestFig5Shape(t *testing.T) {
	uni, non, err := Fig5(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(uni.X) != 3 || len(non.X) != 3 {
		t.Fatal("x axis wrong")
	}
	// Sizes grow with node count for every mechanism.
	for _, s := range uni.Series {
		if s.Values[0] > s.Values[2] {
			t.Errorf("series %s not growing with nodes: %v", s.Name, s.Values)
		}
	}
}

func TestFig6OfflineIsFloor(t *testing.T) {
	r, err := Fig6(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	for i := range r.X {
		off, ok := r.Get(seriesOffline, i)
		if !ok {
			t.Fatal("offline series missing")
		}
		for _, s := range r.Series {
			if s.Values[i] < off-1e-9 {
				t.Fatalf("series %s beat the offline optimum at point %d: %f < %f",
					s.Name, i, s.Values[i], off)
			}
		}
	}
}

func TestFig7OfflineIsFloor(t *testing.T) {
	r, err := Fig7(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	for i := range r.X {
		off, _ := r.Get(seriesOffline, i)
		for _, s := range r.Series {
			if s.Values[i] < off-1e-9 {
				t.Fatalf("series %s beat the offline optimum at point %d", s.Name, i)
			}
		}
	}
}

// TestPaperHeadlineClaims reruns the paper's setups at full scale (50 nodes
// per side etc.) and asserts the qualitative claims of §V, with measured
// windows from our own implementation where the paper quotes numbers. The
// full paper-vs-measured comparison, including where absolute values
// deviate and why, is recorded in EXPERIMENTS.md.
func TestPaperHeadlineClaims(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale reproduction; skipped with -short")
	}
	opt := Options{Trials: 10, Seed: 2019, Densities: []float64{0.02, 0.05, 0.5}}

	t.Run("fig4 low density favors popularity", func(t *testing.T) {
		uni, non, err := Fig4(opt)
		if err != nil {
			t.Fatal(err)
		}
		// Claim 1: at low density Random/Popularity beat Naive (=50); past
		// the crossover Naive wins.
		for _, r := range []*Result{uni, non} {
			naive, _ := r.Get(seriesNaive, 0)
			if naive != 50 {
				t.Fatalf("naive series should be the constant 50, got %.1f", naive)
			}
			for _, name := range []string{seriesRandom, seriesPopularity} {
				low, _ := r.Get(name, 0) // density 0.02
				if low >= naive {
					t.Errorf("%s density 0.02: %s %.1f not below naive 50", r.Title, name, low)
				}
				high, _ := r.Get(name, 2) // density 0.5
				if high <= naive {
					t.Errorf("%s density 0.5: %s %.1f should exceed naive 50 (crossover)",
						r.Title, name, high)
				}
			}
		}
		// Claim 2: the nonuniform scenario rewards Popularity — much
		// smaller clocks than on uniform graphs at the same density.
		popU, _ := uni.Get(seriesPopularity, 1) // d=0.05, measured ≈55
		popN, _ := non.Get(seriesPopularity, 1) // d=0.05, measured ≈34
		if popN >= popU {
			t.Errorf("nonuniform advantage missing: popularity %.1f (nonuniform) vs %.1f (uniform)",
				popN, popU)
		}
		// Claim 3: Popularity is slightly better than Random (it covers
		// more future edges per added component).
		randN, _ := non.Get(seriesRandom, 1)
		if popN > randN+1 {
			t.Errorf("popularity %.1f clearly worse than random %.1f on nonuniform graphs",
				popN, randN)
		}
	})

	t.Run("fig6 offline beats naive at n=50", func(t *testing.T) {
		r, err := Fig6(Options{Trials: 10, Seed: 2019, Densities: []float64{0.03, 0.05}})
		if err != nil {
			t.Fatal(err)
		}
		// Paper callout: naive 50 → offline ≈35 at d=0.05. Our realized
		// Erdős–Rényi matchings are denser (measured ≈43 at 0.05; the
		// paper's 35 sits at ≈0.03 on our curve — see EXPERIMENTS.md).
		off05, _ := r.Get(seriesOffline, 1)
		if off05 < 38 || off05 > 48 {
			t.Errorf("offline at d=0.05 = %.1f outside measured window [38, 48]", off05)
		}
		off03, _ := r.Get(seriesOffline, 0)
		if off03 < 30 || off03 > 39 {
			t.Errorf("offline at d=0.03 = %.1f outside [30, 39] (paper's ≈35 lands here)", off03)
		}
		for i := range r.X {
			off, _ := r.Get(seriesOffline, i)
			naive, _ := r.Get(seriesNaive, i)
			active, _ := r.Get(seriesNaiveActive, i)
			if off >= naive || off > active {
				t.Errorf("d=%.2f: offline %.1f not below naive %.1f / active %.1f",
					r.X[i], off, naive, active)
			}
		}
	})

	t.Run("fig7 gap grows with nodes", func(t *testing.T) {
		r, err := Fig7(Options{Trials: 10, Seed: 2019, NodeCounts: []int{30, 70, 150}})
		if err != nil {
			t.Fatal(err)
		}
		// Paper: "as graph density or number of nodes in graph increases,
		// the gap [popularity vs optimal] is increasing".
		prevGap := -1.0
		for i := range r.X {
			off, _ := r.Get(seriesOffline, i)
			pop, _ := r.Get(seriesPopularity, i)
			naive, _ := r.Get(seriesNaive, i)
			if off > naive {
				t.Errorf("nodes=%v: offline %.1f above naive %.1f", r.X[i], off, naive)
			}
			gap := pop - off
			if gap < 0 {
				t.Errorf("nodes=%v: popularity %.1f below offline optimum %.1f", r.X[i], pop, off)
			}
			if gap <= prevGap {
				t.Errorf("gap not growing at nodes=%v: %.1f after %.1f", r.X[i], gap, prevGap)
			}
			prevGap = gap
		}
	})
}
