package core

import (
	"math/rand"
	"testing"

	"mixedclock/internal/clock"
	"mixedclock/internal/event"
	"mixedclock/internal/vclock"
)

func TestMixedClockPaperTimestamps(t *testing.T) {
	// Timestamp the Fig. 1 computation with the paper's own component
	// choice {T2, O2, O3} (components in that order) and check the update
	// rule by hand. Initially all vectors are [0,0,0].
	comps := NewComponentSet()
	comps.Add(ThreadComponent(1)) // T2 → index 0
	comps.Add(ObjectComponent(1)) // O2 → index 1
	comps.Add(ObjectComponent(2)) // O3 → index 2
	mc := NewMixedClock(comps)

	tr := paperTrace()
	stamps := clock.Run(tr, mc)
	if mc.Err() != nil {
		t.Fatalf("uncovered event: %v", mc.Err())
	}

	want := []vclock.Vector{
		{1, 0, 0}, // [T2,O1]: only T2 in cover
		{0, 1, 0}, // [T1,O2]: only O2 in cover
		{2, 0, 1}, // [T2,O3]: both T2 and O3 tick, after merging [1,0,0]
		{2, 0, 2}, // [T3,O3]: O3 ticks over [2,0,1]
		{0, 2, 0}, // [T4,O2]: O2 ticks over [0,1,0]
		{3, 3, 1}, // [T2,O2]: merge([2,0,1],[0,2,0]) then tick O2 and T2
		{3, 4, 2}, // [T3,O2]: merge([2,0,2],[3,3,1]) then tick O2
		{4, 3, 1}, // [T2,O4]: T2 ticks over [3,3,1]
	}
	for i, w := range want {
		if !stamps[i].Equal(w) {
			t.Errorf("event %d %v: stamp %v, want %v", i, tr.At(i), stamps[i], w)
		}
	}

	// The paper's §III-C example inference: [T2,O1] → [T3,O3] must follow
	// from the timestamps alone.
	if !stamps[0].Less(stamps[3]) {
		t.Errorf("[T2,O1] %v should be less than [T3,O3] %v", stamps[0], stamps[3])
	}
}

func TestMixedClockValidityOnPaperComputation(t *testing.T) {
	comps := NewComponentSet()
	comps.Add(ThreadComponent(1))
	comps.Add(ObjectComponent(1))
	comps.Add(ObjectComponent(2))
	if _, err := clock.RunAndValidate(paperTrace(), NewMixedClock(comps)); err != nil {
		t.Fatalf("paper component set invalid: %v", err)
	}
}

func TestMixedClockValidityRandom(t *testing.T) {
	// Theorem 2 as a property test: the offline mixed clock must be a valid
	// vector clock on arbitrary computations.
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 40; trial++ {
		tr := randomTrace(rng, 2+rng.Intn(6), 2+rng.Intn(6), 10+rng.Intn(60))
		a := AnalyzeTrace(tr)
		if err := a.Verify(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		mc := a.NewClock()
		if _, err := clock.RunAndValidate(tr, mc); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if mc.Err() != nil {
			t.Fatalf("trial %d: %v", trial, mc.Err())
		}
	}
}

func TestMixedClockBothEndpointsTick(t *testing.T) {
	// When both the thread and the object are components, the rule of
	// §III-C increments both.
	comps := NewComponentSet()
	it := comps.Add(ThreadComponent(0))
	io := comps.Add(ObjectComponent(0))
	mc := NewMixedClock(comps)
	v := mc.Timestamp(event.Event{Index: 0, Thread: 0, Object: 0})
	if v.At(it) != 1 || v.At(io) != 1 {
		t.Fatalf("stamp %v: both components should tick", v)
	}
}

func TestMixedClockErrOnUncoveredEvent(t *testing.T) {
	comps := NewComponentSet()
	comps.Add(ThreadComponent(0))
	mc := NewMixedClock(comps)
	mc.Timestamp(event.Event{Index: 0, Thread: 0, Object: 0}) // covered
	if mc.Err() != nil {
		t.Fatalf("covered event raised error: %v", mc.Err())
	}
	mc.Timestamp(event.Event{Index: 1, Thread: 1, Object: 0}) // uncovered
	if mc.Err() == nil {
		t.Fatal("uncovered event not reported")
	}
}

func TestMixedClockThreadObjectVectors(t *testing.T) {
	// After an event, both the thread and the object adopt the event's
	// vector (§III-C: "Both thread p and object q update their
	// mix-vector-clock to be e.v").
	comps := NewComponentSet()
	comps.Add(ThreadComponent(0))
	mc := NewMixedClock(comps)
	v := mc.Timestamp(event.Event{Index: 0, Thread: 0, Object: 2})
	if !mc.ThreadVector(0).Equal(v) {
		t.Errorf("thread vector %v != event vector %v", mc.ThreadVector(0), v)
	}
	if !mc.ObjectVector(2).Equal(v) {
		t.Errorf("object vector %v != event vector %v", mc.ObjectVector(2), v)
	}
	// Vectors returned are copies.
	tv := mc.ThreadVector(0)
	if len(tv) > 0 {
		tv[0] = 99
		if mc.ThreadVector(0).At(0) == 99 {
			t.Error("ThreadVector leaked internal storage")
		}
	}
}

func TestMixedClockStampIsCopy(t *testing.T) {
	comps := NewComponentSet()
	comps.Add(ThreadComponent(0))
	mc := NewMixedClock(comps)
	v1 := mc.Timestamp(event.Event{Index: 0, Thread: 0, Object: 0})
	v1[0] = 1000
	v2 := mc.Timestamp(event.Event{Index: 1, Thread: 0, Object: 0})
	if v2.At(0) != 2 {
		t.Fatalf("mutating a returned stamp corrupted the clock: next stamp %v", v2)
	}
}

func TestMixedClockName(t *testing.T) {
	mc := NewMixedClock(NewComponentSet())
	if mc.Name() != "mixed/offline" {
		t.Errorf("Name = %q", mc.Name())
	}
}

// Interface compliance.
var _ clock.Timestamper = (*MixedClock)(nil)
