package event

import (
	"fmt"
	"strings"
)

// Stats summarizes a trace. All fields are derived; see Summarize.
type Stats struct {
	Events  int // total operations
	Threads int // distinct threads (1 + max ID)
	Objects int // distinct objects (1 + max ID)
	Edges   int // distinct (thread, object) pairs = edges of the bipartite graph
	Reads   int
	Writes  int
	// MaxThreadOps and MaxObjectOps are the longest per-thread and
	// per-object chains; they bound the clock values any scheme can reach.
	MaxThreadOps int
	MaxObjectOps int
}

// Density is the edge density of the thread-object bipartite graph:
// Edges / (Threads × Objects). Zero for an empty trace.
func (s Stats) Density() float64 {
	if s.Threads == 0 || s.Objects == 0 {
		return 0
	}
	return float64(s.Edges) / (float64(s.Threads) * float64(s.Objects))
}

// String renders a one-line human-readable summary.
func (s Stats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%d events, %d threads, %d objects, %d edges (density %.3f), %d writes / %d reads",
		s.Events, s.Threads, s.Objects, s.Edges, s.Density(), s.Writes, s.Reads)
	return b.String()
}

// Summarize computes trace statistics in a single pass.
func (tr *Trace) Summarize() Stats {
	s := Stats{
		Events:  len(tr.events),
		Threads: tr.threads,
		Objects: tr.objects,
	}
	type pair struct {
		t ThreadID
		o ObjectID
	}
	seen := make(map[pair]struct{})
	perThread := make([]int, tr.threads)
	perObject := make([]int, tr.objects)
	for _, e := range tr.events {
		if e.Op == OpRead {
			s.Reads++
		} else {
			s.Writes++
		}
		seen[pair{e.Thread, e.Object}] = struct{}{}
		perThread[e.Thread]++
		perObject[e.Object]++
	}
	s.Edges = len(seen)
	for _, c := range perThread {
		if c > s.MaxThreadOps {
			s.MaxThreadOps = c
		}
	}
	for _, c := range perObject {
		if c > s.MaxObjectOps {
			s.MaxObjectOps = c
		}
	}
	return s
}
