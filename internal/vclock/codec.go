package vclock

import (
	"encoding/binary"
	"fmt"
)

// Binary codec for vector timestamps: a uvarint component count followed by
// one uvarint per component. Trailing zero components are trimmed before
// encoding — comparison semantics treat them as absent anyway — which makes
// encodings canonical: equal vectors (in the Compare sense) encode to equal
// bytes.

// AppendBinary appends the canonical encoding of v to dst and returns the
// extended slice.
func (v Vector) AppendBinary(dst []byte) []byte {
	n := len(v)
	for n > 0 && v[n-1] == 0 {
		n--
	}
	dst = binary.AppendUvarint(dst, uint64(n))
	for _, x := range v[:n] {
		dst = binary.AppendUvarint(dst, x)
	}
	return dst
}

// MarshalBinary encodes v canonically.
func (v Vector) MarshalBinary() ([]byte, error) {
	return v.AppendBinary(nil), nil
}

// DecodeVector decodes one vector from the front of data, returning the
// vector and the number of bytes consumed.
func DecodeVector(data []byte) (Vector, int, error) {
	n, used := binary.Uvarint(data)
	if used <= 0 {
		return nil, 0, fmt.Errorf("vclock: truncated component count")
	}
	if n > uint64(len(data)) {
		// Each component takes at least one byte; a count beyond the
		// remaining bytes is corrupt and would otherwise over-allocate.
		return nil, 0, fmt.Errorf("vclock: component count %d exceeds input", n)
	}
	total := used
	v := make(Vector, n)
	for i := range v {
		x, u := binary.Uvarint(data[total:])
		if u <= 0 {
			return nil, 0, fmt.Errorf("vclock: truncated component %d", i)
		}
		v[i] = x
		total += u
	}
	return v, total, nil
}

// UnmarshalBinary decodes a vector produced by MarshalBinary. Trailing
// unread bytes are an error, so accidental concatenation is caught.
func (v *Vector) UnmarshalBinary(data []byte) error {
	got, used, err := DecodeVector(data)
	if err != nil {
		return err
	}
	if used != len(data) {
		return fmt.Errorf("vclock: %d trailing bytes after vector", len(data)-used)
	}
	*v = got
	return nil
}
