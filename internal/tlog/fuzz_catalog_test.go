package tlog

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

// FuzzCatalogRoundTrip feeds arbitrary bytes to the catalog decoder. A
// document the decoder accepts must validate (decode enforces it), re-encode,
// and decode back to the identical catalog — the shipper-facing stability
// guarantee: nothing the tracker can publish is ambiguous, and nothing a
// half-written or hostile file contains can crash a shipper.
func FuzzCatalogRoundTrip(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte(`{"format_version":1,"generation":0,"sealed_events":0,"segments":[]}`))
	{
		var buf bytes.Buffer
		if err := EncodeCatalog(&buf, sampleCatalog()); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
	}
	f.Add([]byte(`{"format_version":1,"generation":1,"sealed_events":5,` +
		`"health":"spill failed","auto_seal_disarmed":true,` +
		`"segments":[{"epoch":0,"first_index":0,"events":5,"bytes":9,"sha256":"` +
		strings.Repeat("0f", 32) + `"}]}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		c, err := DecodeCatalog(bytes.NewReader(data))
		if err != nil {
			return // rejected cleanly — the only other acceptable outcome
		}
		if err := c.Validate(); err != nil {
			t.Fatalf("decoder accepted an invalid catalog: %v", err)
		}
		var buf bytes.Buffer
		if err := EncodeCatalog(&buf, c); err != nil {
			t.Fatalf("accepted catalog failed to re-encode: %v", err)
		}
		back, err := DecodeCatalog(&buf)
		if err != nil {
			t.Fatalf("re-encoded catalog rejected: %v", err)
		}
		if !reflect.DeepEqual(back, c) {
			t.Fatalf("round trip changed the catalog:\n got %+v\nwant %+v", back, c)
		}
	})
}
