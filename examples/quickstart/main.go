// Quickstart walks through the paper's running example (Figs. 1–3): a
// computation of four threads over four objects, its thread–object bipartite
// graph, the optimal mixed vector clock from the minimum vertex cover, and
// the per-event timestamps that order the computation.
package main

import (
	"fmt"

	"mixedclock"
)

func main() {
	// The computation of Fig. 1: every operation involves thread T2,
	// object O2, or object O3 — which is why three components suffice.
	tr := mixedclock.NewTrace()
	tr.Append(1, 0, mixedclock.OpWrite) // [T2, O1]
	tr.Append(0, 1, mixedclock.OpWrite) // [T1, O2]
	tr.Append(1, 2, mixedclock.OpWrite) // [T2, O3]
	tr.Append(2, 2, mixedclock.OpWrite) // [T3, O3]
	tr.Append(3, 1, mixedclock.OpWrite) // [T4, O2]
	tr.Append(1, 1, mixedclock.OpWrite) // [T2, O2]
	tr.Append(2, 1, mixedclock.OpWrite) // [T3, O2]
	tr.Append(1, 3, mixedclock.OpWrite) // [T2, O4]

	fmt.Println("computation (Fig. 1):")
	for _, e := range tr.Events() {
		fmt.Printf("  e%d = %v\n", e.Index, e)
	}

	// Offline algorithm (Algorithm 1): bipartite graph → maximum matching
	// → König–Egerváry minimum vertex cover → clock components.
	a := mixedclock.AnalyzeTrace(tr)
	if err := a.Verify(); err != nil {
		panic(err)
	}
	fmt.Printf("\nthread-object bipartite graph (Fig. 2): %v\n", a.Graph)
	fmt.Printf("maximum matching size:  %d\n", a.Matching.Size())
	fmt.Printf("minimum vertex cover:   %v\n", a.Cover)
	fmt.Printf("mixed clock components: %v  (thread clock would need 4, object clock 4)\n",
		a.Components)

	// Timestamp every event (Fig. 3) and answer ordering queries.
	stamps := mixedclock.Run(tr, a.NewClock())
	fmt.Println("\ntimestamps (Fig. 3):")
	for i, v := range stamps {
		fmt.Printf("  e%d %v  %v\n", i, tr.At(i), v)
	}

	fmt.Println("\nordering queries, answered from timestamps alone:")
	query(stamps, tr, 0, 3) // paper's example: [T2,O1] → [T3,O3]
	query(stamps, tr, 0, 1)
	query(stamps, tr, 4, 2)

	// Sanity: the mixed clock is a valid vector clock for this computation.
	if err := mixedclock.Validate(tr, stamps, "quickstart"); err != nil {
		panic(err)
	}
	fmt.Println("\nvalidated: s → t ⇔ s.V < t.V for all event pairs (Theorem 2)")
}

func query(stamps []mixedclock.Vector, tr *mixedclock.Trace, i, j int) {
	rel := "is concurrent with"
	switch {
	case stamps[i].Less(stamps[j]):
		rel = "happened before"
	case stamps[j].Less(stamps[i]):
		rel = "happened after"
	}
	fmt.Printf("  e%d %v %s e%d %v\n", i, tr.At(i), rel, j, tr.At(j))
}
