package track

import (
	"bytes"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"

	"mixedclock/internal/event"
	"mixedclock/internal/tlog"
	"mixedclock/internal/vclock"
)

// SpillPolicy bounds a long-running tracker's memory: how often the merged
// tail is sealed into an immutable delta-encoded segment, and where sealed
// segments go. The zero policy never seals on its own and keeps what Compact
// seals in memory.
type SpillPolicy struct {
	// Dir, when non-empty, is the directory sealed segments are spilled to
	// (one "seg-<first>-<last>.mvcseg" file each, created on first use).
	// Spilled segments are dropped from memory; everything that replays
	// them — Stream, Snapshot, lazy Stamped.Vector of an old event — reads
	// the file back. Empty keeps sealed segments in memory, still in their
	// delta-encoded form (typically a small fraction of the vector table
	// they replace).
	Dir string
	// SealEvents, when positive, seals automatically once at least this
	// many events sit unsealed (live per-thread buffers plus the merged
	// tail). Sealing is a stop-the-world barrier, so this trades a periodic
	// pause — proportional to SealEvents, like any snapshot — for a bounded
	// in-memory suffix. Zero seals only at Compact or an explicit Seal.
	// If an automatic seal fails (spill I/O), the error surfaces through
	// Err, the history stays in memory, and auto-sealing disarms until an
	// explicit Seal or Compact succeeds — one failed barrier, not one per
	// commit.
	SealEvents int
}

// WithSpill sets the tracker's spill policy.
func WithSpill(p SpillPolicy) Option {
	return func(o *options) { o.spill = p }
}

// segment is one sealed, immutable slice of history: meta plus either the
// container bytes in memory or the spill file they were written to.
type segment struct {
	meta tlog.SegmentMeta
	data []byte // in-memory container; nil when spilled
	path string // spill file; "" when in memory
	size int64
}

// open returns the segment's container bytes as a stream.
func (sg *segment) open() (io.ReadCloser, error) {
	if sg.path == "" {
		return io.NopCloser(bytes.NewReader(sg.data)), nil
	}
	return os.Open(sg.path)
}

// stream replays the segment's records into sink. The borrowed vectors are
// handed straight through, so a full segment replay allocates only the
// reader state, independent of the record count.
func (sg *segment) stream(sink StampSink) error {
	rc, err := sg.open()
	if err != nil {
		return fmt.Errorf("track: opening segment %v: %w", sg.meta, err)
	}
	defer rc.Close()
	sr, err := tlog.NewSegmentReader(rc)
	if err != nil {
		return fmt.Errorf("track: segment %v: %w", sg.meta, err)
	}
	for {
		e, v, err := sr.Next()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return fmt.Errorf("track: segment %v: %w", sg.meta, err)
		}
		if err := sink.ConsumeStamp(e, sg.meta.Epoch, v); err != nil {
			return err
		}
	}
}

// stampAt replays the segment up to global index idx and returns that
// record's stamp (freshly reconstructed, owned by the caller).
func (sg *segment) stampAt(idx int) (vclock.Vector, error) {
	rc, err := sg.open()
	if err != nil {
		return nil, err
	}
	defer rc.Close()
	sr, err := tlog.NewSegmentReader(rc)
	if err != nil {
		return nil, err
	}
	for {
		e, v, err := sr.Next()
		if err != nil {
			return nil, err
		}
		if e.Index == idx {
			return v, nil
		}
	}
}

// sealLocked re-encodes the merged tail as one immutable segment and
// appends it to the sealed history, spilling it to disk when the policy
// says so. The caller holds the world write lock and has merged. On error
// (segment encoding, spill I/O) the tail is left untouched, so no history
// is lost — the tracker just keeps it in memory.
func (t *Tracker) sealLocked() error {
	if len(t.tailEv) == 0 {
		return nil
	}
	var payload bytes.Buffer
	w := tlog.NewDeltaWriter(&payload)
	widths := make([]int, len(t.tailEv))
	for i, e := range t.tailEv {
		if err := w.Append(e, t.tailStamps[i]); err != nil {
			return fmt.Errorf("track: sealing: %w", err)
		}
		widths[i] = len(t.tailStamps[i])
	}
	if err := w.Flush(); err != nil {
		return fmt.Errorf("track: sealing: %w", err)
	}
	meta := tlog.SegmentMeta{Epoch: t.epoch, FirstIndex: t.tailStart, Count: len(t.tailEv)}
	data, err := tlog.AppendSegment(nil, meta, widths, payload.Bytes())
	if err != nil {
		return fmt.Errorf("track: sealing: %w", err)
	}
	sg := &segment{meta: meta, size: int64(len(data))}
	if t.spill.Dir != "" {
		if err := os.MkdirAll(t.spill.Dir, 0o777); err != nil {
			return fmt.Errorf("track: spilling: %w", err)
		}
		name := fmt.Sprintf("seg-%010d-%010d.mvcseg", meta.FirstIndex, meta.FirstIndex+meta.Count-1)
		sg.path = filepath.Join(t.spill.Dir, name)
		if err := os.WriteFile(sg.path, data, 0o666); err != nil {
			return fmt.Errorf("track: spilling: %w", err)
		}
	} else {
		sg.data = data
	}
	t.segs = append(t.segs, sg)
	t.tailStart += len(t.tailEv)
	// Drop the tail storage outright (rather than truncating) so a spilling
	// tracker's footprint really is bounded by the seal interval.
	t.tailEv = nil
	t.tailStamps = nil
	t.sealed.Store(int64(t.tailStart))
	// A successful seal re-arms auto-sealing after an earlier spill failure
	// (the storage evidently works again).
	t.sealBroken.Store(false)
	return nil
}

// Seal quiesces the tracker, merges all per-thread buffers, and seals the
// tail into an immutable delta-encoded segment (spilled to disk under the
// policy's Dir). Compact seals implicitly; SpillPolicy.SealEvents seals
// automatically. Sealing never changes what any reader observes — only
// where (and how compactly) the history is held.
func (t *Tracker) Seal() error {
	t.world.Lock()
	defer t.world.Unlock()
	t.mergeLocked()
	return t.sealLocked()
}

// maybeAutoSeal runs after a commit has released every lock: when the
// unsealed suffix has outgrown the policy, one caller wins the gate and
// seals. A failure (spill I/O) surfaces through Err, leaves the history in
// memory, and DISARMS auto-sealing — otherwise every later commit would
// retry a stop-the-world barrier plus failing I/O against broken storage,
// collapsing the hot path. A subsequent explicit Seal or Compact that
// succeeds re-arms it.
func (t *Tracker) maybeAutoSeal() {
	n := t.spill.SealEvents
	if n <= 0 || t.seq.Load()-t.sealed.Load() < int64(n) || t.sealBroken.Load() {
		return
	}
	if !t.sealGate.CompareAndSwap(false, true) {
		return // someone else is already sealing
	}
	defer t.sealGate.Store(false)
	if err := t.Seal(); err != nil {
		t.sealBroken.Store(true)
		t.noteErr(err)
	}
}

// sealedStampLocked reconstructs the stamp of sealed event idx from its
// segment. The caller holds the world write lock.
func (t *Tracker) sealedStampLocked(idx int) (vclock.Vector, error) {
	i := sort.Search(len(t.segs), func(i int) bool {
		m := t.segs[i].meta
		return m.FirstIndex+m.Count > idx
	})
	if i == len(t.segs) || t.segs[i].meta.FirstIndex > idx {
		return nil, fmt.Errorf("no segment holds event %d", idx)
	}
	return t.segs[i].stampAt(idx)
}

// SegmentInfo describes one sealed segment for inspection.
type SegmentInfo struct {
	// Epoch the segment's records belong to (a segment never spans one).
	Epoch int
	// FirstIndex is the global trace index of the segment's first record;
	// Events is how many records it holds.
	FirstIndex int
	Events     int
	// Bytes is the encoded container size; Path is the spill file, empty
	// while the segment is held in memory.
	Bytes int64
	Path  string
}

// Segments lists the sealed history, oldest first.
func (t *Tracker) Segments() []SegmentInfo {
	t.world.RLock(0)
	defer t.world.RUnlock(0)
	out := make([]SegmentInfo, len(t.segs))
	for i, sg := range t.segs {
		out[i] = SegmentInfo{
			Epoch:      sg.meta.Epoch,
			FirstIndex: sg.meta.FirstIndex,
			Events:     sg.meta.Count,
			Bytes:      sg.size,
			Path:       sg.path,
		}
	}
	return out
}

// StampSink consumes a timestamped computation in trace order, one record
// per call: the event (with its global index), the epoch it was recorded
// in, and its full stamp at the clock width of that moment. The vector is
// borrowed — valid only until ConsumeStamp returns — so sinks that retain
// stamps must clone them; sinks that merely encode or aggregate get an
// allocation profile independent of the computation's length. A sink must
// not call back into the Tracker: the tail phase of a Stream holds the
// stop-the-world barrier.
type StampSink interface {
	ConsumeStamp(e event.Event, epoch int, v vclock.Vector) error
}

// Stream replays the whole recorded computation — sealed segments, then the
// live tail — into sink, in trace order, stopping at the first sink or
// segment error. Sealed segments are immutable and are replayed without
// stopping the world; only the final stretch (anything sealed during the
// replay, then the merged tail) runs under the barrier, so the pause
// commits observe is proportional to the unsealed suffix, not to history.
// The result is a consistent snapshot of the tracker as of that final
// barrier.
func (t *Tracker) Stream(sink StampSink) error {
	// Phase 1: sealed history, no barrier. Segments are only ever appended
	// (under the write lock) and never mutated, so a snapshot of the slice
	// is safe to read at leisure. The catch-up rounds are bounded: under
	// sustained auto-sealing a streamer on slow storage could otherwise
	// chase freshly sealed segments forever; whatever remains after the
	// last round is replayed under the barrier, which guarantees
	// termination.
	done := 0
	for round := 0; round < 4; round++ {
		segs := t.segmentsFrom(done)
		if len(segs) == 0 {
			break
		}
		for _, sg := range segs {
			if err := sg.stream(sink); err != nil {
				return err
			}
		}
		done += len(segs)
	}
	// Phase 2: the barrier — catch up on segments sealed while phase 1
	// streamed, then the merged tail.
	t.world.Lock()
	defer t.world.Unlock()
	t.mergeLocked()
	for _, sg := range t.segs[done:] {
		if err := sg.stream(sink); err != nil {
			return err
		}
	}
	for i, e := range t.tailEv {
		if err := sink.ConsumeStamp(e, t.epoch, t.tailStamps[i]); err != nil {
			return err
		}
	}
	return nil
}

// segmentsFrom snapshots the sealed-segment list from position n on.
func (t *Tracker) segmentsFrom(n int) []*segment {
	t.world.RLock(0)
	defer t.world.RUnlock(0)
	if n >= len(t.segs) {
		return nil
	}
	return t.segs[n:len(t.segs):len(t.segs)]
}

// SnapshotTo streams the recorded computation into w as a delta-encoded
// MVCLOG02 log (the WriteLogDelta wire format, readable by tlog.ReadAll and
// mvc inspect), without ever materializing a vector table: sealed segments
// decode straight back into the writer and the tail's stamps are encoded in
// place. Output bytes are identical to materializing Snapshot() and writing
// it with tlog.WriteAllDelta — the pipeline changes the cost, not the log.
func (t *Tracker) SnapshotTo(w io.Writer) error {
	lw := tlog.NewDeltaWriter(w)
	if err := t.Stream(deltaSink{lw}); err != nil {
		return err
	}
	return lw.Flush()
}

// collectSink materializes a streamed computation — the sink behind
// Snapshot.
type collectSink struct {
	trace  *event.Trace
	stamps []vclock.Vector
}

func (c *collectSink) ConsumeStamp(e event.Event, _ int, v vclock.Vector) error {
	c.trace.AppendEvent(e)
	c.stamps = append(c.stamps, v.Clone())
	return nil
}

// traceSink keeps only the events — the sink behind Trace.
type traceSink struct{ trace *event.Trace }

func (c *traceSink) ConsumeStamp(e event.Event, _ int, _ vclock.Vector) error {
	c.trace.AppendEvent(e)
	return nil
}

// stampsSink keeps only the stamps — the sink behind Stamps.
type stampsSink struct{ stamps []vclock.Vector }

func (c *stampsSink) ConsumeStamp(_ event.Event, _ int, v vclock.Vector) error {
	c.stamps = append(c.stamps, v.Clone())
	return nil
}

// deltaSink pipes a streamed computation into a tlog.DeltaWriter.
type deltaSink struct{ w *tlog.DeltaWriter }

func (s deltaSink) ConsumeStamp(e event.Event, _ int, v vclock.Vector) error {
	return s.w.Append(e, v)
}
