package track

import (
	"fmt"
	"sync"
	"testing"

	"mixedclock/internal/clock"
	"mixedclock/internal/event"
	"mixedclock/internal/vclock"
)

// validateEpochs splits the recorded computation at the epoch boundaries and
// checks each segment is a valid vector clock for its sub-computation.
func validateEpochs(t *testing.T, tr *Tracker) {
	t.Helper()
	full, stamps := tr.Snapshot()
	starts := append(tr.EpochStarts(), full.Len())
	for e := 0; e+1 < len(starts); e++ {
		seg := event.NewTrace()
		for i := starts[e]; i < starts[e+1]; i++ {
			ev := full.At(i)
			seg.Append(ev.Thread, ev.Object, ev.Op)
		}
		if err := clock.Validate(seg, stamps[starts[e]:starts[e+1]], fmt.Sprintf("epoch-%d", e)); err != nil {
			t.Fatalf("epoch %d: %v", e, err)
		}
	}
}

// TestCompactRacesDo hammers the tracker from worker goroutines while the
// main goroutine compacts repeatedly, with no synchronization between them
// beyond the tracker's own barrier. It asserts the epoch barrier totally
// orders cross-epoch stamps: every stamp's Epoch matches the epoch segment
// its event index landed in (so no operation straddled a compaction), each
// epoch's segment is a valid vector clock, and cross-epoch pairs compare by
// epoch order.
func TestCompactRacesDo(t *testing.T) {
	for _, backend := range []vclock.Backend{vclock.BackendFlat, vclock.BackendTree} {
		t.Run(backend.String(), func(t *testing.T) {
			tr := NewTracker(WithBackend(backend))
			const nWorkers, nObjects, opsPer, compactions = 8, 5, 300, 6
			objects := make([]*Object, nObjects)
			for i := range objects {
				objects[i] = tr.NewObject("obj")
			}
			recorded := make([][]Stamped, nWorkers)
			var wg sync.WaitGroup
			for w := 0; w < nWorkers; w++ {
				th := tr.NewThread("worker")
				wg.Add(1)
				go func(th *Thread, w int) {
					defer wg.Done()
					for i := 0; i < opsPer; i++ {
						s := th.Write(objects[(w+i)%nObjects], nil)
						recorded[w] = append(recorded[w], s)
					}
				}(th, w)
			}
			for c := 0; c < compactions; c++ {
				if _, _, err := tr.Compact(); err != nil {
					t.Error(err)
					break
				}
			}
			wg.Wait()
			if err := tr.Err(); err != nil {
				t.Fatal(err)
			}
			if got, want := tr.Events(), nWorkers*opsPer; got != want {
				t.Fatalf("Events = %d, want %d", got, want)
			}

			// Each stamp's epoch tag must agree with where its event landed
			// in the merged trace — the barrier quiesced in-flight Do calls.
			for _, stamps := range recorded {
				for _, s := range stamps {
					if got := tr.EpochOf(s.Event.Index); got != s.Epoch {
						t.Fatalf("event %d stamped in epoch %d but recorded in segment %d",
							s.Event.Index, s.Epoch, got)
					}
				}
			}
			// Cross-epoch stamps are totally ordered by epoch; program order
			// within a worker must agree.
			for _, stamps := range recorded {
				for i := 1; i < len(stamps); i++ {
					prev, cur := stamps[i-1], stamps[i]
					if prev.Epoch > cur.Epoch {
						t.Fatalf("worker's epochs went backwards: %d then %d", prev.Epoch, cur.Epoch)
					}
					if got := prev.Order(cur); got != vclock.Before {
						t.Fatalf("program order lost across stamps %v → %v: %v",
							prev.Event, cur.Event, got)
					}
				}
			}
			validateEpochs(t, tr)
		})
	}
}

// TestAccessorsRaceCompact pins the cover-swap race fixed after review:
// Size and Components read the cover pointer, which Compact replaces, so
// the pointer is atomic (no world lock — the accessors stay safe even from
// inside a Do callback). Run under -race.
func TestAccessorsRaceCompact(t *testing.T) {
	tr := NewTracker()
	th := tr.NewThread("t")
	o := tr.NewObject("o")
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			th.Write(o, nil)
			_ = tr.Size()
			_ = tr.Components()
			_ = tr.Events()
		}
	}()
	for i := 0; i < 50; i++ {
		if _, _, err := tr.Compact(); err != nil {
			t.Fatal(err)
		}
	}
	<-done
	if err := tr.Err(); err != nil {
		t.Fatal(err)
	}
}

// TestCallbackMayBlock pins the Do-callback contract: the world read lock
// covers only the commit, so a callback blocked on external synchronization
// cannot deadlock a concurrent Snapshot/Compact (a hang the pre-sharding
// tracker never had, and an early draft of this one did).
func TestCallbackMayBlock(t *testing.T) {
	tr := NewTracker()
	th := tr.NewThread("t")
	o := tr.NewObject("o")
	started := make(chan struct{})
	release := make(chan struct{})
	done := make(chan Stamped)
	go func() {
		done <- th.Write(o, func() {
			close(started)
			<-release // block inside the callback
		})
	}()
	<-started
	// The callback is blocked right now; barriers must still complete.
	tr.Snapshot()
	if _, _, err := tr.Compact(); err != nil {
		t.Fatal(err)
	}
	close(release)
	s := <-done
	// The operation straddled the compaction, so it commits into epoch 1.
	if s.Epoch != 1 {
		t.Fatalf("straddling op committed in epoch %d, want 1", s.Epoch)
	}
	if err := tr.Err(); err != nil {
		t.Fatal(err)
	}
}

// TestTrackerMethodsInsideCallback pins that Tracker methods — snapshots
// and compaction included — are legal from inside a Do callback.
func TestTrackerMethodsInsideCallback(t *testing.T) {
	tr := NewTracker()
	th := tr.NewThread("t")
	o := tr.NewObject("o")
	th.Write(o, nil)
	s := th.Write(o, func() {
		_ = tr.Size()
		_ = tr.Components()
		trace, stamps := tr.Snapshot()
		if trace.Len() != 1 || len(stamps) != 1 {
			t.Errorf("snapshot inside callback: %d events, %d stamps", trace.Len(), len(stamps))
		}
		if _, _, err := tr.Compact(); err != nil {
			t.Error(err)
		}
	})
	if s.Epoch != 1 {
		t.Fatalf("op whose callback compacted committed in epoch %d, want 1", s.Epoch)
	}
	if err := tr.Err(); err != nil {
		t.Fatal(err)
	}
	validateEpochs(t, tr)
}

// TestTrackerParallelStress is the load test CI runs under -race -count=3:
// concurrent Do on shared objects, racing thread/object registration, and
// concurrent snapshot readers, followed by full validation of the recorded
// computation.
func TestTrackerParallelStress(t *testing.T) {
	tr := NewTracker()
	const nWorkers, opsPer = 8, 250
	seedObjects := make([]*Object, 4)
	for i := range seedObjects {
		seedObjects[i] = tr.NewObject("seed")
	}
	var wg sync.WaitGroup
	for w := 0; w < nWorkers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Register mid-flight: registration must not disturb commits.
			th := tr.NewThread("stress")
			private := tr.NewObject("private")
			for i := 0; i < opsPer; i++ {
				switch i % 4 {
				case 0:
					th.Write(private, nil)
				case 1:
					th.Read(seedObjects[(w+i)%len(seedObjects)], nil)
				default:
					th.Write(seedObjects[(w*i)%len(seedObjects)], nil)
				}
			}
		}(w)
	}
	// Concurrent snapshot readers: prefixes must always be consistent
	// (stamps aligned with trace, no torn merges).
	done := make(chan struct{})
	var snapErr error
	go func() {
		defer close(done)
		for i := 0; i < 20; i++ {
			trace, stamps := tr.Snapshot()
			if trace.Len() != len(stamps) {
				snapErr = fmt.Errorf("snapshot torn: %d events, %d stamps", trace.Len(), len(stamps))
				return
			}
		}
	}()
	wg.Wait()
	<-done
	if snapErr != nil {
		t.Fatal(snapErr)
	}
	if err := tr.Err(); err != nil {
		t.Fatal(err)
	}
	if got, want := tr.Events(), nWorkers*opsPer; got != want {
		t.Fatalf("Events = %d, want %d", got, want)
	}
	trace, stamps := tr.Snapshot()
	if err := clock.Validate(trace, stamps, "parallel-stress"); err != nil {
		t.Fatal(err)
	}
}
