package experiment

import (
	"fmt"
	"math/rand"

	"mixedclock/internal/bipartite"
	"mixedclock/internal/core"
)

// Options control a figure reproduction. The zero value reproduces the
// paper's setup.
type Options struct {
	// Trials is the number of random graphs averaged per point (default
	// 10).
	Trials int
	// Seed is the base seed; trial k of point i uses a deterministic
	// function of (Seed, i, k).
	Seed int64
	// Nodes is the per-side node count for the density sweeps of Fig. 4
	// and Fig. 6 (default 50, the paper's setting).
	Nodes int
	// Density is the fixed density for the node sweeps of Fig. 5 and
	// Fig. 7 (default 0.05, the paper's setting).
	Density float64
	// Densities is the x-axis of the density sweeps (default the paper's
	// 0.01–0.9 range).
	Densities []float64
	// NodeCounts is the x-axis of the node sweeps (default 10–150 in steps
	// of 10, covering the paper's crossover at ≈70).
	NodeCounts []int
}

func (o Options) withDefaults() Options {
	if o.Trials == 0 {
		o.Trials = 10
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Nodes == 0 {
		o.Nodes = 50
	}
	if o.Density == 0 {
		o.Density = 0.05
	}
	if len(o.Densities) == 0 {
		o.Densities = []float64{0.01, 0.02, 0.05, 0.1, 0.15, 0.2, 0.3, 0.4, 0.5, 0.7, 0.9}
	}
	if len(o.NodeCounts) == 0 {
		o.NodeCounts = []int{10, 20, 30, 40, 50, 60, 70, 80, 90, 100, 110, 120, 130, 140, 150}
	}
	return o
}

// trialRng derives an independent RNG per (point, trial) so adding points
// never perturbs other points' randomness.
func trialRng(seed int64, point, trial int) *rand.Rand {
	return rand.New(rand.NewSource(seed + int64(point)*1_000_003 + int64(trial)*7_919))
}

// seriesNames used across figures.
const (
	// seriesNaive is the paper's Naive mechanism reported the paper's way:
	// "a vector clock with size equal to the number of threads … for all
	// computations" — a constant n, the flat line in Figs. 4–7.
	seriesNaive = "naive"
	// seriesNaiveActive is our stricter accounting of the same mechanism:
	// only threads that actually appear in the computation ever receive a
	// component. Coincides with seriesNaive except on very sparse graphs.
	seriesNaiveActive = "naive-active"
	seriesRandom      = "random"
	seriesPopularity  = "popularity"
	seriesOffline     = "offline-optimal"
)

// A sizer measures the final clock size of every online series over one
// reveal order. onlineSizes is the offline baseline (core.SimulateCover);
// liveSizes (live.go) drives a real track.Tracker instead. Both consume rng
// identically — one draw per uncovered new edge of the Random series — so a
// figure's numbers are reproducible and pipeline-independent.
type sizer func(order []bipartite.Edge, nThreads int, rng *rand.Rand) map[string]int

// onlineSizes runs the §IV mechanisms over one reveal order and returns
// final sizes keyed by series name. The Random mechanism draws from rng so
// results stay reproducible.
func onlineSizes(order []bipartite.Edge, nThreads int, rng *rand.Rand) map[string]int {
	return map[string]int{
		seriesNaive:       nThreads,
		seriesNaiveActive: core.SimulateCover(order, core.NaiveThreads{}),
		seriesRandom:      core.SimulateCover(order, core.Random{Rng: rng}),
		seriesPopularity:  core.SimulateCover(order, core.Popularity{}),
	}
}

// sweepPoint measures mean sizes for one graph configuration across trials.
// Series include the online mechanisms (measured by sz) and the offline
// optimum.
func sweepPoint(cfg bipartite.GenConfig, opt Options, point int, sz sizer) (map[string]float64, error) {
	sums := map[string]float64{}
	for trial := 0; trial < opt.Trials; trial++ {
		rng := trialRng(opt.Seed, point, trial)
		g, err := bipartite.Generate(cfg, rng)
		if err != nil {
			return nil, fmt.Errorf("experiment: point %d trial %d: %w", point, trial, err)
		}
		order := g.RevealOrder(rng)
		for name, size := range sz(order, cfg.NThreads, rng) {
			sums[name] += float64(size)
		}
		sums[seriesOffline] += float64(core.Analyze(g).VectorSize())
	}
	means := make(map[string]float64, len(sums))
	for name, sum := range sums {
		means[name] = sum / float64(opt.Trials)
	}
	return means, nil
}

// densitySweep builds a Result over opt.Densities for one scenario,
// including the named series.
func densitySweep(title string, scenario bipartite.Scenario, opt Options, series []string, sz sizer) (*Result, error) {
	r := &Result{
		Title:  title,
		XLabel: "density",
		YLabel: "vector clock size",
	}
	r.Series = make([]Series, len(series))
	for i, name := range series {
		r.Series[i] = Series{Name: name, Values: make([]float64, len(opt.Densities))}
	}
	for i, d := range opt.Densities {
		cfg := bipartite.GenConfig{
			NThreads: opt.Nodes, NObjects: opt.Nodes,
			Density: d, Scenario: scenario,
		}
		means, err := sweepPoint(cfg, opt, i, sz)
		if err != nil {
			return nil, err
		}
		r.X = append(r.X, d)
		for j, name := range series {
			r.Series[j].Values[i] = means[name]
		}
	}
	return r, nil
}

// nodeSweep builds a Result over opt.NodeCounts at fixed opt.Density.
func nodeSweep(title string, scenario bipartite.Scenario, opt Options, series []string, sz sizer) (*Result, error) {
	r := &Result{
		Title:  title,
		XLabel: "nodes per side",
		YLabel: "vector clock size",
	}
	r.Series = make([]Series, len(series))
	for i, name := range series {
		r.Series[i] = Series{Name: name, Values: make([]float64, len(opt.NodeCounts))}
	}
	for i, n := range opt.NodeCounts {
		cfg := bipartite.GenConfig{
			NThreads: n, NObjects: n,
			Density: opt.Density, Scenario: scenario,
		}
		means, err := sweepPoint(cfg, opt, i, sz)
		if err != nil {
			return nil, err
		}
		r.X = append(r.X, float64(n))
		for j, name := range series {
			r.Series[j].Values[i] = means[name]
		}
	}
	return r, nil
}

// onlineSeries are the §IV mechanisms compared in Figs. 4 and 5, plus our
// stricter naive accounting.
func onlineSeries() []string {
	return []string{seriesNaive, seriesNaiveActive, seriesRandom, seriesPopularity}
}

// offlineSeries adds the offline optimum, as in Figs. 6 and 7.
func offlineSeries() []string {
	return []string{seriesNaive, seriesNaiveActive, seriesPopularity, seriesOffline}
}

// fig4 is the shared body of Fig4 and Fig4Live, parameterized by sizer.
func fig4(opt Options, sz sizer) (uniform, nonuniform *Result, err error) {
	opt = opt.withDefaults()
	uniform, err = densitySweep(
		fmt.Sprintf("Fig. 4a — online mechanisms vs density (uniform, %d nodes/side)", opt.Nodes),
		bipartite.Uniform, opt, onlineSeries(), sz)
	if err != nil {
		return nil, nil, err
	}
	nonuniform, err = densitySweep(
		fmt.Sprintf("Fig. 4b — online mechanisms vs density (nonuniform, %d nodes/side)", opt.Nodes),
		bipartite.Nonuniform, opt, onlineSeries(), sz)
	if err != nil {
		return nil, nil, err
	}
	return uniform, nonuniform, nil
}

// Fig4 reproduces "Vector Size Varies as Graph Density Increases": 50
// threads and 50 objects, density sweep, Naive vs Random vs Popularity, one
// Result per scenario (Uniform, Nonuniform).
func Fig4(opt Options) (uniform, nonuniform *Result, err error) {
	return fig4(opt, onlineSizes)
}

// fig5 is the shared body of Fig5 and Fig5Live, parameterized by sizer.
func fig5(opt Options, sz sizer) (uniform, nonuniform *Result, err error) {
	opt = opt.withDefaults()
	uniform, err = nodeSweep(
		fmt.Sprintf("Fig. 5a — online mechanisms vs nodes (uniform, density %.2f)", opt.Density),
		bipartite.Uniform, opt, onlineSeries(), sz)
	if err != nil {
		return nil, nil, err
	}
	nonuniform, err = nodeSweep(
		fmt.Sprintf("Fig. 5b — online mechanisms vs nodes (nonuniform, density %.2f)", opt.Density),
		bipartite.Nonuniform, opt, onlineSeries(), sz)
	if err != nil {
		return nil, nil, err
	}
	return uniform, nonuniform, nil
}

// Fig5 reproduces "Vector Size Varies as Number of Nodes Increases":
// density 0.05, node sweep, Naive vs Random vs Popularity, per scenario.
func Fig5(opt Options) (uniform, nonuniform *Result, err error) {
	return fig5(opt, onlineSizes)
}

// fig6 is the shared body of Fig6 and Fig6Live, parameterized by sizer.
func fig6(opt Options, sz sizer) (*Result, error) {
	opt = opt.withDefaults()
	return densitySweep(
		fmt.Sprintf("Fig. 6 — offline optimum vs online vs density (uniform, %d nodes/side)", opt.Nodes),
		bipartite.Uniform, opt, offlineSeries(), sz)
}

// Fig6 reproduces "offline vs online as density increases": 50 nodes per
// side, density sweep, Naive vs Popularity (online) vs the offline optimum,
// on uniform graphs.
func Fig6(opt Options) (*Result, error) {
	return fig6(opt, onlineSizes)
}

// fig7 is the shared body of Fig7 and Fig7Live, parameterized by sizer.
func fig7(opt Options, sz sizer) (*Result, error) {
	opt = opt.withDefaults()
	return nodeSweep(
		fmt.Sprintf("Fig. 7 — offline optimum vs online vs nodes (uniform, density %.2f)", opt.Density),
		bipartite.Uniform, opt, offlineSeries(), sz)
}

// Fig7 reproduces "offline vs online as the number of nodes increases":
// density 0.05, node sweep, Naive vs Popularity vs offline optimum, uniform
// graphs.
func Fig7(opt Options) (*Result, error) {
	return fig7(opt, onlineSizes)
}
