package tlog

import (
	"encoding/json"
	"fmt"
	"io"
)

// Shipper cursor: the durable bookmark of an external log shipper. A shipper
// tails the catalog (ConsumeUpTo in package track, or any tool speaking the
// same JSON), copies and verifies the listed segment files, and persists a
// cursor file beside the catalog recording how far it got — so a restarted
// shipper resumes instead of recopying, and an auditor (mvc catalog -verify)
// can check the retention invariant "nothing is retired before it ships".

// ShipCursorFormatVersion is the cursor document version this package writes
// and accepts.
const ShipCursorFormatVersion = 1

// ShipCursorFileName is the cursor's file name inside a spill directory.
const ShipCursorFileName = "shipper-cursor.json"

// ShipCursor records how much of a spill directory's sealed history a
// shipper has copied out.
type ShipCursor struct {
	// FormatVersion is ShipCursorFormatVersion.
	FormatVersion int `json:"format_version"`
	// Generation is the catalog generation the shipper last consumed.
	Generation int64 `json:"generation"`
	// ShippedEvents is the trace index shipping has reached: every sealed
	// event below it has been copied to the destination and verified.
	ShippedEvents int `json:"shipped_events"`
}

// Validate checks the cursor's internal consistency.
func (c *ShipCursor) Validate() error {
	if c.FormatVersion != ShipCursorFormatVersion {
		return fmt.Errorf("tlog: ship cursor format version %d (want %d)", c.FormatVersion, ShipCursorFormatVersion)
	}
	if c.Generation < 0 || c.ShippedEvents < 0 {
		return fmt.Errorf("tlog: negative ship cursor counters (generation %d, shipped %d)",
			c.Generation, c.ShippedEvents)
	}
	return nil
}

// EncodeShipCursor writes the cursor as indented JSON, validating first.
func EncodeShipCursor(w io.Writer, c *ShipCursor) error {
	if err := c.Validate(); err != nil {
		return err
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(c); err != nil {
		return fmt.Errorf("tlog: encoding ship cursor: %w", err)
	}
	return nil
}

// DecodeShipCursor reads and validates one cursor document.
func DecodeShipCursor(r io.Reader) (*ShipCursor, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var c ShipCursor
	if err := dec.Decode(&c); err != nil {
		return nil, fmt.Errorf("tlog: decoding ship cursor: %w", err)
	}
	if err := c.Validate(); err != nil {
		return nil, err
	}
	return &c, nil
}
