package core

import (
	"testing"

	"mixedclock/internal/matching"
)

func TestComponentString(t *testing.T) {
	tests := []struct {
		c    Component
		want string
	}{
		{ThreadComponent(1), "T2"},
		{ObjectComponent(2), "O3"},
		{Component{}, "Component(0,0)"},
	}
	for _, tt := range tests {
		if got := tt.c.String(); got != tt.want {
			t.Errorf("%+v.String() = %q, want %q", tt.c, got, tt.want)
		}
	}
}

func TestComponentSetAddIdempotent(t *testing.T) {
	s := NewComponentSet()
	i1 := s.Add(ThreadComponent(3))
	i2 := s.Add(ThreadComponent(3))
	if i1 != i2 {
		t.Fatalf("re-adding gave different index: %d vs %d", i1, i2)
	}
	if s.Len() != 1 {
		t.Fatalf("Len = %d, want 1", s.Len())
	}
}

func TestComponentSetOrderIsInsertion(t *testing.T) {
	s := NewComponentSet()
	s.Add(ObjectComponent(5))
	s.Add(ThreadComponent(0))
	if s.At(0) != ObjectComponent(5) || s.At(1) != ThreadComponent(0) {
		t.Fatalf("order wrong: %v", s.Components())
	}
	if i, ok := s.IndexOf(ThreadComponent(0)); !ok || i != 1 {
		t.Fatalf("IndexOf = %d, %v", i, ok)
	}
	if _, ok := s.IndexOf(ObjectComponent(0)); ok {
		t.Fatal("absent component found")
	}
}

func TestComponentSetZeroValue(t *testing.T) {
	var s ComponentSet
	if s.Len() != 0 || s.Contains(ThreadComponent(0)) {
		t.Fatal("zero value not empty")
	}
	s.Add(ThreadComponent(0))
	if !s.Contains(ThreadComponent(0)) {
		t.Fatal("Add on zero value failed")
	}
}

func TestComponentSetCovers(t *testing.T) {
	s := NewComponentSet()
	s.Add(ThreadComponent(1))
	s.Add(ObjectComponent(2))
	tests := []struct {
		t, o int
		want bool
	}{
		{1, 0, true},  // thread covered
		{0, 2, true},  // object covered
		{1, 2, true},  // both covered
		{0, 0, false}, // neither
	}
	for _, tt := range tests {
		if got := s.Covers(toThread(tt.t), toObject(tt.o)); got != tt.want {
			t.Errorf("Covers(T%d, O%d) = %v, want %v", tt.t+1, tt.o+1, got, tt.want)
		}
	}
}

func TestComponentSetStringNormalized(t *testing.T) {
	s := NewComponentSet()
	s.Add(ObjectComponent(2))
	s.Add(ThreadComponent(1))
	s.Add(ObjectComponent(1))
	if got := s.String(); got != "{T2, O2, O3}" {
		t.Errorf("String = %q, want {T2, O2, O3}", got)
	}
	if got := NewComponentSet().String(); got != "{}" {
		t.Errorf("empty String = %q", got)
	}
}

func TestComponentsReturnsCopy(t *testing.T) {
	s := NewComponentSet()
	s.Add(ThreadComponent(0))
	cs := s.Components()
	cs[0] = ObjectComponent(9)
	if s.At(0) != ThreadComponent(0) {
		t.Fatal("Components() leaked internal storage")
	}
}

func TestFromCoverOrder(t *testing.T) {
	cover := &matching.Cover{Threads: []int{0, 1}, Objects: []int{2}}
	s := FromCover(cover)
	want := []Component{ThreadComponent(0), ThreadComponent(1), ObjectComponent(2)}
	got := s.Components()
	if len(got) != len(want) {
		t.Fatalf("len = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("component %d = %v, want %v", i, got[i], want[i])
		}
	}
}
