// Package cut implements consistent global states over timestamped
// computations — the failure-recovery application from the paper's
// introduction. A cut selects a prefix of every thread's event sequence; it
// is consistent when no selected event causally depends on an unselected
// one. RecoveryLine computes the maximal consistent cut that excludes a
// faulty event, using only vector timestamps (Theorem 2 makes the causal
// test a vector comparison).
package cut

import (
	"fmt"

	"mixedclock/internal/event"
	"mixedclock/internal/hb"
	"mixedclock/internal/vclock"
)

// Cut selects, per thread, how many of its events (in program order) are
// included.
type Cut struct {
	// PerThread[t] is the number of included events of thread t.
	PerThread []int
}

// Includes reports whether the cut includes event e, given that e is the
// seq-th event of its thread (0-based).
func (c Cut) Includes(t event.ThreadID, seq int) bool {
	if int(t) >= len(c.PerThread) {
		return false
	}
	return seq < c.PerThread[t]
}

// Size returns the total number of included events.
func (c Cut) Size() int {
	n := 0
	for _, k := range c.PerThread {
		n += k
	}
	return n
}

// String renders like "cut[T1:3 T2:1]".
func (c Cut) String() string {
	out := "cut["
	for t, k := range c.PerThread {
		if t > 0 {
			out += " "
		}
		out += fmt.Sprintf("%v:%d", event.ThreadID(t), k)
	}
	return out + "]"
}

// membership returns, for each event index, whether the cut includes it.
func (c Cut) membership(tr *event.Trace) []bool {
	in := make([]bool, tr.Len())
	seq := make([]int, tr.Threads())
	for i := 0; i < tr.Len(); i++ {
		t := tr.At(i).Thread
		if c.Includes(t, seq[t]) {
			in[i] = true
		}
		seq[t]++
	}
	return in
}

// IsConsistent checks the cut against the ground-truth oracle: consistent
// iff every happened-before predecessor of an included event is included.
func IsConsistent(tr *event.Trace, c Cut) bool {
	oracle := hb.New(tr)
	in := c.membership(tr)
	for i := 0; i < tr.Len(); i++ {
		if !in[i] {
			continue
		}
		for _, j := range oracle.DownSet(i) {
			if !in[j] {
				return false
			}
		}
	}
	return true
}

// RecoveryLine computes the maximal consistent cut that excludes event bad
// (and therefore everything causally contaminated by it), deciding causal
// dependence purely from the provided timestamps: event e is excluded iff
// e == bad or stamps[bad] < stamps[e]. With a valid clock the result is
// always consistent and is the largest such cut.
func RecoveryLine(tr *event.Trace, stamps []vclock.Vector, bad int) (Cut, error) {
	if len(stamps) != tr.Len() {
		return Cut{}, fmt.Errorf("cut: %d stamps for %d events", len(stamps), tr.Len())
	}
	if bad < 0 || bad >= tr.Len() {
		return Cut{}, fmt.Errorf("cut: bad event %d out of range [0, %d)", bad, tr.Len())
	}
	c := Cut{PerThread: make([]int, tr.Threads())}
	seq := make([]int, tr.Threads())
	frozen := make([]bool, tr.Threads())
	for i := 0; i < tr.Len(); i++ {
		t := tr.At(i).Thread
		contaminated := i == bad || stamps[bad].Less(stamps[i])
		if contaminated {
			frozen[t] = true
		}
		if !frozen[t] {
			// Included events form a per-thread prefix: contamination is
			// closed under program order, so once a thread sees a
			// contaminated event the rest of its events are excluded too.
			c.PerThread[t] = seq[t] + 1
		}
		seq[t]++
	}
	return c, nil
}

// Contaminated lists the events excluded by the recovery line for bad: the
// faulty event and its causal future, straight from timestamp comparisons.
func Contaminated(stamps []vclock.Vector, bad int) []int {
	var out []int
	for i, v := range stamps {
		if i == bad || stamps[bad].Less(v) {
			out = append(out, i)
		}
	}
	return out
}
