package mixedclock

import (
	"math/rand"

	"mixedclock/internal/cut"
	"mixedclock/internal/detect"
	"mixedclock/internal/predicate"
	"mixedclock/internal/replay"
	"mixedclock/internal/track"
)

// Application-layer helpers built on timestamps: the debugging and
// failure-recovery use-cases the paper's introduction motivates.

type (
	// Census summarizes the pairwise ordering structure of a computation.
	Census = detect.Census
	// SchedulePair is a conflicting pair of operations whose order is a
	// scheduling accident (only the object's lock orders them).
	SchedulePair = detect.Pair
	// Cut selects a prefix of every thread's events (a global state).
	Cut = cut.Cut
)

// TakeCensus counts ordered vs concurrent pairs from timestamps alone.
func TakeCensus(stamps []Vector) Census { return detect.TakeCensus(stamps) }

// ScheduleSensitivePairs flags conflicting, adjacent operations on the same
// object by different threads whose only ordering is the object's own lock:
// a different schedule could flip them.
func ScheduleSensitivePairs(tr *Trace) []SchedulePair {
	return detect.ScheduleSensitivePairs(tr)
}

// ConflictMatrix counts schedule-sensitive pairs per (first thread, second
// thread).
func ConflictMatrix(tr *Trace) [][]int { return detect.ConflictMatrix(tr) }

// IsConsistentCut reports whether the cut is closed under happened-before:
// no included event depends on an excluded one.
func IsConsistentCut(tr *Trace, c Cut) bool { return cut.IsConsistent(tr, c) }

// RecoveryLine computes the maximal consistent cut excluding event bad and
// its causal future, deciding causality from the timestamps (Theorem 2).
func RecoveryLine(tr *Trace, stamps []Vector, bad int) (Cut, error) {
	return cut.RecoveryLine(tr, stamps, bad)
}

// Contaminated lists the events causally downstream of event bad (inclusive).
func Contaminated(stamps []Vector, bad int) []int {
	return cut.Contaminated(stamps, bad)
}

// Global predicate detection (Cooper–Marzullo modalities) over the lattice
// of consistent global states.

type (
	// GlobalState is one consistent global state presented to predicates.
	GlobalState = predicate.State
	// Predicate evaluates a property of a consistent global state.
	Predicate = predicate.Predicate
)

// ErrStateBudget is returned when lattice exploration exceeds its budget.
var ErrStateBudget = predicate.ErrBudget

// Possibly reports whether some consistent global state of the computation
// satisfies pred, with a witness cut. Exponential in threads in the worst
// case; maxStates bounds the exploration (0 = a large default).
func Possibly(tr *Trace, pred Predicate, maxStates int) (Cut, bool, error) {
	return predicate.Possibly(tr, pred, maxStates)
}

// Definitely reports whether every execution path of the computation passes
// through a state satisfying pred.
func Definitely(tr *Trace, pred Predicate, maxStates int) (bool, error) {
	return predicate.Definitely(tr, pred, maxStates)
}

// Online detection: the same analyses evaluated incrementally over a live
// tracker's stream. See Tracker.NewMonitor and the internal/track package
// documentation for the consumption model and windowing guarantees.

type (
	// Monitor is an online detector registered on a live Tracker: it
	// consumes sealed segments as they are published (barrier-free) and
	// the frozen tail on demand (Monitor.Sync), evaluating the census,
	// schedule-sensitive pairs, order watches and predicate watches
	// incrementally.
	Monitor = track.Monitor
	// MonitorPolicy bounds a monitor's state (Window, MaxCuts) and wires
	// the detection callback.
	MonitorPolicy = track.MonitorPolicy
	// Detection is one online finding, with epoch and trace-index
	// provenance into the run.
	Detection = track.Detection
	// MonitorStats is a live summary of a monitor's evaluation state,
	// including the incremental König lower bound on optimal clock width.
	MonitorStats = track.MonitorStats
	// Selector picks the events a monitor watch applies to.
	Selector = track.Selector
)

// Detection kinds reported by a Monitor.
const (
	DetectPair     = track.DetectPair
	DetectOrder    = track.DetectOrder
	DetectPossibly = track.DetectPossibly
)

// Schedule exploration: a recorded trace is one interleaving of the
// computation's partial order; these helpers produce and check others.

// IsLinearization reports whether perm is a legal interleaving of tr.
func IsLinearization(tr *Trace, perm []int) bool { return replay.IsLinearization(tr, perm) }

// RandomLinearization samples an alternative legal interleaving.
func RandomLinearization(tr *Trace, rng *rand.Rand) []int {
	return replay.RandomLinearization(tr, rng)
}

// Reorder returns the computation rescheduled along perm (which must be a
// legal linearization).
func Reorder(tr *Trace, perm []int) (*Trace, error) { return replay.Reorder(tr, perm) }

// CountLinearizations counts legal interleavings, up to limit (0 = all) —
// a direct measure of how schedule-sensitive the computation is.
func CountLinearizations(tr *Trace, limit int) int {
	return replay.CountLinearizations(tr, limit)
}
