package tlog

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"

	"mixedclock/internal/clock"
	"mixedclock/internal/core"
	"mixedclock/internal/event"
	"mixedclock/internal/vclock"
)

// checkSameComputation asserts two (trace, stamps) pairs are identical.
func checkSameComputation(t *testing.T, gotTr *event.Trace, gotStamps []vclock.Vector, tr *event.Trace, stamps []vclock.Vector) {
	t.Helper()
	if gotTr.Len() != tr.Len() {
		t.Fatalf("events: %d, want %d", gotTr.Len(), tr.Len())
	}
	for i := 0; i < tr.Len(); i++ {
		if gotTr.At(i) != tr.At(i) {
			t.Fatalf("event %d: %+v != %+v", i, gotTr.At(i), tr.At(i))
		}
		if !gotStamps[i].Equal(stamps[i]) {
			t.Fatalf("stamp %d: %v != %v", i, gotStamps[i], stamps[i])
		}
	}
}

func TestDeltaRoundTrip(t *testing.T) {
	tr, stamps := sampleComputation(t)
	var buf bytes.Buffer
	if err := WriteAllDelta(&buf, tr, stamps); err != nil {
		t.Fatal(err)
	}
	gotTr, gotStamps, err := ReadAll(&buf)
	if err != nil {
		t.Fatal(err)
	}
	checkSameComputation(t, gotTr, gotStamps, tr, stamps)
}

func TestDeltaRoundTripSyncIntervals(t *testing.T) {
	tr, stamps := sampleComputation(t)
	for _, sync := range []int{0, 1, 2, 7, 1000} {
		var buf bytes.Buffer
		w := NewDeltaWriterSync(&buf, sync)
		for i := 0; i < tr.Len(); i++ {
			if err := w.Append(tr.At(i), stamps[i]); err != nil {
				t.Fatal(err)
			}
		}
		if err := w.Flush(); err != nil {
			t.Fatal(err)
		}
		gotTr, gotStamps, err := ReadAll(&buf)
		if err != nil {
			t.Fatalf("sync=%d: %v", sync, err)
		}
		checkSameComputation(t, gotTr, gotStamps, tr, stamps)
	}
}

// TestAppendDeltaStreaming drives the fully streaming pipeline — offline
// clock change capture into the delta writer, no full vector materialized
// anywhere between clock and disk — and checks the log decodes to exactly
// the stamps the materializing path produces (width-agnostic: the writer
// trims trailing zeros like the full format does).
func TestAppendDeltaStreaming(t *testing.T) {
	tr, stamps := sampleComputation(t)
	a := core.AnalyzeTrace(tr)
	mc := a.NewClock()
	var buf bytes.Buffer
	w := NewDeltaWriterSync(&buf, 8)
	var scratch []vclock.Delta
	for i := 0; i < tr.Len(); i++ {
		scratch, _ = mc.TimestampDelta(tr.At(i), scratch[:0])
		if err := w.AppendDelta(tr.At(i), scratch); err != nil {
			t.Fatal(err)
		}
	}
	if err := mc.Err(); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	gotTr, gotStamps, err := ReadAll(&buf)
	if err != nil {
		t.Fatal(err)
	}
	checkSameComputation(t, gotTr, gotStamps, tr, stamps)
	if err := clock.Validate(gotTr, gotStamps, "streamed-delta"); err != nil {
		t.Fatal(err)
	}
}

// TestDeltaSmallerThanFull pins the point of the format: on a bursty
// workload over a non-trivial clock the delta stream must be significantly
// smaller than the full one.
func TestDeltaSmallerThanFull(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	tr := event.NewTrace()
	for round := 0; round < 20; round++ {
		for tid := 0; tid < 12; tid++ {
			obj := event.ObjectID(rng.Intn(12))
			for k := 0; k < 8; k++ {
				tr.Append(event.ThreadID(tid), obj, event.OpWrite)
			}
		}
	}
	stamps := clock.Run(tr, core.AnalyzeTrace(tr).NewClock())
	var full, delta bytes.Buffer
	if err := WriteAll(&full, tr, stamps); err != nil {
		t.Fatal(err)
	}
	if err := WriteAllDelta(&delta, tr, stamps); err != nil {
		t.Fatal(err)
	}
	if delta.Len()*2 > full.Len() {
		t.Fatalf("delta log %dB not under half of full log %dB", delta.Len(), full.Len())
	}
	gotTr, gotStamps, err := ReadAll(&delta)
	if err != nil {
		t.Fatal(err)
	}
	checkSameComputation(t, gotTr, gotStamps, tr, stamps)
}

// TestDeltaTruncation mirrors the full format's crash-recovery contract.
func TestDeltaTruncation(t *testing.T) {
	tr, stamps := sampleComputation(t)
	var buf bytes.Buffer
	if err := WriteAllDelta(&buf, tr, stamps); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	gotTr, gotStamps, err := ReadAll(bytes.NewReader(data[:len(data)-3]))
	if !errors.Is(err, ErrTruncated) {
		t.Fatalf("want ErrTruncated, got %v", err)
	}
	if gotTr.Len() == 0 || gotTr.Len() >= tr.Len() {
		t.Fatalf("recovered %d of %d events", gotTr.Len(), tr.Len())
	}
	checkSameComputation(t, gotTr, gotStamps, sliceTracePrefix(tr, gotTr.Len()), stamps[:gotTr.Len()])
}

// TestDeltaCorruptTag pins the reader's bounds checking on the new fields.
func TestDeltaCorruptTag(t *testing.T) {
	var buf bytes.Buffer
	buf.Write(magicDelta[:])
	buf.Write([]byte{0, 0, 0, 9}) // thread 0, object 0, op 0, tag 9
	_, _, err := ReadAll(&buf)
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("bad tag: want ErrCorrupt, got %v", err)
	}
}

// TestDeltaBeforeFullIsCorrupt: a delta record for a thread that never had
// a full record has no base to apply to — the reader must refuse to
// fabricate a stamp from zero.
func TestDeltaBeforeFullIsCorrupt(t *testing.T) {
	var buf bytes.Buffer
	buf.Write(magicDelta[:])
	// thread 0, object 0, op 0, tagDelta, 1 pair: (index 3, value 9).
	buf.Write([]byte{0, 0, 0, tagDelta, 1, 3, 9})
	tr, _, err := ReadAll(&buf)
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("delta-before-full: want ErrCorrupt, got %v", err)
	}
	if tr.Len() != 0 {
		t.Fatalf("fabricated %d records from a baseless delta", tr.Len())
	}
}

// TestDeltaIndexBoundMatchesFullFormat: the widest vector a delta stream
// can build must equal the full format's cap, so index == maxComponents is
// corrupt (largest legal index is maxComponents-1).
func TestDeltaIndexBoundMatchesFullFormat(t *testing.T) {
	var buf bytes.Buffer
	buf.Write(magicDelta[:])
	buf.Write([]byte{0, 0, 0, tagFull, 1, 1}) // full record: vector [1]
	rec := []byte{0, 0, 0, tagDelta, 1}       // delta record, 1 pair
	rec = appendUvarintBytes(rec, maxComponents)
	rec = append(rec, 5)
	buf.Write(rec)
	_, _, err := ReadAll(&buf)
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("index %d: want ErrCorrupt, got %v", maxComponents, err)
	}
}

// appendUvarintBytes is binary.AppendUvarint without the import dance.
func appendUvarintBytes(b []byte, x uint64) []byte {
	for x >= 0x80 {
		b = append(b, byte(x)|0x80)
		x >>= 7
	}
	return append(b, byte(x))
}

// TestDeltaWidthBudget: a few-byte hostile record naming a huge component
// index must be refused instead of forcing a reconstruction allocation
// orders of magnitude larger than the input (the delta-format analogue of
// the full decoder's incremental-growth guard).
func TestDeltaWidthBudget(t *testing.T) {
	var buf bytes.Buffer
	buf.Write(magicDelta[:])
	buf.Write([]byte{0, 0, 0, tagFull, 0}) // full record: empty vector
	rec := []byte{0, 0, 0, tagDelta, 1}
	rec = appendUvarintBytes(rec, maxComponents-1) // in-range index, absurd for a 13-byte stream
	rec = append(rec, 1)
	buf.Write(rec)
	tr, _, err := ReadAll(&buf)
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("budget-busting index: want ErrCorrupt, got %v", err)
	}
	if tr.Len() != 1 {
		t.Fatalf("prefix before the corrupt record should survive: got %d records", tr.Len())
	}
}

// TestDeltaHighIndexEarlyRoundTrips pins the writer half of the width
// budget: offline clocks assign component indices up front, so a high index
// can legitimately appear in a thread's second record of a tiny stream. The
// writer must notice the reader's budget wouldn't cover the pair and fall
// back to a full record, keeping its own output always readable.
func TestDeltaHighIndexEarlyRoundTrips(t *testing.T) {
	tr := event.NewTrace()
	tr.Append(0, 0, event.OpWrite)
	tr.Append(0, 1, event.OpWrite)
	tr.Append(0, 1, event.OpWrite)
	stamps := []vclock.Vector{
		(vclock.Vector{1}),
		(vclock.Vector{1}).Set(4999, 1),
		(vclock.Vector{1}).Set(4999, 2).Set(60_000, 1),
	}
	// Both writer paths must survive: the diffing Append...
	var buf bytes.Buffer
	if err := WriteAllDelta(&buf, tr, stamps); err != nil {
		t.Fatal(err)
	}
	gotTr, gotStamps, err := ReadAll(&buf)
	if err != nil {
		t.Fatal(err)
	}
	checkSameComputation(t, gotTr, gotStamps, tr, stamps)
	// ...and the streaming AppendDelta.
	buf.Reset()
	w := NewDeltaWriter(&buf)
	prev := vclock.Vector(nil)
	for i := 0; i < tr.Len(); i++ {
		var ds []vclock.Delta
		n := len(stamps[i])
		for j := 0; j < n; j++ {
			if stamps[i].At(j) != prev.At(j) {
				ds = append(ds, vclock.Delta{Index: int32(j), Value: stamps[i][j]})
			}
		}
		prev = stamps[i]
		if err := w.AppendDelta(tr.At(i), ds); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	gotTr, gotStamps, err = ReadAll(&buf)
	if err != nil {
		t.Fatal(err)
	}
	checkSameComputation(t, gotTr, gotStamps, tr, stamps)
}

// TestDeltaWideClockWithinBudget pins the other side: a genuinely wide
// computation — full records paying for their width, deltas poking sparse
// high indices — stays within the budget and round-trips.
func TestDeltaWideClockWithinBudget(t *testing.T) {
	const width = 3000
	tr := event.NewTrace()
	var stamps []vclock.Vector
	v := make(vclock.Vector, width)
	for i := 0; i < 40; i++ {
		// Touch a sparse high component each event.
		v = v.Tick(width - 1 - i*7)
		tr.Append(0, event.ObjectID(i%4), event.OpWrite)
		stamps = append(stamps, v.Clone())
	}
	var buf bytes.Buffer
	if err := WriteAllDelta(&buf, tr, stamps); err != nil {
		t.Fatal(err)
	}
	gotTr, gotStamps, err := ReadAll(&buf)
	if err != nil {
		t.Fatal(err)
	}
	checkSameComputation(t, gotTr, gotStamps, tr, stamps)
}

// TestDeltaWriterRejectsNegative matches the full writer's validation.
func TestDeltaWriterRejectsNegative(t *testing.T) {
	w := NewDeltaWriter(&bytes.Buffer{})
	if err := w.Append(event.Event{Thread: -1}, nil); err == nil {
		t.Fatal("negative thread accepted")
	}
}

// TestDeltaEmptyAbandonedWriter: an abandoned delta writer leaves no bytes.
func TestDeltaEmptyAbandonedWriter(t *testing.T) {
	var buf bytes.Buffer
	w := NewDeltaWriter(&buf)
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 0 {
		t.Fatalf("abandoned writer wrote %d bytes", buf.Len())
	}
}

// sliceTracePrefix returns the first n events of tr as their own trace.
func sliceTracePrefix(tr *event.Trace, n int) *event.Trace {
	out := event.NewTrace()
	for i := 0; i < n; i++ {
		e := tr.At(i)
		out.Append(e.Thread, e.Object, e.Op)
	}
	return out
}
