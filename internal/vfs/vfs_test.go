package vfs

import (
	"errors"
	"io/fs"
	"os"
	"path/filepath"
	"syscall"
	"testing"
)

func TestOSRoundTrip(t *testing.T) {
	dir := t.TempDir()
	name := filepath.Join(dir, "a.txt")
	if err := WriteFile(OS, name, []byte("hello")); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	got, err := ReadFile(OS, name)
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	if string(got) != "hello" {
		t.Fatalf("round trip: got %q", got)
	}
	if err := OS.SyncDir(dir); err != nil {
		t.Fatalf("SyncDir: %v", err)
	}
	if _, err := OS.Stat(name); err != nil {
		t.Fatalf("Stat: %v", err)
	}
	if err := OS.Rename(name, filepath.Join(dir, "b.txt")); err != nil {
		t.Fatalf("Rename: %v", err)
	}
	if err := OS.Remove(filepath.Join(dir, "b.txt")); err != nil {
		t.Fatalf("Remove: %v", err)
	}
}

func TestGlob(t *testing.T) {
	dir := t.TempDir()
	for _, n := range []string{"e0001.mvcseg", "e0002.mvcseg", "catalog.json", ".seg-1.tmp"} {
		if err := WriteFile(OS, filepath.Join(dir, n), nil); err != nil {
			t.Fatal(err)
		}
	}
	got, err := Glob(OS, dir, "*.mvcseg")
	if err != nil {
		t.Fatal(err)
	}
	want := []string{filepath.Join(dir, "e0001.mvcseg"), filepath.Join(dir, "e0002.mvcseg")}
	if len(got) != len(want) || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("Glob = %v, want %v", got, want)
	}
	// Missing directory: no matches, no error (filepath.Glob contract).
	if got, err := Glob(OS, filepath.Join(dir, "nope"), "*"); err != nil || got != nil {
		t.Fatalf("Glob missing dir = %v, %v", got, err)
	}
	// Malformed pattern still errs.
	if _, err := Glob(OS, dir, "["); err == nil {
		t.Fatal("Glob with bad pattern: want error")
	}
}

func TestFaultyNthRule(t *testing.T) {
	dir := t.TempDir()
	f := NewFaulty(OS)
	f.Script(Rule{Ops: Ops(OpFileSync), Nth: 1, Count: 1, Err: syscall.EIO})

	for i := 0; i < 3; i++ {
		file, err := f.Create(filepath.Join(dir, "f"))
		if err != nil {
			t.Fatalf("Create %d: %v", i, err)
		}
		err = file.Sync()
		file.Close()
		if i == 1 {
			if !errors.Is(err, syscall.EIO) {
				t.Fatalf("sync %d: want EIO, got %v", i, err)
			}
		} else if err != nil {
			t.Fatalf("sync %d: %v", i, err)
		}
	}
}

func TestFaultyPersistentENOSPCAndHeal(t *testing.T) {
	dir := t.TempDir()
	f := NewFaulty(OS)
	f.Script(Rule{Ops: Ops(OpCreate, OpCreateTemp), Err: syscall.ENOSPC})

	if _, err := f.Create(filepath.Join(dir, "x")); !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("want ENOSPC, got %v", err)
	}
	if _, err := f.CreateTemp(dir, "t-*"); !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("want ENOSPC, got %v", err)
	}
	f.Heal()
	file, err := f.Create(filepath.Join(dir, "x"))
	if err != nil {
		t.Fatalf("after Heal: %v", err)
	}
	file.Close()
}

func TestFaultyPathContains(t *testing.T) {
	dir := t.TempDir()
	f := NewFaulty(OS)
	f.Script(Rule{Ops: Ops(OpCreate), PathContains: "catalog", Err: syscall.ENOSPC})

	if file, err := f.Create(filepath.Join(dir, "seg.mvcseg")); err != nil {
		t.Fatalf("unmatched path: %v", err)
	} else {
		file.Close()
	}
	if _, err := f.Create(filepath.Join(dir, "catalog.json")); !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("matched path: want ENOSPC, got %v", err)
	}
}

func TestFaultyTornWrite(t *testing.T) {
	dir := t.TempDir()
	f := NewFaulty(OS)
	f.Script(Rule{Ops: Ops(OpWrite), TornFrac: 0.5, Err: syscall.EIO})

	name := filepath.Join(dir, "torn")
	file, err := f.Create(name)
	if err != nil {
		t.Fatal(err)
	}
	n, err := file.Write([]byte("0123456789"))
	file.Close()
	if !errors.Is(err, syscall.EIO) {
		t.Fatalf("want EIO, got %v", err)
	}
	if n != 5 {
		t.Fatalf("torn write landed %d bytes, want 5", n)
	}
	got, rerr := os.ReadFile(name)
	if rerr != nil {
		t.Fatal(rerr)
	}
	if string(got) != "01234" {
		t.Fatalf("on-disk torn content = %q", got)
	}
}

func TestFaultyCrashFreezesDirectory(t *testing.T) {
	dir := t.TempDir()

	// Reference run: count durable ops for a tiny workload.
	workload := func(fsys FS, d string) error {
		file, err := fsys.Create(filepath.Join(d, "a")) // op 0
		if err != nil {
			return err
		}
		if _, err := file.Write([]byte("aa")); err != nil { // op 1
			return err
		}
		if err := file.Sync(); err != nil { // op 2
			return err
		}
		if err := file.Close(); err != nil { // op 3
			return err
		}
		if err := fsys.Rename(filepath.Join(d, "a"), filepath.Join(d, "b")); err != nil { // op 4
			return err
		}
		return fsys.SyncDir(d) // op 5
	}

	ref := NewFaulty(OS)
	refDir := filepath.Join(dir, "ref")
	if err := os.MkdirAll(refDir, 0o777); err != nil {
		t.Fatal(err)
	}
	if err := workload(ref, refDir); err != nil {
		t.Fatal(err)
	}
	if ref.Ops() != 6 {
		t.Fatalf("reference ops = %d, want 6", ref.Ops())
	}

	// Crash before the rename: file still named "a", fully written.
	f := NewFaulty(OS)
	f.CrashAt(4)
	crashDir := filepath.Join(dir, "crash")
	if err := os.MkdirAll(crashDir, 0o777); err != nil {
		t.Fatal(err)
	}
	err := workload(f, crashDir)
	if !errors.Is(err, ErrCrashed) {
		t.Fatalf("want ErrCrashed, got %v", err)
	}
	if !f.Crashed() {
		t.Fatal("Crashed() = false after crash point")
	}
	// Everything after the crash fails, reads included.
	if _, err := f.Open(filepath.Join(crashDir, "a")); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash open: want ErrCrashed, got %v", err)
	}
	// The frozen directory (inspected with the real OS) holds the pre-crash state.
	if _, err := os.Stat(filepath.Join(crashDir, "a")); err != nil {
		t.Fatalf("frozen state: %v", err)
	}
	if _, err := os.Stat(filepath.Join(crashDir, "b")); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("rename must not have happened: %v", err)
	}
}

func TestFaultyCrashAtZero(t *testing.T) {
	dir := t.TempDir()
	f := NewFaulty(OS)
	f.CrashAt(0)
	if _, err := f.Create(filepath.Join(dir, "x")); !errors.Is(err, ErrCrashed) {
		t.Fatalf("want ErrCrashed at op 0, got %v", err)
	}
	if entries, err := os.ReadDir(dir); err != nil || len(entries) != 0 {
		t.Fatalf("directory must be untouched: %v %v", entries, err)
	}
}

func TestFaultyReadOpsNotCounted(t *testing.T) {
	dir := t.TempDir()
	if err := WriteFile(OS, filepath.Join(dir, "x"), []byte("x")); err != nil {
		t.Fatal(err)
	}
	f := NewFaulty(OS)
	file, err := f.Open(filepath.Join(dir, "x"))
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 8)
	file.Read(buf)
	file.Close() // close of a read-only file: not durable
	if _, err := f.ReadDir(dir); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Stat(filepath.Join(dir, "x")); err != nil {
		t.Fatal(err)
	}
	if f.Ops() != 0 {
		t.Fatalf("read-side ops advanced the durable counter: %d", f.Ops())
	}
}
