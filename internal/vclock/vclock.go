// Package vclock implements the vector-timestamp algebra shared by every
// clock scheme in this repository (thread-based, object-based, mixed, and
// chain clocks).
//
// A Vector is a growable sequence of logical-time components. Unlike the
// textbook fixed-width vector clock, comparison and merging are
// length-agnostic: a component that is absent (beyond the end of the slice)
// is treated as zero. This is what lets the online mixed clock of the paper
// add components as new threads/objects join the cover while timestamps
// issued earlier remain comparable.
package vclock

import (
	"fmt"
	"strconv"
	"strings"
)

// Ordering is the result of comparing two vector timestamps.
type Ordering int

// The four possible outcomes of Compare. They start at 1 so that the zero
// value is invalid and cannot be mistaken for a real result.
const (
	// Equal means both vectors have identical components.
	Equal Ordering = iota + 1
	// Before means the receiver is strictly less than the argument
	// (happened-before when the clock is valid).
	Before
	// After means the receiver is strictly greater than the argument.
	After
	// Concurrent means the vectors are incomparable.
	Concurrent
)

// String returns a human-readable name for the ordering.
func (o Ordering) String() string {
	switch o {
	case Equal:
		return "equal"
	case Before:
		return "before"
	case After:
		return "after"
	case Concurrent:
		return "concurrent"
	default:
		return fmt.Sprintf("Ordering(%d)", int(o))
	}
}

// Vector is a vector timestamp. The zero value (nil) is a valid timestamp
// with every component equal to zero.
//
// Vectors are plain slices so callers can index them directly; use Clone
// before retaining a Vector across mutations.
type Vector []uint64

// New returns a zeroed vector with n components.
func New(n int) Vector {
	return make(Vector, n)
}

// Clone returns an independent copy of v.
func (v Vector) Clone() Vector {
	if v == nil {
		return nil
	}
	c := make(Vector, len(v))
	copy(c, v)
	return c
}

// At returns component i, treating out-of-range components as zero.
func (v Vector) At(i int) uint64 {
	if i < 0 || i >= len(v) {
		return 0
	}
	return v[i]
}

// Set assigns component i, growing the vector with zeros if needed.
// It returns the (possibly reallocated) vector, following the append idiom.
func (v Vector) Set(i int, val uint64) Vector {
	v = v.Grow(i + 1)
	v[i] = val
	return v
}

// Tick increments component i by one, growing the vector if needed, and
// returns the (possibly reallocated) vector.
func (v Vector) Tick(i int) Vector {
	v = v.Grow(i + 1)
	v[i]++
	return v
}

// Grow extends v with zero components until it has at least n components.
func (v Vector) Grow(n int) Vector {
	if n <= len(v) {
		return v
	}
	if n <= cap(v) {
		return v[:n]
	}
	g := make(Vector, n)
	copy(g, v)
	return g
}

// Merge returns the componentwise maximum of v and w. The result has
// max(len(v), len(w)) components and shares no storage with either input.
func (v Vector) Merge(w Vector) Vector {
	n := len(v)
	if len(w) > n {
		n = len(w)
	}
	out := make(Vector, n)
	for i := range out {
		a, b := v.At(i), w.At(i)
		if a >= b {
			out[i] = a
		} else {
			out[i] = b
		}
	}
	return out
}

// MergeInPlace sets v to the componentwise maximum of v and w, growing v if
// needed, and returns the (possibly reallocated) vector. It avoids the
// allocation of Merge when v may be reused.
func (v Vector) MergeInPlace(w Vector) Vector {
	v = v.Grow(len(w))
	for i, b := range w {
		if b > v[i] {
			v[i] = b
		}
	}
	return v
}

// Compare returns the ordering of v relative to w. Missing components are
// treated as zero, so [2,1] and [2,1,0,0] are Equal, and [2,1] is Before
// [2,1,4].
func (v Vector) Compare(w Vector) Ordering {
	n := len(v)
	if len(w) > n {
		n = len(w)
	}
	var less, greater bool
	for i := 0; i < n; i++ {
		a, b := v.At(i), w.At(i)
		switch {
		case a < b:
			less = true
		case a > b:
			greater = true
		}
		if less && greater {
			return Concurrent
		}
	}
	switch {
	case less:
		return Before
	case greater:
		return After
	default:
		return Equal
	}
}

// Less reports whether v < w: every component of v is ≤ the corresponding
// component of w and at least one is strictly smaller. For a valid clock this
// is exactly happened-before (Theorem 2 of the paper).
func (v Vector) Less(w Vector) bool {
	return v.Compare(w) == Before
}

// Concurrent reports whether v and w are incomparable.
func (v Vector) Concurrent(w Vector) bool {
	return v.Compare(w) == Concurrent
}

// Equal reports whether v and w are componentwise equal (missing components
// count as zero).
func (v Vector) Equal(w Vector) bool {
	return v.Compare(w) == Equal
}

// Sum returns the sum of all components. Useful as a cheap progress measure:
// each event increments at least one component, so Sum is monotone along any
// causal chain.
func (v Vector) Sum() uint64 {
	var s uint64
	for _, x := range v {
		s += x
	}
	return s
}

// String renders the vector as "[a b c]".
func (v Vector) String() string {
	var b strings.Builder
	b.WriteByte('[')
	for i, x := range v {
		if i > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(strconv.FormatUint(x, 10))
	}
	b.WriteByte(']')
	return b.String()
}
