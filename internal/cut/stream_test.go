package cut_test

import (
	"math/rand"
	"testing"

	"mixedclock/internal/clock"
	"mixedclock/internal/core"
	"mixedclock/internal/cut"
	"mixedclock/internal/trace"
)

// TestLineTrackerMatchesRecoveryLine streams every generator workload's
// stamps through a LineTracker armed at a random bad event and checks the
// final line equals the offline RecoveryLine — and that intermediate lines
// are consistent cuts of the prefix seen so far.
func TestLineTrackerMatchesRecoveryLine(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	for _, w := range trace.Workloads() {
		tr, err := trace.Generate(w, trace.Config{Threads: 5, Objects: 5, Events: 120, ReadFraction: 0.2}, rng)
		if err != nil {
			t.Fatal(err)
		}
		stamps := clock.Run(tr, core.AnalyzeTrace(tr).NewClock())
		bad := rng.Intn(tr.Len())
		lt := cut.NewLineTracker()
		for i, v := range stamps {
			if i == bad {
				lt.Arm(bad, 0, v)
			}
			lt.Add(tr.At(i), 0, v)
		}
		want, err := cut.RecoveryLine(tr, stamps, bad)
		if err != nil {
			t.Fatal(err)
		}
		got := lt.Line()
		if got.String() != want.String() {
			t.Fatalf("%v bad=%d: streaming line %v, offline %v", w, bad, got, want)
		}
		if !cut.IsConsistent(tr, got) {
			t.Fatalf("%v bad=%d: line %v inconsistent", w, bad, got)
		}
	}
}

// TestLineTrackerEpochBarrier checks that every event in an epoch after the
// bad event's is contaminated regardless of its raw stamp.
func TestLineTrackerEpochBarrier(t *testing.T) {
	rng := rand.New(rand.NewSource(59))
	tr, err := trace.Generate(trace.Uniform, trace.Config{Threads: 3, Objects: 3, Events: 30}, rng)
	if err != nil {
		t.Fatal(err)
	}
	stamps := clock.Run(tr, core.AnalyzeTrace(tr).NewClock())
	lt := cut.NewLineTracker()
	for i, v := range stamps {
		epoch := 0
		if i >= 15 {
			epoch = 1
		}
		if i == 14 {
			lt.Arm(i, 0, v)
		}
		lt.Add(tr.At(i), epoch, v)
	}
	// No thread's clean prefix may include any epoch-1 event: count events
	// per thread in epoch 0 and check the line never exceeds it.
	per := make([]int, tr.Threads())
	for i := 0; i < 15; i++ {
		per[tr.At(i).Thread]++
	}
	line := lt.Line()
	for t2, c := range line.PerThread {
		if c > per[t2] {
			t.Fatalf("thread %d line %d exceeds its epoch-0 prefix %d", t2, c, per[t2])
		}
	}
}
