module mixedclock

go 1.24
