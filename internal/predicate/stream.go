package predicate

import (
	"mixedclock/internal/cut"
	"mixedclock/internal/event"
)

// Streamer is the online form of Possibly: it consumes the live event
// stream one record at a time and evaluates predicates over the lattice of
// consistent global states reachable from the retained window. Events that
// slide out of the window are folded into a base prefix that every explored
// state treats as executed.
//
// The windowing is sound but not complete: any trace prefix is itself a
// consistent cut, so every state the windowed exploration reports really is
// a consistent global state of the full computation — a witness is a true
// witness. Witnesses that would require *not* executing an event that has
// already left the window are missed; that is the price of bounded memory,
// and the same trade every online predicate detector makes.
//
// Within a windowed evaluation, events returned by State.LastEvent /
// LastOnObject carry window-relative indices; thread and object IDs and
// executed counts are global.
type Streamer struct {
	window int
	events []event.Event
	base   baseState
}

// NewStreamer returns a streamer retaining the last window events;
// window <= 0 retains everything, making Possibly equivalent to the offline
// call on the materialized trace.
func NewStreamer(window int) *Streamer {
	return &Streamer{window: window}
}

// evict folds the oldest n window events into the base prefix.
func (s *Streamer) evict(n int) {
	for _, e := range s.events[:n] {
		t, o := int(e.Thread), int(e.Object)
		for len(s.base.executed) <= t {
			s.base.executed = append(s.base.executed, 0)
			s.base.lastThread = append(s.base.lastThread, event.Event{})
			s.base.hasThread = append(s.base.hasThread, false)
		}
		for len(s.base.hasObject) <= o {
			s.base.lastObject = append(s.base.lastObject, event.Event{})
			s.base.hasObject = append(s.base.hasObject, false)
		}
		s.base.executed[t]++
		s.base.total++
		s.base.lastThread[t], s.base.hasThread[t] = e, true
		s.base.lastObject[o], s.base.hasObject[o] = e, true
	}
	s.events = append(s.events[:0:0], s.events[n:]...)
}

// Add consumes the next event of the stream.
func (s *Streamer) Add(e event.Event) {
	s.events = append(s.events, e)
	if s.window > 0 && len(s.events) > s.window {
		s.evict(len(s.events) - s.window)
	}
}

// Barrier evicts the whole window into the base prefix. The monitor calls
// it at epoch boundaries: a Compact barrier orders everything before it
// before everything after, so states that unexecute pre-barrier events
// while executing post-barrier ones are not consistent and must not be
// explored.
func (s *Streamer) Barrier() {
	s.evict(len(s.events))
}

// Len returns the number of events currently inside the window.
func (s *Streamer) Len() int { return len(s.events) }

// Total returns the number of events consumed so far, evicted or not.
func (s *Streamer) Total() int { return s.base.total + len(s.events) }

// Possibly reports whether some consistent global state reachable from the
// retained window satisfies pred, with the same budget semantics as the
// offline Possibly. The witness cut counts whole-stream per-thread
// prefixes (base included).
func (s *Streamer) Possibly(pred Predicate, maxStates int) (cut.Cut, bool, error) {
	wt := event.NewTrace()
	for _, e := range s.events {
		wt.Append(e.Thread, e.Object, e.Op)
	}
	d := newDetector(wt)
	if s.base.total > 0 {
		base := s.base // snapshot; exploration must not alias live slices
		base.executed = append([]int(nil), s.base.executed...)
		d.base = &base
	}
	return possiblyOn(d, pred, maxStates)
}
