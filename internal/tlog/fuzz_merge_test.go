package tlog

import (
	"bytes"
	"io"
	"testing"

	"mixedclock/internal/event"
	"mixedclock/internal/vclock"
)

// FuzzSegmentMerge drives MergeSegments from both directions. The
// constructive half derives a computation from the input, seals it as a run
// of input-chosen cut points, merges the run, and requires the merged
// segment to replay record-for-record identically to the sources — the
// compaction equivalence the tracker's lifecycle manager relies on. The
// adversarial half feeds the raw input (and a bit-flipped sealed run) as
// merge sources: the only acceptable outcomes are a merged segment or a
// clean error, never a panic and never output on failure.
func FuzzSegmentMerge(f *testing.F) {
	f.Add([]byte{}, uint16(0))
	f.Add([]byte{9, 8, 7, 6, 5, 4, 3, 2, 1, 0, 1, 2}, uint16(3))
	f.Add(bytes.Repeat([]byte{0x11, 0xe0, 0x7f}, 40), uint16(257))

	f.Fuzz(func(t *testing.T, data []byte, cut uint16) {
		// Adversarial half A: raw input as one source, and split in two.
		mergeMustNotPanic(t, [][]byte{data})
		if len(data) > 1 {
			at := int(cut) % len(data)
			mergeMustNotPanic(t, [][]byte{data[:at], data[at:]})
		}

		// Constructive half: derive a computation (same recipe as
		// FuzzSegmentRoundTrip), seal it as a run of small segments.
		src := data
		var events []event.Event
		var stamps []vclock.Vector
		prev := map[event.ThreadID]vclock.Vector{}
		for len(src) >= 4 && len(events) < 120 {
			tid := event.ThreadID(src[0] % 5)
			oid := event.ObjectID(src[1] % 5)
			op := event.Op(src[2] % 2)
			grow := int(src[3] % 8)
			src = src[4:]
			v := prev[tid].Clone()
			for i := 0; i < grow && len(src) > 0; i++ {
				v = v.Set(len(v), uint64(src[0]))
				src = src[1:]
			}
			prev[tid] = v
			events = append(events, event.Event{Index: len(events), Thread: tid, Object: oid, Op: op})
			stamps = append(stamps, v.Clone())
		}
		if len(events) < 2 {
			return
		}
		segSize := 1 + int(cut)%len(events)
		var pieces [][]byte
		for at := 0; at < len(events); at += segSize {
			end := at + segSize
			if end > len(events) {
				end = len(events)
			}
			var payload bytes.Buffer
			w := NewDeltaWriter(&payload)
			widths := make([]int, 0, end-at)
			for i := at; i < end; i++ {
				if err := w.Append(events[i], stamps[i]); err != nil {
					t.Fatal(err)
				}
				widths = append(widths, len(stamps[i]))
			}
			if err := w.Flush(); err != nil {
				t.Fatal(err)
			}
			piece, err := AppendSegment(nil, SegmentMeta{FirstIndex: at, Count: end - at}, widths, payload.Bytes())
			if err != nil {
				t.Fatal(err)
			}
			pieces = append(pieces, piece)
		}
		readers := make([]io.Reader, len(pieces))
		for i, p := range pieces {
			readers[i] = bytes.NewReader(p)
		}
		var merged bytes.Buffer
		meta, err := MergeSegments(&merged, readers...)
		if err != nil {
			t.Fatalf("merging a valid run: %v", err)
		}
		if meta.FirstIndex != 0 || meta.Count != len(events) {
			t.Fatalf("merged meta %+v for %d events", meta, len(events))
		}
		sr, err := NewSegmentReader(bytes.NewReader(merged.Bytes()))
		if err != nil {
			t.Fatalf("merged segment rejected: %v", err)
		}
		for i := 0; ; i++ {
			e, v, err := sr.Next()
			if err == io.EOF {
				if i != len(events) {
					t.Fatalf("merged replay stopped at %d of %d records", i, len(events))
				}
				break
			}
			if err != nil {
				t.Fatalf("merged record %d: %v", i, err)
			}
			if e != events[i] {
				t.Fatalf("merged record %d: event %+v, want %+v", i, e, events[i])
			}
			if len(v) != len(stamps[i]) || !v.Equal(stamps[i]) {
				t.Fatalf("merged record %d: stamp %v (width %d), want %v (width %d)",
					i, v, len(v), stamps[i], len(stamps[i]))
			}
		}

		// Adversarial half B: corrupt one source of the valid run.
		if len(pieces) > 1 && len(pieces[0]) > 0 {
			mut := bytes.Clone(pieces[0])
			mut[int(cut)%len(mut)] ^= 1 << (cut % 8)
			corrupted := [][]byte{mut}
			for _, p := range pieces[1:] {
				corrupted = append(corrupted, p)
			}
			mergeMustNotPanic(t, corrupted)
		}
	})
}

// mergeMustNotPanic merges the given byte slices as segment sources. Any
// error is acceptable — a bad source surfaces as ErrTruncated/ErrCorrupt/
// ErrBadMagic/io.EOF from the reader or as MergeSegments' own run checks —
// but a failed merge must not panic and must not have produced output.
func mergeMustNotPanic(t *testing.T, srcs [][]byte) {
	t.Helper()
	readers := make([]io.Reader, len(srcs))
	for i, s := range srcs {
		readers[i] = bytes.NewReader(s)
	}
	var out bytes.Buffer
	if _, err := MergeSegments(&out, readers...); err != nil && out.Len() != 0 {
		t.Fatalf("failed merge (%v) wrote %d bytes", err, out.Len())
	}
}
