// Debugging demonstrates the paper's debugging use-case on a
// producer–consumer pipeline: producers push work through a bounded queue
// object to consumers, which write results; a stats goroutine occasionally
// reads both. The recorded timestamps then reconstruct what actually
// happened — which results could have been influenced by which inputs, and
// where the schedule could have gone differently.
//
// This is the post-mortem side of the story: the run finishes, Snapshot
// materializes the trace and stamps behind one barrier, and the offline
// analyses answer questions about it. The same questions can be asked
// while the run is still going — see examples/bankledger for the online
// Monitor, and examples/onlinevsoffline for the trade-off between the two.
package main

import (
	"fmt"
	"sync"

	"mixedclock"
)

func main() {
	tracker := mixedclock.NewTracker()

	queue := tracker.NewObject("queue")
	results := tracker.NewObject("results")

	var (
		queued    []int
		resultSet []int
	)

	// Producers hand items to consumers through a real channel; the
	// tracker records the corresponding object operations so causality is
	// captured at the queue.
	ch := make(chan int, 4)
	var producers, consumers, stats sync.WaitGroup

	var produceStamps []mixedclock.Stamped
	var produceMu sync.Mutex
	for p := 0; p < 2; p++ {
		th := tracker.NewThread(fmt.Sprintf("producer-%d", p))
		producers.Add(1)
		go func(base int) {
			defer producers.Done()
			for k := 0; k < 5; k++ {
				item := base*10 + k
				s := th.Write(queue, func() { queued = append(queued, item) })
				produceMu.Lock()
				produceStamps = append(produceStamps, s)
				produceMu.Unlock()
				ch <- item
			}
		}(p + 1)
	}

	var consumeStamps []mixedclock.Stamped
	var consumeMu sync.Mutex
	for c := 0; c < 2; c++ {
		th := tracker.NewThread(fmt.Sprintf("consumer-%d", c))
		consumers.Add(1)
		go func() {
			defer consumers.Done()
			for item := range ch {
				th.Read(queue, nil) // observe the dequeue
				s := th.Write(results, func() { resultSet = append(resultSet, item*item) })
				consumeMu.Lock()
				consumeStamps = append(consumeStamps, s)
				consumeMu.Unlock()
			}
		}()
	}

	statsThread := tracker.NewThread("stats")
	stats.Add(1)
	go func() {
		defer stats.Done()
		for k := 0; k < 3; k++ {
			statsThread.Read(queue, nil)
			statsThread.Read(results, nil)
		}
	}()

	producers.Wait()
	close(ch)
	consumers.Wait()
	stats.Wait()

	fmt.Printf("pipeline done: %d items queued, %d results\n", len(queued), len(resultSet))

	tr, stamps := tracker.Snapshot()
	fmt.Printf("recorded %d events; clock has %d components %v\n\n",
		tracker.Events(), tracker.Size(), tracker.Components())

	// Question 1: could the first result have been influenced by the last
	// queued item? Timestamps answer without replaying anything.
	if len(produceStamps) > 0 && len(consumeStamps) > 0 {
		lastProduce := produceStamps[len(produceStamps)-1]
		firstConsume := consumeStamps[0]
		rel := "is concurrent with (no influence possible)"
		if lastProduce.HappenedBefore(firstConsume) {
			rel = "happened before (influence possible)"
		} else if firstConsume.HappenedBefore(lastProduce) {
			rel = "happened after (no influence possible)"
		}
		fmt.Printf("last enqueue %v %s first result %v\n\n",
			lastProduce.Event, rel, firstConsume.Event)
	}

	// Question 2: overall concurrency structure.
	fmt.Printf("census: %v\n", mixedclock.TakeCensus(stamps))

	// Question 3: which pairs were ordered only by a lock (schedule
	// accidents a stress test should try to flip)?
	pairs := mixedclock.ScheduleSensitivePairs(tr)
	fmt.Printf("schedule-sensitive pairs: %d (showing up to 5)\n", len(pairs))
	for i, p := range pairs {
		if i == 5 {
			break
		}
		fmt.Printf("  %v\n", p)
	}

	// Question 4: which threads contend the most?
	matrix := mixedclock.ConflictMatrix(tr)
	fmt.Println("\ncontention matrix (rows precede columns):")
	for i, row := range matrix {
		fmt.Printf("  %v %v\n", mixedclock.ThreadID(i), row)
	}

	if err := mixedclock.Validate(tr, stamps, "debugging"); err != nil {
		panic(err)
	}
	fmt.Println("\ntimestamps validated against the happened-before oracle")
}
