package mixedclock_test

import (
	"bytes"
	"sync"
	"testing"

	"mixedclock"
)

// TestFacadeOfflineWorkflow exercises the documented offline path end to
// end through the public API only.
func TestFacadeOfflineWorkflow(t *testing.T) {
	tr := mixedclock.NewTrace()
	tr.Append(1, 0, mixedclock.OpWrite) // [T2, O1]
	tr.Append(0, 1, mixedclock.OpWrite) // [T1, O2]
	tr.Append(1, 2, mixedclock.OpWrite) // [T2, O3]
	tr.Append(2, 2, mixedclock.OpWrite) // [T3, O3]
	tr.Append(3, 1, mixedclock.OpWrite) // [T4, O2]
	tr.Append(1, 1, mixedclock.OpWrite) // [T2, O2]
	tr.Append(2, 1, mixedclock.OpWrite) // [T3, O2]
	tr.Append(1, 3, mixedclock.OpWrite) // [T2, O4]

	a := mixedclock.AnalyzeTrace(tr)
	if err := a.Verify(); err != nil {
		t.Fatal(err)
	}
	if a.VectorSize() != 3 {
		t.Fatalf("optimal size = %d, want 3", a.VectorSize())
	}
	stamps := mixedclock.Run(tr, a.NewClock())
	if err := mixedclock.Validate(tr, stamps, "facade"); err != nil {
		t.Fatal(err)
	}
	// Happened-before queries straight off the stamps.
	if !stamps[0].Less(stamps[3]) {
		t.Error("[T2,O1] should precede [T3,O3]")
	}
	if !stamps[0].Concurrent(stamps[1]) {
		t.Error("[T2,O1] and [T1,O2] should be concurrent")
	}
}

func TestFacadeOnlineWorkflow(t *testing.T) {
	clk := mixedclock.NewOnlineClock(mixedclock.NewHybrid())
	tr := mixedclock.NewTrace()
	tr.Append(0, 0, mixedclock.OpWrite)
	tr.Append(1, 0, mixedclock.OpWrite)
	tr.Append(0, 1, mixedclock.OpRead)
	stamps := mixedclock.Run(tr, clk)
	if err := mixedclock.Validate(tr, stamps, clk.Name()); err != nil {
		t.Fatal(err)
	}
	if clk.Components() == 0 {
		t.Fatal("online clock never grew")
	}
}

func TestFacadeTracker(t *testing.T) {
	tracker := mixedclock.NewTracker(mixedclock.WithMechanism(mixedclock.Popularity{}))
	shared := tracker.NewObject("shared")

	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		th := tracker.NewThread("worker")
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 5; j++ {
				th.Write(shared, nil)
			}
		}()
	}
	wg.Wait()

	if tracker.Events() != 20 {
		t.Fatalf("Events = %d, want 20", tracker.Events())
	}
	trace, stamps := tracker.Snapshot()
	if err := mixedclock.Validate(trace, stamps, "tracker"); err != nil {
		t.Fatal(err)
	}
	// The one-barrier Snapshot and the individual accessors must agree.
	if trace.Len() != tracker.Trace().Len() || len(stamps) != len(tracker.Stamps()) {
		t.Fatal("Snapshot disagrees with Trace/Stamps")
	}
	// Everything funnels through one object. Popularity's tie-break picks
	// the first thread before the object becomes popular, so the size is 2:
	// that first thread plus the shared object (the optimum is 1).
	if tracker.Size() > 2 {
		t.Fatalf("Size = %d, want ≤ 2 (single shared object)", tracker.Size())
	}
}

func TestFacadeTraceSerialization(t *testing.T) {
	tr := mixedclock.NewTrace()
	tr.Append(0, 0, mixedclock.OpWrite)
	tr.Append(1, 2, mixedclock.OpRead)

	var buf bytes.Buffer
	if err := tr.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := mixedclock.ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 2 || got.At(1).Op != mixedclock.OpRead {
		t.Fatalf("round trip lost data: %+v", got.Events())
	}
}

func TestFacadeGraph(t *testing.T) {
	tr := mixedclock.NewTrace()
	tr.Append(0, 0, mixedclock.OpWrite)
	tr.Append(0, 1, mixedclock.OpWrite)
	g := mixedclock.GraphFromTrace(tr)
	if g.Edges() != 2 || !g.HasEdge(0, 1) {
		t.Fatalf("graph wrong: %v", g)
	}
	a := mixedclock.Analyze(g)
	if a.VectorSize() != 1 {
		t.Fatalf("one thread covers everything; size = %d", a.VectorSize())
	}
}

func TestFacadeOrderingConstants(t *testing.T) {
	v := mixedclock.Vector{1, 0}
	w := mixedclock.Vector{1, 1}
	if v.Compare(w) != mixedclock.Before || w.Compare(v) != mixedclock.After {
		t.Error("ordering constants broken")
	}
	if v.Compare(v.Clone()) != mixedclock.Equal {
		t.Error("Equal broken")
	}
	if mixedclock.Vector([]uint64{1, 0}).Compare(mixedclock.Vector{0, 1}) != mixedclock.Concurrent {
		t.Error("Concurrent broken")
	}
}
