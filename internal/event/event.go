// Package event defines the computation model of the paper: a computation is
// a sequence of events, each of which is one thread performing one operation
// on one shared object. Threads are sequential, and all operations on a
// single object are sequential too (the paper assumes per-object locking), so
// both the per-thread and the per-object event sequences are chains in the
// happened-before partial order.
package event

import (
	"errors"
	"fmt"
)

// ThreadID identifies a thread (process) in a computation. IDs are dense
// indices starting at 0 so they can index slices directly.
type ThreadID int

// ObjectID identifies a shared object in a computation. IDs are dense indices
// starting at 0.
type ObjectID int

// String renders the thread as "T<n>" (1-based, matching the paper's
// figures).
func (t ThreadID) String() string { return fmt.Sprintf("T%d", int(t)+1) }

// String renders the object as "O<n>" (1-based, matching the paper's
// figures).
func (o ObjectID) String() string { return fmt.Sprintf("O%d", int(o)+1) }

// Op distinguishes read-like from write-like operations. The core algorithm
// is agnostic to the kind of operation; the distinction exists for the race
// detection application, which only flags pairs where at least one side
// writes.
type Op int

const (
	// OpWrite mutates the object. The zero value is a write so traces that
	// never mention operation kinds behave like the paper's model, where
	// every operation conflicts with every other on the same object.
	OpWrite Op = iota
	// OpRead observes the object without mutating it.
	OpRead
)

// String returns "write" or "read".
func (op Op) String() string {
	switch op {
	case OpWrite:
		return "write"
	case OpRead:
		return "read"
	default:
		return fmt.Sprintf("Op(%d)", int(op))
	}
}

// Event is one operation in a computation: Thread performed Op on Object.
// Index is the event's position in its trace (assigned by Trace methods; -1
// in a free-standing event).
type Event struct {
	Index  int      `json:"i"`
	Thread ThreadID `json:"t"`
	Object ObjectID `json:"o"`
	Op     Op       `json:"op,omitempty"`
}

// String renders the event like the paper's "[T2, O1]" notation.
func (e Event) String() string {
	return fmt.Sprintf("[%v, %v]", e.Thread, e.Object)
}

// Errors returned by trace validation.
var (
	// ErrNegativeID reports a thread or object ID below zero.
	ErrNegativeID = errors.New("event: negative thread or object ID")
	// ErrBadIndex reports an event whose Index does not match its position.
	ErrBadIndex = errors.New("event: event index does not match position")
)

// Trace is an ordered computation: the i-th element is the i-th event
// revealed (the paper's online setting reveals exactly one event at a time).
// The total order of a trace is one legal interleaving; the causal order is
// the happened-before relation derived from per-thread and per-object
// chains (see package hb).
type Trace struct {
	events []Event
	// threads and objects track the number of distinct IDs seen, as
	// 1 + max(ID). Dense ID spaces are assumed (generator-produced traces
	// always satisfy this; loaded traces are validated).
	threads int
	objects int
}

// NewTrace returns an empty trace.
func NewTrace() *Trace { return &Trace{} }

// Append adds an operation to the trace, assigning its index, and returns
// the stored event.
func (tr *Trace) Append(t ThreadID, o ObjectID, op Op) Event {
	e := Event{Index: len(tr.events), Thread: t, Object: o, Op: op}
	tr.events = append(tr.events, e)
	if int(t)+1 > tr.threads {
		tr.threads = int(t) + 1
	}
	if int(o)+1 > tr.objects {
		tr.objects = int(o) + 1
	}
	return e
}

// AppendEvent adds a pre-built event (its Index is overwritten).
func (tr *Trace) AppendEvent(e Event) Event {
	return tr.Append(e.Thread, e.Object, e.Op)
}

// Len returns the number of events.
func (tr *Trace) Len() int { return len(tr.events) }

// At returns the i-th event.
func (tr *Trace) At(i int) Event { return tr.events[i] }

// Events returns a copy of the underlying event slice, so callers cannot
// corrupt the trace.
func (tr *Trace) Events() []Event {
	out := make([]Event, len(tr.events))
	copy(out, tr.events)
	return out
}

// Threads returns the number of distinct thread IDs (computed as
// 1 + max thread ID).
func (tr *Trace) Threads() int { return tr.threads }

// Objects returns the number of distinct object IDs (computed as
// 1 + max object ID).
func (tr *Trace) Objects() int { return tr.objects }

// Validate checks internal consistency: non-negative IDs and indices
// matching positions. Traces built through Append always validate; this
// guards traces loaded from disk.
func (tr *Trace) Validate() error {
	for i, e := range tr.events {
		if e.Thread < 0 || e.Object < 0 {
			return fmt.Errorf("%w: event %d is %v", ErrNegativeID, i, e)
		}
		if e.Index != i {
			return fmt.Errorf("%w: event at position %d has index %d", ErrBadIndex, i, e.Index)
		}
	}
	return nil
}

// ByThread groups event indices by thread, in trace order. The result has
// Threads() entries.
func (tr *Trace) ByThread() [][]int {
	out := make([][]int, tr.threads)
	for i, e := range tr.events {
		out[e.Thread] = append(out[e.Thread], i)
	}
	return out
}

// ByObject groups event indices by object, in trace order. The result has
// Objects() entries.
func (tr *Trace) ByObject() [][]int {
	out := make([][]int, tr.objects)
	for i, e := range tr.events {
		out[e.Object] = append(out[e.Object], i)
	}
	return out
}
