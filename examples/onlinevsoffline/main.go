// Onlinevsoffline compares the paper's online mechanisms (§IV) against the
// offline optimum (§III) on two synthetic computations — one uniform, one
// with a hot set — printing the clock-size table the paper's evaluation
// builds its conclusions on: Popularity shines on sparse, skewed
// computations; Naive wins once the access structure gets dense.
package main

import (
	"fmt"
	"math/rand"

	"mixedclock"
)

func main() {
	fmt.Println("final vector-clock size by mechanism (50 threads x 50 objects)")
	fmt.Println()
	fmt.Printf("%-28s %8s %8s %8s %8s %8s\n",
		"workload", "naive", "random", "popular", "hybrid", "offline")

	for _, w := range []struct {
		name string
		gen  func(rng *rand.Rand) *mixedclock.Trace
	}{
		{"uniform sparse (80 ops)", func(rng *rand.Rand) *mixedclock.Trace {
			return uniformTrace(rng, 80)
		}},
		{"uniform dense (2000 ops)", func(rng *rand.Rand) *mixedclock.Trace {
			return uniformTrace(rng, 2000)
		}},
		{"hot-set sparse (300 ops)", func(rng *rand.Rand) *mixedclock.Trace {
			return hotSetTrace(rng, 300)
		}},
		{"hot-set dense (3000 ops)", func(rng *rand.Rand) *mixedclock.Trace {
			return hotSetTrace(rng, 3000)
		}},
	} {
		tr := w.gen(rand.New(rand.NewSource(11)))
		fmt.Printf("%-28s %8d %8d %8d %8d %8d\n",
			w.name,
			runMechanism(tr, mixedclock.NaiveThreads{}),
			runMechanism(tr, mixedclock.Random{Rng: rand.New(rand.NewSource(5))}),
			runMechanism(tr, mixedclock.Popularity{}),
			runMechanism(tr, mixedclock.NewHybrid()),
			mixedclock.AnalyzeTrace(tr).VectorSize(),
		)
	}

	fmt.Println()
	fmt.Println("reading the table (the paper's §V conclusions):")
	fmt.Println("  - offline is the provable minimum (min vertex cover, Theorem 3)")
	fmt.Println("  - on skewed computations (hot set), popularity/hybrid track the")
	fmt.Println("    optimum and beat naive: hot objects cover many threads at once")
	fmt.Println("  - on uniform computations no endpoint is predictably better, so")
	fmt.Println("    popularity gains little; once most pairs interact (dense rows),")
	fmt.Println("    anything but naive wastes components (the Fig. 4 crossover)")
}

// runMechanism replays tr through an online clock and returns its final
// size.
func runMechanism(tr *mixedclock.Trace, m mixedclock.Mechanism) int {
	clk := mixedclock.NewOnlineClock(m)
	for _, e := range tr.Events() {
		clk.Timestamp(e)
	}
	return clk.Components()
}

func uniformTrace(rng *rand.Rand, events int) *mixedclock.Trace {
	tr := mixedclock.NewTrace()
	for i := 0; i < events; i++ {
		tr.Append(mixedclock.ThreadID(rng.Intn(50)), mixedclock.ObjectID(rng.Intn(50)), mixedclock.OpWrite)
	}
	return tr
}

// hotSetTrace sends 80% of operations to 5 hot objects.
func hotSetTrace(rng *rand.Rand, events int) *mixedclock.Trace {
	tr := mixedclock.NewTrace()
	for i := 0; i < events; i++ {
		o := rng.Intn(50)
		if rng.Float64() < 0.8 {
			o = rng.Intn(5)
		}
		tr.Append(mixedclock.ThreadID(rng.Intn(50)), mixedclock.ObjectID(o), mixedclock.OpWrite)
	}
	return tr
}
