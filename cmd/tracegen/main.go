// Command tracegen generates synthetic thread–object computations in the
// library's JSON Lines trace format.
//
// Usage:
//
//	tracegen [-workload uniform|hotset|zipf|producer-consumer|readers-writers|phased|lock-striped]
//	         [-threads N] [-objects M] [-events E] [-reads F] [-seed S] [-out FILE]
//
// Example:
//
//	tracegen -workload hotset -threads 50 -objects 50 -events 2000 > trace.jsonl
package main

import (
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"

	"mixedclock/internal/trace"
)

func main() {
	var (
		workload = flag.String("workload", "uniform", "trace family")
		threads  = flag.Int("threads", 50, "number of threads")
		objects  = flag.Int("objects", 50, "number of objects")
		events   = flag.Int("events", 1000, "number of operations")
		reads    = flag.Float64("reads", 0, "fraction of read operations")
		seed     = flag.Int64("seed", 1, "RNG seed")
		out      = flag.String("out", "-", "output file (- for stdout)")
	)
	flag.Parse()

	if err := run(*workload, *threads, *objects, *events, *reads, *seed, *out); err != nil {
		fmt.Fprintf(os.Stderr, "tracegen: %v\n", err)
		os.Exit(1)
	}
}

func run(workload string, threads, objects, events int, reads float64, seed int64, out string) error {
	w, err := lookupWorkload(workload)
	if err != nil {
		return err
	}
	cfg := trace.Config{
		Threads:      threads,
		Objects:      objects,
		Events:       events,
		ReadFraction: reads,
	}
	tr, err := trace.Generate(w, cfg, rand.New(rand.NewSource(seed)))
	if err != nil {
		return err
	}

	var dst io.Writer = os.Stdout
	if out != "-" {
		f, err := os.Create(out)
		if err != nil {
			return fmt.Errorf("creating %s: %w", out, err)
		}
		defer f.Close()
		dst = f
	}
	if err := tr.WriteJSONL(dst); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "tracegen: %v\n", tr.Summarize())
	return nil
}

func lookupWorkload(name string) (trace.Workload, error) {
	for _, w := range trace.Workloads() {
		if w.String() == name {
			return w, nil
		}
	}
	return 0, fmt.Errorf("unknown workload %q", name)
}
