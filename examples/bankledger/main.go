// Bankledger tracks causality in a concurrent bank: teller goroutines apply
// transfers between accounts, with every balance update timestamped by the
// live tracker. Afterwards the ledger answers audit questions — did this
// withdrawal observe that deposit, which updates were genuinely concurrent,
// and which adjacent updates were ordered only by the account lock (so a
// different schedule could have flipped them).
package main

import (
	"fmt"
	"math/rand"
	"sync"

	"mixedclock"
)

const (
	tellers   = 4
	accounts  = 6
	transfers = 12 // per teller
)

func main() {
	tracker := mixedclock.NewTracker(mixedclock.WithMechanism(mixedclock.Popularity{}))

	balances := make([]int, accounts)
	objs := make([]*mixedclock.Object, accounts)
	for i := range objs {
		balances[i] = 100
		objs[i] = tracker.NewObject(fmt.Sprintf("acct-%d", i))
	}

	// Each teller applies a deterministic (per-teller seed) sequence of
	// transfers. Locks are taken in account order to avoid deadlock —
	// standard banking discipline.
	var wg sync.WaitGroup
	for tid := 0; tid < tellers; tid++ {
		th := tracker.NewThread(fmt.Sprintf("teller-%d", tid))
		rng := rand.New(rand.NewSource(int64(100 + tid)))
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := 0; k < transfers; k++ {
				from := rng.Intn(accounts)
				to := rng.Intn(accounts)
				if from == to {
					to = (to + 1) % accounts
				}
				amount := 1 + rng.Intn(20)
				lo, hi := from, to
				if lo > hi {
					lo, hi = hi, lo
				}
				// Debit and credit are separate object operations; the
				// nested Do keeps the account locks ordered lo < hi.
				th.Write(objs[lo], func() {
					if lo == from {
						balances[lo] -= amount
					} else {
						balances[lo] += amount
					}
				})
				th.Write(objs[hi], func() {
					if hi == from {
						balances[hi] -= amount
					} else {
						balances[hi] += amount
					}
				})
			}
		}()
	}
	wg.Wait()
	if err := tracker.Err(); err != nil {
		panic(err)
	}

	total := 0
	for _, b := range balances {
		total += b
	}
	fmt.Printf("ledger: %d updates across %d accounts by %d tellers (total balance %d, expect %d)\n",
		tracker.Events(), accounts, tellers, total, accounts*100)
	fmt.Printf("mixed clock grew to %d components: %v\n", tracker.Size(), tracker.Components())
	fmt.Printf("(a thread clock would use %d, an object clock %d)\n\n", tellers, accounts)

	// Audit 1: how much genuine concurrency did the run have? Snapshot
	// merges the per-teller record buffers behind one barrier, so the trace
	// and stamps are a consistent pair.
	tr, stamps := tracker.Snapshot()
	fmt.Printf("census: %v\n", mixedclock.TakeCensus(stamps))

	// Audit 2: which same-account update pairs were ordered only by the
	// account lock? Their order was a scheduling accident.
	pairs := mixedclock.ScheduleSensitivePairs(tr)
	fmt.Printf("lock-only ordered update pairs: %d (showing up to 5)\n", len(pairs))
	for i, p := range pairs {
		if i == 5 {
			break
		}
		fmt.Printf("  %v\n", p)
	}

	// Audit 3: a concrete ordering question — did the first update observe
	// the last one? (With a valid clock the answer is one comparison.)
	first, last := 0, len(stamps)-1
	rel := "is concurrent with"
	switch {
	case stamps[first].Less(stamps[last]):
		rel = "happened before"
	case stamps[last].Less(stamps[first]):
		rel = "happened after"
	}
	fmt.Printf("\nupdate %d %v %s update %d %v\n", first, tr.At(first), rel, last, tr.At(last))

	// The recorded stamps must form a valid vector clock for the recorded
	// interleaving — the library's own checker proves it.
	if err := mixedclock.Validate(tr, stamps, "bankledger"); err != nil {
		panic(err)
	}
	fmt.Println("ledger timestamps validated against the happened-before oracle")
}
