package crashtest

import (
	"bytes"
	"syscall"
	"testing"

	"mixedclock/internal/track"
	"mixedclock/internal/vfs"
)

// rulesFromBytes decodes a fuzz input into a deterministic fault schedule:
// each 4-byte group becomes one rule (which ops fail, from which occurrence,
// how many times, with which error — including torn writes), and a trailing
// byte may arm a crash point. The mapping is total: every input is a valid
// schedule, so the fuzzer explores fault-timing space instead of fighting a
// parser.
func rulesFromBytes(script []byte) (rules []vfs.Rule, crashAt int64) {
	crashAt = -1
	for len(script) >= 4 && len(rules) < 4 {
		sel, nth, count, errSel := script[0], script[1], script[2], script[3]
		script = script[4:]
		r := vfs.Rule{Nth: int64(nth) % 64, Count: int64(count) % 8}
		switch sel % 4 {
		case 0:
			r.Ops = vfs.MutatingOps
		case 1:
			r.Ops = vfs.Ops(vfs.OpFileSync, vfs.OpSyncDir)
		case 2:
			r.Ops = vfs.Ops(vfs.OpRename, vfs.OpRemove)
		case 3:
			r.Ops = vfs.Ops(vfs.OpWrite)
			r.TornFrac = float64(sel%8) / 8
		}
		switch errSel % 3 {
		case 0: // default ErrInjected
		case 1:
			r.Err = syscall.ENOSPC
		case 2:
			r.Err = syscall.EIO
		}
		rules = append(rules, r)
	}
	if len(script) > 0 && script[0]%2 == 1 {
		crashAt = int64(script[0]) % 128
	}
	return rules, crashAt
}

// FuzzFaultyRecover drives the durable workload under an arbitrary
// fuzzer-chosen fault schedule — transient and persistent errors, torn
// writes, an optional crash freeze — then recovers the directory with the
// real filesystem. The contract is the sweep's: Open never panics and never
// errors, whatever came back is a fully usable tracker, and the repaired
// directory round-trips a clean Close/reopen.
func FuzzFaultyRecover(f *testing.F) {
	f.Add([]byte{})                           // fault-free
	f.Add([]byte{0, 0, 0, 1})                 // everything ENOSPC from the start
	f.Add([]byte{1, 2, 1, 2})                 // one EIO fsync blip (retried)
	f.Add([]byte{3, 1, 0, 0})                 // persistent torn writes
	f.Add([]byte{2, 3, 2, 1, 7})              // rename/remove faults plus a crash at op 7
	f.Add([]byte{0, 8, 4, 2, 1, 2, 1, 2, 33}) // layered schedule with a crash
	f.Add([]byte{41})                         // crash only, mid-run

	cfg := sweepConfig{
		name:      "fuzz",
		spill:     track.SpillPolicy{SealEvents: 3},
		compact:   track.CompactPolicy{MaxSegments: 2},
		retain:    track.RetainPolicy{MaxBytes: 1},
		rounds:    5,
		compactAt: map[int]int{2: 1},
	}

	f.Fuzz(func(t *testing.T, script []byte) {
		dir := t.TempDir()
		fi := vfs.NewFaulty(vfs.OS)
		rules, crashAt := rulesFromBytes(script)
		fi.Script(rules...)
		fi.CrashAt(crashAt)
		if tr, err := openAndRun(dir, cfg.store(fi), cfg); err == nil {
			_ = tr.Close() // may fail under the schedule; the damage is the point
		}

		// Recovery on the real filesystem: never a panic, never an error.
		re, err := track.Open(dir)
		if err != nil {
			t.Fatalf("Open after faulted run: %v", err)
		}
		if re.Recovery() == nil {
			t.Fatal("no RecoveryInfo from Open")
		}
		base := re.Events()
		th := re.NewThread("fuzz-t")
		ob := re.NewObject("fuzz-o")
		if s := th.Write(ob, nil); s.Event.Index != base {
			t.Fatalf("resumed commit at index %d, want %d", s.Event.Index, base)
		}
		var buf bytes.Buffer
		if err := re.SnapshotTo(&buf); err != nil {
			t.Fatalf("SnapshotTo after recovery: %v", err)
		}
		if err := re.Close(); err != nil {
			t.Fatalf("Close after recovery: %v", err)
		}
		re2, err := track.Open(dir)
		if err != nil {
			t.Fatalf("second Open: %v", err)
		}
		if !re2.Recovery().CleanClose {
			t.Fatal("Close marker lost across reopen")
		}
		if q := re2.Recovery().Quarantined; len(q) != 0 {
			t.Fatalf("repaired directory quarantined again: %v", q)
		}
		if got := re2.Events(); got != base+1 {
			t.Fatalf("second reopen at %d events, want %d", got, base+1)
		}
		if err := re2.Close(); err != nil {
			t.Fatal(err)
		}
	})
}
