// The unified store API: one coherent construction/lifecycle surface over
// the durability machinery.
//
//   - Store gathers every storage policy (spilling, tiered compaction,
//     retention) into one validated struct; WithStore is the canonical
//     option, and WithSpill/WithCompaction/WithRetention remain as thin
//     wrappers over its fields.
//   - Open(dir, opts...) brackets the start of a run: an empty or absent
//     directory starts fresh, an existing one is recovered (recover.go) —
//     hashes verified, clocks rebuilt, a torn tail quarantined — and
//     committing resumes at the correct epoch and trace index.
//   - Tracker.Close brackets the end: seal the tail, publish a final
//     catalog generation marked Closed, fsync the directory.
//
// Crash-consistency contract. What survives a crash is exactly the last
// published catalog generation and the immutable segment files it lists;
// what is lost is the unsealed suffix — live per-thread buffers plus the
// merged tail — and any seal whose catalog publication had not landed
// (Open quarantines such orphan files rather than guessing). The fsync
// points: every segment file is synced before the rename that makes it
// visible, the catalog temp file is synced before the rename that
// publishes it, and Close syncs the directory itself so the renames are
// durable too.

package track

import (
	"fmt"
	"path/filepath"

	"mixedclock/internal/bipartite"
	"mixedclock/internal/tlog"
	"mixedclock/internal/vfs"
)

// Store is the tracker's complete storage configuration: how history is
// sealed and spilled (Spill), how sealed segments are tier-compacted
// (Compact), and when old segments are retired (Retain). The zero Store
// keeps everything in memory.
type Store struct {
	Spill   SpillPolicy
	Compact CompactPolicy
	Retain  RetainPolicy
	// FS is the filesystem every durable path (sealing, catalog
	// publication, recovery, retention) runs on. Nil means vfs.OS — the
	// real filesystem through a zero-state passthrough. Tests substitute
	// vfs.Faulty to exercise the store under injected I/O errors and
	// crash points; the commit hot path never touches it.
	FS vfs.FS
}

// Validate checks the store's policies for contradictions a tracker would
// otherwise act on silently. Open rejects invalid stores; the legacy
// NewTracker accepts them as given.
func (s Store) Validate() error {
	if s.Spill.SealEvents < 0 {
		return fmt.Errorf("track: store: SealEvents %d is negative", s.Spill.SealEvents)
	}
	if s.Spill.SealEvery < 0 {
		return fmt.Errorf("track: store: SealEvery %d is negative", s.Spill.SealEvery)
	}
	if s.Spill.SealInterval < 0 {
		return fmt.Errorf("track: store: SealInterval %v is negative", s.Spill.SealInterval)
	}
	if s.Spill.Probe < 0 {
		return fmt.Errorf("track: store: Probe %v is negative", s.Spill.Probe)
	}
	if s.Compact.MaxSegments < 0 {
		return fmt.Errorf("track: store: MaxSegments %d is negative", s.Compact.MaxSegments)
	}
	if s.Compact.TargetBytes < 0 {
		return fmt.Errorf("track: store: TargetBytes %d is negative", s.Compact.TargetBytes)
	}
	if s.Retain.MaxAge < 0 {
		return fmt.Errorf("track: store: RetainPolicy.MaxAge %v is negative", s.Retain.MaxAge)
	}
	if s.Retain.MaxBytes < 0 {
		return fmt.Errorf("track: store: RetainPolicy.MaxBytes %d is negative", s.Retain.MaxBytes)
	}
	if s.Retain.Archive != "" && !s.Retain.enabled() {
		return fmt.Errorf("track: store: RetainPolicy.Archive set but neither MaxAge nor MaxBytes is; nothing would ever be archived")
	}
	if s.Retain.Archive != "" && s.Spill.Dir != "" && s.Retain.Archive == s.Spill.Dir {
		return fmt.Errorf("track: store: RetainPolicy.Archive is the spill directory itself")
	}
	return nil
}

// WithStore sets the tracker's complete storage configuration. An invalid
// store is recorded and surfaced as an error by Open (NewTracker, the
// lenient legacy constructor, applies it as given).
func WithStore(s Store) Option {
	return func(o *options) {
		if err := s.Validate(); err != nil && o.err == nil {
			o.err = err
		}
		o.store = s
	}
}

// Open opens dir as a durable run and returns a live Tracker backed by it.
//
//   - An absent or empty directory starts a fresh run spilling there (dir
//     is created on first seal).
//   - A directory holding a catalog published by a previous run — whether
//     it ended in Close or in a crash — is recovered: every listed segment
//     is verified (size, SHA-256, full decode), the per-thread and
//     per-object clocks, component cover and epoch bookkeeping are rebuilt
//     from the catalog's resume manifest plus a replay of the current
//     epoch, and committing resumes at the next trace index. Use Threads
//     and Objects to reattach to the registered handles, and Recovery for
//     a report of what was reconstructed.
//   - Damage never panics and never fails the Open: a torn catalog falls
//     back to the previous generation (or, failing that, starts fresh), a
//     torn or hash-mismatched segment tail and any orphan spill files are
//     quarantined (renamed aside), and the loss is reported through
//     Recovery and Err — the crash-consistency contract is that at most
//     the unsealed (or unpublished) suffix is lost.
//
// Open validates its options (unlike NewTracker): an invalid Store, or a
// WithSpill directory conflicting with dir, is an error. An empty dir is
// allowed and means an in-memory tracker, for symmetry.
func Open(dir string, opts ...Option) (*Tracker, error) {
	o := defaultOptions()
	for _, opt := range opts {
		opt(&o)
	}
	if o.err != nil {
		return nil, fmt.Errorf("track: opening %q: %w", dir, o.err)
	}
	if dir != "" {
		if o.store.Spill.Dir != "" && o.store.Spill.Dir != dir {
			return nil, fmt.Errorf("track: opening %q: WithSpill names a different directory %q", dir, o.store.Spill.Dir)
		}
		o.store.Spill.Dir = dir
	}
	// Validate with the directory filled in, so dir-dependent checks (like
	// Archive colliding with the spill directory) see the real value.
	if err := o.store.Validate(); err != nil {
		return nil, fmt.Errorf("track: opening %q: %w", dir, err)
	}
	t := newTracker(o)
	if t.spill.Dir == "" {
		return t, nil
	}
	if err := t.recoverDir(o); err != nil {
		return nil, fmt.Errorf("track: opening %q: %w", dir, err)
	}
	return t, nil
}

// Close ends the run: it seals the tail into a final segment, publishes a
// final catalog generation marked Closed, and fsyncs the spill directory so
// everything — segment renames included — is durable. After Close, Do
// panics and the mutating lifecycle methods (Seal, Compact,
// CompactSegments, RetainSegments) return errors; the read side (Stream,
// Snapshot, Catalog, lazy stamps) keeps working for post-mortem use.
// Closing twice is a no-op. A seal failure is returned, with the tracker
// closed regardless and the unsealed tail still in memory.
func (t *Tracker) Close() error {
	if !t.closed.CompareAndSwap(false, true) {
		return nil
	}
	t.world.Lock()
	t.mergeLocked()
	err := t.sealLocked(t.mergedLenLocked())
	// The Closed marker changes the published document even when the tail
	// was empty; give it its own generation.
	t.swapHist(func(old *segState) *segState {
		return &segState{segs: old.segs, retained: old.retained, gen: old.gen + 1}
	})
	t.world.Unlock()
	t.reclaim.reclaim()
	t.publishCatalog()
	if t.spill.Dir != "" {
		if serr := syncDir(t.fs, t.spill.Dir); serr != nil && err == nil {
			err = fmt.Errorf("track: closing: %w", serr)
		}
	}
	// The final seal made the whole run replayable without a barrier; wake
	// monitors so they evaluate the last records. Sealed-history reads keep
	// working on a closed tracker, so monitors drain normally.
	t.notifyMonitors()
	return err
}

// captureResumeLocked rebuilds the resume manifest from the tracker's
// current registration, cover and epoch state. The caller holds the world
// write lock, so every revealer is quiescent and the shared graph and
// component set can be walked directly.
func (t *Tracker) captureResumeLocked() {
	cover := t.cover.Load()
	g := cover.Graph()
	comps := cover.Components()
	t.reg.Lock()
	threads := make([]string, len(t.threads))
	for i, th := range t.threads {
		threads[i] = th.name
	}
	objects := make([]string, len(t.objects))
	for i, o := range t.objects {
		objects[i] = o.name
	}
	t.reg.Unlock()
	r := &tlog.CatalogResume{
		Epoch:       t.epoch,
		EpochStarts: append([]int(nil), t.epochStart...),
		Backend:     t.requested.String(),
		Threads:     threads,
		Objects:     objects,
		Components:  make([]tlog.ResumeComponent, len(comps)),
		Edges:       make([][2]int, 0, len(g.EdgeList())),
	}
	for i, c := range comps {
		kind := tlog.ResumeObject
		if c.Side == bipartite.Threads {
			kind = tlog.ResumeThread
		}
		r.Components[i] = tlog.ResumeComponent{Kind: kind, ID: c.ID}
	}
	for _, e := range g.EdgeList() {
		r.Edges = append(r.Edges, [2]int{e.Thread, e.Object})
	}
	t.resume = r
}

// writeFileSync atomically creates dir/name with the given contents: the
// bytes land in a temp file, are fsynced, and are renamed into place. A
// crash mid-write leaves at most a stray temp file, never a torn name.
// Transient failures retry the whole cycle — the data is rewritten from
// memory each time, which is what makes retrying a failed fsync sound
// (faults.go).
func writeFileSync(fsys vfs.FS, dir, name string, data []byte) error {
	return retryTransient(func() error { return writeFileSyncOnce(fsys, dir, name, data) })
}

// writeFileSyncOnce is one temp-write-fsync-rename cycle.
func writeFileSyncOnce(fsys vfs.FS, dir, name string, data []byte) error {
	tmp, err := fsys.CreateTemp(dir, ".seg-*.tmp")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		fsys.Remove(tmp.Name())
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		fsys.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		fsys.Remove(tmp.Name())
		return err
	}
	if err := fsys.Rename(tmp.Name(), filepath.Join(dir, name)); err != nil {
		fsys.Remove(tmp.Name())
		return err
	}
	return nil
}

// syncDir fsyncs a directory, making completed renames within it durable.
// Transient failures retry the whole open-fsync cycle.
func syncDir(fsys vfs.FS, dir string) error {
	return retryTransient(func() error { return fsys.SyncDir(dir) })
}
