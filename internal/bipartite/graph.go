// Package bipartite implements the thread–object bipartite graph of §III-A:
// the left side holds threads, the right side holds objects, and an edge
// (t, o) exists iff thread t performed at least one operation on object o in
// the computation. The minimum vertex cover of this graph is exactly the
// optimal component set for a mixed vector clock.
//
// The package also provides the random graph generators used by the paper's
// evaluation (§V): the Uniform scenario (every edge appears independently
// with the same probability) and the Nonuniform scenario (a small hot set of
// threads and objects attracts edges with much higher probability).
package bipartite

import (
	"fmt"
	"sort"

	"mixedclock/internal/event"
)

// Side distinguishes the two vertex classes.
type Side int

const (
	// Threads is the left side of the graph.
	Threads Side = iota + 1
	// Objects is the right side of the graph.
	Objects
)

// String returns "threads" or "objects".
func (s Side) String() string {
	switch s {
	case Threads:
		return "threads"
	case Objects:
		return "objects"
	default:
		return fmt.Sprintf("Side(%d)", int(s))
	}
}

// Graph is a thread–object bipartite graph with dense vertex IDs:
// threads 0..NThreads-1 on the left, objects 0..NObjects-1 on the right.
// The zero value is an empty graph; use AddEdge (or a constructor) to grow
// it. Parallel edges are coalesced: the graph records only whether a thread
// ever touched an object, matching the paper's definition.
type Graph struct {
	nThreads int
	nObjects int
	// adjT[t] lists object neighbours of thread t in insertion order;
	// adjO[o] lists thread neighbours of object o.
	adjT [][]int
	adjO [][]int
	// has provides O(1) duplicate-edge detection.
	has   map[[2]int]struct{}
	edges int
}

// New returns an empty graph with the given number of threads and objects.
// Both counts may be zero; the graph grows as edges are added.
func New(nThreads, nObjects int) *Graph {
	g := &Graph{has: make(map[[2]int]struct{})}
	g.EnsureThreads(nThreads)
	g.EnsureObjects(nObjects)
	return g
}

// FromTrace projects a computation onto its thread–object bipartite graph.
func FromTrace(tr *event.Trace) *Graph {
	g := New(tr.Threads(), tr.Objects())
	for _, e := range tr.Events() {
		g.AddEdge(int(e.Thread), int(e.Object))
	}
	return g
}

// EnsureThreads grows the left side to at least n vertices.
func (g *Graph) EnsureThreads(n int) {
	for g.nThreads < n {
		g.adjT = append(g.adjT, nil)
		g.nThreads++
	}
}

// EnsureObjects grows the right side to at least n vertices.
func (g *Graph) EnsureObjects(n int) {
	for g.nObjects < n {
		g.adjO = append(g.adjO, nil)
		g.nObjects++
	}
}

// AddEdge records that thread t operated on object o, growing the vertex
// sets if needed. It returns true if the edge is new, false if it already
// existed (the paper coalesces repeat operations into one edge).
func (g *Graph) AddEdge(t, o int) bool {
	if t < 0 || o < 0 {
		panic(fmt.Sprintf("bipartite: negative vertex (t=%d, o=%d)", t, o))
	}
	g.EnsureThreads(t + 1)
	g.EnsureObjects(o + 1)
	if g.lazyHas() {
		if _, ok := g.has[[2]int{t, o}]; ok {
			return false
		}
	}
	g.has[[2]int{t, o}] = struct{}{}
	g.adjT[t] = append(g.adjT[t], o)
	g.adjO[o] = append(g.adjO[o], t)
	g.edges++
	return true
}

// lazyHas initializes the duplicate-detection map for zero-value graphs and
// reports true (it exists purely so the zero value works).
func (g *Graph) lazyHas() bool {
	if g.has == nil {
		g.has = make(map[[2]int]struct{})
	}
	return true
}

// HasEdge reports whether thread t has operated on object o.
func (g *Graph) HasEdge(t, o int) bool {
	if g.has == nil {
		return false
	}
	_, ok := g.has[[2]int{t, o}]
	return ok
}

// NThreads returns the number of left-side vertices.
func (g *Graph) NThreads() int { return g.nThreads }

// NObjects returns the number of right-side vertices.
func (g *Graph) NObjects() int { return g.nObjects }

// Edges returns the number of distinct edges.
func (g *Graph) Edges() int { return g.edges }

// ThreadNeighbors returns the objects adjacent to thread t, in insertion
// order. The returned slice is shared with the graph; callers must not
// mutate it.
func (g *Graph) ThreadNeighbors(t int) []int { return g.adjT[t] }

// ObjectNeighbors returns the threads adjacent to object o, in insertion
// order. The returned slice is shared with the graph; callers must not
// mutate it.
func (g *Graph) ObjectNeighbors(o int) []int { return g.adjO[o] }

// ThreadDegree returns the degree of thread t (0 if t is out of range).
func (g *Graph) ThreadDegree(t int) int {
	if t < 0 || t >= g.nThreads {
		return 0
	}
	return len(g.adjT[t])
}

// ObjectDegree returns the degree of object o (0 if o is out of range).
func (g *Graph) ObjectDegree(o int) int {
	if o < 0 || o >= g.nObjects {
		return 0
	}
	return len(g.adjO[o])
}

// Density returns |E| / (|T|·|O|), the probability-normalized edge count the
// paper sweeps on its x-axes. Zero when either side is empty.
func (g *Graph) Density() float64 {
	if g.nThreads == 0 || g.nObjects == 0 {
		return 0
	}
	return float64(g.edges) / (float64(g.nThreads) * float64(g.nObjects))
}

// Popularity returns deg(v)/|E| per Definition 1 of the paper, for a vertex
// on the given side. It returns 0 for an empty graph.
func (g *Graph) Popularity(side Side, v int) float64 {
	if g.edges == 0 {
		return 0
	}
	var deg int
	switch side {
	case Threads:
		deg = g.ThreadDegree(v)
	case Objects:
		deg = g.ObjectDegree(v)
	default:
		panic(fmt.Sprintf("bipartite: bad side %d", int(side)))
	}
	return float64(deg) / float64(g.edges)
}

// Edge is one (thread, object) pair.
type Edge struct {
	Thread int
	Object int
}

// EdgeList returns all edges sorted by (thread, object). The order is
// deterministic regardless of insertion order.
func (g *Graph) EdgeList() []Edge {
	out := make([]Edge, 0, g.edges)
	for t, objs := range g.adjT {
		for _, o := range objs {
			out = append(out, Edge{Thread: t, Object: o})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Thread != out[j].Thread {
			return out[i].Thread < out[j].Thread
		}
		return out[i].Object < out[j].Object
	})
	return out
}

// IsolatedThreads returns threads with no edges. They never constrain the
// vertex cover but matter when reporting clock-size baselines.
func (g *Graph) IsolatedThreads() []int {
	var out []int
	for t := 0; t < g.nThreads; t++ {
		if len(g.adjT[t]) == 0 {
			out = append(out, t)
		}
	}
	return out
}

// IsolatedObjects returns objects with no edges.
func (g *Graph) IsolatedObjects() []int {
	var out []int
	for o := 0; o < g.nObjects; o++ {
		if len(g.adjO[o]) == 0 {
			out = append(out, o)
		}
	}
	return out
}

// Clone returns a deep copy of the graph.
func (g *Graph) Clone() *Graph {
	c := New(g.nThreads, g.nObjects)
	for t, objs := range g.adjT {
		for _, o := range objs {
			c.AddEdge(t, o)
		}
	}
	return c
}

// String summarizes the graph.
func (g *Graph) String() string {
	return fmt.Sprintf("bipartite{threads=%d objects=%d edges=%d density=%.3f}",
		g.nThreads, g.nObjects, g.edges, g.Density())
}
