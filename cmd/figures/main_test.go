package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunSingleFigures(t *testing.T) {
	for _, fig := range []string{"4", "5", "6", "7"} {
		fig := fig
		t.Run("fig"+fig, func(t *testing.T) {
			var buf bytes.Buffer
			if err := run(&buf, fig, "table", 1, 7, false, "flat"); err != nil {
				t.Fatal(err)
			}
			if !strings.Contains(buf.String(), "Fig. "+fig) {
				t.Errorf("output missing title:\n%s", buf.String())
			}
		})
	}
}

func TestRunFormats(t *testing.T) {
	for _, format := range []string{"table", "csv", "plot"} {
		var buf bytes.Buffer
		if err := run(&buf, "6", format, 1, 7, false, "flat"); err != nil {
			t.Fatalf("format %s: %v", format, err)
		}
		if buf.Len() == 0 {
			t.Fatalf("format %s produced nothing", format)
		}
	}
	var buf bytes.Buffer
	if err := run(&buf, "6", "nope", 1, 7, false, "flat"); err == nil {
		t.Fatal("unknown format accepted")
	}
}

// TestRunLive smokes the live-pipeline path on one figure per backend; the
// full live-vs-offline equivalence is pinned in internal/experiment.
func TestRunLive(t *testing.T) {
	for _, backend := range []string{"flat", "tree"} {
		var off, live bytes.Buffer
		if err := run(&off, "6", "table", 1, 7, false, backend); err != nil {
			t.Fatal(err)
		}
		if err := run(&live, "6", "table", 1, 7, true, backend); err != nil {
			t.Fatal(err)
		}
		if off.String() != live.String() {
			t.Errorf("backend %s: live output differs from offline:\n--- offline ---\n%s\n--- live ---\n%s",
				backend, off.String(), live.String())
		}
	}
}

func TestRunUnknownFigure(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, "99", "table", 1, 7, false, "flat"); err == nil {
		t.Fatal("unknown figure accepted")
	}
}

func TestRunExtra(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, "extra", "table", 1, 7, false, "flat"); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"workload key:", "reveal order", "threshold sweep", "histogram"} {
		if !strings.Contains(out, want) {
			t.Errorf("extra output missing %q", want)
		}
	}
}

func TestRunAllCSV(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, "all", "csv", 1, 7, false, "flat"); err != nil {
		t.Fatal(err)
	}
	// Every CSV block starts with the density or node header.
	if got := strings.Count(buf.String(), "density,"); got < 3 {
		t.Errorf("expected at least 3 density CSV headers, got %d", got)
	}
}
