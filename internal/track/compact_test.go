package track

import (
	"sync"
	"testing"

	"mixedclock/internal/clock"
	"mixedclock/internal/core"
	"mixedclock/internal/event"
	"mixedclock/internal/hb"
	"mixedclock/internal/vclock"
)

// driftTracker builds a tracker whose online clock has drifted above the
// offline optimum: 8 threads funnel through 2 hot objects, but popularity's
// early tie-breaks admitted extra thread components.
func driftTracker(t *testing.T) *Tracker {
	t.Helper()
	tr := NewTracker(WithMechanism(core.Popularity{}))
	hot1 := tr.NewObject("hot1")
	hot2 := tr.NewObject("hot2")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		th := tr.NewThread("w")
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			for j := 0; j < 10; j++ {
				if (k+j)%2 == 0 {
					th.Write(hot1, nil)
				} else {
					th.Write(hot2, nil)
				}
			}
		}(i)
	}
	wg.Wait()
	if err := tr.Err(); err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestCompactShrinksToOptimal(t *testing.T) {
	tr := driftTracker(t)
	before := tr.Size()

	epoch, size, err := tr.Compact()
	if err != nil {
		t.Fatal(err)
	}
	if epoch != 1 {
		t.Fatalf("epoch = %d, want 1", epoch)
	}
	// The optimal cover of an 8-threads-over-2-objects funnel is the two
	// objects.
	if size != 2 {
		t.Fatalf("compacted size = %d, want 2 (two hot objects)", size)
	}
	if before <= size {
		t.Fatalf("compaction pointless: before %d, after %d", before, size)
	}
	if tr.Size() != size {
		t.Fatalf("Size() = %d after compaction", tr.Size())
	}
}

func TestCompactEpochOrdering(t *testing.T) {
	tr := NewTracker()
	th := tr.NewThread("t")
	a := tr.NewObject("a")
	b := tr.NewObject("b")

	pre := th.Write(a, nil)
	if _, _, err := tr.Compact(); err != nil {
		t.Fatal(err)
	}
	post := th.Write(b, nil)

	if pre.Epoch != 0 || post.Epoch != 1 {
		t.Fatalf("epochs = %d, %d; want 0, 1", pre.Epoch, post.Epoch)
	}
	if got := pre.Order(post); got != vclock.Before {
		t.Fatalf("pre.Order(post) = %v, want before", got)
	}
	if got := post.Order(pre); got != vclock.After {
		t.Fatalf("post.Order(pre) = %v, want after", got)
	}
	if !pre.HappenedBefore(post) || pre.Concurrent(post) {
		t.Fatal("cross-epoch helpers disagree with Order")
	}
}

func TestCompactNeverInvertsTrueOrder(t *testing.T) {
	// Soundness: for any pair with a true happened-before relation in the
	// full recorded computation, the epoch-aware Order must agree with the
	// direction (it may add order to concurrent pairs, never flip one).
	tr := NewTracker()
	ths := []*Thread{tr.NewThread("a"), tr.NewThread("b"), tr.NewThread("c")}
	objs := []*Object{tr.NewObject("x"), tr.NewObject("y")}

	var stamps []Stamped
	record := func(s Stamped) { stamps = append(stamps, s) }

	record(ths[0].Write(objs[0], nil))
	record(ths[1].Write(objs[0], nil))
	record(ths[2].Write(objs[1], nil))
	if _, _, err := tr.Compact(); err != nil {
		t.Fatal(err)
	}
	record(ths[0].Write(objs[1], nil))
	record(ths[1].Write(objs[1], nil))
	if _, _, err := tr.Compact(); err != nil {
		t.Fatal(err)
	}
	record(ths[2].Write(objs[0], nil))

	oracle := hb.New(tr.Trace())
	for i := range stamps {
		for j := range stamps {
			if i == j {
				continue
			}
			if oracle.HappenedBefore(i, j) && stamps[i].Order(stamps[j]) != vclock.Before {
				t.Fatalf("true order e%d → e%d inverted or lost: Order = %v",
					i, j, stamps[i].Order(stamps[j]))
			}
		}
	}
}

func TestCompactEpochSegmentsAreValidClocks(t *testing.T) {
	// Within each epoch, the recorded stamps must form a valid vector
	// clock for that epoch's sub-computation.
	tr := driftTracker(t)
	if _, _, err := tr.Compact(); err != nil {
		t.Fatal(err)
	}
	th := tr.NewThread("late")
	o := tr.NewObject("late-obj")
	for i := 0; i < 10; i++ {
		th.Write(o, nil)
	}
	if err := tr.Err(); err != nil {
		t.Fatal(err)
	}

	full := tr.Trace()
	stamps := tr.Stamps()
	starts := tr.EpochStarts()
	for ei, start := range starts {
		end := full.Len()
		if ei+1 < len(starts) {
			end = starts[ei+1]
		}
		seg := event.NewTrace()
		segStamps := make([]vclock.Vector, 0, end-start)
		for i := start; i < end; i++ {
			e := full.At(i)
			seg.Append(e.Thread, e.Object, e.Op)
			segStamps = append(segStamps, stamps[i])
		}
		if err := clock.Validate(seg, segStamps, "epoch"); err != nil {
			t.Fatalf("epoch %d invalid: %v", ei, err)
		}
	}
}

func TestCompactMechanismContinues(t *testing.T) {
	// New edges after compaction still grow the component set via the
	// mechanism, and the cover invariant holds.
	tr := NewTracker(WithMechanism(core.NaiveThreads{}))
	th1 := tr.NewThread("a")
	o1 := tr.NewObject("x")
	th1.Write(o1, nil)
	if _, _, err := tr.Compact(); err != nil {
		t.Fatal(err)
	}
	th2 := tr.NewThread("b")
	o2 := tr.NewObject("y")
	th2.Write(o2, nil) // brand-new edge in the new epoch
	if err := tr.Err(); err != nil {
		t.Fatal(err)
	}
	if tr.Size() != 2 {
		t.Fatalf("Size = %d, want 2 (compacted cover + new naive component)", tr.Size())
	}
}

func TestEpochBookkeeping(t *testing.T) {
	tr := NewTracker()
	th := tr.NewThread("t")
	o := tr.NewObject("o")
	th.Write(o, nil) // event 0, epoch 0
	if tr.Epoch() != 0 {
		t.Fatalf("Epoch = %d", tr.Epoch())
	}
	if _, _, err := tr.Compact(); err != nil {
		t.Fatal(err)
	}
	th.Write(o, nil) // event 1, epoch 1
	if tr.Epoch() != 1 {
		t.Fatalf("Epoch = %d", tr.Epoch())
	}
	if got := tr.EpochStarts(); len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Fatalf("EpochStarts = %v", got)
	}
	if tr.EpochOf(0) != 0 || tr.EpochOf(1) != 1 {
		t.Fatalf("EpochOf wrong: %d, %d", tr.EpochOf(0), tr.EpochOf(1))
	}
}

func TestCompactEmptyTracker(t *testing.T) {
	tr := NewTracker()
	epoch, size, err := tr.Compact()
	if err != nil {
		t.Fatal(err)
	}
	if epoch != 1 || size != 0 {
		t.Fatalf("empty compaction: epoch %d size %d", epoch, size)
	}
}
