package track

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"path/filepath"
	"sort"
	"time"

	"mixedclock/internal/event"
	"mixedclock/internal/tlog"
	"mixedclock/internal/vclock"
	"mixedclock/internal/vfs"
)

// SpillPolicy bounds a long-running tracker's memory: how often the merged
// tail is sealed into an immutable delta-encoded segment, and where sealed
// segments go. The zero policy never seals on its own and keeps what Compact
// seals in memory.
type SpillPolicy struct {
	// Dir, when non-empty, is the directory sealed segments are spilled to
	// (one "seg-<first>-<last>.mvcseg" file each, created on first use).
	// Spilled segments are dropped from memory; everything that replays
	// them — Stream, Snapshot, lazy Stamped.Vector of an old event — reads
	// the file back. The tracker also maintains a catalog.json there (see
	// Tracker.Catalog), rewritten atomically after every seal and
	// compaction, which external log shippers poll instead of the tracker.
	// Empty keeps sealed segments in memory, still in their delta-encoded
	// form (typically a small fraction of the vector table they replace).
	Dir string
	// SealEvents, when positive, seals automatically once at least this
	// many events sit unsealed (live per-thread buffers plus the merged
	// tail). Sealing is a stop-the-world barrier, so this trades a periodic
	// pause — proportional to SealEvents, like any snapshot — for a bounded
	// in-memory suffix. Zero seals only at Compact or an explicit Seal.
	// If an automatic seal fails (spill I/O), the error surfaces through
	// Err and the catalog health field, the history stays in memory, and
	// auto-sealing disarms until an explicit Seal or Compact succeeds — one
	// failed barrier, not one per commit.
	SealEvents int
	// SealEvery, when positive, aligns automatic seal boundaries: the tail
	// is sealed up to the largest multiple of SealEvery events, and any
	// overshoot (commits keep flowing while the seal is pending) stays in
	// the tail for the next boundary. Segment edges therefore land at
	// predictable indices — retention jobs and snapshot consumers can
	// reason in whole intervals instead of wherever a threshold happened to
	// trip. Independent of SealEvents; set either or both.
	SealEvery int
	// SealInterval, when positive, also triggers a seal once this much wall
	// time has passed since the last one, bounding how stale the sealed
	// history (and the catalog shippers poll) can go under light traffic.
	// The clock is checked on the commit path, so an entirely idle tracker
	// does not seal on its own. When SealEvery is also set and a full
	// interval is pending, the boundary stays aligned; otherwise the whole
	// tail is flushed.
	SealInterval time.Duration
	// Probe is how often a tracker in degraded mode (auto-sealing disarmed
	// by a persistent spill failure) probes the spill directory with a
	// throwaway durable write; a successful probe re-arms sealing. Zero
	// means a one-second default. The probe runs on the commit path but
	// only while degraded, at most once per interval, behind one CAS.
	Probe time.Duration
}

// WithSpill sets the tracker's spill policy — sugar for WithStore with only
// the Spill field set (the other store policies keep their prior values).
//
// Deprecated: new code should configure storage through WithStore (and open
// durable runs with Open, which validates the policies); WithSpill remains
// for compatibility.
func WithSpill(p SpillPolicy) Option {
	return func(o *options) { o.store.Spill = p }
}

// autoSealDue is the cheap post-commit check: committed and sealedUpTo are
// the tracker's event and sealed counters, lastSealNano the last successful
// seal time.
func (p SpillPolicy) autoSealDue(committed, sealedUpTo, lastSealNano int64) bool {
	if committed <= sealedUpTo {
		return false
	}
	if p.SealEvents > 0 && committed-sealedUpTo >= int64(p.SealEvents) {
		return true
	}
	if p.SealEvery > 0 && committed/int64(p.SealEvery)*int64(p.SealEvery) > sealedUpTo {
		return true
	}
	if p.SealInterval > 0 && time.Now().UnixNano()-lastSealNano >= int64(p.SealInterval) {
		return true
	}
	return false
}

// segment is one sealed, immutable slice of history: meta plus either the
// container bytes in memory or the spill file they were written to, the
// container size, and the container's SHA-256 (hex) for the catalog.
//
// A spilled segment is addressed as dir + file, never as one joined path:
// the catalog stores only the file name, so a spill directory stays valid
// when moved or mounted elsewhere — Open joins the names against whatever
// directory it was given.
type segment struct {
	meta tlog.SegmentMeta
	data []byte // in-memory container; nil when spilled
	dir  string // spill directory; "" when in memory
	file string // spill file name within dir; "" when in memory
	fs   vfs.FS // filesystem the spill file is read through; nil = vfs.OS
	size int64
	sha  string
	// sealedAt is when the segment was sealed — RetainPolicy.MaxAge's
	// clock. Restored from the catalog on reopen; zero when unknown.
	sealedAt time.Time
}

// path returns the segment's spill file path, empty for in-memory segments.
func (sg *segment) path() string {
	if sg.file == "" {
		return ""
	}
	return filepath.Join(sg.dir, sg.file)
}

// open returns the segment's container bytes as a stream.
func (sg *segment) open() (io.ReadCloser, error) {
	if sg.file == "" {
		return io.NopCloser(bytes.NewReader(sg.data)), nil
	}
	fsys := sg.fs
	if fsys == nil {
		fsys = vfs.OS
	}
	return fsys.Open(sg.path())
}

// streamFrom replays the segment's records with global index in [from, to)
// into sink (to < 0 means no upper bound) and returns how many records it
// delivered. Records below from are decoded but not delivered — the delta
// payload only decodes front to back. The borrowed vectors are handed
// straight through, so a replay allocates only the reader state,
// independent of the record count. An error opening the container is
// returned as errSegmentVanished-wrapped so Stream can distinguish a spill
// file retired by a concurrent compaction from a sink failure.
func (sg *segment) streamFrom(sink StampSink, from, to int) (int, error) {
	rc, err := sg.open()
	if err != nil {
		return 0, fmt.Errorf("track: opening segment %v: %w (%w)", sg.meta, err, errSegmentVanished)
	}
	defer rc.Close()
	sr, err := tlog.NewSegmentReader(rc)
	if err != nil {
		return 0, fmt.Errorf("track: segment %v: %w", sg.meta, err)
	}
	delivered := 0
	for {
		e, v, err := sr.Next()
		if err == io.EOF {
			return delivered, nil
		}
		if err != nil {
			return delivered, fmt.Errorf("track: segment %v: %w", sg.meta, err)
		}
		if e.Index < from {
			continue
		}
		if to >= 0 && e.Index >= to {
			return delivered, nil
		}
		if err := sink.ConsumeStamp(e, sg.meta.Epoch, v); err != nil {
			return delivered, err
		}
		delivered++
	}
}

// errSegmentVanished marks a segment container that could not be opened —
// either a spill file retired by a concurrent compaction (retriable against
// a fresh segment list) or one genuinely lost underneath the tracker.
var errSegmentVanished = errors.New("segment unreadable")

// stampAt replays the segment up to global index idx and returns that
// record's stamp (freshly reconstructed, owned by the caller).
func (sg *segment) stampAt(idx int) (vclock.Vector, error) {
	rc, err := sg.open()
	if err != nil {
		return nil, err
	}
	defer rc.Close()
	sr, err := tlog.NewSegmentReader(rc)
	if err != nil {
		return nil, err
	}
	for {
		e, v, err := sr.Next()
		if err != nil {
			return nil, err
		}
		if e.Index == idx {
			return v, nil
		}
	}
}

// sealLocked re-encodes the tail's records below upTo as one immutable
// segment, appends it to the sealed history, and spills it to disk when the
// policy says so. upTo == mergedLenLocked() seals everything (what Seal and
// Compact do); an aligned auto-seal passes the interval boundary and the
// overshoot stays in the tail. The caller holds the world write lock and
// has merged. On error (segment encoding, spill I/O) the tail is left
// untouched, so no history is lost — the tracker just keeps it in memory.
func (t *Tracker) sealLocked(upTo int) error {
	if merged := t.mergedLenLocked(); upTo > merged {
		upTo = merged
	}
	if upTo <= t.tailStart {
		return nil
	}
	var payload bytes.Buffer
	w := tlog.NewDeltaWriter(&payload)
	widths := make([]int, 0, upTo-t.tailStart)
	for _, b := range t.tail {
		if b.start >= upTo {
			break
		}
		n := upTo - b.start
		if n > len(b.ev) {
			n = len(b.ev)
		}
		for i := 0; i < n; i++ {
			if err := w.Append(b.ev[i], b.stamps[i]); err != nil {
				return fmt.Errorf("track: sealing: %w", err)
			}
			widths = append(widths, len(b.stamps[i]))
		}
	}
	if err := w.Flush(); err != nil {
		return fmt.Errorf("track: sealing: %w", err)
	}
	meta := tlog.SegmentMeta{Epoch: t.epoch, FirstIndex: t.tailStart, Count: upTo - t.tailStart}
	data, err := tlog.AppendSegment(nil, meta, widths, payload.Bytes())
	if err != nil {
		return fmt.Errorf("track: sealing: %w", err)
	}
	sum := sha256.Sum256(data)
	sg := &segment{meta: meta, size: int64(len(data)), sha: hex.EncodeToString(sum[:]), sealedAt: time.Now()}
	if t.spill.Dir != "" {
		if err := t.fs.MkdirAll(t.spill.Dir); err != nil {
			return fmt.Errorf("track: spilling: %w", err)
		}
		sg.dir, sg.file, sg.fs = t.spill.Dir, tlog.SegmentFileName(meta), t.fs
		// Write-then-rename with an fsync in between: after the rename
		// lands, the segment's bytes are durable, and a crash mid-write
		// leaves at most a stray temp file (ignored and cleaned by Open),
		// never a torn .mvcseg.
		if err := writeFileSync(t.fs, sg.dir, sg.file, data); err != nil {
			return fmt.Errorf("track: spilling: %w", err)
		}
	} else {
		sg.data = data
	}
	t.swapHist(func(old *segState) *segState {
		segs := make([]*segment, len(old.segs)+1)
		copy(segs, old.segs)
		segs[len(old.segs)] = sg
		return &segState{segs: segs, retained: old.retained, gen: old.gen + 1}
	})
	t.captureResumeLocked()
	// Drop consumed blocks outright (rather than truncating) so a spilling
	// tracker's footprint really is bounded by the seal interval; a block
	// the boundary cuts through is replaced by a copied remainder, never
	// re-sliced — frozen blocks a Stream still replays must stay intact.
	// The consumed blocks — the sealed arena storage — go onto the
	// reclaimer's limbo list rather than being dropped here: a Stream's own
	// references keep the blocks it replays alive regardless, and the limbo
	// entry tracks the release of the seal's reference until every
	// in-flight reader has passed the retirement.
	var rest []*tailBlock
	for _, b := range t.tail {
		end := b.start + len(b.ev)
		if end <= upTo {
			consumed := b
			t.reclaim.retireDeferred(func() { _ = consumed })
			continue
		}
		if b.start >= upTo {
			rest = append(rest, b)
			continue
		}
		k := upTo - b.start
		rest = append(rest, &tailBlock{
			start:  upTo,
			epoch:  b.epoch,
			ev:     append([]event.Event(nil), b.ev[k:]...),
			stamps: append([]vclock.Vector(nil), b.stamps[k:]...),
		})
		cut := b
		t.reclaim.retireDeferred(func() { _ = cut })
	}
	t.tail = rest
	t.tailStart = upTo
	t.sealed.Store(int64(upTo))
	// A successful seal re-arms auto-sealing after an earlier spill failure
	// (the storage evidently works again), exits degraded mode, and
	// restarts the wall clock.
	t.sealBroken.Store(false)
	t.degradedSince.Store(0)
	t.lastSealNano.Store(time.Now().UnixNano())
	t.sealPasses.Add(1)
	return nil
}

// Seal quiesces the tracker, merges all per-thread buffers, and seals the
// tail into an immutable delta-encoded segment (spilled to disk under the
// policy's Dir). Compact seals implicitly; the spill policy seals
// automatically. Sealing never changes what any reader observes — only
// where (and how compactly) the history is held. A successful Seal
// publishes the catalog and re-arms auto-sealing after a spill failure.
func (t *Tracker) Seal() error {
	if t.closed.Load() {
		return fmt.Errorf("track: Seal on a closed Tracker")
	}
	t.world.Lock()
	t.mergeLocked()
	err := t.sealLocked(t.mergedLenLocked())
	t.world.Unlock()
	if err != nil {
		return err
	}
	t.afterSeal()
	return nil
}

// afterSeal is the post-barrier lifecycle work every successful seal path
// shares: run the auto-compaction pass if the policy asks for one, then the
// auto-retention pass, then publish the catalog shippers poll (unless one
// of the passes ran — each publishes itself, as part of its
// publish-before-delete ordering).
func (t *Tracker) afterSeal() {
	published := t.maybeCompactSegments()
	if t.maybeRetainSegments() {
		published = true
	}
	if !published {
		t.publishCatalog()
	}
	// The barrier has lifted: drain whatever the seal retired under it
	// (consumed tail blocks, the superseded history snapshot) from the
	// reclaimer's limbo list, now that frees may safely run.
	t.reclaim.reclaim()
	// Newly sealed records are now replayable without a barrier; wake the
	// registered monitors (non-blocking — a busy monitor picks the new
	// segments up on its next pass anyway).
	t.notifyMonitors()
}

// maybeAutoSeal runs after a commit has released every lock: when the
// unsealed suffix has outgrown the policy (by count, by aligned interval,
// or by wall time), one caller wins the gate and seals. A failure (spill
// I/O that survived the retry discipline) surfaces through Err and the
// catalog health field, leaves the history in memory, and flips the
// tracker into degraded mode: auto-sealing DISARMS — otherwise every later
// commit would retry a stop-the-world barrier plus failing I/O against
// broken storage, collapsing the hot path — and commits continue fully in
// memory. While degraded, a cheap periodic probe (faults.go) re-arms
// sealing once the disk recovers; an explicit Seal or Compact that
// succeeds re-arms it too.
func (t *Tracker) maybeAutoSeal() {
	if t.sealBroken.Load() {
		t.maybeProbe()
		return
	}
	if !t.spill.autoSealDue(t.seq.Load(), t.sealed.Load(), t.lastSealNano.Load()) {
		return
	}
	if !t.sealGate.CompareAndSwap(false, true) {
		return // someone else is already sealing
	}
	defer t.sealGate.Store(false)
	if err := t.autoSeal(); err != nil {
		t.enterDegraded()
		t.noteErr(err)
		// Broken storage is exactly what a shipper wants to learn promptly;
		// publishing may fail on the same storage, which noteErr keeps.
		t.publishCatalog()
	}
}

// autoSeal seals up to the policy's boundary: the largest SealEvery
// multiple when alignment is on and a full interval is pending, the whole
// tail otherwise.
func (t *Tracker) autoSeal() error {
	t.world.Lock()
	t.mergeLocked()
	upTo := t.mergedLenLocked()
	if n := t.spill.SealEvery; n > 0 {
		if aligned := upTo / n * n; aligned > t.tailStart {
			upTo = aligned
		}
	}
	err := t.sealLocked(upTo)
	t.world.Unlock()
	if err != nil {
		return err
	}
	t.afterSeal()
	return nil
}

// sealedStamp reconstructs the stamp of sealed event idx from its segment.
// The segment list is a lock-free snapshot; a spill file retired by a
// concurrent compaction between the snapshot and the read is retried
// against the fresh list, whose merged replacement covers the same records.
func (t *Tracker) sealedStamp(idx int) (vclock.Vector, error) {
	const maxRetries = 3
	for attempt := 0; ; attempt++ {
		segs := t.hist.Load().segs
		i := sort.Search(len(segs), func(i int) bool {
			m := segs[i].meta
			return m.FirstIndex+m.Count > idx
		})
		if i == len(segs) || segs[i].meta.FirstIndex > idx {
			return nil, fmt.Errorf("no segment holds event %d", idx)
		}
		v, err := segs[i].stampAt(idx)
		if err == nil || attempt >= maxRetries || !errors.Is(err, fs.ErrNotExist) {
			return v, err
		}
	}
}

// SegmentInfo describes one sealed segment for inspection.
type SegmentInfo struct {
	// Epoch the segment's records belong to (a segment never spans one).
	Epoch int
	// FirstIndex is the global trace index of the segment's first record;
	// Events is how many records it holds.
	FirstIndex int
	Events     int
	// Bytes is the encoded container size; Path is the spill file, empty
	// while the segment is held in memory.
	Bytes int64
	Path  string
	// SHA256 is the hex content hash of the encoded container — what the
	// catalog advertises to shippers.
	SHA256 string
}

// Segments lists the sealed history, oldest first. Lock-free — it reads one
// immutable snapshot, so it is safe even inside a Do callback.
func (t *Tracker) Segments() []SegmentInfo {
	segs := t.hist.Load().segs
	out := make([]SegmentInfo, len(segs))
	for i, sg := range segs {
		out[i] = SegmentInfo{
			Epoch:      sg.meta.Epoch,
			FirstIndex: sg.meta.FirstIndex,
			Events:     sg.meta.Count,
			Bytes:      sg.size,
			Path:       sg.path(),
			SHA256:     sg.sha,
		}
	}
	return out
}

// StampSink consumes a timestamped computation in trace order, one record
// per call: the event (with its global index), the epoch it was recorded
// in, and its full stamp at the clock width of that moment. The vector is
// borrowed — valid only until ConsumeStamp returns — so sinks that retain
// stamps must clone them; sinks that merely encode or aggregate get an
// allocation profile independent of the computation's length. A sink may
// block and may call back into the Tracker (no phase of a Stream holds the
// stop-the-world barrier while the sink runs), though barrier-taking
// methods like Snapshot will of course stall commits as they always do.
type StampSink interface {
	ConsumeStamp(e event.Event, epoch int, v vclock.Vector) error
}

// Stream replays the whole recorded computation — sealed segments, then the
// merged tail — into sink, in trace order, stopping at the first sink or
// segment error. No phase delivers records under the world write barrier:
//
//   - Sealed segments are immutable, so they are replayed with no lock at
//     all — the tracker keeps committing, sealing and compacting
//     underneath. (A compaction pass may retire a spill file mid-stream;
//     the replay retries against the fresh segment list, whose merged
//     segment carries the identical records.)
//   - The merged tail is double-buffered: Stream takes the barrier only
//     long enough to merge the per-thread buffers and freeze the tail —
//     commits then continue into a fresh active block while the frozen
//     blocks are replayed outside the barrier. The pause commits observe is
//     the O(unsealed suffix) merge, never the sink's I/O.
//
// The result is a consistent snapshot of the tracker as of the freeze: all
// events below the freeze point, none after, each with the epoch it was
// recorded in.
func (t *Tracker) Stream(sink StampSink) error {
	return t.StreamFrom(0, sink)
}

// StreamFrom is Stream starting at global trace index from: records below
// from are skipped, records from it on are delivered with the same
// barrier discipline (sealed history and frozen blocks replay without the
// barrier; only the freeze itself stops the world). A from below the
// retention floor is clamped to it. Monitors use StreamFrom to consume the
// unsealed tail on demand without re-reading history they have already
// evaluated.
func (t *Tracker) StreamFrom(from int, sink StampSink) error {
	// Phase 1: sealed history, no barrier, starting at the retention floor
	// (events below it were retired by a RetainPolicy pass and are no
	// longer replayable). The catch-up rounds are bounded: under sustained
	// auto-sealing a streamer on slow storage could otherwise chase freshly
	// sealed segments forever; whatever remains after the last round is
	// picked up by the freeze, which guarantees termination.
	delivered := from
	if r := t.RetainedEvents(); delivered < r {
		delivered = r
	}
	for round := 0; round < 4; round++ {
		n, err := t.replaySealed(sink, delivered, -1)
		if err != nil {
			return err
		}
		if n == delivered {
			break
		}
		delivered = n
	}
	// Phase 2: the freeze — the stream's only barrier. Merge the per-thread
	// buffers, note how far sealed history reaches, and freeze every tail
	// block; commits restart into a fresh active block the moment the
	// barrier lifts.
	t.world.Lock()
	t.mergeLocked()
	sealedEnd := t.tailStart
	blocks := make([]*tailBlock, len(t.tail))
	copy(blocks, t.tail)
	for _, b := range blocks {
		b.frozen = true
	}
	t.world.Unlock()
	// Phase 3: no barrier. Catch up on segments sealed during phase 1, then
	// replay the frozen blocks. Concurrent seals may consume the frozen
	// blocks (our references keep them alive) and concurrent compaction may
	// rewrite the very segments being caught up on — both invisible here.
	if delivered < sealedEnd {
		n, err := t.replaySealed(sink, delivered, sealedEnd)
		if err != nil {
			return err
		}
		if n < sealedEnd {
			return fmt.Errorf("track: sealed history unreadable from event %d (want %d): %w",
				n, sealedEnd, errSegmentVanished)
		}
		delivered = n
	}
	for _, b := range blocks {
		for i, e := range b.ev {
			if e.Index < delivered {
				continue // below from: already consumed by the caller
			}
			if err := sink.ConsumeStamp(e, b.epoch, b.stamps[i]); err != nil {
				return err
			}
		}
	}
	return nil
}

// replaySealed streams sealed records with global index in [from, to) into
// sink (to < 0: as far as sealed history currently reaches) and returns the
// next undelivered index. The segment list is snapshotted without the write
// barrier; when a spill file vanishes before it is opened — the signature
// of a concurrent compaction retiring it — the replay re-snapshots and
// retries, since the merged replacement covers the same records. A segment
// that stays unreadable across retries (a spill file genuinely lost) is an
// error.
func (t *Tracker) replaySealed(sink StampSink, from, to int) (int, error) {
	delivered := from
	// Register as an epoch-reclamation reader for the duration of the
	// replay: spill files retired by a compaction or retention pass that
	// starts after this pin sit in limbo — not deleted — until the replay
	// finishes, so the vanished-file retry below is a fallback (for
	// retirements that began before the pin), not the mechanism.
	rec := t.reclaim.register()
	rec.pin(&t.reclaim)
	defer t.reclaim.unregister(rec)
	defer rec.unpin()
	// The retry budget is per stall, not per stream: progress since the
	// last snapshot proves the list is live and resets it, so a long replay
	// under sustained compaction retries each retirement it trips over,
	// while a genuinely lost file still fails after maxRetries fruitless
	// snapshots.
	const maxRetries = 3
	for retries := 0; ; {
		segs := t.sealedCovering(delivered)
		if len(segs) == 0 {
			return delivered, nil
		}
		snapshotAt := delivered
		vanished := false
		for _, sg := range segs {
			if to >= 0 && sg.meta.FirstIndex >= to {
				return delivered, nil
			}
			if sg.meta.FirstIndex > delivered {
				// Sealed history is gapless above the retention floor, so a
				// segment starting past the replay point means a retention
				// pass retired events [delivered, FirstIndex) after this
				// stream began. A gapped delivery would be silently wrong;
				// fail instead (a fresh Stream starts at the new floor).
				return delivered, fmt.Errorf("track: events [%d,%d) retired by retention mid-stream",
					delivered, sg.meta.FirstIndex)
			}
			n, err := sg.streamFrom(sink, delivered, to)
			delivered += n
			if err != nil {
				if errors.Is(err, errSegmentVanished) {
					if delivered > snapshotAt {
						retries = 0
					}
					if retries < maxRetries {
						retries++
						vanished = true
						break // re-snapshot and retry from delivered
					}
				}
				return delivered, err
			}
			if to >= 0 && delivered >= to {
				return delivered, nil
			}
		}
		if !vanished {
			return delivered, nil
		}
	}
}

// sealedCovering snapshots the suffix of the sealed-segment list covering
// global indices at or above from. Lock-free — one snapshot load; the
// returned slice is immutable.
func (t *Tracker) sealedCovering(from int) []*segment {
	segs := t.hist.Load().segs
	i := sort.Search(len(segs), func(i int) bool {
		m := segs[i].meta
		return m.FirstIndex+m.Count > from
	})
	return segs[i:len(segs):len(segs)]
}

// SnapshotTo streams the recorded computation into w as a delta-encoded
// MVCLOG02 log (the WriteLogDelta wire format, readable by tlog.ReadAll and
// mvc inspect), without ever materializing a vector table: sealed segments
// decode straight back into the writer and the tail's stamps are encoded in
// place. Output bytes are identical to materializing Snapshot() and writing
// it with tlog.WriteAllDelta — the pipeline changes the cost, not the log —
// and are unchanged by sealing and compaction, which move records between
// containers without touching them.
func (t *Tracker) SnapshotTo(w io.Writer) error {
	lw := tlog.NewDeltaWriter(w)
	if err := t.Stream(deltaSink{lw}); err != nil {
		return err
	}
	return lw.Flush()
}

// collectSink materializes a streamed computation — the sink behind
// Snapshot.
type collectSink struct {
	trace  *event.Trace
	stamps []vclock.Vector
}

func (c *collectSink) ConsumeStamp(e event.Event, _ int, v vclock.Vector) error {
	c.trace.AppendEvent(e)
	c.stamps = append(c.stamps, v.Clone())
	return nil
}

// traceSink keeps only the events — the sink behind Trace.
type traceSink struct{ trace *event.Trace }

func (c *traceSink) ConsumeStamp(e event.Event, _ int, _ vclock.Vector) error {
	c.trace.AppendEvent(e)
	return nil
}

// stampsSink keeps only the stamps — the sink behind Stamps.
type stampsSink struct{ stamps []vclock.Vector }

func (c *stampsSink) ConsumeStamp(_ event.Event, _ int, v vclock.Vector) error {
	c.stamps = append(c.stamps, v.Clone())
	return nil
}

// deltaSink pipes a streamed computation into a tlog.DeltaWriter.
type deltaSink struct{ w *tlog.DeltaWriter }

func (s deltaSink) ConsumeStamp(e event.Event, _ int, v vclock.Vector) error {
	return s.w.Append(e, v)
}
