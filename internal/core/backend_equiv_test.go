package core

import (
	"math/rand"
	"testing"

	"mixedclock/internal/clock"
	"mixedclock/internal/trace"
	"mixedclock/internal/vclock"
)

// TestBackendEquivalence replays seeded generator traces through the flat
// and tree backends — offline over the optimal cover and online under both
// recommended mechanisms — and requires the two representations to agree on
// every event pair's verdict. Stamps must in fact be identical vectors: the
// backends implement the same algebra, so this asserts exact equality first
// and the (implied) Compare/Less/Concurrent agreement with clock.Equivalent
// as the property the rest of the system depends on.
func TestBackendEquivalence(t *testing.T) {
	cfg := trace.Config{Threads: 12, Objects: 12, Events: 250}
	for _, w := range trace.Workloads() {
		for seed := int64(1); seed <= 3; seed++ {
			tr, err := trace.Generate(w, cfg, rand.New(rand.NewSource(seed)))
			if err != nil {
				t.Fatalf("%v seed %d: %v", w, seed, err)
			}
			analysis := AnalyzeTrace(tr)
			schemes := []struct {
				name string
				make func(b vclock.Backend) clock.Timestamper
			}{
				{"offline", func(b vclock.Backend) clock.Timestamper { return analysis.NewClockBackend(b) }},
				{"online/hybrid", func(b vclock.Backend) clock.Timestamper { return NewOnlineMixedClockBackend(NewHybrid(), b) }},
				{"online/popularity", func(b vclock.Backend) clock.Timestamper { return NewOnlineMixedClockBackend(Popularity{}, b) }},
			}
			for _, s := range schemes {
				flat := clock.Run(tr, s.make(vclock.BackendFlat))
				tree := clock.Run(tr, s.make(vclock.BackendTree))
				for i := range flat {
					if !flat[i].Equal(tree[i]) {
						t.Fatalf("%v seed %d %s: event %d stamped %v by flat, %v by tree",
							w, seed, s.name, i, flat[i], tree[i])
					}
				}
				if err := clock.Equivalent(flat, tree, s.name+"/flat", s.name+"/tree"); err != nil {
					t.Fatalf("%v seed %d: %v", w, seed, err)
				}
			}
		}
	}
}

// TestTreeBackendValid proves the tree backend against the ground-truth
// happened-before oracle directly (Theorem 2), not only against the flat
// backend, on a small trace per workload.
func TestTreeBackendValid(t *testing.T) {
	cfg := trace.Config{Threads: 6, Objects: 6, Events: 80}
	for _, w := range trace.Workloads() {
		tr, err := trace.Generate(w, cfg, rand.New(rand.NewSource(7)))
		if err != nil {
			t.Fatalf("%v: %v", w, err)
		}
		mc := AnalyzeTrace(tr).NewClockBackend(vclock.BackendTree)
		if _, err := clock.RunAndValidate(tr, mc); err != nil {
			t.Fatalf("%v: %v", w, err)
		}
		if mc.Err() != nil {
			t.Fatalf("%v: %v", w, mc.Err())
		}
		oc := NewOnlineMixedClockBackend(NewHybrid(), vclock.BackendTree)
		if _, err := clock.RunAndValidate(tr, oc); err != nil {
			t.Fatalf("%v online: %v", w, err)
		}
	}
}

func TestBackendAccessors(t *testing.T) {
	comps := NewComponentSet()
	comps.Add(ThreadComponent(0))
	mc := NewMixedClockBackend(comps, vclock.BackendTree)
	if mc.Backend() != vclock.BackendTree {
		t.Fatalf("Backend = %v", mc.Backend())
	}
	if mc.Name() != "mixed/offline+tree" {
		t.Fatalf("Name = %q", mc.Name())
	}
	if NewMixedClock(comps).Name() != "mixed/offline" {
		t.Fatal("flat Name changed")
	}
	oc := NewOnlineMixedClockBackend(Popularity{}, vclock.BackendTree)
	if oc.Backend() != vclock.BackendTree || oc.Name() != "mixed/online/popularity+tree" {
		t.Fatalf("online backend accessors wrong: %v %q", oc.Backend(), oc.Name())
	}
	if got := NewOnlineMixedClock(Popularity{}).Name(); got != "mixed/online/popularity" {
		t.Fatalf("flat online Name changed: %q", got)
	}
}
