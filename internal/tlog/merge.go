package tlog

import (
	"bytes"
	"fmt"
	"io"
)

// Segment merge: rewriting a run of adjacent small segments into one larger
// segment with a merged width table and a contiguous index range. This is
// the storage half of the tracker's tiered compaction — frequent seals
// produce swarms of tiny MVCSEG01 containers, and merging them keeps the
// sealed history cheap to re-read (one header, one delta stream, one
// per-thread sync point instead of N) without changing a single record:
// replaying the merged segment yields exactly the records that replaying the
// sources in order would have yielded, event for event, stamp for stamp,
// width for width.
//
// The merged payload is NOT the source payloads concatenated: each source
// segment opens every thread with a full sync vector (segments must decode
// without outside state), and re-encoding through one DeltaWriter turns all
// but the first of those back into deltas. That is where the byte savings
// beyond the headers come from.

// MergeSegments reads one segment from each src, in order, verifies they
// form a gapless single-epoch run, and writes one merged segment holding
// exactly their records to w. It returns the merged segment's meta. Sources
// are streamed record by record, so memory is bounded by the merged
// container, not by the source count.
func MergeSegments(w io.Writer, srcs ...io.Reader) (SegmentMeta, error) {
	if len(srcs) == 0 {
		return SegmentMeta{}, fmt.Errorf("tlog: merging zero segments")
	}
	var (
		meta    SegmentMeta
		widths  []int
		payload bytes.Buffer
	)
	dw := NewDeltaWriter(&payload)
	for i, src := range srcs {
		sr, err := NewSegmentReader(src)
		if err != nil {
			return SegmentMeta{}, fmt.Errorf("tlog: merge source %d: %w", i, err)
		}
		m := sr.Meta()
		if i == 0 {
			meta = m
		} else {
			if m.Epoch != meta.Epoch {
				return SegmentMeta{}, fmt.Errorf("tlog: merge source %d is epoch %d, run is epoch %d",
					i, m.Epoch, meta.Epoch)
			}
			if want := meta.FirstIndex + meta.Count; m.FirstIndex != want {
				return SegmentMeta{}, fmt.Errorf("tlog: merge source %d starts at %d, want %d (gapless run)",
					i, m.FirstIndex, want)
			}
			meta.Count += m.Count
		}
		for {
			e, v, err := sr.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				return SegmentMeta{}, fmt.Errorf("tlog: merge source %d: %w", i, err)
			}
			// v is already padded to the record's clock width, so its length
			// IS the width to carry into the merged table.
			widths = append(widths, len(v))
			if err := dw.Append(e, v); err != nil {
				return SegmentMeta{}, err
			}
		}
	}
	if err := dw.Flush(); err != nil {
		return SegmentMeta{}, err
	}
	data, err := AppendSegment(nil, meta, widths, payload.Bytes())
	if err != nil {
		return SegmentMeta{}, err
	}
	if _, err := w.Write(data); err != nil {
		return SegmentMeta{}, fmt.Errorf("tlog: writing merged segment: %w", err)
	}
	return meta, nil
}

// SegmentStat is what the compaction planner needs to know about one sealed
// segment: its meta and its encoded container size.
type SegmentStat struct {
	Meta  SegmentMeta
	Bytes int64
}

// PlanSegmentCompaction chooses which adjacent segments a tiered-compaction
// pass should merge. segs must be ordered by FirstIndex (as a tracker's
// sealed history and a sorted spill directory both are). The returned plan
// is a list of half-open [start, end) ranges into segs, each a gapless
// single-epoch run of at least two segments to rewrite as one.
//
// The policy has two knobs:
//
//   - maxSegments: when positive, compaction is wanted only while the
//     segment count exceeds it — below that the pass plans nothing. Zero or
//     negative plans unconditionally.
//   - targetBytes: when positive, the size ceiling of the tier — a segment
//     already at or above it is left alone (it has graduated), and a group
//     stops growing before its combined size would cross it. Zero or
//     negative merges without a size cap, i.e. one segment per epoch run.
//
// The plan is best-effort: a small targetBytes can leave more than
// maxSegments segments standing, and a later pass (after more seals) picks
// up where this one left off.
func PlanSegmentCompaction(segs []SegmentStat, maxSegments int, targetBytes int64) [][2]int {
	if maxSegments > 0 && len(segs) <= maxSegments {
		return nil
	}
	var plan [][2]int
	for i := 0; i < len(segs); {
		if targetBytes > 0 && segs[i].Bytes >= targetBytes {
			i++
			continue
		}
		j := i
		size := segs[i].Bytes
		next := segs[i].Meta.FirstIndex + segs[i].Meta.Count
		for j+1 < len(segs) &&
			segs[j+1].Meta.Epoch == segs[i].Meta.Epoch &&
			segs[j+1].Meta.FirstIndex == next &&
			(targetBytes <= 0 || size+segs[j+1].Bytes <= targetBytes) {
			j++
			size += segs[j].Bytes
			next += segs[j].Meta.Count
		}
		if j > i {
			plan = append(plan, [2]int{i, j + 1})
		}
		i = j + 1
	}
	return plan
}
