package event

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// WriteJSONL serializes the trace as JSON Lines: one event object per line.
// The format is stable and diff-friendly, e.g. {"i":0,"t":1,"o":0}.
func (tr *Trace) WriteJSONL(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, e := range tr.events {
		if err := enc.Encode(e); err != nil {
			return fmt.Errorf("event: encoding event %d: %w", e.Index, err)
		}
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("event: flushing trace: %w", err)
	}
	return nil
}

// ReadJSONL parses a trace from the JSON Lines format written by WriteJSONL.
// Indices are reassigned from line positions and the result is validated.
func ReadJSONL(r io.Reader) (*Trace, error) {
	tr := NewTrace()
	dec := json.NewDecoder(r)
	for line := 0; ; line++ {
		var e Event
		if err := dec.Decode(&e); err != nil {
			if err == io.EOF {
				break
			}
			return nil, fmt.Errorf("event: decoding line %d: %w", line+1, err)
		}
		if e.Thread < 0 || e.Object < 0 {
			return nil, fmt.Errorf("%w: line %d is %v", ErrNegativeID, line+1, e)
		}
		tr.Append(e.Thread, e.Object, e.Op)
	}
	return tr, nil
}
