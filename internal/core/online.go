package core

import (
	"fmt"

	"mixedclock/internal/bipartite"
	"mixedclock/internal/event"
	"mixedclock/internal/vclock"
)

// CoverTracker maintains an online vertex cover of the revealed computation:
// as each event arrives it records the edge and, when the edge is not yet
// covered, asks the Mechanism which endpoint joins the component set.
// Components are append-only, as §IV requires.
//
// Invariant (checked by tests): after every Reveal, every revealed edge has
// at least one endpoint in the component set, so a MixedClock over this set
// is always valid for the revealed prefix.
type CoverTracker struct {
	mech  Mechanism
	graph *bipartite.Graph
	comps *ComponentSet
}

// NewCoverTracker returns an empty tracker driven by mech.
func NewCoverTracker(mech Mechanism) *CoverTracker {
	return &CoverTracker{
		mech:  mech,
		graph: bipartite.New(0, 0),
		comps: NewComponentSet(),
	}
}

// NewSeededCoverTracker returns a tracker whose revealed graph and
// component set start from existing state instead of empty. The component
// set must cover every edge of g; future reveals fall to mech as usual.
// This is how epoch compaction re-bases a live tracker on the offline
// optimum for the history so far.
func NewSeededCoverTracker(mech Mechanism, g *bipartite.Graph, comps *ComponentSet) (*CoverTracker, error) {
	for _, e := range g.EdgeList() {
		if !comps.Covers(event.ThreadID(e.Thread), event.ObjectID(e.Object)) {
			return nil, fmt.Errorf("core: seed components %v do not cover edge (%d, %d)",
				comps, e.Thread, e.Object)
		}
	}
	return &CoverTracker{mech: mech, graph: g, comps: comps}, nil
}

// Reveal processes the next event's (thread, object) pair. It returns the
// component added to cover the new edge and true, or a zero Component and
// false when no addition was needed (edge already present, or already
// covered).
func (ct *CoverTracker) Reveal(t event.ThreadID, o event.ObjectID) (Component, bool) {
	if !ct.graph.AddEdge(int(t), int(o)) {
		return Component{}, false // repeated (thread, object) pair
	}
	if ct.comps.Covers(t, o) {
		return Component{}, false
	}
	var c Component
	switch side := ct.mech.Choose(ct.graph, int(t), int(o)); side {
	case bipartite.Threads:
		c = ThreadComponent(t)
	case bipartite.Objects:
		c = ObjectComponent(o)
	default:
		panic(fmt.Sprintf("core: mechanism %s chose invalid side %d", ct.mech.Name(), int(side)))
	}
	ct.comps.Add(c)
	return c, true
}

// Components returns the tracker's component set (shared; grows as events
// reveal new edges).
func (ct *CoverTracker) Components() *ComponentSet { return ct.comps }

// Graph returns the revealed thread–object graph (shared, read-only by
// convention).
func (ct *CoverTracker) Graph() *bipartite.Graph { return ct.graph }

// Size returns the current vector-clock size.
func (ct *CoverTracker) Size() int { return ct.comps.Len() }

// Mechanism returns the driving mechanism.
func (ct *CoverTracker) Mechanism() Mechanism { return ct.mech }

// OnlineMixedClock timestamps a computation revealed one event at a time:
// a CoverTracker grows the component set and an embedded MixedClock applies
// the §III-C update rule. Earlier timestamps stay comparable after the
// vector grows because missing components compare as zero.
type OnlineMixedClock struct {
	tracker *CoverTracker
	clock   *MixedClock
}

// NewOnlineMixedClock returns an online clock driven by mech, using the flat
// clock representation.
func NewOnlineMixedClock(mech Mechanism) *OnlineMixedClock {
	return NewOnlineMixedClockBackend(mech, vclock.BackendFlat)
}

// NewOnlineMixedClockBackend is NewOnlineMixedClock with an explicit clock
// representation. BackendAuto resolves at construction, when nothing has
// been revealed yet, so it comes out flat; the live tracker (package track)
// is the surface that re-resolves auto as the computation grows, at each
// compaction.
func NewOnlineMixedClockBackend(mech Mechanism, backend vclock.Backend) *OnlineMixedClock {
	backend = ResolveBackend(backend, 0, 0)
	tracker := NewCoverTracker(mech)
	return &OnlineMixedClock{
		tracker: tracker,
		clock:   NewMixedClockBackend(tracker.Components(), backend),
	}
}

// Timestamp implements clock.Timestamper.
func (c *OnlineMixedClock) Timestamp(e event.Event) vclock.Vector {
	c.tracker.Reveal(e.Thread, e.Object)
	return c.clock.Timestamp(e)
}

// Components implements clock.Timestamper.
func (c *OnlineMixedClock) Components() int { return c.tracker.Size() }

// Name implements clock.Timestamper.
func (c *OnlineMixedClock) Name() string {
	name := "mixed/online/" + c.tracker.mech.Name()
	if b := c.clock.Backend(); b != vclock.BackendFlat {
		name += "+" + b.String()
	}
	return name
}

// Backend returns the clock representation in use.
func (c *OnlineMixedClock) Backend() vclock.Backend { return c.clock.Backend() }

// Tracker exposes the underlying cover tracker.
func (c *OnlineMixedClock) Tracker() *CoverTracker { return c.tracker }

// Err reports the first uncovered event, which for an online clock would
// indicate a tracker bug; always nil in correct operation.
func (c *OnlineMixedClock) Err() error { return c.clock.Err() }

// SimulateCover replays a reveal order through a fresh tracker and returns
// the final vector-clock size. This is the fast path for the paper's Fig. 4
// and Fig. 5, which need only sizes, not timestamps.
func SimulateCover(edges []bipartite.Edge, mech Mechanism) int {
	ct := NewCoverTracker(mech)
	for _, e := range edges {
		ct.Reveal(event.ThreadID(e.Thread), event.ObjectID(e.Object))
	}
	return ct.Size()
}
