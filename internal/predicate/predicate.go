// Package predicate implements global predicate detection over a recorded
// computation — the debugging question the paper's introduction points at:
// "could the program ever have been in a bad global state?". Because a
// computation is a partial order, the observed interleaving is only one
// path through the lattice of consistent global states; a bug predicate
// that happened to be false along the observed path may still hold on
// another. Possibly explores the whole lattice; Definitely checks whether
// every execution path must pass through a matching state (Cooper–Marzullo
// modalities).
//
// Both are exponential in the number of threads in the worst case; the
// maxStates budget keeps them bounded and explicit.
package predicate

import (
	"errors"
	"fmt"

	"mixedclock/internal/cut"
	"mixedclock/internal/event"
)

// ErrBudget is returned when the lattice exploration exceeds maxStates.
var ErrBudget = errors.New("predicate: state budget exhausted")

// State is one consistent global state: a per-thread count of executed
// events plus derived views. Predicates must treat it as read-only.
type State struct {
	tr *event.Trace
	// executed[t] = number of events of thread t already executed.
	executed []int
	// lastOfObject[o] = index of the last executed event on object o, -1
	// if none.
	lastOfObject []int
	// eventsOfThread[t] lists event indices of thread t in program order.
	eventsOfThread [][]int
	// base, when non-nil, summarizes the part of the computation that slid
	// out of a streaming window and is treated as unconditionally executed
	// (see Streamer). Offline detection leaves it nil.
	base *baseState
}

// baseState condenses an already-executed prefix: per-thread counts plus
// the last event per thread and per object, which is all the State API can
// be asked about the evicted history.
type baseState struct {
	executed   []int
	total      int
	lastThread []event.Event
	hasThread  []bool
	lastObject []event.Event
	hasObject  []bool
}

// localExecuted returns the in-window executed count for t, tolerating
// threads that never appear in the window.
func (s *State) localExecuted(t event.ThreadID) int {
	if int(t) >= len(s.executed) {
		return 0
	}
	return s.executed[t]
}

// Executed returns how many events of thread t have run, including any
// evicted base prefix.
func (s *State) Executed(t event.ThreadID) int {
	c := s.localExecuted(t)
	if s.base != nil && int(t) < len(s.base.executed) {
		c += s.base.executed[t]
	}
	return c
}

// Total returns the total number of executed events in this state.
func (s *State) Total() int {
	n := 0
	for _, c := range s.executed {
		n += c
	}
	if s.base != nil {
		n += s.base.total
	}
	return n
}

// LastEvent returns thread t's most recently executed event, falling back
// to the evicted base prefix when the thread has not run inside the window.
// In a windowed evaluation the returned event's Index is window-relative.
func (s *State) LastEvent(t event.ThreadID) (event.Event, bool) {
	c := s.localExecuted(t)
	if c == 0 {
		if s.base != nil && int(t) < len(s.base.hasThread) && s.base.hasThread[t] {
			return s.base.lastThread[t], true
		}
		return event.Event{}, false
	}
	return s.tr.At(s.eventsOfThread[t][c-1]), true
}

// LastOnObject returns the most recently executed event on object o,
// falling back to the evicted base prefix when the object has not been
// touched inside the window.
func (s *State) LastOnObject(o event.ObjectID) (event.Event, bool) {
	if int(o) < len(s.lastOfObject) && s.lastOfObject[o] >= 0 {
		return s.tr.At(s.lastOfObject[o]), true
	}
	if s.base != nil && int(o) < len(s.base.hasObject) && s.base.hasObject[o] {
		return s.base.lastObject[o], true
	}
	return event.Event{}, false
}

// Cut returns the state as a cut (per-thread prefix lengths), counting any
// evicted base prefix.
func (s *State) Cut() cut.Cut {
	n := len(s.executed)
	if s.base != nil && len(s.base.executed) > n {
		n = len(s.base.executed)
	}
	per := make([]int, n)
	copy(per, s.executed)
	if s.base != nil {
		for t, c := range s.base.executed {
			per[t] += c
		}
	}
	return cut.Cut{PerThread: per}
}

// Predicate evaluates a property of one consistent global state.
type Predicate func(s *State) bool

// detector holds the per-trace machinery shared by Possibly and Definitely.
type detector struct {
	tr             *event.Trace
	base           *baseState // nil offline; the evicted prefix when streaming
	eventsOfThread [][]int
	// objPred[e] = event index of e's object predecessor, or -1.
	objPred []int
	// seqInThread[e] = position of event e within its thread.
	seqInThread []int
	threads     int
}

func newDetector(tr *event.Trace) *detector {
	d := &detector{
		tr:             tr,
		eventsOfThread: tr.ByThread(),
		objPred:        make([]int, tr.Len()),
		seqInThread:    make([]int, tr.Len()),
		threads:        tr.Threads(),
	}
	lastObj := make(map[event.ObjectID]int)
	seq := make([]int, tr.Threads())
	for i := 0; i < tr.Len(); i++ {
		e := tr.At(i)
		if p, ok := lastObj[e.Object]; ok {
			d.objPred[i] = p
		} else {
			d.objPred[i] = -1
		}
		lastObj[e.Object] = i
		d.seqInThread[i] = seq[e.Thread]
		seq[e.Thread]++
	}
	return d
}

// enabled reports whether thread t can execute its next event in the state
// with the given executed counts: the event's object predecessor (if any)
// must already be executed.
func (d *detector) enabled(executed []int, t int) bool {
	c := executed[t]
	if c >= len(d.eventsOfThread[t]) {
		return false
	}
	idx := d.eventsOfThread[t][c]
	p := d.objPred[idx]
	if p < 0 {
		return true
	}
	pt := d.tr.At(p).Thread
	return d.seqInThread[p] < executed[pt]
}

// state materializes a State for predicate evaluation.
func (d *detector) state(executed []int) *State {
	lastOfObject := make([]int, d.tr.Objects())
	for o := range lastOfObject {
		lastOfObject[o] = -1
	}
	// The last executed event on each object is the max executed index on
	// it; recompute by scanning executed prefixes (cheap relative to the
	// lattice search itself).
	for t := 0; t < d.threads; t++ {
		for _, idx := range d.eventsOfThread[t][:executed[t]] {
			e := d.tr.At(idx)
			if idx > lastOfObject[e.Object] {
				lastOfObject[e.Object] = idx
			}
		}
	}
	return &State{
		tr:             d.tr,
		executed:       append([]int(nil), executed...),
		lastOfObject:   lastOfObject,
		eventsOfThread: d.eventsOfThread,
		base:           d.base,
	}
}

func key(executed []int) string {
	b := make([]byte, 0, len(executed)*2)
	for _, c := range executed {
		b = append(b, byte(c), byte(c>>8))
	}
	return string(b)
}

// Possibly reports whether some consistent global state of tr satisfies
// pred, returning a witness cut when found. It explores at most maxStates
// distinct states (0 means DefaultMaxStates) and returns ErrBudget when the
// lattice is larger and no witness was found within the budget.
func Possibly(tr *event.Trace, pred Predicate, maxStates int) (cut.Cut, bool, error) {
	return possiblyOn(newDetector(tr), pred, maxStates)
}

// possiblyOn runs the Possibly BFS on a prepared detector; the Streamer
// shares it with a non-nil base.
func possiblyOn(d *detector, pred Predicate, maxStates int) (cut.Cut, bool, error) {
	if maxStates <= 0 {
		maxStates = DefaultMaxStates
	}
	start := make([]int, d.threads)
	seen := map[string]bool{key(start): true}
	queue := [][]int{start}
	truncated := false

	for head := 0; head < len(queue); head++ {
		executed := queue[head]
		st := d.state(executed)
		if pred(st) {
			return st.Cut(), true, nil
		}
		for t := 0; t < d.threads; t++ {
			if !d.enabled(executed, t) {
				continue
			}
			next := append([]int(nil), executed...)
			next[t]++
			k := key(next)
			if seen[k] {
				continue
			}
			if len(seen) >= maxStates {
				truncated = true
				continue
			}
			seen[k] = true
			queue = append(queue, next)
		}
	}
	if truncated {
		return cut.Cut{}, false, fmt.Errorf("%w: explored %d states", ErrBudget, maxStates)
	}
	return cut.Cut{}, false, nil
}

// DefaultMaxStates bounds lattice exploration when the caller passes 0.
const DefaultMaxStates = 1 << 20

// Definitely reports whether every execution path of tr passes through a
// state satisfying pred (Cooper–Marzullo's Definitely modality). It holds
// exactly when no path from the initial to the final state avoids pred
// throughout, which is checked by searching the sub-lattice of ¬pred
// states. The maxStates budget applies as in Possibly.
func Definitely(tr *event.Trace, pred Predicate, maxStates int) (bool, error) {
	if maxStates <= 0 {
		maxStates = DefaultMaxStates
	}
	d := newDetector(tr)
	start := make([]int, d.threads)
	if pred(d.state(start)) {
		// The initial state is on every path.
		return true, nil
	}
	final := make([]int, d.threads)
	for t := range final {
		final[t] = len(d.eventsOfThread[t])
	}
	finalKey := key(final)

	seen := map[string]bool{key(start): true}
	queue := [][]int{start}
	for head := 0; head < len(queue); head++ {
		executed := queue[head]
		if key(executed) == finalKey {
			// A complete path avoided pred.
			return false, nil
		}
		for t := 0; t < d.threads; t++ {
			if !d.enabled(executed, t) {
				continue
			}
			next := append([]int(nil), executed...)
			next[t]++
			k := key(next)
			if seen[k] {
				continue
			}
			if len(seen) >= maxStates {
				return false, fmt.Errorf("%w: explored %d states", ErrBudget, maxStates)
			}
			seen[k] = true
			if pred(d.state(next)) {
				continue // path must pass pred here; do not expand further
			}
			queue = append(queue, next)
		}
	}
	// Every ¬pred-path got stuck before the final state.
	return true, nil
}
