// Command mvc analyzes thread–object computations with mixed vector clocks.
//
// Usage:
//
//	mvc analyze   [-trace FILE]            graph, optimal cover, clock-size comparison
//	mvc timestamp [-trace FILE] [-n N]     per-event mixed-clock timestamps
//	mvc order     [-trace FILE] -i A -j B  causal relation between two events
//	mvc detect    [-trace FILE]            concurrency census + schedule-sensitive pairs
//	mvc detect    -live -dir DIR [-follow] [-window N] [-order FIRST,SECOND]
//	                                       online detection over a live run's
//	                                       spill directory: follow the
//	                                       published catalog and evaluate the
//	                                       streaming analyses as segments land
//	mvc recover   [-trace FILE] -fail K    recovery line excluding event K's causal future
//	mvc recover   -dir DIR                 reopen a spill directory through
//	                                       crash recovery and report the
//	                                       resumed epoch, index and health
//	mvc validate  [-trace FILE]            prove every clock scheme valid on this trace
//	mvc graph     [-trace FILE]            Graphviz DOT with the minimum cover filled
//	mvc export    [-trace FILE] -out LOG [-format full|delta]
//	              [-live [-spill DIR] [-seal N]]
//	                                       timestamp and write a binary .mvclog
//	mvc inspect   -log LOG [-n N]          read a binary log, either format
//	                                       (tolerates truncation)
//	mvc segments  [-out LOG] [-n N] FILE|DIR...
//	                                       inspect .mvcseg spill files, or
//	                                       merge them into one log
//	mvc catalog   [-verify] DIR|FILE       print a spill directory's segment
//	                                       catalog (catalog.json); -verify
//	                                       also checks file sizes, hashes,
//	                                       the shipper cursor and the
//	                                       retention floor
//	mvc compact   [-max N] [-target BYTES] DIR
//	                                       tier-compact a spill directory:
//	                                       merge runs of adjacent small
//	                                       segments, rewrite the catalog
//	mvc spam      [-threads N] [-duration D | -ops N] [-readfrac F]
//	              [-batch N] [-dist uniform|zipf] [-store DIR] [-monitor]
//	              [-backend B] [-seed S] [-format table|csv|json]
//	                                       load-generate against a live
//	                                       tracker and report mops/sec,
//	                                       latency percentiles and final
//	                                       lifecycle stats (cmd/loadgen's
//	                                       engine; with -store the run is
//	                                       durable and mvc detect -live
//	                                       can watch it from outside)
//
// Traces are JSON Lines as produced by tracegen (one {"i","t","o","op"}
// object per line); -trace defaults to stdin.
//
// Commands that timestamp events accept -backend {flat|tree|auto} to pick
// the clock representation: flat (default) is the reference vector, tree is
// the Mathur et al. tree clock whose joins skip already-dominated subtrees,
// and auto picks one from the analyzed computation's width and join shape.
// Timestamps are identical in every case; only the cost profile changes.
//
// export's -format=delta writes the delta-encoded log: per-thread changed
// components instead of full vectors, streamed straight from the clock's
// change capture. inspect auto-detects the format from the header.
//
// export -live replays the trace through the live tracker's epoch-segment
// pipeline instead of the offline clock: events stream through a Tracker
// (whose online mechanism discovers the components), optionally sealing
// every -seal events and spilling sealed segments to -spill DIR, and the
// log is produced by Tracker.SnapshotTo/Stream — no vector table is ever
// materialized, whatever the trace length. The spill directory it leaves
// behind is what mvc segments inspects and merges.
//
// detect -live attaches the online analyses to a spill directory from the
// outside: it follows the published catalog.json with a durable cursor and
// evaluates the streaming census, the exact schedule-sensitive pair scanner
// and an optional -order watch over sealed records as segments land —
// without ever touching the tracker that owns the directory (sealed
// segments are immutable; commits continue). -follow keeps polling until
// the run closes; -order FIRST,SECOND (object names from the catalog's
// resume manifest) flags every write to SECOND concurrent with the latest
// write to FIRST, with epoch and trace-index provenance. In-process
// monitoring with tail visibility is the library's Tracker.NewMonitor.
package main

import (
	"bufio"
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"mixedclock/internal/baseline"
	"mixedclock/internal/clock"
	"mixedclock/internal/core"
	"mixedclock/internal/cut"
	"mixedclock/internal/detect"
	"mixedclock/internal/event"
	"mixedclock/internal/loadgen"
	"mixedclock/internal/tlog"
	"mixedclock/internal/track"
	"mixedclock/internal/vclock"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	cmd := os.Args[1]
	// spam is the load generator: its knob set is loadgen's, not the
	// trace-analysis flags below, so it parses its own FlagSet (notably
	// -format means table|csv|json here, not a log encoding).
	if cmd == "spam" {
		sfs := flag.NewFlagSet("mvc spam", flag.ExitOnError)
		lf := loadgen.AddFlags(sfs)
		if err := sfs.Parse(os.Args[2:]); err != nil {
			os.Exit(2)
		}
		rep, err := loadgen.Run(lf.Config())
		if err != nil {
			fatal(err)
		}
		if err := rep.Write(os.Stdout, *lf.Format); err != nil {
			fatal(err)
		}
		return
	}
	fs := flag.NewFlagSet("mvc "+cmd, flag.ExitOnError)
	tracePath := fs.String("trace", "-", "trace file (JSONL); - for stdin")
	n := fs.Int("n", 20, "timestamp/inspect: number of events to print (0 = all)")
	i := fs.Int("i", -1, "order: first event index")
	j := fs.Int("j", -1, "order: second event index")
	fail := fs.Int("fail", -1, "recover: failed event index")
	dir := fs.String("dir", "", "recover/detect -live: operate on this spill directory instead of a trace")
	out := fs.String("out", "", "export: output .mvclog path")
	logPath := fs.String("log", "", "inspect: input .mvclog path")
	backendName := fs.String("backend", "flat", "clock representation: flat, tree or auto")
	format := fs.String("format", "full", "export: log encoding, full or delta")
	live := fs.Bool("live", false, "export: replay through the live segment pipeline; detect: attach to a spill directory")
	follow := fs.Bool("follow", false, "detect -live: keep polling the catalog until the run closes")
	window := fs.Int("window", 0, "detect -live: census window in events (0: unbounded, exact)")
	orderSpec := fs.String("order", "", "detect -live: FIRST,SECOND object names; flag writes to SECOND concurrent with the latest write to FIRST")
	spillDir := fs.String("spill", "", "export -live: spill sealed segments to this directory")
	seal := fs.Int("seal", 0, "export -live: seal every N events (0: only at the end)")
	batch := fs.Int("batch", 0, "export -live: commit runs of up to N same-thread events as one batch (0: per-event)")
	verify := fs.Bool("verify", false, "catalog: verify segment file sizes and content hashes")
	maxSegs := fs.Int("max", 0, "compact: tolerated segment count (0: compact unconditionally)")
	target := fs.Int64("target", 0, "compact: merged-tier size ceiling in bytes (0: one segment per epoch)")
	if err := fs.Parse(os.Args[2:]); err != nil {
		os.Exit(2)
	}
	backend, err := vclock.ParseBackend(*backendName)
	if err != nil {
		fatal(err)
	}

	// inspect and segments read binary artifacts, not a JSONL trace.
	if cmd == "inspect" {
		if err := inspect(os.Stdout, *logPath, *n); err != nil {
			fatal(err)
		}
		return
	}
	if cmd == "segments" {
		if err := segmentsCmd(os.Stdout, fs.Args(), *out, *n); err != nil {
			fatal(err)
		}
		return
	}
	if cmd == "catalog" {
		if err := catalogCmd(os.Stdout, fs.Args(), *verify); err != nil {
			fatal(err)
		}
		return
	}
	if cmd == "compact" {
		if err := compactCmd(os.Stdout, fs.Args(), *maxSegs, *target); err != nil {
			fatal(err)
		}
		return
	}
	// detect -live follows a spill directory's published catalog; the
	// trace-based detect below analyzes a recorded JSONL trace.
	if cmd == "detect" && *live {
		if *dir == "" {
			fatal(fmt.Errorf("detect -live needs -dir DIR (a spill directory)"))
		}
		if err := detectLive(os.Stdout, *dir, *follow, *window, *orderSpec); err != nil {
			fatal(err)
		}
		return
	}
	// recover -dir is durable-run recovery (reopen a spill directory); the
	// trace-based form below cuts a recovery line instead. Recovery that had
	// to quarantine damaged files still succeeds — the run is usable — but
	// exits with a distinct code so scripts can tell "clean" from "repaired
	// with losses set aside".
	if cmd == "recover" && *dir != "" {
		quarantined, err := recoverDir(os.Stdout, *dir)
		if err != nil {
			fatal(err)
		}
		if quarantined > 0 {
			os.Exit(exitQuarantined)
		}
		return
	}

	tr, err := loadTrace(*tracePath)
	if err != nil {
		fatal(err)
	}

	switch cmd {
	case "analyze":
		err = analyze(os.Stdout, tr)
	case "timestamp":
		err = timestamp(os.Stdout, tr, *n, backend)
	case "order":
		err = order(os.Stdout, tr, *i, *j, backend)
	case "detect":
		err = detectCmd(os.Stdout, tr, backend)
	case "recover":
		err = recover_(os.Stdout, tr, *fail, backend)
	case "validate":
		err = validate(os.Stdout, tr, backend)
	case "graph":
		err = graph(os.Stdout, tr)
	case "export":
		if *live {
			err = exportLive(os.Stdout, tr, *out, backend, *format, *spillDir, *seal, *batch)
		} else {
			err = export(os.Stdout, tr, *out, backend, *format)
		}
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fatal(err)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: mvc {analyze|timestamp|order|detect|recover|validate|graph|export|inspect|segments|catalog|compact|spam} [flags]")
	fmt.Fprintln(os.Stderr, "run 'mvc <command> -h' for command flags")
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "mvc: %v\n", err)
	os.Exit(1)
}

func loadTrace(path string) (*event.Trace, error) {
	var r io.Reader = os.Stdin
	if path != "-" {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		r = f
	}
	tr, err := event.ReadJSONL(r)
	if err != nil {
		return nil, err
	}
	if tr.Len() == 0 {
		return nil, fmt.Errorf("empty trace")
	}
	return tr, nil
}

func analyze(w io.Writer, tr *event.Trace) error {
	stats := tr.Summarize()
	fmt.Fprintf(w, "trace: %v\n", stats)

	a := core.AnalyzeTrace(tr)
	if err := a.Verify(); err != nil {
		return err
	}
	fmt.Fprintf(w, "bipartite graph: %v\n", a.Graph)
	fmt.Fprintf(w, "maximum matching: %d edges\n", a.Matching.Size())
	fmt.Fprintf(w, "minimum vertex cover: %v\n", a.Cover)
	fmt.Fprintln(w)
	fmt.Fprintf(w, "clock sizes:\n")
	fmt.Fprintf(w, "  thread-based:   %d\n", stats.Threads)
	fmt.Fprintf(w, "  object-based:   %d\n", stats.Objects)
	cc := baseline.NewChainClock()
	clock.Run(tr, cc)
	fmt.Fprintf(w, "  chain:          %d\n", cc.Components())
	oc := core.NewOnlineMixedClock(core.Popularity{})
	clock.Run(tr, oc)
	fmt.Fprintf(w, "  online (pop.):  %d\n", oc.Components())
	fmt.Fprintf(w, "  mixed (optimal): %d\n", a.VectorSize())
	fmt.Fprintf(w, "savings vs best classical clock: %d components\n", a.Savings())
	return nil
}

func timestamp(w io.Writer, tr *event.Trace, n int, b vclock.Backend) error {
	a := core.AnalyzeTrace(tr)
	mc := a.NewClockBackend(b)
	stamps := clock.Run(tr, mc)
	if err := mc.Err(); err != nil {
		return err
	}
	fmt.Fprintf(w, "components: %v\n", a.Components)
	limit := tr.Len()
	if n > 0 && n < limit {
		limit = n
	}
	for i := 0; i < limit; i++ {
		fmt.Fprintf(w, "%4d %v %v\n", i, tr.At(i), stamps[i])
	}
	if limit < tr.Len() {
		fmt.Fprintf(w, "... (%d more; use -n 0 for all)\n", tr.Len()-limit)
	}
	return nil
}

func order(w io.Writer, tr *event.Trace, i, j int, b vclock.Backend) error {
	if i < 0 || j < 0 || i >= tr.Len() || j >= tr.Len() {
		return fmt.Errorf("order needs -i and -j in [0, %d)", tr.Len())
	}
	stamps := clock.Run(tr, core.AnalyzeTrace(tr).NewClockBackend(b))
	rel := "concurrent with"
	switch {
	case stamps[i].Less(stamps[j]):
		rel = "happened before"
	case stamps[j].Less(stamps[i]):
		rel = "happened after"
	}
	fmt.Fprintf(w, "event %d %v %s event %d %v\n", i, tr.At(i), rel, j, tr.At(j))
	fmt.Fprintf(w, "  %v vs %v\n", stamps[i], stamps[j])
	return nil
}

func detectCmd(w io.Writer, tr *event.Trace, b vclock.Backend) error {
	stamps := clock.Run(tr, core.AnalyzeTrace(tr).NewClockBackend(b))
	fmt.Fprintf(w, "census: %v\n", detect.TakeCensus(stamps))
	pairs := detect.ScheduleSensitivePairs(tr)
	fmt.Fprintf(w, "schedule-sensitive pairs: %d\n", len(pairs))
	for k, p := range pairs {
		if k >= 20 {
			fmt.Fprintf(w, "  ... (%d more)\n", len(pairs)-20)
			break
		}
		fmt.Fprintf(w, "  %v\n", p)
	}
	return nil
}

// detectLive attaches the online analyses to a spill directory: a
// tlog.DirCursor follows the published catalog and replays newly sealed
// records through the streaming census (windowed by -window), the exact
// schedule-sensitive pair scanner, and the optional -order watch. The
// owning tracker is never touched — sealed segments are immutable and the
// catalog is rewritten by atomic rename — so commits continue while this
// runs. With -follow it polls until the catalog is marked Closed;
// otherwise one pass over what is currently published.
//
// The -order names resolve against the catalog's resume manifest before
// each poll, so a watch on objects registered before the first seal (the
// normal case) is armed for every record; an object first named in a later
// generation is watched from the poll that sees that generation.
func detectLive(w io.Writer, dir string, follow bool, window int, orderSpec string) error {
	var firstName, secondName string
	if orderSpec != "" {
		parts := strings.SplitN(orderSpec, ",", 2)
		if len(parts) != 2 || parts[0] == "" || parts[1] == "" {
			return fmt.Errorf("-order wants FIRST,SECOND object names, got %q", orderSpec)
		}
		firstName, secondName = parts[0], parts[1]
	}
	cur := tlog.NewDirCursor(dir)
	census := detect.NewCensusAccumulator(window)
	scanner := detect.NewPairScanner()
	firstObj, secondObj := event.ObjectID(-1), event.ObjectID(-1)
	var (
		haveFirst  bool
		firstEv    event.Event
		firstEpoch int
		firstStamp vclock.Vector
		detections int
	)
	sink := func(e event.Event, epoch int, v vclock.Vector) error {
		census.Add(epoch, v)
		if p, ok := scanner.Add(e, epoch, v); ok {
			detections++
			fmt.Fprintf(w, "pair: %v <lock-only> %v (epoch %d, index %d)\n", p.First, p.Second, epoch, e.Index)
		}
		if e.Op != event.OpWrite || firstObj < 0 {
			return nil
		}
		// Compare against the previous first-match before updating it, so
		// FIRST==SECOND degenerates sanely. Cross-epoch matches are ordered
		// by the compaction barrier and never flag.
		if e.Object == secondObj && haveFirst && firstEpoch == epoch && firstStamp.Concurrent(v) {
			detections++
			fmt.Fprintf(w, "order: [%s,%s] %v (epoch %d, index %d) concurrent with %v (epoch %d, index %d)\n",
				firstName, secondName, e, epoch, e.Index, firstEv, firstEpoch, firstEv.Index)
		}
		if e.Object == firstObj {
			haveFirst, firstEv, firstEpoch = true, e, epoch
			firstStamp = v.Clone()
		}
		return nil
	}
	total := 0
	for {
		if orderSpec != "" && firstObj < 0 {
			if cat, err := loadDirCatalog(dir); err == nil && cat.Resume != nil {
				fo := objectByName(cat.Resume.Objects, firstName)
				so := objectByName(cat.Resume.Objects, secondName)
				if fo >= 0 && so >= 0 {
					firstObj, secondObj = fo, so
				} else if cat.Closed {
					return fmt.Errorf("-order: objects %q,%q not both in the catalog's name table %v", firstName, secondName, cat.Resume.Objects)
				}
			}
		}
		cat, n, err := cur.Poll(sink)
		if err != nil {
			return err
		}
		total += n
		if cat != nil && cat.Closed {
			fmt.Fprintln(w, "run closed")
			break
		}
		if !follow {
			break
		}
		time.Sleep(cur.NextDelay())
	}
	if orderSpec != "" && firstObj < 0 {
		return fmt.Errorf("-order: objects %q,%q never appeared in the catalog's name table", firstName, secondName)
	}
	fmt.Fprintf(w, "consumed %d sealed events (cursor at %d", total, cur.Next())
	if cur.Skipped() > 0 {
		fmt.Fprintf(w, "; %d below the retention floor skipped", cur.Skipped())
	}
	fmt.Fprintln(w, ")")
	fmt.Fprintf(w, "census: %v", census.Census())
	if census.Skipped() > 0 {
		fmt.Fprintf(w, " (+%d pairs beyond the %d-event window)", census.Skipped(), window)
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "schedule-sensitive pairs: %d\n", scanner.Count())
	fmt.Fprintf(w, "detections: %d\n", detections)
	return nil
}

// loadDirCatalog reads a spill directory's current catalog.json.
func loadDirCatalog(dir string) (*tlog.Catalog, error) {
	f, err := os.Open(filepath.Join(dir, tlog.CatalogFileName))
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return tlog.DecodeCatalog(f)
}

// objectByName resolves an object name through the resume manifest's dense
// name table; -1 if absent.
func objectByName(names []string, name string) event.ObjectID {
	for i, n := range names {
		if n == name {
			return event.ObjectID(i)
		}
	}
	return -1
}

func recover_(w io.Writer, tr *event.Trace, fail int, b vclock.Backend) error {
	if fail < 0 {
		return fmt.Errorf("recover needs -fail in [0, %d)", tr.Len())
	}
	stamps := clock.Run(tr, core.AnalyzeTrace(tr).NewClockBackend(b))
	line, err := cut.RecoveryLine(tr, stamps, fail)
	if err != nil {
		return err
	}
	contaminated := cut.Contaminated(stamps, fail)
	fmt.Fprintf(w, "failure at event %d %v\n", fail, tr.At(fail))
	fmt.Fprintf(w, "contaminated events: %d of %d\n", len(contaminated), tr.Len())
	fmt.Fprintf(w, "recovery line: %v (%d events survive)\n", line, line.Size())
	return nil
}

// exitQuarantined is `mvc recover -dir`'s exit code when recovery succeeded
// but set damaged files aside: distinct from 0 (clean) and 1 (failure) so
// operators can script on "repaired, inspect the quarantine".
const exitQuarantined = 3

// recoverDir reopens a spill directory through the durable-run recovery path
// (track.Open) and reports what came back: the resumed epoch and trace index,
// the retention floor, quarantined files, and overall health. The reopened
// run is then closed cleanly, so the directory is left with a repaired,
// Closed catalog generation. It returns how many files recovery quarantined;
// main turns a non-zero count into exitQuarantined.
func recoverDir(w io.Writer, dir string) (quarantined int, err error) {
	t, err := track.Open(dir)
	if err != nil {
		return 0, err
	}
	ri := t.Recovery()
	if ri == nil {
		t.Close()
		return 0, fmt.Errorf("%s: no recovery performed (in-memory tracker?)", dir)
	}
	fmt.Fprintf(w, "recovered %s\n", dir)
	fmt.Fprintf(w, "  events:    %d sealed; committing resumes at index %d\n", ri.Events, ri.Events)
	fmt.Fprintf(w, "  epoch:     %d\n", ri.Epoch)
	fmt.Fprintf(w, "  segments:  %d adopted, catalog generation %d\n", ri.Segments, ri.Generation)
	if ri.RetainedFloor > 0 {
		fmt.Fprintf(w, "  retention: events below %d retired\n", ri.RetainedFloor)
	}
	shutdown := "crash (no Close marker; unsealed suffix lost)"
	if ri.CleanClose {
		shutdown = "clean Close"
	}
	fmt.Fprintf(w, "  shutdown:  %s\n", shutdown)
	if ri.UsedPrevCatalog {
		fmt.Fprintln(w, "  catalog:   torn; fell back to the previous generation")
	}
	for _, q := range ri.Quarantined {
		fmt.Fprintf(w, "  quarantined: %s\n", q)
	}
	fmt.Fprintf(w, "  registry:  %d threads, %d objects\n", len(t.Threads()), len(t.Objects()))
	if herr := t.Err(); herr != nil {
		fmt.Fprintf(w, "health: DEGRADED: %v\n", herr)
	} else {
		fmt.Fprintln(w, "health: ok")
	}
	if err := t.Close(); err != nil {
		return len(ri.Quarantined), err
	}
	fmt.Fprintln(w, "closed cleanly; catalog republished")
	return len(ri.Quarantined), nil
}

// validate proves every clock scheme correct on the given trace — handy
// when hand-editing traces or porting logs between versions.
func validate(w io.Writer, tr *event.Trace, b vclock.Backend) error {
	analysis := core.AnalyzeTrace(tr)
	if err := analysis.Verify(); err != nil {
		return err
	}
	schemes := []clock.Timestamper{
		analysis.NewClockBackend(b),
		core.NewOnlineMixedClockBackend(core.Popularity{}, b),
		core.NewOnlineMixedClockBackend(core.NewHybrid(), b),
		baseline.NewThreadClock(tr.Threads(), tr.Objects()),
		baseline.NewObjectClock(tr.Threads(), tr.Objects()),
		baseline.NewChainClock(),
	}
	for _, ts := range schemes {
		if _, err := clock.RunAndValidate(tr, ts); err != nil {
			return err
		}
		fmt.Fprintf(w, "ok  %-28s %d components\n", ts.Name(), ts.Components())
	}
	fmt.Fprintf(w, "all schemes valid on %d events (%d pair checks each)\n",
		tr.Len(), tr.Len()*(tr.Len()-1)/2)
	return nil
}

// graph emits Graphviz DOT with the minimum vertex cover filled, like the
// paper's Fig. 2.
func graph(w io.Writer, tr *event.Trace) error {
	a := core.AnalyzeTrace(tr)
	return a.Graph.WriteDOT(w, a.Cover.Threads, a.Cover.Objects)
}

// export timestamps the trace with the optimal mixed clock and writes the
// binary log. The delta format streams the clock's change capture straight
// into the writer — no full vector is materialized per event on the way to
// disk.
func export(w io.Writer, tr *event.Trace, out string, b vclock.Backend, format string) error {
	if out == "" {
		return fmt.Errorf("export needs -out")
	}
	if format != "full" && format != "delta" {
		return fmt.Errorf("export: unknown -format %q (want full or delta)", format)
	}
	a := core.AnalyzeTrace(tr)
	mc := a.NewClockBackend(b)
	var stamps []vclock.Vector
	if format == "full" {
		// Timestamp before touching the filesystem, so a clock error
		// leaves no file behind (and clobbers nothing).
		stamps = clock.Run(tr, mc)
		if err := mc.Err(); err != nil {
			return err
		}
	}
	f, err := os.Create(out)
	if err != nil {
		return err
	}
	defer f.Close()
	write := func() error {
		if format == "full" {
			return tlog.WriteAll(f, tr, stamps)
		}
		lw := tlog.NewDeltaWriter(f)
		var scratch []vclock.Delta
		for i := 0; i < tr.Len(); i++ {
			scratch, _ = mc.TimestampDelta(tr.At(i), scratch[:0])
			if err := lw.AppendDelta(tr.At(i), scratch); err != nil {
				return err
			}
		}
		if err := mc.Err(); err != nil {
			return err
		}
		return lw.Flush()
	}
	if err := write(); err != nil {
		// The delta path streams as it timestamps, so an error can leave a
		// partial log; don't leave it lying around to be mistaken for a
		// good one.
		f.Close()
		os.Remove(out)
		return err
	}
	fmt.Fprintf(w, "wrote %d timestamped events (%d components, %s format) to %s\n",
		tr.Len(), a.VectorSize(), format, out)
	return nil
}

// exportLive replays the trace through the live tracker's epoch-segment
// pipeline and streams the log out of it: the tracker's online mechanism
// discovers the components, sealed segments (and the tail) feed the log
// writer record by record, and no vector table is ever built. With -spill
// the run's sealed history also lands as .mvcseg files for mvc segments.
// With -batch N, runs of consecutive same-thread events commit as one
// batch of up to N operations (identical stamps, amortized synchronization).
func exportLive(w io.Writer, tr *event.Trace, out string, b vclock.Backend, format, spillDir string, seal, batch int) error {
	if out == "" {
		return fmt.Errorf("export needs -out")
	}
	if format != "full" && format != "delta" {
		return fmt.Errorf("export: unknown -format %q (want full or delta)", format)
	}
	tracker := track.NewTracker(track.WithBackend(b),
		track.WithSpill(track.SpillPolicy{Dir: spillDir, SealEvents: seal}))
	threads := make([]*track.Thread, tr.Threads())
	for i := range threads {
		threads[i] = tracker.NewThread(fmt.Sprintf("T%d", i+1))
	}
	objects := make([]*track.Object, tr.Objects())
	for i := range objects {
		objects[i] = tracker.NewObject(fmt.Sprintf("O%d", i+1))
	}
	if batch > 0 {
		// A Batch belongs to one thread, so flush at every thread change
		// (and at the size cap). Trace order is preserved exactly: the
		// replay is sequential and a flush commits everything accumulated
		// before the next event commits anything.
		var cur *track.Batch
		curThread := event.ThreadID(-1)
		for i := 0; i < tr.Len(); i++ {
			e := tr.At(i)
			if cur == nil || e.Thread != curThread || cur.Len() >= batch {
				if cur != nil {
					cur.Commit()
				}
				cur = threads[e.Thread].NewBatch()
				curThread = e.Thread
			}
			cur.Add(objects[e.Object], e.Op)
		}
		if cur != nil {
			cur.Commit()
		}
	} else {
		for i := 0; i < tr.Len(); i++ {
			e := tr.At(i)
			threads[e.Thread].Do(objects[e.Object], e.Op, nil)
		}
	}
	// Seal the remaining tail — this is what "-seal 0: only at the end"
	// promises, and it is what puts the final events into -spill DIR.
	if err := tracker.Seal(); err != nil {
		return err
	}
	if err := tracker.Err(); err != nil {
		return err
	}
	f, err := os.Create(out)
	if err != nil {
		return err
	}
	defer f.Close()
	write := func() error {
		if format == "delta" {
			return tracker.SnapshotTo(f)
		}
		lw := tlog.NewWriter(f)
		if err := tracker.Stream(fullVectorSink{lw}); err != nil {
			return err
		}
		return lw.Flush()
	}
	if err := write(); err != nil {
		// The stream writes as it decodes, so an error can leave a partial
		// log; don't leave it lying around to be mistaken for a good one.
		f.Close()
		os.Remove(out)
		return err
	}
	segs := tracker.Segments()
	spilled := 0
	for _, sg := range segs {
		if sg.Path != "" {
			spilled++
		}
	}
	fmt.Fprintf(w, "wrote %d timestamped events (%d components, %s format, live pipeline) to %s\n",
		tracker.Events(), tracker.Size(), format, out)
	fmt.Fprintf(w, "sealed %d segments (%d spilled to %s)\n", len(segs), spilled, spillDisplay(spillDir))
	return nil
}

func spillDisplay(dir string) string {
	if dir == "" {
		return "memory"
	}
	return dir
}

// fullVectorSink adapts the full-format log writer to the tracker's stream.
type fullVectorSink struct{ w *tlog.Writer }

func (s fullVectorSink) ConsumeStamp(e event.Event, _ int, v vclock.Vector) error {
	return s.w.Append(e, v)
}

// expandSegmentArgs resolves segments/compact arguments: a directory stands
// for its *.mvcseg files (sorted by name, i.e. by first index under the
// spill naming scheme), anything else is taken as a segment file. The
// catalog and other non-segment files a spill directory carries are skipped
// by the suffix filter.
func expandSegmentArgs(args []string) ([]string, error) {
	var files []string
	for _, arg := range args {
		fi, err := os.Stat(arg)
		if err != nil {
			return nil, err
		}
		if !fi.IsDir() {
			files = append(files, arg)
			continue
		}
		matches, err := filepath.Glob(filepath.Join(arg, "*.mvcseg"))
		if err != nil {
			return nil, err
		}
		sort.Strings(matches)
		files = append(files, matches...)
	}
	return files, nil
}

// segRef addresses one segment inside a (possibly multi-segment) spill
// file without holding its records: the byte offset recorded by the scan
// pass lets later passes seek straight to it instead of re-decoding the
// segments before it.
type segRef struct {
	path   string
	offset int64
	meta   tlog.SegmentMeta
}

// countReader counts bytes handed to the bufio layer, so the scan pass can
// compute each segment's file offset as consumed-minus-buffered.
type countReader struct {
	r io.Reader
	n int64
}

func (c *countReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}

// withSegment reopens ref's file at the segment's offset and hands the
// record iterator to fn.
func withSegment(ref segRef, fn func(*tlog.SegmentReader) error) error {
	f, err := os.Open(ref.path)
	if err != nil {
		return err
	}
	defer f.Close()
	if _, err := f.Seek(ref.offset, io.SeekStart); err != nil {
		return fmt.Errorf("%s: %w", ref.path, err)
	}
	sr, err := tlog.NewSegmentReader(f)
	if err != nil {
		return fmt.Errorf("%s: %w", ref.path, err)
	}
	return fn(sr)
}

// segmentsCmd inspects .mvcseg spill files (as left behind by a
// track.SpillPolicy or export -live -spill) and, with -out, merges them
// back into a single delta log readable by mvc inspect. Records stream
// through one at a time in both modes — the whole point of the spill files
// is that history needn't fit in memory, and inspecting them must not undo
// that.
func segmentsCmd(w io.Writer, args []string, out string, n int) error {
	files, err := expandSegmentArgs(args)
	if err != nil {
		return err
	}
	if len(files) == 0 {
		return fmt.Errorf("segments needs at least one .mvcseg file or a spill directory (spill files are seg-*.mvcseg)")
	}
	// Scan pass: collect segment metas and offsets, fully decoding (but not
	// retaining) every record so corruption surfaces before any output is
	// produced.
	var refs []segRef
	for _, path := range files {
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		cr := &countReader{r: f}
		br := bufio.NewReader(cr)
		for {
			offset := cr.n - int64(br.Buffered())
			sr, err := tlog.NewSegmentReader(br)
			if err == io.EOF {
				break
			}
			if err != nil {
				f.Close()
				return fmt.Errorf("%s: %w", path, err)
			}
			for i := 0; ; i++ {
				if _, _, err := sr.Next(); err == io.EOF {
					break
				} else if err != nil {
					f.Close()
					return fmt.Errorf("%s: record %d: %w", path, i, err)
				}
			}
			refs = append(refs, segRef{path: path, offset: offset, meta: sr.Meta()})
		}
		f.Close()
	}
	sort.Slice(refs, func(i, j int) bool { return refs[i].meta.FirstIndex < refs[j].meta.FirstIndex })
	// Continuity check: interior gaps AND a missing prefix warn — without
	// the warning a merge of a partial spill set would silently renumber
	// events (the log format does not carry indices).
	next, total := 0, 0
	for _, ref := range refs {
		if ref.meta.FirstIndex < next {
			return fmt.Errorf("segments overlap: %v begins inside the previous one", ref.meta)
		}
		if ref.meta.FirstIndex > next {
			fmt.Fprintf(w, "warning: gap before %v (events %d-%d missing)\n",
				ref.meta, next, ref.meta.FirstIndex-1)
		}
		next = ref.meta.FirstIndex + ref.meta.Count
		total += ref.meta.Count
	}

	if out == "" {
		for _, ref := range refs {
			fmt.Fprintf(w, "%s: %v, %d events\n", ref.path, ref.meta, ref.meta.Count)
			limit := ref.meta.Count
			if n > 0 && n < limit {
				limit = n
			}
			err := withSegment(ref, func(sr *tlog.SegmentReader) error {
				for i := 0; i < limit; i++ {
					e, v, err := sr.Next()
					if err != nil {
						return err
					}
					fmt.Fprintf(w, "  %4d %v %v\n", e.Index, e, v)
				}
				return nil
			})
			if err != nil {
				return err
			}
			if limit < ref.meta.Count {
				fmt.Fprintf(w, "  ... (%d more; use -n 0 for all)\n", ref.meta.Count-limit)
			}
		}
		fmt.Fprintf(w, "%d segments, %d events total\n", len(refs), total)
		return nil
	}

	f, err := os.Create(out)
	if err != nil {
		return err
	}
	defer f.Close()
	lw := tlog.NewDeltaWriter(f)
	for _, ref := range refs {
		err := withSegment(ref, func(sr *tlog.SegmentReader) error {
			for {
				e, v, err := sr.Next()
				if err == io.EOF {
					return nil
				}
				if err != nil {
					return err
				}
				if err := lw.Append(e, v); err != nil {
					return err
				}
			}
		})
		if err != nil {
			f.Close()
			os.Remove(out)
			return err
		}
	}
	if err := lw.Flush(); err != nil {
		f.Close()
		os.Remove(out)
		return err
	}
	fmt.Fprintf(w, "merged %d segments (%d events) into %s\n", len(refs), total, out)
	return nil
}

// catalogCmd prints a spill directory's segment catalog — the document
// external log shippers poll — and, with -verify, re-reads every listed
// segment file to check its size and SHA-256 against the catalog. The
// argument is the spill directory or a direct path to a catalog.json.
func catalogCmd(w io.Writer, args []string, verify bool) error {
	if len(args) != 1 {
		return fmt.Errorf("catalog needs one spill directory or catalog.json path")
	}
	path, dir := args[0], filepath.Dir(args[0])
	if fi, err := os.Stat(path); err != nil {
		return err
	} else if fi.IsDir() {
		dir = path
		path = filepath.Join(path, tlog.CatalogFileName)
	}
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	c, err := tlog.DecodeCatalog(f)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "catalog generation %d: %d segments, %d sealed events\n",
		c.Generation, len(c.Segments), c.SealedEvents)
	if c.Closed {
		fmt.Fprintln(w, "run closed cleanly")
	}
	if c.RetainedEvents > 0 {
		fmt.Fprintf(w, "retention floor: events below %d retired\n", c.RetainedEvents)
	}
	if c.Resume != nil {
		fmt.Fprintf(w, "resume manifest: epoch %d, %d threads, %d objects, %d components\n",
			c.Resume.Epoch, len(c.Resume.Threads), len(c.Resume.Objects), len(c.Resume.Components))
	}
	if c.Health != "" {
		fmt.Fprintf(w, "health: %s\n", c.Health)
	}
	if c.AutoSealDisarmed {
		fmt.Fprintln(w, "auto-sealing: DISARMED by a spill failure (explicit Seal or Compact re-arms)")
	}
	bad, checked := 0, 0
	for i, sg := range c.Segments {
		where := sg.Path
		if where == "" {
			where = "(in memory)"
		}
		fmt.Fprintf(w, "%4d epoch %d, events [%d,%d], %d bytes  %s\n",
			i, sg.Epoch, sg.FirstIndex, sg.FirstIndex+sg.Events-1, sg.Bytes, where)
		if !verify || sg.Path == "" {
			continue
		}
		checked++
		data, err := os.ReadFile(filepath.Join(dir, sg.Path))
		switch {
		case err != nil:
			fmt.Fprintf(w, "     MISSING: %v\n", err)
			bad++
		case int64(len(data)) != sg.Bytes:
			fmt.Fprintf(w, "     SIZE MISMATCH: file is %d bytes, catalog says %d\n", len(data), sg.Bytes)
			bad++
		case sg.SHA256 != "" && hashHex(data) != sg.SHA256:
			fmt.Fprintf(w, "     HASH MISMATCH: file is %s\n", hashHex(data))
			bad++
		}
	}
	if verify {
		// Retention invariant: coverage is gapless starting exactly at the
		// floor (Decode already validated ordering; restate the floor check
		// here so a hand-edited catalog is reported, not just rejected).
		if len(c.Segments) > 0 && c.Segments[0].FirstIndex != c.RetainedEvents {
			fmt.Fprintf(w, "RETENTION MISMATCH: floor is %d but coverage starts at %d\n",
				c.RetainedEvents, c.Segments[0].FirstIndex)
			bad++
		}
		// Shipper cursor invariants, when a shipper has run against this
		// directory: the cursor can never be ahead of the catalog, and a
		// retention floor above it means events were retired unshipped.
		if cf, err := os.Open(filepath.Join(dir, tlog.ShipCursorFileName)); err == nil {
			cur, cerr := tlog.DecodeShipCursor(cf)
			cf.Close()
			switch {
			case cerr != nil:
				fmt.Fprintf(w, "shipper cursor: INVALID: %v\n", cerr)
				bad++
			case cur.Generation > c.Generation:
				fmt.Fprintf(w, "shipper cursor: AHEAD of catalog: generation %d > %d (catalog restored from backup?)\n",
					cur.Generation, c.Generation)
				bad++
			case cur.ShippedEvents > c.SealedEvents:
				fmt.Fprintf(w, "shipper cursor: AHEAD of catalog: %d events shipped, only %d sealed\n",
					cur.ShippedEvents, c.SealedEvents)
				bad++
			case cur.ShippedEvents < c.RetainedEvents:
				fmt.Fprintf(w, "shipper cursor: RETENTION OUTRAN SHIPPING: events [%d,%d) were retired unshipped\n",
					cur.ShippedEvents, c.RetainedEvents)
				bad++
			default:
				fmt.Fprintf(w, "shipper cursor: generation %d, %d events shipped\n",
					cur.Generation, cur.ShippedEvents)
			}
		} else if !os.IsNotExist(err) {
			return err
		}
		if bad > 0 {
			return fmt.Errorf("%d verification checks failed", bad)
		}
		fmt.Fprintf(w, "verified %d segment files against the catalog", checked)
		if skipped := len(c.Segments) - checked; skipped > 0 {
			fmt.Fprintf(w, " (%d in-memory segments not verifiable)", skipped)
		}
		fmt.Fprintln(w)
	}
	return nil
}

func hashHex(data []byte) string {
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:])
}

// compactCmd tier-compacts a spill directory offline: runs of adjacent
// small single-epoch segments are merged into larger files (byte-equivalent
// replay, same planning rules as the tracker's own pass), the sources are
// removed, and catalog.json — if present — is rewritten to the new layout.
// Only for directories no live tracker is spilling into; a running
// tracker's own CompactSegments does this safely online.
func compactCmd(w io.Writer, args []string, maxSegs int, target int64) error {
	if len(args) != 1 {
		return fmt.Errorf("compact needs one spill directory")
	}
	dir := args[0]
	if fi, err := os.Stat(dir); err != nil {
		return err
	} else if !fi.IsDir() {
		return fmt.Errorf("compact needs a spill directory, got file %s", dir)
	}
	files, err := expandSegmentArgs(args)
	if err != nil {
		return err
	}
	if len(files) == 0 {
		return fmt.Errorf("no .mvcseg files in %s", dir)
	}
	// Scan: spill layouts hold one segment per file; decode each fully so
	// corruption surfaces before anything is rewritten.
	type fileSeg struct {
		path string
		stat tlog.SegmentStat
	}
	segs := make([]fileSeg, 0, len(files))
	for _, path := range files {
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		br := bufio.NewReader(f)
		sr, err := tlog.NewSegmentReader(br)
		if err != nil {
			f.Close()
			return fmt.Errorf("%s: %w", path, err)
		}
		for {
			if _, _, err := sr.Next(); err == io.EOF {
				break
			} else if err != nil {
				f.Close()
				return fmt.Errorf("%s: %w", path, err)
			}
		}
		if _, err := tlog.NewSegmentReader(br); err != io.EOF {
			f.Close()
			return fmt.Errorf("%s holds more than one segment; compact only handles one-per-file spill layouts", path)
		}
		fi, err := f.Stat()
		if err != nil {
			f.Close()
			return err
		}
		f.Close()
		segs = append(segs, fileSeg{path: path, stat: tlog.SegmentStat{Meta: sr.Meta(), Bytes: fi.Size()}})
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].stat.Meta.FirstIndex < segs[j].stat.Meta.FirstIndex })
	// Overlapping ranges are the signature of an interrupted compact (the
	// merged file landed, its sources were not all removed) — refuse with a
	// pointer at the duplicates rather than plan nonsense around them.
	for i := 1; i < len(segs); i++ {
		prev, cur := segs[i-1], segs[i]
		if cur.stat.Meta.FirstIndex < prev.stat.Meta.FirstIndex+prev.stat.Meta.Count {
			return fmt.Errorf("%s overlaps %s: if an interrupted compact left both a merged segment and its sources, delete the smaller contained files and re-run",
				cur.path, prev.path)
		}
	}
	stats := make([]tlog.SegmentStat, len(segs))
	for i, s := range segs {
		stats[i] = s.stat
	}
	plan := tlog.PlanSegmentCompaction(stats, maxSegs, target)
	if len(plan) == 0 {
		fmt.Fprintf(w, "nothing to compact: %d segments already within policy\n", len(segs))
		return nil
	}
	mergedFiles := 0
	for _, g := range plan {
		run := segs[g[0]:g[1]]
		readers := make([]io.Reader, len(run))
		closers := make([]*os.File, len(run))
		for i, s := range run {
			f, err := os.Open(s.path)
			if err != nil {
				return err
			}
			readers[i] = f
			closers[i] = f
		}
		tmp, err := os.CreateTemp(dir, ".seg-*.tmp")
		if err != nil {
			return err
		}
		meta, err := tlog.MergeSegments(tmp, readers...)
		for _, f := range closers {
			f.Close()
		}
		if err != nil {
			tmp.Close()
			os.Remove(tmp.Name())
			return err
		}
		if err := tmp.Close(); err != nil {
			os.Remove(tmp.Name())
			return err
		}
		if err := os.Rename(tmp.Name(), filepath.Join(dir, tlog.SegmentFileName(meta))); err != nil {
			os.Remove(tmp.Name())
			return err
		}
		for _, s := range run {
			if err := os.Remove(s.path); err != nil {
				return err
			}
		}
		// Rewrite the catalog after every completed group, not once at the
		// end: a failure in a later group then leaves the catalog matching
		// what is actually on disk (each group's replacement is atomic and
		// coverage stays gapless between groups).
		if err := rewriteCatalog(dir); err != nil {
			return err
		}
		mergedFiles += len(run)
	}
	fmt.Fprintf(w, "compacted %d segments into %d (%d untouched)\n",
		mergedFiles, len(plan), len(segs)-mergedFiles)
	return nil
}

// rewriteCatalog regenerates catalog.json from the directory's current
// segment files, preserving the old document's health and advancing its
// generation. A directory without a catalog (hand-assembled spill sets)
// stays without one; a partial set whose segments do not cover history from
// index zero cannot carry a valid catalog and is reported instead.
func rewriteCatalog(dir string) error {
	catPath := filepath.Join(dir, tlog.CatalogFileName)
	old := &tlog.Catalog{FormatVersion: tlog.CatalogFormatVersion}
	if f, err := os.Open(catPath); err == nil {
		c, derr := tlog.DecodeCatalog(f)
		f.Close()
		if derr != nil {
			return fmt.Errorf("existing %s: %w", catPath, derr)
		}
		old = c
	} else if !os.IsNotExist(err) {
		return err
	} else {
		return nil // no catalog to maintain
	}
	files, err := expandSegmentArgs([]string{dir})
	if err != nil {
		return err
	}
	c := &tlog.Catalog{
		FormatVersion:    tlog.CatalogFormatVersion,
		Generation:       old.Generation + 1,
		Health:           old.Health,
		AutoSealDisarmed: old.AutoSealDisarmed,
		RetainedEvents:   old.RetainedEvents,
		Closed:           old.Closed,
		Resume:           old.Resume,
	}
	for _, path := range files {
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		sr, err := tlog.NewSegmentReader(bytes.NewReader(data))
		if err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		m := sr.Meta()
		// A merged segment inherits the newest seal time of the old entries
		// it covers, the same rule the tracker's own compaction applies.
		var sealedUnix int64
		for _, osg := range old.Segments {
			if osg.FirstIndex >= m.FirstIndex &&
				osg.FirstIndex+osg.Events <= m.FirstIndex+m.Count &&
				osg.SealedUnix > sealedUnix {
				sealedUnix = osg.SealedUnix
			}
		}
		c.Segments = append(c.Segments, tlog.CatalogSegment{
			Epoch:      m.Epoch,
			FirstIndex: m.FirstIndex,
			Events:     m.Count,
			Bytes:      int64(len(data)),
			Path:       filepath.Base(path),
			SHA256:     hashHex(data),
			SealedUnix: sealedUnix,
		})
	}
	sort.Slice(c.Segments, func(i, j int) bool { return c.Segments[i].FirstIndex < c.Segments[j].FirstIndex })
	for _, sg := range c.Segments {
		c.SealedEvents = sg.FirstIndex + sg.Events
	}
	tmp, err := os.CreateTemp(dir, ".catalog-*.tmp")
	if err != nil {
		return err
	}
	if err := tlog.EncodeCatalog(tmp, c); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("rebuilt catalog for %s does not validate (partial spill set?): %w", dir, err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return os.Rename(tmp.Name(), catPath)
}

// inspect reads a binary log, printing records and tolerating truncation.
func inspect(w io.Writer, path string, n int) error {
	if path == "" {
		return fmt.Errorf("inspect needs -log")
	}
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	tr, stamps, err := tlog.ReadAll(f)
	truncated := false
	if err != nil {
		if !errors.Is(err, tlog.ErrTruncated) {
			return err
		}
		truncated = true
	}
	limit := tr.Len()
	if n > 0 && n < limit {
		limit = n
	}
	for i := 0; i < limit; i++ {
		fmt.Fprintf(w, "%4d %v %v\n", i, tr.At(i), stamps[i])
	}
	if limit < tr.Len() {
		fmt.Fprintf(w, "... (%d more; use -n 0 for all)\n", tr.Len()-limit)
	}
	if truncated {
		fmt.Fprintf(w, "log truncated: %d complete records recovered\n", tr.Len())
	}
	if err := clock.Validate(tr, stamps, "log"); err != nil {
		return fmt.Errorf("recovered log failed validation: %w", err)
	}
	fmt.Fprintf(w, "validated %d events\n", tr.Len())
	return nil
}
