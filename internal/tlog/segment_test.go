package tlog

import (
	"bufio"
	"bytes"
	"errors"
	"io"
	"testing"

	"mixedclock/internal/core"
	"mixedclock/internal/event"
	"mixedclock/internal/vclock"
)

// sealSegment encodes a (trace, stamps) slice as a segment container, the
// way the live tracker seals its tail: delta payload via Append, widths from
// the materialized stamp lengths.
func sealSegment(t *testing.T, meta SegmentMeta, events []event.Event, stamps []vclock.Vector) []byte {
	t.Helper()
	var payload bytes.Buffer
	w := NewDeltaWriter(&payload)
	widths := make([]int, len(events))
	for i, e := range events {
		if err := w.Append(e, stamps[i]); err != nil {
			t.Fatal(err)
		}
		widths[i] = len(stamps[i])
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	data, err := AppendSegment(nil, meta, widths, payload.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// readSegment drains one segment, failing the test on any error.
func readSegment(t *testing.T, sr *SegmentReader) ([]event.Event, []vclock.Vector) {
	t.Helper()
	var events []event.Event
	var stamps []vclock.Vector
	for {
		e, v, err := sr.Next()
		if err == io.EOF {
			return events, stamps
		}
		if err != nil {
			t.Fatal(err)
		}
		events = append(events, e)
		stamps = append(stamps, v.Clone())
	}
}

func TestSegmentRoundTrip(t *testing.T) {
	tr, stamps := sampleComputation(t)
	meta := SegmentMeta{Epoch: 3, FirstIndex: 1000, Count: tr.Len()}
	data := sealSegment(t, meta, tr.Events(), stamps)

	sr, err := NewSegmentReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if sr.Meta() != meta {
		t.Fatalf("meta = %+v, want %+v", sr.Meta(), meta)
	}
	events, got := readSegment(t, sr)
	if len(events) != tr.Len() {
		t.Fatalf("decoded %d records, want %d", len(events), tr.Len())
	}
	for i := range events {
		want := tr.At(i)
		want.Index = meta.FirstIndex + i
		if events[i] != want {
			t.Fatalf("event %d: %+v, want %+v", i, events[i], want)
		}
		if !got[i].Equal(stamps[i]) {
			t.Fatalf("stamp %d: %v, want %v", i, got[i], stamps[i])
		}
		// The width table must restore the exact materialized length, not
		// just Compare-equality — snapshot semantics depend on it.
		if len(got[i]) != len(stamps[i]) {
			t.Fatalf("stamp %d width %d, want %d", i, len(got[i]), len(stamps[i]))
		}
	}
}

// TestSegmentWidthRuns grows the clock mid-segment so the width table holds
// several runs, including records whose stamps end in zeros (which the delta
// payload trims and only the width table can restore).
func TestSegmentWidthRuns(t *testing.T) {
	var events []event.Event
	var stamps []vclock.Vector
	v := vclock.Vector{}
	for i := 0; i < 30; i++ {
		width := 2
		if i >= 10 {
			width = 5
		}
		if i >= 20 {
			width = 9
		}
		v = v.Clone().Tick(i % 2) // only low components move: wide stamps end in zeros
		events = append(events, event.Event{Index: i, Thread: 0, Object: 0})
		stamps = append(stamps, v.Clone().Grow(width))
	}
	data := sealSegment(t, SegmentMeta{Count: len(events)}, events, stamps)
	sr, err := NewSegmentReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	_, got := readSegment(t, sr)
	for i := range got {
		if len(got[i]) != len(stamps[i]) || !got[i].Equal(stamps[i]) {
			t.Fatalf("stamp %d: %v (width %d), want %v (width %d)",
				i, got[i], len(got[i]), stamps[i], len(stamps[i]))
		}
	}
}

// TestSegmentsConcatenated reads a spill stream holding several segments
// through one shared bufio.Reader, as Tracker.Stream and mvc segments do.
func TestSegmentsConcatenated(t *testing.T) {
	tr, stamps := sampleComputation(t)
	half := tr.Len() / 2
	events := tr.Events()
	var file []byte
	file = append(file, sealSegment(t, SegmentMeta{Epoch: 0, FirstIndex: 0, Count: half}, events[:half], stamps[:half])...)
	file = append(file, sealSegment(t, SegmentMeta{Epoch: 1, FirstIndex: half, Count: tr.Len() - half}, events[half:], stamps[half:])...)

	br := bufio.NewReader(bytes.NewReader(file))
	var n int
	for seg := 0; ; seg++ {
		sr, err := NewSegmentReader(br)
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("segment %d: %v", seg, err)
		}
		if sr.Meta().Epoch != seg || sr.Meta().FirstIndex != n {
			t.Fatalf("segment %d meta %+v", seg, sr.Meta())
		}
		evs, got := readSegment(t, sr)
		for i := range evs {
			if evs[i].Index != n || !got[i].Equal(stamps[n]) {
				t.Fatalf("record %d of segment %d: %+v %v", i, seg, evs[i], got[i])
			}
			n++
		}
	}
	if n != tr.Len() {
		t.Fatalf("read %d records across segments, want %d", n, tr.Len())
	}
}

// TestSegmentTruncation cuts the container at every byte boundary: the
// reader must never panic, and whatever it yields before the error must be a
// correct prefix.
func TestSegmentTruncation(t *testing.T) {
	tr, stamps := sampleComputation(t)
	data := sealSegment(t, SegmentMeta{Count: tr.Len()}, tr.Events(), stamps)
	for cut := 0; cut < len(data); cut++ {
		sr, err := NewSegmentReader(bytes.NewReader(data[:cut]))
		if err != nil {
			if cut == 0 && err == io.EOF {
				continue // empty input is a clean end, not a truncation
			}
			if !errors.Is(err, ErrTruncated) && !errors.Is(err, ErrCorrupt) && !errors.Is(err, ErrBadMagic) {
				t.Fatalf("cut %d: unexpected open error %v", cut, err)
			}
			continue
		}
		var i int
		for {
			_, v, err := sr.Next()
			if err != nil {
				if err == io.EOF {
					t.Fatalf("cut %d: clean EOF from a truncated segment", cut)
				}
				if !errors.Is(err, ErrTruncated) && !errors.Is(err, ErrCorrupt) {
					t.Fatalf("cut %d: unexpected record error %v", cut, err)
				}
				break
			}
			if !v.Equal(stamps[i]) {
				t.Fatalf("cut %d: surviving record %d decoded %v, want %v", cut, i, v, stamps[i])
			}
			i++
		}
	}
}

func TestSegmentCorruptHeader(t *testing.T) {
	tr, stamps := sampleComputation(t)
	good := sealSegment(t, SegmentMeta{Count: tr.Len()}, tr.Events(), stamps)

	t.Run("bad-magic", func(t *testing.T) {
		data := bytes.Clone(good)
		data[0] = 'X'
		if _, err := NewSegmentReader(bytes.NewReader(data)); err != ErrBadMagic {
			t.Fatalf("want ErrBadMagic, got %v", err)
		}
	})
	t.Run("runs-exceed-count", func(t *testing.T) {
		// Hand-build a header whose single width run claims more records
		// than count.
		data := append([]byte{}, magicSegment[:]...)
		data = append(data, 0, 0, 1) // epoch 0, first 0, count 1
		data = append(data, 1, 2, 3) // one run: len 2 (> count), width 3
		data = append(data, 0)       // empty payload
		if _, err := NewSegmentReader(bytes.NewReader(data)); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("want ErrCorrupt, got %v", err)
		}
	})
	t.Run("count-overclaims-payload", func(t *testing.T) {
		// Reuse the good payload but claim one extra record (and widen the
		// width table to match, so the payload is what disagrees).
		var payload bytes.Buffer
		w := NewDeltaWriter(&payload)
		for i := 0; i < tr.Len(); i++ {
			if err := w.Append(tr.At(i), stamps[i]); err != nil {
				t.Fatal(err)
			}
		}
		if err := w.Flush(); err != nil {
			t.Fatal(err)
		}
		widths := make([]int, tr.Len()+1)
		for i := range widths {
			widths[i] = 4
		}
		data, err := AppendSegment(nil, SegmentMeta{Count: tr.Len() + 1}, widths, payload.Bytes())
		if err != nil {
			t.Fatal(err)
		}
		sr, err := NewSegmentReader(bytes.NewReader(data))
		if err != nil {
			t.Fatal(err)
		}
		for {
			_, _, err = sr.Next()
			if err != nil {
				break
			}
		}
		if !errors.Is(err, ErrTruncated) {
			t.Fatalf("want ErrTruncated for over-claimed count, got %v", err)
		}
	})
	t.Run("payload-overruns-count", func(t *testing.T) {
		// Claim one record fewer than the payload holds.
		var payload bytes.Buffer
		w := NewDeltaWriter(&payload)
		for i := 0; i < tr.Len(); i++ {
			if err := w.Append(tr.At(i), stamps[i]); err != nil {
				t.Fatal(err)
			}
		}
		if err := w.Flush(); err != nil {
			t.Fatal(err)
		}
		widths := make([]int, tr.Len()-1)
		for i := range widths {
			widths[i] = 4
		}
		data, err := AppendSegment(nil, SegmentMeta{Count: tr.Len() - 1}, widths, payload.Bytes())
		if err != nil {
			t.Fatal(err)
		}
		sr, err := NewSegmentReader(bytes.NewReader(data))
		if err != nil {
			t.Fatal(err)
		}
		for {
			_, _, err = sr.Next()
			if err != nil {
				break
			}
		}
		if !errors.Is(err, ErrCorrupt) {
			t.Fatalf("want ErrCorrupt for under-claimed count, got %v", err)
		}
	})
}

// TestAppendSegmentValidates pins the encoder's own argument checks.
func TestAppendSegmentValidates(t *testing.T) {
	if _, err := AppendSegment(nil, SegmentMeta{Count: 2}, []int{1}, nil); err == nil {
		t.Fatal("width/count mismatch accepted")
	}
	if _, err := AppendSegment(nil, SegmentMeta{FirstIndex: -1}, nil, nil); err == nil {
		t.Fatal("negative meta accepted")
	}
	if _, err := AppendSegment(nil, SegmentMeta{Count: 1}, []int{maxComponents + 1}, nil); err == nil {
		t.Fatal("absurd width accepted")
	}
}

// TestNextSharedMatchesNext decodes one stream through both entry points and
// requires identical reconstructions, in both wire formats.
func TestNextSharedMatchesNext(t *testing.T) {
	tr, stamps := sampleComputation(t)
	for _, format := range []string{"full", "delta"} {
		t.Run(format, func(t *testing.T) {
			var buf bytes.Buffer
			var err error
			if format == "full" {
				err = WriteAll(&buf, tr, stamps)
			} else {
				err = WriteAllDelta(&buf, tr, stamps)
			}
			if err != nil {
				t.Fatal(err)
			}
			data := buf.Bytes()
			a, err := NewReader(bytes.NewReader(data))
			if err != nil {
				t.Fatal(err)
			}
			b, err := NewReader(bytes.NewReader(data))
			if err != nil {
				t.Fatal(err)
			}
			for {
				ea, va, erra := a.Next()
				eb, vb, errb := b.NextShared()
				if (erra == nil) != (errb == nil) {
					t.Fatalf("error divergence: %v vs %v", erra, errb)
				}
				if erra != nil {
					if erra != io.EOF || errb != io.EOF {
						t.Fatalf("errors: %v vs %v", erra, errb)
					}
					return
				}
				if ea != eb || !va.Equal(vb) {
					t.Fatalf("record divergence: %+v %v vs %+v %v", ea, va, eb, vb)
				}
			}
		})
	}
}

// TestAppendDeltaByteIdenticalToAppend pins the canonicalization contract:
// feeding the writer raw change captures produces byte-for-byte the same
// stream as feeding it the materialized vectors, whichever backend produced
// the captures (their emission order differs).
func TestAppendDeltaByteIdenticalToAppend(t *testing.T) {
	tr, stamps := sampleComputation(t)
	for _, backend := range []vclock.Backend{vclock.BackendFlat, vclock.BackendTree} {
		t.Run(backend.String(), func(t *testing.T) {
			var fromVectors bytes.Buffer
			if err := WriteAllDelta(&fromVectors, tr, stamps); err != nil {
				t.Fatal(err)
			}
			mc := core.AnalyzeTrace(tr).NewClockBackend(backend)
			var fromCaptures bytes.Buffer
			w := NewDeltaWriter(&fromCaptures)
			var scratch []vclock.Delta
			for i := 0; i < tr.Len(); i++ {
				scratch, _ = mc.TimestampDelta(tr.At(i), scratch[:0])
				if err := w.AppendDelta(tr.At(i), scratch); err != nil {
					t.Fatal(err)
				}
			}
			if err := mc.Err(); err != nil {
				t.Fatal(err)
			}
			if err := w.Flush(); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(fromVectors.Bytes(), fromCaptures.Bytes()) {
				t.Fatalf("capture path wrote %d bytes differing from vector path's %d",
					fromCaptures.Len(), fromVectors.Len())
			}
		})
	}
}
