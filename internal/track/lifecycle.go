// Segment lifecycle management. Sealing (stream.go) turns the merged tail
// into immutable delta-encoded segments; this file manages those segments
// for the rest of their lives:
//
//   - Tiered compaction rewrites runs of adjacent small segments into
//     larger ones (tlog.MergeSegments), so a tracker that seals frequently
//     — aligned intervals, wall-time flushes — does not drown its spill
//     directory in tiny files, and re-reading sealed history stays one
//     header and one sync point per thread instead of hundreds. Compaction
//     moves records between containers without changing a single one:
//     replay, Snapshot, SnapshotTo bytes and lazy stamps are all invariant
//     under it.
//   - The catalog is the read-only view external log shippers poll: which
//     segments exist, their epochs, index ranges, sizes, spill files and
//     content hashes, plus the tracker's health. With a spill directory it
//     is also published as catalog.json (atomic rename) after every seal
//     and compaction, so shippers never touch the tracker at all.
//
// Locking: segments are immutable and their list is append-only outside
// the compaction gate, so compaction does all its I/O — reading the run,
// writing the merged container — with no lock held, and the swap itself is
// the atomic publication of a new segState snapshot (swapHist): no world
// barrier, so commits never notice a compaction at all. Spill files are
// removed only after the swapped-in catalog generation stops listing them,
// and the removal goes through the epoch-based reclaimer (epoch.go): a
// pinned reader — an in-flight commit or sealed replay — holds the
// deletion in limbo until it passes. A Stream caught on a file whose
// retirement predates its pin retries against the fresh list (stream.go).
package track

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"path/filepath"
	"time"

	"mixedclock/internal/tlog"
	"mixedclock/internal/vfs"
)

// CompactPolicy is the tiered-compaction knob set (see
// tlog.PlanSegmentCompaction for the planning rules):
//
//   - MaxSegments is how many sealed segments the tracker tolerates. The
//     automatic pass (WithCompaction) runs after a seal pushes the count
//     above it; an explicit CompactSegments with MaxSegments > 0 plans
//     nothing while the count is at or below it, and with MaxSegments <= 0
//     compacts unconditionally.
//   - TargetBytes is the tier ceiling: a segment at or above it has
//     graduated and is left alone, and a merged group never exceeds it.
//     Zero (or negative) merges each epoch's run into one segment.
//
// Compaction is best-effort: runs never cross an epoch boundary, so the
// floor is one segment per epoch, and a small TargetBytes can leave more
// than MaxSegments standing until later seals grow the tiers.
type CompactPolicy struct {
	MaxSegments int
	TargetBytes int64
}

// WithCompaction arms automatic tiered compaction: after every successful
// seal (explicit, automatic, or at Compact) whose result exceeds
// p.MaxSegments segments, a compaction pass rewrites small adjacent
// segments per the policy. The zero policy (MaxSegments == 0) never runs
// automatically. Sugar for WithStore with only the Compact field set.
//
// Deprecated: new code should configure storage through WithStore;
// WithCompaction remains for compatibility.
func WithCompaction(p CompactPolicy) Option {
	return func(o *options) { o.store.Compact = p }
}

// maybeCompactSegments runs the armed compaction policy if the sealed
// segment count has outgrown it, reporting whether a pass ran (and thus
// already published the catalog).
func (t *Tracker) maybeCompactSegments() bool {
	p := t.compact
	if p.MaxSegments <= 0 {
		return false
	}
	if len(t.hist.Load().segs) <= p.MaxSegments {
		return false
	}
	eliminated, err := t.CompactSegments(p)
	if err != nil {
		t.noteErr(fmt.Errorf("track: auto compaction: %w", err))
		return false
	}
	return eliminated > 0
}

// CompactSegments runs one tiered-compaction pass over the sealed history
// under the given policy and reports how many segments the pass eliminated
// (zero when nothing qualified, or when another pass already holds the
// gate). Merging happens outside every lock — segments are immutable — and
// the rewritten entries are swapped in under one short barrier; replaced
// spill files are deleted only after the new catalog generation is
// published, and readers caught on a deleted file retry against the merged
// replacement. Replay is byte-for-byte invariant: SnapshotTo emits
// identical output before and after.
func (t *Tracker) CompactSegments(p CompactPolicy) (eliminated int, err error) {
	if t.closed.Load() {
		return 0, fmt.Errorf("track: CompactSegments on a closed Tracker")
	}
	if !t.compactGate.CompareAndSwap(false, true) {
		return 0, nil
	}
	defer t.compactGate.Store(false)

	snap := t.hist.Load().segs
	stats := make([]tlog.SegmentStat, len(snap))
	for i, sg := range snap {
		stats[i] = tlog.SegmentStat{Meta: sg.meta, Bytes: sg.size}
	}
	plan := tlog.PlanSegmentCompaction(stats, p.MaxSegments, p.TargetBytes)
	if len(plan) == 0 {
		return 0, nil
	}

	// Merge each planned run with no lock held. On any failure, unwind the
	// merged files written so far: the tracker still points at the originals.
	merged := make([]*segment, len(plan))
	for gi, g := range plan {
		sg, err := t.mergeRun(snap[g[0]:g[1]])
		if err != nil {
			for _, m := range merged[:gi] {
				if m != nil && m.file != "" {
					t.fs.Remove(m.path())
				}
			}
			return 0, fmt.Errorf("track: compacting segments: %w", err)
		}
		merged[gi] = sg
	}

	// Swap with no barrier: publish a new immutable snapshot derived from
	// the current one. The gate is ours, so the list can only have grown at
	// the tail since the snapshot (seals append); the planned prefix is
	// unchanged. Commits never see the swap at all.
	t.swapHist(func(old *segState) *segState {
		newSegs := make([]*segment, 0, len(old.segs)-len(plan))
		prev := 0
		for gi, g := range plan {
			newSegs = append(newSegs, old.segs[prev:g[0]]...)
			newSegs = append(newSegs, merged[gi])
			prev = g[1]
		}
		newSegs = append(newSegs, old.segs[prev:]...)
		return &segState{segs: newSegs, retained: old.retained, gen: old.gen + 1}
	})

	// Publish the generation that stops listing the old files, then retire
	// them through the reclaimer: the files are deleted once no pinned
	// reader (an in-flight commit or sealed replay) can still be holding
	// the superseded list — immediately, when the tracker is quiescent.
	t.publishCatalog()
	for _, g := range plan {
		for _, sg := range snap[g[0]:g[1]] {
			if sg.file != "" {
				old := sg
				t.reclaim.retire(func() { t.fs.Remove(old.path()) })
			}
			eliminated++
		}
	}
	t.compactPasses.Add(1)
	t.compactedSegs.Add(int64(eliminated - len(plan)))
	return eliminated - len(plan), nil
}

// mergeRun rewrites one gapless single-epoch run of segments as a single
// segment, spilled next to its sources when the tracker spills.
func (t *Tracker) mergeRun(run []*segment) (*segment, error) {
	srcs := make([]io.Reader, len(run))
	for i, sg := range run {
		rc, err := sg.open()
		if err != nil {
			return nil, err
		}
		defer rc.Close()
		srcs[i] = rc
	}
	var buf bytes.Buffer
	meta, err := tlog.MergeSegments(&buf, srcs...)
	if err != nil {
		return nil, err
	}
	data := buf.Bytes()
	sum := sha256.Sum256(data)
	out := &segment{meta: meta, size: int64(len(data)), sha: hex.EncodeToString(sum[:])}
	// The merged segment inherits the newest source's seal time: retention's
	// MaxAge is about how stale the newest contained event may be.
	for _, sg := range run {
		if sg.sealedAt.After(out.sealedAt) {
			out.sealedAt = sg.sealedAt
		}
	}
	if t.spill.Dir == "" {
		out.data = data
		return out, nil
	}
	// Write-then-rename (with an fsync) so a crash mid-compaction never
	// leaves a spill file that parses as a truncated segment.
	out.dir, out.file, out.fs = t.spill.Dir, tlog.SegmentFileName(meta), t.fs
	if err := writeFileSync(t.fs, out.dir, out.file, data); err != nil {
		return nil, err
	}
	return out, nil
}

// Catalog returns the read-only segment catalog: sealed history segment by
// segment (epoch, index range, size, spill path relative to the spill
// directory, content hash) plus the tracker's health — Err's text and
// whether auto-sealing is currently disarmed by a spill failure. The
// generation changes exactly when the segment list does. With a spill
// directory, the same document is kept on disk as catalog.json (rewritten
// by atomic rename after every seal and compaction), which is what external
// log shippers should poll instead of calling into the tracker.
func (t *Tracker) Catalog() tlog.Catalog {
	// The segment list, floor and generation come from one immutable
	// snapshot; the resume manifest and seal point are read under a shard
	// read lock, which excludes the seal barrier (the only writer of both),
	// so the two reads are mutually consistent.
	t.world.RLock(0)
	st := t.hist.Load()
	sealedEnd := t.tailStart
	resume := t.resume
	t.world.RUnlock(0)
	gen := st.gen
	retained := st.retained
	segs := make([]tlog.CatalogSegment, len(st.segs))
	for i, sg := range st.segs {
		var sealedUnix int64
		if !sg.sealedAt.IsZero() {
			sealedUnix = sg.sealedAt.Unix()
		}
		segs[i] = tlog.CatalogSegment{
			Epoch:      sg.meta.Epoch,
			FirstIndex: sg.meta.FirstIndex,
			Events:     sg.meta.Count,
			Bytes:      sg.size,
			Path:       sg.file,
			SHA256:     sg.sha,
			SealedUnix: sealedUnix,
		}
	}
	c := tlog.Catalog{
		FormatVersion:    tlog.CatalogFormatVersion,
		Generation:       gen,
		SealedEvents:     sealedEnd,
		RetainedEvents:   retained,
		AutoSealDisarmed: t.sealBroken.Load(),
		Closed:           t.closed.Load(),
		Segments:         segs,
		Resume:           resume,
	}
	if ns := t.degradedSince.Load(); ns != 0 {
		c.DegradedSinceUnix = ns / int64(time.Second)
	}
	if err := t.Err(); err != nil {
		c.Health = err.Error()
	}
	return c
}

// publishCatalog rewrites catalog.json in the spill directory (atomic
// rename; no-op without one). Failures surface through Err — the catalog is
// advisory for shippers, never load-bearing for the tracker itself.
func (t *Tracker) publishCatalog() {
	if t.spill.Dir == "" {
		return
	}
	t.catMu.Lock()
	defer t.catMu.Unlock()
	c := t.Catalog()
	if err := writeCatalogFile(t.fs, t.spill.Dir, &c); err != nil {
		t.noteErr(fmt.Errorf("track: publishing catalog: %w", err))
	}
}

// CatalogFileName is the catalog's file name inside a spill directory.
const CatalogFileName = tlog.CatalogFileName

// writeCatalogFile publishes one catalog generation (temp file, fsync,
// rename), retrying transient failures as one whole cycle like every other
// durable write.
func writeCatalogFile(fsys vfs.FS, dir string, c *tlog.Catalog) error {
	return retryTransient(func() error { return writeCatalogFileOnce(fsys, dir, c) })
}

func writeCatalogFileOnce(fsys vfs.FS, dir string, c *tlog.Catalog) error {
	if err := fsys.MkdirAll(dir); err != nil {
		return err
	}
	tmp, err := fsys.CreateTemp(dir, ".catalog-*.tmp")
	if err != nil {
		return err
	}
	if err := tlog.EncodeCatalog(tmp, c); err != nil {
		tmp.Close()
		fsys.Remove(tmp.Name())
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		fsys.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		fsys.Remove(tmp.Name())
		return err
	}
	// Keep the outgoing generation as catalog.json.prev before the rename
	// replaces it: the rename is atomic against our own crashes, but a
	// power cut can still tear it at the filesystem level, and recovery
	// then falls back to the prev copy. Best effort — a missing or stale
	// prev only degrades the fallback, never the catalog itself.
	cur := filepath.Join(dir, CatalogFileName)
	if data, rerr := vfs.ReadFile(fsys, cur); rerr == nil {
		_ = vfs.WriteFile(fsys, filepath.Join(dir, tlog.CatalogPrevFileName), data)
	}
	return fsys.Rename(tmp.Name(), cur)
}
