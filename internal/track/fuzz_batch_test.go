package track

import (
	"fmt"
	"testing"

	"mixedclock/internal/event"
)

// fuzzOp is one decoded fuzz operation plus its schedule marks.
type fuzzOp struct {
	thread  int
	object  int
	op      event.Op
	cut     bool // batch boundary after this operation
	compact bool // epoch compaction after this operation (implies cut)
}

// decodeBatchSchedule turns arbitrary bytes into an op sequence with
// arbitrary batch boundaries: each byte is one operation (thread, object,
// read/write) plus a boundary bit and a rare compaction mark. Bounded so a
// large fuzz input stays a fast test.
func decodeBatchSchedule(data []byte) []fuzzOp {
	const maxOps = 256
	if len(data) > maxOps {
		data = data[:maxOps]
	}
	ops := make([]fuzzOp, len(data))
	for i, b := range data {
		ops[i] = fuzzOp{
			thread:  int(b >> 5 & 0x3),
			object:  int(b >> 2 & 0x7 % 3),
			op:      event.Op(b & 1),
			cut:     b&0x10 != 0,
			compact: b == 0xFF,
		}
	}
	return ops
}

// FuzzBatchCommit is the batching equivalence property under fuzzing:
// an arbitrary operation sequence split at arbitrary batch boundaries
// (including mid-object runs, single-op batches, and epoch compactions
// between batches) must replay (event, epoch, stamp)-identically to the
// plain per-event Do loop.
func FuzzBatchCommit(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x00})
	f.Add([]byte{0x21, 0x21, 0x21, 0x31, 0x45, 0x45})             // runs + a cut
	f.Add([]byte{0x00, 0x20, 0x40, 0x60, 0x00, 0x20, 0x40})       // round-robin threads
	f.Add([]byte{0x05, 0x05, 0xFF, 0x05, 0x05})                   // compaction mid-stream
	f.Add([]byte{0x11, 0x12, 0x13, 0x14, 0x15, 0x16, 0x17})       // every op its own batch
	f.Add([]byte{0x81, 0x85, 0x89, 0x8d, 0xa1, 0xa5, 0xFF, 0x81}) // reads, mixed objects

	f.Fuzz(func(t *testing.T, data []byte) {
		sched := decodeBatchSchedule(data)

		// Reference: the per-event Do loop.
		ref := NewTracker()
		refThreads := make(map[int]*Thread)
		refObjects := make(map[int]*Object)
		var want []Stamped
		for _, fo := range sched {
			th, ok := refThreads[fo.thread]
			if !ok {
				th = ref.NewThread(fmt.Sprintf("t%d", fo.thread))
				refThreads[fo.thread] = th
			}
			o, ok := refObjects[fo.object]
			if !ok {
				o = ref.NewObject(fmt.Sprintf("o%d", fo.object))
				refObjects[fo.object] = o
			}
			want = append(want, th.Do(o, fo.op, nil))
			if fo.compact {
				if _, _, err := ref.Compact(); err != nil {
					t.Fatal(err)
				}
			}
		}

		// Batched: same schedule, cut into batches at the fuzzed boundaries
		// (and forcibly at thread changes — a Batch belongs to one thread).
		tr := NewTracker()
		threads := make(map[int]*Thread)
		objects := make(map[int]*Object)
		var got []Stamped
		var b *Batch
		bThread := -1
		flush := func() {
			if b != nil && b.Len() > 0 {
				got = append(got, b.Commit()...)
			}
		}
		for _, fo := range sched {
			if fo.thread != bThread {
				flush()
				th, ok := threads[fo.thread]
				if !ok {
					th = tr.NewThread(fmt.Sprintf("t%d", fo.thread))
					threads[fo.thread] = th
				}
				b = th.NewBatch()
				bThread = fo.thread
			}
			o, ok := objects[fo.object]
			if !ok {
				o = tr.NewObject(fmt.Sprintf("o%d", fo.object))
				objects[fo.object] = o
			}
			b.Add(o, fo.op)
			if fo.cut || fo.compact {
				flush()
			}
			if fo.compact {
				if _, _, err := tr.Compact(); err != nil {
					t.Fatal(err)
				}
			}
		}
		flush()

		if len(got) != len(want) {
			t.Fatalf("batched replay produced %d stamps, want %d", len(got), len(want))
		}
		for i := range want {
			if got[i].Event != want[i].Event {
				t.Fatalf("event %d: batched %+v, Do %+v", i, got[i].Event, want[i].Event)
			}
			if got[i].Epoch != want[i].Epoch {
				t.Fatalf("event %d: batched epoch %d, Do epoch %d", i, got[i].Epoch, want[i].Epoch)
			}
			if gv, wv := got[i].Vector(), want[i].Vector(); !gv.Equal(wv) {
				t.Fatalf("event %d: batched stamp %v, Do stamp %v", i, gv, wv)
			}
		}
		if err := tr.Err(); err != nil {
			t.Fatal(err)
		}
	})
}
