package treeclock

import (
	"fmt"
	"math/rand"
	"testing"

	"mixedclock/internal/vclock"
)

// checkInvariants verifies the structural invariants the join prunings rely
// on: link consistency, every nonzero component reachable exactly once from
// the roots, attachment times bounded by the parent's clock, and sibling
// lists ordered by attachment time, most recent first.
func checkInvariants(tc *TreeClock) error {
	if len(tc.clks) != len(tc.nodes) {
		return fmt.Errorf("width mismatch: %d clks, %d nodes", len(tc.clks), len(tc.nodes))
	}
	seen := make(map[int32]bool)
	var walk func(u int32) error
	walk = func(u int32) error {
		if seen[u] {
			return fmt.Errorf("component %d reached twice", u)
		}
		seen[u] = true
		if tc.clks[u] == 0 {
			return fmt.Errorf("component %d in forest with zero clock", u)
		}
		var prevSib = none
		var prevAclk uint64
		for v := tc.nodes[u].head; v != none; v = tc.nodes[v].next {
			n := tc.nodes[v]
			if n.parent != u {
				return fmt.Errorf("component %d in child list of %d but parent is %d", v, u, n.parent)
			}
			if n.prev != prevSib {
				return fmt.Errorf("component %d has prev %d, want %d", v, n.prev, prevSib)
			}
			if n.aclk > tc.clks[u] {
				return fmt.Errorf("component %d attached to %d at time %d > parent clock %d",
					v, u, n.aclk, tc.clks[u])
			}
			if prevSib != none && n.aclk > prevAclk {
				return fmt.Errorf("children of %d not ordered by attachment time: %d after %d",
					u, n.aclk, prevAclk)
			}
			prevSib, prevAclk = v, n.aclk
			if err := walk(v); err != nil {
				return err
			}
		}
		return nil
	}
	for _, r := range tc.roots {
		if tc.nodes[r].parent != none {
			return fmt.Errorf("root %d has parent %d", r, tc.nodes[r].parent)
		}
		if err := walk(r); err != nil {
			return err
		}
	}
	for i, x := range tc.clks {
		if (x > 0) != seen[int32(i)] {
			return fmt.Errorf("component %d: clock %d but reachable=%v", i, x, seen[int32(i)])
		}
	}
	return nil
}

func requireFlat(t *testing.T, tc *TreeClock, want vclock.Vector, msg string) {
	t.Helper()
	got := tc.Flatten()
	if !got.Equal(want) {
		t.Fatalf("%s: flatten %v, want %v", msg, got, want)
	}
	if err := checkInvariants(tc); err != nil {
		t.Fatalf("%s: %v", msg, err)
	}
}

func TestTickAndFlatten(t *testing.T) {
	tc := New(0)
	requireFlat(t, tc, nil, "empty")
	tc.Tick(2)
	requireFlat(t, tc, vclock.Vector{0, 0, 1}, "tick 2")
	tc.Tick(2)
	tc.Tick(0)
	requireFlat(t, tc, vclock.Vector{1, 0, 2}, "tick 2, 0")
	if tc.At(1) != 0 || tc.At(2) != 2 || tc.At(99) != 0 {
		t.Fatalf("At values wrong: %v", tc.Flatten())
	}
	if tc.Width() != 3 {
		t.Fatalf("Width = %d, want 3", tc.Width())
	}
}

func TestJoinBasic(t *testing.T) {
	a, b := New(0), New(0)
	a.Tick(0)
	a.Tick(1)
	b.Tick(2)
	b.Tick(2)
	a.Join(b)
	requireFlat(t, a, vclock.Vector{1, 1, 2}, "a after join")
	requireFlat(t, b, vclock.Vector{0, 0, 2}, "b untouched by join")
	// Joining a dominated clock changes nothing.
	b.Join(New(5))
	requireFlat(t, b, vclock.Vector{0, 0, 2, 0, 0}, "b after joining empty")
	// Self-join is a no-op.
	a.Join(a)
	requireFlat(t, a, vclock.Vector{1, 1, 2}, "self join")
}

func TestCloneIndependence(t *testing.T) {
	a := New(0)
	a.Tick(0)
	a.Tick(3)
	c := a.Clone().(*TreeClock)
	c.Tick(1)
	a.Tick(0)
	requireFlat(t, a, vclock.Vector{2, 0, 0, 1}, "original")
	requireFlat(t, c, vclock.Vector{1, 1, 0, 1}, "clone")
}

func TestFromVectorRoundTrip(t *testing.T) {
	for _, v := range []vclock.Vector{nil, {}, {0, 0, 3}, {1, 2, 3, 0, 5}, {7}} {
		tc := FromVector(v)
		if err := checkInvariants(tc); err != nil {
			t.Fatalf("FromVector(%v): %v", v, err)
		}
		if got := tc.Flatten(); !got.Equal(v) {
			t.Fatalf("FromVector(%v).Flatten() = %v", v, got)
		}
		// The rebuilt clock must stay usable.
		tc.Tick(1)
		want := v.Clone().Tick(1)
		requireFlat(t, tc, want, fmt.Sprintf("tick after FromVector(%v)", v))
	}
}

func TestCompareMatchesFlat(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	vecs := make([]vclock.Vector, 40)
	for i := range vecs {
		v := make(vclock.Vector, rng.Intn(6))
		for j := range v {
			v[j] = uint64(rng.Intn(4))
		}
		vecs[i] = v
	}
	for _, v := range vecs {
		for _, w := range vecs {
			want := v.Compare(w)
			tv, tw := FromVector(v), FromVector(w)
			if got := tv.Compare(tw); got != want {
				t.Fatalf("tree %v vs tree %v: %v, want %v", v, w, got, want)
			}
			if got := tv.Compare(vclock.FlatOf(w)); got != want {
				t.Fatalf("tree %v vs flat %v: %v, want %v", v, w, got, want)
			}
			if got := vclock.FlatOf(v).Compare(tw); got != want {
				t.Fatalf("flat %v vs tree %v: %v, want %v", v, w, got, want)
			}
			if tv.Less(tw) != (want == vclock.Before) || tv.Concurrent(tw) != (want == vclock.Concurrent) {
				t.Fatalf("Less/Concurrent disagree with Compare for %v vs %v", v, w)
			}
		}
	}
}

// TestMixedClockDiscipline is the differential core: it drives flat and tree
// twins through the exact per-event sequence internal/core's MixedClock
// uses — thread joins object, covered endpoints tick, object re-joins the
// event clock — over random traces and random covers, asserting the two
// representations flatten identically after every event and that the tree
// invariants never break.
func TestMixedClockDiscipline(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		rng := rand.New(rand.NewSource(seed))
		nThreads := 2 + rng.Intn(6)
		nObjects := 2 + rng.Intn(6)
		events := 200

		// Random component assignment: comp index per thread/object, -1
		// when not in the cover. Not necessarily a real vertex cover —
		// uncovered events simply tick nothing, which both backends must
		// agree on too.
		threadComp := make([]int, nThreads)
		objectComp := make([]int, nObjects)
		next := 0
		for i := range threadComp {
			threadComp[i] = -1
			if rng.Intn(3) > 0 {
				threadComp[i] = next
				next++
			}
		}
		for i := range objectComp {
			objectComp[i] = -1
			if rng.Intn(3) > 0 {
				objectComp[i] = next
				next++
			}
		}

		flatT := make([]*vclock.Flat, nThreads)
		flatO := make([]*vclock.Flat, nObjects)
		treeT := make([]*TreeClock, nThreads)
		treeO := make([]*TreeClock, nObjects)
		for i := range flatT {
			flatT[i], treeT[i] = vclock.NewFlat(0), New(0)
		}
		for i := range flatO {
			flatO[i], treeO[i] = vclock.NewFlat(0), New(0)
		}

		for ev := 0; ev < events; ev++ {
			tid := rng.Intn(nThreads)
			oid := rng.Intn(nObjects)
			step := func(tv, ov vclock.Clock) vclock.Vector {
				tv.Join(ov)
				if c := objectComp[oid]; c >= 0 {
					tv.Tick(c)
				}
				if c := threadComp[tid]; c >= 0 {
					tv.Tick(c)
				}
				tv.Grow(next)
				ov.Join(tv)
				return tv.Flatten()
			}
			fs := step(flatT[tid], flatO[oid])
			ts := step(treeT[tid], treeO[oid])
			if !fs.Equal(ts) {
				t.Fatalf("seed %d event %d (T%d,O%d): flat %v, tree %v", seed, ev, tid, oid, fs, ts)
			}
			if err := checkInvariants(treeT[tid]); err != nil {
				t.Fatalf("seed %d event %d: thread tree: %v", seed, ev, err)
			}
			if err := checkInvariants(treeO[oid]); err != nil {
				t.Fatalf("seed %d event %d: object tree: %v", seed, ev, err)
			}
			if !treeO[oid].Flatten().Equal(flatO[oid].Flatten()) {
				t.Fatalf("seed %d event %d: object clocks diverge", seed, ev)
			}
		}
	}
}

// TestCrossBackendJoin drives the same discipline with deliberately mixed
// representations (tree threads talking to flat objects and vice versa),
// exercising the generic interface paths that skip structural pruning.
func TestCrossBackendJoin(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		rng := rand.New(rand.NewSource(100 + seed))
		const nThreads, nObjects, events = 4, 4, 150

		// Every thread and object is a component, ticks tied to the event's
		// endpoints as in MixedClock, so the serialized-tick discipline the
		// tree backend requires still holds.
		ref := make([]*vclock.Flat, nThreads+nObjects)
		mix := make([]vclock.Clock, nThreads+nObjects)
		for i := range ref {
			ref[i] = vclock.NewFlat(0)
			if rng.Intn(2) == 0 {
				mix[i] = New(0)
			} else {
				mix[i] = vclock.NewFlat(0)
			}
		}
		for ev := 0; ev < events; ev++ {
			tid := rng.Intn(nThreads)
			oid := nThreads + rng.Intn(nObjects)
			step := func(tv, ov vclock.Clock) vclock.Vector {
				tv.Join(ov)
				tv.Tick(oid)
				tv.Tick(tid)
				ov.Join(tv)
				return tv.Flatten()
			}
			fs := step(ref[tid], ref[oid])
			ms := step(mix[tid], mix[oid])
			if !fs.Equal(ms) {
				t.Fatalf("seed %d event %d: flat %v, mixed %v", seed, ev, fs, ms)
			}
			for _, c := range []vclock.Clock{mix[tid], mix[oid]} {
				if tc, ok := c.(*TreeClock); ok {
					if err := checkInvariants(tc); err != nil {
						t.Fatalf("seed %d event %d: %v", seed, ev, err)
					}
				}
			}
		}
	}
}

func TestAppendBinaryMatchesFlat(t *testing.T) {
	v := vclock.Vector{3, 0, 1, 0, 0}
	tc := FromVector(v)
	if got, want := tc.AppendBinary(nil), v.AppendBinary(nil); string(got) != string(want) {
		t.Fatalf("tree encoding %x, flat %x", got, want)
	}
}

// TestJoinDeepChain drives the iterative mark walk through a forest that is
// one path tens of thousands of nodes deep — the shape a long ping-pong
// causal chain produces. The recursive walk this replaced would have needed
// one call frame per node; the explicit stack must handle it and produce
// the exact componentwise maximum.
func TestJoinDeepChain(t *testing.T) {
	const depth = 100_000
	src := New(depth)
	// Ticking 0, 1, ..., depth-1 re-roots the forest at each step, so the
	// final shape is the path depth-1 → depth-2 → ... → 0. A second tick
	// per component raises every value to 2 without changing the shape.
	for i := 0; i < depth; i++ {
		src.Tick(i)
		src.Tick(i)
	}
	dst := New(0)
	dst.Tick(0) // at 1 < src's 2: must be detached from the roots and re-homed
	dst.Join(src)
	if err := checkInvariants(dst); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < depth; i++ {
		if got := dst.At(i); got != 2 {
			t.Fatalf("component %d = %d, want 2", i, got)
		}
	}
	// A second join is fully dominated: the root-level prune must keep the
	// walk from marking anything.
	dst.Join(src)
	if len(dst.marks) != 0 {
		t.Fatalf("dominated join still marked %d nodes", len(dst.marks))
	}
	if err := checkInvariants(dst); err != nil {
		t.Fatal(err)
	}
}

// TestMarkPreorderSiblingOrder regression-tests the property the iterative
// walk must preserve from the recursive one: after a join copies several
// siblings, the receiver's sibling lists remain ordered by attachment time,
// most recent first (checkInvariants asserts exactly that), across a shape
// with wide fan-out at several levels.
func TestMarkPreorderSiblingOrder(t *testing.T) {
	src := New(0)
	// Build a two-level fan: components 1..8 tick then attach under 0 via
	// 0's ticks; each join re-roots, so interleave to create siblings.
	for i := 1; i <= 8; i++ {
		leaf := New(0)
		leaf.Tick(i)
		src.Join(leaf)
		src.Tick(0) // re-root under 0: i becomes 0's most recent child
	}
	dst := New(0)
	dst.Join(src)
	if err := checkInvariants(dst); err != nil {
		t.Fatal(err)
	}
	if !dst.Flatten().Equal(src.Flatten()) {
		t.Fatalf("flatten mismatch: %v vs %v", dst.Flatten(), src.Flatten())
	}
}
