package main

import (
	"bytes"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"mixedclock/internal/event"
	"mixedclock/internal/tlog"
	"mixedclock/internal/track"
	"mixedclock/internal/vclock"
)

func writeTempTrace(t *testing.T) (string, *event.Trace) {
	t.Helper()
	tr := event.NewTrace()
	tr.Append(0, 0, event.OpWrite)
	tr.Append(1, 0, event.OpRead)
	tr.Append(1, 1, event.OpWrite)
	tr.Append(2, 2, event.OpWrite)
	tr.Append(0, 1, event.OpWrite)

	path := filepath.Join(t.TempDir(), "trace.jsonl")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := tr.WriteJSONL(f); err != nil {
		t.Fatal(err)
	}
	return path, tr
}

func TestLoadTrace(t *testing.T) {
	path, tr := writeTempTrace(t)
	got, err := loadTrace(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != tr.Len() {
		t.Fatalf("loaded %d events, want %d", got.Len(), tr.Len())
	}
	if _, err := loadTrace(filepath.Join(t.TempDir(), "missing.jsonl")); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestLoadTraceRejectsEmpty(t *testing.T) {
	path := filepath.Join(t.TempDir(), "empty.jsonl")
	if err := os.WriteFile(path, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := loadTrace(path); err == nil {
		t.Fatal("empty trace accepted")
	}
}

func TestAnalyzeOutput(t *testing.T) {
	_, tr := writeTempTrace(t)
	var buf bytes.Buffer
	if err := analyze(&buf, tr); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"minimum vertex cover", "mixed (optimal)", "thread-based", "savings"} {
		if !strings.Contains(out, want) {
			t.Errorf("analyze output missing %q:\n%s", want, out)
		}
	}
}

func TestTimestampOutput(t *testing.T) {
	_, tr := writeTempTrace(t)
	var buf bytes.Buffer
	if err := timestamp(&buf, tr, 2, vclock.BackendFlat); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "components:") || !strings.Contains(out, "more; use -n 0") {
		t.Errorf("timestamp output:\n%s", out)
	}
	buf.Reset()
	if err := timestamp(&buf, tr, 0, vclock.BackendTree); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "more;") {
		t.Error("-n 0 should print everything")
	}
}

func TestOrderOutput(t *testing.T) {
	_, tr := writeTempTrace(t)
	var buf bytes.Buffer
	if err := order(&buf, tr, 0, 1, vclock.BackendFlat); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "happened before") {
		t.Errorf("order output: %s", buf.String())
	}
	buf.Reset()
	if err := order(&buf, tr, 0, 3, vclock.BackendTree); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "concurrent") {
		t.Errorf("order output: %s", buf.String())
	}
	if err := order(&buf, tr, -1, 0, vclock.BackendFlat); err == nil {
		t.Error("bad indices accepted")
	}
	if err := order(&buf, tr, 0, 99, vclock.BackendFlat); err == nil {
		t.Error("out-of-range index accepted")
	}
}

func TestDetectOutput(t *testing.T) {
	_, tr := writeTempTrace(t)
	var buf bytes.Buffer
	if err := detectCmd(&buf, tr, vclock.BackendFlat); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "census:") {
		t.Errorf("detect output: %s", buf.String())
	}
}

func TestRecoverOutput(t *testing.T) {
	_, tr := writeTempTrace(t)
	var buf bytes.Buffer
	if err := recover_(&buf, tr, 0, vclock.BackendFlat); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "recovery line") {
		t.Errorf("recover output: %s", buf.String())
	}
	if err := recover_(&buf, tr, -1, vclock.BackendFlat); err == nil {
		t.Error("missing -fail accepted")
	}
}

func TestValidateOutput(t *testing.T) {
	_, tr := writeTempTrace(t)
	var buf bytes.Buffer
	if err := validate(&buf, tr, vclock.BackendFlat); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, scheme := range []string{"mixed/offline", "thread-based", "object-based", "chain"} {
		if !strings.Contains(out, scheme) {
			t.Errorf("validate output missing %q", scheme)
		}
	}
	if !strings.Contains(out, "all schemes valid") {
		t.Errorf("validate output: %s", out)
	}
}

func TestGraphOutput(t *testing.T) {
	_, tr := writeTempTrace(t)
	var buf bytes.Buffer
	if err := graph(&buf, tr); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "graph threadobject") {
		t.Errorf("graph output: %s", buf.String())
	}
}

func TestExportInspectRoundTrip(t *testing.T) {
	_, tr := writeTempTrace(t)
	logPath := filepath.Join(t.TempDir(), "t.mvclog")
	var buf bytes.Buffer
	if err := export(&buf, tr, logPath, vclock.BackendFlat, "full"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "wrote 5 timestamped events") {
		t.Errorf("export output: %s", buf.String())
	}
	buf.Reset()
	if err := inspect(&buf, logPath, 0); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "validated 5 events") {
		t.Errorf("inspect output: %s", buf.String())
	}

	if err := export(&buf, tr, "", vclock.BackendFlat, "full"); err == nil {
		t.Error("export without -out accepted")
	}
	if err := inspect(&buf, "", 0); err == nil {
		t.Error("inspect without -log accepted")
	}
}

func TestExportDeltaInspectRoundTrip(t *testing.T) {
	_, tr := writeTempTrace(t)
	dir := t.TempDir()
	fullPath := filepath.Join(dir, "full.mvclog")
	deltaPath := filepath.Join(dir, "delta.mvclog")
	var buf bytes.Buffer
	if err := export(&buf, tr, fullPath, vclock.BackendFlat, "full"); err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if err := export(&buf, tr, deltaPath, vclock.BackendAuto, "delta"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "delta format") {
		t.Errorf("export output: %s", buf.String())
	}
	// inspect auto-detects the format; both logs validate and print the
	// same stamps.
	var fullOut, deltaOut bytes.Buffer
	if err := inspect(&fullOut, fullPath, 0); err != nil {
		t.Fatal(err)
	}
	if err := inspect(&deltaOut, deltaPath, 0); err != nil {
		t.Fatal(err)
	}
	if fullOut.String() != deltaOut.String() {
		t.Errorf("formats decode differently:\nfull:\n%s\ndelta:\n%s", fullOut.String(), deltaOut.String())
	}
	if err := export(&buf, tr, deltaPath, vclock.BackendFlat, "cbor"); err == nil {
		t.Error("unknown format accepted")
	}
}

// liveTrace builds a trace long enough to force several seals at -seal 20.
func liveTrace(t *testing.T) *event.Trace {
	t.Helper()
	tr := event.NewTrace()
	for i := 0; i < 120; i++ {
		tr.Append(event.ThreadID(i%3), event.ObjectID((i*5)%4), event.Op(i%2))
	}
	return tr
}

func TestExportLiveAndSegments(t *testing.T) {
	tr := liveTrace(t)
	dir := t.TempDir()
	spill := filepath.Join(dir, "spill")
	logPath := filepath.Join(dir, "live.mvclog")
	var buf bytes.Buffer
	if err := exportLive(&buf, tr, logPath, vclock.BackendFlat, "delta", spill, 20, 0); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "live pipeline") || !strings.Contains(out, "sealed") {
		t.Errorf("export -live output: %s", out)
	}
	// The live log must inspect and validate like any other log.
	buf.Reset()
	if err := inspect(&buf, logPath, 0); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "validated 120 events") {
		t.Errorf("inspect of live log: %s", buf.String())
	}

	// The spill directory holds the sealed prefix (plus the catalog, which
	// the directory expansion must skip); segments must list it...
	entries, err := os.ReadDir(spill)
	if err != nil || len(entries) < 3 {
		t.Fatalf("spill dir: %d entries, err=%v", len(entries), err)
	}
	files := []string{spill} // a directory stands for its *.mvcseg files
	buf.Reset()
	if err := segmentsCmd(&buf, files, "", 2); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "segments,") || !strings.Contains(buf.String(), "epoch 0, events [0,") {
		t.Errorf("segments listing: %s", buf.String())
	}
	// ...and merge it into a log whose records match the live export's
	// sealed prefix.
	merged := filepath.Join(dir, "merged.mvclog")
	buf.Reset()
	if err := segmentsCmd(&buf, files, merged, 0); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "merged") {
		t.Errorf("segments merge output: %s", buf.String())
	}
	mf, err := os.Open(merged)
	if err != nil {
		t.Fatal(err)
	}
	defer mf.Close()
	mTr, mStamps, err := tlog.ReadAll(mf)
	if err != nil {
		t.Fatal(err)
	}
	lf, err := os.Open(logPath)
	if err != nil {
		t.Fatal(err)
	}
	defer lf.Close()
	lTr, lStamps, err := tlog.ReadAll(lf)
	if err != nil {
		t.Fatal(err)
	}
	if mTr.Len() == 0 || mTr.Len() > lTr.Len() {
		t.Fatalf("merged %d events, live log has %d", mTr.Len(), lTr.Len())
	}
	for i := 0; i < mTr.Len(); i++ {
		if mTr.At(i) != lTr.At(i) || !mStamps[i].Equal(lStamps[i]) {
			t.Fatalf("merged record %d diverges from live log", i)
		}
	}

	if err := segmentsCmd(&buf, nil, "", 0); err == nil {
		t.Error("segments without files accepted")
	}

	// A partial spill set (missing prefix) must warn: the merged log
	// renumbers events, and silence would misrepresent the history.
	segFiles, err := expandSegmentArgs([]string{spill})
	if err != nil || len(segFiles) < 2 {
		t.Fatalf("expandSegmentArgs: %v (%d files)", err, len(segFiles))
	}
	buf.Reset()
	if err := segmentsCmd(&buf, segFiles[len(segFiles)-1:], "", 0); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "warning: gap") {
		t.Errorf("missing-prefix merge did not warn:\n%s", buf.String())
	}
}

func TestExportLiveFullFormat(t *testing.T) {
	tr := liveTrace(t)
	dir := t.TempDir()
	logPath := filepath.Join(dir, "live-full.mvclog")
	var buf bytes.Buffer
	if err := exportLive(&buf, tr, logPath, vclock.BackendTree, "full", "", 25, 0); err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if err := inspect(&buf, logPath, 0); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "validated 120 events") {
		t.Errorf("inspect of full live log: %s", buf.String())
	}
	if err := exportLive(&buf, tr, "", vclock.BackendFlat, "delta", "", 0, 0); err == nil {
		t.Error("export -live without -out accepted")
	}
	if err := exportLive(&buf, tr, logPath, vclock.BackendFlat, "cbor", "", 0, 0); err == nil {
		t.Error("export -live with unknown format accepted")
	}
}

// TestExportLiveBatched: -batch N routes the replay through the batched
// commit path; the exported log must be byte-identical to the per-event
// replay — batching amortizes synchronization, it never changes a stamp.
func TestExportLiveBatched(t *testing.T) {
	tr := liveTrace(t)
	dir := t.TempDir()
	var buf bytes.Buffer
	perEvent := filepath.Join(dir, "per-event.mvclog")
	if err := exportLive(&buf, tr, perEvent, vclock.BackendFlat, "delta", "", 20, 0); err != nil {
		t.Fatal(err)
	}
	for _, batch := range []int{1, 7, 64} {
		batched := filepath.Join(dir, fmt.Sprintf("batched-%d.mvclog", batch))
		if err := exportLive(&buf, tr, batched, vclock.BackendFlat, "delta", "", 20, batch); err != nil {
			t.Fatal(err)
		}
		want, err := os.ReadFile(perEvent)
		if err != nil {
			t.Fatal(err)
		}
		got, err := os.ReadFile(batched)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("-batch %d export differs from per-event export", batch)
		}
	}
}

func TestInspectTruncatedLog(t *testing.T) {
	_, tr := writeTempTrace(t)
	dir := t.TempDir()
	logPath := filepath.Join(dir, "t.mvclog")
	var buf bytes.Buffer
	if err := export(&buf, tr, logPath, vclock.BackendFlat, "full"); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(logPath)
	if err != nil {
		t.Fatal(err)
	}
	cutPath := filepath.Join(dir, "cut.mvclog")
	if err := os.WriteFile(cutPath, data[:len(data)-3], 0o644); err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if err := inspect(&buf, cutPath, 0); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "log truncated") {
		t.Errorf("inspect output: %s", buf.String())
	}
}

// TestCatalogAndCompact drives the lifecycle tooling end to end: a live
// export with aggressive sealing leaves a swarm of tiny spill files plus a
// catalog; mvc catalog prints and verifies it; mvc compact collapses the
// files (replay unchanged) and rewrites the catalog, which must verify
// again.
func TestCatalogAndCompact(t *testing.T) {
	tr := liveTrace(t)
	dir := t.TempDir()
	spill := filepath.Join(dir, "spill")
	logPath := filepath.Join(dir, "live.mvclog")
	var buf bytes.Buffer
	if err := exportLive(&buf, tr, logPath, vclock.BackendFlat, "delta", spill, 4, 0); err != nil {
		t.Fatal(err)
	}
	segFiles, err := expandSegmentArgs([]string{spill})
	if err != nil || len(segFiles) < 10 {
		t.Fatalf("setup produced %d spill files (err=%v)", len(segFiles), err)
	}

	buf.Reset()
	if err := catalogCmd(&buf, []string{spill}, true); err != nil {
		t.Fatalf("catalog -verify: %v\n%s", err, buf.String())
	}
	out := buf.String()
	if !strings.Contains(out, "catalog generation") || !strings.Contains(out, "verified") {
		t.Errorf("catalog output: %s", out)
	}

	buf.Reset()
	if err := compactCmd(&buf, []string{spill}, 0, 0); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "compacted") {
		t.Errorf("compact output: %s", buf.String())
	}
	after, err := expandSegmentArgs([]string{spill})
	if err != nil {
		t.Fatal(err)
	}
	if len(after) >= len(segFiles) || len(after) != 1 {
		t.Fatalf("compaction left %d files (from %d), want 1", len(after), len(segFiles))
	}

	// The rewritten catalog verifies against the merged files.
	buf.Reset()
	if err := catalogCmd(&buf, []string{spill}, true); err != nil {
		t.Fatalf("catalog -verify after compact: %v\n%s", err, buf.String())
	}

	// Replay equivalence: the merged spill set still reproduces the sealed
	// prefix of the live log, record for record.
	merged := filepath.Join(dir, "merged.mvclog")
	buf.Reset()
	if err := segmentsCmd(&buf, []string{spill}, merged, 0); err != nil {
		t.Fatal(err)
	}
	mf, err := os.Open(merged)
	if err != nil {
		t.Fatal(err)
	}
	defer mf.Close()
	mTr, mStamps, err := tlog.ReadAll(mf)
	if err != nil {
		t.Fatal(err)
	}
	lf, err := os.Open(logPath)
	if err != nil {
		t.Fatal(err)
	}
	defer lf.Close()
	lTr, lStamps, err := tlog.ReadAll(lf)
	if err != nil {
		t.Fatal(err)
	}
	if mTr.Len() == 0 || mTr.Len() > lTr.Len() {
		t.Fatalf("merged %d events, live log has %d", mTr.Len(), lTr.Len())
	}
	for i := 0; i < mTr.Len(); i++ {
		if mTr.At(i) != lTr.At(i) || !mStamps[i].Equal(lStamps[i]) {
			t.Fatalf("merged record %d diverges from live log", i)
		}
	}

	// A second pass finds nothing to do.
	buf.Reset()
	if err := compactCmd(&buf, []string{spill}, 0, 0); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "nothing to compact") {
		t.Errorf("idempotent compact output: %s", buf.String())
	}
}

// TestRecoverDirCommand reopens a crashed spill directory through the
// durable-run recovery path and checks the report, then verifies the
// catalog together with a shipper cursor.
func TestRecoverDirCommand(t *testing.T) {
	dir := t.TempDir()
	spill := filepath.Join(dir, "run")
	tr, err := track.Open(spill)
	if err != nil {
		t.Fatal(err)
	}
	th, ob := tr.NewThread("t0"), tr.NewObject("o0")
	for i := 0; i < 12; i++ {
		th.Write(ob, nil)
	}
	if err := tr.Seal(); err != nil {
		t.Fatal(err)
	}
	sealed := tr.Events()
	th.Write(ob, nil) // unsealed suffix a crash loses
	// Simulated crash: the tracker is abandoned without Close.

	var buf bytes.Buffer
	quarantined, err := recoverDir(&buf, spill)
	if err != nil {
		t.Fatalf("recoverDir: %v\n%s", err, buf.String())
	}
	if quarantined != 0 {
		t.Errorf("clean crash recovery quarantined %d files:\n%s", quarantined, buf.String())
	}
	out := buf.String()
	for _, want := range []string{
		fmt.Sprintf("resumes at index %d", sealed),
		"crash (no Close marker",
		"1 threads, 1 objects",
		"health: ok",
		"closed cleanly",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("recover -dir output missing %q:\n%s", want, out)
		}
	}

	// Ship the run, then catalog -verify must report the cursor as healthy.
	mirror := filepath.Join(dir, "mirror")
	sh := &track.Shipper{Src: spill, Dst: mirror}
	if _, err := sh.ConsumeUpTo(0); err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if err := catalogCmd(&buf, []string{spill}, true); err != nil {
		t.Fatalf("catalog -verify: %v\n%s", err, buf.String())
	}
	if !strings.Contains(buf.String(), "shipper cursor: generation") {
		t.Errorf("catalog -verify missing cursor report:\n%s", buf.String())
	}
	if !strings.Contains(buf.String(), "run closed cleanly") {
		t.Errorf("catalog -verify missing Closed marker:\n%s", buf.String())
	}

	// A cursor ahead of the catalog fails verification.
	var cbuf bytes.Buffer
	if err := tlog.EncodeShipCursor(&cbuf, &tlog.ShipCursor{
		FormatVersion: tlog.ShipCursorFormatVersion,
		Generation:    1 << 40,
		ShippedEvents: sealed,
	}); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(spill, tlog.ShipCursorFileName), cbuf.Bytes(), 0o666); err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if err := catalogCmd(&buf, []string{spill}, true); err == nil {
		t.Errorf("catalog -verify accepted a cursor ahead of the catalog:\n%s", buf.String())
	}

	// recoverDir on a directory that was never a run.
	if _, err := recoverDir(&buf, filepath.Join(dir, "mirror")); err != nil {
		t.Errorf("recover -dir on a shipped mirror: %v", err)
	}
}

// TestRecoverDirQuarantined plants an orphan spill file in a crashed run and
// checks recoverDir reports it and returns a non-zero quarantine count — the
// signal main turns into exitQuarantined.
func TestRecoverDirQuarantined(t *testing.T) {
	spill := t.TempDir()
	tr, err := track.Open(spill)
	if err != nil {
		t.Fatal(err)
	}
	th, ob := tr.NewThread("t0"), tr.NewObject("o0")
	for i := 0; i < 4; i++ {
		th.Write(ob, nil)
	}
	if err := tr.Seal(); err != nil {
		t.Fatal(err)
	}
	// Simulated crash (no Close), plus an orphan segment file no catalog
	// generation ever listed — recovery must set it aside, not adopt it.
	if err := os.WriteFile(filepath.Join(spill, "zzz-orphan.mvcseg"), []byte("garbage"), 0o666); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	quarantined, err := recoverDir(&buf, spill)
	if err != nil {
		t.Fatalf("recoverDir: %v\n%s", err, buf.String())
	}
	if quarantined == 0 {
		t.Errorf("orphan segment not counted as quarantined:\n%s", buf.String())
	}
	if !strings.Contains(buf.String(), "quarantined:") {
		t.Errorf("quarantine list missing from the report:\n%s", buf.String())
	}
}

// TestDetectLiveOutput seeds an order violation into a real durable run and
// checks detect -live reports it with epoch and trace-index provenance,
// plus the streaming census summary.
func TestDetectLiveOutput(t *testing.T) {
	spill := t.TempDir()
	tk, err := track.Open(spill, track.WithStore(track.Store{
		Spill: track.SpillPolicy{SealEvents: 2},
	}))
	if err != nil {
		t.Fatal(err)
	}
	guard := tk.NewObject("guard")
	data := tk.NewObject("data")
	a := tk.NewThread("a")
	b := tk.NewThread("b")
	a.Write(guard, nil)
	b.Write(data, nil) // concurrent with the guard write: violation
	b.Read(guard, nil) // causal edge a -> b
	b.Write(data, nil) // ordered: clean
	if err := tk.Close(); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := detectLive(&buf, spill, false, 0, "guard,data"); err != nil {
		t.Fatalf("detectLive: %v\n%s", err, buf.String())
	}
	out := buf.String()
	if !strings.Contains(out, "order: [guard,data]") {
		t.Errorf("missing order detection:\n%s", out)
	}
	if !strings.Contains(out, "(epoch 0, index 1) concurrent with") ||
		!strings.Contains(out, "(epoch 0, index 0)") {
		t.Errorf("missing provenance:\n%s", out)
	}
	if !strings.Contains(out, "consumed 4 sealed events") {
		t.Errorf("missing consumption summary:\n%s", out)
	}
	if !strings.Contains(out, "run closed") || !strings.Contains(out, "census:") {
		t.Errorf("missing closed marker or census:\n%s", out)
	}

	// Bad -order specs fail loudly.
	if err := detectLive(io.Discard, spill, false, 0, "guard"); err == nil {
		t.Error("malformed -order accepted")
	}
	if err := detectLive(io.Discard, spill, false, 0, "guard,nosuch"); err == nil {
		t.Error("-order with an unknown object accepted")
	}
}
