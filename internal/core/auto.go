package core

import (
	"mixedclock/internal/bipartite"
	"mixedclock/internal/vclock"
)

// Backend auto-selection. BenchmarkBackends (the flat-vs-tree head-to-head
// over four workload shapes) shows the representations win in different
// regimes:
//
//   - flat wins narrow clocks outright — O(k) with tiny constants beats tree
//     bookkeeping until k is in the low hundreds — and keeps winning at any
//     width when single joins touch most components (the wide-fanin shape:
//     a collector sweeping every producer's mailbox);
//   - tree wins wide clocks whose joins have causal locality (deep-join
//     ~1.3×, read-heavy ~1.6× at 256 components), because its cost scales
//     with the components a join actually changes.
//
// ChooseBackend encodes those crossovers so callers can say
// WithBackend(Auto) / -backend=auto and get the right representation for the
// observed computation.

const (
	// AutoTreeWidth is the component-set width at which the tree backend
	// starts winning on causally local joins. BenchmarkBackends brackets
	// the crossover between the narrow seeded-hotset (~29 components,
	// flat wins) and the 256-component shapes (tree wins); 128 splits the
	// gap conservatively.
	AutoTreeWidth = 128
	// AutoFanInDivisor guards against the wide-fanin regime: when the
	// widest single join can touch more than width/AutoFanInDivisor
	// components there is no locality for the tree to exploit, and the
	// flat scan's constants win even at large widths (the wide-fanin
	// shape has fan-in ≈ width; deep-join and read-heavy have fan-in of
	// a few).
	AutoFanInDivisor = 4
)

// ChooseBackend picks a concrete clock representation from the observed
// component-set width and join shape. maxFanIn is the width of the widest
// single join expected — the maximum vertex degree of the thread–object
// graph is a sound static proxy (a thread of degree d can have absorbed at
// most d objects' histories since its last event on any one of them). Pass
// 0 when unknown; the width threshold alone then decides.
func ChooseBackend(width, maxFanIn int) vclock.Backend {
	if width >= AutoTreeWidth && maxFanIn*AutoFanInDivisor <= width {
		return vclock.BackendTree
	}
	return vclock.BackendFlat
}

// ResolveBackend resolves BackendAuto against observed state; concrete
// backends pass through unchanged.
func ResolveBackend(b vclock.Backend, width, maxFanIn int) vclock.Backend {
	if b != vclock.BackendAuto {
		return b
	}
	return ChooseBackend(width, maxFanIn)
}

// MaxFanIn returns the maximum vertex degree of g over both sides — the
// join-shape statistic ChooseBackend consumes.
func MaxFanIn(g *bipartite.Graph) int {
	max := 0
	for t := 0; t < g.NThreads(); t++ {
		if d := g.ThreadDegree(t); d > max {
			max = d
		}
	}
	for o := 0; o < g.NObjects(); o++ {
		if d := g.ObjectDegree(o); d > max {
			max = d
		}
	}
	return max
}
