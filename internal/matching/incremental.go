package matching

// Incremental maintains a maximum matching of a thread–object bipartite
// graph whose edges arrive one at a time, as they do on a live tracker:
// every commit reveals at most one new (thread, object) edge. By
// König–Egerváry the matching size is also the minimum-vertex-cover size,
// so Size is a live lower bound on the optimal mixed-clock width — the
// monitor compares it against the tracker's actual component count to
// report how far the online mechanism has drifted from optimal.
//
// Inserting a single edge grows the maximum matching by at most one, and
// when it grows there is an augmenting path through the new edge, so each
// AddEdge runs at most one augmentation sweep from the currently unmatched
// threads (O(U·E) worst case, O(E) typical). Both sides grow on demand;
// vertex IDs are dense, as produced by the tracker's registries.
type Incremental struct {
	adj     [][]int // adj[t] = objects adjacent to thread t
	match   *Matching
	edges   int
	present map[[2]int]struct{}
}

// NewIncremental returns an empty incremental matcher.
func NewIncremental() *Incremental {
	return &Incremental{
		match:   newMatching(0, 0),
		present: make(map[[2]int]struct{}),
	}
}

// grow extends both sides to cover thread t and object o.
func (inc *Incremental) grow(t, o int) {
	for len(inc.adj) <= t {
		inc.adj = append(inc.adj, nil)
		inc.match.ThreadMatch = append(inc.match.ThreadMatch, unmatched)
	}
	for len(inc.match.ObjectMatch) <= o {
		inc.match.ObjectMatch = append(inc.match.ObjectMatch, unmatched)
	}
}

// AddEdge records that thread t accessed object o and restores matching
// maximality. It reports whether the matching grew. Duplicate edges and
// negative IDs are ignored.
func (inc *Incremental) AddEdge(t, o int) bool {
	if t < 0 || o < 0 {
		return false
	}
	if _, ok := inc.present[[2]int{t, o}]; ok {
		return false
	}
	inc.present[[2]int{t, o}] = struct{}{}
	inc.grow(t, o)
	inc.adj[t] = append(inc.adj[t], o)
	inc.edges++

	// A new edge admits at most one augmenting path, and any such path
	// ends at an unmatched thread; try the edge's own thread first since
	// the path most often starts there.
	if inc.match.ThreadMatch[t] == unmatched && inc.try(t) {
		inc.match.size++
		return true
	}
	for u := range inc.adj {
		if u != t && inc.match.ThreadMatch[u] == unmatched && inc.try(u) {
			inc.match.size++
			return true
		}
	}
	return false
}

// try runs one Kuhn augmentation sweep from thread t.
func (inc *Incremental) try(t int) bool {
	visited := make([]bool, len(inc.match.ObjectMatch))
	var dfs func(t int) bool
	dfs = func(t int) bool {
		for _, o := range inc.adj[t] {
			if visited[o] {
				continue
			}
			visited[o] = true
			if inc.match.ObjectMatch[o] == unmatched || dfs(inc.match.ObjectMatch[o]) {
				inc.match.ThreadMatch[t] = o
				inc.match.ObjectMatch[o] = t
				return true
			}
		}
		return false
	}
	return dfs(t)
}

// Size returns the current maximum-matching size, which by König–Egerváry
// equals the minimum vertex cover of the revealed graph — a lower bound on
// any mixed clock's width for the edges seen so far.
func (inc *Incremental) Size() int { return inc.match.size }

// Edges returns the number of distinct edges revealed so far.
func (inc *Incremental) Edges() int { return inc.edges }

// Matching exposes the current matching. The returned value is live; it
// must not be mutated and is invalidated by the next AddEdge.
func (inc *Incremental) Matching() *Matching { return inc.match }
