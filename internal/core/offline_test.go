package core

import (
	"math/rand"
	"testing"

	"mixedclock/internal/bipartite"
	"mixedclock/internal/clock"
)

func TestAnalyzePaperExample(t *testing.T) {
	a := AnalyzeTrace(paperTrace())
	if err := a.Verify(); err != nil {
		t.Fatalf("Verify: %v", err)
	}
	if got := a.VectorSize(); got != 3 {
		t.Fatalf("optimal size = %d, want 3 (paper's {T2, O2, O3})", got)
	}
	// The paper's cover {T2, O2, O3} is one of several minimum covers; ours
	// must have the same size and cover every edge, which Verify checked.
	if min := 4; a.VectorSize() >= min {
		t.Fatalf("mixed clock size %d not below min(threads, objects) = %d", a.VectorSize(), min)
	}
	if got := a.Savings(); got != 1 {
		t.Errorf("Savings = %d, want 1 (4 active threads/objects vs size 3)", got)
	}
}

func TestAnalyzeEmptyGraph(t *testing.T) {
	a := Analyze(bipartite.New(0, 0))
	if err := a.Verify(); err != nil {
		t.Fatal(err)
	}
	if a.VectorSize() != 0 {
		t.Fatalf("empty graph needs %d components", a.VectorSize())
	}
}

func TestAnalyzeOptimalityBruteForce(t *testing.T) {
	// Exhaustively verify minimality: for random small graphs, no strictly
	// smaller vertex cover may exist. This is Theorem 3 checked against a
	// 2^(n+m) oracle.
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 40; trial++ {
		nT, nO := 1+rng.Intn(5), 1+rng.Intn(5)
		g, err := bipartite.Generate(bipartite.GenConfig{
			NThreads: nT, NObjects: nO, Density: rng.Float64(),
		}, rng)
		if err != nil {
			t.Fatal(err)
		}
		a := Analyze(g)
		if err := a.Verify(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if best := bruteForceMinCover(g); a.VectorSize() != best {
			t.Fatalf("trial %d: offline found %d, brute force %d on %v",
				trial, a.VectorSize(), best, g.EdgeList())
		}
	}
}

// bruteForceMinCover enumerates all vertex subsets (threads ∪ objects) and
// returns the smallest cover size. Exponential; only for tiny graphs.
func bruteForceMinCover(g *bipartite.Graph) int {
	n, m := g.NThreads(), g.NObjects()
	edges := g.EdgeList()
	best := n + m
	for mask := 0; mask < 1<<(n+m); mask++ {
		covered := true
		for _, e := range edges {
			if mask&(1<<e.Thread) == 0 && mask&(1<<(n+e.Object)) == 0 {
				covered = false
				break
			}
		}
		if !covered {
			continue
		}
		size := 0
		for b := mask; b != 0; b &= b - 1 {
			size++
		}
		if size < best {
			best = size
		}
	}
	return best
}

func TestAnalysisNewClockTimestampsOwnComputation(t *testing.T) {
	tr := paperTrace()
	a := AnalyzeTrace(tr)
	mc := a.NewClock()
	if _, err := clock.RunAndValidate(tr, mc); err != nil {
		t.Fatalf("offline clock invalid on its own computation: %v", err)
	}
	if mc.Err() != nil {
		t.Fatalf("unexpected uncovered event: %v", mc.Err())
	}
	if mc.Events() != tr.Len() {
		t.Fatalf("Events = %d, want %d", mc.Events(), tr.Len())
	}
}

func TestSavingsNeverNegative(t *testing.T) {
	// Optimality guarantees the mixed clock is never larger than the
	// smaller classical clock over active vertices.
	rng := rand.New(rand.NewSource(37))
	for trial := 0; trial < 50; trial++ {
		g, err := bipartite.Generate(bipartite.GenConfig{
			NThreads: 1 + rng.Intn(30),
			NObjects: 1 + rng.Intn(30),
			Density:  rng.Float64(),
			Scenario: bipartite.Scenario(1 + rng.Intn(2)),
		}, rng)
		if err != nil {
			t.Fatal(err)
		}
		if s := Analyze(g).Savings(); s < 0 {
			t.Fatalf("trial %d: negative savings %d", trial, s)
		}
	}
}
