// Live figure reproduction: the same §V sweeps as figures.go, but measured
// by driving a real track.Tracker — threads, objects, per-event commits,
// the concurrent cover path — instead of core.SimulateCover's offline
// replay. The numbers are identical by construction (the tracker's cover
// consults the mechanism once per uncovered new edge, in reveal order,
// exactly as SimulateCover does; live_test.go pins the equivalence), so a
// figure regenerated live is a regression test of the whole modern
// pipeline, not just of the algorithm.
//
// BackendWidthSweep goes beyond the paper: an end-to-end throughput sweep
// (backend × read ratio × do-vs-batch over a thread-count axis) on the
// loadgen engine, reported in mops/sec — the "extra" figure cmd/figures
// emits next to the paper's four.
package experiment

import (
	"fmt"
	"math/rand"

	"mixedclock/internal/bipartite"
	"mixedclock/internal/core"
	"mixedclock/internal/event"
	"mixedclock/internal/loadgen"
	"mixedclock/internal/track"
	"mixedclock/internal/vclock"
)

// liveCoverSize replays one reveal order through a live tracker built on
// the given mechanism and backend, one committed write per edge, and
// returns the final mixed-clock width.
func liveCoverSize(order []bipartite.Edge, m core.Mechanism, b vclock.Backend) int {
	t := track.NewTracker(track.WithMechanism(m), track.WithBackend(b))
	maxT, maxO := -1, -1
	for _, e := range order {
		if e.Thread > maxT {
			maxT = e.Thread
		}
		if e.Object > maxO {
			maxO = e.Object
		}
	}
	threads := make([]*track.Thread, maxT+1)
	for i := range threads {
		threads[i] = t.NewThread(fmt.Sprintf("t%d", i))
	}
	objects := make([]*track.Object, maxO+1)
	for i := range objects {
		objects[i] = t.NewObject(fmt.Sprintf("o%d", i))
	}
	for _, e := range order {
		threads[e.Thread].Do(objects[e.Object], event.OpWrite, nil)
	}
	return t.Size()
}

// liveSizes is the live-pipeline sizer: same series, same rng consumption
// order as onlineSizes (one Random draw per uncovered new edge, evaluated
// naive-active → random → popularity), but each size measured on a real
// tracker.
func liveSizes(backend vclock.Backend) sizer {
	return func(order []bipartite.Edge, nThreads int, rng *rand.Rand) map[string]int {
		return map[string]int{
			seriesNaive:       nThreads,
			seriesNaiveActive: liveCoverSize(order, core.NaiveThreads{}, backend),
			seriesRandom:      liveCoverSize(order, core.Random{Rng: rng}, backend),
			seriesPopularity:  liveCoverSize(order, core.Popularity{}, backend),
		}
	}
}

// Fig4Live reproduces Fig. 4 through the live tracker pipeline on the given
// clock backend. Identical numbers to Fig4 (pinned by test); what it
// additionally proves is that the tracker's concurrent cover path realizes
// the paper's mechanisms exactly.
func Fig4Live(opt Options, backend vclock.Backend) (uniform, nonuniform *Result, err error) {
	return fig4(opt, liveSizes(backend))
}

// Fig5Live reproduces Fig. 5 through the live tracker pipeline.
func Fig5Live(opt Options, backend vclock.Backend) (uniform, nonuniform *Result, err error) {
	return fig5(opt, liveSizes(backend))
}

// Fig6Live reproduces Fig. 6 through the live tracker pipeline (the offline
// optimum series is computed offline in both variants — it has no online
// realization to drive).
func Fig6Live(opt Options, backend vclock.Backend) (*Result, error) {
	return fig6(opt, liveSizes(backend))
}

// Fig7Live reproduces Fig. 7 through the live tracker pipeline.
func Fig7Live(opt Options, backend vclock.Backend) (*Result, error) {
	return fig7(opt, liveSizes(backend))
}

// sweepThreads is the x-axis of BackendWidthSweep and sweepOps the measured
// ops per worker per trial — fixed-op deterministic runs, so the sweep is
// reproducible and trials average real repeated measurements.
var sweepThreads = []int{1, 2, 4, 8}

const sweepOps = 20_000

// BackendWidthSweep measures end-to-end tracker throughput in mops/sec
// across backend (flat, tree) × read fraction (0.5, 0.95) × commit style
// (per-op Do vs batch-16) over a worker-count axis, using the loadgen
// engine in deterministic ops mode. This is the "extra" sweep cmd/figures
// emits beyond the paper's §V: the paper compares clock widths, this
// compares what the widths buy at full speed.
func BackendWidthSweep(opt Options) (*Result, error) {
	opt = opt.withDefaults()
	type combo struct {
		backend  string
		batch    int
		readfrac float64
	}
	var combos []combo
	for _, b := range []string{"flat", "tree"} {
		for _, batch := range []int{1, 16} {
			for _, rf := range []float64{0.5, 0.95} {
				combos = append(combos, combo{b, batch, rf})
			}
		}
	}
	r := &Result{
		Title:  fmt.Sprintf("Extra — tracker throughput: backend × readfrac × do/batch vs workers (%d ops/worker, %d trials)", sweepOps, opt.Trials),
		XLabel: "workers",
		YLabel: "mops/sec",
	}
	r.Series = make([]Series, len(combos))
	for i, c := range combos {
		style := "do"
		if c.batch > 1 {
			style = fmt.Sprintf("batch%d", c.batch)
		}
		r.Series[i] = Series{
			Name:   fmt.Sprintf("%s/%s r%.2f", c.backend, style, c.readfrac),
			Values: make([]float64, len(sweepThreads)),
		}
	}
	for pi, nw := range sweepThreads {
		r.X = append(r.X, float64(nw))
		for si, c := range combos {
			var sum float64
			for trial := 0; trial < opt.Trials; trial++ {
				rep, err := loadgen.Run(loadgen.Config{
					Threads:  nw,
					Objects:  64,
					ReadFrac: c.readfrac,
					Ops:      sweepOps,
					Warmup:   1000,
					Batch:    c.batch,
					Dist:     "uniform",
					Backend:  c.backend,
					Seed:     opt.Seed + int64(pi)*1_000_003 + int64(trial)*7_919,
				})
				if err != nil {
					return nil, fmt.Errorf("experiment: width sweep %s x=%d trial %d: %w",
						r.Series[si].Name, nw, trial, err)
				}
				sum += rep.Mops
			}
			r.Series[si].Values[pi] = sum / float64(opt.Trials)
		}
	}
	return r, nil
}
