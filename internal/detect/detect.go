// Package detect implements the debugging applications the paper's
// introduction motivates: given a timestamped computation, it measures how
// much genuine concurrency exists (the census) and flags schedule-sensitive
// pairs — conflicting critical sections on the same object whose only
// ordering is the object's lock itself, so a different scheduling could flip
// their order. Those pairs are where atomicity bugs and nondeterministic
// behaviour hide in lock-based programs.
package detect

import (
	"fmt"

	"mixedclock/internal/event"
	"mixedclock/internal/hb"
	"mixedclock/internal/vclock"
)

// Census summarizes the pairwise ordering structure of a computation,
// computed purely from timestamps.
type Census struct {
	Events     int
	Total      int // unordered event pairs
	Ordered    int // pairs with a happened-before relation
	Concurrent int // incomparable pairs
}

// Parallelism is the fraction of pairs that are concurrent; 0 for
// computations with fewer than two events.
func (c Census) Parallelism() float64 {
	if c.Total == 0 {
		return 0
	}
	return float64(c.Concurrent) / float64(c.Total)
}

// String renders a one-line summary.
func (c Census) String() string {
	return fmt.Sprintf("%d events, %d/%d pairs concurrent (%.1f%% parallelism)",
		c.Events, c.Concurrent, c.Total, 100*c.Parallelism())
}

// TakeCensus compares all timestamp pairs. With a valid clock this equals
// the ground-truth concurrency structure — that is exactly Theorem 2 put to
// work: no graph reachability needed, only vector comparisons.
func TakeCensus(stamps []vclock.Vector) Census {
	c := Census{Events: len(stamps)}
	for i := range stamps {
		for j := i + 1; j < len(stamps); j++ {
			c.Total++
			if stamps[i].Concurrent(stamps[j]) {
				c.Concurrent++
			} else {
				c.Ordered++
			}
		}
	}
	return c
}

// Pair is a flagged pair of operations, First preceding Second in the
// object's lock order.
type Pair struct {
	First  event.Event
	Second event.Event
}

// String renders like "[T1, O2] <lock-only> [T3, O2]".
func (p Pair) String() string {
	return fmt.Sprintf("%v <lock-only> %v", p.First, p.Second)
}

// ScheduleSensitivePairs returns conflicting (at least one write), adjacent
// operations on the same object by different threads whose only
// happened-before path is the object's own lock handoff: removing the direct
// object edge would leave them concurrent. The order of such pairs is a
// scheduling accident; if the program's correctness depends on it, that is
// an atomicity bug.
//
// The check uses the ground-truth oracle (O(E²/64) construction): for the
// object-adjacent pair (e, f), any alternative path e → f must leave e
// through its thread successor, so the pair is lock-only iff that successor
// is absent, equal to f is impossible (f is on another thread), or does not
// reach f.
func ScheduleSensitivePairs(tr *event.Trace) []Pair {
	oracle := hb.New(tr)
	var out []Pair
	for i := 0; i < tr.Len(); i++ {
		j := oracle.ObjectSuccessor(i)
		if j < 0 {
			continue
		}
		e, f := tr.At(i), tr.At(j)
		if e.Thread == f.Thread {
			continue // program order already fixes them
		}
		if e.Op == event.OpRead && f.Op == event.OpRead {
			continue // reads commute; order is irrelevant
		}
		// Alternative path from e to f avoiding the direct object edge must
		// start at e's thread successor.
		ts := oracle.ThreadSuccessor(i)
		if ts >= 0 && (ts == j || oracle.HappenedBefore(ts, j)) {
			continue // independently ordered; the lock is not load-bearing
		}
		out = append(out, Pair{First: e, Second: f})
	}
	return out
}

// ConflictMatrix counts, for every pair of threads, how many
// schedule-sensitive pairs link them. Row = first thread, column = second.
// Useful to localize which threads contend.
func ConflictMatrix(tr *event.Trace) [][]int {
	n := tr.Threads()
	m := make([][]int, n)
	for i := range m {
		m[i] = make([]int, n)
	}
	for _, p := range ScheduleSensitivePairs(tr) {
		m[p.First.Thread][p.Second.Thread]++
	}
	return m
}
