// Package track provides live causality tracking for real goroutines — the
// "multithreaded systems" substrate of the paper, with goroutines as threads
// and lock-protected shared objects as the paper's sequential objects.
//
// A Tracker owns the clock bookkeeping. Goroutines register as Threads,
// shared state registers as Objects, and every operation runs through
// Thread.Do, which enforces the per-object mutual exclusion the paper
// assumes, assigns the operation a mixed-vector-clock timestamp (growing the
// component set online via a configurable mechanism), and records the event.
// The recorded trace and timestamps can then be analyzed, validated, or
// replayed offline.
//
// # Concurrency model
//
// The hot path takes no global lock. The paper's update rule (§III-C) only
// ever touches the clocks of the event's own thread and object, so the
// tracker shards its state along exactly those lines:
//
//   - Thread-local: each Thread owns its clock and an append buffer of
//     recorded operations. Both are touched only by the goroutine driving
//     the Thread (a Thread must be used by one goroutine at a time), so
//     they need no lock at all.
//   - Object-striped: each Object carries a mutex — the paper's per-object
//     mutual exclusion — and, under it, the object's last-writer clock.
//     Thread.Do holds the object lock across the user's function and the
//     clock update, so joins against the object's clock read and write it
//     race-free and in the object's execution order. (Cross-thread
//     causality flows only through these per-object joins.)
//   - Read-mostly: component discovery goes through core.SharedCover, whose
//     fast path (edge already revealed — the steady state) takes only a
//     read lock. Only a genuinely new (thread, object) edge takes the write
//     lock and runs the component-choice mechanism.
//   - Global: a single atomic counter assigns each operation its dense
//     trace index. The counter is fetched while the object lock is held, so
//     index order refines both program order and object order — i.e. the
//     merged trace is a linearization of happened-before.
//
// Trace recording is deferred: operations accumulate in per-thread buffers
// and are merged (sorted by trace index) only when a snapshot is taken —
// Trace, Stamps, Snapshot — or at compaction. Those merge points, and
// Compact itself, are stop-the-world barriers: they take the write side of
// an RWMutex whose read side every commit holds, quiescing all in-flight
// clock updates. This is what preserves the epoch semantics of Compact
// (every event of epoch k commits before every event of epoch k+1) without
// a lock on the per-event path. The read lock covers only the commit, not
// the user's callback, so a callback may freely block, nest Do calls (on
// different objects, with the usual mutex lock-ordering discipline), or
// call any Tracker method — exactly as with the earlier global-mutex
// tracker. An operation whose callback straddles a compaction simply
// commits into the new epoch.
package track

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"mixedclock/internal/core"
	"mixedclock/internal/event"
	"mixedclock/internal/vclock"
)

// Stamped is one recorded operation with its timestamp. Epoch counts the
// compactions that preceded the operation (see Compact); comparisons
// between stamps honour it.
type Stamped struct {
	Event  event.Event
	Vector vclock.Vector
	Epoch  int
}

// HappenedBefore reports whether s's operation causally precedes t's,
// decided from the timestamps (Theorem 2) and, across epochs, the
// compaction barrier order.
func (s Stamped) HappenedBefore(t Stamped) bool { return s.Order(t) == vclock.Before }

// Concurrent reports whether the two operations are causally unrelated.
// Operations in different epochs are never concurrent: compaction is a
// barrier.
func (s Stamped) Concurrent(t Stamped) bool { return s.Order(t) == vclock.Concurrent }

// record is one committed operation waiting in a thread's append buffer.
type record struct {
	ev event.Event
	v  vclock.Vector
}

// Tracker coordinates causality tracking across goroutines. Create one per
// tracked computation with NewTracker; all methods are safe for concurrent
// use.
type Tracker struct {
	// world is the stop-the-world barrier: every Do holds it for reading
	// across its commit; snapshots and Compact hold it for writing, which
	// quiesces all in-flight operations.
	world sync.RWMutex

	// reg guards thread and object registration (the slices, not the
	// per-thread/per-object clock state).
	reg     sync.Mutex
	threads []*Thread
	objects []*Object

	// cover is the concurrent component-discovery path; replaced wholesale
	// at compaction (under the world barrier). The pointer itself is
	// atomic so read-only accessors (Size, Components) stay safe — and
	// deadlock-free even inside a Do callback — without the world lock.
	cover   atomic.Pointer[core.SharedCover]
	backend vclock.Backend

	// seq assigns each commit its dense global trace index; fetched while
	// the object lock is held so index order linearizes happened-before.
	seq atomic.Int64

	// Merged history and epoch bookkeeping, written only under the world
	// write lock. epoch is additionally read by commits under the read
	// lock; epochStart[i] is the trace index where epoch i+1 began.
	trace      *event.Trace
	stamps     []vclock.Vector
	epoch      int
	epochStart []int

	// firstErr keeps the first clock misuse across epochs.
	errMu    sync.Mutex
	firstErr error
}

// Option configures a Tracker.
type Option func(*options)

type options struct {
	mech    core.Mechanism
	backend vclock.Backend
}

// WithMechanism selects the online component-choice mechanism (default: the
// paper's recommended Hybrid — Popularity first, NaiveThreads once the
// revealed graph grows dense or large).
func WithMechanism(m core.Mechanism) Option {
	return func(o *options) { o.mech = m }
}

// WithBackend selects the clock representation (default: the flat vector).
// The tree backend trades slightly richer bookkeeping for joins that cost
// only as much as the components they change; timestamps are identical
// either way. The choice survives Compact.
func WithBackend(b vclock.Backend) Option {
	return func(o *options) { o.backend = b }
}

// NewTracker returns an empty tracker.
func NewTracker(opts ...Option) *Tracker {
	o := options{mech: core.NewHybrid(), backend: vclock.BackendFlat}
	for _, opt := range opts {
		opt(&o)
	}
	t := &Tracker{
		backend: o.backend,
		trace:   event.NewTrace(),
	}
	t.cover.Store(core.NewSharedCover(core.NewCoverTracker(o.mech)))
	return t
}

// Thread is a registered logical thread. A Thread must be used by one
// goroutine at a time (typically the goroutine that created it), mirroring
// the paper's sequential processes. The thread's clock and record buffer are
// owned by that goroutine; only the stop-the-world barrier touches them from
// outside.
type Thread struct {
	t    *Tracker
	id   event.ThreadID
	name string

	// clock is the thread's working clock, nil until the first operation
	// of an epoch. Owned by the driving goroutine (under the world read
	// lock); reset by Compact (under the world write lock).
	clock vclock.Clock
	// buf holds committed records not yet merged into the tracker's trace.
	buf []record
}

// ID returns the thread's dense identifier.
func (th *Thread) ID() event.ThreadID { return th.id }

// Name returns the label passed to NewThread.
func (th *Thread) Name() string { return th.name }

// Object is a registered shared object. Its embedded lock enforces the
// paper's assumption that operations on a single object are sequential, and
// protects the object's last-writer clock — the stripe through which all
// cross-thread causality flows.
type Object struct {
	mu   sync.Mutex
	t    *Tracker
	id   event.ObjectID
	name string

	// clock is the full clock of the object's latest operation, nil until
	// the first operation of an epoch. Protected by mu; reset by Compact
	// (under the world write lock, with no Do in flight).
	clock vclock.Clock
}

// ID returns the object's dense identifier.
func (o *Object) ID() event.ObjectID { return o.id }

// Name returns the label passed to NewObject.
func (o *Object) Name() string { return o.name }

// NewThread registers a new logical thread.
func (t *Tracker) NewThread(name string) *Thread {
	t.reg.Lock()
	defer t.reg.Unlock()
	th := &Thread{t: t, id: event.ThreadID(len(t.threads)), name: name}
	t.threads = append(t.threads, th)
	return th
}

// NewObject registers a new shared object.
func (t *Tracker) NewObject(name string) *Object {
	t.reg.Lock()
	defer t.reg.Unlock()
	o := &Object{t: t, id: event.ObjectID(len(t.objects)), name: name}
	t.objects = append(t.objects, o)
	return o
}

// Do performs fn as one operation by th on o: it locks o (sequentializing
// the object), runs fn, then timestamps and records the operation. The
// object lock is held across both fn and the clock update so the recorded
// object order matches the execution order.
//
// Nested Do calls on *different* objects are allowed (the inner operation is
// recorded first, as its own event); the usual lock-ordering discipline
// applies, exactly as with raw mutexes. fn may block or call any Tracker
// method: the world read lock is taken only around the commit that follows
// fn, so callbacks cannot deadlock against a concurrent Snapshot or Compact.
func (th *Thread) Do(o *Object, op event.Op, fn func()) Stamped {
	t := th.t
	if t != o.t {
		panic(fmt.Sprintf("track: thread %q and object %q belong to different trackers", th.name, o.name))
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	if fn != nil {
		fn()
	}
	t.world.RLock()
	defer t.world.RUnlock()
	return t.commit(th, o, op)
}

// Write is shorthand for Do(o, event.OpWrite, fn).
func (th *Thread) Write(o *Object, fn func()) Stamped { return th.Do(o, event.OpWrite, fn) }

// Read is shorthand for Do(o, event.OpRead, fn).
func (th *Thread) Read(o *Object, fn func()) Stamped { return th.Do(o, event.OpRead, fn) }

// commit applies the §III-C update rule and records the event. The caller
// holds the object lock and the world read lock; the thread's clock needs no
// lock (the calling goroutine owns it). The only cross-thread contention
// left is the object stripe itself, the cover's read lock, and one atomic
// increment.
func (t *Tracker) commit(th *Thread, o *Object, op event.Op) Stamped {
	cover := t.cover.Load()
	thrIdx, objIdx, width := cover.Observe(th.id, o.id)

	tv := th.clock
	if tv == nil {
		tv = core.NewBackendClock(t.backend)
		th.clock = tv
	}
	if o.clock == nil {
		o.clock = core.NewBackendClock(t.backend)
	}
	// The thread absorbs the object's last full clock, ticks the covered
	// endpoints, and the object re-absorbs the result — the same
	// core.UpdateRule the offline clock runs, only with the two clocks
	// living in their own shards instead of one locked map. No copy of the
	// object clock is taken at any point.
	ticked := core.UpdateRule(tv, o.clock, thrIdx, objIdx, width)

	idx := int(t.seq.Add(1)) - 1
	e := event.Event{Index: idx, Thread: th.id, Object: o.id, Op: op}
	if !ticked {
		// The event's edge is not covered, which would indicate a tracker
		// bug. Record the misuse for Err instead of panicking.
		t.noteErr(fmt.Errorf("track: event %d %v not covered by components %v",
			idx, e, cover.ComponentsString()))
	}
	v := tv.Flatten()
	th.buf = append(th.buf, record{ev: e, v: v})
	return Stamped{Event: e, Vector: v, Epoch: t.epoch}
}

// noteErr retains the first clock misuse.
func (t *Tracker) noteErr(err error) {
	t.errMu.Lock()
	if t.firstErr == nil {
		t.firstErr = err
	}
	t.errMu.Unlock()
}

// mergeLocked drains every thread's append buffer into the canonical trace,
// in trace-index order. The caller holds the world write lock, so no commit
// is in flight and the indices below seq are all present exactly once.
func (t *Tracker) mergeLocked() {
	t.reg.Lock()
	var pending []record
	for _, th := range t.threads {
		if len(th.buf) > 0 {
			pending = append(pending, th.buf...)
			th.buf = th.buf[:0]
		}
	}
	t.reg.Unlock()
	if len(pending) == 0 {
		return
	}
	sort.Slice(pending, func(i, j int) bool { return pending[i].ev.Index < pending[j].ev.Index })
	for _, r := range pending {
		if got := t.trace.AppendEvent(r.ev); got.Index != r.ev.Index {
			// Indices are dense by construction; a gap means lost records.
			t.noteErr(fmt.Errorf("track: merge misaligned: event %v landed at trace index %d", r.ev, got.Index))
		}
		t.stamps = append(t.stamps, r.v)
	}
}

// Backend returns the clock representation the tracker was built with.
func (t *Tracker) Backend() vclock.Backend { return t.backend }

// Size returns the current vector-clock size (number of components). The
// atomic cover pointer makes this safe — and usable from inside a Do
// callback — even while a concurrent Compact swaps the cover.
func (t *Tracker) Size() int { return t.cover.Load().Size() }

// Components returns the current component set as a copy.
func (t *Tracker) Components() []core.Component { return t.cover.Load().Components() }

// Events returns the number of recorded operations.
func (t *Tracker) Events() int { return int(t.seq.Load()) }

// Snapshot quiesces the tracker, merges all per-thread buffers, and returns
// a copy of the recorded computation together with its timestamps (indexed
// by event index). It is the cheapest way to get both consistently.
func (t *Tracker) Snapshot() (*event.Trace, []vclock.Vector) {
	t.world.Lock()
	defer t.world.Unlock()
	t.mergeLocked()
	return t.traceCopyLocked(), t.stampsCopyLocked()
}

// Trace returns a copy of the recorded computation.
func (t *Tracker) Trace() *event.Trace {
	t.world.Lock()
	defer t.world.Unlock()
	t.mergeLocked()
	return t.traceCopyLocked()
}

// Stamps returns a copy of the recorded timestamps, indexed by event index.
func (t *Tracker) Stamps() []vclock.Vector {
	t.world.Lock()
	defer t.world.Unlock()
	t.mergeLocked()
	return t.stampsCopyLocked()
}

func (t *Tracker) traceCopyLocked() *event.Trace {
	out := event.NewTrace()
	for i := 0; i < t.trace.Len(); i++ {
		out.AppendEvent(t.trace.At(i))
	}
	return out
}

func (t *Tracker) stampsCopyLocked() []vclock.Vector {
	out := make([]vclock.Vector, len(t.stamps))
	for i, v := range t.stamps {
		out[i] = v.Clone()
	}
	return out
}

// Err surfaces clock misuse (an uncovered event), which would indicate a bug
// in the tracker; always nil in correct operation. The first error from any
// epoch is retained.
func (t *Tracker) Err() error {
	t.errMu.Lock()
	defer t.errMu.Unlock()
	return t.firstErr
}
