package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// TestSmokeJSON runs a tiny deterministic load and checks the JSON report
// parses and carries the fields scripts (and the CI smoke step) rely on.
func TestSmokeJSON(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"-threads", "2", "-objects", "8", "-ops", "500", "-warmup", "50", "-seed", "7", "-format", "json"}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	var rep struct {
		Ops     int64   `json:"ops"`
		Mops    float64 `json:"mops"`
		Latency struct {
			P50 int64 `json:"p50_ns"`
			P99 int64 `json:"p99_ns"`
		} `json:"latency"`
		Tracker struct {
			Events int `json:"events"`
			Width  int `json:"width"`
		} `json:"tracker"`
	}
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatalf("report not parseable JSON: %v\n%s", err, out.String())
	}
	if want := int64(2 * 500); rep.Ops != want {
		t.Errorf("ops = %d, want %d (deterministic -ops mode)", rep.Ops, want)
	}
	if rep.Mops <= 0 || rep.Latency.P99 < rep.Latency.P50 || rep.Tracker.Width < 1 {
		t.Errorf("implausible report: %+v", rep)
	}
	if rep.Tracker.Events != 2*500+2*50 {
		t.Errorf("tracker events = %d, want warmup+measured = %d", rep.Tracker.Events, 2*500+2*50)
	}
}

// TestSmokeFormats checks the table and CSV renderings and the format error
// path.
func TestSmokeFormats(t *testing.T) {
	for _, format := range []string{"table", "csv"} {
		var out, errb bytes.Buffer
		code := run([]string{"-threads", "1", "-ops", "100", "-format", format}, &out, &errb)
		if code != 0 {
			t.Fatalf("format %s: exit %d, stderr: %s", format, code, errb.String())
		}
		if format == "table" && !strings.Contains(out.String(), "mops/sec") {
			t.Errorf("table output missing throughput:\n%s", out.String())
		}
		if format == "csv" && !strings.HasPrefix(out.String(), "threads,") {
			t.Errorf("csv output missing header:\n%s", out.String())
		}
	}
	var out, errb bytes.Buffer
	if code := run([]string{"-threads", "1", "-ops", "10", "-format", "nope"}, &out, &errb); code == 0 {
		t.Fatal("unknown format accepted")
	}
}
