package core

import (
	"fmt"

	"mixedclock/internal/bipartite"
	"mixedclock/internal/event"
	"mixedclock/internal/matching"
	"mixedclock/internal/vclock"
)

// Analysis is the product of the offline algorithm (Algorithm 1) on one
// computation: the thread–object bipartite graph, a maximum matching, the
// minimum vertex cover derived from it, and the resulting optimal component
// set. |Cover| = |Matching| certifies optimality (König–Egerváry).
type Analysis struct {
	Graph      *bipartite.Graph
	Matching   *matching.Matching
	Cover      *matching.Cover
	Components *ComponentSet
}

// Analyze runs the offline algorithm on a thread–object bipartite graph:
// Hopcroft–Karp maximum matching, then the constructive König–Egerváry
// conversion to a minimum vertex cover, whose members become the mixed
// clock's components.
func Analyze(g *bipartite.Graph) *Analysis {
	m := matching.HopcroftKarp(g)
	c := matching.KonigCover(g, m)
	return &Analysis{
		Graph:      g,
		Matching:   m,
		Cover:      c,
		Components: FromCover(c),
	}
}

// AnalyzeTrace projects tr onto its bipartite graph and runs Analyze.
func AnalyzeTrace(tr *event.Trace) *Analysis {
	return Analyze(bipartite.FromTrace(tr))
}

// NewClock returns a fresh offline mixed clock over the analysis'
// optimal components, ready to timestamp the analyzed computation (or any
// computation whose graph is a subgraph of the analyzed one).
func (a *Analysis) NewClock() *MixedClock {
	return NewMixedClock(a.Components)
}

// NewClockBackend is NewClock with an explicit clock representation.
// BackendAuto resolves against the analyzed computation: the optimal width
// and the graph's maximum degree (the join-shape proxy ChooseBackend wants).
func (a *Analysis) NewClockBackend(b vclock.Backend) *MixedClock {
	if b == vclock.BackendAuto {
		b = ChooseBackend(a.Components.Len(), MaxFanIn(a.Graph))
	}
	return NewMixedClockBackend(a.Components, b)
}

// VectorSize returns the size of the optimal mixed vector clock.
func (a *Analysis) VectorSize() int { return a.Components.Len() }

// Verify re-checks the analysis invariants: the matching is consistent with
// the graph, the cover covers every edge, and |cover| = |matching| (the
// optimality certificate). It returns nil when everything holds.
func (a *Analysis) Verify() error {
	if err := a.Matching.Verify(a.Graph); err != nil {
		return fmt.Errorf("core: analysis matching: %w", err)
	}
	if err := a.Cover.Verify(a.Graph); err != nil {
		return fmt.Errorf("core: analysis cover: %w", err)
	}
	if a.Cover.Size() != a.Matching.Size() {
		return fmt.Errorf("core: cover size %d != matching size %d — König certificate violated",
			a.Cover.Size(), a.Matching.Size())
	}
	if a.Components.Len() != a.Cover.Size() {
		return fmt.Errorf("core: component set size %d != cover size %d",
			a.Components.Len(), a.Cover.Size())
	}
	return nil
}

// Savings reports how many components the mixed clock saves over the best
// classical clock for this graph: min(active threads, active objects) −
// optimal size. Isolated vertices never need components under any scheme, so
// the classical sizes count only vertices with at least one edge.
func (a *Analysis) Savings() int {
	activeT := a.Graph.NThreads() - len(a.Graph.IsolatedThreads())
	activeO := a.Graph.NObjects() - len(a.Graph.IsolatedObjects())
	classical := activeT
	if activeO < classical {
		classical = activeO
	}
	return classical - a.VectorSize()
}
