package track

import (
	"sync"
	"testing"
	"time"

	"mixedclock/internal/clock"
	"mixedclock/internal/vclock"
)

// TestReaderCallbacksOverlap pins the read fast path's user-visible half:
// two Read callbacks on the same object run under the shared side of the
// stripe, so they can be in flight simultaneously. Each callback waits for
// the other to start; if reads still serialized, this would deadlock.
func TestReaderCallbacksOverlap(t *testing.T) {
	tr := NewTracker()
	o := tr.NewObject("o")
	a := tr.NewThread("a")
	b := tr.NewThread("b")
	a.Write(o, nil) // reveal the edge and give the object a clock

	aIn, bIn := make(chan struct{}), make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		var wg sync.WaitGroup
		wg.Add(2)
		go func() {
			defer wg.Done()
			a.Read(o, func() { close(aIn); <-bIn })
		}()
		go func() {
			defer wg.Done()
			b.Read(o, func() { close(bIn); <-aIn })
		}()
		wg.Wait()
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("concurrent read callbacks on one object deadlocked: reads are serializing")
	}
	if err := tr.Err(); err != nil {
		t.Fatal(err)
	}
	if err := clock.Validate(tr.Trace(), tr.Stamps(), "overlapping-reads"); err != nil {
		t.Fatal(err)
	}
}

// TestWriterExcludesReaders pins the other half of the stripe contract: a
// write callback holds the object exclusively, so a concurrent read cannot
// observe it mid-flight.
func TestWriterExcludesReaders(t *testing.T) {
	tr := NewTracker()
	o := tr.NewObject("o")
	w := tr.NewThread("w")
	r := tr.NewThread("r")

	var state int
	inWrite := make(chan struct{})
	release := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		w.Write(o, func() {
			state = 1
			close(inWrite)
			<-release
			state = 2
		})
	}()
	go func() {
		defer wg.Done()
		<-inWrite
		close(release)
		r.Read(o, func() {
			if state != 2 {
				t.Errorf("read observed state %d mid-write", state)
			}
		})
	}()
	wg.Wait()
	if err := tr.Err(); err != nil {
		t.Fatal(err)
	}
}

// TestSameObjectFastPathStamps drives the re-acquisition fast path (a thread
// hammering one object) interleaved with occasional cross-thread traffic
// that invalidates the version cache, on both backends, and validates every
// recorded stamp against the happened-before oracle.
func TestSameObjectFastPathStamps(t *testing.T) {
	for _, backend := range []vclock.Backend{vclock.BackendFlat, vclock.BackendTree} {
		t.Run(backend.String(), func(t *testing.T) {
			tr := NewTracker(WithBackend(backend))
			hot := tr.NewObject("hot")
			other := tr.NewObject("other")
			a := tr.NewThread("a")
			b := tr.NewThread("b")

			for i := 0; i < 120; i++ {
				// Runs of same-object ops (fast path) with periodic cache
				// breakers: b commits on hot, or a detours via other.
				a.Read(hot, nil)
				a.Write(hot, nil)
				switch i % 10 {
				case 4:
					b.Write(hot, nil)
				case 9:
					a.Write(other, nil)
				}
			}
			if err := tr.Err(); err != nil {
				t.Fatal(err)
			}
			trace, stamps := tr.Snapshot()
			if err := clock.Validate(trace, stamps, "fast-path/"+backend.String()); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestFastPathMatchesSlowPath replays one deterministic same-object-heavy
// script on both backends and requires identical stamps — the fast path must
// be invisible in the produced timestamps.
func TestFastPathMatchesSlowPath(t *testing.T) {
	runScript := func(b vclock.Backend) []vclock.Vector {
		tr := NewTracker(WithBackend(b))
		th := []*Thread{tr.NewThread("x"), tr.NewThread("y")}
		obj := []*Object{tr.NewObject("p"), tr.NewObject("q")}
		for i := 0; i < 80; i++ {
			// Long same-object runs with occasional switches.
			tid := (i / 25) % 2
			oid := (i / 40) % 2
			if i%3 == 0 {
				th[tid].Read(obj[oid], nil)
			} else {
				th[tid].Write(obj[oid], nil)
			}
		}
		if err := tr.Err(); err != nil {
			t.Fatal(err)
		}
		return tr.Stamps()
	}
	flat := runScript(vclock.BackendFlat)
	tree := runScript(vclock.BackendTree)
	for i := range flat {
		if !flat[i].Equal(tree[i]) {
			t.Fatalf("event %d: flat %v, tree %v", i, flat[i], tree[i])
		}
	}
}

// TestReadHeavyParallelValid hammers one object with many concurrent
// readers and a trickle of writers, then validates the full computation —
// the workload the read fast path exists for, run under -race in CI.
func TestReadHeavyParallelValid(t *testing.T) {
	tr := NewTracker()
	hot := tr.NewObject("hot")
	const nReaders, nWriters, opsPer = 6, 2, 150
	var wg sync.WaitGroup
	for i := 0; i < nReaders; i++ {
		th := tr.NewThread("reader")
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < opsPer; j++ {
				th.Read(hot, nil)
			}
		}()
	}
	for i := 0; i < nWriters; i++ {
		th := tr.NewThread("writer")
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < opsPer; j++ {
				th.Write(hot, nil)
			}
		}()
	}
	wg.Wait()
	if err := tr.Err(); err != nil {
		t.Fatal(err)
	}
	trace, stamps := tr.Snapshot()
	if got, want := trace.Len(), (nReaders+nWriters)*opsPer; got != want {
		t.Fatalf("recorded %d events, want %d", got, want)
	}
	if err := clock.Validate(trace, stamps, "read-heavy"); err != nil {
		t.Fatal(err)
	}
}

// TestLazyStampMaterialization pins the Stamped contract after the delta
// rework: Vector() reconstructs the exact stamp (matching Stamps()), copies
// are independent of tracker internals, and materialization works from
// inside a Do callback and across compactions.
func TestLazyStampMaterialization(t *testing.T) {
	tr := NewTracker()
	th := tr.NewThread("t")
	o := tr.NewObject("o")

	var collected []Stamped
	for i := 0; i < 5; i++ {
		collected = append(collected, th.Write(o, nil))
	}
	stamps := tr.Stamps()
	for i, s := range collected {
		if got := s.Vector(); !got.Equal(stamps[i]) {
			t.Fatalf("stamp %d: lazy %v, merged %v", i, got, stamps[i])
		}
		if len(s.Vector()) != len(stamps[i]) {
			t.Fatalf("stamp %d: width %d, want %d", i, len(s.Vector()), len(stamps[i]))
		}
	}
	// Mutating a returned vector must not corrupt the tracker's history.
	v := collected[0].Vector()
	v[0] = 999
	if tr.Stamps()[0].At(0) == 999 || collected[0].Vector().At(0) == 999 {
		t.Fatal("Vector() leaked shared storage")
	}
	// Materialization inside a callback takes the same barrier Snapshot
	// does; it must not deadlock and must see the committed stamp.
	var inside vclock.Vector
	th.Write(o, func() { inside = collected[2].Vector() })
	if !inside.Equal(stamps[2]) {
		t.Fatalf("in-callback materialization %v, want %v", inside, stamps[2])
	}
	// Stamps materialized before a compaction stay correct after it.
	if _, _, err := tr.Compact(); err != nil {
		t.Fatal(err)
	}
	post := th.Write(o, nil)
	if !collected[4].HappenedBefore(post) {
		t.Fatal("cross-epoch order lost after lazy materialization")
	}
	if got := collected[3].Vector(); !got.Equal(stamps[3]) {
		t.Fatalf("pre-compaction stamp changed: %v vs %v", got, stamps[3])
	}
	if zero := (Stamped{}); zero.Vector() != nil {
		t.Fatal("zero Stamped should have nil vector")
	}
}
