package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestLintDir(t *testing.T) {
	dir := t.TempDir()
	src := `package demo

// Documented is fine.
func Documented() {}

func Naked() {}

type Bare struct{}

// Grouped docs cover every member.
const (
	A = 1
	B = 2
)

var Loose = 3

type hidden struct{}

func (hidden) Exported() {} // unexported receiver: not surface

// Method is documented.
func (Bare) Method() {}

func (Bare) Undoc() {}
`
	if err := os.WriteFile(filepath.Join(dir, "demo.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	// Test files are skipped even when they would offend.
	if err := os.WriteFile(filepath.Join(dir, "demo_test.go"),
		[]byte("package demo\n\nfunc TestHelperExported() {}\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	missing, err := lintDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, m := range missing {
		names = append(names, m[strings.LastIndex(m, "exported "):])
	}
	want := []string{
		"exported function Naked is undocumented",
		"exported type Bare is undocumented",
		"exported var Loose is undocumented",
		"exported method Undoc is undocumented",
	}
	for _, w := range want {
		found := false
		for _, n := range names {
			if n == w {
				found = true
			}
		}
		if !found {
			t.Errorf("missing finding %q in %v", w, missing)
		}
	}
	if len(missing) != len(want) {
		t.Errorf("got %d findings, want %d: %v", len(missing), len(want), missing)
	}
}
