// Command mvc analyzes thread–object computations with mixed vector clocks.
//
// Usage:
//
//	mvc analyze   [-trace FILE]            graph, optimal cover, clock-size comparison
//	mvc timestamp [-trace FILE] [-n N]     per-event mixed-clock timestamps
//	mvc order     [-trace FILE] -i A -j B  causal relation between two events
//	mvc detect    [-trace FILE]            concurrency census + schedule-sensitive pairs
//	mvc recover   [-trace FILE] -fail K    recovery line excluding event K's causal future
//	mvc validate  [-trace FILE]            prove every clock scheme valid on this trace
//	mvc graph     [-trace FILE]            Graphviz DOT with the minimum cover filled
//	mvc export    [-trace FILE] -out LOG [-format full|delta]
//	                                       timestamp and write a binary .mvclog
//	mvc inspect   -log LOG [-n N]          read a binary log, either format
//	                                       (tolerates truncation)
//
// Traces are JSON Lines as produced by tracegen (one {"i","t","o","op"}
// object per line); -trace defaults to stdin.
//
// Commands that timestamp events accept -backend {flat|tree|auto} to pick
// the clock representation: flat (default) is the reference vector, tree is
// the Mathur et al. tree clock whose joins skip already-dominated subtrees,
// and auto picks one from the analyzed computation's width and join shape.
// Timestamps are identical in every case; only the cost profile changes.
//
// export's -format=delta writes the delta-encoded log: per-thread changed
// components instead of full vectors, streamed straight from the clock's
// change capture. inspect auto-detects the format from the header.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"

	"mixedclock/internal/baseline"
	"mixedclock/internal/clock"
	"mixedclock/internal/core"
	"mixedclock/internal/cut"
	"mixedclock/internal/detect"
	"mixedclock/internal/event"
	"mixedclock/internal/tlog"
	"mixedclock/internal/vclock"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	cmd := os.Args[1]
	fs := flag.NewFlagSet("mvc "+cmd, flag.ExitOnError)
	tracePath := fs.String("trace", "-", "trace file (JSONL); - for stdin")
	n := fs.Int("n", 20, "timestamp/inspect: number of events to print (0 = all)")
	i := fs.Int("i", -1, "order: first event index")
	j := fs.Int("j", -1, "order: second event index")
	fail := fs.Int("fail", -1, "recover: failed event index")
	out := fs.String("out", "", "export: output .mvclog path")
	logPath := fs.String("log", "", "inspect: input .mvclog path")
	backendName := fs.String("backend", "flat", "clock representation: flat, tree or auto")
	format := fs.String("format", "full", "export: log encoding, full or delta")
	if err := fs.Parse(os.Args[2:]); err != nil {
		os.Exit(2)
	}
	backend, err := vclock.ParseBackend(*backendName)
	if err != nil {
		fatal(err)
	}

	// inspect reads a binary log, not a JSONL trace.
	if cmd == "inspect" {
		if err := inspect(os.Stdout, *logPath, *n); err != nil {
			fatal(err)
		}
		return
	}

	tr, err := loadTrace(*tracePath)
	if err != nil {
		fatal(err)
	}

	switch cmd {
	case "analyze":
		err = analyze(os.Stdout, tr)
	case "timestamp":
		err = timestamp(os.Stdout, tr, *n, backend)
	case "order":
		err = order(os.Stdout, tr, *i, *j, backend)
	case "detect":
		err = detectCmd(os.Stdout, tr, backend)
	case "recover":
		err = recover_(os.Stdout, tr, *fail, backend)
	case "validate":
		err = validate(os.Stdout, tr, backend)
	case "graph":
		err = graph(os.Stdout, tr)
	case "export":
		err = export(os.Stdout, tr, *out, backend, *format)
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fatal(err)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: mvc {analyze|timestamp|order|detect|recover|validate|graph|export|inspect} [flags]")
	fmt.Fprintln(os.Stderr, "run 'mvc <command> -h' for command flags")
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "mvc: %v\n", err)
	os.Exit(1)
}

func loadTrace(path string) (*event.Trace, error) {
	var r io.Reader = os.Stdin
	if path != "-" {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		r = f
	}
	tr, err := event.ReadJSONL(r)
	if err != nil {
		return nil, err
	}
	if tr.Len() == 0 {
		return nil, fmt.Errorf("empty trace")
	}
	return tr, nil
}

func analyze(w io.Writer, tr *event.Trace) error {
	stats := tr.Summarize()
	fmt.Fprintf(w, "trace: %v\n", stats)

	a := core.AnalyzeTrace(tr)
	if err := a.Verify(); err != nil {
		return err
	}
	fmt.Fprintf(w, "bipartite graph: %v\n", a.Graph)
	fmt.Fprintf(w, "maximum matching: %d edges\n", a.Matching.Size())
	fmt.Fprintf(w, "minimum vertex cover: %v\n", a.Cover)
	fmt.Fprintln(w)
	fmt.Fprintf(w, "clock sizes:\n")
	fmt.Fprintf(w, "  thread-based:   %d\n", stats.Threads)
	fmt.Fprintf(w, "  object-based:   %d\n", stats.Objects)
	cc := baseline.NewChainClock()
	clock.Run(tr, cc)
	fmt.Fprintf(w, "  chain:          %d\n", cc.Components())
	oc := core.NewOnlineMixedClock(core.Popularity{})
	clock.Run(tr, oc)
	fmt.Fprintf(w, "  online (pop.):  %d\n", oc.Components())
	fmt.Fprintf(w, "  mixed (optimal): %d\n", a.VectorSize())
	fmt.Fprintf(w, "savings vs best classical clock: %d components\n", a.Savings())
	return nil
}

func timestamp(w io.Writer, tr *event.Trace, n int, b vclock.Backend) error {
	a := core.AnalyzeTrace(tr)
	mc := a.NewClockBackend(b)
	stamps := clock.Run(tr, mc)
	if err := mc.Err(); err != nil {
		return err
	}
	fmt.Fprintf(w, "components: %v\n", a.Components)
	limit := tr.Len()
	if n > 0 && n < limit {
		limit = n
	}
	for i := 0; i < limit; i++ {
		fmt.Fprintf(w, "%4d %v %v\n", i, tr.At(i), stamps[i])
	}
	if limit < tr.Len() {
		fmt.Fprintf(w, "... (%d more; use -n 0 for all)\n", tr.Len()-limit)
	}
	return nil
}

func order(w io.Writer, tr *event.Trace, i, j int, b vclock.Backend) error {
	if i < 0 || j < 0 || i >= tr.Len() || j >= tr.Len() {
		return fmt.Errorf("order needs -i and -j in [0, %d)", tr.Len())
	}
	stamps := clock.Run(tr, core.AnalyzeTrace(tr).NewClockBackend(b))
	rel := "concurrent with"
	switch {
	case stamps[i].Less(stamps[j]):
		rel = "happened before"
	case stamps[j].Less(stamps[i]):
		rel = "happened after"
	}
	fmt.Fprintf(w, "event %d %v %s event %d %v\n", i, tr.At(i), rel, j, tr.At(j))
	fmt.Fprintf(w, "  %v vs %v\n", stamps[i], stamps[j])
	return nil
}

func detectCmd(w io.Writer, tr *event.Trace, b vclock.Backend) error {
	stamps := clock.Run(tr, core.AnalyzeTrace(tr).NewClockBackend(b))
	fmt.Fprintf(w, "census: %v\n", detect.TakeCensus(stamps))
	pairs := detect.ScheduleSensitivePairs(tr)
	fmt.Fprintf(w, "schedule-sensitive pairs: %d\n", len(pairs))
	for k, p := range pairs {
		if k >= 20 {
			fmt.Fprintf(w, "  ... (%d more)\n", len(pairs)-20)
			break
		}
		fmt.Fprintf(w, "  %v\n", p)
	}
	return nil
}

func recover_(w io.Writer, tr *event.Trace, fail int, b vclock.Backend) error {
	if fail < 0 {
		return fmt.Errorf("recover needs -fail in [0, %d)", tr.Len())
	}
	stamps := clock.Run(tr, core.AnalyzeTrace(tr).NewClockBackend(b))
	line, err := cut.RecoveryLine(tr, stamps, fail)
	if err != nil {
		return err
	}
	contaminated := cut.Contaminated(stamps, fail)
	fmt.Fprintf(w, "failure at event %d %v\n", fail, tr.At(fail))
	fmt.Fprintf(w, "contaminated events: %d of %d\n", len(contaminated), tr.Len())
	fmt.Fprintf(w, "recovery line: %v (%d events survive)\n", line, line.Size())
	return nil
}

// validate proves every clock scheme correct on the given trace — handy
// when hand-editing traces or porting logs between versions.
func validate(w io.Writer, tr *event.Trace, b vclock.Backend) error {
	analysis := core.AnalyzeTrace(tr)
	if err := analysis.Verify(); err != nil {
		return err
	}
	schemes := []clock.Timestamper{
		analysis.NewClockBackend(b),
		core.NewOnlineMixedClockBackend(core.Popularity{}, b),
		core.NewOnlineMixedClockBackend(core.NewHybrid(), b),
		baseline.NewThreadClock(tr.Threads(), tr.Objects()),
		baseline.NewObjectClock(tr.Threads(), tr.Objects()),
		baseline.NewChainClock(),
	}
	for _, ts := range schemes {
		if _, err := clock.RunAndValidate(tr, ts); err != nil {
			return err
		}
		fmt.Fprintf(w, "ok  %-28s %d components\n", ts.Name(), ts.Components())
	}
	fmt.Fprintf(w, "all schemes valid on %d events (%d pair checks each)\n",
		tr.Len(), tr.Len()*(tr.Len()-1)/2)
	return nil
}

// graph emits Graphviz DOT with the minimum vertex cover filled, like the
// paper's Fig. 2.
func graph(w io.Writer, tr *event.Trace) error {
	a := core.AnalyzeTrace(tr)
	return a.Graph.WriteDOT(w, a.Cover.Threads, a.Cover.Objects)
}

// export timestamps the trace with the optimal mixed clock and writes the
// binary log. The delta format streams the clock's change capture straight
// into the writer — no full vector is materialized per event on the way to
// disk.
func export(w io.Writer, tr *event.Trace, out string, b vclock.Backend, format string) error {
	if out == "" {
		return fmt.Errorf("export needs -out")
	}
	if format != "full" && format != "delta" {
		return fmt.Errorf("export: unknown -format %q (want full or delta)", format)
	}
	a := core.AnalyzeTrace(tr)
	mc := a.NewClockBackend(b)
	var stamps []vclock.Vector
	if format == "full" {
		// Timestamp before touching the filesystem, so a clock error
		// leaves no file behind (and clobbers nothing).
		stamps = clock.Run(tr, mc)
		if err := mc.Err(); err != nil {
			return err
		}
	}
	f, err := os.Create(out)
	if err != nil {
		return err
	}
	defer f.Close()
	write := func() error {
		if format == "full" {
			return tlog.WriteAll(f, tr, stamps)
		}
		lw := tlog.NewDeltaWriter(f)
		var scratch []vclock.Delta
		for i := 0; i < tr.Len(); i++ {
			scratch, _ = mc.TimestampDelta(tr.At(i), scratch[:0])
			if err := lw.AppendDelta(tr.At(i), scratch); err != nil {
				return err
			}
		}
		if err := mc.Err(); err != nil {
			return err
		}
		return lw.Flush()
	}
	if err := write(); err != nil {
		// The delta path streams as it timestamps, so an error can leave a
		// partial log; don't leave it lying around to be mistaken for a
		// good one.
		f.Close()
		os.Remove(out)
		return err
	}
	fmt.Fprintf(w, "wrote %d timestamped events (%d components, %s format) to %s\n",
		tr.Len(), a.VectorSize(), format, out)
	return nil
}

// inspect reads a binary log, printing records and tolerating truncation.
func inspect(w io.Writer, path string, n int) error {
	if path == "" {
		return fmt.Errorf("inspect needs -log")
	}
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	tr, stamps, err := tlog.ReadAll(f)
	truncated := false
	if err != nil {
		if !errors.Is(err, tlog.ErrTruncated) {
			return err
		}
		truncated = true
	}
	limit := tr.Len()
	if n > 0 && n < limit {
		limit = n
	}
	for i := 0; i < limit; i++ {
		fmt.Fprintf(w, "%4d %v %v\n", i, tr.At(i), stamps[i])
	}
	if limit < tr.Len() {
		fmt.Fprintf(w, "... (%d more; use -n 0 for all)\n", tr.Len()-limit)
	}
	if truncated {
		fmt.Fprintf(w, "log truncated: %d complete records recovered\n", tr.Len())
	}
	if err := clock.Validate(tr, stamps, "log"); err != nil {
		return fmt.Errorf("recovered log failed validation: %w", err)
	}
	fmt.Fprintf(w, "validated %d events\n", tr.Len())
	return nil
}
