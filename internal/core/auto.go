package core

import (
	"mixedclock/internal/bipartite"
	"mixedclock/internal/vclock"
)

// Backend auto-selection. BenchmarkBackends (the flat-vs-tree head-to-head
// over four workload shapes) shows the representations win in different
// regimes:
//
//   - flat wins narrow clocks outright — O(k) with tiny constants beats tree
//     bookkeeping until k is in the low hundreds — and keeps winning at any
//     width when single joins touch most components (the wide-fanin shape:
//     a collector sweeping every producer's mailbox);
//   - tree wins wide clocks whose joins have causal locality (deep-join
//     ~1.3×, read-heavy ~1.6× at 256 components), because its cost scales
//     with the components a join actually changes.
//
// ChooseBackend encodes those crossovers so callers can say
// WithBackend(Auto) / -backend=auto and get the right representation for the
// observed computation.

const (
	// AutoTreeWidth is the component-set width at which the tree backend
	// starts winning on causally local joins. The original 128 was a
	// conservative guess from a 1-CPU dev box; the width-bracketed
	// BenchmarkBackends variants (deep-join / read-heavy at w = 64, 128,
	// 256) on CI-class hardware (Xeon @ 2.10GHz, Go 1.24, linux/amd64,
	// min ns/event of repeated 0.5s runs) put the crossover at or below
	// 64 components:
	//
	//	shape        width   flat     tree     tree speedup
	//	deep-join       64   247.7    229.0    1.08×
	//	deep-join      128   425.2    319.0    1.33×
	//	deep-join      256   808.0    544.6    1.48×
	//	read-heavy      64   283.6    214.5    1.32×
	//	read-heavy     128   463.4    312.0    1.49×
	//	read-heavy     256   889.9    572.5    1.55×
	//	seeded-hotset   29   330.5   1094      0.30× (flat 3.3×)
	//	wide-fanin     192   652.3   3107      0.21× (flat 4.8×)
	//
	// Tree wins every causally local shape from 64 components up, while
	// the narrow seeded-hotset (29) stays firmly flat, so 64 is the
	// data-backed cutoff. Below it flat's constants win regardless of
	// locality; above it the join shape (next constant) decides.
	AutoTreeWidth = 64
	// AutoFanInDivisor guards against the wide-fanin regime: when the
	// widest single join can touch more than width/AutoFanInDivisor
	// components there is no locality for the tree to exploit, and the
	// flat scan's constants win even at large widths — the table's
	// wide-fanin row (fan-in ≈ width, flat 4.8× ahead at 192 components)
	// against its deep-join/read-heavy rows (fan-in of a few, tree ahead)
	// brackets the guard; 4 keeps a safety margin on the flat side.
	AutoFanInDivisor = 4
)

// ChooseBackend picks a concrete clock representation from the observed
// component-set width and join shape. maxFanIn is the width of the widest
// single join expected — the maximum vertex degree of the thread–object
// graph is a sound static proxy (a thread of degree d can have absorbed at
// most d objects' histories since its last event on any one of them). Pass
// 0 when unknown; the width threshold alone then decides.
func ChooseBackend(width, maxFanIn int) vclock.Backend {
	if width >= AutoTreeWidth && maxFanIn*AutoFanInDivisor <= width {
		return vclock.BackendTree
	}
	return vclock.BackendFlat
}

// ResolveBackend resolves BackendAuto against observed state; concrete
// backends pass through unchanged.
func ResolveBackend(b vclock.Backend, width, maxFanIn int) vclock.Backend {
	if b != vclock.BackendAuto {
		return b
	}
	return ChooseBackend(width, maxFanIn)
}

// MaxFanIn returns the maximum vertex degree of g over both sides — the
// join-shape statistic ChooseBackend consumes.
func MaxFanIn(g *bipartite.Graph) int {
	max := 0
	for t := 0; t < g.NThreads(); t++ {
		if d := g.ThreadDegree(t); d > max {
			max = d
		}
	}
	for o := 0; o < g.NObjects(); o++ {
		if d := g.ObjectDegree(o); d > max {
			max = d
		}
	}
	return max
}
