package core

import (
	"math/rand"

	"mixedclock/internal/event"
)

// toThread and toObject shorten test tables.
func toThread(i int) event.ThreadID { return event.ThreadID(i) }
func toObject(i int) event.ObjectID { return event.ObjectID(i) }

// randomTrace generates a computation with uniformly random events.
func randomTrace(rng *rand.Rand, threads, objects, events int) *event.Trace {
	tr := event.NewTrace()
	for i := 0; i < events; i++ {
		op := event.OpWrite
		if rng.Intn(4) == 0 {
			op = event.OpRead
		}
		tr.Append(event.ThreadID(rng.Intn(threads)), event.ObjectID(rng.Intn(objects)), op)
	}
	return tr
}

// paperTrace reconstructs the computation of the paper's Fig. 1: four
// threads on four objects whose bipartite graph (Fig. 2) has minimum vertex
// cover size 3. Event order is one legal interleaving.
func paperTrace() *event.Trace {
	tr := event.NewTrace()
	tr.Append(1, 0, event.OpWrite) // [T2, O1]
	tr.Append(0, 1, event.OpWrite) // [T1, O2]
	tr.Append(1, 2, event.OpWrite) // [T2, O3]
	tr.Append(2, 2, event.OpWrite) // [T3, O3]
	tr.Append(3, 1, event.OpWrite) // [T4, O2]
	tr.Append(1, 1, event.OpWrite) // [T2, O2]
	tr.Append(2, 1, event.OpWrite) // [T3, O2]
	tr.Append(1, 3, event.OpWrite) // [T2, O4]
	return tr
}
