// Longrunning demonstrates epoch compaction: a service whose workload
// changes over time. Online mechanisms may only ever add clock components,
// so after the workload shifts, the clock carries components for entities
// that no longer matter. Tracker.Compact re-bases the clock on the offline
// optimum for the history so far and starts a new epoch; cross-epoch
// ordering is preserved through the compaction barrier.
package main

import (
	"fmt"
	"sync"

	"mixedclock"
)

func main() {
	tracker := mixedclock.NewTracker(mixedclock.WithMechanism(mixedclock.Popularity{}))

	// Phase 1: twelve request handlers hammer two hot caches.
	hotA := tracker.NewObject("cache-A")
	hotB := tracker.NewObject("cache-B")
	handlers := make([]*mixedclock.Thread, 12)
	for i := range handlers {
		handlers[i] = tracker.NewThread(fmt.Sprintf("handler-%d", i))
	}
	var wg sync.WaitGroup
	for i, th := range handlers {
		wg.Add(1)
		go func(th *mixedclock.Thread, k int) {
			defer wg.Done()
			for j := 0; j < 15; j++ {
				if (k+j)%2 == 0 {
					th.Write(hotA, nil)
				} else {
					th.Write(hotB, nil)
				}
			}
		}(th, i)
	}
	wg.Wait()

	phase1 := tracker.Size()
	lastPhase1 := handlers[0].Write(hotA, nil)
	fmt.Printf("after phase 1: %d events, clock has %d components\n",
		tracker.Events(), phase1)
	fmt.Println("(the optimum is 2 — the two caches — but popularity's early")
	fmt.Println(" tie-breaks admitted extra threads, and components are append-only)")

	// Maintenance window: compact. The optimal cover for everything so far
	// replaces the drifted component set.
	epoch, size, err := tracker.Compact()
	if err != nil {
		panic(err)
	}
	fmt.Printf("\ncompacted: epoch %d, clock re-based to %d components\n", epoch, size)

	// Phase 2: the workload shifts to new per-tenant stores.
	tenants := make([]*mixedclock.Object, 3)
	for i := range tenants {
		tenants[i] = tracker.NewObject(fmt.Sprintf("tenant-%d", i))
	}
	for i, th := range handlers[:6] {
		wg.Add(1)
		go func(th *mixedclock.Thread, k int) {
			defer wg.Done()
			for j := 0; j < 10; j++ {
				th.Write(tenants[(k+j)%3], nil)
			}
		}(th, i)
	}
	wg.Wait()
	firstPhase2 := handlers[0].Write(tenants[0], nil)

	fmt.Printf("after phase 2: %d events, clock has %d components (epoch %d)\n",
		tracker.Events(), tracker.Size(), tracker.Epoch())

	// Cross-epoch ordering still works: the compaction barrier orders
	// every phase-1 operation before every phase-2 operation.
	fmt.Printf("\nphase-1 op %v (epoch %d) happened before phase-2 op %v (epoch %d): %v\n",
		lastPhase1.Event, lastPhase1.Epoch,
		firstPhase2.Event, firstPhase2.Epoch,
		lastPhase1.HappenedBefore(firstPhase2))

	if err := tracker.Err(); err != nil {
		panic(err)
	}
	starts := tracker.EpochStarts()
	fmt.Printf("epoch boundaries in the recorded trace: %v\n", starts)
}
