// Recovery demonstrates the failure-recovery use-case from the paper's
// introduction: a computation is timestamped with the optimal mixed clock;
// when one operation turns out to be faulty (corrupted input, bad write),
// the timestamps alone identify every causally contaminated operation and
// the maximal consistent state — the recovery line — to roll back to.
package main

import (
	"fmt"
	"math/rand"

	"mixedclock"
)

func main() {
	// A small data-processing run: eight workers funnel through two shared
	// hot partitions, and two of them also maintain private partitions —
	// the access shape where a mixed clock is much smaller than either
	// classical clock. Deterministic seed keeps the narrative stable.
	rng := rand.New(rand.NewSource(7))
	tr := mixedclock.NewTrace()
	for i := 0; i < 28; i++ {
		t := rng.Intn(8)
		o := rng.Intn(2) // hot partitions O1, O2
		if t < 2 && rng.Float64() < 0.5 {
			o = 2 + t // worker T1's private O3, T2's private O4
		}
		tr.Append(
			mixedclock.ThreadID(t),
			mixedclock.ObjectID(o),
			mixedclock.OpWrite,
		)
	}

	a := mixedclock.AnalyzeTrace(tr)
	stamps := mixedclock.Run(tr, a.NewClock())
	fmt.Printf("computation: %v\n", tr.Summarize())
	fmt.Printf("optimal mixed clock: %d components %v\n\n", a.VectorSize(), a.Components)

	// Failure: operation 9 wrote garbage.
	const bad = 9
	fmt.Printf("fault detected at event %d %v\n\n", bad, tr.At(bad))

	// Every event that could have observed the bad write, from timestamp
	// comparisons alone (Theorem 2: bad → e ⇔ V(bad) < V(e)).
	contaminated := mixedclock.Contaminated(stamps, bad)
	fmt.Printf("causally contaminated events (%d of %d):\n", len(contaminated), tr.Len())
	for _, i := range contaminated {
		fmt.Printf("  e%-2d %v  %v\n", i, tr.At(i), stamps[i])
	}

	// The recovery line: the maximal consistent cut excluding the fault.
	line, err := mixedclock.RecoveryLine(tr, stamps, bad)
	if err != nil {
		panic(err)
	}
	fmt.Printf("\nrecovery line: %v\n", line)
	fmt.Printf("events surviving rollback: %d of %d\n", line.Size(), tr.Len())
	if !mixedclock.IsConsistentCut(tr, line) {
		panic("recovery line must be consistent")
	}
	fmt.Println("verified: the recovery line is a consistent global state")

	// Contrast: a cut that naively keeps everything before the fault in
	// trace order is NOT generally consistent per-thread... but a cut that
	// keeps one extra event on the faulty thread definitely is not:
	badThread := tr.At(bad).Thread
	tooGreedy := mixedclock.Cut{PerThread: append([]int(nil), line.PerThread...)}
	tooGreedy.PerThread[badThread]++ // re-admit the faulty event
	fmt.Printf("\nre-admitting the faulty event gives %v: consistent? %v\n",
		tooGreedy, mixedclock.IsConsistentCut(tr, tooGreedy))
	fmt.Println("(it is a consistent cut of the graph, but it contains the fault —")
	fmt.Println(" the recovery line is the largest consistent cut that does not)")
}
