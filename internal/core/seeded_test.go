package core

import (
	"strings"
	"testing"

	"mixedclock/internal/bipartite"
	"mixedclock/internal/clock"
	"mixedclock/internal/event"
	"mixedclock/internal/matching"
	"mixedclock/internal/vclock"
)

func TestNewSeededCoverTracker(t *testing.T) {
	g := bipartite.New(3, 3)
	g.AddEdge(0, 0)
	g.AddEdge(1, 0)
	g.AddEdge(2, 1)

	comps := NewComponentSet()
	comps.Add(ObjectComponent(0))
	comps.Add(ThreadComponent(2))

	ct, err := NewSeededCoverTracker(NaiveThreads{}, g, comps)
	if err != nil {
		t.Fatal(err)
	}
	if ct.Size() != 2 {
		t.Fatalf("Size = %d, want 2", ct.Size())
	}
	if ct.Mechanism().Name() != "naive/threads" {
		t.Fatalf("Mechanism() = %q", ct.Mechanism().Name())
	}
	// An already-revealed edge adds nothing.
	if _, added := ct.Reveal(0, 0); added {
		t.Fatal("existing edge added a component")
	}
	// A new edge covered by the seed (T3 on a fresh object) adds nothing.
	if _, added := ct.Reveal(2, 2); added {
		t.Fatal("edge covered by seeded T3 added a component")
	}
	// A new uncovered edge consults the mechanism.
	c, added := ct.Reveal(1, 1)
	if !added || c != ThreadComponent(1) {
		t.Fatalf("uncovered edge: added=%v component=%v", added, c)
	}
	if ct.Size() != 3 {
		t.Fatalf("Size = %d after growth, want 3", ct.Size())
	}
}

func TestNewSeededCoverTrackerRejectsBadSeed(t *testing.T) {
	g := bipartite.New(2, 2)
	g.AddEdge(0, 0)
	g.AddEdge(1, 1)
	comps := NewComponentSet()
	comps.Add(ThreadComponent(0)) // edge (1,1) uncovered
	if _, err := NewSeededCoverTracker(NaiveThreads{}, g, comps); err == nil {
		t.Fatal("uncovering seed accepted")
	} else if !strings.Contains(err.Error(), "do not cover") {
		t.Fatalf("unexpected error: %v", err)
	}
}

func TestMixedClockAccessors(t *testing.T) {
	comps := NewComponentSet()
	comps.Add(ThreadComponent(0))
	mc := NewMixedClock(comps)
	if mc.Components() != 1 {
		t.Fatalf("Components = %d", mc.Components())
	}
	if mc.ComponentSet() != comps {
		t.Fatal("ComponentSet should expose the shared set")
	}
}

func TestAnalysisVerifyCatchesCorruption(t *testing.T) {
	g := bipartite.New(2, 2)
	g.AddEdge(0, 0)
	g.AddEdge(1, 1)
	a := Analyze(g)
	if err := a.Verify(); err != nil {
		t.Fatal(err)
	}

	// A cover missing a member leaves an edge uncovered.
	broken := &Analysis{
		Graph:      a.Graph,
		Matching:   a.Matching,
		Cover:      &matching.Cover{Threads: []int{0}}, // misses edge (1,1)
		Components: a.Components,
	}
	if err := broken.Verify(); err == nil {
		t.Fatal("corrupted cover accepted")
	}

	// A valid cover whose size disagrees with the matching violates the
	// König certificate.
	oversized := &Analysis{
		Graph:    a.Graph,
		Matching: a.Matching,
		Cover:    &matching.Cover{Threads: []int{0, 1}, Objects: []int{0}},
		Components: func() *ComponentSet {
			s := NewComponentSet()
			s.Add(ThreadComponent(0))
			s.Add(ThreadComponent(1))
			s.Add(ObjectComponent(0))
			return s
		}(),
	}
	if err := oversized.Verify(); err == nil {
		t.Fatal("certificate violation accepted")
	}

	// Components drifting from the cover size must be caught too.
	drifted := &Analysis{
		Graph:      a.Graph,
		Matching:   a.Matching,
		Cover:      a.Cover,
		Components: NewComponentSet(),
	}
	if err := drifted.Verify(); err == nil {
		t.Fatal("component drift accepted")
	}
}

// TestSeededTrackerWithClock runs the compaction wiring end to end: a clock
// over a seeded tracker must stay valid as the computation grows past the
// seed.
func TestSeededTrackerWithClock(t *testing.T) {
	g := bipartite.New(2, 1)
	g.AddEdge(0, 0)
	g.AddEdge(1, 0)
	a := Analyze(g)
	ct, err := NewSeededCoverTracker(NewHybrid(), a.Graph, a.Components)
	if err != nil {
		t.Fatal(err)
	}
	mc := NewMixedClock(ct.Components())

	tr := event.NewTrace()
	tr.Append(0, 0, event.OpWrite)
	tr.Append(1, 0, event.OpWrite)
	tr.Append(2, 1, event.OpWrite) // new thread and object
	tr.Append(2, 0, event.OpWrite)

	stamps := make([]vclock.Vector, 0, tr.Len())
	for _, e := range tr.Events() {
		ct.Reveal(e.Thread, e.Object)
		stamps = append(stamps, mc.Timestamp(e))
	}
	if mc.Err() != nil {
		t.Fatal(mc.Err())
	}
	if err := clock.Validate(tr, stamps, "seeded"); err != nil {
		t.Fatal(err)
	}
}
