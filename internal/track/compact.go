package track

import (
	"fmt"

	"mixedclock/internal/core"
	"mixedclock/internal/vclock"
)

// Epoch compaction. Online mechanisms can only ever add components, so a
// long-lived tracker drifts above the offline optimum as the access
// structure evolves. Compact re-bases the clock: it computes the optimal
// component set for the graph revealed so far (Algorithm 1) and starts a
// new epoch whose vectors are zero over those components.
//
// Cross-epoch semantics: compaction is a synchronization barrier. Compact
// takes the world write lock, which waits out every in-flight Do (each
// holds the read side across its commit), so every event of epoch k commits
// before every event of epoch k+1; Stamped.Order reports earlier epochs as
// Before. That is SOUND — it never inverts a true happened-before relation —
// but it COARSENS concurrency: two events in different epochs always read
// as ordered even if the program imposed no dependency between them. Within
// an epoch, precision is exact as before. Call Compact at natural barriers
// (phase changes, checkpoints) where that coarsening is already true of the
// program.

// Order compares two stamped operations from the same tracker, taking
// epochs into account: within an epoch, the vector order; across epochs,
// the epoch order. The comparison materializes both lazy stamps (one
// tracker barrier each on first use; memoized afterwards).
func (s Stamped) Order(t Stamped) vclock.Ordering {
	switch {
	case s.Epoch < t.Epoch:
		return vclock.Before
	case s.Epoch > t.Epoch:
		return vclock.After
	default:
		return s.vec().Compare(t.vec())
	}
}

// Compact quiesces all threads (a stop-the-world barrier), merges the
// per-thread record buffers, seals the closing epoch's tail into an
// immutable delta-encoded segment (spilled under the tracker's SpillPolicy),
// and starts a new epoch over the optimal component set for the computation
// revealed so far. It returns the new epoch number and the compacted clock
// size. Operations blocked on the barrier commit into the new epoch with
// fresh zero clocks. A seal failure (spill I/O) aborts the compaction with
// the tracker unchanged and the tail still in memory; a successful Compact
// publishes the catalog, runs the segment-compaction policy, and re-arms
// auto-sealing after a spill failure.
func (t *Tracker) Compact() (epoch, size int, err error) {
	if t.closed.Load() {
		return 0, 0, fmt.Errorf("track: Compact on a closed Tracker")
	}
	epoch, size, err = t.compactEpoch()
	if err == nil {
		t.afterSeal()
	}
	return epoch, size, err
}

// compactEpoch is Compact's barrier section.
func (t *Tracker) compactEpoch() (epoch, size int, err error) {
	t.world.Lock()
	defer t.world.Unlock()
	t.mergeLocked()
	if err := t.sealLocked(t.mergedLenLocked()); err != nil {
		return 0, 0, err
	}
	// The seal consumed every tail record; drop any empty blocks left over
	// (a Stream freeze on an idle tracker leaves one) so no block carries
	// its stale epoch across the boundary.
	t.tail = nil

	cover := t.cover.Load()
	analysis := core.Analyze(cover.Graph())
	if verr := analysis.Verify(); verr != nil {
		return 0, 0, fmt.Errorf("track: compaction analysis: %w", verr)
	}
	seeded, err := core.NewSeededCoverTracker(cover.Mechanism(), analysis.Graph, analysis.Components)
	if err != nil {
		return 0, 0, fmt.Errorf("track: compaction: %w", err)
	}
	// Swap in the compacted cover and retire the old one through the
	// reclaimer: lock-free readers (Size, Components inside a Do callback)
	// may still hold it past the barrier, so its release is deferred until
	// every registered reader has passed. Deferred, not immediate — we hold
	// the world write barrier and a free may touch the filesystem.
	t.cover.Store(t.newCover(seeded))
	oldCover := cover
	t.reclaim.retireDeferred(func() { _ = oldCover })
	// An auto backend re-decides here: the compacted width and the revealed
	// join shape are exactly the statistics the heuristic wants, and every
	// clock restarts from zero anyway, so the representation can change
	// without mixing.
	t.backend = core.ResolveBackend(t.requested, seeded.Size(), core.MaxFanIn(analysis.Graph))
	// Reset every thread- and object-local clock: the new epoch starts from
	// zero over the compacted components. No Do is in flight (we hold the
	// write lock), so the per-thread and per-object state is quiescent.
	// The delta replay base and the re-acquisition cache restart with it.
	t.reg.Lock()
	for _, th := range t.threads {
		th.clock = nil
		th.base = nil
		th.lastObj = nil
	}
	for _, o := range t.objects {
		o.clock = nil
	}
	t.reg.Unlock()
	t.epoch++
	t.epochStart = append(t.epochStart, t.mergedLenLocked())
	// The epoch and component set changed; refresh the resume manifest the
	// published catalog carries (sealLocked already captured one, but that
	// was for the closing epoch).
	t.captureResumeLocked()
	return t.epoch, seeded.Size(), nil
}

// Epoch returns the current epoch number (0 before any compaction).
func (t *Tracker) Epoch() int {
	t.world.RLock(0)
	defer t.world.RUnlock(0)
	return t.epoch
}

// EpochStarts returns, for each epoch, the index of its first event in the
// recorded trace. Epoch 0 always starts at 0; an epoch may be empty.
func (t *Tracker) EpochStarts() []int {
	t.world.RLock(0)
	defer t.world.RUnlock(0)
	return append([]int{0}, t.epochStart...)
}

// EpochOf returns the epoch that event index i was recorded in.
func (t *Tracker) EpochOf(i int) int {
	t.world.RLock(0)
	defer t.world.RUnlock(0)
	epoch := 0
	for _, start := range t.epochStart {
		if i >= start {
			epoch++
		}
	}
	return epoch
}
