package clock

import (
	"errors"
	"strings"
	"testing"

	"mixedclock/internal/event"
	"mixedclock/internal/vclock"
)

// scalarClock is a deliberately broken scheme: a single Lamport counter.
// It orders everything totally, so it must fail validation on any
// computation with concurrent events.
type scalarClock struct {
	threads map[event.ThreadID]vclock.Vector
	objects map[event.ObjectID]vclock.Vector
}

func newScalarClock() *scalarClock {
	return &scalarClock{
		threads: make(map[event.ThreadID]vclock.Vector),
		objects: make(map[event.ObjectID]vclock.Vector),
	}
}

func (c *scalarClock) Timestamp(e event.Event) vclock.Vector {
	v := c.threads[e.Thread].Merge(c.objects[e.Object]).Tick(0)
	c.threads[e.Thread] = v
	c.objects[e.Object] = v
	return v.Clone()
}

func (c *scalarClock) Components() int { return 1 }
func (c *scalarClock) Name() string    { return "scalar" }

// constantClock returns the same vector for every event — violates
// distinctness.
type constantClock struct{}

func (constantClock) Timestamp(event.Event) vclock.Vector { return vclock.Vector{1} }
func (constantClock) Components() int                     { return 1 }
func (constantClock) Name() string                        { return "constant" }

func concurrentTrace() *event.Trace {
	tr := event.NewTrace()
	tr.Append(0, 0, event.OpWrite)
	tr.Append(1, 1, event.OpWrite) // concurrent with event 0
	return tr
}

func TestRunProducesOneStampPerEvent(t *testing.T) {
	tr := concurrentTrace()
	stamps := Run(tr, newScalarClock())
	if len(stamps) != tr.Len() {
		t.Fatalf("Run returned %d stamps for %d events", len(stamps), tr.Len())
	}
}

func TestValidateAcceptsValidScheme(t *testing.T) {
	// A scalar clock on a single-threaded, single-object computation is a
	// valid vector clock (the poset is a chain).
	tr := event.NewTrace()
	for i := 0; i < 5; i++ {
		tr.Append(0, 0, event.OpWrite)
	}
	if err := Validate(tr, Run(tr, newScalarClock()), "scalar"); err != nil {
		t.Fatalf("valid-on-chain scheme rejected: %v", err)
	}
}

func TestValidateRejectsScalarOnConcurrency(t *testing.T) {
	tr := concurrentTrace()
	err := Validate(tr, Run(tr, newScalarClock()), "scalar")
	if err == nil {
		t.Fatal("scalar clock accepted on concurrent computation")
	}
	var verr *ValidationError
	if !errors.As(err, &verr) {
		t.Fatalf("error type %T, want *ValidationError", err)
	}
	if verr.Want != "concurrent" {
		t.Errorf("Want = %q, want concurrent", verr.Want)
	}
	if !strings.Contains(verr.Error(), "scalar") {
		t.Errorf("Error() = %q should name the scheme", verr.Error())
	}
}

func TestValidateRejectsEqualStamps(t *testing.T) {
	tr := concurrentTrace()
	if err := Validate(tr, Run(tr, constantClock{}), "constant"); err == nil {
		t.Fatal("constant clock accepted")
	}
}

func TestValidateRejectsWrongCount(t *testing.T) {
	tr := concurrentTrace()
	if err := Validate(tr, []vclock.Vector{{1}}, "short"); err == nil {
		t.Fatal("wrong stamp count accepted")
	}
}

func TestValidateRejectsMissingOrder(t *testing.T) {
	// Hand-build stamps that claim two causally ordered events are
	// concurrent.
	tr := event.NewTrace()
	tr.Append(0, 0, event.OpWrite)
	tr.Append(0, 0, event.OpWrite) // same thread: 0 → 1
	stamps := []vclock.Vector{{1, 0}, {0, 1}}
	err := Validate(tr, stamps, "bogus")
	if err == nil {
		t.Fatal("missing order accepted")
	}
	var verr *ValidationError
	if !errors.As(err, &verr) {
		t.Fatalf("error type %T", err)
	}
	if verr.Want != "happened-before" || verr.Got != vclock.Concurrent {
		t.Errorf("verdicts: want %q got %v", verr.Want, verr.Got)
	}
}

func TestRunAndValidate(t *testing.T) {
	tr := concurrentTrace()
	stamps, err := RunAndValidate(tr, newScalarClock())
	if err == nil {
		t.Fatal("RunAndValidate accepted scalar clock")
	}
	if len(stamps) != tr.Len() {
		t.Fatal("stamps not returned alongside error")
	}
}

func TestEquivalent(t *testing.T) {
	a := []vclock.Vector{{1, 0}, {1, 1}, {2, 1}}
	b := []vclock.Vector{{1, 0, 0}, {1, 1, 0}, {2, 1, 0}} // trailing zeros are immaterial
	if err := Equivalent(a, b, "a", "b"); err != nil {
		t.Fatal(err)
	}
	if err := Equivalent(a, a[:2], "a", "short"); err == nil {
		t.Fatal("length mismatch accepted")
	}
	c := []vclock.Vector{{1, 0}, {0, 1}, {2, 1}} // 0 and 1 now concurrent
	if err := Equivalent(a, c, "a", "c"); err == nil {
		t.Fatal("divergent verdicts accepted")
	}
}
