// Backend-agnosticism of the wire format: a tree clock serializes to the
// canonical flat encoding and decodes back losslessly, so internal/tlog logs
// written by one backend are readable as the other. External test package —
// treeclock imports vclock, so these tests cannot live inside package vclock.
package vclock_test

import (
	"math/rand"
	"testing"

	"mixedclock/internal/treeclock"
	"mixedclock/internal/vclock"
)

// buildTree grows a tree clock through a random but discipline-respecting
// tick/join history so its internal structure is nontrivial before encoding.
func buildTree(seed int64, comps int) *treeclock.TreeClock {
	rng := rand.New(rand.NewSource(seed))
	clocks := make([]*treeclock.TreeClock, 4)
	for i := range clocks {
		clocks[i] = treeclock.New(0)
	}
	for op := 0; op < 60; op++ {
		a, b := rng.Intn(len(clocks)), rng.Intn(len(clocks))
		clocks[a].Join(clocks[b])
		clocks[a].Tick(a*comps/len(clocks) + rng.Intn(comps/len(clocks)))
		clocks[b].Join(clocks[a])
	}
	return clocks[rng.Intn(len(clocks))]
}

func TestTreeCodecRoundTrip(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		tc := buildTree(seed, 16)
		want := tc.Flatten()

		// Tree → wire bytes → Vector → tree again.
		wire := tc.AppendBinary(nil)
		var v vclock.Vector
		if err := v.UnmarshalBinary(wire); err != nil {
			t.Fatalf("seed %d: decode: %v", seed, err)
		}
		if !v.Equal(want) {
			t.Fatalf("seed %d: wire decoded to %v, want %v", seed, v, want)
		}
		back := treeclock.FromVector(v)
		if got := back.Flatten(); !got.Equal(want) {
			t.Fatalf("seed %d: round trip %v, want %v", seed, got, want)
		}
		// The reconstructed clock must compare like the original against
		// arbitrary peers of either backend.
		peer := buildTree(seed+100, 16)
		if back.Compare(peer) != tc.Compare(peer) {
			t.Fatalf("seed %d: reconstructed tree compares differently", seed)
		}
		if back.Compare(vclock.FlatOf(peer.Flatten())) != tc.Compare(peer) {
			t.Fatalf("seed %d: reconstructed tree vs flat peer compares differently", seed)
		}
	}
}

func TestTreeEncodingCanonical(t *testing.T) {
	// Equal clocks (in the Compare sense) encode identically regardless of
	// backend and trailing zeros.
	v := vclock.Vector{2, 0, 1, 0, 0}
	tree := treeclock.FromVector(v)
	tree.Grow(12) // extra width must not leak into the wire form
	flat := vclock.FlatOf(v.Clone())
	if got, want := tree.AppendBinary(nil), flat.AppendBinary(nil); string(got) != string(want) {
		t.Fatalf("tree wire %x, flat wire %x", got, want)
	}
}

// FuzzRoundTrip feeds arbitrary bytes through the vector decoder and, when
// they parse, requires the flat and tree backends to agree byte-for-byte on
// the re-encoding and value-for-value on the round-tripped clock.
func FuzzRoundTrip(f *testing.F) {
	f.Add([]byte{})
	f.Add(vclock.Vector{1, 2, 3}.AppendBinary(nil))
	f.Add(vclock.Vector{0, 0, 9}.AppendBinary(nil))
	f.Add(vclock.Vector{1 << 40, 0, 7}.AppendBinary(nil))
	f.Fuzz(func(t *testing.T, data []byte) {
		v, used, err := vclock.DecodeVector(data)
		if err != nil {
			return
		}
		_ = used
		tree := treeclock.FromVector(v)
		if got := tree.Flatten(); !got.Equal(v) {
			t.Fatalf("tree round trip %v, want %v", got, v)
		}
		treeWire := tree.AppendBinary(nil)
		flatWire := v.AppendBinary(nil)
		if string(treeWire) != string(flatWire) {
			t.Fatalf("tree wire %x, flat wire %x", treeWire, flatWire)
		}
		var back vclock.Vector
		if err := back.UnmarshalBinary(flatWire); err != nil {
			t.Fatalf("re-decode: %v", err)
		}
		if !back.Equal(v) {
			t.Fatalf("re-decode %v, want %v", back, v)
		}
		// Ticking the reconstruction must behave identically across
		// backends (Grow/Tick path on decoded state).
		ft := vclock.FlatOf(v.Clone())
		ft.Tick(2)
		tree.Tick(2)
		if !tree.Flatten().Equal(ft.Flatten()) {
			t.Fatalf("post-tick divergence: tree %v, flat %v", tree.Flatten(), ft.Flatten())
		}
	})
}
