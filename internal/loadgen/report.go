package loadgen

import (
	"encoding/json"
	"fmt"
	"io"

	"mixedclock/internal/track"
)

// Latency summarizes the per-operation latency histogram, in nanoseconds.
// Percentiles come from the log-linear histogram (≈3% resolution); Max is
// the exact observed maximum. Batch commits are amortized: a batch of N
// contributes its commit latency divided by N, N times.
type Latency struct {
	P50  int64 `json:"p50_ns"`
	P90  int64 `json:"p90_ns"`
	P99  int64 `json:"p99_ns"`
	P999 int64 `json:"p999_ns"`
	Max  int64 `json:"max_ns"`
}

// MonitorSummary reports what the attached online monitor saw during the
// run: records consumed, detections raised, schedule-sensitive pairs, and
// the incremental König lower bound on the optimal clock width.
type MonitorSummary struct {
	Consumed        int `json:"consumed"`
	Detections      int `json:"detections"`
	Pairs           int `json:"pairs"`
	CoverLowerBound int `json:"cover_lower_bound"`
}

// Report is the result of one load-generation run: the effective config,
// op counts, throughput, latency percentiles, allocation rates, and the
// tracker's final lifecycle stats (clock width, seals, compaction and
// retention totals). Marshals to stable JSON for scripting; WriteTable and
// WriteCSV render the same data for humans and spreadsheets.
type Report struct {
	Config         Config             `json:"config"`
	WarmupOps      int64              `json:"warmup_ops"`
	Ops            int64              `json:"ops"`
	Reads          int64              `json:"reads"`
	Writes         int64              `json:"writes"`
	ElapsedSeconds float64            `json:"elapsed_seconds"`
	Mops           float64            `json:"mops"`
	Latency        Latency            `json:"latency"`
	AllocsPerOp    float64            `json:"allocs_per_op"`
	BytesPerOp     float64            `json:"bytes_per_op"`
	Backend        string             `json:"backend"`
	Tracker        track.TrackerStats `json:"tracker"`
	Monitor        *MonitorSummary    `json:"monitor,omitempty"`
}

// WriteJSON emits the report as one indented JSON object.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// WriteTable renders the report as an aligned key/value table.
func (r *Report) WriteTable(w io.Writer) error {
	c := r.Config
	rows := []struct {
		k string
		v string
	}{
		{"threads", fmt.Sprintf("%d", c.Threads)},
		{"objects", fmt.Sprintf("%d (%s)", c.Objects, c.Dist)},
		{"readfrac", fmt.Sprintf("%.2f", c.ReadFrac)},
		{"batch", fmt.Sprintf("%d", c.Batch)},
		{"backend", r.Backend},
		{"warmup ops", fmt.Sprintf("%d", r.WarmupOps)},
		{"measured ops", fmt.Sprintf("%d (%d reads, %d writes)", r.Ops, r.Reads, r.Writes)},
		{"elapsed", fmt.Sprintf("%.3fs", r.ElapsedSeconds)},
		{"throughput", fmt.Sprintf("%.3f mops/sec", r.Mops)},
		{"latency p50/p90/p99", fmt.Sprintf("%d / %d / %d ns", r.Latency.P50, r.Latency.P90, r.Latency.P99)},
		{"latency p99.9/max", fmt.Sprintf("%d / %d ns", r.Latency.P999, r.Latency.Max)},
		{"allocs", fmt.Sprintf("%.2f allocs/op, %.1f B/op", r.AllocsPerOp, r.BytesPerOp)},
		{"clock width", fmt.Sprintf("%d (epoch %d)", r.Tracker.Width, r.Tracker.Epoch)},
		{"events", fmt.Sprintf("%d committed, %d sealed, floor %d", r.Tracker.Events, r.Tracker.SealedEvents, r.Tracker.RetainedEvents)},
		{"segments", fmt.Sprintf("%d live, %d B spilled, catalog gen %d", r.Tracker.Segments, r.Tracker.SpilledBytes, r.Tracker.CatalogGen)},
		{"lifecycle", fmt.Sprintf("%d seals, %d compaction passes (-%d segs), %d retention passes (-%d segs)",
			r.Tracker.Seals, r.Tracker.CompactionPasses, r.Tracker.CompactedSegments,
			r.Tracker.RetentionPasses, r.Tracker.RetiredSegments)},
	}
	if r.Monitor != nil {
		rows = append(rows, struct {
			k string
			v string
		}{"monitor", fmt.Sprintf("%d consumed, %d detections, %d pairs, cover ≥ %d",
			r.Monitor.Consumed, r.Monitor.Detections, r.Monitor.Pairs, r.Monitor.CoverLowerBound)})
	}
	for _, row := range rows {
		if _, err := fmt.Fprintf(w, "%-22s %s\n", row.k, row.v); err != nil {
			return err
		}
	}
	return nil
}

// WriteCSV emits a header row and one value row, for collecting sweeps
// across invocations into a single sheet.
func (r *Report) WriteCSV(w io.Writer) error {
	c := r.Config
	if _, err := fmt.Fprintln(w, "threads,objects,readfrac,batch,dist,backend,ops,reads,writes,elapsed_sec,mops,p50_ns,p90_ns,p99_ns,p999_ns,max_ns,allocs_per_op,bytes_per_op,width,epoch,segments,spilled_bytes,seals"); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%d,%d,%g,%d,%s,%s,%d,%d,%d,%.3f,%.4f,%d,%d,%d,%d,%d,%.2f,%.1f,%d,%d,%d,%d,%d\n",
		c.Threads, c.Objects, c.ReadFrac, c.Batch, c.Dist, r.Backend,
		r.Ops, r.Reads, r.Writes, r.ElapsedSeconds, r.Mops,
		r.Latency.P50, r.Latency.P90, r.Latency.P99, r.Latency.P999, r.Latency.Max,
		r.AllocsPerOp, r.BytesPerOp,
		r.Tracker.Width, r.Tracker.Epoch, r.Tracker.Segments, r.Tracker.SpilledBytes, r.Tracker.Seals)
	return err
}

// Write renders the report in the named format: "table", "csv" or "json".
func (r *Report) Write(w io.Writer, format string) error {
	switch format {
	case "table":
		return r.WriteTable(w)
	case "csv":
		return r.WriteCSV(w)
	case "json":
		return r.WriteJSON(w)
	default:
		return fmt.Errorf("loadgen: unknown format %q (want table, csv or json)", format)
	}
}
