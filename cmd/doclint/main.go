// Command doclint fails when an exported identifier lacks a doc comment.
//
// Usage:
//
//	doclint PKGDIR...
//
// Each argument is a package directory; _test.go files are skipped. For
// every exported top-level func, method (on an exported receiver), type,
// const and var, either the declaration or its group must carry a doc
// comment. Offenders are listed one per line as file:line and the exit
// status is 1.
//
// This is the docs gate CI runs over the public package and internal/track:
// the documented surface is the product here, so an undocumented export is
// a build break, not a style nit.
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"sort"
	"strings"
)

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: doclint PKGDIR...")
		os.Exit(2)
	}
	bad := 0
	for _, dir := range os.Args[1:] {
		missing, err := lintDir(dir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "doclint: %v\n", err)
			os.Exit(2)
		}
		for _, m := range missing {
			fmt.Println(m)
			bad++
		}
	}
	if bad > 0 {
		fmt.Fprintf(os.Stderr, "doclint: %d undocumented exported identifiers\n", bad)
		os.Exit(1)
	}
}

// lintDir parses one package directory and returns a sorted list of
// "file:line: exported X is undocumented" findings.
func lintDir(dir string) ([]string, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi fs.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		return nil, err
	}
	var missing []string
	report := func(pos token.Pos, kind, name string) {
		p := fset.Position(pos)
		missing = append(missing, fmt.Sprintf("%s:%d: exported %s %s is undocumented", p.Filename, p.Line, kind, name))
	}
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				lintDecl(decl, report)
			}
		}
	}
	sort.Strings(missing)
	return missing, nil
}

// lintDecl checks one top-level declaration, reporting each undocumented
// exported identifier it declares.
func lintDecl(decl ast.Decl, report func(pos token.Pos, kind, name string)) {
	switch d := decl.(type) {
	case *ast.FuncDecl:
		if !d.Name.IsExported() || d.Doc != nil {
			return
		}
		kind := "function"
		if d.Recv != nil {
			// Methods on unexported receivers are not reachable surface.
			if base := receiverBase(d.Recv); base != "" && !ast.IsExported(base) {
				return
			}
			kind = "method"
		}
		report(d.Name.Pos(), kind, d.Name.Name)
	case *ast.GenDecl:
		kind := map[token.Token]string{token.TYPE: "type", token.CONST: "const", token.VAR: "var"}[d.Tok]
		if kind == "" {
			return // import group
		}
		for _, spec := range d.Specs {
			switch s := spec.(type) {
			case *ast.TypeSpec:
				// A group doc documents every member; a spec doc or trailing
				// line comment documents the one spec.
				if s.Name.IsExported() && d.Doc == nil && s.Doc == nil && s.Comment == nil {
					report(s.Name.Pos(), kind, s.Name.Name)
				}
			case *ast.ValueSpec:
				if d.Doc != nil || s.Doc != nil || s.Comment != nil {
					continue
				}
				for _, name := range s.Names {
					if name.IsExported() {
						report(name.Pos(), kind, name.Name)
					}
				}
			}
		}
	}
}

// receiverBase names the receiver's base type: "T" for (t T), (t *T) and
// their generic instantiations; "" when the shape is something else.
func receiverBase(recv *ast.FieldList) string {
	if len(recv.List) != 1 {
		return ""
	}
	t := recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	switch x := t.(type) {
	case *ast.Ident:
		return x.Name
	case *ast.IndexExpr:
		if id, ok := x.X.(*ast.Ident); ok {
			return id.Name
		}
	case *ast.IndexListExpr:
		if id, ok := x.X.(*ast.Ident); ok {
			return id.Name
		}
	}
	return ""
}
