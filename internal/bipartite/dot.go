package bipartite

import (
	"bufio"
	"fmt"
	"io"
)

// WriteDOT renders the graph in Graphviz DOT format with threads on the left
// rank and objects on the right, highlighting the vertices named in cover
// (thread indices in coverThreads, object indices in coverObjects) the way
// Fig. 2 of the paper fills its minimum-vertex-cover nodes.
func (g *Graph) WriteDOT(w io.Writer, coverThreads, coverObjects []int) error {
	bw := bufio.NewWriter(w)
	inCoverT := make(map[int]bool, len(coverThreads))
	for _, t := range coverThreads {
		inCoverT[t] = true
	}
	inCoverO := make(map[int]bool, len(coverObjects))
	for _, o := range coverObjects {
		inCoverO[o] = true
	}

	fmt.Fprintln(bw, "graph threadobject {")
	fmt.Fprintln(bw, "  rankdir=LR;")
	fmt.Fprintln(bw, "  subgraph cluster_threads { label=\"threads\";")
	for t := 0; t < g.nThreads; t++ {
		style := ""
		if inCoverT[t] {
			style = " style=filled fillcolor=gray"
		}
		fmt.Fprintf(bw, "    t%d [label=\"T%d\"%s];\n", t, t+1, style)
	}
	fmt.Fprintln(bw, "  }")
	fmt.Fprintln(bw, "  subgraph cluster_objects { label=\"objects\";")
	for o := 0; o < g.nObjects; o++ {
		style := ""
		if inCoverO[o] {
			style = " style=filled fillcolor=gray"
		}
		fmt.Fprintf(bw, "    o%d [label=\"O%d\"%s];\n", o, o+1, style)
	}
	fmt.Fprintln(bw, "  }")
	for _, e := range g.EdgeList() {
		fmt.Fprintf(bw, "  t%d -- o%d;\n", e.Thread, e.Object)
	}
	fmt.Fprintln(bw, "}")
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("bipartite: writing DOT: %w", err)
	}
	return nil
}
