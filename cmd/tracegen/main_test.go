package main

import (
	"os"
	"path/filepath"
	"testing"

	"mixedclock/internal/event"
	"mixedclock/internal/trace"
)

func TestLookupWorkload(t *testing.T) {
	for _, w := range trace.Workloads() {
		got, err := lookupWorkload(w.String())
		if err != nil || got != w {
			t.Errorf("lookup %q = %v, %v", w.String(), got, err)
		}
	}
	if _, err := lookupWorkload("nonsense"); err == nil {
		t.Error("unknown workload accepted")
	}
}

func TestRunWritesTrace(t *testing.T) {
	out := filepath.Join(t.TempDir(), "t.jsonl")
	if err := run("hotset", 10, 10, 50, 0.25, 3, out); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	tr, err := event.ReadJSONL(f)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 50 {
		t.Fatalf("trace has %d events, want 50", tr.Len())
	}
	s := tr.Summarize()
	if s.Reads == 0 {
		t.Error("read fraction ignored")
	}
}

func TestRunRejectsBadConfig(t *testing.T) {
	if err := run("uniform", -1, 10, 10, 0, 1, filepath.Join(t.TempDir(), "x")); err == nil {
		t.Error("negative threads accepted")
	}
	if err := run("nope", 10, 10, 10, 0, 1, filepath.Join(t.TempDir(), "x")); err == nil {
		t.Error("unknown workload accepted")
	}
	if err := run("uniform", 10, 10, 10, 0, 1, "/nonexistent-dir/x.jsonl"); err == nil {
		t.Error("unwritable path accepted")
	}
}
