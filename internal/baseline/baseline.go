// Package baseline implements the classical timestamping schemes the paper
// compares against (§II and §VI): the thread-based vector clock (one
// component per thread), the object-based vector clock (one component per
// object), and the Agarwal–Garg chain clock. It also provides the
// Singhal–Kshemkalyani differential encoding, an orthogonal overhead
// reduction the related-work section notes can be layered on any of these
// clocks, including the paper's mixed clock.
package baseline

import (
	"fmt"

	"mixedclock/internal/event"
	"mixedclock/internal/vclock"
)

// ThreadClock is the classical shared-memory vector clock with one component
// per thread (§II): on event e by thread p on object q,
//
//	e.V = max(p.V, q.V); e.V[p]++
//
// and both p and q adopt e.V.
type ThreadClock struct {
	nThreads int
	threads  []vclock.Vector
	objects  []vclock.Vector
}

// NewThreadClock returns a thread-based clock for a computation with the
// given dimensions.
func NewThreadClock(nThreads, nObjects int) *ThreadClock {
	return &ThreadClock{
		nThreads: nThreads,
		threads:  make([]vclock.Vector, nThreads),
		objects:  make([]vclock.Vector, nObjects),
	}
}

// Timestamp implements clock.Timestamper.
func (c *ThreadClock) Timestamp(e event.Event) vclock.Vector {
	v := c.threads[e.Thread].Merge(c.objects[e.Object])
	v = v.Grow(c.nThreads)
	v[e.Thread]++
	c.threads[e.Thread] = v
	c.objects[e.Object] = v
	return v.Clone()
}

// Components implements clock.Timestamper.
func (c *ThreadClock) Components() int { return c.nThreads }

// Name implements clock.Timestamper.
func (c *ThreadClock) Name() string { return "thread-based" }

// ObjectClock is the object-based vector clock with one component per object
// (§II): e.V = max(p.V, q.V); e.V[q]++.
type ObjectClock struct {
	nObjects int
	threads  []vclock.Vector
	objects  []vclock.Vector
}

// NewObjectClock returns an object-based clock for a computation with the
// given dimensions.
func NewObjectClock(nThreads, nObjects int) *ObjectClock {
	return &ObjectClock{
		nObjects: nObjects,
		threads:  make([]vclock.Vector, nThreads),
		objects:  make([]vclock.Vector, nObjects),
	}
}

// Timestamp implements clock.Timestamper.
func (c *ObjectClock) Timestamp(e event.Event) vclock.Vector {
	v := c.threads[e.Thread].Merge(c.objects[e.Object])
	v = v.Grow(c.nObjects)
	v[e.Object]++
	c.threads[e.Thread] = v
	c.objects[e.Object] = v
	return v.Clone()
}

// Components implements clock.Timestamper.
func (c *ObjectClock) Components() int { return c.nObjects }

// Name implements clock.Timestamper.
func (c *ObjectClock) Name() string { return "object-based" }

// sizedTimestamper is the subset of clock.Timestamper the baselines satisfy;
// declared locally to verify interface compliance without importing the
// clock package (which would not cycle, but keeps baseline dependency-light).
type sizedTimestamper interface {
	Timestamp(e event.Event) vclock.Vector
	Components() int
	Name() string
}

var (
	_ sizedTimestamper = (*ThreadClock)(nil)
	_ sizedTimestamper = (*ObjectClock)(nil)
	_ sizedTimestamper = (*ChainClock)(nil)
)

// ChainClock implements a greedy variant of the Agarwal–Garg chain clock
// (PODC 2005, discussed in §VI): components correspond to chains of a chain
// decomposition built online. A new event e may extend a chain exactly when
// the chain's current top is dominated by e's merged vector — the top is then
// a real event that happened before e, so appending e keeps the chain totally
// ordered. This implementation tries, in order,
//
//  1. the chain of e's thread's previous event,
//  2. the chain of e's object's previous event,
//  3. every other chain, lowest index first,
//
// and opens a new chain when none qualifies. The greedy scan does not carry
// the original paper's optimality guarantee ((w+1)·w/2 chains via online
// antichain decomposition) — see DESIGN.md §5 — but it is a valid vector
// clock, and on the evaluation workloads it stays at or below the number of
// threads (asserted in tests).
type ChainClock struct {
	threads map[event.ThreadID]vclock.Vector
	objects map[event.ObjectID]vclock.Vector
	// threadChain / objectChain remember the chain index of the entity's
	// latest event.
	threadChain map[event.ThreadID]int
	objectChain map[event.ObjectID]int
	// top[c] is the timestamp of the latest event on chain c.
	top []vclock.Vector
}

// NewChainClock returns an empty chain clock; it grows as events arrive.
func NewChainClock() *ChainClock {
	return &ChainClock{
		threads:     make(map[event.ThreadID]vclock.Vector),
		objects:     make(map[event.ObjectID]vclock.Vector),
		threadChain: make(map[event.ThreadID]int),
		objectChain: make(map[event.ObjectID]int),
	}
}

// extendable reports whether chain ch's top is dominated by (or equal to)
// merged, i.e. whether the top event happened before the incoming event.
func (c *ChainClock) extendable(ch int, merged vclock.Vector) bool {
	ord := c.top[ch].Compare(merged)
	return ord == vclock.Before || ord == vclock.Equal
}

// Timestamp implements clock.Timestamper.
func (c *ChainClock) Timestamp(e event.Event) vclock.Vector {
	merged := c.threads[e.Thread].Merge(c.objects[e.Object])

	chain := -1
	if ch, ok := c.threadChain[e.Thread]; ok && c.extendable(ch, merged) {
		chain = ch
	}
	if chain < 0 {
		if ch, ok := c.objectChain[e.Object]; ok && c.extendable(ch, merged) {
			chain = ch
		}
	}
	if chain < 0 {
		for ch := range c.top {
			if c.extendable(ch, merged) {
				chain = ch
				break
			}
		}
	}
	if chain < 0 {
		chain = len(c.top)
		c.top = append(c.top, nil)
	}

	v := merged.Tick(chain)
	c.top[chain] = v
	c.threads[e.Thread] = v
	c.objects[e.Object] = v
	c.threadChain[e.Thread] = chain
	c.objectChain[e.Object] = chain
	return v.Clone()
}

// Components implements clock.Timestamper: the number of chains opened.
func (c *ChainClock) Components() int { return len(c.top) }

// Name implements clock.Timestamper.
func (c *ChainClock) Name() string { return "chain" }

// String summarizes the clock for debugging.
func (c *ChainClock) String() string {
	return fmt.Sprintf("chainclock{chains=%d threads=%d objects=%d}",
		len(c.top), len(c.threads), len(c.objects))
}
