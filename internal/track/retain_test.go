package track

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
	"time"

	"mixedclock/internal/tlog"
)

// buildEpochs drives a spilling tracker through two epochs with several
// segments each and returns it (epoch 1 current, epoch 0 graduated).
func buildEpochs(t *testing.T, dir string) *Tracker {
	t.Helper()
	tr, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	th := tr.NewThread("t0")
	ob := tr.NewObject("o0")
	for s := 0; s < 3; s++ {
		for i := 0; i < 10; i++ {
			th.Write(ob, nil)
		}
		if err := tr.Seal(); err != nil {
			t.Fatal(err)
		}
	}
	if _, _, err := tr.Compact(); err != nil { // graduates epoch 0
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		th.Write(ob, nil)
	}
	if err := tr.Seal(); err != nil {
		t.Fatal(err)
	}
	return tr
}

// TestRetainGraduatedOnly: a byte budget of 1 retires every graduated
// (closed-epoch) segment and nothing from the current epoch, deletes exactly
// those files, publishes the floor, and keeps the tracker replayable above
// it.
func TestRetainGraduatedOnly(t *testing.T) {
	dir := t.TempDir()
	tr := buildEpochs(t, dir)
	defer tr.Close()
	segsBefore := tr.Segments()
	epoch := tr.Epoch()
	var graduated int
	var floor int
	for _, sg := range segsBefore {
		if sg.Epoch < epoch {
			graduated++
			floor = sg.FirstIndex + sg.Events
		}
	}
	if graduated == 0 {
		t.Fatal("workload produced no graduated segments")
	}

	n, err := tr.RetainSegments(RetainPolicy{MaxBytes: 1})
	if err != nil {
		t.Fatal(err)
	}
	if n != graduated {
		t.Fatalf("retired %d segments, want all %d graduated ones", n, graduated)
	}
	if got := tr.RetainedEvents(); got != floor {
		t.Errorf("RetainedEvents = %d, want %d", got, floor)
	}
	for _, sg := range segsBefore {
		_, err := os.Stat(sg.Path)
		if sg.Epoch < epoch && !os.IsNotExist(err) {
			t.Errorf("graduated segment %s not deleted", sg.Path)
		}
		if sg.Epoch == epoch && err != nil {
			t.Errorf("current-epoch segment %s gone: %v", sg.Path, err)
		}
	}
	// A second pass has nothing left to do: the current epoch never retires.
	if n, err := tr.RetainSegments(RetainPolicy{MaxBytes: 1}); err != nil || n != 0 {
		t.Errorf("second pass retired %d (err %v), want 0", n, err)
	}
	// The published catalog carries the floor and stays gapless above it.
	f, err := os.Open(filepath.Join(dir, tlog.CatalogFileName))
	if err != nil {
		t.Fatal(err)
	}
	c, err := tlog.DecodeCatalog(f)
	f.Close()
	if err != nil {
		t.Fatal(err)
	}
	if c.RetainedEvents != floor {
		t.Errorf("catalog floor %d, want %d", c.RetainedEvents, floor)
	}
	// Replay starts at the floor; stamps below it are gone.
	tr2 := tr // same tracker: Snapshot must deliver only [floor, end)
	trace := tr2.Trace()
	if want := tr.Events() - floor; trace.Len() != want {
		t.Errorf("post-retention trace holds %d events, want %d", trace.Len(), want)
	}
	if err := tr.Err(); err != nil {
		t.Fatalf("healthy retention left Err = %v", err)
	}
}

// TestRetainStampRetired: a lazy stamp below the floor materializes as nil
// and notes the retirement in Err instead of panicking or inventing zeros.
func TestRetainStampRetired(t *testing.T) {
	dir := t.TempDir()
	tr, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	th, ob := tr.NewThread("t0"), tr.NewObject("o0")
	early := th.Write(ob, nil)
	for i := 0; i < 9; i++ {
		th.Write(ob, nil)
	}
	if err := tr.Seal(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := tr.Compact(); err != nil {
		t.Fatal(err)
	}
	if _, err := tr.RetainSegments(RetainPolicy{MaxBytes: 1}); err != nil {
		t.Fatal(err)
	}
	if v := early.Vector(); v != nil {
		t.Errorf("retired stamp materialized as %v, want nil", v)
	}
	if tr.Err() == nil {
		t.Error("retired-stamp access not noted in Err")
	}
}

// TestRetainMaxAge: only graduated segments older than MaxAge retire.
func TestRetainMaxAge(t *testing.T) {
	dir := t.TempDir()
	tr := buildEpochs(t, dir)
	defer tr.Close()
	// Nothing is old enough yet.
	if n, err := tr.RetainSegments(RetainPolicy{MaxAge: time.Hour}); err != nil || n != 0 {
		t.Fatalf("young segments retired: n=%d err=%v", n, err)
	}
	// Backdate the first graduated segment (internal surgery — the seal
	// clock is wall time, which tests cannot wait out).
	tr.world.Lock()
	tr.hist.Load().segs[0].sealedAt = time.Now().Add(-2 * time.Hour)
	tr.world.Unlock()
	n, err := tr.RetainSegments(RetainPolicy{MaxAge: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("retired %d segments, want exactly the backdated one", n)
	}
}

// TestRetainArchive: retired files move to the archive directory instead of
// being deleted, under their original names.
func TestRetainArchive(t *testing.T) {
	dir := t.TempDir()
	archive := filepath.Join(t.TempDir(), "cold")
	tr := buildEpochs(t, dir)
	defer tr.Close()
	var names []string
	epoch := tr.Epoch()
	for _, sg := range tr.Segments() {
		if sg.Epoch < epoch {
			names = append(names, filepath.Base(sg.Path))
		}
	}
	n, err := tr.RetainSegments(RetainPolicy{MaxBytes: 1, Archive: archive})
	if err != nil {
		t.Fatal(err)
	}
	if n != len(names) {
		t.Fatalf("retired %d, want %d", n, len(names))
	}
	for _, name := range names {
		if _, err := os.Stat(filepath.Join(archive, name)); err != nil {
			t.Errorf("archived segment %s: %v", name, err)
		}
		if _, err := os.Stat(filepath.Join(dir, name)); !os.IsNotExist(err) {
			t.Errorf("archived segment %s still in spill dir", name)
		}
	}
}

// TestRetainThenReopen: the floor survives a crash-reopen and the reopened
// tracker replays exactly the surviving suffix.
func TestRetainThenReopen(t *testing.T) {
	dir := t.TempDir()
	tr := buildEpochs(t, dir)
	if _, err := tr.RetainSegments(RetainPolicy{MaxBytes: 1}); err != nil {
		t.Fatal(err)
	}
	floor := tr.RetainedEvents()
	events := tr.Events()
	var want bytes.Buffer
	if err := tr.SnapshotTo(&want); err != nil {
		t.Fatal(err)
	}
	// Crash: no Close.

	re, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if err := re.Err(); err != nil {
		t.Fatalf("reopen after retention: %v", err)
	}
	ri := re.Recovery()
	if ri.RetainedFloor != floor {
		t.Errorf("recovered floor %d, want %d", ri.RetainedFloor, floor)
	}
	if ri.Events != events {
		t.Errorf("recovered %d events, want %d", ri.Events, events)
	}
	var got bytes.Buffer
	if err := re.SnapshotTo(&got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Bytes(), want.Bytes()) {
		t.Error("post-retention replay differs after reopen")
	}
}

// TestAutoRetention: WithStore arms retention on the seal path.
func TestAutoRetention(t *testing.T) {
	dir := t.TempDir()
	tr, err := Open(dir, WithStore(Store{
		Spill:  SpillPolicy{Dir: dir},
		Retain: RetainPolicy{MaxBytes: 1},
	}))
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	th, ob := tr.NewThread("t0"), tr.NewObject("o0")
	for i := 0; i < 10; i++ {
		th.Write(ob, nil)
	}
	if err := tr.Seal(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := tr.Compact(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		th.Write(ob, nil)
	}
	// This seal graduates nothing new, but the epoch-0 segment is now
	// over-budget and graduated: the automatic pass must retire it.
	if err := tr.Seal(); err != nil {
		t.Fatal(err)
	}
	if got := tr.RetainedEvents(); got != 10 {
		t.Errorf("auto retention floor %d, want 10", got)
	}
}
