package track

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"mixedclock/internal/event"
	"mixedclock/internal/tlog"
	"mixedclock/internal/vclock"
)

// runSealedWorkload drives nThreads goroutine-free threads over nObjects
// objects for rounds round-robin rounds, sealing as the policy dictates, and
// returns the tracker (NOT closed — the unsealed suffix is the caller's to
// lose).
func runSealedWorkload(t *testing.T, dir string, nThreads, nObjects, rounds int) *Tracker {
	t.Helper()
	tr, err := Open(dir, WithStore(Store{Spill: SpillPolicy{Dir: dir}}))
	if err != nil {
		t.Fatal(err)
	}
	threads := make([]*Thread, nThreads)
	for i := range threads {
		threads[i] = tr.NewThread(fmt.Sprintf("t%d", i))
	}
	objects := make([]*Object, nObjects)
	for i := range objects {
		objects[i] = tr.NewObject(fmt.Sprintf("o%d", i))
	}
	for r := 0; r < rounds; r++ {
		for i, th := range threads {
			th.Write(objects[(r+i)%nObjects], nil)
		}
	}
	return tr
}

func snapshotBytes(t *testing.T, tr *Tracker) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := tr.SnapshotTo(&buf); err != nil {
		t.Fatalf("SnapshotTo: %v", err)
	}
	return buf.Bytes()
}

// TestRecoverRoundTrip is the acceptance round trip: run with spilling, seal,
// crash without Close, reopen, and demand byte-identical replay of the
// sealed prefix plus correct resumption of epoch, trace index and clocks.
func TestRecoverRoundTrip(t *testing.T) {
	dir := t.TempDir()
	tr := runSealedWorkload(t, dir, 3, 2, 10)
	if _, _, err := tr.Compact(); err != nil { // epoch 0 -> 1
		t.Fatal(err)
	}
	threads, objects := tr.Threads(), tr.Objects()
	for r := 0; r < 5; r++ {
		for i, th := range threads {
			th.Write(objects[i%len(objects)], nil)
		}
	}
	wantEpoch := tr.Epoch()
	// The last pre-crash sealed stamp of t0 — recovery must rebuild t0's
	// clock to dominate it.
	lastSealed := threads[0].Write(objects[0], nil).Vector()
	if err := tr.Seal(); err != nil {
		t.Fatal(err)
	}
	sealedEvents := tr.Events()
	want := snapshotBytes(t, tr)
	// Commits after the last seal are the unsealed suffix a crash loses.
	for i, th := range threads {
		th.Write(objects[(i+1)%len(objects)], nil)
	}
	// Simulated crash: the tracker is abandoned without Close.

	re, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	ri := re.Recovery()
	if ri == nil {
		t.Fatal("Recovery() = nil after Open of a used directory")
	}
	if ri.CleanClose {
		t.Error("CleanClose = true for a crashed run")
	}
	if ri.Events != sealedEvents {
		t.Errorf("recovered %d events, want %d", ri.Events, sealedEvents)
	}
	if re.Epoch() != wantEpoch {
		t.Errorf("recovered epoch %d, want %d", re.Epoch(), wantEpoch)
	}
	if len(ri.Quarantined) != 0 {
		t.Errorf("clean catalog quarantined %v", ri.Quarantined)
	}
	if err := re.Err(); err != nil {
		t.Errorf("Err after clean recovery: %v", err)
	}
	if got := snapshotBytes(t, re); !bytes.Equal(got, want) {
		t.Fatalf("recovered SnapshotTo differs: %d bytes vs %d", len(got), len(want))
	}
	// Committing resumes at the next index, in the same epoch, with clocks
	// that dominate the crashed run's sealed stamps.
	rth, rob := re.Threads(), re.Objects()
	if len(rth) != 3 || len(rob) != 2 {
		t.Fatalf("recovered %d threads / %d objects, want 3/2", len(rth), len(rob))
	}
	if rth[0].Name() != "t0" || rob[0].Name() != "o0" {
		t.Errorf("recovered names %q/%q, want t0/o0", rth[0].Name(), rob[0].Name())
	}
	s := rth[0].Write(rob[0], nil)
	if s.Event.Index != sealedEvents {
		t.Errorf("first resumed commit at index %d, want %d", s.Event.Index, sealedEvents)
	}
	if s.Epoch != wantEpoch {
		t.Errorf("resumed commit in epoch %d, want %d", s.Epoch, wantEpoch)
	}
	if got := lastSealed.Compare(s.Vector()); got != vclock.Before {
		t.Errorf("sealed stamp vs resumed stamp = %v, want Before (clock continuity)", got)
	}
	if err := re.Err(); err != nil {
		t.Fatal(err)
	}
}

// TestRecoverAfterClose reopens a cleanly closed run.
func TestRecoverAfterClose(t *testing.T) {
	dir := t.TempDir()
	tr := runSealedWorkload(t, dir, 2, 2, 6)
	n := tr.Events()
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	// Close sealed the tail; the catalog must say so.
	f, err := os.Open(filepath.Join(dir, tlog.CatalogFileName))
	if err != nil {
		t.Fatal(err)
	}
	c, err := tlog.DecodeCatalog(f)
	f.Close()
	if err != nil {
		t.Fatal(err)
	}
	if !c.Closed {
		t.Error("published catalog not marked Closed after Close")
	}
	if c.SealedEvents != n {
		t.Errorf("catalog seals %d events, want %d", c.SealedEvents, n)
	}

	re, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if ri := re.Recovery(); !ri.CleanClose {
		t.Error("CleanClose = false after a clean Close")
	}
	if re.Events() != n {
		t.Errorf("recovered %d events, want %d", re.Events(), n)
	}
	if s := re.Threads()[0].Write(re.Objects()[0], nil); s.Event.Index != n {
		t.Errorf("resumed at index %d, want %d", s.Event.Index, n)
	}
}

// TestCloseSemantics: Do panics, mutating lifecycle calls error, reads keep
// working, double Close is a no-op.
func TestCloseSemantics(t *testing.T) {
	dir := t.TempDir()
	tr := runSealedWorkload(t, dir, 1, 1, 3)
	th, ob := tr.Threads()[0], tr.Objects()[0]
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	if err := tr.Close(); err != nil {
		t.Errorf("second Close: %v", err)
	}
	if err := tr.Seal(); err == nil {
		t.Error("Seal on a closed Tracker succeeded")
	}
	if _, _, err := tr.Compact(); err == nil {
		t.Error("Compact on a closed Tracker succeeded")
	}
	if _, err := tr.CompactSegments(CompactPolicy{}); err == nil {
		t.Error("CompactSegments on a closed Tracker succeeded")
	}
	if _, err := tr.RetainSegments(RetainPolicy{MaxBytes: 1}); err == nil {
		t.Error("RetainSegments on a closed Tracker succeeded")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("Do on a closed Tracker did not panic")
			}
		}()
		th.Write(ob, nil)
	}()
	// Post-mortem reads still work.
	if got := snapshotBytes(t, tr); len(got) == 0 {
		t.Error("SnapshotTo empty after Close")
	}
	if tr.Events() != 3 {
		t.Errorf("Events = %d after Close, want 3", tr.Events())
	}
}

// TestRecoverOrphanSegment: a seal that crashed after its rename but before
// its catalog publication leaves an unlisted .mvcseg; reopen quarantines it
// without giving up the listed history (same epoch, mode A).
func TestRecoverOrphanSegment(t *testing.T) {
	dir := t.TempDir()
	tr := runSealedWorkload(t, dir, 2, 2, 8)
	if err := tr.Seal(); err != nil {
		t.Fatal(err)
	}
	n, epoch := tr.Events(), tr.Epoch()
	want := snapshotBytes(t, tr)
	// Forge the orphan: a valid-looking segment file the catalog never saw.
	orphan := filepath.Join(dir, tlog.SegmentFileName(tlog.SegmentMeta{FirstIndex: n, Count: 5}))
	if err := os.WriteFile(orphan, []byte("MVCSEG01 torn mid-write"), 0o666); err != nil {
		t.Fatal(err)
	}

	re, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	ri := re.Recovery()
	if len(ri.Quarantined) != 1 || !strings.HasSuffix(ri.Quarantined[0], tlog.QuarantineSuffix) {
		t.Fatalf("Quarantined = %v, want the one orphan", ri.Quarantined)
	}
	if re.Epoch() != epoch || ri.Events != n {
		t.Errorf("orphan forced epoch %d events %d, want mode A (%d, %d)", re.Epoch(), ri.Events, epoch, n)
	}
	if re.Err() == nil {
		t.Error("quarantine not surfaced through Err/health")
	}
	if got := snapshotBytes(t, re); !bytes.Equal(got, want) {
		t.Error("orphan quarantine changed the replay")
	}
	if _, err := os.Stat(orphan); !os.IsNotExist(err) {
		t.Error("orphan still matches *.mvcseg after quarantine")
	}
}

// TestRecoverTruncatedTail and TestRecoverBitFlippedTail: damage to a listed
// segment quarantines it (and the rest), reopens with health, never panics,
// and starts a fresh epoch.
func TestRecoverTruncatedTail(t *testing.T) {
	testRecoverDamagedTail(t, func(data []byte) []byte { return data[:len(data)/2] })
}
func TestRecoverBitFlippedTail(t *testing.T) {
	testRecoverDamagedTail(t, func(data []byte) []byte {
		data[len(data)-3] ^= 0x40
		return data
	})
}

func testRecoverDamagedTail(t *testing.T, damage func([]byte) []byte) {
	t.Helper()
	dir := t.TempDir()
	tr := runSealedWorkload(t, dir, 2, 2, 6)
	if err := tr.Seal(); err != nil {
		t.Fatal(err)
	}
	firstEnd := tr.Events()
	epoch := tr.Epoch()
	want := snapshotBytes(t, tr)
	threads, objects := tr.Threads(), tr.Objects()
	for i, th := range threads {
		th.Write(objects[i%len(objects)], nil)
	}
	if err := tr.Seal(); err != nil { // second segment — the tail to damage
		t.Fatal(err)
	}
	segs := tr.Segments()
	if len(segs) < 2 {
		t.Fatalf("want >= 2 segments, have %d", len(segs))
	}
	last := segs[len(segs)-1]
	data, err := os.ReadFile(last.Path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(last.Path, damage(data), 0o666); err != nil {
		t.Fatal(err)
	}

	re, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	ri := re.Recovery()
	if len(ri.Quarantined) == 0 {
		t.Fatal("damaged tail not quarantined")
	}
	if ri.Events != firstEnd {
		t.Errorf("recovered %d events, want the intact prefix %d", ri.Events, firstEnd)
	}
	if re.Epoch() != epoch+1 {
		t.Errorf("damaged tail resumed epoch %d, want fresh epoch %d", re.Epoch(), epoch+1)
	}
	if re.Err() == nil {
		t.Error("damage not surfaced through Err/health")
	}
	if got := snapshotBytes(t, re); !bytes.Equal(got, want) {
		t.Error("intact prefix replay changed")
	}
	// Still a working tracker.
	if s := re.Threads()[0].Write(re.Objects()[0], nil); s.Event.Index != firstEnd {
		t.Errorf("resumed at index %d, want %d", s.Event.Index, firstEnd)
	}
}

// TestRecoverTornCatalogFallsBackToPrev: a torn catalog.json is quarantined
// and the .prev copy restores the previous generation's listing.
func TestRecoverTornCatalogPrevFallback(t *testing.T) {
	dir := t.TempDir()
	tr := runSealedWorkload(t, dir, 2, 2, 6)
	if err := tr.Seal(); err != nil {
		t.Fatal(err)
	}
	// A second publication so catalog.json.prev exists.
	threads, objects := tr.Threads(), tr.Objects()
	threads[0].Write(objects[0], nil)
	if err := tr.Seal(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, tlog.CatalogPrevFileName)); err != nil {
		t.Fatalf("no prev catalog after two publications: %v", err)
	}
	prevRaw, err := os.ReadFile(filepath.Join(dir, tlog.CatalogPrevFileName))
	if err != nil {
		t.Fatal(err)
	}
	var prevCat *tlog.Catalog
	if prevCat, err = tlog.DecodeCatalog(bytes.NewReader(prevRaw)); err != nil {
		t.Fatal(err)
	}
	// Tear the current catalog mid-write.
	cur := filepath.Join(dir, tlog.CatalogFileName)
	raw, err := os.ReadFile(cur)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(cur, raw[:len(raw)/3], 0o666); err != nil {
		t.Fatal(err)
	}

	re, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	ri := re.Recovery()
	if !ri.UsedPrevCatalog {
		t.Error("UsedPrevCatalog = false after torn catalog")
	}
	if ri.Events != prevCat.SealedEvents {
		t.Errorf("recovered %d events, want prev generation's %d", ri.Events, prevCat.SealedEvents)
	}
	// The last seal's segment is unlisted in the prev generation: orphaned.
	if len(ri.Quarantined) < 2 { // torn catalog + orphan segment
		t.Errorf("Quarantined = %v, want torn catalog and orphan segment", ri.Quarantined)
	}
}

// TestRecoverTornCatalogNoPrev: with both catalog copies unusable nothing is
// trusted — every segment is set aside and the run restarts empty, never
// panicking.
func TestRecoverTornCatalogNoPrev(t *testing.T) {
	dir := t.TempDir()
	tr := runSealedWorkload(t, dir, 2, 2, 6)
	if err := tr.Seal(); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, tlog.CatalogFileName), []byte("{torn"), 0o666); err != nil {
		t.Fatal(err)
	}
	os.Remove(filepath.Join(dir, tlog.CatalogPrevFileName))

	re, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	ri := re.Recovery()
	if ri.Events != 0 || ri.Segments != 0 {
		t.Errorf("recovered %d events / %d segments from an unanchored directory", ri.Events, ri.Segments)
	}
	if len(ri.Quarantined) < 2 { // the torn catalog + at least one segment
		t.Errorf("Quarantined = %v, want catalog and segments", ri.Quarantined)
	}
	if re.Err() == nil {
		t.Error("total loss not surfaced through Err/health")
	}
	// Fresh but functional.
	th, ob := re.NewThread("t"), re.NewObject("o")
	if s := th.Write(ob, nil); s.Event.Index != 0 {
		t.Errorf("fresh run started at index %d", s.Event.Index)
	}
}

// TestRecoverMovedDir: catalog paths are relative, so a spill directory can
// be copied elsewhere and opened there with byte-identical replay.
func TestRecoverMovedDir(t *testing.T) {
	dir := t.TempDir()
	tr := runSealedWorkload(t, dir, 3, 2, 8)
	if err := tr.Seal(); err != nil {
		t.Fatal(err)
	}
	want := snapshotBytes(t, tr)
	// Segments() must report paths under the original dir (a joined path,
	// not a bare name).
	for _, sg := range tr.Segments() {
		if !filepath.IsAbs(sg.Path) && !strings.HasPrefix(sg.Path, dir) {
			t.Errorf("Segments path %q not under %q", sg.Path, dir)
		}
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}

	moved := filepath.Join(t.TempDir(), "moved")
	if err := os.MkdirAll(moved, 0o777); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(moved, e.Name()), data, 0o666); err != nil {
			t.Fatal(err)
		}
	}

	re, err := Open(moved)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if err := re.Err(); err != nil {
		t.Fatalf("Err after opening the moved copy: %v", err)
	}
	if got := snapshotBytes(t, re); !bytes.Equal(got, want) {
		t.Fatal("moved-dir SnapshotTo differs from the original")
	}
}

// TestOpenValidatesOptions: Open rejects what NewTracker tolerates.
func TestOpenValidatesOptions(t *testing.T) {
	if _, err := Open(t.TempDir(), WithStore(Store{Spill: SpillPolicy{SealEvents: -1}})); err == nil {
		t.Error("Open accepted a negative SealEvents")
	}
	if _, err := Open(t.TempDir(), WithRetention(RetainPolicy{MaxBytes: -1})); err == nil {
		t.Error("Open accepted a negative RetainPolicy.MaxBytes")
	}
	if _, err := Open(t.TempDir(), WithSpill(SpillPolicy{Dir: "/somewhere/else"})); err == nil {
		t.Error("Open accepted a conflicting WithSpill directory")
	}
	dir := t.TempDir()
	if _, err := Open(dir, WithStore(Store{Retain: RetainPolicy{MaxBytes: 1, Archive: dir}})); err == nil {
		t.Error("Open accepted Archive == spill dir")
	}
	// Empty dir means in-memory, for symmetry; no recovery, no files.
	tr, err := Open("")
	if err != nil {
		t.Fatal(err)
	}
	if tr.Recovery() != nil {
		t.Error("in-memory Open reported a recovery")
	}
	th, ob := tr.NewThread("t"), tr.NewObject("o")
	th.Write(ob, nil)
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	// NewTracker stays lenient.
	if ltr := NewTracker(WithStore(Store{Spill: SpillPolicy{SealEvents: -1}})); ltr == nil {
		t.Error("NewTracker rejected an invalid store")
	}
}

// TestRecoverResumeRaces reopens a directory and immediately hammers the
// recovered tracker from many goroutines — commits racing Stream, Seal and
// Compact — to prove the reconstructed state is as concurrent-safe as a
// fresh tracker's. (Run under -race in the stress step.)
func TestRecoverResumeRaces(t *testing.T) {
	dir := t.TempDir()
	tr := runSealedWorkload(t, dir, 4, 3, 10)
	if err := tr.Seal(); err != nil {
		t.Fatal(err)
	}
	pre := tr.Events()

	re, err := Open(dir, WithStore(Store{Spill: SpillPolicy{Dir: dir, SealEvents: 64}}))
	if err != nil {
		t.Fatal(err)
	}
	threads, objects := re.Threads(), re.Objects()
	const perThread = 200
	var wg sync.WaitGroup
	for i, th := range threads {
		wg.Add(1)
		go func(i int, th *Thread) {
			defer wg.Done()
			for k := 0; k < perThread; k++ {
				op := event.OpWrite
				if k%3 == 0 {
					op = event.OpRead
				}
				th.Do(objects[(i+k)%len(objects)], op, nil)
			}
		}(i, th)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for k := 0; k < 5; k++ {
			var buf bytes.Buffer
			if err := re.SnapshotTo(&buf); err != nil {
				t.Errorf("SnapshotTo during races: %v", err)
			}
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		if err := re.Seal(); err != nil {
			t.Errorf("Seal during races: %v", err)
		}
	}()
	wg.Wait()
	if got, want := re.Events(), pre+len(threads)*perThread; got != want {
		t.Errorf("Events = %d, want %d", got, want)
	}
	if err := re.Close(); err != nil {
		t.Fatal(err)
	}
	if err := re.Err(); err != nil {
		t.Fatal(err)
	}
	// And the whole thing reopens once more.
	re2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer re2.Close()
	if re2.Events() != pre+len(threads)*perThread {
		t.Errorf("second reopen at %d events, want %d", re2.Events(), pre+len(threads)*perThread)
	}
	if err := re2.Err(); err != nil {
		t.Fatal(err)
	}
}
