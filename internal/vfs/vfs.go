// Package vfs is the narrow filesystem seam under the durable store. Every
// path that makes tracking durable — segment spilling, catalog publication,
// recovery, retention, shipping — performs its I/O through the FS interface
// instead of the os package, so the whole storage layer can be exercised
// under injected faults without touching a real disk's failure modes.
//
// Two implementations ship:
//
//   - OS, the default, forwards every call to the os package unchanged. It
//     is a zero-state passthrough — one interface dispatch per filesystem
//     call, nothing on the commit hot path (commits never touch the VFS;
//     only seals, compactions and recovery do).
//   - Faulty (faulty.go) wraps another FS with a deterministic fault
//     injector: fail the Nth matching operation with a chosen error
//     (ENOSPC, EIO, a failed fsync), tear a write partway through, or
//     "crash" — freeze the directory at an arbitrary durable-op index so a
//     test can reopen the exact state a power cut at that moment would
//     have left.
//
// The interface is deliberately small: just the calls the store actually
// makes. Callers that need directory listings use ReadDir plus the Glob
// helper rather than a richer walking API.
package vfs

import (
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
)

// File is one open file: sequential reads and writes, an fsync, a close.
// *os.File satisfies it.
type File interface {
	io.Reader
	io.Writer
	io.Closer
	// Sync flushes the file's written data to stable storage (fsync).
	Sync() error
	// Name returns the name the file was opened with.
	Name() string
}

// FS is the filesystem surface the durable store runs on. Implementations
// must be safe for concurrent use by multiple goroutines.
type FS interface {
	// Create creates (or truncates) the named file for writing.
	Create(name string) (File, error)
	// CreateTemp creates a new temporary file in dir per os.CreateTemp.
	CreateTemp(dir, pattern string) (File, error)
	// Open opens the named file for reading.
	Open(name string) (File, error)
	// Rename atomically renames oldpath to newpath.
	Rename(oldpath, newpath string) error
	// Remove deletes the named file.
	Remove(name string) error
	// ReadDir lists the named directory, sorted by filename.
	ReadDir(name string) ([]fs.DirEntry, error)
	// MkdirAll creates the named directory and any missing parents.
	MkdirAll(name string) error
	// SyncDir fsyncs the named directory, making completed renames within
	// it durable.
	SyncDir(name string) error
	// Stat returns file metadata for the named file.
	Stat(name string) (fs.FileInfo, error)
}

// OS is the default FS: a stateless passthrough to the os package.
var OS FS = osFS{}

type osFS struct{}

func (osFS) Create(name string) (File, error)             { return os.Create(name) }
func (osFS) CreateTemp(dir, pattern string) (File, error) { return os.CreateTemp(dir, pattern) }
func (osFS) Open(name string) (File, error)               { return os.Open(name) }
func (osFS) Rename(oldpath, newpath string) error         { return os.Rename(oldpath, newpath) }
func (osFS) Remove(name string) error                     { return os.Remove(name) }
func (osFS) ReadDir(name string) ([]fs.DirEntry, error)   { return os.ReadDir(name) }
func (osFS) MkdirAll(name string) error                   { return os.MkdirAll(name, 0o777) }
func (osFS) Stat(name string) (fs.FileInfo, error)        { return os.Stat(name) }

func (osFS) SyncDir(name string) error {
	d, err := os.Open(name)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

// ReadFile reads the named file whole through fsys.
func ReadFile(fsys FS, name string) ([]byte, error) {
	f, err := fsys.Open(name)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return io.ReadAll(f)
}

// WriteFile writes data to the named file through fsys, creating or
// truncating it. Like os.WriteFile it is NOT atomic and NOT synced — a
// fault partway through leaves a torn file at the final name — so it is
// only for best-effort artifacts whose readers validate on the way in.
func WriteFile(fsys FS, name string, data []byte) error {
	f, err := fsys.Create(name)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Glob returns the names in dir matching pattern (a filepath.Match pattern
// applied to base names), joined back onto dir, sorted. A missing directory
// is no matches, not an error; only a malformed pattern errs.
func Glob(fsys FS, dir, pattern string) ([]string, error) {
	// Validate the pattern even when the directory is unreadable, matching
	// filepath.Glob's contract.
	if _, err := filepath.Match(pattern, ""); err != nil {
		return nil, err
	}
	entries, err := fsys.ReadDir(dir)
	if err != nil {
		return nil, nil
	}
	var out []string
	for _, e := range entries {
		if ok, _ := filepath.Match(pattern, e.Name()); ok {
			out = append(out, filepath.Join(dir, e.Name()))
		}
	}
	sort.Strings(out)
	return out, nil
}
