package tlog

import (
	"bytes"
	"errors"
	"io"
	"testing"

	"mixedclock/internal/event"
	"mixedclock/internal/vclock"
)

// FuzzSegmentRoundTrip covers the segment container end to end: a
// computation derived from the fuzz input is sealed exactly the way the
// tracker seals its tail (delta payload + width table), read back, and
// compared record for record. The same input then drives the adversarial
// half — the sealed bytes are truncated and bit-flipped at input-chosen
// positions, and the raw input is also fed to the reader directly — where
// the only acceptable outcomes are a clean prefix or ErrTruncated/
// ErrCorrupt/ErrBadMagic, never a panic and never a reconstruction that
// busts the width budget (the inner delta reader meters it, so decoded
// widths stay proportional to bytes read).
func FuzzSegmentRoundTrip(f *testing.F) {
	f.Add([]byte{}, uint16(0), false)
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12}, uint16(7), true)
	f.Add(bytes.Repeat([]byte{0xfe, 0x01, 0x33}, 30), uint16(1000), false)
	// Seed the raw-input path with a real sealed segment so the fuzzer
	// starts from valid structure.
	{
		ev := []event.Event{{Thread: 0, Object: 1}, {Thread: 1, Object: 1}}
		st := []vclock.Vector{{1, 0}, {1, 1}}
		var payload bytes.Buffer
		w := NewDeltaWriter(&payload)
		for i := range ev {
			if err := w.Append(ev[i], st[i]); err != nil {
				f.Fatal(err)
			}
		}
		if err := w.Flush(); err != nil {
			f.Fatal(err)
		}
		data, err := AppendSegment(nil, SegmentMeta{Count: 2}, []int{2, 2}, payload.Bytes())
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data, uint16(3), true)
	}

	f.Fuzz(func(t *testing.T, data []byte, cut uint16, flip bool) {
		// Adversarial half A: the raw input as a segment file.
		mustNotPanic(t, data)

		// Constructive half: derive a computation (stamps need not be valid
		// clocks — the container must not care), seal, read back.
		src := data
		var events []event.Event
		var stamps []vclock.Vector
		var widths []int
		prev := map[event.ThreadID]vclock.Vector{}
		for len(src) >= 4 && len(events) < 150 {
			tid := event.ThreadID(src[0] % 5)
			oid := event.ObjectID(src[1] % 5)
			op := event.Op(src[2] % 2)
			grow := int(src[3] % 8)
			src = src[4:]
			v := prev[tid].Clone()
			for i := 0; i < grow && len(src) > 0; i++ {
				v = v.Set(len(v), uint64(src[0]))
				src = src[1:]
			}
			prev[tid] = v
			events = append(events, event.Event{Index: len(events), Thread: tid, Object: oid, Op: op})
			stamps = append(stamps, v.Clone())
			widths = append(widths, len(v))
		}
		var payload bytes.Buffer
		w := NewDeltaWriter(&payload)
		for i, e := range events {
			if err := w.Append(e, stamps[i]); err != nil {
				t.Fatal(err)
			}
		}
		if err := w.Flush(); err != nil {
			t.Fatal(err)
		}
		meta := SegmentMeta{Epoch: int(cut % 7), FirstIndex: int(cut % 1000), Count: len(events)}
		sealed, err := AppendSegment(nil, meta, widths, payload.Bytes())
		if err != nil {
			t.Fatal(err)
		}
		sr, err := NewSegmentReader(bytes.NewReader(sealed))
		if err != nil {
			t.Fatalf("sealed segment rejected: %v", err)
		}
		if sr.Meta() != meta {
			t.Fatalf("meta %+v, want %+v", sr.Meta(), meta)
		}
		for i := 0; ; i++ {
			e, v, err := sr.Next()
			if err == io.EOF {
				if i != len(events) {
					t.Fatalf("read %d of %d records", i, len(events))
				}
				break
			}
			if err != nil {
				t.Fatalf("record %d: %v", i, err)
			}
			want := events[i]
			want.Index = meta.FirstIndex + i
			if e != want {
				t.Fatalf("record %d: event %+v, want %+v", i, e, want)
			}
			if len(v) != widths[i] || !v.Equal(stamps[i]) {
				t.Fatalf("record %d: stamp %v (width %d), want %v (width %d)",
					i, v, len(v), stamps[i], widths[i])
			}
		}

		// Adversarial half B: truncate and bit-flip the sealed bytes at
		// input-chosen positions; the reader must fail cleanly or yield a
		// consistent prefix.
		if len(sealed) > 0 {
			at := int(cut) % len(sealed)
			mustNotPanic(t, sealed[:at])
			if flip {
				mut := bytes.Clone(sealed)
				mut[at] ^= 1 << (cut % 8)
				mustNotPanic(t, mut)
			}
		}
	})
}

// mustNotPanic reads data as a segment stream, accepting any outcome except
// a panic or an unexpected error class.
func mustNotPanic(t *testing.T, data []byte) {
	t.Helper()
	sr, err := NewSegmentReader(bytes.NewReader(data))
	if err != nil {
		if err == io.EOF || errors.Is(err, ErrTruncated) || errors.Is(err, ErrCorrupt) ||
			errors.Is(err, ErrBadMagic) {
			return
		}
		t.Fatalf("unexpected open error class: %v", err)
	}
	for {
		_, _, err := sr.Next()
		if err == io.EOF {
			return
		}
		if err != nil {
			if errors.Is(err, ErrTruncated) || errors.Is(err, ErrCorrupt) || errors.Is(err, ErrBadMagic) {
				return
			}
			t.Fatalf("unexpected record error class: %v", err)
		}
	}
}
