package mixedclock

import (
	"io"

	"mixedclock/internal/bipartite"
	"mixedclock/internal/clock"
	"mixedclock/internal/core"
	"mixedclock/internal/event"
	"mixedclock/internal/tlog"
	"mixedclock/internal/track"
	"mixedclock/internal/vclock"
)

// Re-exported model types. The library's packages live under internal/; the
// aliases below form the supported public surface.
type (
	// Event is one operation: Thread performed Op on Object.
	Event = event.Event
	// ThreadID identifies a thread (dense, 0-based).
	ThreadID = event.ThreadID
	// ObjectID identifies a shared object (dense, 0-based).
	ObjectID = event.ObjectID
	// Op distinguishes reads from writes (writes by default).
	Op = event.Op
	// Trace is an ordered computation.
	Trace = event.Trace

	// Vector is a growable vector timestamp.
	Vector = vclock.Vector
	// Ordering is the result of comparing two timestamps.
	Ordering = vclock.Ordering
	// Clock is the representation-independent timestamp interface; see
	// Backend for the available implementations.
	Clock = vclock.Clock
	// Backend selects a clock representation: Flat or Tree.
	Backend = vclock.Backend

	// Graph is the thread–object bipartite graph of a computation.
	Graph = bipartite.Graph

	// Component is one mixed-clock coordinate: a thread or an object.
	Component = core.Component
	// ComponentSet is an append-only ordered set of components.
	ComponentSet = core.ComponentSet
	// Analysis is the offline algorithm's result: graph, maximum matching,
	// minimum vertex cover, and optimal components.
	Analysis = core.Analysis
	// MixedClock timestamps events over a fixed component set.
	MixedClock = core.MixedClock
	// OnlineClock grows its component set as events reveal new edges.
	OnlineClock = core.OnlineMixedClock
	// Mechanism chooses components in the online setting.
	Mechanism = core.Mechanism
	// NaiveThreads always picks the thread (classical thread clock).
	NaiveThreads = core.NaiveThreads
	// NaiveObjects always picks the object (classical object clock).
	NaiveObjects = core.NaiveObjects
	// Random picks a side uniformly at random.
	Random = core.Random
	// Popularity picks the endpoint with higher degree/|E|.
	Popularity = core.Popularity
	// Hybrid starts with Popularity and falls back to Naive past
	// density/size thresholds, per the paper's conclusion.
	Hybrid = core.Hybrid

	// Timestamper is the interface all clock schemes implement.
	Timestamper = clock.Timestamper

	// Tracker coordinates live causality tracking across goroutines.
	Tracker = track.Tracker
	// Thread is a registered logical thread (one per goroutine).
	Thread = track.Thread
	// Object is a registered, lock-protected shared object.
	Object = track.Object
	// Stamped is a recorded operation with its timestamp.
	Stamped = track.Stamped
	// Batch accumulates operations by one thread across any objects and
	// commits them in one call, paying the per-commit synchronization once
	// per same-object run instead of once per operation; see
	// Thread.NewBatch, Thread.DoBatch.
	Batch = track.Batch
	// TrackerOption configures NewTracker.
	TrackerOption = track.Option
	// SpillPolicy bounds a long-running tracker's memory: when the merged
	// tail is sealed into immutable delta-encoded segments and where sealed
	// segments are spilled.
	SpillPolicy = track.SpillPolicy
	// SegmentInfo describes one sealed segment (epoch, index range, size,
	// spill file, content hash), as reported by Tracker.Segments.
	SegmentInfo = track.SegmentInfo
	// CompactPolicy is the tiered segment-compaction knob set: how many
	// sealed segments to tolerate and the size ceiling of a merged tier.
	CompactPolicy = track.CompactPolicy
	// RetainPolicy retires graduated (closed-epoch) segments by age or
	// total byte budget, optionally archiving them instead of deleting.
	RetainPolicy = track.RetainPolicy
	// Store is a tracker's complete storage configuration — spilling,
	// compaction and retention in one validated struct; see WithStore.
	Store = track.Store
	// RecoveryInfo reports what Open reconstructed from a directory:
	// resumed epoch and index, retention floor, quarantined files, whether
	// the previous run closed cleanly. See Tracker.Recovery.
	RecoveryInfo = track.RecoveryInfo
	// Health is a point-in-time report of a tracker's storage health —
	// whether a persistent spill failure has it running degraded (fully in
	// memory), since when, and how much history is unsealed. See
	// Tracker.Health and the "Failure model and degraded operation"
	// section above.
	Health = track.Health
	// TrackerStats is a point-in-time lifecycle summary of a tracker:
	// committed/sealed/retained event counts, clock width and backend,
	// sealed-history shape, and the cumulative seal/compaction/retention
	// totals. See Tracker.Stats; cmd/loadgen reports one per run.
	TrackerStats = track.TrackerStats
	// Shipper incrementally copies a spill directory's sealed, published
	// history to a mirror directory, resuming from a durable cursor.
	Shipper = track.Shipper
	// ShipReport summarizes one Shipper.ConsumeUpTo pass.
	ShipReport = track.ShipReport
	// Catalog is the read-only, JSON-serializable view of sealed history
	// that external log shippers poll; see Tracker.Catalog.
	Catalog = tlog.Catalog
	// CatalogSegment is one sealed segment as the catalog describes it.
	CatalogSegment = tlog.CatalogSegment
	// StampSink consumes a streamed computation record by record; see
	// Tracker.Stream.
	StampSink = track.StampSink
)

// Ordering values returned by Vector.Compare.
const (
	Equal      = vclock.Equal
	Before     = vclock.Before
	After      = vclock.After
	Concurrent = vclock.Concurrent
)

// Operation kinds.
const (
	OpWrite = event.OpWrite
	OpRead  = event.OpRead
)

// Clock backends. Flat is the reference []uint64 representation and the
// default everywhere; Tree is the tree clock of Mathur et al. (PLDI 2022)
// over the mixed component space, whose joins skip already-dominated
// subtrees. Both produce identical timestamps. Auto defers the choice to
// the observed computation: offline clocks resolve it from the analyzed
// width and join shape, a Tracker starts flat and re-decides at every
// Compact.
const (
	Flat = vclock.BackendFlat
	Tree = vclock.BackendTree
	Auto = vclock.BackendAuto
)

// NewTrace returns an empty computation; use Append to add operations.
func NewTrace() *Trace { return event.NewTrace() }

// ReadTrace parses a trace from the JSON Lines format written by
// Trace.WriteJSONL.
func ReadTrace(r io.Reader) (*Trace, error) { return event.ReadJSONL(r) }

// GraphFromTrace projects a computation onto its thread–object bipartite
// graph.
func GraphFromTrace(tr *Trace) *Graph { return bipartite.FromTrace(tr) }

// Analyze runs the paper's offline algorithm (Algorithm 1) on a graph:
// maximum matching, minimum vertex cover, optimal mixed-clock components.
func Analyze(g *Graph) *Analysis { return core.Analyze(g) }

// AnalyzeTrace is Analyze on the trace's graph.
func AnalyzeTrace(tr *Trace) *Analysis { return core.AnalyzeTrace(tr) }

// NewClock returns an offline mixed clock over a fixed component set.
func NewClock(comps *ComponentSet) *MixedClock { return core.NewMixedClock(comps) }

// NewOnlineClock returns a clock that grows its components online, driven by
// the given mechanism.
func NewOnlineClock(m Mechanism) *OnlineClock { return core.NewOnlineMixedClock(m) }

// NewOnlineClockBackend is NewOnlineClock with an explicit clock
// representation (Flat or Tree).
func NewOnlineClockBackend(m Mechanism, b Backend) *OnlineClock {
	return core.NewOnlineMixedClockBackend(m, b)
}

// NewClockBackend returns an offline mixed clock over a fixed component set
// with an explicit clock representation (Flat or Tree).
func NewClockBackend(comps *ComponentSet, b Backend) *MixedClock {
	return core.NewMixedClockBackend(comps, b)
}

// NewHybrid returns the paper's recommended online mechanism: Popularity
// while the revealed graph is small and sparse, NaiveThreads afterwards.
func NewHybrid() Hybrid { return core.NewHybrid() }

// NewTracker returns a live tracker for goroutine-level causality tracking.
// For a durable run backed by a spill directory — crash recovery, retention,
// a clean shutdown — use Open and Tracker.Close instead; NewTracker with
// WithSpill remains as sugar over the same store machinery, minus recovery.
func NewTracker(opts ...TrackerOption) *Tracker { return track.NewTracker(opts...) }

// Open opens dir as a durable run: an absent or empty directory starts a
// fresh tracker spilling there, an existing one is recovered — every listed
// segment verified by size and content hash, clocks and cover rebuilt, a
// torn tail quarantined — and committing resumes at the correct epoch and
// trace index. Bracket the run with Tracker.Close. Unlike NewTracker, Open
// validates its options. See Tracker.Recovery for what was reconstructed.
func Open(dir string, opts ...TrackerOption) (*Tracker, error) { return track.Open(dir, opts...) }

// WithMechanism selects the tracker's online mechanism.
func WithMechanism(m Mechanism) TrackerOption { return track.WithMechanism(m) }

// WithBackend selects the tracker's clock representation (Flat or Tree).
func WithBackend(b Backend) TrackerOption { return track.WithBackend(b) }

// WithStore sets the tracker's complete storage configuration: spill,
// compaction and retention policies in one struct. This is the canonical
// storage option; WithSpill, WithCompaction and WithRetention are sugar over
// its fields. Open rejects an invalid Store; NewTracker applies it as given.
func WithStore(s Store) TrackerOption { return track.WithStore(s) }

// WithSpill sets the tracker's spill policy: seal the merged tail into
// immutable delta-encoded segments every SealEvents events and, with a Dir,
// spill sealed segments to disk so a long-running tracker holds bounded
// memory. Sealed history is replayed transparently by Snapshot, Stream,
// SnapshotTo and lazy Stamped vectors.
//
// Deprecated: prefer WithStore(Store{Spill: p}), or Open, which supplies
// the directory itself.
func WithSpill(p SpillPolicy) TrackerOption { return track.WithSpill(p) }

// WithCompaction arms automatic tiered compaction of sealed segments: after
// any seal that leaves more than MaxSegments segments, adjacent small
// segments are merged (never across an epoch boundary, never past
// TargetBytes) with replay bytes unchanged. Tracker.CompactSegments runs a
// pass explicitly.
//
// Deprecated: prefer WithStore(Store{Compact: p}).
func WithCompaction(p CompactPolicy) TrackerOption { return track.WithCompaction(p) }

// WithRetention arms automatic retirement of graduated segments on the seal
// path; Tracker.RetainSegments runs a pass explicitly. Equivalent to setting
// Store.Retain via WithStore.
func WithRetention(p RetainPolicy) TrackerOption { return track.WithRetention(p) }

// ErrCatalogBehind is returned (wrapped) by Shipper.ConsumeUpTo when the
// published catalog generation is still behind the requested one.
var ErrCatalogBehind = track.ErrCatalogBehind

// ReadCatalog loads and validates a segment catalog document, as published
// by a spilling tracker to catalog.json in its spill directory.
func ReadCatalog(r io.Reader) (*Catalog, error) { return tlog.DecodeCatalog(r) }

// Run drives a timestamper over a whole trace, returning one timestamp per
// event.
func Run(tr *Trace, ts Timestamper) []Vector { return clock.Run(tr, ts) }

// Validate checks Theorem 2 exhaustively against the ground-truth
// happened-before oracle: s → t ⇔ s.V < t.V for every pair of events. Meant
// for tests and debugging (cost is quadratic in trace length).
func Validate(tr *Trace, stamps []Vector, scheme string) error {
	return clock.Validate(tr, stamps, scheme)
}

// WriteLog persists a timestamped computation in the compact binary log
// format (self-delimiting records; a truncated log stays readable up to the
// last complete record).
func WriteLog(w io.Writer, tr *Trace, stamps []Vector) error {
	return tlog.WriteAll(w, tr, stamps)
}

// WriteLogDelta persists a timestamped computation in the delta-encoded log
// format: records carry only the components that changed against the same
// thread's previous stamp, with periodic full-vector sync points. Same
// truncation semantics as WriteLog, typically a fraction of the size on
// wide clocks; ReadLog reads either format transparently.
func WriteLogDelta(w io.Writer, tr *Trace, stamps []Vector) error {
	return tlog.WriteAllDelta(w, tr, stamps)
}

// ErrLogTruncated wraps reads of logs cut short by a crash; ReadLog returns
// it together with the readable prefix.
var ErrLogTruncated = tlog.ErrTruncated

// ReadLog loads a timestamped computation written by WriteLog or
// WriteLogDelta (the header says which format a stream carries). On
// truncation it returns the complete-record prefix along with an error
// wrapping ErrLogTruncated.
func ReadLog(r io.Reader) (*Trace, []Vector, error) {
	return tlog.ReadAll(r)
}
