package bipartite

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"mixedclock/internal/event"
)

func TestSideString(t *testing.T) {
	if Threads.String() != "threads" || Objects.String() != "objects" {
		t.Fatal("Side.String wrong")
	}
	if got := Side(0).String(); got != "Side(0)" {
		t.Fatalf("Side(0) = %q", got)
	}
}

func TestAddEdgeBasics(t *testing.T) {
	g := New(2, 2)
	if !g.AddEdge(0, 1) {
		t.Fatal("first AddEdge returned false")
	}
	if g.AddEdge(0, 1) {
		t.Fatal("duplicate edge reported as new")
	}
	if g.Edges() != 1 {
		t.Fatalf("Edges = %d, want 1", g.Edges())
	}
	if !g.HasEdge(0, 1) || g.HasEdge(1, 0) {
		t.Fatal("HasEdge wrong")
	}
	if g.ThreadDegree(0) != 1 || g.ObjectDegree(1) != 1 || g.ThreadDegree(1) != 0 {
		t.Fatal("degrees wrong")
	}
}

func TestAddEdgeGrowsSides(t *testing.T) {
	g := New(0, 0)
	g.AddEdge(3, 5)
	if g.NThreads() != 4 || g.NObjects() != 6 {
		t.Fatalf("sides = %d/%d, want 4/6", g.NThreads(), g.NObjects())
	}
}

func TestZeroValueGraph(t *testing.T) {
	var g Graph
	if g.HasEdge(0, 0) {
		t.Fatal("zero-value graph claims an edge")
	}
	g.AddEdge(0, 0)
	if g.Edges() != 1 {
		t.Fatalf("Edges = %d", g.Edges())
	}
}

func TestAddEdgeNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative vertex did not panic")
		}
	}()
	New(1, 1).AddEdge(-1, 0)
}

func TestDegreeOutOfRange(t *testing.T) {
	g := New(1, 1)
	if g.ThreadDegree(-1) != 0 || g.ThreadDegree(9) != 0 {
		t.Fatal("out-of-range thread degree not 0")
	}
	if g.ObjectDegree(-1) != 0 || g.ObjectDegree(9) != 0 {
		t.Fatal("out-of-range object degree not 0")
	}
}

func TestDensity(t *testing.T) {
	g := New(2, 2)
	if g.Density() != 0 {
		t.Fatal("empty graph density not 0")
	}
	g.AddEdge(0, 0)
	g.AddEdge(1, 1)
	if got := g.Density(); got != 0.5 {
		t.Fatalf("Density = %f, want 0.5", got)
	}
	if New(0, 5).Density() != 0 {
		t.Fatal("degenerate graph density not 0")
	}
}

func TestPopularity(t *testing.T) {
	g := New(2, 3)
	g.AddEdge(0, 0)
	g.AddEdge(0, 1)
	g.AddEdge(1, 1)
	// deg(T1)=2, deg(O2)=2, |E|=3.
	if got := g.Popularity(Threads, 0); got != 2.0/3.0 {
		t.Fatalf("pop(T1) = %f", got)
	}
	if got := g.Popularity(Objects, 1); got != 2.0/3.0 {
		t.Fatalf("pop(O2) = %f", got)
	}
	if got := g.Popularity(Objects, 2); got != 0 {
		t.Fatalf("pop(O3) = %f, want 0", got)
	}
	if got := New(1, 1).Popularity(Threads, 0); got != 0 {
		t.Fatalf("empty graph popularity = %f", got)
	}
}

func TestPopularityBadSidePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("bad side did not panic")
		}
	}()
	g := New(1, 1)
	g.AddEdge(0, 0)
	g.Popularity(Side(42), 0)
}

func TestEdgeListSorted(t *testing.T) {
	g := New(3, 3)
	g.AddEdge(2, 0)
	g.AddEdge(0, 2)
	g.AddEdge(0, 1)
	g.AddEdge(1, 1)
	want := []Edge{{0, 1}, {0, 2}, {1, 1}, {2, 0}}
	got := g.EdgeList()
	if len(got) != len(want) {
		t.Fatalf("EdgeList len = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("EdgeList[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestIsolatedVertices(t *testing.T) {
	g := New(3, 2)
	g.AddEdge(1, 0)
	if got := g.IsolatedThreads(); len(got) != 2 || got[0] != 0 || got[1] != 2 {
		t.Fatalf("IsolatedThreads = %v", got)
	}
	if got := g.IsolatedObjects(); len(got) != 1 || got[0] != 1 {
		t.Fatalf("IsolatedObjects = %v", got)
	}
}

func TestCloneIndependent(t *testing.T) {
	g := New(2, 2)
	g.AddEdge(0, 0)
	c := g.Clone()
	c.AddEdge(1, 1)
	if g.Edges() != 1 || c.Edges() != 2 {
		t.Fatalf("clone not independent: g=%d c=%d", g.Edges(), c.Edges())
	}
}

func TestFromTrace(t *testing.T) {
	tr := event.NewTrace()
	tr.Append(0, 1, event.OpWrite)
	tr.Append(0, 1, event.OpRead) // repeated pair folds into one edge
	tr.Append(2, 0, event.OpWrite)
	g := FromTrace(tr)
	if g.NThreads() != 3 || g.NObjects() != 2 {
		t.Fatalf("sides = %d/%d", g.NThreads(), g.NObjects())
	}
	if g.Edges() != 2 || !g.HasEdge(0, 1) || !g.HasEdge(2, 0) {
		t.Fatalf("edges wrong: %v", g.EdgeList())
	}
}

func TestGraphString(t *testing.T) {
	g := New(2, 2)
	g.AddEdge(0, 0)
	if s := g.String(); !strings.Contains(s, "threads=2") || !strings.Contains(s, "edges=1") {
		t.Fatalf("String = %q", s)
	}
}

func TestGenerateUniformDeterministic(t *testing.T) {
	cfg := GenConfig{NThreads: 20, NObjects: 20, Density: 0.3, Scenario: Uniform}
	g1, err := Generate(cfg, rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	g2, err := Generate(cfg, rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	e1, e2 := g1.EdgeList(), g2.EdgeList()
	if len(e1) != len(e2) {
		t.Fatalf("same seed, different edge counts: %d vs %d", len(e1), len(e2))
	}
	for i := range e1 {
		if e1[i] != e2[i] {
			t.Fatalf("same seed, different edges at %d", i)
		}
	}
}

func TestGenerateUniformDensityCloseToTarget(t *testing.T) {
	cfg := GenConfig{NThreads: 100, NObjects: 100, Density: 0.2, Scenario: Uniform}
	g, err := Generate(cfg, rand.New(rand.NewSource(11)))
	if err != nil {
		t.Fatal(err)
	}
	if d := g.Density(); d < 0.15 || d > 0.25 {
		t.Fatalf("realized density %f too far from 0.2", d)
	}
}

func TestGenerateNonuniformDensityCloseToTarget(t *testing.T) {
	cfg := GenConfig{NThreads: 100, NObjects: 100, Density: 0.1, Scenario: Nonuniform}
	g, err := Generate(cfg, rand.New(rand.NewSource(13)))
	if err != nil {
		t.Fatal(err)
	}
	if d := g.Density(); d < 0.06 || d > 0.14 {
		t.Fatalf("realized density %f too far from 0.1", d)
	}
}

func TestGenerateNonuniformSkewsDegrees(t *testing.T) {
	cfg := GenConfig{NThreads: 100, NObjects: 100, Density: 0.05, Scenario: Nonuniform, HotFraction: 0.1, HotBoost: 16}
	g, err := Generate(cfg, rand.New(rand.NewSource(17)))
	if err != nil {
		t.Fatal(err)
	}
	// Hot threads occupy indices [0, 10); they must have clearly higher
	// average degree than cold threads.
	hotSum, coldSum := 0, 0
	for tID := 0; tID < 10; tID++ {
		hotSum += g.ThreadDegree(tID)
	}
	for tID := 10; tID < 100; tID++ {
		coldSum += g.ThreadDegree(tID)
	}
	hotAvg := float64(hotSum) / 10
	coldAvg := float64(coldSum) / 90
	if hotAvg < 3*coldAvg {
		t.Fatalf("hot threads not hot enough: hot avg %.2f vs cold avg %.2f", hotAvg, coldAvg)
	}
}

func TestGenerateDensityExtremes(t *testing.T) {
	for _, scenario := range []Scenario{Uniform, Nonuniform} {
		g, err := Generate(GenConfig{NThreads: 10, NObjects: 10, Density: 0, Scenario: scenario}, rand.New(rand.NewSource(1)))
		if err != nil {
			t.Fatal(err)
		}
		if g.Edges() != 0 {
			t.Fatalf("%v density 0 produced %d edges", scenario, g.Edges())
		}
		g, err = Generate(GenConfig{NThreads: 10, NObjects: 10, Density: 1, Scenario: scenario}, rand.New(rand.NewSource(1)))
		if err != nil {
			t.Fatal(err)
		}
		if g.Edges() != 100 {
			t.Fatalf("%v density 1 produced %d edges, want 100", scenario, g.Edges())
		}
	}
}

func TestGenerateValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	bad := []GenConfig{
		{NThreads: -1, NObjects: 1, Density: 0.1},
		{NThreads: 1, NObjects: 1, Density: -0.1},
		{NThreads: 1, NObjects: 1, Density: 1.5},
		{NThreads: 1, NObjects: 1, Density: 0.1, Scenario: Scenario(9)},
		{NThreads: 1, NObjects: 1, Density: 0.1, HotFraction: 2},
		{NThreads: 1, NObjects: 1, Density: 0.1, HotBoost: 0.5},
	}
	for i, cfg := range bad {
		if _, err := Generate(cfg, rng); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
}

func TestNonuniformProbsSaturation(t *testing.T) {
	// Very high density forces hot pairs to saturate at p=1.
	cfg := GenConfig{NThreads: 100, NObjects: 100, Density: 0.9, Scenario: Nonuniform}.withDefaults()
	pCold, pHot := nonuniformProbs(cfg, 10, 10)
	if pHot != 1 {
		t.Fatalf("pHot = %f, want 1", pHot)
	}
	if pCold < 0 || pCold > 1 {
		t.Fatalf("pCold = %f outside [0,1]", pCold)
	}
	// Expected density should still be close to target.
	hotPairs := 100.0*100.0 - 90.0*90.0
	got := (hotPairs*pHot + 90*90*pCold) / 10000
	if got < 0.88 || got > 0.92 {
		t.Fatalf("expected density %f, want ≈0.9", got)
	}
}

func TestNonuniformProbsEmpty(t *testing.T) {
	cfg := GenConfig{NThreads: 0, NObjects: 0, Density: 0.5, Scenario: Nonuniform}.withDefaults()
	pCold, pHot := nonuniformProbs(cfg, 0, 0)
	if pCold != 0 || pHot != 0 {
		t.Fatalf("empty graph probs = %f/%f", pCold, pHot)
	}
}

func TestGenerateZipf(t *testing.T) {
	g, err := GenerateZipf(50, 50, 5, 1.5, rand.New(rand.NewSource(23)))
	if err != nil {
		t.Fatal(err)
	}
	if g.NThreads() != 50 || g.NObjects() != 50 {
		t.Fatalf("sides = %d/%d", g.NThreads(), g.NObjects())
	}
	for tID := 0; tID < 50; tID++ {
		if got := g.ThreadDegree(tID); got != 5 {
			t.Fatalf("thread %d degree = %d, want 5", tID, got)
		}
	}
	// Zipf skew means low object IDs should dominate.
	if g.ObjectDegree(0) <= g.ObjectDegree(49) {
		t.Errorf("no skew: deg(O1)=%d deg(O50)=%d", g.ObjectDegree(0), g.ObjectDegree(49))
	}
}

func TestGenerateZipfErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := GenerateZipf(-1, 1, 1, 2, rng); err == nil {
		t.Error("negative threads accepted")
	}
	if _, err := GenerateZipf(1, 1, -1, 2, rng); err == nil {
		t.Error("negative objectsPerThread accepted")
	}
	if _, err := GenerateZipf(1, 1, 1, 1.0, rng); err == nil {
		t.Error("skew 1.0 accepted")
	}
	g, err := GenerateZipf(3, 0, 2, 2, rng)
	if err != nil || g.Edges() != 0 {
		t.Errorf("zero objects should yield empty graph, got %v, %v", g, err)
	}
}

func TestGenerateZipfCapsObjectsPerThread(t *testing.T) {
	g, err := GenerateZipf(2, 3, 10, 2, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	for tID := 0; tID < 2; tID++ {
		if got := g.ThreadDegree(tID); got != 3 {
			t.Fatalf("thread %d degree = %d, want capped 3", tID, got)
		}
	}
}

func TestRevealOrderIsPermutation(t *testing.T) {
	g, err := Generate(GenConfig{NThreads: 10, NObjects: 10, Density: 0.4}, rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	order := g.RevealOrder(rand.New(rand.NewSource(6)))
	if len(order) != g.Edges() {
		t.Fatalf("reveal order has %d edges, want %d", len(order), g.Edges())
	}
	seen := make(map[Edge]int)
	for _, e := range order {
		seen[e]++
	}
	for _, e := range g.EdgeList() {
		if seen[e] != 1 {
			t.Fatalf("edge %v appears %d times", e, seen[e])
		}
	}
}

func TestRevealOrderDeterministic(t *testing.T) {
	g, err := Generate(GenConfig{NThreads: 8, NObjects: 8, Density: 0.5}, rand.New(rand.NewSource(9)))
	if err != nil {
		t.Fatal(err)
	}
	o1 := g.RevealOrder(rand.New(rand.NewSource(10)))
	o2 := g.RevealOrder(rand.New(rand.NewSource(10)))
	for i := range o1 {
		if o1[i] != o2[i] {
			t.Fatalf("same seed, different order at %d", i)
		}
	}
}

func TestWriteDOT(t *testing.T) {
	g := New(2, 2)
	g.AddEdge(0, 0)
	g.AddEdge(1, 1)
	var buf bytes.Buffer
	if err := g.WriteDOT(&buf, []int{0}, []int{1}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"graph threadobject",
		"t0 [label=\"T1\" style=filled",
		"o1 [label=\"O2\" style=filled",
		"t0 -- o0;",
		"t1 -- o1;",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("DOT output missing %q:\n%s", want, out)
		}
	}
}
