// Package treeclock implements the tree clock of Mathur, Tunç, Pavlogiannis
// & Viswanathan, "A Tree Clock Data Structure for Causal Orderings in
// Concurrent Executions" (PLDI 2022), adapted to the mixed component space of
// Zheng & Garg: components are vertices of the minimum vertex cover (threads
// or objects), not only threads.
//
// A TreeClock stores the same map from component index to logical time as a
// flat vclock.Vector, but arranges the components in a forest that mirrors
// how the values were learned: each node's subtree holds only knowledge its
// component possessed at the node's recorded time, and each node's children
// are ordered by attachment time, most recent first. Those two invariants
// let Join prune aggressively:
//
//   - a subtree whose root time is already known to the receiver is skipped
//     wholesale (the receiver transitively learned everything below it), and
//   - sibling scans stop at the first child attached no later than the
//     receiver's knowledge of the parent (all remaining siblings are older).
//
// On workloads with causal locality — re-acquiring an object you already
// dominate, deep chains over a wide but quiescent component set — joins cost
// O(#components that actually changed) instead of O(k).
//
// The soundness of both prunings rests on the discipline enforced by
// internal/core's MixedClock: a component's time is advanced (Tick) only by
// the clock that has just joined the component's previous full state, so any
// clock holding component c at time x dominates everything c knew at x.
// TreeClock is not meant for arbitrary tick/join interleavings outside that
// discipline.
package treeclock

import (
	"mixedclock/internal/vclock"
)

const none = int32(-1)

// node is the tree bookkeeping for one component. Components are dense
// indices, so nodes live in a slice parallel to the clock values; sibling
// lists are doubly linked through prev/next, children ordered by aclk
// descending (most recently attached first).
type node struct {
	// aclk is the parent's clock value when this node was last attached —
	// the "attachment time" that drives sibling-scan pruning. Meaningless
	// for roots.
	aclk   uint64
	parent int32
	head   int32 // first (most recently attached) child
	prev   int32
	next   int32
}

// TreeClock is a tree-structured vector timestamp over the mixed component
// space. The zero value is not usable; call New. A component is present in
// the forest exactly when its clock value is nonzero.
//
// TreeClock mutates in place (Tick, Join, Grow) and is not safe for
// concurrent use.
type TreeClock struct {
	clks  []uint64
	nodes []node
	// roots holds the top-level nodes. Tick consolidates the forest under
	// the ticked component, so between events there is normally a single
	// root: the component that ticked last.
	roots []int32
	// marks and stack are scratch space for Join's two-phase update,
	// retained across calls to avoid per-join allocation.
	marks []mark
	stack []frame
}

var _ vclock.Clock = (*TreeClock)(nil)

// New returns an empty tree clock with width n (all components zero).
func New(n int) *TreeClock {
	tc := &TreeClock{}
	tc.Grow(n)
	return tc
}

// FromVector builds a tree clock holding the same component values as v.
// The flat form carries no learning history, so every nonzero component
// starts as its own root: sound (no pruning is promised) and rebuilt into a
// deeper shape by subsequent ticks and joins. This is the codec hook's
// decode half; Flatten is the encode half.
func FromVector(v vclock.Vector) *TreeClock {
	tc := New(len(v))
	copy(tc.clks, v)
	for i, x := range tc.clks {
		if x > 0 {
			tc.roots = append(tc.roots, int32(i))
		}
	}
	return tc
}

// Grow implements vclock.Clock.
func (tc *TreeClock) Grow(n int) {
	old := len(tc.clks)
	if n <= old {
		return
	}
	if n <= cap(tc.clks) && n <= cap(tc.nodes) {
		tc.clks = tc.clks[:n]
		tc.nodes = tc.nodes[:n]
	} else {
		// One reallocation with doubling, not an append per component.
		c := 2 * old
		if c < n {
			c = n
		}
		clks := make([]uint64, n, c)
		copy(clks, tc.clks)
		tc.clks = clks
		nodes := make([]node, n, c)
		copy(nodes, tc.nodes)
		tc.nodes = nodes
	}
	for i := old; i < n; i++ {
		tc.nodes[i] = node{parent: none, head: none, prev: none, next: none}
	}
}

// Width implements vclock.Clock.
func (tc *TreeClock) Width() int { return len(tc.clks) }

// At implements vclock.Clock.
func (tc *TreeClock) At(i int) uint64 {
	if i < 0 || i >= len(tc.clks) {
		return 0
	}
	return tc.clks[i]
}

// Tick implements vclock.Clock: it increments component i and re-roots the
// forest at it. The event being stamped is exactly what component i knows at
// its new time, so the whole forest — previous roots included — re-attaches
// under i with the new time as attachment time. Re-rooting is O(1 + roots),
// not O(depth): the old root keeps its subtree and simply becomes i's most
// recent child.
func (tc *TreeClock) Tick(i int) {
	tc.Grow(i + 1)
	c := int32(i)
	if tc.clks[i] > 0 {
		tc.detach(c)
	}
	tc.clks[i]++
	for _, r := range tc.roots {
		tc.attachFront(r, c, tc.clks[i])
	}
	tc.roots = append(tc.roots[:0], c)
}

// Join implements vclock.Clock: the receiver becomes the componentwise
// maximum of itself and other. When other is a *TreeClock the update walks
// other's forest, pruning dominated subtrees and stale sibling tails; the
// cost is proportional to the number of components whose value actually
// increases (plus the pruned frontier), not to the clock width.
func (tc *TreeClock) Join(other vclock.Clock) {
	o, ok := other.(*TreeClock)
	if !ok {
		tc.joinGeneric(other)
		return
	}
	if o == tc {
		return
	}
	// Phase 1: mark the nodes of o that beat tc, using tc's pre-join
	// values throughout (the sibling break compares against what tc knew
	// of the parent before this join). Phase 2: fold the marks in.
	marks := tc.mark(o)
	if len(marks) == 0 {
		return
	}
	tc.Grow(o.Width())
	tc.applyMarks(marks)
}

// JoinDelta implements vclock.Clock. The capture is free: the mark walk that
// Join runs anyway visits exactly the components whose value increases, so
// the delta list is the mark list re-emitted as (index, value) pairs.
func (tc *TreeClock) JoinDelta(other vclock.Clock, dst []vclock.Delta) []vclock.Delta {
	o, ok := other.(*TreeClock)
	if !ok {
		return tc.joinGenericDelta(other, dst)
	}
	if o == tc {
		return dst
	}
	marks := tc.mark(o)
	if len(marks) == 0 {
		return dst
	}
	tc.Grow(o.Width())
	for _, m := range marks {
		dst = append(dst, vclock.Delta{Index: m.comp, Value: m.clk})
	}
	tc.applyMarks(marks)
	return dst
}

// applyMarks folds the mark list into tc's forest in a single reverse-order
// pass, fusing what used to be separate detach-all and attach-all phases:
// each mark is detached, adopts its new value, and re-attaches (or becomes a
// root) in one step. Reverse order attaches later (lower-aclk) siblings
// first, so each parent's new children end up front-most in attachment
// order, preserving the aclk-descending sibling invariant.
//
// Interleaving detaches with attaches can transiently link a node under what
// is still — in tc's old forest — its own descendant. That cycle is harmless:
// neither detach nor attachFront traverses the forest, and the descendant's
// mark-parent is itself a mark, so by the end of the pass every marked node
// has been unlinked from its stale position and sits exactly where o's
// structure dictates. A node's own parent/prev/next links are only touched
// by its own iteration, and children attached to it by earlier iterations
// ride along through its detach.
func (tc *TreeClock) applyMarks(marks []mark) {
	for i := len(marks) - 1; i >= 0; i-- {
		m := marks[i]
		if tc.clks[m.comp] > 0 {
			tc.detach(m.comp)
		}
		tc.clks[m.comp] = m.clk
		if m.parent == none {
			tc.roots = append(tc.roots, m.comp)
		} else {
			tc.attachFront(m.comp, marks[m.parent].comp, m.aclk)
		}
	}
}

// mark records one component to copy during Join: its value and attachment
// time in the source forest, and the index of its parent's mark (none for
// source roots).
type mark struct {
	comp   int32
	clk    uint64
	aclk   uint64
	parent int32
}

// frame is one pending node of the iterative mark walk: a component of the
// source forest known to beat the receiver, and the mark index of its
// parent (none for source roots).
type frame struct {
	comp   int32
	parent int32
}

// mark walks the beating parts of o's forest iteratively (an explicit stack
// instead of recursion — join depth equals causal-chain depth, which can be
// thousands on ping-pong workloads, and the explicit frames are cheaper
// than call frames). Marks are appended in preorder: a node precedes its
// subtree, siblings appear most-recent-first, exactly as the recursive walk
// produced — Phase 2b's reverse-order attachment depends on that order to
// preserve the aclk-descending sibling invariant.
//
// Children are scanned most-recent-first; the scan stops early at a child
// attached no later than tc's pre-join knowledge of the parent — every
// remaining sibling was attached earlier still, so their subtrees were part
// of what tc already absorbed from the parent.
func (tc *TreeClock) mark(o *TreeClock) []mark {
	marks, stack := tc.marks[:0], tc.stack[:0]
	// Seed the stack with beating roots, reversed so they pop — and hence
	// appear in marks — in root-list order.
	for i := len(o.roots) - 1; i >= 0; i-- {
		if r := o.roots[i]; o.clks[r] > tc.At(int(r)) {
			stack = append(stack, frame{comp: r, parent: none})
		}
	}
	for len(stack) > 0 {
		f := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		idx := int32(len(marks))
		marks = append(marks, mark{comp: f.comp, clk: o.clks[f.comp], aclk: o.nodes[f.comp].aclk, parent: f.parent})
		uKnown := tc.At(int(f.comp))
		base := len(stack)
		for v := o.nodes[f.comp].head; v != none; v = o.nodes[v].next {
			if o.clks[v] > tc.At(int(v)) {
				stack = append(stack, frame{comp: v, parent: idx})
			} else if o.nodes[v].aclk <= uKnown {
				break
			}
		}
		// Reverse the children just pushed so they pop in sibling order
		// (most recent first), keeping the preorder identical to the old
		// recursive walk.
		for i, j := base, len(stack)-1; i < j; i, j = i+1, j-1 {
			stack[i], stack[j] = stack[j], stack[i]
		}
	}
	tc.marks, tc.stack = marks, stack // retain scratch capacity
	return marks
}

// joinGeneric folds any Clock implementation into tc through the interface.
// Raised components keep their retained subtrees (still sound: a component's
// old subtree is within its old, hence new, knowledge) but become roots —
// no cross-backend learning history exists to place them deeper.
func (tc *TreeClock) joinGeneric(other vclock.Clock) {
	n := other.Width()
	tc.Grow(n)
	for i := 0; i < n; i++ {
		if x := other.At(i); x > tc.clks[i] {
			tc.raise(int32(i), x)
		}
	}
}

// joinGenericDelta is joinGeneric with change capture.
func (tc *TreeClock) joinGenericDelta(other vclock.Clock, dst []vclock.Delta) []vclock.Delta {
	n := other.Width()
	tc.Grow(n)
	for i := 0; i < n; i++ {
		if x := other.At(i); x > tc.clks[i] {
			tc.raise(int32(i), x)
			dst = append(dst, vclock.Delta{Index: int32(i), Value: x})
		}
	}
	return dst
}

// TickDelta implements vclock.Clock.
func (tc *TreeClock) TickDelta(i int, dst []vclock.Delta) []vclock.Delta {
	tc.Tick(i)
	return append(dst, vclock.Delta{Index: int32(i), Value: tc.clks[i]})
}

// Apply implements vclock.Clock: replayed components are raised like a
// generic join — they keep their retained subtrees and become roots, there
// being no learning history in a bare change list to place them deeper.
func (tc *TreeClock) Apply(ds []vclock.Delta) {
	for _, d := range ds {
		i := int(d.Index)
		tc.Grow(i + 1)
		if d.Value > tc.clks[i] {
			tc.raise(d.Index, d.Value)
		}
	}
}

// raise sets component c to the strictly larger value x, detaching it from
// any stale position and re-rooting it (its subtree rides along).
func (tc *TreeClock) raise(c int32, x uint64) {
	if tc.clks[c] > 0 {
		tc.detach(c)
	}
	tc.clks[c] = x
	tc.roots = append(tc.roots, c)
}

// Compare implements vclock.Clock.
func (tc *TreeClock) Compare(other vclock.Clock) vclock.Ordering {
	o, ok := other.(*TreeClock)
	if !ok {
		return vclock.CompareClocks(tc, other)
	}
	return vclock.Vector(tc.clks).Compare(vclock.Vector(o.clks))
}

// Less implements vclock.Clock.
func (tc *TreeClock) Less(other vclock.Clock) bool { return tc.Compare(other) == vclock.Before }

// Concurrent implements vclock.Clock.
func (tc *TreeClock) Concurrent(other vclock.Clock) bool {
	return tc.Compare(other) == vclock.Concurrent
}

// Clone implements vclock.Clock.
func (tc *TreeClock) Clone() vclock.Clock {
	c := &TreeClock{
		clks:  append([]uint64(nil), tc.clks...),
		nodes: append([]node(nil), tc.nodes...),
		roots: append([]int32(nil), tc.roots...),
	}
	return c
}

// Flatten implements vclock.Clock: the flat wire form, independent of the
// receiver.
func (tc *TreeClock) Flatten() vclock.Vector {
	return vclock.Vector(tc.clks).Clone()
}

// AppendBinary implements vclock.Clock. The encoding is the canonical flat
// one, so logs written from a tree clock are byte-identical to flat ones.
func (tc *TreeClock) AppendBinary(dst []byte) []byte {
	return vclock.Vector(tc.clks).AppendBinary(dst)
}

// String renders the clock like its flat vector.
func (tc *TreeClock) String() string { return vclock.Vector(tc.clks).String() }

// detach removes component c (with its subtree) from its parent's child list,
// or from the root list when top-level.
func (tc *TreeClock) detach(c int32) {
	n := &tc.nodes[c]
	if n.parent == none {
		for i, r := range tc.roots {
			if r == c {
				tc.roots = append(tc.roots[:i], tc.roots[i+1:]...)
				break
			}
		}
		return
	}
	if n.prev == none {
		tc.nodes[n.parent].head = n.next
	} else {
		tc.nodes[n.prev].next = n.next
	}
	if n.next != none {
		tc.nodes[n.next].prev = n.prev
	}
	n.parent, n.prev, n.next = none, none, none
}

// attachFront links child as the first (most recent) child of parent with the
// given attachment time. The child must currently be detached.
func (tc *TreeClock) attachFront(child, parent int32, aclk uint64) {
	n := &tc.nodes[child]
	n.parent = parent
	n.aclk = aclk
	n.prev = none
	n.next = tc.nodes[parent].head
	if n.next != none {
		tc.nodes[n.next].prev = child
	}
	tc.nodes[parent].head = child
}
