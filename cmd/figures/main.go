// Command figures regenerates every figure of the paper's evaluation (§V)
// as text tables, CSV, or ASCII plots.
//
// Usage:
//
//	figures [-fig 4|5|6|7|extra|all] [-format table|csv|plot] [-trials N] [-seed S]
//
// Examples:
//
//	figures -fig 6                 # offline vs online, density sweep
//	figures -fig all -format csv   # every figure, CSV to stdout
//	figures -fig extra             # ablations beyond the paper
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"

	"mixedclock/internal/experiment"
)

func main() {
	var (
		fig    = flag.String("fig", "all", "which figure: 4, 5, 6, 7, extra, or all")
		format = flag.String("format", "table", "output format: table, csv, or plot")
		trials = flag.Int("trials", 10, "random graphs averaged per point")
		seed   = flag.Int64("seed", 2019, "base RNG seed")
	)
	flag.Parse()

	if err := run(os.Stdout, *fig, *format, *trials, *seed); err != nil {
		fmt.Fprintf(os.Stderr, "figures: %v\n", err)
		os.Exit(1)
	}
}

func run(w io.Writer, fig, format string, trials int, seed int64) error {
	opt := experiment.Options{Trials: trials, Seed: seed}
	emitted := false
	want := func(name string) bool { return fig == "all" || fig == name }

	if want("4") {
		uni, non, err := experiment.Fig4(opt)
		if err != nil {
			return err
		}
		if err := emit(w, format, uni, non); err != nil {
			return err
		}
		emitted = true
	}
	if want("5") {
		uni, non, err := experiment.Fig5(opt)
		if err != nil {
			return err
		}
		if err := emit(w, format, uni, non); err != nil {
			return err
		}
		emitted = true
	}
	if want("6") {
		r, err := experiment.Fig6(opt)
		if err != nil {
			return err
		}
		if err := emit(w, format, r); err != nil {
			return err
		}
		emitted = true
	}
	if want("7") {
		r, err := experiment.Fig7(opt)
		if err != nil {
			return err
		}
		if err := emit(w, format, r); err != nil {
			return err
		}
		emitted = true
	}
	if want("extra") {
		if err := runExtra(w, format, trials, seed); err != nil {
			return err
		}
		emitted = true
	}
	if !emitted {
		return fmt.Errorf("unknown figure %q (want 4, 5, 6, 7, extra, or all)", fig)
	}
	return nil
}

func runExtra(w io.Writer, format string, trials int, seed int64) error {
	wl, names, err := experiment.WorkloadClockSizes(30, 30, 600, trials, seed)
	if err != nil {
		return err
	}
	if err := emit(w, format, wl); err != nil {
		return err
	}
	fmt.Fprint(w, "workload key:")
	for i, n := range names {
		fmt.Fprintf(w, " %d=%s", i, n)
	}
	fmt.Fprintln(w)
	fmt.Fprintln(w)

	rs, err := experiment.RevealOrderSensitivity(50, nil, 20, seed)
	if err != nil {
		return err
	}
	if err := emit(w, format, rs); err != nil {
		return err
	}

	hy, err := experiment.HybridThresholdSweep(50, nil, trials, seed)
	if err != nil {
		return err
	}
	if err := emit(w, format, hy); err != nil {
		return err
	}

	gr, err := experiment.GreedyVsOptimal(50, nil, trials, seed)
	if err != nil {
		return err
	}
	if err := emit(w, format, gr); err != nil {
		return err
	}

	hist, err := experiment.SizeHistogram(50, 0.05, 100, seed)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "Optimal-size histogram (50 nodes/side, density 0.05, 100 graphs)")
	sizes := make([]int, 0, len(hist))
	for s := range hist {
		sizes = append(sizes, s)
	}
	sort.Ints(sizes)
	for _, s := range sizes {
		fmt.Fprintf(w, "  size %2d: %d\n", s, hist[s])
	}
	return nil
}

func emit(w io.Writer, format string, results ...*experiment.Result) error {
	for _, r := range results {
		var err error
		switch format {
		case "table":
			err = r.WriteTable(w)
		case "csv":
			err = r.WriteCSV(w)
		case "plot":
			err = r.WriteASCIIPlot(w, 16)
		default:
			return fmt.Errorf("unknown format %q", format)
		}
		if err != nil {
			return err
		}
		fmt.Fprintln(w)
	}
	return nil
}
