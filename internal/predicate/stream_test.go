package predicate_test

import (
	"errors"
	"math/rand"
	"testing"

	"mixedclock/internal/cut"
	"mixedclock/internal/event"
	"mixedclock/internal/predicate"
	"mixedclock/internal/trace"
)

// streamerPreds is a small family of predicates exercising every State
// accessor, used for online/offline comparison.
func streamerPreds() map[string]predicate.Predicate {
	return map[string]predicate.Predicate{
		"two-threads-odd": func(s *predicate.State) bool {
			return s.Executed(0)%2 == 1 && s.Executed(1)%2 == 1
		},
		"write-leads-object0": func(s *predicate.State) bool {
			e, ok := s.LastOnObject(0)
			return ok && e.Op == event.OpWrite && e.Thread == 0
		},
		"thread2-ahead": func(s *predicate.State) bool {
			return s.Executed(2) > s.Executed(0)+s.Executed(1) && s.Total() > 5
		},
	}
}

// TestStreamerMatchesPossibly is the predicate half of the online/offline
// equivalence property: with an unbounded window the Streamer's Possibly
// must agree with the offline Possibly on the materialized trace — same
// found flag, same error, and when found an identical witness cut (both
// run the same BFS in the same order).
func TestStreamerMatchesPossibly(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for _, w := range trace.Workloads() {
		tr, err := trace.Generate(w, trace.Config{Threads: 4, Objects: 4, Events: 48, ReadFraction: 0.3}, rng)
		if err != nil {
			t.Fatal(err)
		}
		for name, pred := range streamerPreds() {
			s := predicate.NewStreamer(0)
			for i := 0; i < tr.Len(); i++ {
				s.Add(tr.At(i))
			}
			gotCut, gotFound, gotErr := s.Possibly(pred, 1<<16)
			wantCut, wantFound, wantErr := predicate.Possibly(tr, pred, 1<<16)
			if gotFound != wantFound || !errors.Is(gotErr, wantErr) && (gotErr == nil) != (wantErr == nil) {
				t.Fatalf("%v/%s: online (found=%v err=%v), offline (found=%v err=%v)",
					w, name, gotFound, gotErr, wantFound, wantErr)
			}
			if gotFound && gotCut.String() != wantCut.String() {
				t.Fatalf("%v/%s: online witness %v, offline %v", w, name, gotCut, wantCut)
			}
		}
	}
}

// TestStreamerWindowedSoundness checks the windowing guarantee: every
// witness a bounded-window Streamer reports is a genuinely consistent cut
// of the full trace satisfying the executed-count predicate.
func TestStreamerWindowedSoundness(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	pred := func(s *predicate.State) bool {
		return s.Executed(0)%2 == 1 && s.Executed(1)%2 == 1
	}
	for _, window := range []int{8, 16, 32} {
		tr, err := trace.Generate(trace.Uniform, trace.Config{Threads: 4, Objects: 4, Events: 80}, rng)
		if err != nil {
			t.Fatal(err)
		}
		s := predicate.NewStreamer(window)
		witnesses := 0
		for i := 0; i < tr.Len(); i++ {
			s.Add(tr.At(i))
			c, found, err := s.Possibly(pred, 1<<16)
			if err != nil {
				t.Fatal(err)
			}
			if !found {
				continue
			}
			witnesses++
			if !cut.IsConsistent(tr, c) {
				t.Fatalf("window=%d at event %d: witness %v is not a consistent cut of the full trace", window, i, c)
			}
			if c.PerThread[0]%2 != 1 || c.PerThread[1]%2 != 1 {
				t.Fatalf("window=%d at event %d: witness %v does not satisfy the predicate", window, i, c)
			}
		}
		if witnesses == 0 {
			t.Fatalf("window=%d: no witnesses found across the whole run", window)
		}
	}
}

// TestStreamerBarrier checks that Barrier folds the window into the base:
// afterwards exploration starts from the full prefix and the totals agree.
func TestStreamerBarrier(t *testing.T) {
	s := predicate.NewStreamer(0)
	tr := event.NewTrace()
	tr.Append(0, 0, event.OpWrite)
	tr.Append(1, 1, event.OpWrite)
	tr.Append(0, 1, event.OpWrite)
	for i := 0; i < tr.Len(); i++ {
		s.Add(tr.At(i))
	}
	s.Barrier()
	if s.Len() != 0 || s.Total() != 3 {
		t.Fatalf("after barrier: len=%d total=%d", s.Len(), s.Total())
	}
	// Only one state remains (everything executed); the predicate sees the
	// full counts through the base.
	_, found, err := s.Possibly(func(st *predicate.State) bool {
		return st.Executed(0) == 2 && st.Executed(1) == 1 && st.Total() == 3
	}, 0)
	if err != nil || !found {
		t.Fatalf("post-barrier state not found: found=%v err=%v", found, err)
	}
	// States that unexecute pre-barrier events are no longer reachable.
	_, found, err = s.Possibly(func(st *predicate.State) bool {
		return st.Executed(0) < 2
	}, 0)
	if err != nil || found {
		t.Fatalf("pre-barrier partial state should be unreachable: found=%v err=%v", found, err)
	}
}
