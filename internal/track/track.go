// Package track provides live causality tracking for real goroutines — the
// "multithreaded systems" substrate of the paper, with goroutines as threads
// and lock-protected shared objects as the paper's sequential objects.
//
// A Tracker owns the clock bookkeeping. Goroutines register as Threads,
// shared state registers as Objects, and every operation runs through
// Thread.Do, which enforces the per-object mutual exclusion the paper
// assumes, assigns the operation a mixed-vector-clock timestamp (growing the
// component set online via a configurable mechanism), and records the event.
// The recorded trace and timestamps can then be analyzed, validated, or
// replayed offline.
//
// # Concurrency model
//
// The hot path takes no global lock. The paper's update rule (§III-C) only
// ever touches the clocks of the event's own thread and object, so the
// tracker shards its state along exactly those lines:
//
//   - Thread-local: each Thread owns its clock and an append buffer of
//     recorded operations. Both are touched only by the goroutine driving
//     the Thread (a Thread must be used by one goroutine at a time), so
//     they need no lock at all.
//   - Object-striped: each Object carries an RWMutex — the paper's
//     per-object mutual exclusion — and, under it, the object's last-writer
//     clock. Writes hold the stripe exclusively across the user's function
//     and the clock update; reads hold it shared across the function (so
//     reader callbacks on one object run concurrently) and serialize only
//     the short clock commit on a secondary mutex. Either way the commit
//     that assigns the trace index and updates the object clock is mutually
//     exclusive per object, so the recorded object order is a real order
//     and cross-thread causality flows race-free through the stripe.
//   - Read-mostly: component discovery goes through core.SharedCover, whose
//     fast path (edge already revealed — the steady state) takes only a
//     read lock. Only a genuinely new (thread, object) edge takes the write
//     lock and runs the component-choice mechanism.
//   - Global: a single atomic counter assigns each operation its dense
//     trace index. The counter is fetched while the object commit exclusion
//     is held, so index order refines both program order and object order —
//     i.e. the merged trace is a linearization of happened-before.
//
// # Batched commits
//
// Thread.DoBatch (and the mixed-object Batch builder on top of it) commits
// a run of operations under ONE round of the synchronization above: one
// stripe hold, one world read-lock shard hold, one cover observation, and
// one atomic fetch that claims the whole contiguous index range. Because
// the range is claimed while the object commit exclusion is held, index
// order remains a linearization of happened-before, and because the world
// read lock spans the run, a batch belongs entirely to one epoch. The
// stamps are identical to the equivalent loop of Do calls — batching is an
// amortization, never a semantic knob. See batch.go for the linearization
// argument case by case.
//
// # Delta records and lazy stamps
//
// Committing an event does not flatten the thread's clock. The update rule
// runs in change-capture form (core.UpdateRuleDelta): the components the
// event actually changed are appended to a per-thread delta arena, and the
// record buffer stores only the event plus its arena range — O(changed
// components) per event instead of O(k), and no allocation beyond amortized
// buffer growth. Full vectors are materialized lazily, at the next
// stop-the-world barrier (Snapshot, Trace, Stamps, Compact), by replaying
// each thread's deltas forward from its previous materialization — the
// barrier already pays O(events·k) to copy stamps out, so reconstruction
// hides there. A Stamped returned by Do carries a handle, not a vector;
// Stamped.Vector and the comparison helpers materialize through the barrier
// on first use and memoize. Re-reading the same object the thread just
// left (the read-heavy steady state) is cheaper still: a version check
// proves the thread's clock already equals the object's, and the commit
// degenerates to ticking the covered components — O(1) at any clock width.
//
// Trace recording is deferred: operations accumulate in per-thread buffers
// and are merged (sorted by trace index) only when a snapshot is taken —
// Trace, Stamps, Snapshot, Stream — or at sealing/compaction. Those merge
// points are stop-the-world barriers: they take the write side of the world
// lock whose read side every commit holds (sharded per thread, see
// world.go), quiescing all in-flight clock updates. This is what preserves
// the epoch semantics of Compact (every event of epoch k commits before
// every event of epoch k+1) without a lock on the per-event path. The read
// lock covers only the commit, not the user's callback, so a callback may
// freely block, nest Do calls (on different objects, with the usual mutex
// lock-ordering discipline), or call any Tracker method — including
// Stamped.Vector on an earlier stamp. An operation whose callback straddles
// a compaction simply commits into the new epoch.
//
// # Segment lifecycle: merge, seal, spill
//
// The canonical representation of the recorded computation is the delta
// stream, not a dense vector table. History moves through three states:
//
//   - Live: committed records sit in per-thread buffers as delta ranges
//     (above). Nothing is ordered or materialized yet.
//   - Tail: a barrier merges the buffers into the tail — events in trace
//     order with their materialized stamps. The tail is the mutable,
//     random-access suffix of history; Stamped.Vector of a tail event is an
//     O(1) lookup.
//   - Sealed: Seal (called by Compact, by SpillPolicy.SealEvents, or
//     directly) re-encodes the whole tail as one immutable delta-encoded
//     segment — the MVCLOG02 wire format inside a tlog "MVCSEG01" container
//     that also records the epoch, the global index range, and the clock
//     width at each record. A sealed segment never changes; with a
//     SpillPolicy.Dir it is written to its own file in that directory and
//     dropped from memory entirely, which is what bounds a long-running
//     tracker's footprint: live + tail are bounded by SealEvents, and the
//     sealed prefix lives on disk.
//
// A segment never spans a compaction (Compact seals first, then starts the
// new epoch), so each segment belongs to exactly one epoch; an epoch may
// span many segments. Everything that reads history — Stream, SnapshotTo,
// Snapshot, Trace, Stamps, lazy Stamped.Vector — replays sealed segments
// plus the tail, in trace order, through one path; the bulk readers never
// build a []Vector unless the caller asked for exactly that.
//
// Seal boundaries follow the spill policy: SealEvents seals whenever that
// many events sit unsealed, SealEvery aligns boundaries to multiples of the
// interval (the overshoot waits in the tail), and SealInterval caps by wall
// time how stale sealed history can go under light traffic.
//
// # Segment lifecycle: compaction tiers and the catalog
//
// Sealed segments are managed for the rest of their lives by the lifecycle
// manager (lifecycle.go). Tiered compaction (CompactSegments, armed
// automatically by WithCompaction) rewrites runs of adjacent small
// segments into larger ones: runs never cross an epoch boundary, a segment
// at or above CompactPolicy.TargetBytes has graduated out of its tier, and
// the pass triggers once more than MaxSegments segments exist. Compaction
// moves records between containers without changing one bit of replay:
// events, stamps, widths and SnapshotTo output bytes are all invariant.
// The merge runs with no lock held (segments are immutable) and only the
// list swap takes the barrier; replaced spill files are deleted after the
// catalog generation that stops listing them is published, and a Stream
// caught on a vanished file retries against the merged replacement.
//
// The Catalog is the stable read-only view external log shippers poll:
// epoch, index range, byte size, spill path and content hash per segment,
// plus tracker health (Err text and whether a spill failure disarmed
// auto-sealing). A spilling tracker also publishes it as catalog.json in
// the spill directory — rewritten by atomic rename after every seal and
// compaction — so shippers never touch the tracker at all.
//
// # Epoch-based reclamation
//
// The structures commits read without locks — the cover generation, the
// sealed-history snapshot (segment list, retention floor, catalog
// generation) — are copy-on-write values behind atomic pointers, and their
// superseded versions are freed through a small epoch-based reclaimer
// (epoch.go) instead of a stop-the-world barrier. Every commit and every
// sealed replay pins its thread's reclamation record around the loads;
// retiring a resource stamps it with the current reclamation epoch and
// parks it on a limbo list, and a limbo entry runs its free function only
// once no registered record is still pinned at or before that epoch.
//
// What goes through limbo: superseded SharedCover generations (cover
// growth and the Compact swap), superseded segState snapshots (every seal,
// compaction, retention, recovery and Close swap), and the spill files a
// compaction or retention pass stops listing — their deletion is the one
// free that touches the filesystem, and it runs strictly after the catalog
// generation without them is published. This is why CompactSegments and
// RetainSegments never take the world write lock: readers caught mid-flight
// are either pinned (the retirement waits for them) or started after the
// swap (they see the new list); a sealed replay that still loses its file
// to a retirement that predates its pin retries against the fresh list
// (stream.go). The limbo list drains opportunistically — at each retire
// when the tracker is quiescent, and after every seal barrier.
//
// Snapshot, Seal and Compact still stop the world, but for a different
// reason: they must observe every thread's unmerged records at one instant
// to merge them in trace order. That barrier is about the per-thread
// buffers, not about reclamation — nothing else requires it anymore.
//
// # Streaming and barriers
//
// Stream (and SnapshotTo on top of it) delivers the computation to a
// StampSink without ever running the sink under the world barrier. Sealed
// segments are immutable, so they are read WITHOUT the world lock — the
// tracker keeps committing, sealing and compacting underneath. The merged
// tail is double-buffered: Stream takes the barrier only to merge the
// per-thread buffers and freeze the tail blocks, then replays the frozen
// blocks outside the barrier while commits continue into a fresh active
// block. The memory model is freeze-and-share: a frozen block is never
// mutated again (sealing replaces a partially sealed block with a copied
// remainder rather than re-slicing it), so the replay needs no lock and no
// clones; the streamer's references keep consumed blocks alive past any
// seal. The stream is a consistent snapshot as of its freeze point, and the
// stall commits observe is the O(unsealed suffix) merge — never the sink's
// I/O. Sinks may block and may call back into the Tracker.
//
// # Durability and recovery
//
// A spill directory is a durable run, bracketed by Open and Close
// (store.go). Open over an existing directory rebuilds a live tracker from
// catalog.json and the MVCSEG01 segments it lists (recover.go): every
// segment is verified by size, SHA-256 and a full decode; the per-thread
// and per-object clocks, the component cover and the epoch bookkeeping are
// rebuilt from the catalog's resume manifest plus a replay of the current
// epoch's records; and committing resumes at the next trace index. If the
// resume manifest is unusable or a listed segment is damaged, recovery
// falls back to starting a new epoch over the intact prefix — sound
// because the epoch barrier already restarts clocks at zero. Damage never
// panics and never fails the Open: a torn catalog.json falls back to the
// catalog.json.prev backup, torn or hash-mismatched tails and orphan spill
// files are quarantined (renamed aside with tlog.QuarantineSuffix), and
// the loss is reported via RecoveryInfo and Err. The contract: what
// survives a crash is exactly the last published catalog generation and
// the immutable segments it lists; what is lost is the unsealed suffix.
//
// Store gathers every storage policy into one validated struct. Retention
// (retain.go) retires graduated — closed-epoch — segments oldest-first by
// age or byte budget, deleting or archiving their files only after the
// catalog generation that stops listing them is published; replay then
// starts at the recorded retention floor. A Shipper (ship.go) mirrors the
// published history into another directory behind a durable cursor, and
// the mirror is itself a valid run directory.
//
// # Failure model and degraded operation
//
// Every durable path runs through the vfs.FS interface (Store.FS, vfs.OS
// by default), which makes the whole failure surface deterministically
// injectable: vfs.Faulty scripts per-operation errors, torn writes, and a
// crash freeze at any durable-op index, and the crashtest package sweeps
// every such index exhaustively. The commit hot path never touches the
// filesystem.
//
// Fault handling is tiered (faults.go). Transient errors retry the whole
// idempotent cycle — temp-write-fsync-rename, or open-dir-fsync — with
// bounded exponential backoff; a bare fsync is never retried in place,
// because filesystems may drop dirty pages on fsync failure and a later
// success would prove nothing ("fsyncgate"). Persistent failures (ENOSPC,
// permissions, vfs.ErrCrashed) escalate immediately: the tracker enters
// degraded mode — auto-sealing disarms, commits and every reader continue
// fully in memory, the unsealed suffix grows unboundedly, and both
// Tracker.Health and the published catalog (AutoSealDisarmed,
// DegradedSinceUnix) report the state. While degraded, the commit path
// probes the spill directory with a throwaway durable write at most once
// per SpillPolicy.Probe (one-second default); a successful probe re-arms
// sealing, and the next seal flushes the backlog, clears degraded mode,
// and publishes a healthy generation.
//
// # Online detection
//
// A Monitor (monitor.go) is the analyses of internal/detect,
// internal/predicate, internal/hb and internal/cut run incrementally over
// the live stream, registered with Tracker.NewMonitor. Its consumption
// model mirrors the two-tier streaming above:
//
//   - Sealed segments are evaluated as they are published. Every seal
//     wakes the monitor's goroutine with a non-blocking notification
//     after the seal barrier has lifted, and the monitor replays the new
//     records through the same lock-free sealed-replay path Stream uses —
//     commits, seals and compactions proceed while it evaluates, so a
//     monitor never extends a stop-the-world window.
//   - The frozen tail is evaluated on demand: Monitor.Sync catches the
//     monitor up to the exact present, paying the same short freeze
//     barrier a Snapshot takes, once, for the unsealed suffix only.
//
// Evaluation is windowed by MonitorPolicy.Window. The census and
// happened-before index compare each new event against the last Window
// stamps and count what slid away as skipped (exact when the window is
// unbounded); predicate watches explore the lattice of consistent cuts
// that extend the window's fold — every witness is a real consistent
// state of the full run (soundness), but states that needed an evicted
// event to still be pending are out of reach (bounded completeness). The
// schedule-sensitive pair scanner is exact with no window at all: the
// trace order delivered by the stream is a linearization of
// happened-before, so adjacency on each object resolves in O(objects +
// threads) state. Epochs need no special handling by callers — a Compact
// barrier orders everything across it, and the monitor folds its
// predicate window and resets per-object adjacency at each epoch
// boundary it consumes.
//
// Detections (schedule-sensitive pairs, order-watch violations, predicate
// witnesses) carry their epoch and global trace index as provenance. The
// first order violation arms an online recovery line — the maximal
// consistent cut excluding the violation's causal future — maintained
// from then on in O(threads) per record.
//
// # Load generation and headline numbers
//
// internal/loadgen drives a Tracker the way this package intends it to be
// driven — per-goroutine Threads, Do or Batch commits under contention, an
// optional Store and Monitor — and is the source of the repo's headline
// throughput and latency numbers (`mvc spam`, cmd/loadgen, and the
// end-to-end BenchmarkLoadgenMixed in the CI gate). Tracker.Stats is the
// harness-facing summary it reports: cumulative Events/Width/Epoch plus
// the lifecycle counters (seals, compaction and retention passes and the
// segments they eliminated) this package bumps on each path's success,
// never on the commit hot path. Stats takes the same world read lock a
// commit takes, so it must not be called from inside a Do callback.
package track

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"mixedclock/internal/core"
	"mixedclock/internal/event"
	"mixedclock/internal/tlog"
	"mixedclock/internal/vclock"
	"mixedclock/internal/vfs"
)

// Stamped is one recorded operation with its timestamp. Epoch counts the
// compactions that preceded the operation (see Compact); comparisons
// between stamps honour it.
//
// The timestamp itself is lazy: Do records only the components the
// operation changed, and Vector (or any comparison helper) reconstructs the
// full vector on first use by quiescing the tracker — the same barrier
// Snapshot takes — then memoizes it, so later uses are free. Bulk consumers
// should prefer one Snapshot/Stamps call over materializing stamps one by
// one.
type Stamped struct {
	Event event.Event
	Epoch int
	cell  *stampCell
}

// Vector returns the operation's full timestamp as an independent copy. The
// zero Stamped returns nil, as does a stamp whose sealed segment could not
// be read back (a spill file lost underneath the tracker — the cause is in
// Err, and the read is retried on the next call rather than memoized).
func (s Stamped) Vector() vclock.Vector {
	if s.cell == nil {
		return nil
	}
	return s.cell.vector().Clone()
}

// vec returns the memoized timestamp without copying — for internal
// comparisons only. Comparisons cannot limp along without the stamp (a nil
// vector would silently read as all-zero, inventing causality), so a
// materialization failure here panics with the underlying cause.
func (s Stamped) vec() vclock.Vector {
	if s.cell == nil {
		return nil
	}
	v := s.cell.vector()
	if v == nil {
		panic(fmt.Sprintf("track: stamp of event %d cannot be materialized (sealed segment unreadable): %v",
			s.cell.idx, s.cell.t.Err()))
	}
	return v
}

// HappenedBefore reports whether s's operation causally precedes t's,
// decided from the timestamps (Theorem 2) and, across epochs, the
// compaction barrier order.
func (s Stamped) HappenedBefore(t Stamped) bool { return s.Order(t) == vclock.Before }

// Concurrent reports whether the two operations are causally unrelated.
// Operations in different epochs are never concurrent: compaction is a
// barrier.
func (s Stamped) Concurrent(t Stamped) bool { return s.Order(t) == vclock.Concurrent }

// stampCell is the shared lazy-materialization state behind a Stamped. The
// first vector() call reconstructs the stamp through the tracker barrier and
// memoizes; copies of the Stamped share the cell, so they share the work.
// Only success is memoized: a failed reconstruction (sealed segment
// unreadable) returns nil and is retried on the next call, so restoring the
// spill file restores the stamp.
type stampCell struct {
	t   *Tracker
	idx int
	mu  sync.Mutex
	v   vclock.Vector
}

func (c *stampCell) vector() vclock.Vector {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.v == nil {
		c.v = c.t.stampAt(c.idx)
	}
	return c.v
}

// cellChunkSize is how many stamp cells a thread allocates at once; cells
// are handed out from the chunk so the per-event allocation amortizes away.
const cellChunkSize = 128

// tailBlock is one chunk of the merged-but-unsealed tail: events in trace
// order with their materialized stamps, ev[i] at global index start+i, all
// belonging to one epoch. The last block of the chain is active — the
// barrier merges new records into it; earlier blocks were frozen by a
// Stream, which swapped them out from under the barrier and may be
// replaying them with no lock held, so a frozen block is never mutated.
// Sealing consumes blocks (a streamer's own references keep them alive) and
// a partial seal replaces the straddled block with a copied remainder
// rather than re-slicing it, so frozen storage is never aliased by storage
// that still grows.
type tailBlock struct {
	start  int
	epoch  int
	frozen bool
	ev     []event.Event
	stamps []vclock.Vector
}

// record is one committed operation waiting in a thread's append buffer:
// the event plus the arena range of the components it changed relative to
// the thread's previous record, and the clock width at commit time (stamps
// are padded to it at materialization, matching what Flatten used to
// return).
type record struct {
	ev         event.Event
	start, end int
	width      int
}

// Tracker coordinates causality tracking across goroutines. Create one per
// tracked computation with NewTracker; all methods are safe for concurrent
// use.
type Tracker struct {
	// world is the stop-the-world barrier: every Do holds one of its shards
	// for reading across its commit; snapshots, Seal and Compact hold every
	// shard for writing, which quiesces all in-flight operations.
	world *worldLock

	// reg guards thread and object registration (the slices, not the
	// per-thread/per-object clock state).
	reg     sync.Mutex
	threads []*Thread
	objects []*Object

	// cover is the concurrent component-discovery path; replaced wholesale
	// at compaction (under the world barrier). The pointer itself is
	// atomic so read-only accessors (Size, Components) stay safe — and
	// deadlock-free even inside a Do callback — without the world lock.
	cover atomic.Pointer[core.SharedCover]
	// requested is the backend the tracker was built with (possibly
	// BackendAuto); backend is the resolved representation clocks are
	// currently built in. Auto re-resolves at every Compact, when the
	// epoch's clocks restart from zero anyway.
	requested vclock.Backend
	backend   vclock.Backend

	// seq assigns each commit its dense global trace index; fetched while
	// the object commit exclusion is held so index order linearizes
	// happened-before. Padded onto its own cache line: the RMW per commit
	// is unavoidable (see world.go), but it must not drag the read-mostly
	// fields above into invalidation traffic.
	seq paddedInt64

	// Merged history, written only under the world write lock. Records
	// below tailStart live in segs (sealed, immutable, possibly spilled to
	// disk); tail holds the merged-but-unsealed suffix as a chain of
	// contiguous blocks — the last one active (the barrier merges new
	// records into it), earlier ones frozen by a Stream and therefore
	// immutable (a replay may be reading them with no lock held).
	spill   SpillPolicy
	compact CompactPolicy
	retain  RetainPolicy
	// fs is the filesystem every durable path runs on (Store.FS; vfs.OS by
	// default). Set once at construction, never on the commit hot path.
	fs        vfs.FS
	tailStart int
	tail      []*tailBlock
	// hist is the current sealed-history snapshot (segment list, retention
	// floor, catalog generation) as one immutable value behind an atomic
	// pointer. Readers — Catalog, Segments, streams, lazy stamps — load it
	// with no lock; writers derive a replacement through swapHist, and the
	// superseded snapshot (plus any spill files it alone listed) is freed
	// through the epoch-based reclaimer (epoch.go) once every reader has
	// passed. This is what lets compaction and retention swap the list
	// without the world write barrier.
	hist atomic.Pointer[segState]
	// segMu serializes hist writers only (seal, compaction, retention,
	// Close, recovery); it is never taken by readers or commits.
	segMu sync.Mutex
	// reclaim is the epoch-based reclamation state: commits and sealed
	// replays pin it, retired resources wait on its limbo list.
	reclaim reclaimer
	// resume is the latest resume manifest, captured under the world write
	// lock at every seal, compaction and Open (each capture builds a fresh
	// immutable value), and embedded in the published catalog so a
	// restarted process can rebuild the tracker. Read under RLock(0).
	resume *tlog.CatalogResume
	// recovery describes what Open reconstructed; nil for trackers built
	// by NewTracker.
	recovery *RecoveryInfo
	// closed is set by Close: Do panics, mutating lifecycle calls error,
	// reads keep working (post-mortem inspection).
	closed atomic.Bool
	// sealed mirrors tailStart for the lock-free auto-seal check in Do;
	// sealGate admits one auto-seal attempt at a time; sealBroken disarms
	// auto-sealing after a spill failure (one failed barrier, not one per
	// commit) until an explicit Seal or Compact succeeds. lastSealNano is
	// when the last successful seal (or the tracker's creation) happened —
	// the reference point of the wall-time sealing trigger. sealArmed is
	// set once at construction when the spill policy has any automatic
	// trigger: when clear, the post-commit maybeAutoSeal call is skipped
	// entirely, so an unspilled tracker's hot path pays nothing for it.
	sealed       atomic.Int64
	sealGate     atomic.Bool
	sealBroken   atomic.Bool
	sealArmed    atomic.Bool
	lastSealNano atomic.Int64
	// degradedSince is when a persistent spill failure flipped the tracker
	// into degraded mode (unix nanos; 0 = healthy). Set by enterDegraded,
	// cleared by the next successful seal; surfaced via Health() and the
	// catalog's DegradedSinceUnix. lastProbeNano rate-limits the disk probe
	// that re-arms sealing while degraded (faults.go).
	degradedSince atomic.Int64
	lastProbeNano atomic.Int64
	// compactGate admits one segment-compaction or retention pass at a
	// time; catMu serializes catalog.json publications. The catalog
	// generation itself lives in hist (bumped by every snapshot swap).
	compactGate atomic.Bool
	catMu       sync.Mutex

	// Cumulative lifecycle counters surfaced through Stats: successful
	// seal passes, segment-compaction passes and the segments they
	// eliminated, retention passes and the segments they retired.
	// Monotonic across epochs; each is bumped once on its path's success,
	// never on the commit hot path.
	sealPasses    atomic.Int64
	compactPasses atomic.Int64
	compactedSegs atomic.Int64
	retainPasses  atomic.Int64
	retiredSegs   atomic.Int64

	// Epoch bookkeeping, written only under the world write lock. epoch is
	// additionally read by commits under the read lock; epochStart[i] is
	// the trace index where epoch i+1 began.
	epoch      int
	epochStart []int

	// firstErr keeps the first tracker error across epochs: clock misuse,
	// or an I/O failure sealing, spilling or re-reading a segment.
	errMu    sync.Mutex
	firstErr error

	// monitors are the registered online detectors (monitor.go). monMu
	// guards the slice only; each Monitor serializes its own consumption.
	// Seal and Close wake them with a non-blocking send after their
	// barriers have lifted, so monitors never extend a stop-the-world
	// window.
	monMu    sync.Mutex
	monitors []*Monitor
}

// segState is one immutable sealed-history snapshot: the sealed-segment
// list (oldest first), the retention floor (events below it were retired by
// a RetainPolicy pass, so sealed history covers [retained, tailStart)), and
// the catalog generation, which changes exactly when the snapshot does.
// A published segState is never mutated; writers derive a replacement via
// swapHist and the old value is retired through the reclaimer.
type segState struct {
	segs     []*segment
	retained int
	gen      int64
}

// swapHist publishes the sealed-history snapshot derive builds from the
// current one, and retires the superseded snapshot onto the reclaimer's
// limbo list. segMu serializes the deriving writers against each other;
// readers never take it — they just load t.hist. Safe to call under the
// world write barrier (the retirement is deferred; no I/O runs here).
func (t *Tracker) swapHist(derive func(old *segState) *segState) *segState {
	t.segMu.Lock()
	old := t.hist.Load()
	ns := derive(old)
	t.hist.Store(ns)
	t.segMu.Unlock()
	t.reclaim.retireDeferred(func() { _ = old })
	return ns
}

// Option configures a Tracker.
type Option func(*options)

type options struct {
	mech       core.Mechanism
	backend    vclock.Backend
	backendSet bool
	store      Store
	// err is the first invalid policy an option reported. NewTracker, the
	// lenient legacy constructor, ignores it; Open surfaces it.
	err error
}

// WithMechanism selects the online component-choice mechanism (default: the
// paper's recommended Hybrid — Popularity first, NaiveThreads once the
// revealed graph grows dense or large).
func WithMechanism(m core.Mechanism) Option {
	return func(o *options) { o.mech = m }
}

// WithBackend selects the clock representation (default: the flat vector).
// The tree backend trades slightly richer bookkeeping for joins that cost
// only as much as the components they change; timestamps are identical
// either way. The choice survives Compact. BackendAuto defers the choice to
// the tracker: flat at first (nothing revealed yet), re-decided at every
// Compact from the observed component-set width and join shape
// (core.ChooseBackend).
func WithBackend(b vclock.Backend) Option {
	return func(o *options) { o.backend, o.backendSet = b, true }
}

// NewTracker returns an empty tracker. It is the lenient legacy
// constructor: policies are accepted as given, without the validation Open
// performs. New code that spills should prefer Open, which also recovers an
// existing directory.
func NewTracker(opts ...Option) *Tracker {
	o := defaultOptions()
	for _, opt := range opts {
		opt(&o)
	}
	return newTracker(o)
}

func defaultOptions() options {
	return options{mech: core.NewHybrid(), backend: vclock.BackendFlat}
}

func newTracker(o options) *Tracker {
	t := &Tracker{
		world:     newWorldLock(),
		requested: o.backend,
		backend:   core.ResolveBackend(o.backend, 0, 0),
		spill:     o.store.Spill,
		compact:   o.store.Compact,
		retain:    o.store.Retain,
		fs:        o.store.FS,
	}
	if t.fs == nil {
		t.fs = vfs.OS
	}
	t.reclaim.init()
	t.hist.Store(&segState{})
	t.lastSealNano.Store(time.Now().UnixNano())
	t.sealArmed.Store(t.spill.SealEvents > 0 || t.spill.SealEvery > 0 || t.spill.SealInterval > 0)
	t.cover.Store(t.newCover(core.NewCoverTracker(o.mech)))
	return t
}

// newCover wraps ct in a SharedCover whose superseded generations are
// retired through the tracker's reclaimer — a reveal publishes a new
// generation with no barrier, and the old one joins the limbo list until
// every in-flight commit has passed it. The retirement is deferred (no
// reclamation attempt) because reveals happen inside commits, and the
// commit hot path must never run a free (frees may touch the filesystem).
func (t *Tracker) newCover(ct *core.CoverTracker) *core.SharedCover {
	s := core.NewSharedCover(ct)
	s.OnRetire(func(old any) { t.reclaim.retireDeferred(func() { _ = old }) })
	return s
}

// Thread is a registered logical thread. A Thread must be used by one
// goroutine at a time (typically the goroutine that created it), mirroring
// the paper's sequential processes. The thread's clock, delta arena and
// record buffer are owned by that goroutine; only the stop-the-world
// barrier touches them from outside.
type Thread struct {
	t    *Tracker
	id   event.ThreadID
	name string
	// shard is the thread's slice of the sharded world barrier; commits
	// from this thread only ever touch that shard's reader count.
	shard int
	// rec is the thread's epoch-reclamation record: every commit pins it to
	// the global reclamation epoch for the duration of the clock update, so
	// retired shared state (cover generations, segment-list snapshots,
	// spill files) is freed only after this thread has passed (epoch.go).
	rec *epochRec

	// clock is the thread's working clock, nil until the first operation
	// of an epoch. Owned by the driving goroutine (under the world read
	// lock); reset by Compact (under the world write lock).
	clock vclock.Clock
	// buf holds committed records not yet merged into the tracker's trace;
	// deltas is the arena their change sets live in.
	buf    []record
	deltas []vclock.Delta
	// base is the materialized stamp of the thread's last drained record —
	// the replay starting point for the next merge. Owned by the barrier.
	base vclock.Vector
	// cells is the current chunk lazy stamp handles are allocated from.
	cells     []stampCell
	cellsUsed int

	// One-entry stripe cache for the re-acquisition fast path: when the
	// thread's last commit anywhere was on lastObj and the object's
	// version counter still matches, the thread's clock and the object's
	// clock are provably identical, and the next commit on lastObj can
	// skip the join entirely. Reset by Compact.
	lastObj *Object
	lastVer uint64
}

// ID returns the thread's dense identifier.
func (th *Thread) ID() event.ThreadID { return th.id }

// Name returns the label passed to NewThread.
func (th *Thread) Name() string { return th.name }

// Object is a registered shared object. Its embedded RWMutex enforces the
// paper's assumption that operations on a single object are sequential —
// writes exclusively, reads sharing the stripe with other reads — and
// protects the object's last-writer clock, the stripe through which all
// cross-thread causality flows.
type Object struct {
	// mu serializes user functions: writers exclusively, readers shared.
	mu sync.RWMutex
	// cmu serializes commits among readers (writers already exclude
	// everything via mu). Every commit on the object runs under mu
	// (either mode) plus, for reads, cmu — so any two commits are
	// mutually exclusive and the object's clock chain is a real order.
	cmu  sync.Mutex
	t    *Tracker
	id   event.ObjectID
	name string

	// clock is the full clock of the object's latest operation, nil until
	// the first operation of an epoch. Protected by the commit exclusion;
	// reset by Compact (under the world write lock, with no Do in flight).
	clock vclock.Clock
	// ver counts commits on this object; the thread-side one-entry cache
	// uses it to prove the object clock is unchanged since the thread's
	// own last commit here.
	ver uint64
}

// ID returns the object's dense identifier.
func (o *Object) ID() event.ObjectID { return o.id }

// Name returns the label passed to NewObject.
func (o *Object) Name() string { return o.name }

// NewThread registers a new logical thread.
func (t *Tracker) NewThread(name string) *Thread {
	t.reg.Lock()
	defer t.reg.Unlock()
	th := &Thread{t: t, id: event.ThreadID(len(t.threads)), name: name}
	th.shard = t.world.shardFor(int(th.id))
	th.rec = t.reclaim.register()
	t.threads = append(t.threads, th)
	return th
}

// NewObject registers a new shared object.
func (t *Tracker) NewObject(name string) *Object {
	t.reg.Lock()
	defer t.reg.Unlock()
	o := &Object{t: t, id: event.ObjectID(len(t.objects)), name: name}
	t.objects = append(t.objects, o)
	return o
}

// Do performs fn as one operation by th on o: it locks o (sequentializing
// the object), runs fn, then timestamps and records the operation. Writes
// hold the object exclusively across both fn and the clock update, so the
// recorded object order matches the execution order. Reads hold the object
// shared across fn — read callbacks on one object run concurrently with
// each other (they must not mutate the object, which the read/write split
// already promised) — and serialize only the clock commit, whose order
// becomes the recorded object order of the reads.
//
// Nested Do calls on *different* objects are allowed (the inner operation is
// recorded first, as its own event); the usual lock-ordering discipline
// applies, exactly as with raw mutexes. fn may block or call any Tracker
// method: the world read lock is taken only around the commit that follows
// fn, so callbacks cannot deadlock against a concurrent Snapshot or Compact.
func (th *Thread) Do(o *Object, op event.Op, fn func()) Stamped {
	s := th.do(o, op, fn)
	// With every lock released, honour the spill policy: sealing is its own
	// (rare) barrier, never nested inside a commit. The armed check is one
	// atomic load, so a tracker with no automatic seal trigger skips the
	// whole policy evaluation on every event.
	if th.t.sealArmed.Load() {
		th.t.maybeAutoSeal()
	}
	return s
}

func (th *Thread) do(o *Object, op event.Op, fn func()) Stamped {
	t := th.t
	if t != o.t {
		panic(fmt.Sprintf("track: thread %q and object %q belong to different trackers", th.name, o.name))
	}
	if t.closed.Load() {
		panic(fmt.Sprintf("track: thread %q: Do on a closed Tracker", th.name))
	}
	if op == event.OpRead {
		o.mu.RLock()
		defer o.mu.RUnlock()
		if fn != nil {
			fn()
		}
		t.world.RLock(th.shard)
		defer t.world.RUnlock(th.shard)
		// Readers share mu, so the commit chain needs its own exclusion.
		o.cmu.Lock()
		defer o.cmu.Unlock()
		return t.commit(th, o, op)
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	if fn != nil {
		fn()
	}
	t.world.RLock(th.shard)
	defer t.world.RUnlock(th.shard)
	return t.commit(th, o, op)
}

// Write is shorthand for Do(o, event.OpWrite, fn).
func (th *Thread) Write(o *Object, fn func()) Stamped { return th.Do(o, event.OpWrite, fn) }

// Read is shorthand for Do(o, event.OpRead, fn).
func (th *Thread) Read(o *Object, fn func()) Stamped { return th.Do(o, event.OpRead, fn) }

// commit applies the §III-C update rule in change-capture form and records
// the event. The caller holds the object commit exclusion (mu exclusively
// for writes; mu shared plus cmu for reads) and the world read lock; the
// thread's clock needs no lock (the calling goroutine owns it). The only
// cross-thread contention left is the object stripe itself and one atomic
// increment — the cover's steady state is a lock-free generation load.
func (t *Tracker) commit(th *Thread, o *Object, op event.Op) Stamped {
	// Pin before loading any reclaimer-protected pointer (the cover
	// generation), so a concurrent retirement waits this commit out.
	th.rec.pin(&t.reclaim)
	cover := t.cover.Load()
	thrIdx, objIdx, width := cover.Observe(th.id, o.id)
	idx := int(t.seq.Add(1)) - 1
	s := t.commitOne(th, o, op, idx, thrIdx, objIdx, width)
	th.rec.unpin()
	return s
}

// commitOne is the per-event core of commit and doBatch: run the update
// rule for one event whose trace index was already claimed and whose tick
// plan (component indices and width) was already resolved, and record it.
// The caller holds the object commit exclusion and the world read lock and
// has pinned the thread's reclamation record.
func (t *Tracker) commitOne(th *Thread, o *Object, op event.Op, idx, thrIdx, objIdx, width int) Stamped {
	tv := th.clock
	if tv == nil {
		tv = core.NewBackendClock(t.backend)
		th.clock = tv
	}
	start := len(th.deltas)
	var ticked bool
	if th.lastObj == o && th.lastVer == o.ver {
		// Re-acquisition fast path: the thread's last commit anywhere was
		// on o (it set lastObj and lastVer) and o's version is unchanged,
		// so no other thread has committed here since — th.clock and
		// o.clock are the same value. The join is a no-op and the object
		// can adopt the event clock by replaying just the tick deltas:
		// O(1) at any clock width, the read-heavy steady state. Every op
		// of a batch after the first lands here by construction.
		th.deltas, ticked = core.TickCovered(tv, thrIdx, objIdx, th.deltas)
		o.clock.Apply(th.deltas[start:])
	} else {
		if o.clock == nil {
			o.clock = core.NewBackendClock(t.backend)
		}
		// The thread absorbs the object's last full clock, ticks the
		// covered endpoints, and the object re-absorbs the result — the
		// same core.UpdateRule the offline clock runs, with the changes
		// captured into the thread's arena instead of flattened.
		th.deltas, ticked = core.UpdateRuleDelta(tv, o.clock, thrIdx, objIdx, width, th.deltas)
	}
	o.ver++
	th.lastObj, th.lastVer = o, o.ver

	e := event.Event{Index: idx, Thread: th.id, Object: o.id, Op: op}
	if !ticked {
		// The event's edge is not covered, which would indicate a tracker
		// bug. Record the misuse for Err instead of panicking.
		t.noteErr(fmt.Errorf("track: event %d %v not covered by components %v",
			idx, e, t.cover.Load().ComponentsString()))
	}
	th.buf = append(th.buf, record{ev: e, start: start, end: len(th.deltas), width: width})
	if th.cellsUsed == len(th.cells) {
		th.cells = make([]stampCell, cellChunkSize)
		th.cellsUsed = 0
	}
	cell := &th.cells[th.cellsUsed]
	th.cellsUsed++
	cell.t, cell.idx = t, idx
	return Stamped{Event: e, Epoch: t.epoch, cell: cell}
}

// noteErr retains the first clock misuse.
func (t *Tracker) noteErr(err error) {
	t.errMu.Lock()
	if t.firstErr == nil {
		t.firstErr = err
	}
	t.errMu.Unlock()
}

// mergeLocked drains every thread's append buffer into the tail, in
// trace-index order, materializing each record's full stamp by replaying
// the thread's delta arena forward from its previous materialization. The
// caller holds the world write lock, so no commit is in flight and the
// indices below seq are all present exactly once. This is where the
// O(events·k) cost the hot path shed is actually paid — once, at the
// barrier.
func (t *Tracker) mergeLocked() {
	type stamped struct {
		ev event.Event
		v  vclock.Vector
	}
	t.reg.Lock()
	var pending []stamped
	for _, th := range t.threads {
		if len(th.buf) == 0 {
			continue
		}
		cur := th.base
		for _, r := range th.buf {
			cur = cur.Apply(th.deltas[r.start:r.end]).Grow(r.width)
			pending = append(pending, stamped{ev: r.ev, v: cur.Clone()})
		}
		th.base = cur
		th.buf = th.buf[:0]
		th.deltas = th.deltas[:0]
	}
	t.reg.Unlock()
	if len(pending) == 0 {
		return
	}
	sort.Slice(pending, func(i, j int) bool { return pending[i].ev.Index < pending[j].ev.Index })
	b := t.activeBlockLocked()
	for _, r := range pending {
		if want := b.start + len(b.ev); r.ev.Index != want {
			// Indices are dense by construction; a gap means lost records.
			t.noteErr(fmt.Errorf("track: merge misaligned: event %v landed at trace index %d", r.ev, want))
		}
		b.ev = append(b.ev, r.ev)
		b.stamps = append(b.stamps, r.v)
	}
}

// activeBlockLocked returns the tail block new records merge into, starting
// a fresh one when the chain is empty or its last block was frozen by a
// Stream. The caller holds the world write lock.
func (t *Tracker) activeBlockLocked() *tailBlock {
	if n := len(t.tail); n > 0 && !t.tail[n-1].frozen {
		return t.tail[n-1]
	}
	b := &tailBlock{start: t.mergedLenLocked(), epoch: t.epoch}
	t.tail = append(t.tail, b)
	return b
}

// mergedLenLocked is the number of records in ordered history (sealed +
// tail); under the write lock after a merge it equals the event count.
func (t *Tracker) mergedLenLocked() int {
	if n := len(t.tail); n > 0 {
		last := t.tail[n-1]
		return last.start + len(last.ev)
	}
	return t.tailStart
}

// stampAt quiesces the tracker and returns the (internal) stamp of event
// idx — the lazy-materialization path behind Stamped. Tail stamps are an
// index away; a stamp that has been sealed is reconstructed by replaying
// its segment (one pass, then memoized by the caller's stampCell).
func (t *Tracker) stampAt(idx int) vclock.Vector {
	t.world.Lock()
	defer t.world.Unlock()
	t.mergeLocked()
	if idx >= t.tailStart {
		for _, b := range t.tail {
			if idx < b.start+len(b.ev) {
				return b.stamps[idx-b.start]
			}
		}
		// Unreachable for cells minted by commit; guard against decay.
		return nil
	}
	if r := t.hist.Load().retained; idx < r {
		t.noteErr(fmt.Errorf("track: stamp %d was retired by the retention policy (floor %d)", idx, r))
		return nil
	}
	v, err := t.sealedStamp(idx)
	if err != nil {
		t.noteErr(fmt.Errorf("track: materializing sealed stamp %d: %w", idx, err))
		return nil
	}
	return v
}

// Backend returns the clock representation the tracker currently builds
// clocks in. For trackers created WithBackend(BackendAuto) this is the
// resolved concrete backend, which may change at a Compact.
func (t *Tracker) Backend() vclock.Backend {
	t.world.RLock(0)
	defer t.world.RUnlock(0)
	return t.backend
}

// Size returns the current vector-clock size (number of components). The
// atomic cover pointer makes this safe — and usable from inside a Do
// callback — even while a concurrent Compact swaps the cover.
func (t *Tracker) Size() int { return t.cover.Load().Size() }

// Components returns the current component set as a copy.
func (t *Tracker) Components() []core.Component { return t.cover.Load().Components() }

// Events returns the number of recorded operations.
func (t *Tracker) Events() int { return int(t.seq.Load()) }

// RetainedEvents returns the retention floor: the smallest trace index whose
// event is still replayable. Zero until a RetainPolicy pass retires
// segments; events below the floor are gone from Stream/Snapshot output and
// their lazy stamps materialize as nil. Lock-free — one snapshot load.
func (t *Tracker) RetainedEvents() int {
	return t.hist.Load().retained
}

// Threads returns the registered threads in registration order (index is
// the dense ThreadID). After Open, this is how a resuming process reattaches
// to the threads the previous run registered — registering the same names
// again would mint fresh IDs.
func (t *Tracker) Threads() []*Thread {
	t.reg.Lock()
	defer t.reg.Unlock()
	return append([]*Thread(nil), t.threads...)
}

// Objects returns the registered objects in registration order (index is
// the dense ObjectID); see Threads.
func (t *Tracker) Objects() []*Object {
	t.reg.Lock()
	defer t.reg.Unlock()
	return append([]*Object(nil), t.objects...)
}

// Recovery reports what Open reconstructed from its directory — the resumed
// event count and epoch, quarantined files, whether the previous run closed
// cleanly. Nil for trackers built by NewTracker.
func (t *Tracker) Recovery() *RecoveryInfo { return t.recovery }

// Snapshot quiesces the tracker and returns a copy of the recorded
// computation together with its timestamps (indexed by event index). It is
// a materializing sink over the same segment-stream path Stream and
// SnapshotTo use: sealed history is replayed from its delta segments
// (reading spill files back if the tracker spills), the tail is cloned out.
// For bulk export, prefer SnapshotTo, which never builds the []Vector at
// all. A segment I/O failure (a spill file deleted underneath the tracker)
// surfaces through Err, with the readable prefix returned.
func (t *Tracker) Snapshot() (*event.Trace, []vclock.Vector) {
	sink := &collectSink{trace: event.NewTrace()}
	if err := t.Stream(sink); err != nil {
		t.noteErr(fmt.Errorf("track: snapshot: %w", err))
	}
	return sink.trace, sink.stamps
}

// Trace returns a copy of the recorded computation. It streams the same
// path as Snapshot but keeps only the events, so no stamp is ever cloned.
func (t *Tracker) Trace() *event.Trace {
	sink := &traceSink{trace: event.NewTrace()}
	if err := t.Stream(sink); err != nil {
		t.noteErr(fmt.Errorf("track: trace: %w", err))
	}
	return sink.trace
}

// Stamps returns a copy of the recorded timestamps, indexed by event index.
func (t *Tracker) Stamps() []vclock.Vector {
	sink := &stampsSink{}
	if err := t.Stream(sink); err != nil {
		t.noteErr(fmt.Errorf("track: stamps: %w", err))
	}
	return sink.stamps
}

// Err surfaces tracker failures: clock misuse (an uncovered event, which
// would indicate a tracker bug) and segment I/O errors from sealing,
// spilling or re-reading spilled history. Always nil in correct operation
// on intact storage; the first error from any epoch is retained.
func (t *Tracker) Err() error {
	t.errMu.Lock()
	defer t.errMu.Unlock()
	return t.firstErr
}
