package tlog

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

func sampleCatalog() *Catalog {
	return &Catalog{
		FormatVersion: CatalogFormatVersion,
		Generation:    7,
		SealedEvents:  250,
		Segments: []CatalogSegment{
			{Epoch: 0, FirstIndex: 0, Events: 100, Bytes: 420, Path: "seg-0000000000-0000000099.mvcseg",
				SHA256: strings.Repeat("ab", 32)},
			{Epoch: 0, FirstIndex: 100, Events: 50, Bytes: 230, Path: "seg-0000000100-0000000149.mvcseg",
				SHA256: strings.Repeat("01", 32)},
			{Epoch: 1, FirstIndex: 150, Events: 100, Bytes: 410},
		},
	}
}

func TestCatalogRoundTrip(t *testing.T) {
	c := sampleCatalog()
	var buf bytes.Buffer
	if err := EncodeCatalog(&buf, c); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeCatalog(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, c) {
		t.Fatalf("round trip changed the catalog:\n got %+v\nwant %+v", got, c)
	}
}

func TestCatalogValidate(t *testing.T) {
	mutate := func(f func(*Catalog)) *Catalog {
		c := sampleCatalog()
		f(c)
		return c
	}
	cases := []struct {
		name string
		c    *Catalog
		want string
	}{
		{"wrong version", mutate(func(c *Catalog) { c.FormatVersion = 2 }), "format version"},
		{"negative generation", mutate(func(c *Catalog) { c.Generation = -1 }), "negative"},
		{"gap", mutate(func(c *Catalog) { c.Segments[1].FirstIndex = 120 }), "gapless"},
		{"overlap", mutate(func(c *Catalog) { c.Segments[1].FirstIndex = 80 }), "gapless"},
		{"epoch regression", mutate(func(c *Catalog) { c.Segments[0].Epoch = 3 }), "epoch"},
		{"empty segment", mutate(func(c *Catalog) { c.Segments[2].Events = 0 }), "impossible"},
		{"sealed count mismatch", mutate(func(c *Catalog) { c.SealedEvents = 999 }), "cover"},
		{"short hash", mutate(func(c *Catalog) { c.Segments[0].SHA256 = "abcd" }), "64 hex"},
		{"uppercase hash", mutate(func(c *Catalog) {
			c.Segments[0].SHA256 = strings.Repeat("AB", 32)
		}), "hex"},
	}
	for _, tc := range cases {
		if err := tc.c.Validate(); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: Validate() = %v, want mention of %q", tc.name, err, tc.want)
		}
		// Encode refuses what Validate refuses: no invalid document can be
		// published.
		if err := EncodeCatalog(&bytes.Buffer{}, tc.c); err == nil {
			t.Errorf("%s: EncodeCatalog accepted an invalid catalog", tc.name)
		}
	}
	if err := sampleCatalog().Validate(); err != nil {
		t.Fatalf("sample catalog invalid: %v", err)
	}
	empty := &Catalog{FormatVersion: CatalogFormatVersion}
	if err := empty.Validate(); err != nil {
		t.Fatalf("empty catalog invalid: %v", err)
	}
}

func TestDecodeCatalogRejectsUnknownFields(t *testing.T) {
	doc := `{"format_version":1,"generation":1,"sealed_events":0,"segments":[],"surprise":true}`
	if _, err := DecodeCatalog(strings.NewReader(doc)); err == nil {
		t.Fatal("unknown field accepted — shippers would silently drop data on schema drift")
	}
}
