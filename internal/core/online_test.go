package core

import (
	"math/rand"
	"strings"
	"testing"

	"mixedclock/internal/bipartite"
	"mixedclock/internal/clock"
	"mixedclock/internal/event"
)

func TestMechanismNames(t *testing.T) {
	tests := []struct {
		m    Mechanism
		want string
	}{
		{NaiveThreads{}, "naive/threads"},
		{NaiveObjects{}, "naive/objects"},
		{Random{}, "random"},
		{Popularity{}, "popularity"},
		{NewHybrid(), "hybrid(popularity→naive/threads)"},
	}
	for _, tt := range tests {
		if got := tt.m.Name(); got != tt.want {
			t.Errorf("Name = %q, want %q", got, tt.want)
		}
	}
}

func TestNaiveMechanisms(t *testing.T) {
	g := bipartite.New(2, 2)
	if got := (NaiveThreads{}).Choose(g, 0, 1); got != bipartite.Threads {
		t.Errorf("NaiveThreads chose %v", got)
	}
	if got := (NaiveObjects{}).Choose(g, 0, 1); got != bipartite.Objects {
		t.Errorf("NaiveObjects chose %v", got)
	}
}

func TestRandomMechanismDeterministicWithSeed(t *testing.T) {
	g := bipartite.New(4, 4)
	choices1 := make([]bipartite.Side, 20)
	choices2 := make([]bipartite.Side, 20)
	r1 := Random{Rng: rand.New(rand.NewSource(5))}
	r2 := Random{Rng: rand.New(rand.NewSource(5))}
	sawBoth := map[bipartite.Side]bool{}
	for i := range choices1 {
		choices1[i] = r1.Choose(g, 0, 0)
		choices2[i] = r2.Choose(g, 0, 0)
		sawBoth[choices1[i]] = true
	}
	for i := range choices1 {
		if choices1[i] != choices2[i] {
			t.Fatalf("same seed diverged at %d", i)
		}
	}
	if !sawBoth[bipartite.Threads] || !sawBoth[bipartite.Objects] {
		t.Error("Random never chose one of the sides in 20 draws")
	}
}

func TestPopularityMechanism(t *testing.T) {
	g := bipartite.New(3, 3)
	g.AddEdge(0, 0)
	g.AddEdge(0, 1) // thread 0 degree 2
	g.AddEdge(1, 2)
	g.AddEdge(2, 2) // object 2 degree 2

	tests := []struct {
		name string
		t, o int
		want bipartite.Side
	}{
		{"thread more popular", 0, 2, bipartite.Threads}, // deg(T1)=2 = deg(O3)=2 → tie → thread
		{"object more popular", 1, 2, bipartite.Objects}, // deg(T2)=1 < deg(O3)=2
		{"tie goes to thread", 0, 2, bipartite.Threads},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := (Popularity{}).Choose(g, tt.t, tt.o); got != tt.want {
				t.Errorf("Choose(T%d, O%d) = %v, want %v", tt.t+1, tt.o+1, got, tt.want)
			}
		})
	}
}

func TestHybridSwitchesOnDensity(t *testing.T) {
	h := Hybrid{Primary: NaiveObjects{}, Fallback: NaiveThreads{}, MaxDensity: 0.5, MaxNodes: 1000}
	sparse := bipartite.New(10, 10)
	sparse.AddEdge(0, 0)
	if got := h.Choose(sparse, 0, 0); got != bipartite.Objects {
		t.Errorf("sparse graph: chose %v, want primary (objects)", got)
	}
	dense := bipartite.New(2, 2)
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			dense.AddEdge(i, j)
		}
	}
	if got := h.Choose(dense, 0, 0); got != bipartite.Threads {
		t.Errorf("dense graph: chose %v, want fallback (threads)", got)
	}
}

func TestHybridSwitchesOnNodeCount(t *testing.T) {
	h := Hybrid{Primary: NaiveObjects{}, Fallback: NaiveThreads{}, MaxDensity: 1.0, MaxNodes: 10}
	small := bipartite.New(2, 2)
	small.AddEdge(0, 0)
	if got := h.Choose(small, 0, 0); got != bipartite.Objects {
		t.Errorf("small graph: chose %v, want primary", got)
	}
	big := bipartite.New(50, 50)
	big.AddEdge(0, 0)
	if got := h.Choose(big, 0, 0); got != bipartite.Threads {
		t.Errorf("big graph: chose %v, want fallback", got)
	}
}

func TestHybridZeroValueUsesDefaults(t *testing.T) {
	var h Hybrid
	if !strings.Contains(h.Name(), "popularity") || !strings.Contains(h.Name(), "naive/threads") {
		t.Errorf("zero Hybrid name = %q", h.Name())
	}
	g := bipartite.New(2, 2)
	g.AddEdge(0, 1)
	// Should not panic and should delegate to popularity (tie → thread).
	if got := h.Choose(g, 0, 0); got != bipartite.Threads {
		t.Errorf("Choose = %v", got)
	}
}

func TestCoverTrackerInvariant(t *testing.T) {
	// After every reveal, every revealed edge must be covered — for every
	// mechanism.
	mechs := []Mechanism{
		NaiveThreads{},
		NaiveObjects{},
		Random{Rng: rand.New(rand.NewSource(8))},
		Popularity{},
		NewHybrid(),
	}
	rng := rand.New(rand.NewSource(9))
	for _, mech := range mechs {
		t.Run(mech.Name(), func(t *testing.T) {
			ct := NewCoverTracker(mech)
			for i := 0; i < 300; i++ {
				tID := event.ThreadID(rng.Intn(20))
				oID := event.ObjectID(rng.Intn(20))
				ct.Reveal(tID, oID)
				if !ct.Components().Covers(tID, oID) {
					t.Fatalf("event %d (%v, %v) uncovered after reveal", i, tID, oID)
				}
			}
			// Full invariant at the end: every edge covered.
			for _, e := range ct.Graph().EdgeList() {
				if !ct.Components().Covers(event.ThreadID(e.Thread), event.ObjectID(e.Object)) {
					t.Fatalf("edge %v uncovered", e)
				}
			}
		})
	}
}

func TestCoverTrackerRepeatEdgeAddsNothing(t *testing.T) {
	ct := NewCoverTracker(NaiveThreads{})
	if _, added := ct.Reveal(0, 0); !added {
		t.Fatal("first reveal should add a component")
	}
	if _, added := ct.Reveal(0, 0); added {
		t.Fatal("repeated pair added a component")
	}
	if _, added := ct.Reveal(0, 1); added {
		t.Fatal("covered edge added a component")
	}
	if ct.Size() != 1 {
		t.Fatalf("Size = %d, want 1", ct.Size())
	}
}

func TestCoverTrackerNaiveCountsActiveSides(t *testing.T) {
	// NaiveThreads yields one component per distinct thread, NaiveObjects
	// one per distinct object.
	edges := []bipartite.Edge{
		{Thread: 0, Object: 0},
		{Thread: 0, Object: 1},
		{Thread: 1, Object: 0},
		{Thread: 2, Object: 2},
		{Thread: 2, Object: 0},
	}
	if got := SimulateCover(edges, NaiveThreads{}); got != 3 {
		t.Errorf("NaiveThreads size = %d, want 3 threads", got)
	}
	if got := SimulateCover(edges, NaiveObjects{}); got != 3 {
		t.Errorf("NaiveObjects size = %d, want 3 objects", got)
	}
}

func TestOnlineNeverBelowOffline(t *testing.T) {
	// The offline cover is optimal; no online mechanism may beat it.
	rng := rand.New(rand.NewSource(10))
	mechs := []Mechanism{
		NaiveThreads{},
		NaiveObjects{},
		Random{Rng: rand.New(rand.NewSource(11))},
		Popularity{},
		NewHybrid(),
	}
	for trial := 0; trial < 25; trial++ {
		g, err := bipartite.Generate(bipartite.GenConfig{
			NThreads: 5 + rng.Intn(30),
			NObjects: 5 + rng.Intn(30),
			Density:  rng.Float64() * 0.5,
		}, rng)
		if err != nil {
			t.Fatal(err)
		}
		optimal := Analyze(g).VectorSize()
		order := g.RevealOrder(rng)
		for _, mech := range mechs {
			if got := SimulateCover(order, mech); got < optimal {
				t.Fatalf("trial %d: %s produced %d < optimal %d", trial, mech.Name(), got, optimal)
			}
		}
	}
}

func TestOnlineMixedClockValidity(t *testing.T) {
	// Every online mechanism must still yield a valid vector clock, because
	// the tracker maintains the cover invariant.
	rng := rand.New(rand.NewSource(12))
	mechs := func() []Mechanism {
		return []Mechanism{
			NaiveThreads{},
			NaiveObjects{},
			Random{Rng: rand.New(rand.NewSource(13))},
			Popularity{},
			NewHybrid(),
		}
	}
	for trial := 0; trial < 8; trial++ {
		tr := randomTrace(rng, 2+rng.Intn(5), 2+rng.Intn(5), 20+rng.Intn(40))
		for _, mech := range mechs() {
			oc := NewOnlineMixedClock(mech)
			if _, err := clock.RunAndValidate(tr, oc); err != nil {
				t.Fatalf("trial %d, %s: %v", trial, mech.Name(), err)
			}
			if oc.Err() != nil {
				t.Fatalf("trial %d, %s: tracker let an event through uncovered: %v",
					trial, mech.Name(), oc.Err())
			}
		}
	}
}

func TestOnlineMixedClockName(t *testing.T) {
	oc := NewOnlineMixedClock(Popularity{})
	if got := oc.Name(); got != "mixed/online/popularity" {
		t.Errorf("Name = %q", got)
	}
}

func TestOnlineMixedClockComponentsGrow(t *testing.T) {
	oc := NewOnlineMixedClock(NaiveThreads{})
	if oc.Components() != 0 {
		t.Fatal("fresh online clock has components")
	}
	oc.Timestamp(event.Event{Index: 0, Thread: 0, Object: 0})
	oc.Timestamp(event.Event{Index: 1, Thread: 1, Object: 0})
	oc.Timestamp(event.Event{Index: 2, Thread: 0, Object: 1})
	if oc.Components() != 2 {
		t.Fatalf("Components = %d, want 2", oc.Components())
	}
	if oc.Tracker().Graph().Edges() != 3 {
		t.Fatalf("revealed edges = %d, want 3", oc.Tracker().Graph().Edges())
	}
}

func TestSimulateCoverMatchesOnlineClock(t *testing.T) {
	// The fast size-only simulation must agree with the full online clock.
	rng := rand.New(rand.NewSource(14))
	tr := randomTrace(rng, 10, 10, 200)
	edges := make([]bipartite.Edge, 0, tr.Len())
	for _, e := range tr.Events() {
		edges = append(edges, bipartite.Edge{Thread: int(e.Thread), Object: int(e.Object)})
	}
	oc := NewOnlineMixedClock(Popularity{})
	for _, e := range tr.Events() {
		oc.Timestamp(e)
	}
	if sim := SimulateCover(edges, Popularity{}); sim != oc.Components() {
		t.Fatalf("SimulateCover = %d, online clock = %d", sim, oc.Components())
	}
}

// Interface compliance.
var _ clock.Timestamper = (*OnlineMixedClock)(nil)
