package track

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"mixedclock/internal/event"
	"mixedclock/internal/tlog"
	"mixedclock/internal/trace"
	"mixedclock/internal/vclock"
)

// segFiles lists the seg-*.mvcseg files in a spill directory.
func segFiles(t *testing.T, dir string) []string {
	t.Helper()
	matches, err := filepath.Glob(filepath.Join(dir, "seg-*.mvcseg"))
	if err != nil {
		t.Fatal(err)
	}
	return matches
}

// TestCompactSegmentsReducesFiles is the headline acceptance scenario: a
// tracker sealing every two events across two epochs litters its spill
// directory with ~100 tiny segments; one compaction pass must collapse them
// to at most MaxSegments files (here: one per epoch) with replay bytes —
// and every stamp — unchanged.
func TestCompactSegmentsReducesFiles(t *testing.T) {
	dir := t.TempDir()
	tr := NewTracker(WithSpill(SpillPolicy{Dir: dir, SealEvents: 2}))
	th := tr.NewThread("t")
	o1 := tr.NewObject("o1")
	o2 := tr.NewObject("o2")
	drive := func(n int) {
		for i := 0; i < n; i++ {
			th.Write([]*Object{o1, o2}[i%2], nil)
		}
	}
	drive(100)
	if _, _, err := tr.Compact(); err != nil {
		t.Fatal(err)
	}
	drive(100)
	if err := tr.Seal(); err != nil {
		t.Fatal(err)
	}
	if n := len(segFiles(t, dir)); n < 90 {
		t.Fatalf("setup produced only %d spill files", n)
	}
	var before bytes.Buffer
	if err := tr.SnapshotTo(&before); err != nil {
		t.Fatal(err)
	}
	refTrace, refStamps := tr.Snapshot()

	const maxSegments = 8
	eliminated, err := tr.CompactSegments(CompactPolicy{MaxSegments: maxSegments})
	if err != nil {
		t.Fatal(err)
	}
	if eliminated < 90 {
		t.Fatalf("compaction eliminated only %d segments", eliminated)
	}
	segs := tr.Segments()
	if len(segs) > maxSegments {
		t.Fatalf("%d segments survive compaction, want <= %d", len(segs), maxSegments)
	}
	if files := segFiles(t, dir); len(files) > maxSegments {
		t.Fatalf("%d spill files survive compaction, want <= %d: %v", len(files), maxSegments, files)
	}
	// Two epochs: compaction must not have merged across the boundary.
	if segs[0].Epoch == segs[len(segs)-1].Epoch {
		t.Fatalf("segments span a single epoch after an epoch compaction: %+v", segs)
	}

	var after bytes.Buffer
	if err := tr.SnapshotTo(&after); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(before.Bytes(), after.Bytes()) {
		t.Fatalf("SnapshotTo bytes changed across compaction: %d vs %d bytes",
			before.Len(), after.Len())
	}
	gotTrace, gotStamps := tr.Snapshot()
	if gotTrace.Len() != refTrace.Len() {
		t.Fatalf("snapshot has %d events after compaction, want %d", gotTrace.Len(), refTrace.Len())
	}
	for i := 0; i < refTrace.Len(); i++ {
		if gotTrace.At(i) != refTrace.At(i) || !gotStamps[i].Equal(refStamps[i]) ||
			len(gotStamps[i]) != len(refStamps[i]) {
			t.Fatalf("record %d diverges after compaction", i)
		}
	}
	if err := tr.Err(); err != nil {
		t.Fatal(err)
	}
	validateEpochs(t, tr)
}

// TestCompactSegmentsPreservesReplay is the lifecycle property test: for
// every generator workload, on both backends, compacting the sealed history
// and replaying must be stamp-for-stamp — and, via SnapshotTo, byte-for-
// byte — identical to replaying the original segments.
func TestCompactSegmentsPreservesReplay(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for _, wl := range trace.Workloads() {
		src, err := trace.Generate(wl, trace.Config{Threads: 8, Objects: 8, Events: 320}, rng)
		if err != nil {
			t.Fatal(err)
		}
		for _, backend := range []vclock.Backend{vclock.BackendFlat, vclock.BackendTree} {
			t.Run(fmt.Sprintf("%v/%v", wl, backend), func(t *testing.T) {
				tr := NewTracker(WithBackend(backend),
					WithSpill(SpillPolicy{Dir: t.TempDir(), SealEvents: 30}))
				replayTrace(t, tr, src, src.Len()/2)
				if err := tr.Seal(); err != nil {
					t.Fatal(err)
				}
				nBefore := len(tr.Segments())
				if nBefore < 4 {
					t.Fatalf("setup sealed only %d segments", nBefore)
				}
				var want bytes.Buffer
				if err := tr.SnapshotTo(&want); err != nil {
					t.Fatal(err)
				}
				refTrace, refStamps := tr.Snapshot()

				// Zero policy: unconditional, one segment per epoch run.
				eliminated, err := tr.CompactSegments(CompactPolicy{})
				if err != nil {
					t.Fatal(err)
				}
				if eliminated != nBefore-len(tr.Segments()) {
					t.Fatalf("eliminated %d but segment count went %d -> %d",
						eliminated, nBefore, len(tr.Segments()))
				}
				if eliminated == 0 {
					t.Fatalf("compaction merged nothing out of %d segments", nBefore)
				}
				var got bytes.Buffer
				if err := tr.SnapshotTo(&got); err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(want.Bytes(), got.Bytes()) {
					t.Fatalf("SnapshotTo bytes changed across compaction: %d vs %d",
						want.Len(), got.Len())
				}
				gotTrace, gotStamps := tr.Snapshot()
				if gotTrace.Len() != refTrace.Len() {
					t.Fatalf("replay has %d events, want %d", gotTrace.Len(), refTrace.Len())
				}
				for i := 0; i < refTrace.Len(); i++ {
					if gotTrace.At(i) != refTrace.At(i) {
						t.Fatalf("event %d: %+v, want %+v", i, gotTrace.At(i), refTrace.At(i))
					}
					if !gotStamps[i].Equal(refStamps[i]) || len(gotStamps[i]) != len(refStamps[i]) {
						t.Fatalf("stamp %d: %v (width %d), want %v (width %d)", i,
							gotStamps[i], len(gotStamps[i]), refStamps[i], len(refStamps[i]))
					}
				}
				if err := tr.Err(); err != nil {
					t.Fatal(err)
				}
				validateEpochs(t, tr)
			})
		}
	}
}

// TestSealAligned pins interval-aligned sealing: with SealEvery set, every
// automatic seal boundary lands on a multiple of the interval, whatever the
// commit pattern, and the overshoot waits in the tail for the next boundary.
func TestSealAligned(t *testing.T) {
	const every = 25
	tr := NewTracker(WithSpill(SpillPolicy{SealEvery: every}))
	th := tr.NewThread("t")
	o := tr.NewObject("o")
	for i := 0; i < 130; i++ {
		th.Write(o, nil)
	}
	segs := tr.Segments()
	if len(segs) == 0 {
		t.Fatal("aligned sealing sealed nothing")
	}
	covered := 0
	for i, sg := range segs {
		if sg.FirstIndex%every != 0 || (sg.FirstIndex+sg.Events)%every != 0 {
			t.Fatalf("segment %d spans [%d,%d): not aligned to %d",
				i, sg.FirstIndex, sg.FirstIndex+sg.Events, every)
		}
		covered += sg.Events
	}
	if covered != 125 {
		t.Fatalf("aligned seals cover %d events of 130, want 125", covered)
	}
	// The explicit Seal flushes the unaligned remainder.
	if err := tr.Seal(); err != nil {
		t.Fatal(err)
	}
	if c := tr.Catalog(); c.SealedEvents != 130 {
		t.Fatalf("catalog covers %d events after final seal, want 130", c.SealedEvents)
	}
	full, stamps := tr.Snapshot()
	if full.Len() != 130 || len(stamps) != 130 {
		t.Fatalf("snapshot restored %d events", full.Len())
	}
	if err := tr.Err(); err != nil {
		t.Fatal(err)
	}
}

// TestSealInterval pins wall-time sealing: commits trickling in slower than
// the interval still get sealed (and thus shipped), without any event-count
// trigger firing.
func TestSealInterval(t *testing.T) {
	tr := NewTracker(WithSpill(SpillPolicy{SealInterval: time.Millisecond}))
	th := tr.NewThread("t")
	o := tr.NewObject("o")
	for i := 0; i < 4; i++ {
		th.Write(o, nil)
		time.Sleep(3 * time.Millisecond)
		th.Write(o, nil)
	}
	segs := tr.Segments()
	if len(segs) < 2 {
		t.Fatalf("wall-time sealing produced %d segments over 8 slow commits", len(segs))
	}
	if err := tr.Err(); err != nil {
		t.Fatal(err)
	}
}

// TestCatalog pins the shipper contract: the catalog matches Segments entry
// for entry, validates, carries content hashes that match the spill files,
// and the published catalog.json is byte-level readable, relative-path
// addressed, and regenerated on compaction.
func TestCatalog(t *testing.T) {
	dir := t.TempDir()
	tr := NewTracker(WithSpill(SpillPolicy{Dir: dir, SealEvents: 10}))
	th := tr.NewThread("t")
	o := tr.NewObject("o")
	for i := 0; i < 55; i++ {
		th.Write(o, nil)
	}
	c := tr.Catalog()
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	segs := tr.Segments()
	if len(c.Segments) != len(segs) || len(segs) < 4 {
		t.Fatalf("catalog lists %d segments, tracker has %d", len(c.Segments), len(segs))
	}
	for i, cs := range c.Segments {
		sg := segs[i]
		if cs.Epoch != sg.Epoch || cs.FirstIndex != sg.FirstIndex || cs.Events != sg.Events ||
			cs.Bytes != sg.Bytes || cs.SHA256 != sg.SHA256 {
			t.Fatalf("catalog segment %d %+v does not match %+v", i, cs, sg)
		}
		// Paths are relative to the spill dir, and the hash is the file's.
		full := filepath.Join(dir, cs.Path)
		data, err := os.ReadFile(full)
		if err != nil {
			t.Fatal(err)
		}
		sum := sha256.Sum256(data)
		if hex.EncodeToString(sum[:]) != cs.SHA256 {
			t.Fatalf("catalog segment %d hash does not match file %s", i, full)
		}
	}
	if c.Health != "" || c.AutoSealDisarmed {
		t.Fatalf("healthy tracker reports health %q, disarmed %v", c.Health, c.AutoSealDisarmed)
	}

	// The published document matches the live catalog.
	f, err := os.Open(filepath.Join(dir, CatalogFileName))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	published, err := tlog.DecodeCatalog(f)
	if err != nil {
		t.Fatal(err)
	}
	if published.Generation != c.Generation || published.SealedEvents != c.SealedEvents ||
		len(published.Segments) != len(c.Segments) {
		t.Fatalf("published catalog diverges: %+v vs %+v", published, c)
	}

	// Compaction bumps the generation and the published file follows.
	if _, err := tr.CompactSegments(CompactPolicy{}); err != nil {
		t.Fatal(err)
	}
	c2 := tr.Catalog()
	if c2.Generation <= c.Generation {
		t.Fatalf("generation did not advance across compaction: %d -> %d", c.Generation, c2.Generation)
	}
	f2, err := os.Open(filepath.Join(dir, CatalogFileName))
	if err != nil {
		t.Fatal(err)
	}
	defer f2.Close()
	published2, err := tlog.DecodeCatalog(f2)
	if err != nil {
		t.Fatal(err)
	}
	if len(published2.Segments) >= len(published.Segments) {
		t.Fatalf("published catalog still lists %d segments after compaction", len(published2.Segments))
	}
	if published2.SealedEvents != published.SealedEvents {
		t.Fatalf("compaction changed sealed coverage: %d -> %d",
			published.SealedEvents, published2.SealedEvents)
	}
}

// TestCatalogHealth pins the broken-storage surface: a failing auto-seal
// reports through the catalog (health text + disarmed flag), an explicit
// Seal against repaired storage re-arms, and the re-armed catalog reaches
// the repaired directory.
func TestCatalogHealth(t *testing.T) {
	dir := t.TempDir()
	blocked := filepath.Join(dir, "blocked")
	if err := os.WriteFile(blocked, []byte("in the way"), 0o666); err != nil {
		t.Fatal(err)
	}
	tr := NewTracker(WithSpill(SpillPolicy{Dir: blocked, SealEvents: 10}))
	th := tr.NewThread("t")
	o := tr.NewObject("o")
	for i := 0; i < 30; i++ {
		th.Write(o, nil)
	}
	c := tr.Catalog()
	if !c.AutoSealDisarmed {
		t.Fatal("failing auto-seal not reported as disarmed in the catalog")
	}
	if !strings.Contains(c.Health, "spilling") {
		t.Fatalf("catalog health %q does not carry the spill error", c.Health)
	}
	if err := c.Validate(); err != nil {
		t.Fatalf("unhealthy catalog must still validate: %v", err)
	}

	// Repair the storage: an explicit Seal re-arms and publishes.
	if err := os.Remove(blocked); err != nil {
		t.Fatal(err)
	}
	if err := tr.Seal(); err != nil {
		t.Fatal(err)
	}
	c2 := tr.Catalog()
	if c2.AutoSealDisarmed {
		t.Fatal("successful Seal did not re-arm auto-sealing")
	}
	if c2.SealedEvents != 30 || len(c2.Segments) == 0 {
		t.Fatalf("repaired seal covers %d events in %d segments", c2.SealedEvents, len(c2.Segments))
	}
	f, err := os.Open(filepath.Join(blocked, CatalogFileName))
	if err != nil {
		t.Fatalf("no published catalog after repair: %v", err)
	}
	defer f.Close()
	if _, err := tlog.DecodeCatalog(f); err != nil {
		t.Fatal(err)
	}
}

// overlapSink proves commits proceed while the sink is mid-tail-replay: on
// the first tail record it starts a commit on another thread and refuses to
// continue until that commit lands. Under the old design — the whole tail
// replayed under the world write barrier — the commit could never take its
// world read lock and this deadlocked; with the double-buffered tail the
// commit lands in the fresh active block while the frozen one streams.
type overlapSink struct {
	th      *Thread
	obj     *Object
	started bool
	n       int
}

func (s *overlapSink) ConsumeStamp(e event.Event, _ int, _ vclock.Vector) error {
	if !s.started {
		s.started = true
		done := make(chan struct{})
		go func() {
			s.th.Write(s.obj, nil)
			close(done)
		}()
		select {
		case <-done:
		case <-time.After(10 * time.Second):
			return fmt.Errorf("commit did not overlap the tail replay: Stream still holds the world barrier")
		}
	}
	s.n++
	return nil
}

// TestStreamTailOverlapsCommits is the barrier-free acceptance test (race-
// stressed in CI): a Stream over a tracker whose whole history sits in the
// merged tail must let concurrent commits through mid-replay, and still
// deliver exactly the consistent prefix from its freeze point.
func TestStreamTailOverlapsCommits(t *testing.T) {
	tr := NewTracker()
	th := tr.NewThread("w")
	o := tr.NewObject("o")
	const preStream = 50
	for i := 0; i < preStream; i++ {
		th.Write(o, nil)
	}
	other := tr.NewThread("other")
	o2 := tr.NewObject("o2")
	sink := &overlapSink{th: other, obj: o2}
	if err := tr.Stream(sink); err != nil {
		t.Fatal(err)
	}
	if sink.n != preStream {
		t.Fatalf("stream delivered %d records, want the %d-event freeze prefix", sink.n, preStream)
	}
	// The overlapping commit is in the history the next reader sees.
	full, stamps := tr.Snapshot()
	if full.Len() != preStream+1 {
		t.Fatalf("final history has %d events, want %d", full.Len(), preStream+1)
	}
	if len(stamps) != full.Len() {
		t.Fatalf("stamps out of step: %d for %d events", len(stamps), full.Len())
	}
	if err := tr.Err(); err != nil {
		t.Fatal(err)
	}
}

// TestStreamRacesSegmentCompact hammers the tracker from worker goroutines
// while the main goroutine interleaves explicit seals, tiered compaction
// and streams — with auto-sealing and auto-compaction also armed — and
// checks every streamed snapshot is a dense consistent prefix whose stamps
// match the final history. This is the spill-file-retirement race: a
// compaction pass deletes segment files while streams replay them, and the
// stream's retry against the merged replacement must be invisible. Run
// under -race and -count in CI.
func TestStreamRacesSegmentCompact(t *testing.T) {
	tr := NewTracker(
		WithSpill(SpillPolicy{Dir: t.TempDir(), SealEvents: 24}),
		WithCompaction(CompactPolicy{MaxSegments: 4}),
	)
	const nWorkers, nObjects, opsPer, rounds = 8, 5, 250, 8
	objects := make([]*Object, nObjects)
	for i := range objects {
		objects[i] = tr.NewObject("obj")
	}
	var wg sync.WaitGroup
	for w := 0; w < nWorkers; w++ {
		th := tr.NewThread("worker")
		wg.Add(1)
		go func(th *Thread, w int) {
			defer wg.Done()
			for i := 0; i < opsPer; i++ {
				th.Write(objects[(w+i)%nObjects], nil)
			}
		}(th, w)
	}
	var streams []*streamCollector
	for r := 0; r < rounds; r++ {
		if err := tr.Seal(); err != nil {
			t.Error(err)
			break
		}
		if _, err := tr.CompactSegments(CompactPolicy{MaxSegments: 2}); err != nil {
			t.Error(err)
			break
		}
		c := &streamCollector{}
		if err := tr.Stream(c); err != nil {
			t.Error(err)
			break
		}
		streams = append(streams, c)
	}
	wg.Wait()
	if err := tr.Err(); err != nil {
		t.Fatal(err)
	}
	full, stamps := tr.Snapshot()
	if full.Len() != nWorkers*opsPer {
		t.Fatalf("final snapshot has %d events, want %d", full.Len(), nWorkers*opsPer)
	}
	for si, c := range streams {
		for i, e := range c.events {
			if e.Index != i {
				t.Fatalf("stream %d: record %d has index %d (not dense)", si, i, e.Index)
			}
			if full.At(i).Thread != e.Thread || full.At(i).Object != e.Object {
				t.Fatalf("stream %d: record %d is %+v, final history has %+v", si, i, e, full.At(i))
			}
			if !c.stamps[i].Equal(stamps[i]) {
				t.Fatalf("stream %d: stamp %d = %v, final history has %v", si, i, c.stamps[i], stamps[i])
			}
		}
	}
	if c := tr.Catalog(); c.Validate() != nil || c.Health != "" {
		t.Fatalf("catalog after the race: %+v (validate: %v)", c, c.Validate())
	}
}
