package core

import (
	"testing"

	"mixedclock/internal/bipartite"
	"mixedclock/internal/vclock"
)

func TestChooseBackend(t *testing.T) {
	cases := []struct {
		name         string
		width, fanIn int
		want         vclock.Backend
	}{
		{"narrow", 29, 2, vclock.BackendFlat},
		{"wide-local", 256, 3, vclock.BackendTree},
		{"wide-fanin", 192, 192, vclock.BackendFlat},
		{"threshold", AutoTreeWidth, 1, vclock.BackendTree},
		{"just-under", AutoTreeWidth - 1, 1, vclock.BackendFlat},
		{"unknown-shape", 256, 0, vclock.BackendTree},
	}
	for _, c := range cases {
		if got := ChooseBackend(c.width, c.fanIn); got != c.want {
			t.Errorf("%s: ChooseBackend(%d, %d) = %v, want %v", c.name, c.width, c.fanIn, got, c.want)
		}
	}
}

func TestResolveBackendPassesThrough(t *testing.T) {
	if got := ResolveBackend(vclock.BackendTree, 1, 1); got != vclock.BackendTree {
		t.Fatalf("tree resolved to %v", got)
	}
	if got := ResolveBackend(vclock.BackendFlat, 10_000, 1); got != vclock.BackendFlat {
		t.Fatalf("flat resolved to %v", got)
	}
	if got := ResolveBackend(vclock.BackendAuto, 10_000, 1); got != vclock.BackendTree {
		t.Fatalf("auto at width 10000 resolved to %v", got)
	}
}

func TestMaxFanIn(t *testing.T) {
	g := bipartite.New(3, 4)
	g.AddEdge(0, 0)
	g.AddEdge(0, 1)
	g.AddEdge(0, 2)
	g.AddEdge(1, 2)
	g.AddEdge(2, 2)
	if got := MaxFanIn(g); got != 3 {
		t.Fatalf("MaxFanIn = %d, want 3 (thread 0 and object 2 tie)", got)
	}
	if got := MaxFanIn(bipartite.New(0, 0)); got != 0 {
		t.Fatalf("empty graph MaxFanIn = %d", got)
	}
}

// TestAutoBackendStampsMatch pins that a clock built with BackendAuto
// produces timestamps identical to both concrete backends (which the
// equivalence suite already proves agree with each other).
func TestAutoBackendStampsMatch(t *testing.T) {
	tr := paperTrace()
	a := AnalyzeTrace(tr)
	auto := a.NewClockBackend(vclock.BackendAuto)
	flat := a.NewClockBackend(vclock.BackendFlat)
	if auto.Backend() == vclock.BackendAuto {
		t.Fatal("auto not resolved at construction")
	}
	for i := 0; i < tr.Len(); i++ {
		e := tr.At(i)
		if got, want := auto.Timestamp(e), flat.Timestamp(e); !got.Equal(want) {
			t.Fatalf("event %d: auto %v, flat %v", i, got, want)
		}
	}
	if err := auto.Err(); err != nil {
		t.Fatal(err)
	}
}
