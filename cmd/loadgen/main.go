// Command loadgen drives a live tracker with a configurable mixed workload
// and reports throughput, per-op latency percentiles, allocation rates and
// the tracker's final lifecycle stats. It is the repo's headline-number
// harness: warmup phase first, then a timed (or fixed-op-count) measured
// phase, in the warmup-then-mixed style of the classic index benchmarking
// harnesses. `mvc spam` is the same engine behind the main CLI.
//
// Usage:
//
//	loadgen [-threads N] [-objects N] [-readfrac F] [-duration D | -ops N]
//	        [-batch N] [-dist uniform|zipf] [-store DIR] [-monitor]
//	        [-backend flat|tree|auto] [-seed S] [-format table|csv|json]
//
// Examples:
//
//	loadgen -threads 8 -duration 2s                   # quick headline number
//	loadgen -threads 8 -batch 16 -dist zipf           # batched, skewed
//	loadgen -store /tmp/run -monitor -duration 10s    # durable + watched
//	loadgen -ops 10000 -seed 7 -format json           # deterministic, scriptable
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"mixedclock/internal/loadgen"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main minus the process boundary, for tests.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("loadgen", flag.ContinueOnError)
	fs.SetOutput(stderr)
	lf := loadgen.AddFlags(fs)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	rep, err := loadgen.Run(lf.Config())
	if err != nil {
		fmt.Fprintf(stderr, "loadgen: %v\n", err)
		return 1
	}
	if err := rep.Write(stdout, *lf.Format); err != nil {
		fmt.Fprintf(stderr, "loadgen: %v\n", err)
		return 1
	}
	return 0
}
