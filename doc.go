// Package mixedclock implements optimal mixed vector clocks for
// multithreaded systems, after Zheng & Garg, "An Optimal Vector Clock
// Algorithm for Multithreaded Systems" (ICDCS 2019).
//
// # Background
//
// A concurrent program with n threads operating on m lock-protected shared
// objects is classically timestamped with a vector clock of size n (one
// component per thread) or m (one per object). This library implements the
// paper's mixed vector clock, whose components are a mixture of threads and
// objects, and which is provably the smallest vector clock able to order the
// computation: its size equals the minimum vertex cover of the thread–object
// bipartite graph (an edge per thread–object pair that interacts), computed
// via Hopcroft–Karp maximum matching and the König–Egerváry theorem.
//
// # Offline usage
//
// When the computation is known (a recorded trace), Analyze computes the
// optimal components and a clock over them:
//
//	analysis := mixedclock.AnalyzeTrace(trace)
//	fmt.Println(analysis.Components)     // e.g. {T2, O2, O3}
//	clk := analysis.NewClock()
//	for _, e := range trace.Events() {
//		stamp := clk.Timestamp(e)
//		// stamp orders e against every other event: s → t ⇔ s.V < t.V
//	}
//
// # Online usage
//
// When events arrive one at a time, components can only be added. The §IV
// mechanisms decide whether a new edge's thread or object joins the clock:
//
//	clk := mixedclock.NewOnlineClock(mixedclock.NewHybrid())
//	stamp := clk.Timestamp(e)
//
// # Live tracking
//
// To track a real concurrent Go program, use the Tracker: goroutines are
// threads, lock-protected shared state are objects:
//
//	tracker := mixedclock.NewTracker()
//	account := tracker.NewObject("account")
//	th := tracker.NewThread("worker-1") // one per goroutine
//	stamp := th.Write(account, func() { balance += 10 })
//
// Recorded stamps answer happened-before queries, drive the concurrency
// census and schedule-sensitivity report in internal/detect, and compute
// recovery lines in internal/cut.
//
// The tracker's hot path is sharded rather than globally locked: each
// Thread owns its clock and record buffer, each Object's lock protects that
// object's last-writer clock (the stripe all cross-thread causality flows
// through), and component discovery is read-mostly. Read operations hold
// their object's stripe shared, so reader callbacks on one object run
// concurrently with each other; writers hold it exclusively.
//
// The per-event cost is O(changed components), not O(clock width): commits
// record only the delta each operation applied to its thread's clock
// (allocation-free, at any width), and full vectors materialize lazily. A
// Stamped's Vector() — and its comparison helpers — reconstruct the
// timestamp on first use and memoize; bulk consumers should take one
// snapshot instead:
//
//	trace, stamps := tracker.Snapshot() // one barrier, consistent pair
//
// Snapshot, Trace, Stamps, Seal and Compact are stop-the-world barriers
// that quiesce in-flight operations, merge the per-thread delta records,
// and materialize their stamps; see the internal/track package
// documentation for the full concurrency model.
//
// High-rate producers can amortize the remaining per-event cost — one
// object-stripe acquisition, one world read-lock shard, one cover lookup,
// one trace-index fetch — across whole runs of operations:
//
//	stamps := th.DoBatch(account, ops) // one object, one synchronization round-trip
//	b := th.NewBatch()
//	b.Write(account).Read(ledger).Write(account)
//	stamps = b.Commit() // mixed objects, one round-trip per same-object run
//
// A batch claims its whole contiguous trace-index range while holding the
// object's commit exclusion, so index order remains a linearization of
// happened-before, every operation of a batch lands in one epoch, and the
// stamps are identical — events, epochs, timestamps — to the equivalent
// loop of Do calls. Batching is purely an amortization, never a semantic
// knob; `mvc export -live -batch N` and the longrunning example expose it
// from the command line.
//
// Internally, the structures those commits read — the component cover, the
// sealed-segment list — are published copy-on-write behind atomic pointers
// and reclaimed through per-thread epochs (internal/track's reclaimer):
// superseded generations and replaced spill files wait on a limbo list
// until every in-flight commit and sealed replay has passed, so cover
// growth, segment compaction and retention never stop the world. Only the
// operations that must observe ALL threads at one instant — Snapshot, Seal,
// Compact — still barrier.
//
// # Segments, spilling and streaming
//
// The canonical representation of a tracked run is the delta stream, end to
// end. History the tracker has merged is sealed — at Compact, at an
// explicit Seal, or automatically under a spill policy — into immutable,
// delta-encoded segments (the same wire format the logs use), and the
// store's spill policy moves sealed segments to disk so a long-running
// tracker holds bounded memory however many events it records. The
// canonical way to start a spilling run is Open with a Store (see
// "Durability and recovery" below); an in-memory NewTracker can opt into
// spilling alone with the same policy:
//
//	tracker, err := mixedclock.Open(dir, mixedclock.WithStore(mixedclock.Store{
//		Spill: mixedclock.SpillPolicy{SealEvents: 100_000},
//	}))
//
// Sealing is invisible to every reader: Snapshot, Stamped comparisons and
// epoch queries replay spilled segments transparently (Tracker.Segments
// lists them; the mvc CLI's segments command inspects and merges the spill
// files). Bulk export never materializes a vector table at all:
//
//	err := tracker.SnapshotTo(w) // delta log, O(1) memory w.r.t. run length
//
// streams sealed segments and the live tail straight into the delta log
// writer — byte-identical to materializing a Snapshot and writing it with
// WriteLogDelta, at a fraction of the cost (BenchmarkSnapshotStream locks
// the allocation profile in). Custom consumers implement StampSink and use
// Tracker.Stream, which delivers the whole computation in trace order
// without ever running the sink under the stop-the-world barrier: the
// merged tail is double-buffered, so Stream freezes it under a short
// barrier and replays the frozen half while commits continue into the
// fresh one (BenchmarkStreamTail).
//
// # Segment lifecycle: compaction and the catalog
//
// Frequent seals produce many small segments; the lifecycle manager keeps
// them operable. Tiered compaction merges runs of adjacent small segments
// (never across an epoch boundary, never past CompactPolicy.TargetBytes)
// into larger ones with replay bytes unchanged — arm it through
// Store.Compact, run a pass explicitly with Tracker.CompactSegments, or
// compact a retired spill directory offline with `mvc compact`. Seal
// boundaries can be aligned (SpillPolicy.SealEvery) or wall-time capped
// (SpillPolicy.SealInterval) so segment edges line up with retention wants.
//
// External log shippers poll the Catalog — epoch, index range, size, spill
// file and SHA-256 per segment, plus tracker health — via Tracker.Catalog
// or, with a spill directory, the catalog.json the tracker rewrites
// atomically after every seal and compaction (readable with ReadCatalog or
// `mvc catalog`). Spill failures surface there too: auto-sealing disarms
// after one failed barrier, Err and the catalog carry the cause, and a
// successful explicit Seal or Compact re-arms it.
//
// # Durability and recovery
//
// A spill directory is not just overflow space — it is a durable run. Open
// and Close bracket one:
//
//	tracker, err := mixedclock.Open(dir,
//		mixedclock.WithStore(mixedclock.Store{
//			Spill:  mixedclock.SpillPolicy{SealEvents: 100_000},
//			Retain: mixedclock.RetainPolicy{MaxBytes: 1 << 30},
//		}))
//	defer tracker.Close()
//
// An absent or empty directory starts a fresh run; an existing one —
// whether the previous run ended in Close or in a crash — is recovered:
// every listed segment is verified by size and SHA-256, the per-thread and
// per-object clocks, component cover and epoch bookkeeping are rebuilt from
// the catalog's resume manifest plus a replay of the current epoch, and
// committing resumes at the next trace index. Tracker.Recovery reports what
// was reconstructed; Threads and Objects reattach to the registered handles.
//
// The crash-consistency contract: what survives is exactly the last
// published catalog generation and the immutable segments it lists; what is
// lost is the unsealed suffix. Damage never panics and never fails the Open
// — a torn catalog.json falls back to the previous generation, a truncated
// or bit-flipped segment tail and any orphan spill files are quarantined
// (renamed aside, never deleted), and the loss is reported through Recovery
// and Err. Close seals the tail, publishes a final generation marked
// closed, and fsyncs the directory; `mvc recover -dir` performs the same
// reopen from the command line and prints the report.
//
// Store gathers every storage policy — spilling, tiered compaction,
// retention — into one validated struct (WithSpill, WithCompaction and
// WithRetention remain as sugar over its fields). A RetainPolicy retires
// graduated segments, i.e. those of closed epochs, once they age past
// MaxAge or push the directory over MaxBytes — deleting them or, with
// Archive set, moving them aside — and replay then starts at the retention
// floor the catalog records. A Shipper incrementally mirrors the published
// history to another directory with a durable cursor (ConsumeUpTo), and the
// mirror is itself a valid run directory: Open replays it byte-identically.
//
// # Failure model and degraded operation
//
// Every durable operation — sealing a segment, publishing the catalog,
// compaction, retention, shipping, recovery — runs through a small
// filesystem interface (Store.FS; the real filesystem by default), so the
// whole failure surface is injectable and deterministically tested: an
// exhaustive sweep crashes the store at every single durable operation
// index and proves recovery at each one (internal/track/crashtest). The
// commit hot path never touches the filesystem, so tracking performance is
// independent of all of this.
//
// Failures are handled in three tiers:
//
//   - Transient errors (an EIO blip, a failed fsync or rename) retry a few
//     times with bounded backoff. The retried unit is always a whole
//     idempotent cycle that rewrites its data from memory — never a bare
//     fsync retry, which is unsound on filesystems that drop dirty pages on
//     fsync failure.
//   - Persistent failures (ENOSPC, permissions, a vanished directory)
//     escalate immediately: the tracker enters degraded mode. Commits,
//     snapshots, streams, monitors and detection all keep working, fully in
//     memory; auto-sealing disarms (one failed barrier, not one per
//     commit), nothing new reaches disk, and the unsealed suffix grows
//     without bound — the price of staying live. Tracker.Health reports the
//     state (and since when); the published catalog carries the same facts
//     for external observers.
//   - Recovery: while degraded, the tracker probes the spill directory with
//     a throwaway durable write at most once per SpillPolicy.Probe
//     (default one second), from the commit path, so an idle tracker does
//     not spin. A successful probe re-arms sealing; the next seal flushes
//     the accumulated tail, clears degraded mode, and publishes a healthy
//     catalog generation.
//
// What degraded mode never does: lose committed history silently (it is all
// in memory and seals as soon as the disk returns), block or fail commits,
// or corrupt the directory — everything on disk stays exactly the
// crash-consistent state the last successful publication left.
//
// # Choosing a backend
//
// The mixed clock minimizes how many components a timestamp carries; the
// clock backend decides how much work each operation does over them. Two
// representations are available, selected per clock or per tracker:
//
//	clk := analysis.NewClockBackend(mixedclock.Tree)
//	online := mixedclock.NewOnlineClockBackend(mixedclock.NewHybrid(), mixedclock.Tree)
//	tracker := mixedclock.NewTracker(mixedclock.WithBackend(mixedclock.Tree))
//
// Flat (the default) stores a []uint64 and pays O(k) per join, with minimal
// constants — the right choice for narrow clocks and for workloads whose
// joins genuinely touch most components. Tree is the tree clock of Mathur,
// Tunç, Pavlogiannis & Viswanathan (PLDI 2022) adapted to the mixed
// component space: it remembers how values were learned and skips
// already-dominated subtrees during joins, so re-acquiring an object you
// already dominate, deep join chains, and read-mostly phases cost only as
// much as the components that actually changed. Both backends produce
// identical timestamps (a property the test suite asserts exhaustively), and
// both serialize to the same flat wire form, so logs and comparisons are
// backend-agnostic. See BenchmarkBackends for head-to-head numbers per
// workload shape. Auto picks a backend from the observed computation —
// offline clocks resolve it against the analyzed width and join shape, a
// Tracker re-decides at every Compact.
//
// # Online detection
//
// The analyses above also run incrementally, over the live stream, through
// a Monitor registered on a running tracker:
//
//	m := tracker.NewMonitor(mixedclock.MonitorPolicy{Window: 1 << 16})
//	m.WatchOrder("credit-after-debit", isDebitWrite, isCreditWrite)
//	m.WatchPossibly("invariant-broken", pred)
//
// Every seal wakes the monitor, which evaluates the newly sealed segments
// through the same lock-free replay path Stream uses for sealed history —
// commits continue while it works, so monitoring never extends a
// stop-the-world window — and Monitor.Sync catches it up with the unsealed
// tail on demand. The monitor maintains a streaming concurrency census, an
// exact schedule-sensitive pair scanner, a happened-before index over the
// last Window events, the registered order and predicate watches, and an
// incremental König lower bound on the optimal clock width; detections
// carry epoch and trace-index provenance, and the first order violation
// arms an online recovery line. The same detection attaches to a run from
// outside the process via its spill directory: `mvc detect -live -dir DIR`
// follows the published catalog and evaluates sealed segments as they
// land. See the internal/track package documentation for the windowing
// guarantees (what stays exact, what becomes sound-but-bounded).
//
// # Load generation and headline numbers
//
// The repo ships its own throughput harness: `mvc spam` (also standalone
// as cmd/loadgen) runs a warmup phase and then a timed or fixed-op-count
// mixed read/write phase against a live Tracker — configurable worker
// count, object count, read fraction, uniform or zipf object choice,
// per-event Do or batched commits, an optional durable Store and an
// optional online Monitor riding the run — and reports mops/sec,
// log-linear-histogram latency percentiles, allocation rates and the
// tracker's final TrackerStats (clock width, seals, compaction and
// retention totals). Runs are deterministic under -seed with -ops; the
// JSON/CSV formats are stable for scripting, and the same engine backs
// the end-to-end BenchmarkLoadgenMixed in the CI regression gate.
// cmd/figures regenerates the paper's §V evaluation through the same live
// tracker pipeline by default (byte-identical to the direct simulator,
// pinned by test) plus a backend × batch × read-ratio throughput sweep.
//
// # Persistence
//
// WriteLog stores a timestamped computation with one full vector per event;
// WriteLogDelta stores, per event, only the components that changed against
// the same thread's previous stamp (with periodic full-vector sync points),
// which shrinks logs by roughly clock-width ÷ changes-per-event on wide
// clocks. Both formats tolerate truncation, and ReadLog auto-detects which
// one a stream carries.
package mixedclock
