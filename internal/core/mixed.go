package core

import (
	"fmt"

	"mixedclock/internal/event"
	"mixedclock/internal/treeclock"
	"mixedclock/internal/vclock"
)

// MixedClock timestamps events over a fixed component set using the update
// rule of §III-C:
//
//	e.V = max(p.V, q.V)
//	if q ∈ components: e.V[q]++
//	if p ∈ components: e.V[p]++
//
// after which both thread p and object q adopt e.V. When the component set
// is a vertex cover of the computation's graph (the offline algorithm
// guarantees this), the result is a valid vector clock of optimal size
// (Theorems 2 and 3).
//
// The per-thread and per-object clock state is held behind vclock.Clock, so
// the representation is pluggable: the flat reference backend pays O(k) per
// event, while the tree backend (internal/treeclock) pays only for the
// components each join actually changes. Both produce identical timestamps.
//
// MixedClock is not safe for concurrent use; package track wraps it for live
// goroutines.
type MixedClock struct {
	comps   *ComponentSet
	backend vclock.Backend
	threads map[event.ThreadID]vclock.Clock
	objects map[event.ObjectID]vclock.Clock
	err     error
	events  int
}

// NewMixedClock returns a clock over the given components, using the flat
// backend. The set may be grown behind the clock's back (the online tracker
// does exactly that); vectors expand on demand.
func NewMixedClock(comps *ComponentSet) *MixedClock {
	return NewMixedClockBackend(comps, vclock.BackendFlat)
}

// NewMixedClockBackend is NewMixedClock with an explicit clock
// representation. BackendAuto is resolved here from the component-set width
// (Analysis.NewClockBackend resolves it with the join shape too, which it
// can read off the graph).
func NewMixedClockBackend(comps *ComponentSet, backend vclock.Backend) *MixedClock {
	backend = ResolveBackend(backend, comps.Len(), 0)
	return &MixedClock{
		comps:   comps,
		backend: backend,
		threads: make(map[event.ThreadID]vclock.Clock),
		objects: make(map[event.ObjectID]vclock.Clock),
	}
}

// NewBackendClock returns an empty clock in the configured representation.
// BackendAuto must be resolved (ResolveBackend) before clocks are built;
// unresolved it falls back to the flat reference.
func NewBackendClock(b vclock.Backend) vclock.Clock {
	if b == vclock.BackendTree {
		return treeclock.New(0)
	}
	return vclock.NewFlat(0)
}

// UpdateRule is the single implementation of the §III-C clock update,
// shared by MixedClock (offline/online timestamping) and the live tracker
// (package track). The thread's clock is the mutable master: it absorbs the
// object's clock, ticks the covered endpoints (object first, then thread),
// grows to the clock width so printed stamps align (the paper's Fig. 3
// shows fixed-width vectors; comparisons are width-agnostic either way),
// and the object's clock then re-absorbs the result — in-place joins at
// both steps, which is where the tree backend's subtree pruning pays off.
// After the call tv holds the event's timestamp and ov equals it.
//
// thrIdx and objIdx are the endpoints' component indices, -1 when the
// endpoint is not a component. The return value reports whether any
// endpoint was covered; false means the clock cannot order this event.
func UpdateRule(tv, ov vclock.Clock, thrIdx, objIdx, width int) bool {
	tv.Join(ov)
	ticked := false
	if objIdx >= 0 {
		tv.Tick(objIdx)
		ticked = true
	}
	if thrIdx >= 0 {
		tv.Tick(thrIdx)
		ticked = true
	}
	tv.Grow(width)
	// tv dominates ov (it just joined it), so this join makes ov equal to
	// the event clock; for the tree backend it copies only what changed.
	ov.Join(tv)
	return ticked
}

// UpdateRuleDelta is UpdateRule with change capture: every component the
// event changed on the thread's clock — join raises and ticks alike — is
// appended to dst as an (index, value) assignment, so that the thread's
// previous stamp Apply'd with the capture is exactly the event's stamp. The
// caller owns dst (pass a retained scratch slice to keep the hot path
// allocation-free); the extended slice and the covered flag are returned.
func UpdateRuleDelta(tv, ov vclock.Clock, thrIdx, objIdx, width int, dst []vclock.Delta) ([]vclock.Delta, bool) {
	dst = tv.JoinDelta(ov, dst)
	dst, ticked := TickCovered(tv, thrIdx, objIdx, dst)
	tv.Grow(width)
	ov.Join(tv)
	return dst, ticked
}

// TickCovered is the tick half of the §III-C rule with change capture: it
// ticks the covered endpoints of an event — object first, then thread, the
// order every path must agree on — appending the changes to dst. It returns
// the extended buffer and whether any endpoint was covered. Shared by
// UpdateRuleDelta and the live tracker's re-acquisition fast path (which
// skips the join but must capture ticks identically).
func TickCovered(tv vclock.Clock, thrIdx, objIdx int, dst []vclock.Delta) ([]vclock.Delta, bool) {
	ticked := false
	if objIdx >= 0 {
		dst = tv.TickDelta(objIdx, dst)
		ticked = true
	}
	if thrIdx >= 0 {
		dst = tv.TickDelta(thrIdx, dst)
		ticked = true
	}
	return dst, ticked
}

// clocksFor resolves the per-thread and per-object clock state and the
// component indices of e's endpoints (-1 when not a component).
func (c *MixedClock) clocksFor(e event.Event) (tv, ov vclock.Clock, thrIdx, objIdx int) {
	tv = c.threads[e.Thread]
	if tv == nil {
		tv = NewBackendClock(c.backend)
		c.threads[e.Thread] = tv
	}
	ov = c.objects[e.Object]
	if ov == nil {
		ov = NewBackendClock(c.backend)
		c.objects[e.Object] = ov
	}
	thrIdx, objIdx = -1, -1
	if i, ok := c.comps.IndexOf(ThreadComponent(e.Thread)); ok {
		thrIdx = i
	}
	if i, ok := c.comps.IndexOf(ObjectComponent(e.Object)); ok {
		objIdx = i
	}
	return tv, ov, thrIdx, objIdx
}

// noteUncovered records the clock-misuse error for an uncovered event.
func (c *MixedClock) noteUncovered(e event.Event) {
	if c.err == nil {
		// The event's edge is not covered: this clock was built for a
		// different computation. The stamp produced here cannot order the
		// event; record the misuse for Err instead of panicking.
		c.err = fmt.Errorf("core: event %d %v not covered by components %v",
			e.Index, e, c.comps)
	}
}

// Timestamp implements clock.Timestamper via UpdateRule.
func (c *MixedClock) Timestamp(e event.Event) vclock.Vector {
	tv, ov, thrIdx, objIdx := c.clocksFor(e)
	if !UpdateRule(tv, ov, thrIdx, objIdx, c.comps.Len()) {
		c.noteUncovered(e)
	}
	c.events++
	return tv.Flatten()
}

// TimestampDelta is Timestamp without the O(k) materialization: instead of
// flattening the thread's clock it appends the event's change set — against
// the thread's previous stamp — to dst and returns the extended buffer plus
// the clock width at this event (the stamp's nominal length; components
// beyond the last assignment are zero). Mixing TimestampDelta and Timestamp
// on one clock is fine; both advance the same state. This is the offline
// half of the delta stamping pipeline: tlog's delta writer consumes the
// capture directly, so exporting a trace never builds full vectors except at
// sync points.
func (c *MixedClock) TimestampDelta(e event.Event, dst []vclock.Delta) ([]vclock.Delta, int) {
	tv, ov, thrIdx, objIdx := c.clocksFor(e)
	dst, ticked := UpdateRuleDelta(tv, ov, thrIdx, objIdx, c.comps.Len(), dst)
	if !ticked {
		c.noteUncovered(e)
	}
	c.events++
	return dst, c.comps.Len()
}

// Components implements clock.Timestamper.
func (c *MixedClock) Components() int { return c.comps.Len() }

// ComponentSet returns the clock's component set (shared, not a copy).
func (c *MixedClock) ComponentSet() *ComponentSet { return c.comps }

// Backend returns the clock representation in use.
func (c *MixedClock) Backend() vclock.Backend { return c.backend }

// Name implements clock.Timestamper.
func (c *MixedClock) Name() string {
	if c.backend == vclock.BackendFlat {
		return "mixed/offline"
	}
	return "mixed/offline+" + c.backend.String()
}

// Events returns how many events have been timestamped.
func (c *MixedClock) Events() int { return c.events }

// Err reports the first uncovered event encountered, or nil. A non-nil
// result means at least one returned timestamp is unable to order its event
// and the clock's output must not be trusted.
func (c *MixedClock) Err() error { return c.err }

// ThreadVector returns a copy of the current vector held by thread t.
func (c *MixedClock) ThreadVector(t event.ThreadID) vclock.Vector {
	if v := c.threads[t]; v != nil {
		return v.Flatten()
	}
	return nil
}

// ObjectVector returns a copy of the current vector held by object o.
func (c *MixedClock) ObjectVector(o event.ObjectID) vclock.Vector {
	if v := c.objects[o]; v != nil {
		return v.Flatten()
	}
	return nil
}
