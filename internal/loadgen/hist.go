package loadgen

import "math/bits"

// subBits is the histogram's per-power-of-two resolution: each power-of-two
// range is split into 1<<subBits linear sub-buckets, bounding quantile error
// to ~1/2^subBits (≈3%) of the reported value — the classic HDR-histogram
// layout, here over int64 nanoseconds with no dependencies.
const subBits = 5

// histBuckets covers every int64 value: shifts 0..63-subBits, 1<<subBits
// sub-buckets each (indexes below 1<<subBits are exact).
const histBuckets = (64 - subBits) << subBits

// hist is a fixed-size log-linear latency histogram. Recording is two array
// ops, merging is element-wise addition, and quantiles walk the cumulative
// counts; workers each own one and the reporter merges them at the end, so
// recording is entirely uncontended.
type hist struct {
	counts [histBuckets]int64
	n      int64
	max    int64
}

// bucketOf maps a non-negative value to its bucket index. Values below
// 1<<subBits map exactly; larger values keep subBits significant bits.
func bucketOf(v int64) int {
	if v < 0 {
		v = 0
	}
	u := uint64(v)
	if u < 1<<subBits {
		return int(u)
	}
	shift := bits.Len64(u) - subBits - 1
	// u>>shift is in [1<<subBits, 2<<subBits), so indexes are contiguous
	// across the exact/log-linear boundary.
	return (shift << subBits) + int(u>>uint(shift))
}

// valueOf returns a representative (midpoint) value for a bucket index —
// the inverse of bucketOf up to sub-bucket resolution.
func valueOf(idx int) int64 {
	if idx < 1<<subBits {
		return int64(idx)
	}
	shift := (idx >> subBits) - 1
	base := int64(idx-(shift<<subBits)) << uint(shift)
	return base + int64(1)<<uint(shift)/2
}

// recordN adds n observations of value v.
func (h *hist) recordN(v int64, n int64) {
	h.counts[bucketOf(v)] += n
	h.n += n
	if v > h.max {
		h.max = v
	}
}

// merge folds o into h.
func (h *hist) merge(o *hist) {
	for i, c := range o.counts {
		h.counts[i] += c
	}
	h.n += o.n
	if o.max > h.max {
		h.max = o.max
	}
}

// quantile returns the value at quantile q in [0, 1]; the top quantile is
// clamped to the exact observed maximum.
func (h *hist) quantile(q float64) int64 {
	if h.n == 0 {
		return 0
	}
	target := int64(q * float64(h.n))
	if target >= h.n-1 {
		return h.max
	}
	var cum int64
	for i, c := range h.counts {
		cum += c
		if cum > target {
			v := valueOf(i)
			if v > h.max {
				v = h.max
			}
			return v
		}
	}
	return h.max
}
