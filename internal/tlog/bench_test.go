package tlog

import (
	"bytes"
	"math/rand"
	"testing"

	"mixedclock/internal/clock"
	"mixedclock/internal/core"
	"mixedclock/internal/event"
	"mixedclock/internal/vclock"
)

func benchComputation(b *testing.B, events int) (*event.Trace, []vclock.Vector) {
	b.Helper()
	rng := rand.New(rand.NewSource(3))
	tr := event.NewTrace()
	for i := 0; i < events; i++ {
		tr.Append(event.ThreadID(rng.Intn(16)), event.ObjectID(rng.Intn(16)), event.OpWrite)
	}
	return tr, clock.Run(tr, core.AnalyzeTrace(tr).NewClock())
}

func BenchmarkWriteAll(b *testing.B) {
	tr, stamps := benchComputation(b, 10_000)
	var buf bytes.Buffer
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf.Reset()
		if err := WriteAll(&buf, tr, stamps); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(buf.Len())/float64(tr.Len()), "bytes/event")
}

func BenchmarkReadAll(b *testing.B) {
	tr, stamps := benchComputation(b, 10_000)
	var buf bytes.Buffer
	if err := WriteAll(&buf, tr, stamps); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := ReadAll(bytes.NewReader(data)); err != nil {
			b.Fatal(err)
		}
	}
}
