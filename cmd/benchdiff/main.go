// Benchdiff is the CI benchmark-regression gate: it parses two `go test
// -bench` output files (base and head), takes the per-benchmark minimum of
// the ns/op samples (robust to the one-sided noise of shared CI runners),
// writes the comparison as JSON, and exits nonzero when any benchmark
// present in both runs slowed down by more than the threshold.
//
//	go test -bench 'Backends|TrackerParallel' -count=6 > head.txt   # on PR
//	git checkout $BASE && go test -bench ... > base.txt             # on base
//	go run ./cmd/benchdiff -base base.txt -head head.txt \
//	    -json BENCH_pr.json -threshold-pct 20
//
// Benchmarks that exist only in one run are reported but never gate (new
// benchmarks have no baseline; deleted ones have no head). benchdiff
// complements benchstat: benchstat gives the statistician's view, benchdiff
// gives a deterministic threshold and a machine-readable artifact.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Sample is the aggregate of one benchmark's runs within a single file.
// The gate compares minima: ns/op noise on shared CI runners is one-sided
// (noisy neighbours only ever slow a run down), so the min of -count runs
// is the most stable estimate of true cost. The mean is kept for context.
type Sample struct {
	Name   string  `json:"name"`
	Count  int     `json:"count"`
	MinNs  float64 `json:"min_ns_per_op"`
	MeanNs float64 `json:"mean_ns_per_op"`
}

// Comparison is one benchmark's base-vs-head entry in the JSON artifact.
// The ns/op figures are per-file minima (see Sample).
type Comparison struct {
	Name     string   `json:"name"`
	BaseNsOp *float64 `json:"base_ns_per_op,omitempty"`
	HeadNsOp *float64 `json:"head_ns_per_op,omitempty"`
	// DeltaPct is (head-base)/base*100; positive means head is slower.
	DeltaPct   *float64 `json:"delta_pct,omitempty"`
	Regression bool     `json:"regression"`
}

// Report is the full JSON artifact.
type Report struct {
	ThresholdPct float64      `json:"threshold_pct"`
	Regressions  int          `json:"regressions"`
	Benchmarks   []Comparison `json:"benchmarks"`
}

// parseBenchFile reads `go test -bench` output, collecting ns/op samples per
// benchmark name. The GOMAXPROCS suffix (-8 etc.) is kept: it is part of the
// benchmark's identity, and base and head run on the same machine in CI.
func parseBenchFile(path string) (map[string]*Sample, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	out := make(map[string]*Sample)
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		ns, name, ok := parseBenchLine(sc.Text())
		if !ok {
			continue
		}
		s := out[name]
		if s == nil {
			s = &Sample{Name: name, MinNs: ns}
			out[name] = s
		}
		if ns < s.MinNs {
			s.MinNs = ns
		}
		// Running mean keeps the math overflow-safe for any count.
		s.Count++
		s.MeanNs += (ns - s.MeanNs) / float64(s.Count)
	}
	return out, sc.Err()
}

// parseBenchLine extracts (ns/op, name) from one benchmark result line, or
// reports ok=false for any other line (headers, PASS, metrics-only lines).
func parseBenchLine(line string) (ns float64, name string, ok bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return 0, "", false
	}
	if _, err := strconv.Atoi(fields[1]); err != nil {
		return 0, "", false // iterations column missing: not a result line
	}
	for i := 2; i+1 < len(fields); i += 2 {
		if fields[i+1] == "ns/op" {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return 0, "", false
			}
			return v, fields[0], true
		}
	}
	return 0, "", false
}

// compare joins base and head samples into the report, flagging regressions
// beyond thresholdPct.
func compare(base, head map[string]*Sample, thresholdPct float64) Report {
	names := make(map[string]bool)
	for n := range base {
		names[n] = true
	}
	for n := range head {
		names[n] = true
	}
	sorted := make([]string, 0, len(names))
	for n := range names {
		sorted = append(sorted, n)
	}
	sort.Strings(sorted)

	rep := Report{ThresholdPct: thresholdPct}
	for _, n := range sorted {
		c := Comparison{Name: n}
		b, h := base[n], head[n]
		if b != nil {
			v := b.MinNs
			c.BaseNsOp = &v
		}
		if h != nil {
			v := h.MinNs
			c.HeadNsOp = &v
		}
		if b != nil && h != nil && b.MinNs > 0 {
			d := (h.MinNs - b.MinNs) / b.MinNs * 100
			c.DeltaPct = &d
			if d > thresholdPct {
				c.Regression = true
				rep.Regressions++
			}
		}
		rep.Benchmarks = append(rep.Benchmarks, c)
	}
	return rep
}

func run(basePath, headPath, jsonPath string, thresholdPct float64, stdout *os.File) (int, error) {
	base, err := parseBenchFile(basePath)
	if err != nil {
		return 2, fmt.Errorf("base: %w", err)
	}
	head, err := parseBenchFile(headPath)
	if err != nil {
		return 2, fmt.Errorf("head: %w", err)
	}
	rep := compare(base, head, thresholdPct)

	if jsonPath != "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return 2, err
		}
		if err := os.WriteFile(jsonPath, append(data, '\n'), 0o644); err != nil {
			return 2, err
		}
	}
	for _, c := range rep.Benchmarks {
		switch {
		case c.DeltaPct != nil:
			flag := " "
			if c.Regression {
				flag = "!"
			}
			fmt.Fprintf(stdout, "%s %-60s %12.1f → %12.1f ns/op  %+6.1f%%\n",
				flag, c.Name, *c.BaseNsOp, *c.HeadNsOp, *c.DeltaPct)
		case c.HeadNsOp != nil:
			fmt.Fprintf(stdout, "+ %-60s %27.1f ns/op  (new)\n", c.Name, *c.HeadNsOp)
		default:
			fmt.Fprintf(stdout, "- %-60s (gone)\n", c.Name)
		}
	}
	if rep.Regressions > 0 {
		fmt.Fprintf(stdout, "\nFAIL: %d benchmark(s) regressed more than %.0f%%\n", rep.Regressions, thresholdPct)
		return 1, nil
	}
	fmt.Fprintf(stdout, "\nOK: no benchmark regressed more than %.0f%%\n", thresholdPct)
	return 0, nil
}

func main() {
	basePath := flag.String("base", "", "bench output of the base commit")
	headPath := flag.String("head", "", "bench output of the head commit")
	jsonPath := flag.String("json", "", "write the comparison as JSON to this path")
	threshold := flag.Float64("threshold-pct", 20, "fail when ns/op grows by more than this percent")
	flag.Parse()
	if *basePath == "" || *headPath == "" {
		fmt.Fprintln(os.Stderr, "usage: benchdiff -base base.txt -head head.txt [-json out.json] [-threshold-pct 20]")
		os.Exit(2)
	}
	code, err := run(*basePath, *headPath, *jsonPath, *threshold, os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
	}
	os.Exit(code)
}
