package baseline

import (
	"fmt"
	"math/rand"
	"testing"

	"mixedclock/internal/clock"
	"mixedclock/internal/event"
	"mixedclock/internal/vclock"
)

func TestDeltaRoundTripSingleChannel(t *testing.T) {
	var enc DeltaEncoder
	var dec DeltaDecoder
	seq := []vclock.Vector{
		{1, 0, 0},
		{2, 0, 0},
		{2, 3, 1},
		{2, 3, 1}, // unchanged → empty delta
		{5, 3, 2},
	}
	for i, v := range seq {
		d := enc.Encode("ch", v)
		got := dec.Decode("ch", d)
		if !got.Equal(v) {
			t.Fatalf("step %d: decoded %v, want %v", i, got, v)
		}
	}
}

func TestDeltaEmptyForUnchanged(t *testing.T) {
	var enc DeltaEncoder
	enc.Encode("ch", vclock.Vector{1, 2})
	d := enc.Encode("ch", vclock.Vector{1, 2})
	if len(d.Entries) != 0 {
		t.Fatalf("unchanged vector produced delta %v", d)
	}
	if d.Ints() != 0 {
		t.Fatalf("Ints = %d", d.Ints())
	}
}

func TestDeltaFirstSendIsSparse(t *testing.T) {
	// First transmission only carries nonzero components — the initial
	// baseline is the zero vector.
	var enc DeltaEncoder
	d := enc.Encode("ch", vclock.Vector{0, 7, 0, 1})
	if len(d.Entries) != 2 {
		t.Fatalf("first delta %v, want 2 entries", d)
	}
	if d.Ints() != 4 {
		t.Fatalf("Ints = %d, want 4", d.Ints())
	}
}

func TestDeltaChannelsIndependent(t *testing.T) {
	var enc DeltaEncoder
	enc.Encode("a", vclock.Vector{5, 5})
	d := enc.Encode("b", vclock.Vector{5, 5})
	if len(d.Entries) != 2 {
		t.Fatalf("channel b should start from zero, got delta %v", d)
	}
}

func TestDeltaGrowingVectors(t *testing.T) {
	var enc DeltaEncoder
	var dec DeltaDecoder
	d := enc.Encode("ch", vclock.Vector{1})
	if got := dec.Decode("ch", d); !got.Equal(vclock.Vector{1}) {
		t.Fatalf("decoded %v", got)
	}
	// The vector grows a component (online mixed clock behaviour).
	d = enc.Encode("ch", vclock.Vector{1, 4})
	if got := dec.Decode("ch", d); !got.Equal(vclock.Vector{1, 4}) {
		t.Fatalf("decoded %v after growth", got)
	}
}

func TestDeltaRoundTripRandomTrace(t *testing.T) {
	// Round-trip correctness on a uniform random workload: every event's
	// timestamp, sent as a delta on its (thread → object) channel, must
	// reconstruct exactly. (No savings asserted here — uniform access with
	// narrow vectors is the technique's worst case.)
	rng := rand.New(rand.NewSource(33))
	tr := randomTrace(rng, 5, 5, 300)
	c := NewThreadClock(5, 5)
	stamps := clock.Run(tr, c)

	var enc DeltaEncoder
	var dec DeltaDecoder
	for i, e := range tr.Events() {
		ch := fmt.Sprintf("%v->%v", e.Thread, e.Object)
		d := enc.Encode(ch, stamps[i])
		got := dec.Decode(ch, d)
		if !got.Equal(stamps[i]) {
			t.Fatalf("event %d: decoded %v, want %v", i, got, stamps[i])
		}
	}
}

func TestDeltaSavesOnBurstyWorkload(t *testing.T) {
	// Singhal–Kshemkalyani pays off when consecutive transmissions on a
	// channel differ in few components: wide vectors plus bursty access.
	// Each thread performs runs of operations on one object before moving
	// on, so on a repeated channel only the thread's own component moved.
	const nThreads, nObjects, bursts, burstLen = 20, 20, 30, 10
	rng := rand.New(rand.NewSource(34))
	tr := event.NewTrace()
	for b := 0; b < bursts; b++ {
		for tid := 0; tid < nThreads; tid++ {
			obj := event.ObjectID(rng.Intn(nObjects))
			for k := 0; k < burstLen; k++ {
				tr.Append(event.ThreadID(tid), obj, event.OpWrite)
			}
		}
	}
	stamps := clock.Run(tr, NewThreadClock(nThreads, nObjects))

	var enc DeltaEncoder
	var dec DeltaDecoder
	fullInts, deltaInts := 0, 0
	for i, e := range tr.Events() {
		ch := fmt.Sprintf("%v->%v", e.Thread, e.Object)
		d := enc.Encode(ch, stamps[i])
		if got := dec.Decode(ch, d); !got.Equal(stamps[i]) {
			t.Fatalf("event %d: decoded %v, want %v", i, got, stamps[i])
		}
		fullInts += len(stamps[i])
		deltaInts += d.Ints()
	}
	if deltaInts*2 > fullInts {
		t.Fatalf("expected ≥2× saving on bursty workload: %d delta ints vs %d full ints",
			deltaInts, fullInts)
	}
}

func TestDeltaString(t *testing.T) {
	d := Delta{Entries: []DeltaEntry{{Index: 0, Value: 3}, {Index: 2, Value: 1}}}
	if got := d.String(); got != "{0:3, 2:1}" {
		t.Errorf("String = %q", got)
	}
	if got := (Delta{}).String(); got != "{}" {
		t.Errorf("empty String = %q", got)
	}
}
