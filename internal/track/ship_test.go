package track

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"mixedclock/internal/tlog"
)

// TestShipperRoundTrip: ship incrementally, resume from the cursor, and end
// with a destination directory that is itself openable with identical
// replay.
func TestShipperRoundTrip(t *testing.T) {
	src := t.TempDir()
	dst := filepath.Join(t.TempDir(), "mirror")
	tr, err := Open(src)
	if err != nil {
		t.Fatal(err)
	}
	th, ob := tr.NewThread("t0"), tr.NewObject("o0")
	for i := 0; i < 10; i++ {
		th.Write(ob, nil)
	}
	if err := tr.Seal(); err != nil {
		t.Fatal(err)
	}

	sh := &Shipper{Src: src, Dst: dst}
	rep, err := sh.ConsumeUpTo(0)
	if err != nil {
		t.Fatal(err)
	}
	if rep.SealedEvents != 10 || rep.ShippedEvents != 0 {
		t.Errorf("report %+v, want sealed 10 shipped 0", rep)
	}
	if len(rep.Copied) == 0 {
		t.Fatal("first pass copied nothing")
	}
	// The cursor landed in Src.
	cf, err := os.Open(filepath.Join(src, tlog.ShipCursorFileName))
	if err != nil {
		t.Fatal(err)
	}
	cur, err := tlog.DecodeShipCursor(cf)
	cf.Close()
	if err != nil {
		t.Fatal(err)
	}
	if cur.ShippedEvents != 10 || cur.Generation != rep.Generation {
		t.Errorf("cursor %+v disagrees with report %+v", cur, rep)
	}

	// More history, second incremental pass: only the new segment copies.
	for i := 0; i < 10; i++ {
		th.Write(ob, nil)
	}
	if err := tr.Seal(); err != nil {
		t.Fatal(err)
	}
	rep2, err := sh.ConsumeUpTo(rep.Generation + 1)
	if err != nil {
		t.Fatal(err)
	}
	if rep2.ShippedEvents != 10 {
		t.Errorf("second pass started at %d, want 10", rep2.ShippedEvents)
	}
	if len(rep2.Copied) != 1 {
		t.Errorf("second pass copied %v, want just the new segment", rep2.Copied)
	}

	// Asking beyond the published generation reports ErrCatalogBehind.
	if _, err := sh.ConsumeUpTo(rep2.Generation + 100); !errors.Is(err, ErrCatalogBehind) {
		t.Errorf("future generation: %v, want ErrCatalogBehind", err)
	}

	var want bytes.Buffer
	if err := tr.SnapshotTo(&want); err != nil {
		t.Fatal(err)
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}

	// The mirror is self-describing: Open(dst) replays the shipped history.
	re, err := Open(dst)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if err := re.Err(); err != nil {
		t.Fatalf("opening the mirror: %v", err)
	}
	var got bytes.Buffer
	if err := re.SnapshotTo(&got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Bytes(), want.Bytes()) {
		t.Error("mirror replay differs from source")
	}
}

// TestShipperVerifiesCopies: a source segment that disagrees with its
// catalog hash fails the ship instead of propagating corruption.
func TestShipperVerifiesCopies(t *testing.T) {
	src := t.TempDir()
	tr, err := Open(src)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	th, ob := tr.NewThread("t0"), tr.NewObject("o0")
	for i := 0; i < 5; i++ {
		th.Write(ob, nil)
	}
	if err := tr.Seal(); err != nil {
		t.Fatal(err)
	}
	seg := tr.Segments()[0]
	data, err := os.ReadFile(seg.Path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 1
	if err := os.WriteFile(seg.Path, data, 0o666); err != nil {
		t.Fatal(err)
	}
	sh := &Shipper{Src: src, Dst: t.TempDir()}
	if _, err := sh.ConsumeUpTo(0); err == nil {
		t.Fatal("shipped a segment whose hash disagrees with the catalog")
	}
	// The cursor must not have advanced past the failure.
	if _, err := os.Stat(filepath.Join(src, tlog.ShipCursorFileName)); !os.IsNotExist(err) {
		t.Error("cursor written despite a failed pass")
	}
}

// TestShipperCursorAheadOfCatalog: a cursor from a future generation (the
// catalog regressed, e.g. restored from backup) is an error, not silent
// re-shipping.
func TestShipperCursorAhead(t *testing.T) {
	src := t.TempDir()
	tr, err := Open(src)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	th, ob := tr.NewThread("t0"), tr.NewObject("o0")
	th.Write(ob, nil)
	if err := tr.Seal(); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tlog.EncodeShipCursor(&buf, &tlog.ShipCursor{
		FormatVersion: tlog.ShipCursorFormatVersion,
		Generation:    1 << 40,
		ShippedEvents: 1,
	}); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(src, tlog.ShipCursorFileName), buf.Bytes(), 0o666); err != nil {
		t.Fatal(err)
	}
	sh := &Shipper{Src: src, Dst: t.TempDir()}
	if _, err := sh.ConsumeUpTo(0); err == nil {
		t.Fatal("accepted a cursor ahead of the catalog")
	}
}
