package baseline

import (
	"fmt"

	"mixedclock/internal/vclock"
)

// Delta is a sparse vector-clock update: only the components that changed
// since the previous transmission on the same channel, as (index, value)
// pairs. This is the Singhal–Kshemkalyani technique (§VI of the paper):
// orthogonal to the choice of components, so it applies to thread-based,
// object-based and mixed clocks alike.
type Delta struct {
	Entries []DeltaEntry
}

// DeltaEntry carries one changed component.
type DeltaEntry struct {
	Index int
	Value uint64
}

// Ints returns the number of integers on the wire: two per entry (index and
// value). Comparing against len(full vector) quantifies the saving.
func (d Delta) Ints() int { return 2 * len(d.Entries) }

// DeltaEncoder emits sparse updates per directed channel. A channel is any
// stable identifier for a (sender, receiver) pair — in the shared-memory
// reading, a thread→object or object→thread edge.
//
// The zero value is ready to use.
type DeltaEncoder struct {
	last map[string]vclock.Vector
}

// Encode returns the components of v that differ from the previous vector
// encoded on channel, then remembers v as the new baseline for that channel.
func (e *DeltaEncoder) Encode(channel string, v vclock.Vector) Delta {
	if e.last == nil {
		e.last = make(map[string]vclock.Vector)
	}
	prev := e.last[channel]
	var d Delta
	for i := 0; i < len(v); i++ {
		if v[i] != prev.At(i) {
			d.Entries = append(d.Entries, DeltaEntry{Index: i, Value: v[i]})
		}
	}
	e.last[channel] = v.Clone()
	return d
}

// DeltaDecoder reconstructs full vectors from sparse updates, mirroring the
// per-channel state of the encoder. The zero value is ready to use.
type DeltaDecoder struct {
	last map[string]vclock.Vector
}

// Decode applies d to the channel's previous vector and returns the
// reconstructed full vector.
//
// Decoding is exact only when updates arrive in order and none are lost —
// the FIFO-channel assumption of Singhal–Kshemkalyani. Out-of-order deltas
// surface as validation failures in the round-trip tests, not silent
// corruption, because values are absolute (not increments).
func (dec *DeltaDecoder) Decode(channel string, d Delta) vclock.Vector {
	if dec.last == nil {
		dec.last = make(map[string]vclock.Vector)
	}
	v := dec.last[channel].Clone()
	for _, ent := range d.Entries {
		v = v.Set(ent.Index, ent.Value)
	}
	dec.last[channel] = v.Clone()
	return v
}

// String renders the delta as "{i:v, ...}".
func (d Delta) String() string {
	out := "{"
	for i, ent := range d.Entries {
		if i > 0 {
			out += ", "
		}
		out += fmt.Sprintf("%d:%d", ent.Index, ent.Value)
	}
	return out + "}"
}
