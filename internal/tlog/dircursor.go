package tlog

import (
	"errors"
	"fmt"
	"io"
	"io/fs"
	"math/rand/v2"
	"path/filepath"
	"time"

	"mixedclock/internal/event"
	"mixedclock/internal/vclock"
	"mixedclock/internal/vfs"
)

// DirCursor follows the sealed history of a spill directory from outside
// the owning process: it re-reads catalog.json on every Poll, opens any
// newly published segments, and delivers their records in trace order with
// epoch provenance. That is how `mvc detect -live -dir` attaches to a
// running (or recovered, or cleanly closed) store without sharing memory
// with it — the catalog's atomic rename publication makes every read a
// consistent snapshot.
//
// The cursor is resilient to concurrent lifecycle activity: if a segment
// file vanishes between reading the catalog and opening it (a compaction
// or retention pass retired it), Poll re-reads the catalog and retries; if
// the retention floor has passed the cursor's position, Poll skips forward
// and reports the gap. Records at or above the catalog's SealedEvents are
// never delivered — the in-memory tail is visible only to in-process
// monitors.
type DirCursor struct {
	// FS is the filesystem the directory is read through; nil means vfs.OS.
	FS vfs.FS

	dir  string
	next int
	gen  int64
	// skipped accumulates records lost to retention (floor passed us).
	skipped int
	// idle counts consecutive polls that made no progress — NextDelay's
	// backoff exponent, reset whenever records arrive or the catalog
	// generation advances.
	idle int
}

// dirCursorRetries bounds catalog re-reads when segment files vanish under
// a concurrent compaction/retention pass.
const dirCursorRetries = 3

// Follow-mode backoff bounds: an idle directory is polled at most every
// dirCursorMinDelay at first, decaying exponentially to dirCursorMaxDelay,
// so attaching to a quiet run costs a handful of stats per second, not a
// hot loop.
const (
	dirCursorMinDelay = 50 * time.Millisecond
	dirCursorMaxDelay = 2 * time.Second
)

// NewDirCursor returns a cursor positioned at trace index 0 of dir's run.
func NewDirCursor(dir string) *DirCursor {
	return &DirCursor{dir: dir, gen: -1}
}

// fsys returns the cursor's filesystem, defaulting to the real one.
func (c *DirCursor) fsys() vfs.FS {
	if c.FS != nil {
		return c.FS
	}
	return vfs.OS
}

// NextDelay returns how long a follower should sleep before the next Poll:
// bounded exponential backoff with jitter, growing while polls deliver
// nothing and the catalog generation stands still, snapping back to the
// minimum the moment anything happens. Call it after each Poll.
func (c *DirCursor) NextDelay() time.Duration {
	d := dirCursorMinDelay << c.idle
	if d > dirCursorMaxDelay || d <= 0 {
		d = dirCursorMaxDelay
	}
	// ±25% jitter keeps a fleet of followers from polling in lockstep.
	return d - d/4 + rand.N(d/2)
}

// Next returns the global trace index of the next undelivered record.
func (c *DirCursor) Next() int { return c.next }

// Skipped returns how many records were skipped because a retention pass
// retired them before the cursor got there.
func (c *DirCursor) Skipped() int { return c.skipped }

// Poll reads the current catalog and delivers every newly sealed record to
// fn in trace order. Vectors are borrowed (valid only during the call).
// It returns the catalog snapshot it worked from — nil if the directory
// has no catalog yet, which is not an error; a live tracker publishes its
// first one at the first seal — and the number of records delivered.
// fn returning an error aborts the poll; delivered records stay consumed.
func (c *DirCursor) Poll(fn func(e event.Event, epoch int, v vclock.Vector) error) (*Catalog, int, error) {
	delivered := 0
	for attempt := 0; ; attempt++ {
		cat, err := c.readCatalog()
		if err != nil {
			if errors.Is(err, fs.ErrNotExist) {
				c.notePoll(delivered, c.gen)
				return nil, delivered, nil
			}
			return nil, delivered, err
		}
		if c.next < cat.RetainedEvents {
			c.skipped += cat.RetainedEvents - c.next
			c.next = cat.RetainedEvents
		}
		n, err := c.replay(cat, fn)
		delivered += n
		if err == nil {
			c.notePoll(delivered, cat.Generation)
			c.gen = cat.Generation
			return cat, delivered, nil
		}
		if errors.Is(err, fs.ErrNotExist) && attempt < dirCursorRetries {
			// The segment was retired between catalog read and open;
			// the next catalog generation describes its replacement.
			continue
		}
		return cat, delivered, err
	}
}

// notePoll feeds NextDelay's backoff: progress — delivered records or an
// advanced catalog generation — resets it, a fruitless poll deepens it.
func (c *DirCursor) notePoll(delivered int, gen int64) {
	if delivered > 0 || gen != c.gen {
		c.idle = 0
	} else if c.idle < 31 {
		c.idle++
	}
}

// readCatalog decodes catalog.json, falling back to the .prev backup when
// the primary is torn mid-publication.
func (c *DirCursor) readCatalog() (*Catalog, error) {
	cat, err := c.readCatalogFile(CatalogFileName)
	if err == nil || errors.Is(err, fs.ErrNotExist) {
		return cat, err
	}
	if prev, perr := c.readCatalogFile(CatalogPrevFileName); perr == nil {
		return prev, nil
	}
	return nil, err
}

func (c *DirCursor) readCatalogFile(name string) (*Catalog, error) {
	f, err := c.fsys().Open(filepath.Join(c.dir, name))
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return DecodeCatalog(f)
}

// replay walks cat's segments covering [c.next, SealedEvents) and streams
// their records.
func (c *DirCursor) replay(cat *Catalog, fn func(e event.Event, epoch int, v vclock.Vector) error) (int, error) {
	delivered := 0
	for _, seg := range cat.Segments {
		end := seg.FirstIndex + seg.Events
		if end <= c.next {
			continue
		}
		if seg.FirstIndex > c.next {
			return delivered, fmt.Errorf("tlog: catalog gap: next record %d but segment starts at %d", c.next, seg.FirstIndex)
		}
		if seg.Path == "" {
			return delivered, fmt.Errorf("tlog: segment %s [%d,%d) not spilled to disk; cannot follow from another process",
				SegmentFileName(SegmentMeta{Epoch: seg.Epoch, FirstIndex: seg.FirstIndex, Count: seg.Events}), seg.FirstIndex, end)
		}
		n, err := c.replaySegment(seg, fn)
		delivered += n
		if err != nil {
			return delivered, err
		}
	}
	return delivered, nil
}

// replaySegment opens one spill file and delivers its records from c.next
// on, advancing the cursor per record.
func (c *DirCursor) replaySegment(seg CatalogSegment, fn func(e event.Event, epoch int, v vclock.Vector) error) (int, error) {
	f, err := c.fsys().Open(filepath.Join(c.dir, filepath.FromSlash(seg.Path)))
	if err != nil {
		return 0, err
	}
	defer f.Close()
	sr, err := NewSegmentReader(f)
	if err != nil {
		return 0, fmt.Errorf("tlog: %s: %w", seg.Path, err)
	}
	delivered := 0
	for {
		e, v, err := sr.Next()
		if err == io.EOF {
			return delivered, nil
		}
		if err != nil {
			return delivered, fmt.Errorf("tlog: %s: %w", seg.Path, err)
		}
		if e.Index < c.next {
			continue // already delivered on an earlier poll
		}
		if err := fn(e, seg.Epoch, v); err != nil {
			return delivered, err
		}
		c.next = e.Index + 1
		delivered++
	}
}
