package track

import (
	"fmt"
	"sync"

	"mixedclock/internal/cut"
	"mixedclock/internal/detect"
	"mixedclock/internal/event"
	"mixedclock/internal/hb"
	"mixedclock/internal/matching"
	"mixedclock/internal/predicate"
	"mixedclock/internal/vclock"
)

// MonitorPolicy bounds a Monitor's state on unbounded runs.
type MonitorPolicy struct {
	// Window is how many recent events the monitor retains stamps and
	// lattice state for: the census compares new events against the last
	// Window stamps, happened-before queries answer within it, and
	// predicate watches explore the lattice of the window's suffix cuts.
	// 0 retains everything — exact offline equivalence, unbounded memory.
	// The schedule-sensitive pair scanner needs no window; it is exact in
	// O(objects + threads) state regardless.
	Window int
	// MaxCuts budgets each predicate-watch evaluation, as maxStates does
	// for the offline Possibly; 0 means predicate.DefaultMaxStates.
	MaxCuts int
	// OnDetection, when set, is called for every detection, from the
	// monitor's own goroutine, after the evaluation batch has released
	// the monitor's lock (so the callback may call Monitor methods).
	OnDetection func(Detection)
}

// Detection kinds.
const (
	// DetectPair flags a schedule-sensitive pair: conflicting adjacent
	// operations on one object whose only ordering is the object's lock.
	DetectPair = "pair"
	// DetectOrder flags an order-watch violation: a second-selector event
	// concurrent with the latest first-selector event.
	DetectOrder = "order"
	// DetectPossibly flags a predicate watch: some consistent global
	// state reachable from the retained window satisfies the predicate.
	DetectPossibly = "possibly"
)

// Detection is one finding, with full provenance into the run: the epoch
// and global trace index of the event that completed it.
type Detection struct {
	// Watch names the watch that fired; the built-in pair scanner reports
	// as "schedule-sensitive".
	Watch string
	// Kind is DetectPair, DetectOrder or DetectPossibly.
	Kind string
	// Epoch and Index locate the triggering event in the run; for
	// DetectPossibly they locate the last event consumed before the
	// evaluation that found the witness.
	Epoch int
	Index int
	// Event is the triggering event (zero for DetectPossibly).
	Event event.Event
	// Other is the earlier event of a pair or order detection: the pair's
	// first operation, or the order watch's latest first-match. OtherEpoch
	// is its epoch.
	Other      event.Event
	OtherEpoch int
	// Witness is the satisfying cut of a DetectPossibly finding.
	Witness cut.Cut
}

// String renders a one-line report with provenance.
func (d Detection) String() string {
	switch d.Kind {
	case DetectPossibly:
		return fmt.Sprintf("[%s] possibly: witness %v (epoch %d, after index %d)", d.Watch, d.Witness, d.Epoch, d.Index)
	case DetectOrder:
		return fmt.Sprintf("[%s] order violated: %v (epoch %d, index %d) concurrent with %v (epoch %d, index %d)",
			d.Watch, d.Event, d.Epoch, d.Index, d.Other, d.OtherEpoch, d.Other.Index)
	default:
		return fmt.Sprintf("[%s] %v <lock-only> %v (epoch %d, index %d)", d.Watch, d.Other, d.Event, d.Epoch, d.Index)
	}
}

// Selector picks events a watch applies to.
type Selector func(e event.Event) bool

// orderWatch keeps the latest first-selector match.
type orderWatch struct {
	name          string
	first, second Selector
	has           bool
	e             event.Event
	epoch         int
	stamp         vclock.Vector
}

// possiblyWatch fires once, at the first evaluation that finds a witness.
type possiblyWatch struct {
	name  string
	pred  predicate.Predicate
	fired bool
}

// Monitor evaluates detections online, over the live stream of a tracker
// it is registered on with NewMonitor. Consumption is incremental and
// barrier-free: every seal (explicit, automatic, from Compact, or the
// final one in Close) wakes the monitor's goroutine, which replays the
// newly sealed records through the same lock-free path Stream uses for
// sealed history — commits proceed while the monitor evaluates. The
// still-unsealed tail is consumed only on demand: Sync freezes it (the
// same short barrier a Snapshot takes) and catches the monitor up to the
// exact present.
//
// Per record the monitor feeds a windowed census accumulator, the exact
// streaming schedule-sensitive pair scanner, a windowed happened-before
// index, the registered order watches, and an incremental maximum matching
// (a live König lower bound on clock width); per batch it evaluates the
// registered predicate watches over the window's suffix-cut lattice.
// Detections carry epoch and trace-index provenance and are delivered
// through OnDetection and Detections.
type Monitor struct {
	t      *Tracker
	policy MonitorPolicy

	// mu serializes consumption (goroutine wake vs Sync) and guards all
	// evaluation state below. Never held while calling OnDetection.
	mu         sync.Mutex
	next       int // next trace index to consume
	epoch      int // epoch of the last consumed record
	census     *detect.CensusAccumulator
	pairs      *detect.PairScanner
	recent     *hb.Recent
	pred       *predicate.Streamer
	line       *cut.LineTracker
	inc        *matching.Incremental
	orders     []*orderWatch
	possiblys  []*possiblyWatch
	detections []Detection
	pending    []Detection // detections of the batch in progress
	err        error

	wake chan struct{}
	done chan struct{}
	stop sync.Once
	wg   sync.WaitGroup
}

// NewMonitor registers a new online detector on the tracker and starts its
// consumption goroutine. The monitor starts at the retention floor, so any
// already-sealed history is evaluated first. Register watches immediately
// after — before the first seal — to be sure no record is evaluated
// without them. Call Monitor.Close to stop and deregister it.
func (t *Tracker) NewMonitor(p MonitorPolicy) *Monitor {
	m := &Monitor{
		t:      t,
		policy: p,
		census: detect.NewCensusAccumulator(p.Window),
		pairs:  detect.NewPairScanner(),
		recent: hb.NewRecent(p.Window),
		pred:   predicate.NewStreamer(p.Window),
		line:   cut.NewLineTracker(),
		inc:    matching.NewIncremental(),
		wake:   make(chan struct{}, 1),
		done:   make(chan struct{}),
	}
	t.monMu.Lock()
	t.monitors = append(t.monitors, m)
	t.monMu.Unlock()
	m.wg.Add(1)
	go m.run()
	return m
}

// notifyMonitors wakes every registered monitor without blocking; called
// after seal/compact/close barriers have lifted.
func (t *Tracker) notifyMonitors() {
	t.monMu.Lock()
	ms := append([]*Monitor(nil), t.monitors...)
	t.monMu.Unlock()
	for _, m := range ms {
		select {
		case m.wake <- struct{}{}:
		default: // already signalled; it will see the new segments anyway
		}
	}
}

// run is the monitor goroutine: consume whatever is already sealed, then
// follow seal notifications.
func (m *Monitor) run() {
	defer m.wg.Done()
	m.consumeSealed()
	for {
		select {
		case <-m.done:
			return
		case <-m.wake:
			m.consumeSealed()
		}
	}
}

// WatchOrder registers an ordering invariant: every event matching second
// must be causally after the latest preceding event matching first. A
// second-match concurrent with that first-match raises a DetectOrder
// detection (cross-epoch matches are ordered by the Compact barrier and
// never fire). The first such detection arms the monitor's recovery line.
func (m *Monitor) WatchOrder(name string, first, second Selector) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.orders = append(m.orders, &orderWatch{name: name, first: first, second: second})
}

// WatchPossibly registers a predicate watch evaluated after every consumed
// batch (each seal, and each Sync) over the lattice of consistent global
// states reachable from the retained window, within the MaxCuts budget.
// It fires at most once, with the witness cut.
func (m *Monitor) WatchPossibly(name string, pred predicate.Predicate) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.possiblys = append(m.possiblys, &possiblyWatch{name: name, pred: pred})
}

// monitorSink adapts the monitor to the StampSink replay paths; vectors
// are borrowed per the sink contract and cloned by the accumulators that
// retain them.
type monitorSink struct{ m *Monitor }

func (s monitorSink) ConsumeStamp(e event.Event, epoch int, v vclock.Vector) error {
	s.m.consumeLocked(e, epoch, v)
	return nil
}

// consumeLocked evaluates one record; caller holds m.mu.
func (m *Monitor) consumeLocked(e event.Event, epoch int, v vclock.Vector) {
	if epoch != m.epoch {
		// A Compact barrier sits between epochs: nothing after it can be
		// concurrent with anything before, and no consistent state may
		// unexecute pre-barrier events. Fold the predicate window away;
		// the other accumulators are epoch-aware record by record.
		m.pred.Barrier()
		m.epoch = epoch
	}
	m.census.Add(epoch, v)
	m.recent.Add(epoch, v)
	m.inc.AddEdge(int(e.Thread), int(e.Object))
	m.pred.Add(e)
	if p, ok := m.pairs.Add(e, epoch, v); ok {
		m.pending = append(m.pending, Detection{
			Watch: "schedule-sensitive", Kind: DetectPair,
			Epoch: epoch, Index: e.Index, Event: e, Other: p.First, OtherEpoch: epoch,
		})
	}
	for _, w := range m.orders {
		// Check the second selector against the previous first-match
		// before updating it, so an event matching both selectors is
		// compared against its predecessor, not itself.
		if w.second(e) && w.has && w.epoch == epoch && w.stamp.Concurrent(v) {
			m.pending = append(m.pending, Detection{
				Watch: w.name, Kind: DetectOrder,
				Epoch: epoch, Index: e.Index, Event: e, Other: w.e, OtherEpoch: w.epoch,
			})
			if !m.line.Armed() {
				m.line.Arm(e.Index, epoch, v)
			}
		}
		if w.first(e) {
			w.has, w.e, w.epoch = true, e, epoch
			w.stamp = v.Clone()
		}
	}
	m.line.Add(e, epoch, v)
	m.next = e.Index + 1
}

// finishBatchLocked runs the per-batch evaluations (predicate watches) and
// hands back the batch's detections for delivery outside the lock.
func (m *Monitor) finishBatchLocked() []Detection {
	for _, w := range m.possiblys {
		if w.fired {
			continue
		}
		witness, found, err := m.pred.Possibly(w.pred, m.policy.MaxCuts)
		if err != nil {
			if m.err == nil {
				m.err = fmt.Errorf("track: monitor watch %q: %w", w.name, err)
			}
			continue
		}
		if found {
			w.fired = true
			m.pending = append(m.pending, Detection{
				Watch: w.name, Kind: DetectPossibly,
				Epoch: m.epoch, Index: m.next - 1, Witness: witness,
			})
		}
	}
	batch := m.pending
	m.pending = nil
	m.detections = append(m.detections, batch...)
	return batch
}

// deliver invokes the detection callback outside the monitor lock.
func (m *Monitor) deliver(batch []Detection) {
	if m.policy.OnDetection == nil {
		return
	}
	for _, d := range batch {
		m.policy.OnDetection(d)
	}
}

// consumeSealed catches the monitor up with sealed history — the
// barrier-free path: commits proceed while it evaluates.
func (m *Monitor) consumeSealed() {
	m.mu.Lock()
	upTo := int(m.t.sealed.Load())
	if upTo > m.next {
		if _, err := m.t.replaySealed(monitorSink{m}, m.next, upTo); err != nil && m.err == nil {
			m.err = err
		}
	}
	batch := m.finishBatchLocked()
	m.mu.Unlock()
	m.deliver(batch)
}

// Sync consumes everything up to the exact present: sealed history
// barrier-free, then the unsealed tail under the same short freeze a
// Snapshot takes. On return every committed record has been evaluated and
// the detections this call found delivered; a delivery already in flight
// on the monitor's own goroutine completes by Close, which joins it.
func (m *Monitor) Sync() error {
	m.mu.Lock()
	err := m.t.StreamFrom(m.next, monitorSink{m})
	if err != nil && m.err == nil {
		m.err = err
	}
	batch := m.finishBatchLocked()
	m.mu.Unlock()
	m.deliver(batch)
	return err
}

// Close stops the monitor's goroutine and deregisters it from the tracker.
// Already-collected detections and stats remain readable.
func (m *Monitor) Close() {
	m.stop.Do(func() {
		close(m.done)
		m.wg.Wait()
		m.t.monMu.Lock()
		for i, o := range m.t.monitors {
			if o == m {
				m.t.monitors = append(m.t.monitors[:i], m.t.monitors[i+1:]...)
				break
			}
		}
		m.t.monMu.Unlock()
	})
}

// Detections returns a snapshot of every detection so far, in consumption
// order.
func (m *Monitor) Detections() []Detection {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]Detection(nil), m.detections...)
}

// Err returns the first error the monitor hit (replay I/O or a predicate
// budget exhaustion), if any.
func (m *Monitor) Err() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.err
}

// HappenedBefore answers an ordering query over the retained window by
// stamp comparison (Theorem 2); ok is false when either event has slid
// out of the window or has not been consumed yet.
func (m *Monitor) HappenedBefore(i, j int) (hbefore, ok bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.recent.HappenedBefore(i, j)
}

// Concurrent answers a concurrency query over the retained window, with
// the same ok convention as HappenedBefore.
func (m *Monitor) Concurrent(i, j int) (conc, ok bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.recent.Concurrent(i, j)
}

// RecoveryLine returns the maximal consistent cut excluding the first
// order violation's causal future — the paper's recovery-line application
// run online. ok is false until a DetectOrder detection has armed it.
func (m *Monitor) RecoveryLine() (c cut.Cut, ok bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if !m.line.Armed() {
		return cut.Cut{}, false
	}
	return m.line.Line(), true
}

// MonitorStats is a live summary of a monitor's evaluation state.
type MonitorStats struct {
	// Consumed is how many records have been evaluated; Epoch is the
	// epoch of the latest one.
	Consumed int
	Epoch    int
	// Census is the streaming concurrency census over compared pairs;
	// CensusSkipped counts pairs whose earlier event left the window
	// before comparison.
	Census        detect.Census
	CensusSkipped int
	// Pairs counts schedule-sensitive pairs flagged so far.
	Pairs int
	// Detections counts all detections (pairs, order and predicate).
	Detections int
	// ClockWidth is the tracker's current mixed-clock width;
	// CoverLowerBound is the incremental-matching (König) lower bound on
	// the optimal width for the edges revealed to the monitor — how far
	// the online mechanism has drifted from optimal, live.
	ClockWidth      int
	CoverLowerBound int
	// WindowLo is the oldest trace index still answerable by
	// HappenedBefore/Concurrent.
	WindowLo int
}

// Stats returns a snapshot of the monitor's counters.
func (m *Monitor) Stats() MonitorStats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return MonitorStats{
		Consumed:        m.next,
		Epoch:           m.epoch,
		Census:          m.census.Census(),
		CensusSkipped:   m.census.Skipped(),
		Pairs:           m.pairs.Count(),
		Detections:      len(m.detections),
		ClockWidth:      m.t.Size(),
		CoverLowerBound: m.inc.Size(),
		WindowLo:        m.recent.Lo(),
	}
}
