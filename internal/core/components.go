// Package core implements the paper's contribution: the mixed vector clock,
// whose components are a mixture of threads and objects.
//
// The offline half (Analyze) computes the optimal component set for a known
// computation — a minimum vertex cover of its thread–object bipartite graph,
// found via maximum matching and the König–Egerváry theorem (Algorithm 1).
// The online half (CoverTracker and the mechanisms) grows a component set
// incrementally as events are revealed one at a time, per §IV: Naive, Random,
// Popularity and the threshold-based Hybrid the conclusion recommends.
// MixedClock then timestamps events over either component set with the
// update rule of §III-C.
package core

import (
	"fmt"
	"sort"

	"mixedclock/internal/bipartite"
	"mixedclock/internal/event"
	"mixedclock/internal/matching"
)

// Component is one coordinate of a mixed vector clock: either a thread or an
// object.
type Component struct {
	Side bipartite.Side
	ID   int
}

// ThreadComponent returns the component for thread t.
func ThreadComponent(t event.ThreadID) Component {
	return Component{Side: bipartite.Threads, ID: int(t)}
}

// ObjectComponent returns the component for object o.
func ObjectComponent(o event.ObjectID) Component {
	return Component{Side: bipartite.Objects, ID: int(o)}
}

// String renders the component in the paper's notation ("T2" or "O3").
func (c Component) String() string {
	switch c.Side {
	case bipartite.Threads:
		return event.ThreadID(c.ID).String()
	case bipartite.Objects:
		return event.ObjectID(c.ID).String()
	default:
		return fmt.Sprintf("Component(%d,%d)", int(c.Side), c.ID)
	}
}

// ComponentSet is an ordered set of components; the position of a component
// is its index in every vector timestamp. Components can only be appended —
// exactly the online constraint of §IV ("existing components … should not be
// modified as a new event arrives").
//
// The zero value is an empty set ready for use.
type ComponentSet struct {
	index map[Component]int
	list  []Component
}

// NewComponentSet returns an empty component set.
func NewComponentSet() *ComponentSet { return &ComponentSet{} }

// FromCover builds the component set of a minimum vertex cover, threads
// first, then objects, each ascending — a stable, documented order.
func FromCover(c *matching.Cover) *ComponentSet {
	s := NewComponentSet()
	for _, t := range c.Threads {
		s.Add(Component{Side: bipartite.Threads, ID: t})
	}
	for _, o := range c.Objects {
		s.Add(Component{Side: bipartite.Objects, ID: o})
	}
	return s
}

// Add appends c if absent and returns its index.
func (s *ComponentSet) Add(c Component) int {
	if i, ok := s.index[c]; ok {
		return i
	}
	if s.index == nil {
		s.index = make(map[Component]int)
	}
	i := len(s.list)
	s.index[c] = i
	s.list = append(s.list, c)
	return i
}

// IndexOf returns the index of c and whether it is present.
func (s *ComponentSet) IndexOf(c Component) (int, bool) {
	i, ok := s.index[c]
	return i, ok
}

// Contains reports whether c is in the set.
func (s *ComponentSet) Contains(c Component) bool {
	_, ok := s.index[c]
	return ok
}

// Len returns the number of components — the size of the vector clock.
func (s *ComponentSet) Len() int { return len(s.list) }

// At returns the component at index i.
func (s *ComponentSet) At(i int) Component { return s.list[i] }

// Components returns a copy of the ordered component list.
func (s *ComponentSet) Components() []Component {
	out := make([]Component, len(s.list))
	copy(out, s.list)
	return out
}

// Covers reports whether the event (t, o) is covered: at least one of its
// endpoints is a component. Every event of a computation must be covered for
// the mixed clock to be valid (the vertex-cover property).
func (s *ComponentSet) Covers(t event.ThreadID, o event.ObjectID) bool {
	return s.Contains(ThreadComponent(t)) || s.Contains(ObjectComponent(o))
}

// String renders the set like "{T2, O2, O3}" with threads and objects in a
// normalized order (sorted by side then ID), independent of insertion order.
func (s *ComponentSet) String() string {
	sorted := s.Components()
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].Side != sorted[j].Side {
			return sorted[i].Side < sorted[j].Side
		}
		return sorted[i].ID < sorted[j].ID
	})
	out := "{"
	for i, c := range sorted {
		if i > 0 {
			out += ", "
		}
		out += c.String()
	}
	return out + "}"
}
