package detect_test

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"mixedclock/internal/clock"
	"mixedclock/internal/core"
	"mixedclock/internal/detect"
	"mixedclock/internal/trace"
)

// TestCensusAccumulatorMatchesTakeCensus streams every generator workload's
// stamps through the accumulator with an unbounded window and checks the
// result equals the offline TakeCensus exactly — the census half of the
// online/offline equivalence property.
func TestCensusAccumulatorMatchesTakeCensus(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	for _, w := range trace.Workloads() {
		tr, err := trace.Generate(w, trace.Config{Threads: 5, Objects: 6, Events: 150, ReadFraction: 0.3}, rng)
		if err != nil {
			t.Fatal(err)
		}
		stamps := clock.Run(tr, core.AnalyzeTrace(tr).NewClock())
		acc := detect.NewCensusAccumulator(0)
		for _, v := range stamps {
			acc.Add(0, v)
		}
		if got, want := acc.Census(), detect.TakeCensus(stamps); got != want {
			t.Fatalf("%v: streaming census %+v, offline %+v", w, got, want)
		}
		if acc.Skipped() != 0 {
			t.Fatalf("%v: unbounded window skipped %d pairs", w, acc.Skipped())
		}
	}
}

// TestCensusAccumulatorWindowAccounting checks that with a bounded window
// every pair is either compared or counted as skipped, never lost.
func TestCensusAccumulatorWindowAccounting(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	tr, err := trace.Generate(trace.Uniform, trace.Config{Threads: 4, Objects: 4, Events: 100}, rng)
	if err != nil {
		t.Fatal(err)
	}
	stamps := clock.Run(tr, core.AnalyzeTrace(tr).NewClock())
	acc := detect.NewCensusAccumulator(10)
	for _, v := range stamps {
		acc.Add(0, v)
	}
	c := acc.Census()
	if all := len(stamps) * (len(stamps) - 1) / 2; c.Total+acc.Skipped() != all {
		t.Fatalf("compared %d + skipped %d != all pairs %d", c.Total, acc.Skipped(), all)
	}
	if c.Ordered+c.Concurrent != c.Total {
		t.Fatalf("census does not add up: %+v", c)
	}
}

// sortPairs orders pairs by (first, second) event index so the streaming
// emission order (by completing event) can be compared against the offline
// order (by first event).
func sortPairs(ps []detect.Pair) {
	sort.Slice(ps, func(i, j int) bool {
		if ps[i].First.Index != ps[j].First.Index {
			return ps[i].First.Index < ps[j].First.Index
		}
		return ps[i].Second.Index < ps[j].Second.Index
	})
}

// TestPairScannerMatchesOffline is the exactness property of the streaming
// scanner: over every generator workload, the flagged pairs must equal
// ScheduleSensitivePairs on the materialized trace as a set, with no
// window at all — the per-object lazy-successor state machine is exact, not
// an approximation.
func TestPairScannerMatchesOffline(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	for _, w := range trace.Workloads() {
		tr, err := trace.Generate(w, trace.Config{Threads: 6, Objects: 5, Events: 200, ReadFraction: 0.4}, rng)
		if err != nil {
			t.Fatal(err)
		}
		stamps := clock.Run(tr, core.AnalyzeTrace(tr).NewClock())
		sc := detect.NewPairScanner()
		var got []detect.Pair
		for i, v := range stamps {
			if p, ok := sc.Add(tr.At(i), 0, v); ok {
				got = append(got, p)
			}
		}
		want := detect.ScheduleSensitivePairs(tr)
		sortPairs(got)
		sortPairs(want)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("%v: streaming pairs %v, offline %v", w, got, want)
		}
		if sc.Count() != len(want) {
			t.Fatalf("%v: count %d, want %d", w, sc.Count(), len(want))
		}
	}
}

// TestPairScannerEpochReset checks that an epoch change drops the per-object
// records: the first event of the new epoch completes no pair, because the
// Compact barrier already orders it after everything before it.
func TestPairScannerEpochReset(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	tr, err := trace.Generate(trace.Uniform, trace.Config{Threads: 3, Objects: 2, Events: 30}, rng)
	if err != nil {
		t.Fatal(err)
	}
	stamps := clock.Run(tr, core.AnalyzeTrace(tr).NewClock())
	sc := detect.NewPairScanner()
	for i, v := range stamps {
		epoch := 0
		if i >= 15 {
			epoch = 1
		}
		if p, ok := sc.Add(tr.At(i), epoch, v); ok && i == 15 {
			t.Fatalf("first event of a new epoch flagged a cross-epoch pair %v", p)
		}
	}
}
