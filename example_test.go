package mixedclock_test

import (
	"fmt"
	"math/rand"

	"mixedclock"
)

// ExampleAnalyzeTrace demonstrates the offline algorithm on the paper's
// running example: the optimal mixed clock needs 3 components where either
// classical clock needs 4.
func ExampleAnalyzeTrace() {
	tr := mixedclock.NewTrace()
	tr.Append(1, 0, mixedclock.OpWrite) // [T2, O1]
	tr.Append(0, 1, mixedclock.OpWrite) // [T1, O2]
	tr.Append(1, 2, mixedclock.OpWrite) // [T2, O3]
	tr.Append(2, 2, mixedclock.OpWrite) // [T3, O3]
	tr.Append(3, 1, mixedclock.OpWrite) // [T4, O2]
	tr.Append(1, 1, mixedclock.OpWrite) // [T2, O2]
	tr.Append(2, 1, mixedclock.OpWrite) // [T3, O2]
	tr.Append(1, 3, mixedclock.OpWrite) // [T2, O4]

	a := mixedclock.AnalyzeTrace(tr)
	fmt.Println("components:", a.VectorSize())
	fmt.Println("max matching:", a.Matching.Size())
	fmt.Println("certificate:", a.Verify() == nil)
	// Output:
	// components: 3
	// max matching: 3
	// certificate: true
}

// ExampleRun shows timestamping and ordering queries.
func ExampleRun() {
	tr := mixedclock.NewTrace()
	tr.Append(0, 0, mixedclock.OpWrite) // e0: T1 writes O1
	tr.Append(1, 0, mixedclock.OpRead)  // e1: T2 reads O1 (after e0)
	tr.Append(1, 1, mixedclock.OpWrite) // e2: T2 writes O2
	tr.Append(2, 2, mixedclock.OpWrite) // e3: T3 writes O3 (independent)

	stamps := mixedclock.Run(tr, mixedclock.AnalyzeTrace(tr).NewClock())
	fmt.Println("e0 < e2:", stamps[0].Less(stamps[2]))
	fmt.Println("e0 || e3:", stamps[0].Concurrent(stamps[3]))
	// Output:
	// e0 < e2: true
	// e0 || e3: true
}

// ExampleNewOnlineClock shows the online setting: components are added as
// new thread–object pairs appear, per the chosen mechanism.
func ExampleNewOnlineClock() {
	clk := mixedclock.NewOnlineClock(mixedclock.Popularity{})
	tr := mixedclock.NewTrace()
	tr.Append(0, 0, mixedclock.OpWrite)
	tr.Append(1, 0, mixedclock.OpWrite) // O1 becomes popular
	tr.Append(2, 0, mixedclock.OpWrite)
	for _, e := range tr.Events() {
		clk.Timestamp(e)
	}
	fmt.Println("components after 3 threads on 1 object:", clk.Components())
	// Output:
	// components after 3 threads on 1 object: 2
}

// ExamplePossibly detects whether a bad global state was reachable in some
// interleaving, even if the observed run never passed through it.
func ExamplePossibly() {
	// Two threads, disjoint locks: both can be mid-critical-section.
	tr := mixedclock.NewTrace()
	tr.Append(0, 0, mixedclock.OpWrite) // T1 enter CS (lock O1)
	tr.Append(0, 0, mixedclock.OpWrite) // T1 exit
	tr.Append(1, 1, mixedclock.OpWrite) // T2 enter CS (lock O2)
	tr.Append(1, 1, mixedclock.OpWrite) // T2 exit

	bothInCS := func(s *mixedclock.GlobalState) bool {
		return s.Executed(0) == 1 && s.Executed(1) == 1
	}
	_, found, _ := mixedclock.Possibly(tr, bothInCS, 0)
	fmt.Println("overlap possible:", found)
	// Output:
	// overlap possible: true
}

// ExampleRecoveryLine rolls a computation back past a faulty event using
// timestamps only.
func ExampleRecoveryLine() {
	tr := mixedclock.NewTrace()
	tr.Append(0, 0, mixedclock.OpWrite) // e0
	tr.Append(1, 0, mixedclock.OpRead)  // e1 observes e0
	tr.Append(1, 1, mixedclock.OpWrite) // e2 depends on e1
	tr.Append(2, 2, mixedclock.OpWrite) // e3 independent

	stamps := mixedclock.Run(tr, mixedclock.AnalyzeTrace(tr).NewClock())
	line, _ := mixedclock.RecoveryLine(tr, stamps, 1) // fault at e1
	fmt.Println("survivors:", line.Size(), "of", tr.Len())
	fmt.Println("consistent:", mixedclock.IsConsistentCut(tr, line))
	// Output:
	// survivors: 2 of 4
	// consistent: true
}

// ExampleCountLinearizations measures schedule sensitivity.
func ExampleCountLinearizations() {
	tr := mixedclock.NewTrace()
	tr.Append(0, 0, mixedclock.OpWrite)
	tr.Append(1, 1, mixedclock.OpWrite)
	tr.Append(2, 2, mixedclock.OpWrite)
	fmt.Println("interleavings:", mixedclock.CountLinearizations(tr, 0))
	// Output:
	// interleavings: 6
}

// ExampleRandomLinearization replays a computation under another legal
// schedule; the clock built for the computation stays valid.
func ExampleRandomLinearization() {
	tr := mixedclock.NewTrace()
	tr.Append(0, 0, mixedclock.OpWrite)
	tr.Append(0, 1, mixedclock.OpWrite)
	tr.Append(1, 0, mixedclock.OpWrite)
	tr.Append(1, 1, mixedclock.OpWrite)

	perm := mixedclock.RandomLinearization(tr, rand.New(rand.NewSource(1)))
	re, _ := mixedclock.Reorder(tr, perm)
	fmt.Println("legal:", mixedclock.IsLinearization(tr, perm))
	fmt.Println("same size:", re.Len() == tr.Len())
	// Output:
	// legal: true
	// same size: true
}
