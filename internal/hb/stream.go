package hb

import (
	"mixedclock/internal/vclock"
)

// Recent answers happened-before queries over a sliding window of a live
// stamp stream. Where Oracle materializes O(E²/64) reachability for a fixed
// trace, Recent keeps only the last Window (event, stamp) records — O(W·k)
// memory — and answers by the paper's Theorem 2: for events in the same
// epoch, e → f ⇔ stamp(e) < stamp(f); events in different epochs are
// ordered by the compaction barrier between the epochs.
//
// Stamps arriving through a StampSink are borrowed, so Add clones; queries
// on events that have slid out of the window report ok=false rather than
// guessing.
type Recent struct {
	window int
	first  int // global index of ring[0]
	epochs []int
	ring   []vclock.Vector
}

// NewRecent returns an empty window retaining the last window stamps;
// window <= 0 retains everything (offline-equivalent, unbounded memory).
func NewRecent(window int) *Recent {
	return &Recent{window: window}
}

// Add appends the stamp of the next event in the stream. Indices must be
// gapless and ascending: the i-th call records global trace index
// first+len at the time of the call. The vector is cloned.
func (r *Recent) Add(epoch int, v vclock.Vector) {
	r.epochs = append(r.epochs, epoch)
	r.ring = append(r.ring, v.Clone())
	if r.window > 0 && len(r.ring) > r.window {
		drop := len(r.ring) - r.window
		r.epochs = r.epochs[drop:]
		r.ring = append(r.ring[:0:0], r.ring[drop:]...)
		r.first += drop
	}
}

// Len returns the number of retained events.
func (r *Recent) Len() int { return len(r.ring) }

// Lo returns the smallest retained global index; events below it have been
// evicted.
func (r *Recent) Lo() int { return r.first }

// Hi returns one past the largest retained global index.
func (r *Recent) Hi() int { return r.first + len(r.ring) }

// at fetches a retained record, reporting ok=false if evicted or not yet
// seen.
func (r *Recent) at(i int) (int, vclock.Vector, bool) {
	if i < r.first || i >= r.first+len(r.ring) {
		return 0, nil, false
	}
	return r.epochs[i-r.first], r.ring[i-r.first], true
}

// HappenedBefore reports whether event i happened before event j, and
// whether both events are still inside the window (ok=false means the
// question cannot be answered from retained state).
func (r *Recent) HappenedBefore(i, j int) (hb, ok bool) {
	ei, vi, oki := r.at(i)
	ej, vj, okj := r.at(j)
	if !oki || !okj {
		return false, false
	}
	if ei != ej {
		// A Compact barrier separates epochs: the earlier epoch's
		// events all happened before the later epoch's.
		return ei < ej, true
	}
	return vi.Less(vj), true
}

// Concurrent reports whether events i and j are concurrent, with the same
// ok convention as HappenedBefore.
func (r *Recent) Concurrent(i, j int) (conc, ok bool) {
	if i == j {
		_, _, oki := r.at(i)
		return false, oki
	}
	ei, vi, oki := r.at(i)
	ej, vj, okj := r.at(j)
	if !oki || !okj {
		return false, false
	}
	if ei != ej {
		return false, true
	}
	return vi.Concurrent(vj), true
}
