package core

import (
	"math/rand"
	"testing"

	"mixedclock/internal/event"
	"mixedclock/internal/vclock"
)

// TestTimestampDeltaMatchesTimestamp replays the same computation through a
// materializing clock and a delta-capturing one (per backend) and checks the
// per-thread replay of each capture reproduces the full stamp exactly —
// width included, since the log format and the tracker's record buffers both
// reconstruct through this contract.
func TestTimestampDeltaMatchesTimestamp(t *testing.T) {
	for _, backend := range []vclock.Backend{vclock.BackendFlat, vclock.BackendTree} {
		t.Run(backend.String(), func(t *testing.T) {
			rng := rand.New(rand.NewSource(7))
			tr := randomTrace(rng, 6, 5, 400)
			a := AnalyzeTrace(tr)

			full := NewMixedClockBackend(a.Components, backend)
			delta := NewMixedClockBackend(a.Components, backend)
			prev := make(map[int]vclock.Vector)
			var scratch []vclock.Delta
			for i := 0; i < tr.Len(); i++ {
				e := tr.At(i)
				want := full.Timestamp(e)
				var width int
				scratch, width = delta.TimestampDelta(e, scratch[:0])
				got := prev[int(e.Thread)].Apply(scratch).Grow(width)
				prev[int(e.Thread)] = got
				if len(got) != len(want) {
					t.Fatalf("event %d: replay width %d, stamp width %d", i, len(got), len(want))
				}
				if !got.Equal(want) {
					t.Fatalf("event %d: replay %v, stamp %v", i, got, want)
				}
			}
			if err := full.Err(); err != nil {
				t.Fatal(err)
			}
			if err := delta.Err(); err != nil {
				t.Fatal(err)
			}
			if full.Events() != delta.Events() {
				t.Fatalf("event counts diverged: %d vs %d", full.Events(), delta.Events())
			}
		})
	}
}

// TestTimestampDeltaUncovered pins that the delta path reports clock misuse
// through Err like the materializing path.
func TestTimestampDeltaUncovered(t *testing.T) {
	comps := NewComponentSet()
	comps.Add(ThreadComponent(0))
	c := NewMixedClock(comps)
	c.TimestampDelta(event.Event{Thread: 5, Object: 9}, nil)
	if c.Err() == nil {
		t.Fatal("uncovered event not reported")
	}
}

// TestUpdateRuleDeltaAgreesWithUpdateRule runs both rule forms side by side
// over a random schedule and requires identical clock evolution.
func TestUpdateRuleDeltaAgreesWithUpdateRule(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	const width, steps = 8, 300
	tvA, ovA := vclock.NewFlat(0), vclock.NewFlat(0)
	tvB, ovB := vclock.NewFlat(0), vclock.NewFlat(0)
	var ds []vclock.Delta
	for s := 0; s < steps; s++ {
		thrIdx, objIdx := rng.Intn(width), -1
		if rng.Intn(2) == 0 {
			objIdx = rng.Intn(width)
		}
		ta := UpdateRule(tvA, ovA, thrIdx, objIdx, width)
		var tb bool
		ds, tb = UpdateRuleDelta(tvB, ovB, thrIdx, objIdx, width, ds[:0])
		if ta != tb {
			t.Fatalf("step %d: ticked %v vs %v", s, ta, tb)
		}
		if !tvA.Flatten().Equal(tvB.Flatten()) || !ovA.Flatten().Equal(ovB.Flatten()) {
			t.Fatalf("step %d: clocks diverged", s)
		}
		if len(ds) == 0 {
			t.Fatalf("step %d: a ticking rule captured no change", s)
		}
	}
}
