package baseline

import (
	"math/rand"
	"strings"
	"testing"

	"mixedclock/internal/clock"
	"mixedclock/internal/event"
	"mixedclock/internal/hb"
	"mixedclock/internal/vclock"
)

var (
	_ clock.Timestamper = (*ThreadClock)(nil)
	_ clock.Timestamper = (*ObjectClock)(nil)
	_ clock.Timestamper = (*ChainClock)(nil)
)

func randomTrace(rng *rand.Rand, threads, objects, events int) *event.Trace {
	tr := event.NewTrace()
	for i := 0; i < events; i++ {
		tr.Append(event.ThreadID(rng.Intn(threads)), event.ObjectID(rng.Intn(objects)), event.OpWrite)
	}
	return tr
}

func TestThreadClockHandComputed(t *testing.T) {
	// Two threads sharing one object: the object order transfers knowledge.
	c := NewThreadClock(2, 1)
	tr := event.NewTrace()
	tr.Append(0, 0, event.OpWrite) // e0: T1 on O1 → [1 0]
	tr.Append(1, 0, event.OpWrite) // e1: T2 on O1 → [1 1]
	tr.Append(0, 0, event.OpWrite) // e2: T1 on O1 → [2 1]
	stamps := clock.Run(tr, c)
	want := []vclock.Vector{{1, 0}, {1, 1}, {2, 1}}
	for i := range want {
		if !stamps[i].Equal(want[i]) {
			t.Errorf("event %d: %v, want %v", i, stamps[i], want[i])
		}
	}
}

func TestObjectClockHandComputed(t *testing.T) {
	// One thread over two objects: program order transfers knowledge.
	c := NewObjectClock(1, 2)
	tr := event.NewTrace()
	tr.Append(0, 0, event.OpWrite) // e0 → [1 0]
	tr.Append(0, 1, event.OpWrite) // e1 → [1 1]
	tr.Append(0, 0, event.OpWrite) // e2 → [2 1]
	stamps := clock.Run(tr, c)
	want := []vclock.Vector{{1, 0}, {1, 1}, {2, 1}}
	for i := range want {
		if !stamps[i].Equal(want[i]) {
			t.Errorf("event %d: %v, want %v", i, stamps[i], want[i])
		}
	}
}

func TestClassicClocksValidityRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 25; trial++ {
		nT, nO := 2+rng.Intn(6), 2+rng.Intn(6)
		tr := randomTrace(rng, nT, nO, 15+rng.Intn(50))
		if _, err := clock.RunAndValidate(tr, NewThreadClock(nT, nO)); err != nil {
			t.Fatalf("trial %d thread clock: %v", trial, err)
		}
		if _, err := clock.RunAndValidate(tr, NewObjectClock(nT, nO)); err != nil {
			t.Fatalf("trial %d object clock: %v", trial, err)
		}
	}
}

func TestClockSizes(t *testing.T) {
	tc := NewThreadClock(7, 3)
	if tc.Components() != 7 {
		t.Errorf("thread clock components = %d, want 7", tc.Components())
	}
	oc := NewObjectClock(7, 3)
	if oc.Components() != 3 {
		t.Errorf("object clock components = %d, want 3", oc.Components())
	}
	if tc.Name() != "thread-based" || oc.Name() != "object-based" {
		t.Error("names wrong")
	}
}

func TestStampsAreCopies(t *testing.T) {
	tc := NewThreadClock(2, 2)
	v := tc.Timestamp(event.Event{Thread: 0, Object: 0})
	v[0] = 100
	v2 := tc.Timestamp(event.Event{Thread: 0, Object: 0})
	if v2[0] != 2 {
		t.Fatalf("thread clock stamp aliased: %v", v2)
	}

	oc := NewObjectClock(2, 2)
	w := oc.Timestamp(event.Event{Thread: 0, Object: 0})
	w[0] = 100
	w2 := oc.Timestamp(event.Event{Thread: 0, Object: 0})
	if w2[0] != 2 {
		t.Fatalf("object clock stamp aliased: %v", w2)
	}
}

func TestChainClockValidityRandom(t *testing.T) {
	// The chain clock must be a valid vector clock on arbitrary traces —
	// the dominance rule guarantees each chain stays totally ordered.
	rng := rand.New(rand.NewSource(22))
	for trial := 0; trial < 30; trial++ {
		tr := randomTrace(rng, 2+rng.Intn(6), 2+rng.Intn(6), 15+rng.Intn(60))
		if _, err := clock.RunAndValidate(tr, NewChainClock()); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}

func TestChainClockNeverBelowWidth(t *testing.T) {
	// Any chain decomposition needs at least width-many chains (Dilworth).
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 15; trial++ {
		tr := randomTrace(rng, 2+rng.Intn(5), 2+rng.Intn(5), 10+rng.Intn(40))
		cc := NewChainClock()
		clock.Run(tr, cc)
		width := hb.New(tr).Width()
		if cc.Components() < width {
			t.Fatalf("trial %d: %d chains below width %d — impossible decomposition",
				trial, cc.Components(), width)
		}
	}
}

func TestChainClockBoundedByThreadsOnWorkloads(t *testing.T) {
	// On these generated workloads the greedy chain clock should not need
	// more chains than threads (deterministic seeds keep this stable; the
	// greedy scan has no general guarantee, see DESIGN.md §5).
	rng := rand.New(rand.NewSource(24))
	for trial := 0; trial < 20; trial++ {
		nT := 2 + rng.Intn(8)
		tr := randomTrace(rng, nT, 2+rng.Intn(8), 100)
		cc := NewChainClock()
		clock.Run(tr, cc)
		if cc.Components() > nT {
			t.Fatalf("trial %d: %d chains for %d threads", trial, cc.Components(), nT)
		}
	}
}

func TestChainClockSharesChainsAcrossThreads(t *testing.T) {
	// A strictly sequential pipeline through one object lets every thread
	// extend the same chain: 1 chain for n threads.
	tr := event.NewTrace()
	for i := 0; i < 8; i++ {
		tr.Append(event.ThreadID(i), 0, event.OpWrite)
	}
	cc := NewChainClock()
	clock.Run(tr, cc)
	if cc.Components() != 1 {
		t.Fatalf("sequential pipeline used %d chains, want 1", cc.Components())
	}
}

func TestChainClockIndependentThreadsGetOwnChains(t *testing.T) {
	tr := event.NewTrace()
	for i := 0; i < 5; i++ {
		tr.Append(event.ThreadID(i), event.ObjectID(i), event.OpWrite)
	}
	cc := NewChainClock()
	clock.Run(tr, cc)
	if cc.Components() != 5 {
		t.Fatalf("independent threads used %d chains, want 5", cc.Components())
	}
}

func TestChainClockString(t *testing.T) {
	cc := NewChainClock()
	cc.Timestamp(event.Event{Thread: 0, Object: 0})
	if s := cc.String(); !strings.Contains(s, "chains=1") {
		t.Errorf("String = %q", s)
	}
	if cc.Name() != "chain" {
		t.Errorf("Name = %q", cc.Name())
	}
}
