// Command figures regenerates every figure of the paper's evaluation (§V)
// as text tables, CSV, or ASCII plots.
//
// Usage:
//
//	figures [-fig 4|5|6|7|extra|all] [-format table|csv|plot] [-trials N] [-seed S]
//	        [-live] [-backend flat|tree|auto]
//
// By default the online series of Figs. 4–7 are measured on the modern live
// pipeline: every reveal order is replayed through a real track.Tracker
// (one committed event per edge) on the -backend clock representation. The
// numbers are identical to the offline simulation — the equivalence is
// pinned by test — so -live=false merely switches back to the faster
// core.SimulateCover baseline. The extra figure additionally includes an
// end-to-end throughput sweep (backend × readfrac × do/batch) on the
// loadgen engine.
//
// Examples:
//
//	figures -fig 6                 # offline vs online, density sweep
//	figures -fig all -format csv   # every figure, CSV to stdout
//	figures -fig extra -trials 3   # ablations + throughput sweep, quick
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"

	"mixedclock/internal/experiment"
	"mixedclock/internal/vclock"
)

func main() {
	var (
		fig     = flag.String("fig", "all", "which figure: 4, 5, 6, 7, extra, or all")
		format  = flag.String("format", "table", "output format: table, csv, or plot")
		trials  = flag.Int("trials", 10, "random graphs averaged per point")
		seed    = flag.Int64("seed", 2019, "base RNG seed")
		live    = flag.Bool("live", true, "measure online series on a live tracker instead of the offline simulation")
		backend = flag.String("backend", "flat", "live runs: clock representation (flat, tree or auto)")
	)
	flag.Parse()

	if err := run(os.Stdout, *fig, *format, *trials, *seed, *live, *backend); err != nil {
		fmt.Fprintf(os.Stderr, "figures: %v\n", err)
		os.Exit(1)
	}
}

func run(w io.Writer, fig, format string, trials int, seed int64, live bool, backend string) error {
	opt := experiment.Options{Trials: trials, Seed: seed}
	b, err := vclock.ParseBackend(backend)
	if err != nil {
		return err
	}
	emitted := false
	want := func(name string) bool { return fig == "all" || fig == name }

	// The live and offline variants produce identical series (pinned by
	// internal/experiment's equivalence tests); live exercises the full
	// tracker pipeline per reveal order.
	fig4 := func(o experiment.Options) (*experiment.Result, *experiment.Result, error) {
		if live {
			return experiment.Fig4Live(o, b)
		}
		return experiment.Fig4(o)
	}
	fig5 := func(o experiment.Options) (*experiment.Result, *experiment.Result, error) {
		if live {
			return experiment.Fig5Live(o, b)
		}
		return experiment.Fig5(o)
	}
	fig6 := func(o experiment.Options) (*experiment.Result, error) {
		if live {
			return experiment.Fig6Live(o, b)
		}
		return experiment.Fig6(o)
	}
	fig7 := func(o experiment.Options) (*experiment.Result, error) {
		if live {
			return experiment.Fig7Live(o, b)
		}
		return experiment.Fig7(o)
	}

	if want("4") {
		uni, non, err := fig4(opt)
		if err != nil {
			return err
		}
		if err := emit(w, format, uni, non); err != nil {
			return err
		}
		emitted = true
	}
	if want("5") {
		uni, non, err := fig5(opt)
		if err != nil {
			return err
		}
		if err := emit(w, format, uni, non); err != nil {
			return err
		}
		emitted = true
	}
	if want("6") {
		r, err := fig6(opt)
		if err != nil {
			return err
		}
		if err := emit(w, format, r); err != nil {
			return err
		}
		emitted = true
	}
	if want("7") {
		r, err := fig7(opt)
		if err != nil {
			return err
		}
		if err := emit(w, format, r); err != nil {
			return err
		}
		emitted = true
	}
	if want("extra") {
		if err := runExtra(w, format, trials, seed); err != nil {
			return err
		}
		emitted = true
	}
	if !emitted {
		return fmt.Errorf("unknown figure %q (want 4, 5, 6, 7, extra, or all)", fig)
	}
	return nil
}

func runExtra(w io.Writer, format string, trials int, seed int64) error {
	wl, names, err := experiment.WorkloadClockSizes(30, 30, 600, trials, seed)
	if err != nil {
		return err
	}
	if err := emit(w, format, wl); err != nil {
		return err
	}
	fmt.Fprint(w, "workload key:")
	for i, n := range names {
		fmt.Fprintf(w, " %d=%s", i, n)
	}
	fmt.Fprintln(w)
	fmt.Fprintln(w)

	rs, err := experiment.RevealOrderSensitivity(50, nil, 20, seed)
	if err != nil {
		return err
	}
	if err := emit(w, format, rs); err != nil {
		return err
	}

	hy, err := experiment.HybridThresholdSweep(50, nil, trials, seed)
	if err != nil {
		return err
	}
	if err := emit(w, format, hy); err != nil {
		return err
	}

	gr, err := experiment.GreedyVsOptimal(50, nil, trials, seed)
	if err != nil {
		return err
	}
	if err := emit(w, format, gr); err != nil {
		return err
	}

	hist, err := experiment.SizeHistogram(50, 0.05, 100, seed)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "Optimal-size histogram (50 nodes/side, density 0.05, 100 graphs)")
	sizes := make([]int, 0, len(hist))
	for s := range hist {
		sizes = append(sizes, s)
	}
	sort.Ints(sizes)
	for _, s := range sizes {
		fmt.Fprintf(w, "  size %2d: %d\n", s, hist[s])
	}
	fmt.Fprintln(w)

	bw, err := experiment.BackendWidthSweep(experiment.Options{Trials: trials, Seed: seed})
	if err != nil {
		return err
	}
	return emit(w, format, bw)
}

func emit(w io.Writer, format string, results ...*experiment.Result) error {
	for _, r := range results {
		var err error
		switch format {
		case "table":
			err = r.WriteTable(w)
		case "csv":
			err = r.WriteCSV(w)
		case "plot":
			err = r.WriteASCIIPlot(w, 16)
		default:
			return fmt.Errorf("unknown format %q", format)
		}
		if err != nil {
			return err
		}
		fmt.Fprintln(w)
	}
	return nil
}
