// Package trace generates synthetic computations (full event sequences, not
// just graphs) for tests, examples and the evaluation harness. The paper's
// own evaluation draws random bipartite graphs; these generators additionally
// produce the event streams behind such graphs, plus workload families whose
// access structure motivates the mixed clock: producer–consumer pipelines,
// readers–writers, phased computations and lock-striped maps.
//
// All generators take an explicit *rand.Rand; the same seed reproduces the
// same trace.
package trace

import (
	"fmt"
	"math/rand"

	"mixedclock/internal/bipartite"
	"mixedclock/internal/event"
)

// Workload enumerates the built-in trace families.
type Workload int

const (
	// Uniform draws every event's thread and object independently and
	// uniformly — the paper's Uniform scenario as an event stream.
	Uniform Workload = iota + 1
	// HotSet marks 10% of threads and objects hot, mirroring the paper's
	// Nonuniform scenario: hot entities participate in most events.
	HotSet
	// Zipf draws each event's object from a Zipf distribution: a few
	// heavily contended objects, a long cold tail.
	Zipf
	// ProducerConsumer wires producer threads to consumer threads through
	// a small set of shared queue objects; non-queue work touches private
	// objects.
	ProducerConsumer
	// ReadersWriters gives every object occasional writes and frequent
	// reads from many threads.
	ReadersWriters
	// Phased splits the computation into phases; within a phase each
	// thread works on that phase's object partition, then all threads
	// synchronize through a barrier object.
	Phased
	// LockStriped hashes threads onto stripes of objects, as in a striped
	// hash map: most accesses stay within a thread's home stripe.
	LockStriped
)

// String names the workload.
func (w Workload) String() string {
	switch w {
	case Uniform:
		return "uniform"
	case HotSet:
		return "hotset"
	case Zipf:
		return "zipf"
	case ProducerConsumer:
		return "producer-consumer"
	case ReadersWriters:
		return "readers-writers"
	case Phased:
		return "phased"
	case LockStriped:
		return "lock-striped"
	default:
		return fmt.Sprintf("Workload(%d)", int(w))
	}
}

// Workloads lists every built-in family, for sweeps.
func Workloads() []Workload {
	return []Workload{Uniform, HotSet, Zipf, ProducerConsumer, ReadersWriters, Phased, LockStriped}
}

// Config parameterizes trace generation. Threads, Objects and Events are
// required; the rest default sensibly per workload.
type Config struct {
	Threads int
	Objects int
	Events  int
	// ReadFraction is the probability an event is a read (default 0 —
	// the paper's model where every operation conflicts).
	ReadFraction float64
	// ZipfSkew is the s parameter for Zipf (must be > 1; default 1.3).
	ZipfSkew float64
	// Queues is the number of shared queue objects for ProducerConsumer
	// (default max(1, Objects/8)).
	Queues int
	// Phases is the phase count for Phased (default 4).
	Phases int
	// Stripes is the stripe count for LockStriped (default max(1,
	// Threads/4)).
	Stripes int
	// HotFraction is the hot-entity fraction for HotSet (default 0.1).
	HotFraction float64
	// HotProb is the probability an event involves a hot object for
	// HotSet (default 0.8).
	HotProb float64
}

func (c Config) withDefaults() Config {
	if c.ZipfSkew == 0 {
		c.ZipfSkew = 1.3
	}
	if c.Queues == 0 {
		c.Queues = max(1, c.Objects/8)
	}
	if c.Phases == 0 {
		c.Phases = 4
	}
	if c.Stripes == 0 {
		c.Stripes = max(1, c.Threads/4)
	}
	if c.HotFraction == 0 {
		c.HotFraction = 0.1
	}
	if c.HotProb == 0 {
		c.HotProb = 0.8
	}
	return c
}

// Validate reports the first invalid field.
func (c Config) Validate() error {
	c = c.withDefaults()
	switch {
	case c.Threads <= 0:
		return fmt.Errorf("trace: threads %d must be positive", c.Threads)
	case c.Objects <= 0:
		return fmt.Errorf("trace: objects %d must be positive", c.Objects)
	case c.Events < 0:
		return fmt.Errorf("trace: events %d must be non-negative", c.Events)
	case c.ReadFraction < 0 || c.ReadFraction > 1:
		return fmt.Errorf("trace: read fraction %f outside [0,1]", c.ReadFraction)
	case c.ZipfSkew <= 1:
		return fmt.Errorf("trace: zipf skew %f must exceed 1", c.ZipfSkew)
	case c.HotFraction < 0 || c.HotFraction > 1:
		return fmt.Errorf("trace: hot fraction %f outside [0,1]", c.HotFraction)
	case c.HotProb < 0 || c.HotProb > 1:
		return fmt.Errorf("trace: hot probability %f outside [0,1]", c.HotProb)
	}
	return nil
}

// Generate builds a trace of the given family.
func Generate(w Workload, cfg Config, rng *rand.Rand) (*event.Trace, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	switch w {
	case Uniform:
		return genUniform(cfg, rng), nil
	case HotSet:
		return genHotSet(cfg, rng), nil
	case Zipf:
		return genZipf(cfg, rng), nil
	case ProducerConsumer:
		return genProducerConsumer(cfg, rng), nil
	case ReadersWriters:
		return genReadersWriters(cfg, rng), nil
	case Phased:
		return genPhased(cfg, rng), nil
	case LockStriped:
		return genLockStriped(cfg, rng), nil
	default:
		return nil, fmt.Errorf("trace: unknown workload %d", int(w))
	}
}

// op draws the operation kind per cfg.ReadFraction.
func (c Config) op(rng *rand.Rand) event.Op {
	if c.ReadFraction > 0 && rng.Float64() < c.ReadFraction {
		return event.OpRead
	}
	return event.OpWrite
}

func genUniform(cfg Config, rng *rand.Rand) *event.Trace {
	tr := event.NewTrace()
	for i := 0; i < cfg.Events; i++ {
		tr.Append(event.ThreadID(rng.Intn(cfg.Threads)), event.ObjectID(rng.Intn(cfg.Objects)), cfg.op(rng))
	}
	return tr
}

func genHotSet(cfg Config, rng *rand.Rand) *event.Trace {
	hotT := max(1, int(float64(cfg.Threads)*cfg.HotFraction))
	hotO := max(1, int(float64(cfg.Objects)*cfg.HotFraction))
	tr := event.NewTrace()
	for i := 0; i < cfg.Events; i++ {
		var tid, oid int
		if rng.Float64() < cfg.HotProb {
			tid = rng.Intn(hotT)
		} else {
			tid = rng.Intn(cfg.Threads)
		}
		if rng.Float64() < cfg.HotProb {
			oid = rng.Intn(hotO)
		} else {
			oid = rng.Intn(cfg.Objects)
		}
		tr.Append(event.ThreadID(tid), event.ObjectID(oid), cfg.op(rng))
	}
	return tr
}

func genZipf(cfg Config, rng *rand.Rand) *event.Trace {
	z := rand.NewZipf(rng, cfg.ZipfSkew, 1, uint64(cfg.Objects-1))
	tr := event.NewTrace()
	for i := 0; i < cfg.Events; i++ {
		tr.Append(event.ThreadID(rng.Intn(cfg.Threads)), event.ObjectID(z.Uint64()), cfg.op(rng))
	}
	return tr
}

func genProducerConsumer(cfg Config, rng *rand.Rand) *event.Trace {
	queues := min(cfg.Queues, cfg.Objects)
	tr := event.NewTrace()
	producers := max(1, cfg.Threads/2)
	for i := 0; i < cfg.Events; i++ {
		tid := rng.Intn(cfg.Threads)
		isProducer := tid < producers
		var oid int
		var op event.Op
		switch {
		case rng.Float64() < 0.5:
			// Queue interaction: producers write, consumers read-drain
			// (modelled as a write, since dequeuing mutates).
			oid = rng.Intn(queues)
			op = event.OpWrite
		case isProducer:
			// Producers also touch their private scratch objects.
			oid = queues + (tid % max(1, cfg.Objects-queues))
			op = cfg.op(rng)
		default:
			oid = queues + rng.Intn(max(1, cfg.Objects-queues))
			op = event.OpRead
		}
		if oid >= cfg.Objects {
			oid = cfg.Objects - 1
		}
		tr.Append(event.ThreadID(tid), event.ObjectID(oid), op)
	}
	return tr
}

func genReadersWriters(cfg Config, rng *rand.Rand) *event.Trace {
	tr := event.NewTrace()
	for i := 0; i < cfg.Events; i++ {
		op := event.OpRead
		if rng.Float64() < 0.1 {
			op = event.OpWrite
		}
		tr.Append(event.ThreadID(rng.Intn(cfg.Threads)), event.ObjectID(rng.Intn(cfg.Objects)), op)
	}
	return tr
}

func genPhased(cfg Config, rng *rand.Rand) *event.Trace {
	tr := event.NewTrace()
	phases := min(cfg.Phases, cfg.Objects)
	perPhase := cfg.Events / phases
	// Object 0 is the barrier; the rest are partitioned across phases.
	workObjects := max(1, cfg.Objects-1)
	for phase := 0; phase < phases; phase++ {
		lo := 1 + phase*workObjects/phases
		hi := 1 + (phase+1)*workObjects/phases
		if hi <= lo {
			hi = lo + 1
		}
		for i := 0; i < perPhase; i++ {
			tid := event.ThreadID(rng.Intn(cfg.Threads))
			oid := event.ObjectID(lo + rng.Intn(hi-lo))
			if int(oid) >= cfg.Objects {
				oid = event.ObjectID(cfg.Objects - 1)
			}
			tr.Append(tid, oid, cfg.op(rng))
		}
		// Barrier: every thread touches object 0.
		for tid := 0; tid < cfg.Threads; tid++ {
			tr.Append(event.ThreadID(tid), 0, event.OpWrite)
		}
	}
	return tr
}

func genLockStriped(cfg Config, rng *rand.Rand) *event.Trace {
	stripes := min(cfg.Stripes, cfg.Objects)
	tr := event.NewTrace()
	for i := 0; i < cfg.Events; i++ {
		tid := rng.Intn(cfg.Threads)
		stripe := tid % stripes
		// 90% of accesses stay in the home stripe; 10% roam.
		if rng.Float64() < 0.1 {
			stripe = rng.Intn(stripes)
		}
		// Objects are distributed round-robin across stripes.
		objInStripe := rng.Intn(max(1, cfg.Objects/stripes))
		oid := stripe + objInStripe*stripes
		if oid >= cfg.Objects {
			oid = stripe
		}
		tr.Append(event.ThreadID(tid), event.ObjectID(oid), cfg.op(rng))
	}
	return tr
}

// FromGraph materializes a computation whose bipartite projection is exactly
// g: every edge appears as at least one event (in a shuffled reveal order),
// followed by extraEvents additional operations on random existing edges.
// This ties the paper's graph-level scenarios to full event streams.
func FromGraph(g *bipartite.Graph, extraEvents int, rng *rand.Rand) *event.Trace {
	edges := g.RevealOrder(rng)
	tr := event.NewTrace()
	for _, e := range edges {
		tr.Append(event.ThreadID(e.Thread), event.ObjectID(e.Object), event.OpWrite)
	}
	for i := 0; i < extraEvents && len(edges) > 0; i++ {
		e := edges[rng.Intn(len(edges))]
		tr.Append(event.ThreadID(e.Thread), event.ObjectID(e.Object), event.OpWrite)
	}
	return tr
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
