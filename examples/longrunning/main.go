// Longrunning demonstrates running a tracker indefinitely in bounded
// memory: epoch compaction keeps the CLOCK small, the spill policy keeps
// the HISTORY small, and the segment lifecycle manager keeps the spill
// DIRECTORY small and shippable.
//
// Online mechanisms may only ever add clock components, so after the
// workload shifts, the clock carries components for entities that no longer
// matter; Tracker.Compact re-bases it on the offline optimum and starts a
// new epoch. Independently, the recorded history grows with every event; a
// SpillPolicy seals it into immutable delta-encoded segments — here at
// aligned SealEvery boundaries, so segment edges land at predictable
// indices — and spills them to disk, so the tracker holds only the live
// tail. Frequent seals would litter the directory with tiny files;
// WithCompaction merges adjacent small segments into larger tiers (replay
// bytes unchanged). The catalog — both Tracker.Catalog and the catalog.json
// the tracker maintains next to the spill files — is the stable view an
// external log shipper polls: index ranges, epochs, sizes and content
// hashes per segment, plus the tracker's health. Sealed history stays fully
// readable throughout — Snapshot and the lazy Stamped vectors replay spill
// files transparently, and SnapshotTo streams the whole run (disk and tail
// alike) into a portable .mvclog without ever materializing a vector table.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"mixedclock"
)

func main() {
	batch := flag.Int("batch", 0, "commit handler operations in batches of up to N (0: one Do per operation)")
	flag.Parse()
	spillDir, err := os.MkdirTemp("", "mvc-spill-*")
	if err != nil {
		panic(err)
	}
	defer os.RemoveAll(spillDir)

	tracker := mixedclock.NewTracker(
		mixedclock.WithMechanism(mixedclock.Popularity{}),
		// Seal at aligned 100-event boundaries and spill sealed segments to
		// disk: the in-memory suffix is bounded however long the service
		// runs, and segment edges land at predictable indices.
		mixedclock.WithSpill(mixedclock.SpillPolicy{Dir: spillDir, SealEvery: 100}),
		// Keep the spill directory tidy: whenever more than 4 segments have
		// accumulated, merge adjacent small ones (within one epoch) into
		// tiers of up to 64 KiB.
		mixedclock.WithCompaction(mixedclock.CompactPolicy{MaxSegments: 4, TargetBytes: 64 << 10}),
	)

	// Phase 1: twelve request handlers hammer two hot caches.
	hotA := tracker.NewObject("cache-A")
	hotB := tracker.NewObject("cache-B")
	handlers := make([]*mixedclock.Thread, 12)
	for i := range handlers {
		handlers[i] = tracker.NewThread(fmt.Sprintf("handler-%d", i))
	}
	var wg sync.WaitGroup
	for i, th := range handlers {
		wg.Add(1)
		go func(th *mixedclock.Thread, k int) {
			defer wg.Done()
			// With -batch N, each handler accumulates its operations in a
			// Batch and commits every N: same events, same stamps, but the
			// per-commit synchronization is paid once per batch — the knob
			// to turn when handlers outrun the tracker.
			b := th.NewBatch()
			for j := 0; j < 60; j++ {
				o := hotA
				if (k+j)%2 != 0 {
					o = hotB
				}
				if *batch > 0 {
					if b.Write(o).Len() >= *batch {
						b.Commit()
					}
				} else {
					th.Write(o, nil)
				}
			}
			b.Commit()
		}(th, i)
	}
	wg.Wait()
	lastPhase1 := handlers[0].Write(hotA, nil)
	fmt.Printf("after phase 1: %d events, clock has %d components\n",
		tracker.Events(), tracker.Size())
	fmt.Println("(the optimum is 2 — the two caches — but popularity's early")
	fmt.Println(" tie-breaks admitted extra threads, and components are append-only)")

	// Maintenance window: compact. The optimal cover for everything so far
	// replaces the drifted component set, and the closing epoch's tail is
	// sealed alongside the auto-sealed segments.
	epoch, size, err := tracker.Compact()
	if err != nil {
		panic(err)
	}
	fmt.Printf("\ncompacted: epoch %d, clock re-based to %d components\n", epoch, size)

	// Phase 2: the workload shifts to new per-tenant stores.
	tenants := make([]*mixedclock.Object, 3)
	for i := range tenants {
		tenants[i] = tracker.NewObject(fmt.Sprintf("tenant-%d", i))
	}
	for i, th := range handlers[:6] {
		wg.Add(1)
		go func(th *mixedclock.Thread, k int) {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				th.Write(tenants[(k+j)%3], nil)
			}
		}(th, i)
	}
	wg.Wait()
	firstPhase2 := handlers[0].Write(tenants[0], nil)
	fmt.Printf("after phase 2: %d events, clock has %d components (epoch %d)\n",
		tracker.Events(), tracker.Size(), tracker.Epoch())

	// The history is on disk, not in the heap — and tier-compacted, so the
	// directory holds a few merged segments, not one file per seal.
	segs := tracker.Segments()
	var spilledEvents int
	var spilledBytes int64
	for _, sg := range segs {
		spilledEvents += sg.Events
		spilledBytes += sg.Bytes
	}
	fmt.Printf("\nsealed history, after tiered compaction: %d segments, %d of %d events on disk (%d bytes delta-encoded)\n",
		len(segs), spilledEvents, tracker.Events(), spilledBytes)
	fmt.Printf("first segment: epoch %d, events [%d,%d], %s\n",
		segs[0].Epoch, segs[0].FirstIndex, segs[0].FirstIndex+segs[0].Events-1,
		filepath.Base(segs[0].Path))

	// What a log shipper would poll: the catalog (also on disk as
	// catalog.json next to the spill files, rewritten atomically after
	// every seal and compaction).
	cat := tracker.Catalog()
	fmt.Printf("catalog: generation %d, %d segments, %d sealed events, healthy=%v\n",
		cat.Generation, len(cat.Segments), cat.SealedEvents, cat.Health == "" && !cat.AutoSealDisarmed)
	fmt.Printf("each segment ships with a content hash, e.g. %s: sha256 %s...\n",
		cat.Segments[0].Path, cat.Segments[0].SHA256[:12])

	// Cross-epoch ordering still works, straight off the spill files: the
	// compaction barrier orders every phase-1 operation before phase 2,
	// and lastPhase1's vector materializes by replaying its segment.
	fmt.Printf("\nphase-1 op %v (epoch %d) happened before phase-2 op %v (epoch %d): %v\n",
		lastPhase1.Event, lastPhase1.Epoch,
		firstPhase2.Event, firstPhase2.Epoch,
		lastPhase1.HappenedBefore(firstPhase2))

	// Export the entire run — spilled history and live tail — as one
	// delta-encoded log, streamed record by record.
	logPath := filepath.Join(spillDir, "run.mvclog")
	f, err := os.Create(logPath)
	if err != nil {
		panic(err)
	}
	if err := tracker.SnapshotTo(f); err != nil {
		panic(err)
	}
	if err := f.Close(); err != nil {
		panic(err)
	}
	rf, err := os.Open(logPath)
	if err != nil {
		panic(err)
	}
	defer rf.Close()
	full, _, err := mixedclock.ReadLog(rf)
	if err != nil {
		panic(err)
	}
	fi, _ := os.Stat(logPath)
	fmt.Printf("\nstreamed the full run to %s: %d events, %d bytes\n",
		filepath.Base(logPath), full.Len(), fi.Size())

	if err := tracker.Err(); err != nil {
		panic(err)
	}
	fmt.Printf("epoch boundaries in the recorded trace: %v\n", tracker.EpochStarts())
}
