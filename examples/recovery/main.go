// Recovery demonstrates both senses of recovery the library supports.
//
// First, durable-run recovery: a live tracker is opened over a spill
// directory with mixedclock.Open, its sealed history survives a simulated
// crash (the process abandons the tracker without Close), and a second Open
// rebuilds a live tracker from the directory — clocks, component cover and
// epoch included — that resumes committing exactly where the sealed history
// ends.
//
// Second, the failure-recovery use-case from the paper's introduction: once
// the run is recovered, one operation turns out to be faulty, and the mixed
// vector clock timestamps alone identify every causally contaminated
// operation and the maximal consistent state — the recovery line — to roll
// back to.
package main

import (
	"fmt"
	"math/rand"
	"os"

	"mixedclock"
)

// runAndCrash is the first life of the run: open a durable tracker over dir,
// do some work, seal, and "crash" — return without ever calling Close, as a
// killed process would. Only what was sealed survives.
func runAndCrash(dir string) int {
	tracker, err := mixedclock.Open(dir)
	if err != nil {
		panic(err)
	}
	// Eight workers funnel through two shared hot partitions, and two also
	// maintain private partitions — the access shape where a mixed clock is
	// much smaller than either classical clock. Deterministic seed keeps the
	// narrative stable.
	rng := rand.New(rand.NewSource(7))
	var workers []*mixedclock.Thread
	for i := 0; i < 8; i++ {
		workers = append(workers, tracker.NewThread(fmt.Sprintf("T%d", i+1)))
	}
	objects := []*mixedclock.Object{
		tracker.NewObject("hot-O1"), tracker.NewObject("hot-O2"),
		tracker.NewObject("T1-private"), tracker.NewObject("T2-private"),
	}
	for i := 0; i < 28; i++ {
		t := rng.Intn(8)
		o := rng.Intn(2) // hot partitions
		if t < 2 && rng.Float64() < 0.5 {
			o = 2 + t // worker T1's or T2's private partition
		}
		workers[t].Write(objects[o], nil)
	}
	// Seal: everything so far becomes immutable, hash-stamped segments plus
	// a published catalog.json — the unit of crash durability.
	if err := tracker.Seal(); err != nil {
		panic(err)
	}
	sealed := tracker.Events()
	// A little more work that is NOT sealed; the crash loses exactly this.
	workers[0].Write(objects[0], nil)
	workers[1].Write(objects[1], nil)
	fmt.Printf("first run: %d events committed, %d sealed, then the process dies\n",
		tracker.Events(), sealed)
	return sealed
}

func main() {
	dir, err := os.MkdirTemp("", "mvc-recovery-*")
	if err != nil {
		panic(err)
	}
	defer os.RemoveAll(dir)

	sealed := runAndCrash(dir)

	// Second life: Open rebuilds a live tracker from the directory. Every
	// listed segment is verified (size, SHA-256, full decode), per-thread
	// and per-object clocks are replayed, and committing resumes at the
	// next trace index — in the same epoch, causally after everything the
	// sealed history recorded.
	tracker, err := mixedclock.Open(dir)
	if err != nil {
		panic(err)
	}
	defer tracker.Close()
	ri := tracker.Recovery()
	fmt.Printf("\nreopened %s:\n", dir)
	fmt.Printf("  recovered %d of the sealed %d events (epoch %d, clean close: %v)\n",
		ri.Events, sealed, ri.Epoch, ri.CleanClose)
	workers, objects := tracker.Threads(), tracker.Objects()
	fmt.Printf("  registry restored: %d workers, %d objects (first: %s, %s)\n",
		len(workers), len(objects), workers[0].Name(), objects[0].Name())

	// The recovered run keeps going as if the crash never happened.
	s := workers[2].Write(objects[1], nil)
	fmt.Printf("  resumed committing at index %d\n\n", s.Event.Index)

	// Now the paper's recovery story, on the recovered history: operation 9
	// wrote garbage. One consistent snapshot gives the trace and stamps.
	trace, stamps := tracker.Snapshot()
	const bad = 9
	fmt.Printf("fault detected at event %d %v\n", bad, trace.At(bad))

	// Every event that could have observed the bad write, from timestamp
	// comparisons alone (Theorem 2: bad → e ⇔ V(bad) < V(e)).
	contaminated := mixedclock.Contaminated(stamps, bad)
	fmt.Printf("causally contaminated events: %d of %d\n", len(contaminated), trace.Len())

	// The recovery line: the maximal consistent cut excluding the fault.
	line, err := mixedclock.RecoveryLine(trace, stamps, bad)
	if err != nil {
		panic(err)
	}
	fmt.Printf("recovery line: %v\n", line)
	fmt.Printf("events surviving rollback: %d of %d\n", line.Size(), trace.Len())
	if !mixedclock.IsConsistentCut(trace, line) {
		panic("recovery line must be consistent")
	}
	fmt.Println("verified: the recovery line is a consistent global state")

	// Close brackets the run: the tail is sealed, the catalog is published
	// with a clean-shutdown marker, and a third Open would report
	// CleanClose instead of a crash.
}
