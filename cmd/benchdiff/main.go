// Benchdiff is the CI benchmark-regression gate: it parses two `go test
// -bench` output files (base and head), takes the per-benchmark minimum of
// each metric's samples (robust to the one-sided noise of shared CI
// runners), writes the comparison as JSON, and exits nonzero when any
// benchmark present in both runs regressed by more than the threshold on
// any gated metric — ns/op, B/op or allocs/op (the latter two appear when
// the run passes -benchmem).
//
//	go test -bench 'Backends|TrackerParallel|Stamp' -benchmem -count=6 > head.txt
//	git checkout $BASE && go test -bench ... > base.txt
//	go run ./cmd/benchdiff -base base.txt -head head.txt \
//	    -json BENCH_pr.json -threshold-pct 20
//
// Benchmarks or metrics that exist only in one run are reported but never
// gate (new benchmarks have no baseline; deleted ones have no head), with
// one exception: allocs/op or B/op going from zero to nonzero is always a
// regression — an allocation-free hot path that starts allocating has lost
// exactly the property the gate exists to protect, and no ratio can express
// it. benchdiff complements benchstat: benchstat gives the statistician's
// view, benchdiff gives a deterministic threshold and a machine-readable
// artifact.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
)

// gatedUnits are the metrics the gate inspects, in report order. Other
// units on a result line (custom b.ReportMetric series like ns/event) are
// ignored: they are derived views of the gated ones.
var gatedUnits = []string{"ns/op", "B/op", "allocs/op"}

// Sample is the aggregate of one benchmark's runs within a single file.
// The gate compares minima: noise on shared CI runners is one-sided (noisy
// neighbours only ever slow a run down or fragment its memory), so the min
// of -count runs is the most stable estimate of true cost. Means are kept
// for context.
type Sample struct {
	Name  string
	Count int
	Min   map[string]float64
	Mean  map[string]float64
}

// MetricDelta is one metric's base-vs-head entry. The figures are per-file
// minima (see Sample).
type MetricDelta struct {
	Unit string   `json:"unit"`
	Base *float64 `json:"base,omitempty"`
	Head *float64 `json:"head,omitempty"`
	// DeltaPct is (head-base)/base*100; positive means head is worse.
	DeltaPct   *float64 `json:"delta_pct,omitempty"`
	Regression bool     `json:"regression"`
}

// Comparison is one benchmark's entry in the JSON artifact.
type Comparison struct {
	Name       string        `json:"name"`
	Metrics    []MetricDelta `json:"metrics"`
	Regression bool          `json:"regression"`
}

// Report is the full JSON artifact.
type Report struct {
	ThresholdPct float64      `json:"threshold_pct"`
	Regressions  int          `json:"regressions"`
	Benchmarks   []Comparison `json:"benchmarks"`
}

// parseBenchFile reads `go test -bench` output, collecting per-metric
// samples per benchmark name. The GOMAXPROCS suffix (-8 etc.) is kept: it
// is part of the benchmark's identity, and base and head run on the same
// machine in CI.
func parseBenchFile(path string) (map[string]*Sample, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	out := make(map[string]*Sample)
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		metrics, name, ok := parseBenchLine(sc.Text())
		if !ok {
			continue
		}
		s := out[name]
		if s == nil {
			s = &Sample{Name: name, Min: map[string]float64{}, Mean: map[string]float64{}}
			out[name] = s
		}
		s.Count++
		for unit, v := range metrics {
			if prev, seen := s.Min[unit]; !seen || v < prev {
				s.Min[unit] = v
			}
			// Running mean keeps the math overflow-safe for any count.
			// Metrics are assumed present on every line of a benchmark
			// (true for go test output within one file).
			s.Mean[unit] += (v - s.Mean[unit]) / float64(s.Count)
		}
	}
	return out, sc.Err()
}

// parseBenchLine extracts the gated metrics from one benchmark result line,
// or reports ok=false for any other line (headers, PASS, metrics-only
// lines). A result line must at least carry ns/op.
func parseBenchLine(line string) (metrics map[string]float64, name string, ok bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return nil, "", false
	}
	if _, err := strconv.Atoi(fields[1]); err != nil {
		return nil, "", false // iterations column missing: not a result line
	}
	for i := 2; i+1 < len(fields); i += 2 {
		unit := fields[i+1]
		gated := false
		for _, u := range gatedUnits {
			if unit == u {
				gated = true
				break
			}
		}
		if !gated {
			continue
		}
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return nil, "", false
		}
		if metrics == nil {
			metrics = make(map[string]float64, len(gatedUnits))
		}
		metrics[unit] = v
	}
	if _, has := metrics["ns/op"]; !has {
		return nil, "", false
	}
	return metrics, fields[0], true
}

// compare joins base and head samples into the report, flagging regressions
// beyond thresholdPct on any gated metric.
func compare(base, head map[string]*Sample, thresholdPct float64) Report {
	names := make(map[string]bool)
	for n := range base {
		names[n] = true
	}
	for n := range head {
		names[n] = true
	}
	sorted := make([]string, 0, len(names))
	for n := range names {
		sorted = append(sorted, n)
	}
	sort.Strings(sorted)

	rep := Report{ThresholdPct: thresholdPct}
	for _, n := range sorted {
		c := Comparison{Name: n}
		b, h := base[n], head[n]
		for _, unit := range gatedUnits {
			var m MetricDelta
			m.Unit = unit
			var bv, hv float64
			var bok, hok bool
			if b != nil {
				bv, bok = b.Min[unit]
			}
			if h != nil {
				hv, hok = h.Min[unit]
			}
			if bok {
				v := bv
				m.Base = &v
			}
			if hok {
				v := hv
				m.Head = &v
			}
			if bok && hok {
				switch {
				case bv > 0:
					d := (hv - bv) / bv * 100
					m.DeltaPct = &d
					m.Regression = d > thresholdPct
				case unit != "ns/op" && hv >= 1:
					// Zero-base memory metrics have no ratio; going from
					// an allocation-free op to an allocating one is the
					// regression this gate most wants to catch. B/op is
					// checked too: amortized allocations can round
					// allocs/op down to 0 while still costing bytes.
					m.Regression = true
				}
			}
			if m.Base == nil && m.Head == nil {
				continue // metric absent on both sides (e.g. no -benchmem)
			}
			if m.Regression {
				c.Regression = true
			}
			c.Metrics = append(c.Metrics, m)
		}
		if c.Regression {
			rep.Regressions++
		}
		rep.Benchmarks = append(rep.Benchmarks, c)
	}
	return rep
}

// describe renders one comparison as a report line.
func describe(c Comparison) string {
	var b strings.Builder
	flag := " "
	if c.Regression {
		flag = "!"
	}
	fmt.Fprintf(&b, "%s %-60s", flag, c.Name)
	if len(c.Metrics) == 0 {
		return b.String()
	}
	for i, m := range c.Metrics {
		if i > 0 {
			b.WriteString("  |")
		}
		switch {
		case m.Base != nil && m.Head != nil:
			fmt.Fprintf(&b, " %12.1f → %12.1f %s", *m.Base, *m.Head, m.Unit)
			if m.DeltaPct != nil {
				fmt.Fprintf(&b, " %+6.1f%%", *m.DeltaPct)
			} else if m.Regression {
				b.WriteString(" (0 → alloc)")
			}
		case m.Head != nil:
			fmt.Fprintf(&b, " %12.1f %s (new)", *m.Head, m.Unit)
		default:
			fmt.Fprintf(&b, " %s (gone)", m.Unit)
		}
	}
	return b.String()
}

func run(basePath, headPath, jsonPath string, thresholdPct float64, stdout *os.File) (int, error) {
	base, err := parseBenchFile(basePath)
	if err != nil {
		return 2, fmt.Errorf("base: %w", err)
	}
	head, err := parseBenchFile(headPath)
	if err != nil {
		return 2, fmt.Errorf("head: %w", err)
	}
	rep := compare(base, head, thresholdPct)

	if jsonPath != "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return 2, err
		}
		if err := os.WriteFile(jsonPath, append(data, '\n'), 0o644); err != nil {
			return 2, err
		}
	}
	for _, c := range rep.Benchmarks {
		fmt.Fprintln(stdout, describe(c))
	}
	if rep.Regressions > 0 {
		fmt.Fprintf(stdout, "\nFAIL: %d benchmark(s) regressed more than %.0f%% (ns/op, B/op or allocs/op)\n", rep.Regressions, thresholdPct)
		return 1, nil
	}
	fmt.Fprintf(stdout, "\nOK: no benchmark regressed more than %.0f%%\n", thresholdPct)
	return 0, nil
}

func main() {
	basePath := flag.String("base", "", "bench output of the base commit")
	headPath := flag.String("head", "", "bench output of the head commit")
	jsonPath := flag.String("json", "", "write the comparison as JSON to this path")
	threshold := flag.Float64("threshold-pct", 20, "fail when ns/op, B/op or allocs/op grows by more than this percent")
	flag.Parse()
	if *basePath == "" || *headPath == "" {
		fmt.Fprintln(os.Stderr, "usage: benchdiff -base base.txt -head head.txt [-json out.json] [-threshold-pct 20]")
		os.Exit(2)
	}
	code, err := run(*basePath, *headPath, *jsonPath, *threshold, os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
	}
	os.Exit(code)
}
