package predicate

import (
	"errors"
	"math/rand"
	"testing"

	"mixedclock/internal/cut"
	"mixedclock/internal/event"
)

// independent returns a trace with two threads of two private events each —
// no synchronization, full 2×2 lattice.
func independent() *event.Trace {
	tr := event.NewTrace()
	tr.Append(0, 0, event.OpWrite)
	tr.Append(0, 0, event.OpWrite)
	tr.Append(1, 1, event.OpWrite)
	tr.Append(1, 1, event.OpWrite)
	return tr
}

func at(c0, c1 int) Predicate {
	return func(s *State) bool {
		return s.Executed(0) == c0 && s.Executed(1) == c1
	}
}

func TestPossiblyFindsReachableState(t *testing.T) {
	tr := independent()
	witness, found, err := Possibly(tr, at(1, 1), 0)
	if err != nil {
		t.Fatal(err)
	}
	if !found {
		t.Fatal("state (1,1) should be reachable")
	}
	if witness.PerThread[0] != 1 || witness.PerThread[1] != 1 {
		t.Fatalf("witness = %v", witness)
	}
	if !cut.IsConsistent(tr, witness) {
		t.Fatal("witness cut inconsistent")
	}
}

func TestPossiblyRespectsSynchronization(t *testing.T) {
	// T1's event on O1 precedes T2's event on O1: T2 cannot have executed
	// its event while T1 has executed nothing.
	tr := event.NewTrace()
	tr.Append(0, 0, event.OpWrite) // e0: T1 on O1
	tr.Append(1, 0, event.OpWrite) // e1: T2 on O1 (after e0)

	_, found, err := Possibly(tr, at(0, 1), 0)
	if err != nil {
		t.Fatal(err)
	}
	if found {
		t.Fatal("state (0,1) violates the O1 ordering and must be unreachable")
	}
	// The synchronized state (1,1) is reachable.
	_, found, err = Possibly(tr, at(1, 1), 0)
	if err != nil || !found {
		t.Fatalf("state (1,1) should be reachable: %v", err)
	}
}

func TestDefinitelyLevelPredicate(t *testing.T) {
	// Every path passes through every total-count level.
	tr := independent()
	for level := 0; level <= 4; level++ {
		level := level
		got, err := Definitely(tr, func(s *State) bool { return s.Total() == level }, 0)
		if err != nil {
			t.Fatal(err)
		}
		if !got {
			t.Errorf("level %d should be definite", level)
		}
	}
}

func TestDefinitelyFalseForCornerState(t *testing.T) {
	// (1,1) is reachable but avoidable: a path may run T1 to completion
	// first.
	got, err := Definitely(independent(), at(1, 1), 0)
	if err != nil {
		t.Fatal(err)
	}
	if got {
		t.Fatal("corner state should not be definite")
	}
}

func TestDefinitelyForcedBySynchronization(t *testing.T) {
	// Chain: T1 writes O1, T2 reads O1 then works. Every path passes the
	// state "T1 done, T2 not started" — because T2's first event needs
	// T1's event executed and states advance one event at a time.
	tr := event.NewTrace()
	tr.Append(0, 0, event.OpWrite) // e0: T1 on O1
	tr.Append(1, 0, event.OpRead)  // e1: T2 reads O1
	got, err := Definitely(tr, at(1, 0), 0)
	if err != nil {
		t.Fatal(err)
	}
	if !got {
		t.Fatal("state (1,0) lies on every path")
	}
}

func TestPossiblyDetectsMutualExclusionOverlap(t *testing.T) {
	// Two threads take "locks" as objects. In trace A they share a lock —
	// critical sections cannot overlap. In trace B they use different
	// locks — overlap is possible. The predicate: both threads are inside
	// their critical section (entered, not exited).
	inCS := func(s *State) bool {
		return s.Executed(0) == 1 && s.Executed(1) == 1
	}

	shared := event.NewTrace()
	shared.Append(0, 0, event.OpWrite) // T1 enter (lock O1)
	shared.Append(0, 0, event.OpWrite) // T1 exit
	shared.Append(1, 0, event.OpWrite) // T2 enter (same lock)
	shared.Append(1, 0, event.OpWrite) // T2 exit
	_, foundShared, err := Possibly(shared, inCS, 0)
	if err != nil {
		t.Fatal(err)
	}

	disjoint := event.NewTrace()
	disjoint.Append(0, 0, event.OpWrite) // T1 enter lock O1
	disjoint.Append(0, 0, event.OpWrite) // T1 exit
	disjoint.Append(1, 1, event.OpWrite) // T2 enter lock O2
	disjoint.Append(1, 1, event.OpWrite) // T2 exit
	_, foundDisjoint, err := Possibly(disjoint, inCS, 0)
	if err != nil {
		t.Fatal(err)
	}

	if foundShared {
		t.Error("shared lock: overlapping critical sections must be impossible")
	}
	if !foundDisjoint {
		t.Error("disjoint locks: overlap must be possible")
	}
}

func TestStateAccessors(t *testing.T) {
	tr := event.NewTrace()
	tr.Append(0, 1, event.OpWrite) // e0
	tr.Append(1, 1, event.OpRead)  // e1

	var captured *State
	_, found, err := Possibly(tr, func(s *State) bool {
		if s.Executed(0) == 1 && s.Executed(1) == 1 {
			captured = s
			return true
		}
		return false
	}, 0)
	if err != nil || !found {
		t.Fatalf("state not found: %v", err)
	}
	if e, ok := captured.LastEvent(0); !ok || e.Index != 0 {
		t.Errorf("LastEvent(0) = %v, %v", e, ok)
	}
	if e, ok := captured.LastOnObject(1); !ok || e.Index != 1 {
		t.Errorf("LastOnObject(1) = %v, %v", e, ok)
	}
	if _, ok := captured.LastOnObject(0); ok {
		t.Error("object O1 has no events")
	}
	if captured.Total() != 2 {
		t.Errorf("Total = %d", captured.Total())
	}
}

func TestBudgetExhaustion(t *testing.T) {
	// A wide antichain has 2^k states; a tiny budget must error rather
	// than silently return "not found".
	tr := event.NewTrace()
	for i := 0; i < 10; i++ {
		tr.Append(event.ThreadID(i), event.ObjectID(i), event.OpWrite)
	}
	never := func(*State) bool { return false }
	if _, _, err := Possibly(tr, never, 16); !errors.Is(err, ErrBudget) {
		t.Fatalf("Possibly: want ErrBudget, got %v", err)
	}
	if _, err := Definitely(tr, never, 16); !errors.Is(err, ErrBudget) {
		t.Fatalf("Definitely: want ErrBudget, got %v", err)
	}
}

func TestPossiblyImpliesObservedOrReachable(t *testing.T) {
	// Cross-check on random traces: a predicate true at some prefix of the
	// OBSERVED interleaving must be Possibly-true (the observed run is one
	// lattice path).
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 10; trial++ {
		tr := event.NewTrace()
		for i := 0; i < 14; i++ {
			tr.Append(event.ThreadID(rng.Intn(3)), event.ObjectID(rng.Intn(3)), event.OpWrite)
		}
		// Pick a random prefix of the observed run as the target state.
		k := rng.Intn(tr.Len() + 1)
		counts := make([]int, tr.Threads())
		for i := 0; i < k; i++ {
			counts[tr.At(i).Thread]++
		}
		target := func(s *State) bool {
			for t := 0; t < tr.Threads(); t++ {
				if s.Executed(event.ThreadID(t)) != counts[t] {
					return false
				}
			}
			return true
		}
		_, found, err := Possibly(tr, target, 0)
		if err != nil {
			t.Fatal(err)
		}
		if !found {
			t.Fatalf("trial %d: observed prefix state %v not found", trial, counts)
		}
	}
}

func TestDefinitelyImpliesPossibly(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	for trial := 0; trial < 10; trial++ {
		tr := event.NewTrace()
		for i := 0; i < 12; i++ {
			tr.Append(event.ThreadID(rng.Intn(3)), event.ObjectID(rng.Intn(3)), event.OpWrite)
		}
		k := rng.Intn(13)
		pred := func(s *State) bool { return s.Total() == k }
		def, err := Definitely(tr, pred, 0)
		if err != nil {
			t.Fatal(err)
		}
		_, pos, err := Possibly(tr, pred, 0)
		if err != nil {
			t.Fatal(err)
		}
		if def && !pos {
			t.Fatalf("trial %d: definitely but not possibly", trial)
		}
	}
}
