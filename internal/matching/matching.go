// Package matching implements maximum bipartite matching and the
// König–Egerváry minimum-vertex-cover construction that the paper's offline
// algorithm (Algorithm 1) is built on.
//
// Two matching algorithms are provided: Hopcroft–Karp (the paper's choice,
// O(E·√V)) and Kuhn's single-augmenting-path algorithm (O(V·E)), which serves
// as an independent cross-check in tests. Both produce a Matching from which
// KonigCover extracts a minimum vertex cover whose size equals the matching
// size — the certificate of optimality for the mixed vector clock.
package matching

import (
	"fmt"

	"mixedclock/internal/bipartite"
)

// unmatched marks a vertex with no partner.
const unmatched = -1

// Matching is a set of vertex-disjoint edges in a thread–object bipartite
// graph, stored as partner indices in both directions.
type Matching struct {
	// ThreadMatch[t] is the object matched to thread t, or -1.
	ThreadMatch []int
	// ObjectMatch[o] is the thread matched to object o, or -1.
	ObjectMatch []int
	size        int
}

// newMatching returns an empty matching for a graph with the given sides.
func newMatching(nThreads, nObjects int) *Matching {
	m := &Matching{
		ThreadMatch: make([]int, nThreads),
		ObjectMatch: make([]int, nObjects),
	}
	for i := range m.ThreadMatch {
		m.ThreadMatch[i] = unmatched
	}
	for i := range m.ObjectMatch {
		m.ObjectMatch[i] = unmatched
	}
	return m
}

// Size returns the number of matched edges.
func (m *Matching) Size() int { return m.size }

// Pairs returns the matched (thread, object) edges in thread order.
func (m *Matching) Pairs() []bipartite.Edge {
	out := make([]bipartite.Edge, 0, m.size)
	for t, o := range m.ThreadMatch {
		if o != unmatched {
			out = append(out, bipartite.Edge{Thread: t, Object: o})
		}
	}
	return out
}

// Verify checks internal consistency against g: every matched pair is an
// edge of g, and the two directions agree. It returns nil for a valid
// matching.
func (m *Matching) Verify(g *bipartite.Graph) error {
	if len(m.ThreadMatch) != g.NThreads() || len(m.ObjectMatch) != g.NObjects() {
		return fmt.Errorf("matching: dimensions %dx%d do not fit graph %dx%d",
			len(m.ThreadMatch), len(m.ObjectMatch), g.NThreads(), g.NObjects())
	}
	count := 0
	for t, o := range m.ThreadMatch {
		if o == unmatched {
			continue
		}
		count++
		if o < 0 || o >= g.NObjects() {
			return fmt.Errorf("matching: thread %d matched to out-of-range object %d", t, o)
		}
		if m.ObjectMatch[o] != t {
			return fmt.Errorf("matching: asymmetric pair (%d, %d)", t, o)
		}
		if !g.HasEdge(t, o) {
			return fmt.Errorf("matching: pair (%d, %d) is not an edge", t, o)
		}
	}
	for o, t := range m.ObjectMatch {
		if t != unmatched && m.ThreadMatch[t] != o {
			return fmt.Errorf("matching: asymmetric pair (%d, %d) on object side", t, o)
		}
	}
	if count != m.size {
		return fmt.Errorf("matching: size %d but %d matched threads", m.size, count)
	}
	return nil
}

// HopcroftKarp computes a maximum matching of g in O(E·√V): repeatedly build
// a BFS layering from all unmatched threads, then augment along a maximal
// set of vertex-disjoint shortest augmenting paths found by DFS, until no
// augmenting path exists.
func HopcroftKarp(g *bipartite.Graph) *Matching {
	n, m := g.NThreads(), g.NObjects()
	match := newMatching(n, m)
	if n == 0 || m == 0 {
		return match
	}

	const inf = int(^uint(0) >> 1)
	dist := make([]int, n)

	// bfs layers unmatched threads at distance 0 and alternates
	// unmatched/matched edges; it reports whether any augmenting path
	// (ending in an unmatched object) exists.
	queue := make([]int, 0, n)
	bfs := func() bool {
		queue = queue[:0]
		for t := 0; t < n; t++ {
			if match.ThreadMatch[t] == unmatched {
				dist[t] = 0
				queue = append(queue, t)
			} else {
				dist[t] = inf
			}
		}
		found := false
		for head := 0; head < len(queue); head++ {
			t := queue[head]
			for _, o := range g.ThreadNeighbors(t) {
				nt := match.ObjectMatch[o]
				if nt == unmatched {
					found = true
					continue
				}
				if dist[nt] == inf {
					dist[nt] = dist[t] + 1
					queue = append(queue, nt)
				}
			}
		}
		return found
	}

	// dfs extends a shortest alternating path from thread t; on success it
	// flips the path's edges into the matching.
	var dfs func(t int) bool
	dfs = func(t int) bool {
		for _, o := range g.ThreadNeighbors(t) {
			nt := match.ObjectMatch[o]
			if nt == unmatched || (dist[nt] == dist[t]+1 && dfs(nt)) {
				match.ThreadMatch[t] = o
				match.ObjectMatch[o] = t
				return true
			}
		}
		// Dead end: prune t from this phase.
		dist[t] = inf
		return false
	}

	for bfs() {
		for t := 0; t < n; t++ {
			if match.ThreadMatch[t] == unmatched && dfs(t) {
				match.size++
			}
		}
	}
	return match
}

// Kuhn computes a maximum matching with the classical single augmenting-path
// algorithm (O(V·E)). It is slower than Hopcroft–Karp but so simple that it
// makes a trustworthy oracle: tests assert both algorithms agree on size.
func Kuhn(g *bipartite.Graph) *Matching {
	n, m := g.NThreads(), g.NObjects()
	match := newMatching(n, m)
	if n == 0 || m == 0 {
		return match
	}
	visited := make([]bool, m)
	var try func(t int) bool
	try = func(t int) bool {
		for _, o := range g.ThreadNeighbors(t) {
			if visited[o] {
				continue
			}
			visited[o] = true
			if match.ObjectMatch[o] == unmatched || try(match.ObjectMatch[o]) {
				match.ThreadMatch[t] = o
				match.ObjectMatch[o] = t
				return true
			}
		}
		return false
	}
	for t := 0; t < n; t++ {
		for i := range visited {
			visited[i] = false
		}
		if try(t) {
			match.size++
		}
	}
	return match
}
