package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestParseBenchLine(t *testing.T) {
	tests := []struct {
		line    string
		metrics map[string]float64
		name    string
		ok      bool
	}{
		{"BenchmarkTracker/objects=16-8   \t 1488769\t       396.2 ns/op",
			map[string]float64{"ns/op": 396.2}, "BenchmarkTracker/objects=16-8", true},
		{"BenchmarkBackends/deep-join/flat-8  100  1234 ns/op  257 components  5.2 ns/event",
			map[string]float64{"ns/op": 1234}, "BenchmarkBackends/deep-join/flat-8", true},
		{"BenchmarkX-8  200  88 ns/op  12 B/op  3 allocs/op",
			map[string]float64{"ns/op": 88, "B/op": 12, "allocs/op": 3}, "BenchmarkX-8", true},
		{"goos: linux", nil, "", false},
		{"PASS", nil, "", false},
		{"ok  \tmixedclock\t2.4s", nil, "", false},
		{"BenchmarkNoIters ns/op garbage", nil, "", false},
		{"BenchmarkOnlyMem-8  100  12 B/op  3 allocs/op", nil, "", false}, // no ns/op: not a result line
	}
	for _, tt := range tests {
		metrics, name, ok := parseBenchLine(tt.line)
		if ok != tt.ok || name != tt.name {
			t.Errorf("parseBenchLine(%q) = (%v, %q, %v), want (%v, %q, %v)",
				tt.line, metrics, name, ok, tt.metrics, tt.name, tt.ok)
			continue
		}
		if len(metrics) != len(tt.metrics) {
			t.Errorf("parseBenchLine(%q) metrics = %v, want %v", tt.line, metrics, tt.metrics)
			continue
		}
		for unit, v := range tt.metrics {
			if metrics[unit] != v {
				t.Errorf("parseBenchLine(%q) %s = %v, want %v", tt.line, unit, metrics[unit], v)
			}
		}
	}
}

func writeTemp(t *testing.T, name, content string) string {
	t.Helper()
	p := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestCountAggregation(t *testing.T) {
	p := writeTemp(t, "b.txt", `
BenchmarkA-8  100  150 ns/op  64 B/op  2 allocs/op
BenchmarkA-8  100  100 ns/op  80 B/op  2 allocs/op
BenchmarkA-8  100  350 ns/op  64 B/op  3 allocs/op
`)
	got, err := parseBenchFile(p)
	if err != nil {
		t.Fatal(err)
	}
	s := got["BenchmarkA-8"]
	if s == nil || s.Count != 3 {
		t.Fatalf("sample = %+v, want count 3", s)
	}
	if s.Min["ns/op"] != 100 || s.Mean["ns/op"] != 200 {
		t.Fatalf("ns/op min %v mean %v, want 100/200", s.Min["ns/op"], s.Mean["ns/op"])
	}
	if s.Min["B/op"] != 64 || s.Min["allocs/op"] != 2 {
		t.Fatalf("memory minima = %v / %v, want 64 / 2", s.Min["B/op"], s.Min["allocs/op"])
	}
}

// mkSample builds a one-run Sample from per-unit values.
func mkSample(name string, metrics map[string]float64) *Sample {
	min := make(map[string]float64, len(metrics))
	mean := make(map[string]float64, len(metrics))
	for u, v := range metrics {
		min[u], mean[u] = v, v
	}
	return &Sample{Name: name, Count: 1, Min: min, Mean: mean}
}

func TestCompareGatesOnThreshold(t *testing.T) {
	base := map[string]*Sample{
		"BenchmarkSlower-8": mkSample("BenchmarkSlower-8", map[string]float64{"ns/op": 100}),
		"BenchmarkSame-8":   mkSample("BenchmarkSame-8", map[string]float64{"ns/op": 100}),
		"BenchmarkGone-8":   mkSample("BenchmarkGone-8", map[string]float64{"ns/op": 50}),
		"BenchmarkMem-8":    mkSample("BenchmarkMem-8", map[string]float64{"ns/op": 100, "B/op": 100, "allocs/op": 10}),
		"BenchmarkAlloc0-8": mkSample("BenchmarkAlloc0-8", map[string]float64{"ns/op": 100, "B/op": 0, "allocs/op": 0}),
	}
	head := map[string]*Sample{
		"BenchmarkSlower-8": mkSample("BenchmarkSlower-8", map[string]float64{"ns/op": 121}),
		"BenchmarkSame-8":   mkSample("BenchmarkSame-8", map[string]float64{"ns/op": 119}),
		"BenchmarkNew-8":    mkSample("BenchmarkNew-8", map[string]float64{"ns/op": 10}),
		// Faster but allocating more: must gate on the memory axis.
		"BenchmarkMem-8": mkSample("BenchmarkMem-8", map[string]float64{"ns/op": 80, "B/op": 130, "allocs/op": 10}),
		// Was allocation-free, now allocates: gated despite no ratio.
		"BenchmarkAlloc0-8": mkSample("BenchmarkAlloc0-8", map[string]float64{"ns/op": 100, "B/op": 16, "allocs/op": 1}),
	}
	// Amortized allocation: allocs/op rounds down to 0 but B/op shows the
	// bytes — must still gate on the B/op axis.
	base["BenchmarkAmort-8"] = mkSample("BenchmarkAmort-8", map[string]float64{"ns/op": 100, "B/op": 0, "allocs/op": 0})
	head["BenchmarkAmort-8"] = mkSample("BenchmarkAmort-8", map[string]float64{"ns/op": 100, "B/op": 4, "allocs/op": 0})
	rep := compare(base, head, 20)
	if rep.Regressions != 4 {
		t.Fatalf("regressions = %d, want 4", rep.Regressions)
	}
	for _, c := range rep.Benchmarks {
		if c.Name == "BenchmarkAmort-8" && !c.Regression {
			t.Error("0 → 4 B/op with 0 allocs/op not flagged")
		}
	}
	byName := map[string]Comparison{}
	for _, c := range rep.Benchmarks {
		byName[c.Name] = c
	}
	if !byName["BenchmarkSlower-8"].Regression {
		t.Error("21% ns/op slowdown not flagged at 20% threshold")
	}
	if byName["BenchmarkSame-8"].Regression {
		t.Error("19% slowdown flagged at 20% threshold")
	}
	if !byName["BenchmarkMem-8"].Regression {
		t.Error("30% B/op growth not flagged")
	}
	if !byName["BenchmarkAlloc0-8"].Regression {
		t.Error("0 → 1 allocs/op not flagged")
	}
	if byName["BenchmarkNew-8"].Regression {
		t.Error("benchmark without baseline must not gate")
	}
	if byName["BenchmarkGone-8"].Regression {
		t.Error("deleted benchmark must not gate")
	}
	for _, m := range byName["BenchmarkNew-8"].Metrics {
		if m.DeltaPct != nil {
			t.Error("benchmark without baseline must have no delta")
		}
	}
}

func TestRunEndToEnd(t *testing.T) {
	base := writeTemp(t, "base.txt", "BenchmarkA-8  100  100 ns/op  32 B/op  1 allocs/op\n")
	headOK := writeTemp(t, "head_ok.txt", "BenchmarkA-8  100  105 ns/op  32 B/op  1 allocs/op\nBenchmarkB-8  10  7 ns/op\n")
	headBad := writeTemp(t, "head_bad.txt", "BenchmarkA-8  100  90 ns/op  64 B/op  9 allocs/op\n")
	jsonOut := filepath.Join(t.TempDir(), "BENCH_pr.json")

	code, err := run(base, headOK, jsonOut, 20, os.Stdout)
	if err != nil || code != 0 {
		t.Fatalf("ok case: code %d, err %v", code, err)
	}
	data, err := os.ReadFile(jsonOut)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"threshold_pct": 20`, `"BenchmarkA-8"`, `"BenchmarkB-8"`, `"regressions": 0`, `"unit": "allocs/op"`} {
		if !strings.Contains(string(data), want) {
			t.Errorf("artifact missing %q:\n%s", want, data)
		}
	}

	// Memory regression with a ns/op improvement still fails the gate.
	code, err = run(base, headBad, "", 20, os.Stdout)
	if err != nil || code != 1 {
		t.Fatalf("regression case: code %d, err %v (want 1, nil)", code, err)
	}
}
