package loadgen

import (
	"flag"
	"time"
)

// Flags binds the load-generator knobs to a FlagSet. cmd/loadgen and
// `mvc spam` both register through AddFlags, so the two front doors accept
// the identical interface and stay in sync by construction.
type Flags struct {
	threads  *int
	objects  *int
	readfrac *float64
	duration *time.Duration
	warmup   *int
	ops      *int
	batch    *int
	dist     *string
	store    *string
	monitor  *bool
	backend  *string
	seed     *int64
	// Format is the output format flag: table, csv or json.
	Format *string
}

// AddFlags registers the standard load-generator flags on fs and returns
// the bound set; call Config after fs.Parse.
func AddFlags(fs *flag.FlagSet) *Flags {
	return &Flags{
		threads:  fs.Int("threads", 4, "worker goroutines (tracker threads)"),
		objects:  fs.Int("objects", 64, "shared objects"),
		readfrac: fs.Float64("readfrac", 0.5, "fraction of measured ops that are reads"),
		duration: fs.Duration("duration", 2*time.Second, "measured-phase length (ignored with -ops)"),
		warmup:   fs.Int("warmup", 1000, "warmup writes per worker before measuring"),
		ops:      fs.Int("ops", 0, "measured ops per worker (deterministic mode; 0 = timed)"),
		batch:    fs.Int("batch", 1, "ops per batched commit (1 = per-op Do)"),
		dist:     fs.String("dist", "uniform", "object distribution: uniform or zipf"),
		store:    fs.String("store", "", "spill directory: arms spilling, compaction and retention"),
		monitor:  fs.Bool("monitor", false, "attach a live online monitor for the run"),
		backend:  fs.String("backend", "", "clock backend: flat, tree, auto (default: tracker default)"),
		seed:     fs.Int64("seed", 1, "base RNG seed"),
		Format:   fs.String("format", "table", "report format: table, csv or json"),
	}
}

// Config materializes the parsed flag values as a run configuration.
func (f *Flags) Config() Config {
	return Config{
		Threads:  *f.threads,
		Objects:  *f.objects,
		ReadFrac: *f.readfrac,
		Duration: *f.duration,
		Warmup:   *f.warmup,
		Ops:      *f.ops,
		Batch:    *f.batch,
		Dist:     *f.dist,
		Store:    *f.store,
		Monitor:  *f.monitor,
		Backend:  *f.backend,
		Seed:     *f.seed,
	}
}
