package core

import (
	"fmt"

	"mixedclock/internal/event"
	"mixedclock/internal/vclock"
)

// MixedClock timestamps events over a fixed component set using the update
// rule of §III-C:
//
//	e.V = max(p.V, q.V)
//	if q ∈ components: e.V[q]++
//	if p ∈ components: e.V[p]++
//
// after which both thread p and object q adopt e.V. When the component set
// is a vertex cover of the computation's graph (the offline algorithm
// guarantees this), the result is a valid vector clock of optimal size
// (Theorems 2 and 3).
//
// MixedClock is not safe for concurrent use; package track wraps it for live
// goroutines.
type MixedClock struct {
	comps   *ComponentSet
	threads map[event.ThreadID]vclock.Vector
	objects map[event.ObjectID]vclock.Vector
	err     error
	events  int
}

// NewMixedClock returns a clock over the given components. The set may be
// grown behind the clock's back (the online tracker does exactly that);
// vectors expand on demand.
func NewMixedClock(comps *ComponentSet) *MixedClock {
	return &MixedClock{
		comps:   comps,
		threads: make(map[event.ThreadID]vclock.Vector),
		objects: make(map[event.ObjectID]vclock.Vector),
	}
}

// Timestamp implements clock.Timestamper.
func (c *MixedClock) Timestamp(e event.Event) vclock.Vector {
	v := c.threads[e.Thread].Merge(c.objects[e.Object])
	ticked := false
	if i, ok := c.comps.IndexOf(ObjectComponent(e.Object)); ok {
		v = v.Tick(i)
		ticked = true
	}
	if i, ok := c.comps.IndexOf(ThreadComponent(e.Thread)); ok {
		v = v.Tick(i)
		ticked = true
	}
	if !ticked && c.err == nil {
		// The event's edge is not covered: this clock was built for a
		// different computation. The stamp returned here cannot order the
		// event; record the misuse for Err instead of panicking.
		c.err = fmt.Errorf("core: event %d %v not covered by components %v",
			e.Index, e, c.comps)
	}
	// Grow to the full current width so printed stamps align (the paper's
	// Fig. 3 shows fixed-width vectors); comparisons are width-agnostic
	// either way.
	v = v.Grow(c.comps.Len())
	c.threads[e.Thread] = v
	c.objects[e.Object] = v
	c.events++
	return v.Clone()
}

// Components implements clock.Timestamper.
func (c *MixedClock) Components() int { return c.comps.Len() }

// ComponentSet returns the clock's component set (shared, not a copy).
func (c *MixedClock) ComponentSet() *ComponentSet { return c.comps }

// Name implements clock.Timestamper.
func (c *MixedClock) Name() string { return "mixed/offline" }

// Events returns how many events have been timestamped.
func (c *MixedClock) Events() int { return c.events }

// Err reports the first uncovered event encountered, or nil. A non-nil
// result means at least one returned timestamp is unable to order its event
// and the clock's output must not be trusted.
func (c *MixedClock) Err() error { return c.err }

// ThreadVector returns a copy of the current vector held by thread t.
func (c *MixedClock) ThreadVector(t event.ThreadID) vclock.Vector {
	return c.threads[t].Clone()
}

// ObjectVector returns a copy of the current vector held by object o.
func (c *MixedClock) ObjectVector(o event.ObjectID) vclock.Vector {
	return c.objects[o].Clone()
}
