package track

import (
	"testing"

	"mixedclock/internal/clock"
	"mixedclock/internal/core"
	"mixedclock/internal/event"
	"mixedclock/internal/vclock"
)

// sliceTrace re-bases the events of full[start:end) as their own trace.
func sliceTrace(full *event.Trace, start, end int) *event.Trace {
	seg := event.NewTrace()
	for i := start; i < end; i++ {
		ev := full.At(i)
		seg.Append(ev.Thread, ev.Object, ev.Op)
	}
	return seg
}

// TestAutoBackendResolvesAtCompact pins the WithBackend(Auto) lifecycle:
// flat from the start (nothing observed), re-decided at each Compact from
// the compacted width and join shape.
func TestAutoBackendResolvesAtCompact(t *testing.T) {
	tr := NewTracker(WithBackend(vclock.BackendAuto))
	if tr.Backend() != vclock.BackendFlat {
		t.Fatalf("fresh auto tracker backend = %v, want flat", tr.Backend())
	}

	// A wide, causally local computation: every thread owns one object.
	// The optimal cover has one component per edge, so compaction sees a
	// width ≥ AutoTreeWidth with fan-in 1 and should switch to tree.
	threads := make([]*Thread, core.AutoTreeWidth+8)
	for i := range threads {
		threads[i] = tr.NewThread("w")
		threads[i].Write(tr.NewObject("p"), nil)
	}
	if _, size, err := tr.Compact(); err != nil {
		t.Fatal(err)
	} else if size < core.AutoTreeWidth {
		t.Fatalf("compacted width %d below threshold; workload broken", size)
	}
	if tr.Backend() != vclock.BackendTree {
		t.Fatalf("wide local computation resolved to %v, want tree", tr.Backend())
	}

	// The new epoch must still stamp correctly in the switched backend.
	for _, th := range threads[:8] {
		th.Write(tr.NewObject("fresh"), nil)
	}
	if err := tr.Err(); err != nil {
		t.Fatal(err)
	}
	starts := tr.EpochStarts()
	trace, stamps := tr.Snapshot()
	if err := clock.Validate(sliceTrace(trace, starts[1], trace.Len()),
		stamps[starts[1]:], "auto/epoch1"); err != nil {
		t.Fatal(err)
	}
}

// TestAutoBackendStaysFlatWhenNarrow pins the other side of the heuristic.
func TestAutoBackendStaysFlatWhenNarrow(t *testing.T) {
	tr := NewTracker(WithBackend(vclock.BackendAuto))
	th := tr.NewThread("t")
	o := tr.NewObject("o")
	for i := 0; i < 10; i++ {
		th.Write(o, nil)
	}
	if _, _, err := tr.Compact(); err != nil {
		t.Fatal(err)
	}
	if tr.Backend() != vclock.BackendFlat {
		t.Fatalf("narrow computation resolved to %v, want flat", tr.Backend())
	}
	if err := tr.Err(); err != nil {
		t.Fatal(err)
	}
}
