package vclock

import (
	"bytes"
	"testing"
)

// FuzzDecodeVector checks the binary decoder never panics, never
// over-reads, and round-trips whatever it accepts.
func FuzzDecodeVector(f *testing.F) {
	f.Add([]byte{0})
	f.Add([]byte{1, 5})
	f.Add([]byte{3, 1, 2, 3})
	f.Add(Vector{1 << 40, 0, 7}.AppendBinary(nil))
	f.Add([]byte{0xff, 0xff, 0xff})
	f.Fuzz(func(t *testing.T, data []byte) {
		v, used, err := DecodeVector(data)
		if err != nil {
			return
		}
		if used > len(data) {
			t.Fatalf("consumed %d of %d bytes", used, len(data))
		}
		// Accepted input must re-encode to a prefix-equivalent canonical
		// form that decodes to an equal vector.
		re := v.AppendBinary(nil)
		v2, used2, err := DecodeVector(re)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if used2 != len(re) || !v2.Equal(v) {
			t.Fatalf("round trip changed vector: %v -> %v", v, v2)
		}
		_ = bytes.Equal(re, data[:used]) // may differ: canonicalization trims zeros
	})
}
