// Epoch-based reclamation: the deferred-release machinery that lets the
// segment lifecycle retire shared state without stopping the world.
//
// The problem it solves: compaction and retention replace parts of the
// sealed-history snapshot (the segment list, spill files on disk, cover
// generations, consumed tail blocks) while commits, streams and monitors
// read them with no lock held. The old design made every replacement a
// stop-the-world swap — correct, but it put rare maintenance work on the
// critical path of every commit. The EBR design publishes replacements
// atomically (see segState and core.SharedCover's generations) and hands
// the *old* value to the reclaimer, which frees it only once no reader can
// still hold it.
//
// The protocol is the classic one (blink-hash-style per-thread epochs):
//
//   - A global epoch counter only ever advances; every retirement advances
//     it and records the pre-advance value as the entry's epoch.
//   - Every reader that may hold a reclaimable reference — a Thread during
//     its commit, a sealed-history replay — owns a cache-line-padded record
//     and pins it to the current global epoch before loading any shared
//     pointer, unpinning when done (0 = quiescent). Go's sequentially
//     consistent atomics give the ordering this needs: if a reader's load
//     observed the old value, its pin (p) happened before the retirement's
//     epoch fetch (e), so p <= e and the entry stays in limbo.
//   - A limbo entry of epoch e is freed once every record is either
//     quiescent or pinned at an epoch strictly greater than e — every
//     registered thread has passed the retirement.
//
// What "free" means is per resource: for spill files it is the actual
// Remove/archive of the file (so a pinned replay never has its file deleted
// underneath it — the retry in replaySealed becomes a fallback, not the
// mechanism); for in-memory values (superseded cover generations, replaced
// SharedCovers, consumed tail blocks, old segState snapshots) it is
// dropping the last tracked reference so the garbage collector can take
// over. Reclamation is attempted synchronously at each retirement and again
// after every seal, so in quiescent (single-threaded) runs frees are
// prompt and deterministic.
//
// The reclaimer never blocks anyone: pinning is two uncontended atomic
// stores on the thread's own cache line, and a pinned reader only delays
// frees, never commits. The world write barrier remains only where a
// consistent cut of the *mutable* state is needed — Snapshot, Stream's
// freeze, Seal and Compact.
package track

import (
	"sync"
	"sync/atomic"
)

// epochRec is one reader's pin state, alone on its cache line(s) so pinning
// never causes invalidation traffic on another reader's line. pinned holds
// the global epoch the reader entered at, or 0 when quiescent.
type epochRec struct {
	_      [cacheLineSize]byte
	pinned atomic.Int64
	_      [cacheLineSize - 8]byte
}

// pin marks the record active at the current global epoch. It must run
// before the reader loads any pointer the reclaimer protects.
func (r *epochRec) pin(rc *reclaimer) { r.pinned.Store(rc.epoch.Load()) }

// unpin marks the record quiescent.
func (r *epochRec) unpin() { r.pinned.Store(0) }

// limboEntry is one retired resource awaiting its free.
type limboEntry struct {
	epoch int64
	free  func()
}

// reclaimer is the tracker's epoch-based reclamation state. The zero value
// is not ready; newTracker calls init.
type reclaimer struct {
	// epoch is the global epoch; it starts at 1 (0 is the quiescent pin
	// marker) and advances at every retirement.
	epoch atomic.Int64

	mu    sync.Mutex
	recs  []*epochRec
	limbo []limboEntry
}

func (rc *reclaimer) init() { rc.epoch.Store(1) }

// register adds a reader record. Threads register once at NewThread and
// stay; transient readers (sealed-history replays) unregister when done.
func (rc *reclaimer) register() *epochRec {
	r := &epochRec{}
	rc.mu.Lock()
	rc.recs = append(rc.recs, r)
	rc.mu.Unlock()
	return r
}

// unregister removes a transient reader record and attempts reclamation —
// the departing reader may have been the last pin holding limbo back.
func (rc *reclaimer) unregister(r *epochRec) {
	rc.mu.Lock()
	for i, x := range rc.recs {
		if x == r {
			rc.recs = append(rc.recs[:i], rc.recs[i+1:]...)
			break
		}
	}
	rc.mu.Unlock()
	rc.tryFree()
}

// retire puts free on the limbo list at the current epoch, advances the
// epoch, and attempts reclamation immediately — in a quiescent tracker the
// free runs before retire returns, which keeps file retirement prompt and
// tests deterministic. free must be safe to run from any goroutine; it runs
// with no reclaimer or tracker lock held.
func (rc *reclaimer) retire(free func()) {
	e := rc.epoch.Add(1) - 1
	rc.mu.Lock()
	rc.limbo = append(rc.limbo, limboEntry{epoch: e, free: free})
	rc.mu.Unlock()
	rc.tryFree()
}

// retireDeferred is retire without the immediate reclamation attempt, for
// callers that hold the world write barrier (a free may perform filesystem
// I/O, which must never run inside the barrier). The entry drains at the
// next retire, unregister or reclaim call — afterSeal always makes one.
func (rc *reclaimer) retireDeferred(free func()) {
	e := rc.epoch.Add(1) - 1
	rc.mu.Lock()
	rc.limbo = append(rc.limbo, limboEntry{epoch: e, free: free})
	rc.mu.Unlock()
}

// reclaim attempts to free everything in limbo that no reader can still
// hold.
func (rc *reclaimer) reclaim() { rc.tryFree() }

// pending reports how many retired resources sit in limbo (for tests and
// observability).
func (rc *reclaimer) pending() int {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	return len(rc.limbo)
}

// tryFree frees every limbo entry whose epoch every record has passed:
// entry(e) is freed iff every record is quiescent or pinned at an epoch
// greater than e. The frees run outside the reclaimer lock.
func (rc *reclaimer) tryFree() {
	rc.mu.Lock()
	minPinned := int64(0) // 0 = no one pinned
	for _, r := range rc.recs {
		if p := r.pinned.Load(); p != 0 && (minPinned == 0 || p < minPinned) {
			minPinned = p
		}
	}
	var run []func()
	if minPinned == 0 {
		run = make([]func(), len(rc.limbo))
		for i, le := range rc.limbo {
			run[i] = le.free
		}
		rc.limbo = rc.limbo[:0]
	} else {
		keep := rc.limbo[:0]
		for _, le := range rc.limbo {
			if le.epoch < minPinned {
				run = append(run, le.free)
			} else {
				keep = append(keep, le)
			}
		}
		rc.limbo = keep
	}
	rc.mu.Unlock()
	for _, f := range run {
		f()
	}
}
