// Package track provides live causality tracking for real goroutines — the
// "multithreaded systems" substrate of the paper, with goroutines as threads
// and lock-protected shared objects as the paper's sequential objects.
//
// A Tracker owns the clock state. Goroutines register as Threads, shared
// state registers as Objects, and every operation runs through Thread.Do,
// which enforces the per-object mutual exclusion the paper assumes, assigns
// the operation a mixed-vector-clock timestamp (growing the component set
// online via a configurable mechanism), and records the event. The recorded
// trace and timestamps can then be analyzed, validated, or replayed
// offline.
package track

import (
	"fmt"
	"sync"

	"mixedclock/internal/core"
	"mixedclock/internal/event"
	"mixedclock/internal/vclock"
)

// Stamped is one recorded operation with its timestamp. Epoch counts the
// compactions that preceded the operation (see Compact); comparisons
// between stamps honour it.
type Stamped struct {
	Event  event.Event
	Vector vclock.Vector
	Epoch  int
}

// HappenedBefore reports whether s's operation causally precedes t's,
// decided from the timestamps (Theorem 2) and, across epochs, the
// compaction barrier order.
func (s Stamped) HappenedBefore(t Stamped) bool { return s.Order(t) == vclock.Before }

// Concurrent reports whether the two operations are causally unrelated.
// Operations in different epochs are never concurrent: compaction is a
// barrier.
func (s Stamped) Concurrent(t Stamped) bool { return s.Order(t) == vclock.Concurrent }

// Tracker coordinates causality tracking across goroutines. Create one per
// tracked computation with NewTracker; all methods are safe for concurrent
// use.
type Tracker struct {
	mu      sync.Mutex
	cover   *core.CoverTracker
	clock   *core.MixedClock
	backend vclock.Backend
	trace   *event.Trace
	stamps  []vclock.Vector
	threads []*Thread
	objects []*Object
	// epoch counts compactions; epochStart[i] is the trace index where
	// epoch i+1 began.
	epoch      int
	epochStart []int
	// firstErr keeps the first clock misuse across epochs (each
	// compaction installs a fresh clock, which would otherwise reset Err).
	firstErr error
}

// Option configures a Tracker.
type Option func(*options)

type options struct {
	mech    core.Mechanism
	backend vclock.Backend
}

// WithMechanism selects the online component-choice mechanism (default: the
// paper's recommended Hybrid — Popularity first, NaiveThreads once the
// revealed graph grows dense or large).
func WithMechanism(m core.Mechanism) Option {
	return func(o *options) { o.mech = m }
}

// WithBackend selects the clock representation (default: the flat vector).
// The tree backend trades slightly richer bookkeeping for joins that cost
// only as much as the components they change; timestamps are identical
// either way. The choice survives Compact.
func WithBackend(b vclock.Backend) Option {
	return func(o *options) { o.backend = b }
}

// NewTracker returns an empty tracker.
func NewTracker(opts ...Option) *Tracker {
	o := options{mech: core.NewHybrid(), backend: vclock.BackendFlat}
	for _, opt := range opts {
		opt(&o)
	}
	cover := core.NewCoverTracker(o.mech)
	return &Tracker{
		cover:   cover,
		clock:   core.NewMixedClockBackend(cover.Components(), o.backend),
		backend: o.backend,
		trace:   event.NewTrace(),
	}
}

// Thread is a registered logical thread. A Thread must be used by one
// goroutine at a time (typically the goroutine that created it), mirroring
// the paper's sequential processes; the Tracker itself is what synchronizes
// cross-thread state.
type Thread struct {
	t    *Tracker
	id   event.ThreadID
	name string
}

// ID returns the thread's dense identifier.
func (th *Thread) ID() event.ThreadID { return th.id }

// Name returns the label passed to NewThread.
func (th *Thread) Name() string { return th.name }

// Object is a registered shared object. Its embedded lock enforces the
// paper's assumption that operations on a single object are sequential.
type Object struct {
	mu   sync.Mutex
	t    *Tracker
	id   event.ObjectID
	name string
}

// ID returns the object's dense identifier.
func (o *Object) ID() event.ObjectID { return o.id }

// Name returns the label passed to NewObject.
func (o *Object) Name() string { return o.name }

// NewThread registers a new logical thread.
func (t *Tracker) NewThread(name string) *Thread {
	t.mu.Lock()
	defer t.mu.Unlock()
	th := &Thread{t: t, id: event.ThreadID(len(t.threads)), name: name}
	t.threads = append(t.threads, th)
	return th
}

// NewObject registers a new shared object.
func (t *Tracker) NewObject(name string) *Object {
	t.mu.Lock()
	defer t.mu.Unlock()
	o := &Object{t: t, id: event.ObjectID(len(t.objects)), name: name}
	t.objects = append(t.objects, o)
	return o
}

// Do performs fn as one operation by th on o: it locks o (sequentializing
// the object), runs fn, then timestamps and records the operation. The
// object lock is held across both fn and the clock update so the recorded
// object order matches the execution order.
//
// Nested Do calls on *different* objects are allowed (the inner operation is
// recorded first, as its own event); the usual lock-ordering discipline
// applies, exactly as with raw mutexes.
func (th *Thread) Do(o *Object, op event.Op, fn func()) Stamped {
	if th.t != o.t {
		panic(fmt.Sprintf("track: thread %q and object %q belong to different trackers", th.name, o.name))
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	if fn != nil {
		fn()
	}
	return th.t.commit(th.id, o.id, op)
}

// Write is shorthand for Do(o, event.OpWrite, fn).
func (th *Thread) Write(o *Object, fn func()) Stamped { return th.Do(o, event.OpWrite, fn) }

// Read is shorthand for Do(o, event.OpRead, fn).
func (th *Thread) Read(o *Object, fn func()) Stamped { return th.Do(o, event.OpRead, fn) }

// commit records the event under the tracker lock. The trace order it
// produces is a linearization of the happened-before order: the caller holds
// the object lock, the calling goroutine serializes the thread, and this
// lock serializes the rest.
func (t *Tracker) commit(tid event.ThreadID, oid event.ObjectID, op event.Op) Stamped {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.cover.Reveal(tid, oid)
	e := t.trace.Append(tid, oid, op)
	v := t.clock.Timestamp(e)
	if err := t.clock.Err(); err != nil && t.firstErr == nil {
		t.firstErr = err
	}
	t.stamps = append(t.stamps, v)
	return Stamped{Event: e, Vector: v, Epoch: t.epoch}
}

// Backend returns the clock representation the tracker was built with.
func (t *Tracker) Backend() vclock.Backend { return t.backend }

// Size returns the current vector-clock size (number of components).
func (t *Tracker) Size() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.cover.Size()
}

// Components returns the current component set as a copy.
func (t *Tracker) Components() []core.Component {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.cover.Components().Components()
}

// Events returns the number of recorded operations.
func (t *Tracker) Events() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.trace.Len()
}

// Trace returns a copy of the recorded computation.
func (t *Tracker) Trace() *event.Trace {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := event.NewTrace()
	for i := 0; i < t.trace.Len(); i++ {
		out.AppendEvent(t.trace.At(i))
	}
	return out
}

// Stamps returns a copy of the recorded timestamps, indexed by event index.
func (t *Tracker) Stamps() []vclock.Vector {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]vclock.Vector, len(t.stamps))
	for i, v := range t.stamps {
		out[i] = v.Clone()
	}
	return out
}

// Err surfaces clock misuse (an uncovered event), which would indicate a bug
// in the tracker; always nil in correct operation. The first error from any
// epoch is retained.
func (t *Tracker) Err() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.firstErr != nil {
		return t.firstErr
	}
	return t.clock.Err()
}
