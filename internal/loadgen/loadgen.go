// Package loadgen is the end-to-end load generator behind cmd/loadgen and
// `mvc spam`: it drives a live track.Tracker with a configurable mixed
// read/write workload — warmup phase first, then a timed (or fixed-op-count)
// measured phase, in the warmup-then-mixed style of the classic index
// benchmarking harnesses — and reports throughput (mops/sec), per-operation
// latency percentiles from a dependency-free HDR-style histogram, allocation
// rates, and the tracker's final lifecycle stats.
//
// The workload models the paper's setting directly: Threads goroutines
// operate on Objects lock-protected shared objects, each operation a read
// or write chosen by ReadFrac, the object chosen uniformly or by a Zipf
// skew. Batch > 1 commits runs of operations through Thread.NewBatch
// instead of per-op Do. With Store set the run is durable — spilling,
// tiered compaction and retention all armed — and with Monitor set an
// online detector rides the seal stream while the load runs.
package loadgen

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"mixedclock/internal/event"
	"mixedclock/internal/track"
	"mixedclock/internal/vclock"
)

// Config parameterizes one load-generation run. The zero value is usable:
// defaults are filled by Run (4 threads, 64 objects, uniform object choice,
// 2s measured phase, per-op commits, in-memory tracker). ReadFrac 0 means
// write-only; the CLI front ends default their -readfrac flag to 0.5.
type Config struct {
	// Threads is the number of worker goroutines, each a registered
	// tracker Thread; Objects the number of shared objects they operate
	// on.
	Threads int `json:"threads"`
	Objects int `json:"objects"`
	// ReadFrac is the fraction of measured operations that are reads
	// (0 = write-only, 1 = read-only).
	ReadFrac float64 `json:"readfrac"`
	// Duration bounds the measured phase by wall time. Ignored when Ops
	// is set.
	Duration time.Duration `json:"duration"`
	// Warmup is how many operations each worker commits before the
	// measured phase starts (writes, to populate the cover and object
	// popularity); default 1000.
	Warmup int `json:"warmup"`
	// Ops, when positive, runs exactly this many measured operations per
	// worker instead of a timed phase — the deterministic mode: a fixed
	// Seed then fixes every op count and read/write split exactly.
	Ops int `json:"ops,omitempty"`
	// Batch commits runs of this many operations per Thread.NewBatch
	// commit; 0 or 1 commits per operation via Thread.Do.
	Batch int `json:"batch"`
	// Dist selects the object-choice distribution: "uniform" or "zipf"
	// (s=1.1, the usual hot-key skew).
	Dist string `json:"dist"`
	// Store, when non-empty, makes the run durable: the tracker is opened
	// on this directory with spilling, tiered compaction and retention
	// armed (track.Open + WithStore).
	Store string `json:"store,omitempty"`
	// Monitor attaches an online track.Monitor for the whole run; without
	// a Store the tracker still seals in memory so the monitor has a
	// stream to ride.
	Monitor bool `json:"monitor,omitempty"`
	// Backend selects the clock representation: "flat", "tree", "auto",
	// or "" for the tracker default.
	Backend string `json:"backend,omitempty"`
	// Seed is the base RNG seed; worker i derives its private RNG from
	// Seed+i, so runs are reproducible (exactly so in Ops mode).
	Seed int64 `json:"seed"`
}

// sealEvents is the seal cadence Run arms for durable (and monitored)
// trackers: frequent enough that a short run exercises the whole seal →
// compact → retain pipeline, long enough to stay off the hot path.
const sealEvents = 50_000

// withDefaults fills unset knobs with the documented defaults.
func (c Config) withDefaults() Config {
	if c.Threads == 0 {
		c.Threads = 4
	}
	if c.Objects == 0 {
		c.Objects = 64
	}
	if c.Duration == 0 && c.Ops == 0 {
		c.Duration = 2 * time.Second
	}
	if c.Warmup == 0 {
		c.Warmup = 1000
	}
	if c.Batch == 0 {
		c.Batch = 1
	}
	if c.Dist == "" {
		c.Dist = "uniform"
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// validate rejects configurations Run cannot honour.
func (c Config) validate() error {
	if c.Threads < 1 || c.Objects < 1 {
		return fmt.Errorf("loadgen: need at least 1 thread and 1 object (have %d, %d)", c.Threads, c.Objects)
	}
	if c.ReadFrac < 0 || c.ReadFrac > 1 {
		return fmt.Errorf("loadgen: readfrac %v outside [0, 1]", c.ReadFrac)
	}
	if c.Dist != "uniform" && c.Dist != "zipf" {
		return fmt.Errorf("loadgen: unknown distribution %q (want uniform or zipf)", c.Dist)
	}
	if c.Batch < 1 {
		return fmt.Errorf("loadgen: batch %d < 1", c.Batch)
	}
	if c.Backend != "" {
		if _, err := vclock.ParseBackend(c.Backend); err != nil {
			return fmt.Errorf("loadgen: %w", err)
		}
	}
	return nil
}

// worker is one load goroutine: a registered thread, a private RNG (and
// Zipf source), and private op counters + latency histogram, merged by the
// reporter after the run so the measured loop shares nothing.
type worker struct {
	th     *track.Thread
	rng    *rand.Rand
	zipf   *rand.Zipf
	hist   hist
	ops    int64
	reads  int64
	writes int64
}

// pick chooses the next object index under the configured distribution.
func (w *worker) pick(nObjects int) int {
	if w.zipf != nil {
		return int(w.zipf.Uint64())
	}
	return w.rng.Intn(nObjects)
}

// Run executes one load-generation run and returns its report. The tracker
// is constructed per the config (durable when Store is set), warmed up,
// driven for the measured phase, then — after an optional monitor sync —
// closed (durable runs) and summarized. Worker errors surface through the
// tracker's own Err.
func Run(cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}

	var opts []track.Option
	if cfg.Backend != "" {
		b, err := vclock.ParseBackend(cfg.Backend)
		if err != nil {
			return nil, fmt.Errorf("loadgen: %w", err)
		}
		opts = append(opts, track.WithBackend(b))
	}
	var tr *track.Tracker
	if cfg.Store != "" {
		opts = append(opts, track.WithStore(track.Store{
			Spill:   track.SpillPolicy{SealEvents: sealEvents},
			Compact: track.CompactPolicy{MaxSegments: 12},
			Retain:  track.RetainPolicy{MaxBytes: 512 << 20},
		}))
		var err error
		tr, err = track.Open(cfg.Store, opts...)
		if err != nil {
			return nil, fmt.Errorf("loadgen: opening store: %w", err)
		}
	} else {
		if cfg.Monitor {
			// No spill dir: seal in memory so the monitor has a stream.
			opts = append(opts, track.WithSpill(track.SpillPolicy{SealEvents: sealEvents}))
		}
		tr = track.NewTracker(opts...)
	}

	// The monitor window is deliberately small: the windowed census costs
	// O(window) vector comparisons per record, and the harness's job is to
	// measure commit throughput with detection riding along, not to census
	// a million-event run exactly.
	var mon *track.Monitor
	if cfg.Monitor {
		mon = tr.NewMonitor(track.MonitorPolicy{Window: 128})
	}

	objects := make([]*track.Object, cfg.Objects)
	for i := range objects {
		objects[i] = tr.NewObject(fmt.Sprintf("obj%d", i))
	}
	workers := make([]*worker, cfg.Threads)
	for i := range workers {
		rng := rand.New(rand.NewSource(cfg.Seed + int64(i)))
		w := &worker{th: tr.NewThread(fmt.Sprintf("w%d", i)), rng: rng}
		if cfg.Dist == "zipf" {
			w.zipf = rand.NewZipf(rng, 1.1, 1, uint64(cfg.Objects-1))
		}
		workers[i] = w
	}

	// Warmup: every worker commits cfg.Warmup writes (distribution-chosen
	// objects), populating the cover and the popularity counts before
	// anything is measured.
	var wg sync.WaitGroup
	for _, w := range workers {
		wg.Add(1)
		go func(w *worker) {
			defer wg.Done()
			for j := 0; j < cfg.Warmup; j++ {
				w.th.Do(objects[w.pick(cfg.Objects)], event.OpWrite, nil)
			}
		}(w)
	}
	wg.Wait()

	// Measured mixed phase: timed (stop flag flipped by a timer) or a
	// fixed per-worker op count.
	var stop atomic.Bool
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	if cfg.Ops == 0 {
		time.AfterFunc(cfg.Duration, func() { stop.Store(true) })
	}
	for _, w := range workers {
		wg.Add(1)
		go func(w *worker) {
			defer wg.Done()
			w.mixed(cfg, objects, &stop)
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)

	rep := &Report{
		Config:         cfg,
		WarmupOps:      int64(cfg.Warmup) * int64(cfg.Threads),
		ElapsedSeconds: elapsed.Seconds(),
	}
	var h hist
	for _, w := range workers {
		rep.Ops += w.ops
		rep.Reads += w.reads
		rep.Writes += w.writes
		h.merge(&w.hist)
	}
	rep.Mops = float64(rep.Ops) / elapsed.Seconds() / 1e6
	rep.Latency = Latency{
		P50:  h.quantile(0.50),
		P90:  h.quantile(0.90),
		P99:  h.quantile(0.99),
		P999: h.quantile(0.999),
		Max:  h.max,
	}
	if rep.Ops > 0 {
		rep.AllocsPerOp = float64(after.Mallocs-before.Mallocs) / float64(rep.Ops)
		rep.BytesPerOp = float64(after.TotalAlloc-before.TotalAlloc) / float64(rep.Ops)
	}

	if mon != nil {
		if err := mon.Sync(); err != nil {
			return nil, fmt.Errorf("loadgen: monitor sync: %w", err)
		}
		ms := mon.Stats()
		rep.Monitor = &MonitorSummary{
			Consumed:        ms.Consumed,
			Detections:      ms.Detections,
			Pairs:           ms.Pairs,
			CoverLowerBound: ms.CoverLowerBound,
		}
		mon.Close()
	}
	if cfg.Store != "" {
		if err := tr.Close(); err != nil {
			return nil, fmt.Errorf("loadgen: closing store: %w", err)
		}
	}
	rep.Tracker = tr.Stats()
	rep.Backend = rep.Tracker.Backend.String()
	if err := tr.Err(); err != nil {
		return nil, fmt.Errorf("loadgen: tracker error: %w", err)
	}
	return rep, nil
}

// mixed is one worker's measured loop. In batch mode the commit latency is
// spread evenly over the batch's operations, so the histogram is per
// operation in every mode.
func (w *worker) mixed(cfg Config, objects []*track.Object, stop *atomic.Bool) {
	perWorker := cfg.Ops // 0 = timed
	done := 0
	for {
		if perWorker > 0 {
			if done >= perWorker {
				return
			}
		} else if stop.Load() {
			return
		}
		n := cfg.Batch
		if perWorker > 0 && perWorker-done < n {
			n = perWorker - done
		}
		if n == 1 {
			obj := objects[w.pick(len(objects))]
			op := event.OpWrite
			if w.rng.Float64() < cfg.ReadFrac {
				op = event.OpRead
				w.reads++
			} else {
				w.writes++
			}
			t0 := time.Now()
			w.th.Do(obj, op, nil)
			w.hist.recordN(time.Since(t0).Nanoseconds(), 1)
		} else {
			b := w.th.NewBatch()
			for j := 0; j < n; j++ {
				obj := objects[w.pick(len(objects))]
				if w.rng.Float64() < cfg.ReadFrac {
					b.Read(obj)
					w.reads++
				} else {
					b.Write(obj)
					w.writes++
				}
			}
			t0 := time.Now()
			b.Commit()
			w.hist.recordN(time.Since(t0).Nanoseconds()/int64(n), int64(n))
		}
		done += n
		w.ops += int64(n)
	}
}
