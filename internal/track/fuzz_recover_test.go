package track

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"mixedclock/internal/tlog"
)

// FuzzRecoverCatalog throws arbitrary catalog.json bytes at Open, over a
// directory that also holds genuinely valid segment files from a real run.
// The recovery contract under test: Open never panics and never errors on
// damage — any parseable-but-wrong catalog ends in quarantine and health,
// and the returned tracker must still be fully usable (commit, snapshot,
// close, reopen).
func FuzzRecoverCatalog(f *testing.F) {
	// Seed with the real thing: a catalog a spilling run actually published
	// (resume manifest, hashes, epochs and all), plus structural mutations a
	// crash or a hostile editor could plausibly leave.
	seedDir := f.TempDir()
	tr, err := Open(seedDir)
	if err != nil {
		f.Fatal(err)
	}
	th, ob := tr.NewThread("t0"), tr.NewObject("o0")
	th2 := tr.NewThread("t1")
	for i := 0; i < 8; i++ {
		th.Write(ob, nil)
		th2.Write(ob, nil)
	}
	if err := tr.Seal(); err != nil {
		f.Fatal(err)
	}
	if _, _, err := tr.Compact(); err != nil {
		f.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		th.Write(ob, nil)
	}
	if err := tr.Close(); err != nil {
		f.Fatal(err)
	}
	realCatalog, err := os.ReadFile(filepath.Join(seedDir, tlog.CatalogFileName))
	if err != nil {
		f.Fatal(err)
	}
	// The segment files every fuzz directory is furnished with.
	var segFiles []string
	var segData [][]byte
	ms, _ := filepath.Glob(filepath.Join(seedDir, "*.mvcseg"))
	for _, m := range ms {
		data, err := os.ReadFile(m)
		if err != nil {
			f.Fatal(err)
		}
		segFiles = append(segFiles, filepath.Base(m))
		segData = append(segData, data)
	}
	f.Add(realCatalog)
	f.Add(bytes.Replace(realCatalog, []byte(`"epoch"`), []byte(`"epxch"`), 1))
	f.Add(realCatalog[:len(realCatalog)/2])
	f.Add(bytes.Replace(realCatalog, []byte(`"sha256"`), []byte(`"sha255"`), -1))
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"format_version":1,"generation":1,"sealed_events":0,"segments":[]}`))
	f.Add([]byte(`not json at all`))

	f.Fuzz(func(t *testing.T, catalog []byte) {
		dir := t.TempDir()
		for i, name := range segFiles {
			if err := os.WriteFile(filepath.Join(dir, name), segData[i], 0o666); err != nil {
				t.Fatal(err)
			}
		}
		if err := os.WriteFile(filepath.Join(dir, tlog.CatalogFileName), catalog, 0o666); err != nil {
			t.Fatal(err)
		}
		re, err := Open(dir)
		if err != nil {
			// Open fails only on construction-impossible states, never on
			// damage; with valid options there should be none.
			t.Fatalf("Open errored on fuzzed catalog: %v", err)
		}
		if re.Recovery() == nil {
			t.Fatal("no RecoveryInfo from Open")
		}
		// Whatever was recovered must be a working tracker.
		base := re.Events()
		threads, objects := re.Threads(), re.Objects()
		var thr *Thread
		var obj *Object
		if len(threads) > 0 {
			thr = threads[0]
		} else {
			thr = re.NewThread("fuzz-t")
		}
		if len(objects) > 0 {
			obj = objects[0]
		} else {
			obj = re.NewObject("fuzz-o")
		}
		s := thr.Write(obj, nil)
		if s.Event.Index != base {
			t.Fatalf("resumed commit at index %d, want %d", s.Event.Index, base)
		}
		var buf bytes.Buffer
		if err := re.SnapshotTo(&buf); err != nil {
			t.Fatalf("SnapshotTo after recovery: %v", err)
		}
		if err := re.Close(); err != nil {
			t.Fatalf("Close after recovery: %v", err)
		}
		// And the directory it republished must reopen cleanly.
		re2, err := Open(dir)
		if err != nil {
			t.Fatalf("second Open: %v", err)
		}
		if got := re2.Events(); got != base+1 {
			t.Fatalf("second reopen at %d events, want %d", got, base+1)
		}
		if !re2.Recovery().CleanClose {
			t.Fatal("Close marker lost across reopen")
		}
		if err := re2.Close(); err != nil {
			t.Fatal(err)
		}
	})
}
