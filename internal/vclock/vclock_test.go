package vclock

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestOrderingString(t *testing.T) {
	tests := []struct {
		o    Ordering
		want string
	}{
		{Equal, "equal"},
		{Before, "before"},
		{After, "after"},
		{Concurrent, "concurrent"},
		{Ordering(0), "Ordering(0)"},
		{Ordering(99), "Ordering(99)"},
	}
	for _, tt := range tests {
		if got := tt.o.String(); got != tt.want {
			t.Errorf("Ordering(%d).String() = %q, want %q", int(tt.o), got, tt.want)
		}
	}
}

func TestCompare(t *testing.T) {
	tests := []struct {
		name string
		v, w Vector
		want Ordering
	}{
		{"both nil", nil, nil, Equal},
		{"nil vs zeros", nil, Vector{0, 0}, Equal},
		{"zeros vs nil", Vector{0, 0, 0}, nil, Equal},
		{"identical", Vector{1, 2, 3}, Vector{1, 2, 3}, Equal},
		{"trailing zeros equal", Vector{2, 1}, Vector{2, 1, 0}, Equal},
		{"before simple", Vector{1, 2}, Vector{1, 3}, Before},
		{"after simple", Vector{4, 2}, Vector{1, 2}, After},
		{"before via growth", Vector{2, 1}, Vector{2, 1, 4}, Before},
		{"after via growth", Vector{2, 1, 4}, Vector{2, 1}, After},
		{"concurrent", Vector{1, 0}, Vector{0, 1}, Concurrent},
		{"concurrent mixed lengths", Vector{1, 0, 5}, Vector{2, 0}, Concurrent},
		{"nil before", nil, Vector{0, 1}, Before},
		{"after nil", Vector{0, 0, 7}, nil, After},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.v.Compare(tt.w); got != tt.want {
				t.Errorf("%v.Compare(%v) = %v, want %v", tt.v, tt.w, got, tt.want)
			}
		})
	}
}

func TestCompareAntisymmetry(t *testing.T) {
	// v.Compare(w) and w.Compare(v) must be consistent mirrors.
	mirror := map[Ordering]Ordering{
		Equal:      Equal,
		Before:     After,
		After:      Before,
		Concurrent: Concurrent,
	}
	f := func(a, b []uint8) bool {
		v := fromBytes(a)
		w := fromBytes(b)
		return w.Compare(v) == mirror[v.Compare(w)]
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Error(err)
	}
}

func TestLessConcurrentEqualAgree(t *testing.T) {
	f := func(a, b []uint8) bool {
		v, w := fromBytes(a), fromBytes(b)
		ord := v.Compare(w)
		if v.Less(w) != (ord == Before) {
			return false
		}
		if v.Concurrent(w) != (ord == Concurrent) {
			return false
		}
		return v.Equal(w) == (ord == Equal)
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Error(err)
	}
}

func TestMergeProperties(t *testing.T) {
	t.Run("commutative", func(t *testing.T) {
		f := func(a, b []uint8) bool {
			v, w := fromBytes(a), fromBytes(b)
			return v.Merge(w).Equal(w.Merge(v))
		}
		if err := quick.Check(f, quickCfg()); err != nil {
			t.Error(err)
		}
	})
	t.Run("associative", func(t *testing.T) {
		f := func(a, b, c []uint8) bool {
			u, v, w := fromBytes(a), fromBytes(b), fromBytes(c)
			return u.Merge(v).Merge(w).Equal(u.Merge(v.Merge(w)))
		}
		if err := quick.Check(f, quickCfg()); err != nil {
			t.Error(err)
		}
	})
	t.Run("idempotent", func(t *testing.T) {
		f := func(a []uint8) bool {
			v := fromBytes(a)
			return v.Merge(v).Equal(v)
		}
		if err := quick.Check(f, quickCfg()); err != nil {
			t.Error(err)
		}
	})
	t.Run("upper bound", func(t *testing.T) {
		f := func(a, b []uint8) bool {
			v, w := fromBytes(a), fromBytes(b)
			m := v.Merge(w)
			cv, cw := v.Compare(m), w.Compare(m)
			return (cv == Before || cv == Equal) && (cw == Before || cw == Equal)
		}
		if err := quick.Check(f, quickCfg()); err != nil {
			t.Error(err)
		}
	})
}

func TestMergeDoesNotAlias(t *testing.T) {
	v := Vector{1, 2}
	w := Vector{3, 0}
	m := v.Merge(w)
	m[0] = 99
	if v[0] != 1 || w[0] != 3 {
		t.Errorf("Merge aliased its inputs: v=%v w=%v", v, w)
	}
}

func TestMergeInPlace(t *testing.T) {
	tests := []struct {
		name string
		v, w Vector
		want Vector
	}{
		{"grow", Vector{1}, Vector{0, 5}, Vector{1, 5}},
		{"no grow", Vector{4, 4}, Vector{2, 9}, Vector{4, 9}},
		{"nil receiver", nil, Vector{3}, Vector{3}},
		{"nil arg", Vector{3}, nil, Vector{3}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := tt.v.MergeInPlace(tt.w)
			if !got.Equal(tt.want) {
				t.Errorf("MergeInPlace = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestMergeInPlaceMatchesMerge(t *testing.T) {
	f := func(a, b []uint8) bool {
		v, w := fromBytes(a), fromBytes(b)
		return v.Clone().MergeInPlace(w).Equal(v.Merge(w))
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Error(err)
	}
}

func TestTickSetAtGrow(t *testing.T) {
	var v Vector
	v = v.Tick(2)
	if want := (Vector{0, 0, 1}); !v.Equal(want) {
		t.Fatalf("after Tick(2): %v, want %v", v, want)
	}
	v = v.Tick(2)
	if v.At(2) != 2 {
		t.Fatalf("At(2) = %d, want 2", v.At(2))
	}
	v = v.Set(0, 7)
	if v.At(0) != 7 {
		t.Fatalf("At(0) = %d, want 7", v.At(0))
	}
	if v.At(-1) != 0 || v.At(100) != 0 {
		t.Fatal("At out of range should be 0")
	}
	if got := v.Grow(2); len(got) != 3 {
		t.Fatalf("Grow must never shrink: len=%d", len(got))
	}
}

func TestGrowPreservesPrefix(t *testing.T) {
	v := Vector{5, 6}
	g := v.Grow(5)
	if len(g) != 5 || g[0] != 5 || g[1] != 6 || g[2] != 0 || g[4] != 0 {
		t.Fatalf("Grow(5) = %v", g)
	}
}

func TestGrowWithinCapacityZeroes(t *testing.T) {
	// A vector shrunk by reslicing may have stale values in capacity; Grow
	// reuses capacity, so the harnesses that rely on Grow must only ever
	// grow. This test documents the contract: growing a freshly allocated
	// vector yields zeros.
	v := make(Vector, 1, 8)
	v[0] = 3
	g := v.Grow(4)
	for i := 1; i < 4; i++ {
		if g[i] != 0 {
			t.Fatalf("component %d = %d, want 0", i, g[i])
		}
	}
}

func TestCloneIndependence(t *testing.T) {
	v := Vector{1, 2, 3}
	c := v.Clone()
	c[1] = 99
	if v[1] != 2 {
		t.Errorf("Clone shares storage: v=%v", v)
	}
	if got := Vector(nil).Clone(); got != nil {
		t.Errorf("nil.Clone() = %v, want nil", got)
	}
}

func TestSum(t *testing.T) {
	tests := []struct {
		v    Vector
		want uint64
	}{
		{nil, 0},
		{Vector{0}, 0},
		{Vector{1, 2, 3}, 6},
	}
	for _, tt := range tests {
		if got := tt.v.Sum(); got != tt.want {
			t.Errorf("%v.Sum() = %d, want %d", tt.v, got, tt.want)
		}
	}
}

func TestSumMonotoneUnderTickAndMerge(t *testing.T) {
	f := func(a, b []uint8, idx uint8) bool {
		v, w := fromBytes(a), fromBytes(b)
		m := v.Merge(w).Tick(int(idx % 16))
		return m.Sum() > v.Sum() || m.Sum() > w.Sum() || (v.Sum() == 0 && w.Sum() == 0 && m.Sum() == 1)
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Error(err)
	}
}

func TestString(t *testing.T) {
	tests := []struct {
		v    Vector
		want string
	}{
		{nil, "[]"},
		{Vector{7}, "[7]"},
		{Vector{1, 0, 12}, "[1 0 12]"},
	}
	for _, tt := range tests {
		if got := tt.v.String(); got != tt.want {
			t.Errorf("String() = %q, want %q", got, tt.want)
		}
	}
}

func TestNew(t *testing.T) {
	v := New(4)
	if len(v) != 4 {
		t.Fatalf("New(4) has len %d", len(v))
	}
	for i, x := range v {
		if x != 0 {
			t.Fatalf("New(4)[%d] = %d, want 0", i, x)
		}
	}
}

// fromBytes converts a random byte slice into a small vector, keeping
// component values tiny so comparisons exercise all orderings often.
func fromBytes(bs []uint8) Vector {
	if len(bs) > 12 {
		bs = bs[:12]
	}
	v := make(Vector, len(bs))
	for i, b := range bs {
		v[i] = uint64(b % 4)
	}
	return v
}

func quickCfg() *quick.Config {
	return &quick.Config{
		MaxCount: 300,
		Rand:     rand.New(rand.NewSource(42)),
	}
}
