package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestParseBenchLine(t *testing.T) {
	tests := []struct {
		line string
		ns   float64
		name string
		ok   bool
	}{
		{"BenchmarkTracker/objects=16-8   \t 1488769\t       396.2 ns/op", 396.2, "BenchmarkTracker/objects=16-8", true},
		{"BenchmarkBackends/deep-join/flat-8  100  1234 ns/op  257 components  5.2 ns/event", 1234, "BenchmarkBackends/deep-join/flat-8", true},
		{"BenchmarkX-8  200  88 ns/op  12 B/op  3 allocs/op", 88, "BenchmarkX-8", true},
		{"goos: linux", 0, "", false},
		{"PASS", 0, "", false},
		{"ok  \tmixedclock\t2.4s", 0, "", false},
		{"BenchmarkNoIters ns/op garbage", 0, "", false},
	}
	for _, tt := range tests {
		ns, name, ok := parseBenchLine(tt.line)
		if ok != tt.ok || name != tt.name || ns != tt.ns {
			t.Errorf("parseBenchLine(%q) = (%v, %q, %v), want (%v, %q, %v)",
				tt.line, ns, name, ok, tt.ns, tt.name, tt.ok)
		}
	}
}

func writeTemp(t *testing.T, name, content string) string {
	t.Helper()
	p := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestCountAggregation(t *testing.T) {
	p := writeTemp(t, "b.txt", `
BenchmarkA-8  100  150 ns/op
BenchmarkA-8  100  100 ns/op
BenchmarkA-8  100  350 ns/op
`)
	got, err := parseBenchFile(p)
	if err != nil {
		t.Fatal(err)
	}
	s := got["BenchmarkA-8"]
	if s == nil || s.Count != 3 || s.MinNs != 100 || s.MeanNs != 200 {
		t.Fatalf("sample = %+v, want count 3 min 100 mean 200", s)
	}
}

func TestCompareGatesOnThreshold(t *testing.T) {
	base := map[string]*Sample{
		"BenchmarkSlower-8": {Name: "BenchmarkSlower-8", Count: 1, MinNs: 100, MeanNs: 100},
		"BenchmarkSame-8":   {Name: "BenchmarkSame-8", Count: 1, MinNs: 100, MeanNs: 100},
		"BenchmarkGone-8":   {Name: "BenchmarkGone-8", Count: 1, MinNs: 50, MeanNs: 50},
	}
	head := map[string]*Sample{
		"BenchmarkSlower-8": {Name: "BenchmarkSlower-8", Count: 1, MinNs: 121, MeanNs: 121},
		"BenchmarkSame-8":   {Name: "BenchmarkSame-8", Count: 1, MinNs: 119, MeanNs: 119},
		"BenchmarkNew-8":    {Name: "BenchmarkNew-8", Count: 1, MinNs: 10, MeanNs: 10},
	}
	rep := compare(base, head, 20)
	if rep.Regressions != 1 {
		t.Fatalf("regressions = %d, want 1", rep.Regressions)
	}
	byName := map[string]Comparison{}
	for _, c := range rep.Benchmarks {
		byName[c.Name] = c
	}
	if !byName["BenchmarkSlower-8"].Regression {
		t.Error("21% slowdown not flagged at 20% threshold")
	}
	if byName["BenchmarkSame-8"].Regression {
		t.Error("19% slowdown flagged at 20% threshold")
	}
	if byName["BenchmarkNew-8"].Regression || byName["BenchmarkNew-8"].DeltaPct != nil {
		t.Error("benchmark without baseline must not gate")
	}
	if byName["BenchmarkGone-8"].Regression || byName["BenchmarkGone-8"].HeadNsOp != nil {
		t.Error("deleted benchmark must not gate")
	}
}

func TestRunEndToEnd(t *testing.T) {
	base := writeTemp(t, "base.txt", "BenchmarkA-8  100  100 ns/op\n")
	headOK := writeTemp(t, "head_ok.txt", "BenchmarkA-8  100  105 ns/op\nBenchmarkB-8  10  7 ns/op\n")
	headBad := writeTemp(t, "head_bad.txt", "BenchmarkA-8  100  150 ns/op\n")
	jsonOut := filepath.Join(t.TempDir(), "BENCH_pr.json")

	code, err := run(base, headOK, jsonOut, 20, os.Stdout)
	if err != nil || code != 0 {
		t.Fatalf("ok case: code %d, err %v", code, err)
	}
	data, err := os.ReadFile(jsonOut)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"threshold_pct": 20`, `"BenchmarkA-8"`, `"BenchmarkB-8"`, `"regressions": 0`} {
		if !strings.Contains(string(data), want) {
			t.Errorf("artifact missing %q:\n%s", want, data)
		}
	}

	code, err = run(base, headBad, "", 20, os.Stdout)
	if err != nil || code != 1 {
		t.Fatalf("regression case: code %d, err %v (want 1, nil)", code, err)
	}
}
