// Crash recovery: rebuilding a live Tracker from a spill directory.
//
// The durable state of a run is the last published catalog generation plus
// the immutable segment files it lists; everything else — live per-thread
// buffers, the merged tail, seals whose catalog publication never landed —
// is the unsealed suffix a crash loses. recoverDir turns that contract into
// a Tracker: it loads the catalog (falling back to catalog.json.prev when
// the current one is torn), verifies every listed segment byte for byte,
// quarantines — never deletes, never panics on — whatever disagrees, and
// reconstructs the in-memory state the next commit needs.
//
// Two recovery modes, chosen by how much survived:
//
//   - Resume (mode A): the catalog carries a resume manifest and every
//     listed segment verified. The run continues in the same epoch: the
//     component cover is re-seeded from the manifest, threads and objects
//     re-register under their recorded names, and their clocks are rebuilt
//     by replaying the current epoch's segments — a record's stamp IS the
//     thread's clock (and the object's clock) immediately after that event,
//     so the last stamp seen per thread and per object is exactly the state
//     a crashed tracker held for its sealed prefix.
//   - New epoch (mode B): a listed segment was damaged (the verified prefix
//     is kept, the rest quarantined) or the manifest is missing or
//     unusable. Replaying clocks across the cut would invent causality, so
//     recovery instead starts the next epoch at the resumed index: epoch
//     boundaries already mean "all clocks restart from zero" (Compact's
//     barrier semantics), which makes zeroed clocks sound — cross-epoch
//     comparisons coarsen to epoch order exactly as after a Compact.
//
// Orphan spill files (a seal that crashed before its catalog publication)
// are quarantined without forcing mode B: the listed history is intact, the
// orphan was never part of it.
package track

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"path/filepath"
	"strings"
	"time"

	"mixedclock/internal/bipartite"
	"mixedclock/internal/core"
	"mixedclock/internal/event"
	"mixedclock/internal/tlog"
	"mixedclock/internal/vclock"
	"mixedclock/internal/vfs"
)

// RecoveryInfo reports what Open reconstructed from its directory.
type RecoveryInfo struct {
	// Events is the resumed sealed event count: the next commit gets trace
	// index Events.
	Events int
	// Epoch is the epoch committing resumes in. It equals the crashed run's
	// epoch when the resume manifest and every listed segment survived, and
	// the next epoch otherwise (damage starts a fresh epoch, exactly like a
	// Compact).
	Epoch int
	// RetainedFloor is the restored retention floor (Catalog.RetainedEvents).
	RetainedFloor int
	// Segments is how many listed segments verified and were adopted.
	Segments int
	// Generation is the catalog generation published by the reopen itself.
	Generation int64
	// CleanClose reports that the previous run ended in Close rather than a
	// crash.
	CleanClose bool
	// UsedPrevCatalog reports that catalog.json was torn and recovery fell
	// back to the catalog.json.prev copy.
	UsedPrevCatalog bool
	// Quarantined lists the files set aside (renamed with
	// tlog.QuarantineSuffix): damaged listed segments and everything sealed
	// after them, orphan spill files, a torn catalog.
	Quarantined []string
}

// recoverDir rebuilds t's state from its spill directory. It is called once,
// from Open, before the tracker is shared — no locks are contended. Damage
// is downgraded to quarantine + health, never an error; the only errors are
// ones that leave recovery unable to construct any consistent state at all.
func (t *Tracker) recoverDir(o options) error {
	dir := t.spill.Dir
	info := &RecoveryInfo{}
	t.recovery = info

	// A crash mid-write leaves at most stray temp files (spill, catalog, or
	// degraded-mode probe); sweep them first so they never accumulate.
	for _, pat := range []string{".seg-*.tmp", ".catalog-*.tmp", ".probe-*.tmp"} {
		if ms, err := vfs.Glob(t.fs, dir, pat); err == nil {
			for _, m := range ms {
				t.fs.Remove(m)
			}
		}
	}

	cat, usedPrev, quarantined := loadCatalogForRecovery(t.fs, dir)
	info.UsedPrevCatalog = usedPrev
	if cat == nil {
		// No usable catalog. Any segment file present is history we cannot
		// anchor (no index ranges, no hashes, no epoch bookkeeping): set it
		// aside rather than guess, and start fresh.
		if ms, err := vfs.Glob(t.fs, dir, "*.mvcseg"); err == nil {
			for _, m := range ms {
				if q := quarantineFile(t.fs, m); q != "" {
					quarantined = append(quarantined, q)
				}
			}
		}
		info.Quarantined = quarantined
		if len(quarantined) == 0 {
			return nil // genuinely fresh directory; created on first seal
		}
		t.noteErr(fmt.Errorf("track: recovering %s: no usable catalog; quarantined %s",
			dir, strings.Join(quarantined, ", ")))
		t.swapHist(func(old *segState) *segState {
			return &segState{segs: old.segs, retained: old.retained, gen: old.gen + 1}
		})
		t.publishCatalog()
		return nil
	}

	resume := cat.Resume
	resumeEpoch := -1
	if resume != nil {
		resumeEpoch = resume.Epoch
	}

	// Verify the listed segments in order, collecting along the way what the
	// rebuild needs: every revealed (thread, object) edge, the largest IDs
	// seen, and — for segments of the resume epoch — the last stamp per
	// thread and per object, which ARE their clocks as of the sealed prefix.
	threadLast := map[int]vclock.Vector{}
	objectLast := map[int]vclock.Vector{}
	maxThread, maxObject := -1, -1
	edgeSeen := map[[2]int]bool{}
	var edges [][2]int

	goodN := len(cat.Segments)
	damaged := false
	for i := range cat.Segments {
		entry := cat.Segments[i]
		err := verifySegment(t.fs, dir, entry, func(e event.Event, v vclock.Vector) {
			ti, oi := int(e.Thread), int(e.Object)
			if ti > maxThread {
				maxThread = ti
			}
			if oi > maxObject {
				maxObject = oi
			}
			k := [2]int{ti, oi}
			if !edgeSeen[k] {
				edgeSeen[k] = true
				edges = append(edges, k)
			}
			if entry.Epoch == resumeEpoch {
				threadLast[ti] = v.Clone()
				objectLast[oi] = v.Clone()
			}
		})
		if err != nil {
			t.noteErr(fmt.Errorf("track: recovering %s: segment %s: %w", dir, entry.Path, err))
			goodN, damaged = i, true
			break
		}
	}
	if damaged {
		// The verified prefix is kept; the damaged segment and everything
		// sealed after it (gapless history cannot skip it) are set aside.
		for _, entry := range cat.Segments[goodN:] {
			if entry.Path == "" {
				continue
			}
			if q := quarantineFile(t.fs, filepath.Join(dir, entry.Path)); q != "" {
				quarantined = append(quarantined, q)
			}
		}
	}

	// Orphan spill files — a seal that crashed between its rename and its
	// catalog publication — are part of the lost unsealed suffix: quarantine
	// them, without giving up the (intact) listed history.
	listed := make(map[string]bool, goodN)
	for _, entry := range cat.Segments[:goodN] {
		listed[entry.Path] = true
	}
	if ms, err := vfs.Glob(t.fs, dir, "*.mvcseg"); err == nil {
		for _, m := range ms {
			if listed[filepath.Base(m)] {
				continue
			}
			if q := quarantineFile(t.fs, m); q != "" {
				quarantined = append(quarantined, q)
			}
		}
	}

	// P is the resumed sealed extent: the next commit's trace index.
	P := cat.RetainedEvents
	if goodN > 0 {
		last := cat.Segments[goodN-1]
		P = last.FirstIndex + last.Events
	}

	// Mode A needs the manifest, an undamaged listing, and replayed IDs that
	// fit the manifest's name tables (they always do for catalogs this
	// package wrote — the manifest is captured at every seal).
	resumeUsable := resume != nil && !damaged
	if resumeUsable && (maxThread >= len(resume.Threads) || maxObject >= len(resume.Objects)) {
		resumeUsable = false
	}

	// Registration tables: the manifest's names, extended (mode B without a
	// manifest) to cover whatever IDs the replay revealed.
	var threadNames, objectNames []string
	if resume != nil {
		threadNames = append(threadNames, resume.Threads...)
		objectNames = append(objectNames, resume.Objects...)
	}
	for len(threadNames) <= maxThread {
		threadNames = append(threadNames, fmt.Sprintf("thread-%d", len(threadNames)))
	}
	for len(objectNames) <= maxObject {
		objectNames = append(objectNames, fmt.Sprintf("object-%d", len(objectNames)))
	}

	// The revealed graph is cumulative across epochs: manifest edges plus
	// whatever the replay saw (a subset of the manifest when it is current).
	g := bipartite.New(len(threadNames), len(objectNames))
	if resume != nil {
		for _, e := range resume.Edges {
			g.AddEdge(e[0], e[1])
		}
	}
	for _, e := range edges {
		g.AddEdge(e[0], e[1])
	}

	// Cover: re-seed from the manifest's ordered component set (its positions
	// are the vector indices every replayed stamp was written against); fall
	// back to a fresh offline analysis — which forces mode B, since old
	// stamps are meaningless over a reordered component set.
	var seeded *core.CoverTracker
	if resumeUsable {
		comps := core.NewComponentSet()
		for _, rc := range resume.Components {
			side := bipartite.Objects
			if rc.Kind == tlog.ResumeThread {
				side = bipartite.Threads
			}
			comps.Add(core.Component{Side: side, ID: rc.ID})
		}
		ct, err := core.NewSeededCoverTracker(o.mech, g, comps)
		if err != nil {
			t.noteErr(fmt.Errorf("track: recovering %s: resume components unusable: %w", dir, err))
			resumeUsable = false
		} else {
			seeded = ct
		}
	}
	if seeded == nil {
		analysis := core.Analyze(g)
		ct, err := core.NewSeededCoverTracker(o.mech, analysis.Graph, analysis.Components)
		if err != nil {
			return fmt.Errorf("track: recovering %s: seeding cover: %w", dir, err)
		}
		seeded = ct
	}
	t.cover.Store(t.newCover(seeded))

	// The requested backend survives the restart unless the caller overrode
	// it; auto stays a policy, re-resolved against the recovered width.
	backendReq := o.backend
	if !o.backendSet && resume != nil && resume.Backend != "" {
		if b, err := vclock.ParseBackend(resume.Backend); err == nil {
			backendReq = b
		}
	}
	t.requested = backendReq
	t.backend = core.ResolveBackend(backendReq, seeded.Size(), core.MaxFanIn(g))

	// Epoch bookkeeping.
	var epoch int
	var epochStarts []int
	switch {
	case resumeUsable:
		epoch = resume.Epoch
		epochStarts = append([]int(nil), resume.EpochStarts...)
	case resume != nil:
		// Damage cut the manifest's epoch short: start the next one at the
		// cut. Starts past the cut clamp to it (their epochs lost all their
		// sealed events).
		epoch = resume.Epoch + 1
		for _, s := range resume.EpochStarts {
			if s > P {
				s = P
			}
			epochStarts = append(epochStarts, s)
		}
		epochStarts = append(epochStarts, P)
	case goodN > 0:
		// No manifest at all: derive epoch boundaries from the segments
		// themselves (each declares its epoch) and start the epoch after the
		// newest one. Epochs wholly below the retention floor keep only an
		// approximate start — their events are retired anyway.
		maxE := cat.Segments[goodN-1].Epoch
		epoch = maxE + 1
		si := 0
		for j := 1; j <= maxE; j++ {
			for si < goodN && cat.Segments[si].Epoch < j {
				si++
			}
			if si < goodN {
				epochStarts = append(epochStarts, cat.Segments[si].FirstIndex)
			} else {
				epochStarts = append(epochStarts, P)
			}
		}
		epochStarts = append(epochStarts, P)
	}
	t.epoch = epoch
	t.epochStart = epochStarts

	// Re-register threads and objects under their recorded names (dense IDs
	// are positions, so registration order restores them) and, in mode A,
	// restore their clocks from the replayed stamps. A thread or object with
	// no event in the resumed epoch's sealed prefix stays nil — exactly the
	// state Compact's reset leaves.
	for _, name := range threadNames {
		th := t.NewThread(name)
		if v, ok := threadLast[int(th.id)]; ok && resumeUsable {
			th.base = v
			th.clock = clockFromVector(t.backend, v)
		}
	}
	for _, name := range objectNames {
		ob := t.NewObject(name)
		if v, ok := objectLast[int(ob.id)]; ok && resumeUsable {
			ob.clock = clockFromVector(t.backend, v)
		}
	}

	// Adopt the verified segments and the counters.
	segs := make([]*segment, 0, goodN)
	for _, entry := range cat.Segments[:goodN] {
		sg := &segment{
			meta: tlog.SegmentMeta{Epoch: entry.Epoch, FirstIndex: entry.FirstIndex, Count: entry.Events},
			dir:  dir,
			file: entry.Path,
			fs:   t.fs,
			size: entry.Bytes,
			sha:  entry.SHA256,
		}
		if entry.SealedUnix > 0 {
			sg.sealedAt = time.Unix(entry.SealedUnix, 0)
		}
		segs = append(segs, sg)
	}
	t.tailStart = P
	t.seq.Store(int64(P))
	t.sealed.Store(int64(P))
	retained := cat.RetainedEvents
	if retained > P {
		retained = P
	}
	// The tracker is not shared yet, so the snapshot can be stored
	// directly; the generation picks up where the recovered catalog left
	// off and is bumped below to announce the reopened run.
	t.hist.Store(&segState{segs: segs, retained: retained, gen: cat.Generation})

	info.Events = P
	info.Epoch = epoch
	info.RetainedFloor = retained
	info.Segments = goodN
	info.CleanClose = cat.Closed
	info.Quarantined = quarantined
	if len(quarantined) > 0 {
		t.noteErr(fmt.Errorf("track: recovering %s: quarantined %s", dir, strings.Join(quarantined, ", ")))
	}

	// Announce the reopened run: a fresh manifest, a new generation, no
	// Closed marker. The tracker is not shared yet, so the write-lock
	// precondition of the capture holds trivially.
	t.captureResumeLocked()
	st := t.swapHist(func(old *segState) *segState {
		return &segState{segs: old.segs, retained: old.retained, gen: old.gen + 1}
	})
	t.publishCatalog()
	info.Generation = st.gen
	_ = syncDir(t.fs, dir)
	return nil
}

// loadCatalogForRecovery reads dir's catalog, quarantining a torn
// catalog.json and falling back to the catalog.json.prev copy. A nil catalog
// means no usable one exists (fresh directory, or both copies torn).
func loadCatalogForRecovery(fsys vfs.FS, dir string) (c *tlog.Catalog, usedPrev bool, quarantined []string) {
	tryRead := func(name string) (*tlog.Catalog, bool) {
		f, err := fsys.Open(filepath.Join(dir, name))
		if err != nil {
			return nil, false
		}
		defer f.Close()
		c, err := tlog.DecodeCatalog(f)
		if err != nil {
			return nil, true
		}
		return c, true
	}
	c, exists := tryRead(tlog.CatalogFileName)
	if c != nil {
		return c, false, nil
	}
	if exists {
		if q := quarantineFile(fsys, filepath.Join(dir, tlog.CatalogFileName)); q != "" {
			quarantined = append(quarantined, q)
		}
	}
	if c, _ := tryRead(tlog.CatalogPrevFileName); c != nil {
		return c, true, quarantined
	}
	return nil, false, quarantined
}

// quarantineFile renames path aside with tlog.QuarantineSuffix, returning
// the resulting base name ("" when the rename failed — the file then stays
// where it is, still ignored by glob-based readers only if a later pass
// succeeds, so callers report the failure through health).
func quarantineFile(fsys vfs.FS, path string) string {
	q := path + tlog.QuarantineSuffix
	if err := fsys.Rename(path, q); err != nil {
		return ""
	}
	return filepath.Base(q)
}

// verifySegment checks one listed segment byte for byte — file size against
// the catalog, content hash, header against the catalog entry, and a full
// decode — calling visit for every record. Any disagreement is an error; the
// caller quarantines.
func verifySegment(fsys vfs.FS, dir string, entry tlog.CatalogSegment, visit func(event.Event, vclock.Vector)) error {
	if entry.Path == "" {
		return fmt.Errorf("no spill file recorded")
	}
	data, err := vfs.ReadFile(fsys, filepath.Join(dir, entry.Path))
	if err != nil {
		return err
	}
	if int64(len(data)) != entry.Bytes {
		return fmt.Errorf("file holds %d bytes, catalog says %d", len(data), entry.Bytes)
	}
	if entry.SHA256 != "" {
		sum := sha256.Sum256(data)
		if hex.EncodeToString(sum[:]) != entry.SHA256 {
			return fmt.Errorf("content hash mismatch")
		}
	}
	sr, err := tlog.NewSegmentReader(bytes.NewReader(data))
	if err != nil {
		return err
	}
	m := sr.Meta()
	if m.Epoch != entry.Epoch || m.FirstIndex != entry.FirstIndex || m.Count != entry.Events {
		return fmt.Errorf("header says %v, catalog says epoch %d events [%d,%d)",
			m, entry.Epoch, entry.FirstIndex, entry.FirstIndex+entry.Events)
	}
	for {
		e, v, err := sr.Next()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
		visit(e, v)
	}
}

// clockFromVector rebuilds a backend clock equal to v. Deltas are absolute
// assignments and v is monotone from the zero clock, so one Apply restores
// any backend's invariants; the Grow pads trailing zeros back to v's width.
func clockFromVector(b vclock.Backend, v vclock.Vector) vclock.Clock {
	c := core.NewBackendClock(b)
	ds := make([]vclock.Delta, 0, len(v))
	for i, x := range v {
		if x != 0 {
			ds = append(ds, vclock.Delta{Index: int32(i), Value: x})
		}
	}
	c.Apply(ds)
	c.Grow(len(v))
	return c
}
