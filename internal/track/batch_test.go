package track

import (
	"fmt"
	"math/rand"
	"os"
	"sync"
	"testing"
	"time"

	"mixedclock/internal/detect"
	"mixedclock/internal/event"
	"mixedclock/internal/trace"
	"mixedclock/internal/vclock"
)

// chunkSchedule splits a generated trace into maximal same-thread runs,
// further cut at random points (sizes 1..6) so batch boundaries land
// everywhere: mid-run, at thread changes, around single events. The same
// chunking drives both executors of the equivalence tests.
type chunkRun struct{ start, end int } // [start, end), all one thread

func chunkSchedule(src *event.Trace, rng *rand.Rand) []chunkRun {
	var chunks []chunkRun
	limit := 1 + rng.Intn(6)
	start := 0
	for i := 1; i <= src.Len(); i++ {
		if i == src.Len() || src.At(i).Thread != src.At(start).Thread || i-start >= limit {
			chunks = append(chunks, chunkRun{start, i})
			start = i
			limit = 1 + rng.Intn(6)
		}
	}
	return chunks
}

// replayDo is the reference executor: the plain per-event Do loop,
// compacting before event index compactAt (if >= 0).
func replayDo(t *testing.T, tr *Tracker, src *event.Trace, compactAt int) []Stamped {
	t.Helper()
	threads := make([]*Thread, src.Threads())
	for i := range threads {
		threads[i] = tr.NewThread(fmt.Sprintf("t%d", i))
	}
	objects := make([]*Object, src.Objects())
	for i := range objects {
		objects[i] = tr.NewObject(fmt.Sprintf("o%d", i))
	}
	out := make([]Stamped, 0, src.Len())
	for i := 0; i < src.Len(); i++ {
		if i == compactAt {
			if _, _, err := tr.Compact(); err != nil {
				t.Fatal(err)
			}
		}
		e := src.At(i)
		out = append(out, threads[e.Thread].Do(objects[e.Object], e.Op, nil))
	}
	if err := tr.Err(); err != nil {
		t.Fatal(err)
	}
	return out
}

// replayBatched commits the same trace through the batched path, one chunk
// per commit call. Single-object chunks go through DoBatch directly, mixed
// chunks through the Batch builder, so both entry points are exercised.
func replayBatched(t *testing.T, tr *Tracker, src *event.Trace, chunks []chunkRun, compactAt int) []Stamped {
	t.Helper()
	threads := make([]*Thread, src.Threads())
	for i := range threads {
		threads[i] = tr.NewThread(fmt.Sprintf("t%d", i))
	}
	objects := make([]*Object, src.Objects())
	for i := range objects {
		objects[i] = tr.NewObject(fmt.Sprintf("o%d", i))
	}
	out := make([]Stamped, 0, src.Len())
	for _, c := range chunks {
		if c.start == compactAt {
			if _, _, err := tr.Compact(); err != nil {
				t.Fatal(err)
			}
		}
		th := threads[src.At(c.start).Thread]
		single := true
		for i := c.start + 1; i < c.end; i++ {
			if src.At(i).Object != src.At(c.start).Object {
				single = false
				break
			}
		}
		if single {
			ops := make([]event.Op, 0, c.end-c.start)
			for i := c.start; i < c.end; i++ {
				ops = append(ops, src.At(i).Op)
			}
			out = append(out, th.DoBatch(objects[src.At(c.start).Object], ops)...)
		} else {
			b := th.NewBatch()
			for i := c.start; i < c.end; i++ {
				b.Add(objects[src.At(i).Object], src.At(i).Op)
			}
			out = append(out, b.Commit()...)
		}
	}
	if err := tr.Err(); err != nil {
		t.Fatal(err)
	}
	return out
}

// TestBatchMatchesDo is the batching equivalence property: for every
// generator workload, on both backends, with and without sealing/spilling
// and a mid-trace compaction, committing a schedule through DoBatch/Batch
// must produce (event, epoch, stamp)-identical results to the equivalent
// loop of Do calls. Identical events AND identical vectors: batching is an
// amortization of synchronization cost, never a semantic knob.
func TestBatchMatchesDo(t *testing.T) {
	rng := rand.New(rand.NewSource(59))
	for _, wl := range trace.Workloads() {
		src, err := trace.Generate(wl, trace.Config{Threads: 6, Objects: 6, Events: 240, ReadFraction: 0.3}, rng)
		if err != nil {
			t.Fatal(err)
		}
		chunks := chunkSchedule(src, rng)
		// Compact at the chunk boundary nearest the middle, in both replays.
		compactAt := -1
		for _, c := range chunks {
			if c.start >= src.Len()/2 {
				compactAt = c.start
				break
			}
		}
		for _, backend := range []vclock.Backend{vclock.BackendFlat, vclock.BackendTree} {
			for _, mode := range []string{"plain", "sealed"} {
				t.Run(fmt.Sprintf("%v/%v/%s", wl, backend, mode), func(t *testing.T) {
					optsFor := func() []Option {
						opts := []Option{WithBackend(backend)}
						if mode == "sealed" {
							opts = append(opts, WithSpill(SpillPolicy{Dir: t.TempDir(), SealEvents: 75}))
						}
						return opts
					}
					ref := NewTracker(optsFor()...)
					want := replayDo(t, ref, src, compactAt)
					got := replayBatched(t, NewTracker(optsFor()...), src, chunks, compactAt)
					if len(got) != len(want) {
						t.Fatalf("batched replay produced %d stamps, want %d", len(got), len(want))
					}
					for i := range want {
						if got[i].Event != want[i].Event {
							t.Fatalf("event %d: batched %+v, Do %+v", i, got[i].Event, want[i].Event)
						}
						if got[i].Epoch != want[i].Epoch {
							t.Fatalf("event %d: batched epoch %d, Do epoch %d", i, got[i].Epoch, want[i].Epoch)
						}
						if gv, wv := got[i].Vector(), want[i].Vector(); !gv.Equal(wv) {
							t.Fatalf("event %d: batched stamp %v, Do stamp %v", i, gv, wv)
						}
					}
				})
			}
		}
	}
}

// TestBatchRacesSeal hammers the tracker with concurrent batched commits
// while the main goroutine seals and compacts with no external
// synchronization. It pins the batch atomicity guarantees under the real
// barriers: every batch's stamps share one epoch (a Compact lands entirely
// before or after a batch, never inside), indices within a batch are
// contiguous, program order holds across batches, and the recorded
// computation remains a valid clocked trace per epoch. Run under -race.
func TestBatchRacesSeal(t *testing.T) {
	tr := NewTracker(WithSpill(SpillPolicy{SealEvents: 64}))
	const nWorkers, nObjects, batches, batchLen = 8, 3, 40, 8
	objects := make([]*Object, nObjects)
	for i := range objects {
		objects[i] = tr.NewObject("obj")
	}
	recorded := make([][][]Stamped, nWorkers)
	var wg sync.WaitGroup
	for w := 0; w < nWorkers; w++ {
		th := tr.NewThread("worker")
		wg.Add(1)
		go func(th *Thread, w int) {
			defer wg.Done()
			for i := 0; i < batches; i++ {
				var out []Stamped
				if i%2 == 0 {
					ops := make([]event.Op, batchLen)
					for k := range ops {
						if k%3 == 0 {
							ops[k] = event.OpRead
						}
					}
					out = th.DoBatch(objects[(w+i)%nObjects], ops)
				} else {
					b := th.NewBatch()
					for k := 0; k < batchLen; k++ {
						b.Write(objects[(w+i+k)%nObjects])
					}
					out = b.Commit()
				}
				recorded[w] = append(recorded[w], out)
			}
		}(th, w)
	}
	for c := 0; c < 6; c++ {
		if err := tr.Seal(); err != nil {
			t.Error(err)
			break
		}
		if _, _, err := tr.Compact(); err != nil {
			t.Error(err)
			break
		}
	}
	wg.Wait()
	if err := tr.Err(); err != nil {
		t.Fatal(err)
	}
	if got, want := tr.Events(), nWorkers*batches*batchLen; got != want {
		t.Fatalf("Events = %d, want %d", got, want)
	}
	for w, batchStamps := range recorded {
		prevIdx := -1
		for bi, out := range batchStamps {
			for k, s := range out {
				// One epoch per DoBatch call; contiguous indices within it.
				if s.Epoch != out[0].Epoch && bi%2 == 0 {
					t.Fatalf("worker %d batch %d straddles epochs %d and %d", w, bi, out[0].Epoch, s.Epoch)
				}
				if bi%2 == 0 && k > 0 && s.Event.Index != out[k-1].Event.Index+1 {
					t.Fatalf("worker %d batch %d indices not contiguous: %d then %d",
						w, bi, out[k-1].Event.Index, s.Event.Index)
				}
				if s.Event.Index <= prevIdx {
					t.Fatalf("worker %d program order lost: index %d after %d", w, s.Event.Index, prevIdx)
				}
				prevIdx = s.Event.Index
				if got := tr.EpochOf(s.Event.Index); got != s.Epoch {
					t.Fatalf("worker %d event %d stamped epoch %d, recorded in %d", w, s.Event.Index, s.Epoch, got)
				}
			}
		}
	}
	validateEpochs(t, tr)
}

// TestBatchOverlapsMonitor runs batched commits, auto-seals, and a live
// Monitor concurrently: the monitor consumes sealed history through the
// barrier-free segment list while batches keep committing. After a Sync the
// monitor must have consumed exactly the recorded computation, with a
// census matching the final snapshot. Run under -race.
func TestBatchOverlapsMonitor(t *testing.T) {
	tr := NewTracker(WithSpill(SpillPolicy{Dir: t.TempDir(), SealEvents: 50}))
	m := tr.NewMonitor(MonitorPolicy{})
	defer m.Close()
	const nWorkers, nObjects, batches, batchLen = 6, 3, 30, 8
	objects := make([]*Object, nObjects)
	for i := range objects {
		objects[i] = tr.NewObject("obj")
	}
	var wg sync.WaitGroup
	for w := 0; w < nWorkers; w++ {
		th := tr.NewThread("worker")
		wg.Add(1)
		go func(th *Thread, w int) {
			defer wg.Done()
			for i := 0; i < batches; i++ {
				ops := make([]event.Op, batchLen)
				th.DoBatch(objects[(w+i)%nObjects], ops)
			}
		}(th, w)
	}
	wg.Wait()
	if err := m.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := m.Err(); err != nil {
		t.Fatal(err)
	}
	full, stamps := tr.Snapshot()
	stats := m.Stats()
	if stats.Consumed != full.Len() {
		t.Fatalf("monitor consumed %d of %d events", stats.Consumed, full.Len())
	}
	if want := detect.TakeCensus(stamps); stats.Census != want || stats.CensusSkipped != 0 {
		t.Fatalf("census %+v (skipped %d), want %+v", stats.Census, stats.CensusSkipped, want)
	}
	if err := tr.Err(); err != nil {
		t.Fatal(err)
	}
}

// TestLifecycleDoesNotBarrierCommits is the acceptance proof that segment
// compaction and retention no longer stop the world: both run to completion
// — list swap, catalog publication, file retirement — while another
// goroutine holds a world READ lock for the whole duration, exactly as an
// in-flight commit would. Before the epoch-based reclaimer, both paths
// swapped their lists under world.Lock and this test would deadlock.
func TestLifecycleDoesNotBarrierCommits(t *testing.T) {
	dir := t.TempDir()
	tr := buildEpochs(t, dir)
	defer tr.Close()

	tr.world.RLock(0) // a commit is "in flight" for the whole pass
	done := make(chan error, 1)
	go func() {
		if _, err := tr.CompactSegments(CompactPolicy{}); err != nil {
			done <- err
			return
		}
		n, err := tr.RetainSegments(RetainPolicy{MaxBytes: 1})
		if err == nil && n == 0 {
			err = fmt.Errorf("retention pass retired nothing")
		}
		done <- err
	}()
	select {
	case err := <-done:
		if err != nil {
			tr.world.RUnlock(0)
			t.Fatal(err)
		}
	case <-time.After(10 * time.Second):
		tr.world.RUnlock(0)
		t.Fatal("lifecycle pass blocked on the world write lock while a read lock was held")
	}
	tr.world.RUnlock(0)
	if err := tr.Err(); err != nil {
		t.Fatal(err)
	}
	// The pass really happened: the floor moved.
	if tr.RetainedEvents() == 0 {
		t.Fatal("retention floor never published")
	}
}

// TestPinHoldsRetirement pins the reclaimer's contract end to end: a pinned
// reader (an in-flight commit or sealed replay) holds retired spill files in
// limbo — still on disk, still readable — and the files are deleted only
// after the pin is released and a reclaim pass runs.
func TestPinHoldsRetirement(t *testing.T) {
	dir := t.TempDir()
	tr := buildEpochs(t, dir)
	defer tr.Close()
	epoch := tr.Epoch()
	var graduated []string
	for _, sg := range tr.Segments() {
		if sg.Epoch < epoch {
			graduated = append(graduated, sg.Path)
		}
	}
	if len(graduated) == 0 {
		t.Fatal("workload produced no graduated segments")
	}

	rec := tr.reclaim.register()
	rec.pin(&tr.reclaim)
	n, err := tr.RetainSegments(RetainPolicy{MaxBytes: 1})
	if err != nil {
		t.Fatal(err)
	}
	if n != len(graduated) {
		t.Fatalf("retired %d segments, want %d", n, len(graduated))
	}
	// Retired, but the pin holds every deletion in limbo.
	if got := tr.reclaim.pending(); got < len(graduated) {
		t.Fatalf("%d limbo entries with a pinned reader, want >= %d", got, len(graduated))
	}
	for _, p := range graduated {
		if _, err := os.Stat(p); err != nil {
			t.Fatalf("retired file %s deleted under a pinned reader: %v", p, err)
		}
	}
	// Release the pin: the next reclaim pass frees everything.
	rec.unpin()
	tr.reclaim.unregister(rec)
	tr.reclaim.reclaim()
	if got := tr.reclaim.pending(); got != 0 {
		t.Fatalf("%d limbo entries after unpin+reclaim, want 0", got)
	}
	for _, p := range graduated {
		if _, err := os.Stat(p); !os.IsNotExist(err) {
			t.Fatalf("retired file %s still present after unpin: %v", p, err)
		}
	}
}

// TestReclaimerQuiescent pins the fast path: with no reader pinned, retire
// frees immediately — the limbo list never grows on a quiescent tracker.
func TestReclaimerQuiescent(t *testing.T) {
	var rc reclaimer
	rc.init()
	r := rc.register()
	defer rc.unregister(r)
	freed := 0
	rc.retire(func() { freed++ })
	if freed != 1 || rc.pending() != 0 {
		t.Fatalf("quiescent retire: freed=%d pending=%d, want 1 and 0", freed, rc.pending())
	}
	// Deferred retirement waits for an explicit pass even when quiescent.
	rc.retireDeferred(func() { freed++ })
	if freed != 1 || rc.pending() != 1 {
		t.Fatalf("deferred retire ran early: freed=%d pending=%d", freed, rc.pending())
	}
	rc.reclaim()
	if freed != 2 || rc.pending() != 0 {
		t.Fatalf("reclaim pass: freed=%d pending=%d, want 2 and 0", freed, rc.pending())
	}
}
