package event

import (
	"bytes"
	"errors"
	"strings"
	"testing"
)

func TestIDStrings(t *testing.T) {
	if got := ThreadID(0).String(); got != "T1" {
		t.Errorf("ThreadID(0) = %q, want T1", got)
	}
	if got := ObjectID(2).String(); got != "O3" {
		t.Errorf("ObjectID(2) = %q, want O3", got)
	}
}

func TestOpString(t *testing.T) {
	tests := []struct {
		op   Op
		want string
	}{
		{OpWrite, "write"},
		{OpRead, "read"},
		{Op(9), "Op(9)"},
	}
	for _, tt := range tests {
		if got := tt.op.String(); got != tt.want {
			t.Errorf("Op(%d).String() = %q, want %q", int(tt.op), got, tt.want)
		}
	}
}

func TestEventString(t *testing.T) {
	e := Event{Thread: 1, Object: 0}
	if got := e.String(); got != "[T2, O1]" {
		t.Errorf("Event.String() = %q, want [T2, O1]", got)
	}
}

func TestTraceAppendAndAccessors(t *testing.T) {
	tr := NewTrace()
	if tr.Len() != 0 || tr.Threads() != 0 || tr.Objects() != 0 {
		t.Fatal("fresh trace must be empty")
	}
	e0 := tr.Append(1, 0, OpWrite)
	e1 := tr.Append(0, 2, OpRead)
	if e0.Index != 0 || e1.Index != 1 {
		t.Fatalf("indices not assigned sequentially: %d, %d", e0.Index, e1.Index)
	}
	if tr.Len() != 2 {
		t.Fatalf("Len = %d, want 2", tr.Len())
	}
	if tr.Threads() != 2 || tr.Objects() != 3 {
		t.Fatalf("Threads/Objects = %d/%d, want 2/3", tr.Threads(), tr.Objects())
	}
	if got := tr.At(1); got.Thread != 0 || got.Object != 2 || got.Op != OpRead {
		t.Fatalf("At(1) = %+v", got)
	}
}

func TestAppendEventOverwritesIndex(t *testing.T) {
	tr := NewTrace()
	got := tr.AppendEvent(Event{Index: 57, Thread: 3, Object: 1})
	if got.Index != 0 {
		t.Fatalf("AppendEvent kept stale index %d", got.Index)
	}
}

func TestEventsReturnsCopy(t *testing.T) {
	tr := NewTrace()
	tr.Append(0, 0, OpWrite)
	ev := tr.Events()
	ev[0].Thread = 99
	if tr.At(0).Thread != 0 {
		t.Fatal("Events() leaked internal storage")
	}
}

func TestValidate(t *testing.T) {
	tr := NewTrace()
	tr.Append(0, 1, OpWrite)
	tr.Append(1, 0, OpRead)
	if err := tr.Validate(); err != nil {
		t.Fatalf("valid trace rejected: %v", err)
	}

	bad := &Trace{events: []Event{{Index: 0, Thread: -1, Object: 0}}}
	if err := bad.Validate(); !errors.Is(err, ErrNegativeID) {
		t.Fatalf("want ErrNegativeID, got %v", err)
	}

	bad2 := &Trace{events: []Event{{Index: 5, Thread: 0, Object: 0}}}
	if err := bad2.Validate(); !errors.Is(err, ErrBadIndex) {
		t.Fatalf("want ErrBadIndex, got %v", err)
	}
}

func TestByThreadByObject(t *testing.T) {
	tr := NewTrace()
	tr.Append(0, 0, OpWrite) // e0
	tr.Append(1, 0, OpWrite) // e1
	tr.Append(0, 1, OpWrite) // e2
	tr.Append(0, 0, OpRead)  // e3

	byT := tr.ByThread()
	if len(byT) != 2 {
		t.Fatalf("ByThread groups = %d, want 2", len(byT))
	}
	if want := []int{0, 2, 3}; !equalInts(byT[0], want) {
		t.Errorf("thread 0 events = %v, want %v", byT[0], want)
	}
	if want := []int{1}; !equalInts(byT[1], want) {
		t.Errorf("thread 1 events = %v, want %v", byT[1], want)
	}

	byO := tr.ByObject()
	if len(byO) != 2 {
		t.Fatalf("ByObject groups = %d, want 2", len(byO))
	}
	if want := []int{0, 1, 3}; !equalInts(byO[0], want) {
		t.Errorf("object 0 events = %v, want %v", byO[0], want)
	}
	if want := []int{2}; !equalInts(byO[1], want) {
		t.Errorf("object 1 events = %v, want %v", byO[1], want)
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	tr := NewTrace()
	tr.Append(1, 0, OpWrite)
	tr.Append(0, 3, OpRead)
	tr.Append(2, 2, OpWrite)

	var buf bytes.Buffer
	if err := tr.WriteJSONL(&buf); err != nil {
		t.Fatalf("WriteJSONL: %v", err)
	}
	got, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatalf("ReadJSONL: %v", err)
	}
	if got.Len() != tr.Len() {
		t.Fatalf("round-trip length %d, want %d", got.Len(), tr.Len())
	}
	for i := 0; i < tr.Len(); i++ {
		if got.At(i) != tr.At(i) {
			t.Errorf("event %d: got %+v, want %+v", i, got.At(i), tr.At(i))
		}
	}
	if got.Threads() != tr.Threads() || got.Objects() != tr.Objects() {
		t.Errorf("dims: got %d/%d, want %d/%d", got.Threads(), got.Objects(), tr.Threads(), tr.Objects())
	}
}

func TestReadJSONLErrors(t *testing.T) {
	if _, err := ReadJSONL(strings.NewReader("{not json")); err == nil {
		t.Error("malformed JSON accepted")
	}
	if _, err := ReadJSONL(strings.NewReader(`{"i":0,"t":-2,"o":0}` + "\n")); !errors.Is(err, ErrNegativeID) {
		t.Errorf("negative ID accepted: %v", err)
	}
}

func TestReadJSONLEmpty(t *testing.T) {
	tr, err := ReadJSONL(strings.NewReader(""))
	if err != nil {
		t.Fatalf("empty input: %v", err)
	}
	if tr.Len() != 0 {
		t.Fatalf("empty input gave %d events", tr.Len())
	}
}

func TestSummarize(t *testing.T) {
	tr := NewTrace()
	tr.Append(0, 0, OpWrite)
	tr.Append(0, 0, OpRead) // same edge
	tr.Append(0, 1, OpWrite)
	tr.Append(1, 0, OpWrite)
	tr.Append(0, 0, OpWrite)

	s := tr.Summarize()
	if s.Events != 5 || s.Threads != 2 || s.Objects != 2 {
		t.Fatalf("basic counts wrong: %+v", s)
	}
	if s.Edges != 3 {
		t.Errorf("Edges = %d, want 3", s.Edges)
	}
	if s.Reads != 1 || s.Writes != 4 {
		t.Errorf("Reads/Writes = %d/%d, want 1/4", s.Reads, s.Writes)
	}
	if s.MaxThreadOps != 4 {
		t.Errorf("MaxThreadOps = %d, want 4", s.MaxThreadOps)
	}
	if s.MaxObjectOps != 4 {
		t.Errorf("MaxObjectOps = %d, want 4", s.MaxObjectOps)
	}
	if want := 3.0 / 4.0; s.Density() != want {
		t.Errorf("Density = %f, want %f", s.Density(), want)
	}
	if !strings.Contains(s.String(), "5 events") {
		t.Errorf("String() = %q", s.String())
	}
}

func TestStatsDensityEmpty(t *testing.T) {
	var s Stats
	if s.Density() != 0 {
		t.Errorf("empty Density = %f, want 0", s.Density())
	}
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
