package loadgen

import (
	"math/rand"
	"path/filepath"
	"testing"
)

// TestDeterministicOps pins the deterministic mode: with -ops set, the same
// seed yields the identical op counts and read/write split, run to run.
func TestDeterministicOps(t *testing.T) {
	cfg := Config{Threads: 3, Objects: 16, ReadFrac: 0.3, Ops: 400, Warmup: 20, Seed: 9}
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if want := int64(3 * 400); a.Ops != want {
		t.Fatalf("ops = %d, want %d", a.Ops, want)
	}
	if a.Ops != b.Ops || a.Reads != b.Reads || a.Writes != b.Writes {
		t.Errorf("same seed, different counts: %d/%d/%d vs %d/%d/%d",
			a.Ops, a.Reads, a.Writes, b.Ops, b.Reads, b.Writes)
	}
	if a.Reads+a.Writes != a.Ops {
		t.Errorf("reads %d + writes %d != ops %d", a.Reads, a.Writes, a.Ops)
	}
	if a.Tracker.Events != int(a.Ops)+int(a.WarmupOps) {
		t.Errorf("tracker saw %d events, want %d", a.Tracker.Events, a.Ops+a.WarmupOps)
	}
}

// TestBatchMode checks batched commits count every operation and keep the
// amortized latency histogram populated.
func TestBatchMode(t *testing.T) {
	rep, err := Run(Config{Threads: 2, Objects: 8, ReadFrac: 0.5, Ops: 333, Warmup: 10, Batch: 16, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if want := int64(2 * 333); rep.Ops != want {
		t.Fatalf("ops = %d, want %d (batch must not round the fixed count)", rep.Ops, want)
	}
	if rep.Latency.Max <= 0 {
		t.Error("no latencies recorded in batch mode")
	}
}

// TestZipfAndBackends smokes the distribution and backend knobs.
func TestZipfAndBackends(t *testing.T) {
	for _, backend := range []string{"flat", "tree", "auto"} {
		rep, err := Run(Config{Threads: 2, Objects: 32, ReadFrac: 0.5, Ops: 200, Warmup: 10, Dist: "zipf", Backend: backend, Seed: 2})
		if err != nil {
			t.Fatalf("backend %s: %v", backend, err)
		}
		if rep.Backend == "" || rep.Tracker.Width < 1 {
			t.Errorf("backend %s: implausible report %+v", backend, rep)
		}
	}
}

// TestDurableStore runs against a spill directory and checks the lifecycle
// counters actually moved: the run sealed, and the stats reflect a durable
// catalog.
func TestDurableStore(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "run")
	rep, err := Run(Config{Threads: 4, Objects: 16, ReadFrac: 0.5, Ops: 30_000, Warmup: 100, Store: dir, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Tracker.Seals == 0 {
		t.Error("durable run never sealed")
	}
	if rep.Tracker.SpilledBytes == 0 || rep.Tracker.Segments == 0 {
		t.Errorf("durable run spilled nothing: %+v", rep.Tracker)
	}
	if rep.Tracker.SealedEvents != rep.Tracker.Events {
		t.Errorf("Close left %d of %d events unsealed", rep.Tracker.Events-rep.Tracker.SealedEvents, rep.Tracker.Events)
	}
}

// TestSpamUnderMonitor is the race-stressed harness test (CI runs it under
// -race -count=3): a timed multi-worker mixed load with an online monitor
// riding the seal stream, plus batching, on a real spill directory.
func TestSpamUnderMonitor(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "run")
	rep, err := Run(Config{
		Threads:  4,
		Objects:  24,
		ReadFrac: 0.4,
		Ops:      5_000,
		Warmup:   200,
		Batch:    8,
		Dist:     "zipf",
		Store:    dir,
		Monitor:  true,
		Seed:     6,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Monitor == nil {
		t.Fatal("monitor summary missing")
	}
	if rep.Monitor.Consumed == 0 {
		t.Error("monitor consumed nothing despite Sync")
	}
	if rep.Monitor.CoverLowerBound < 1 || rep.Monitor.CoverLowerBound > rep.Tracker.Width {
		t.Errorf("König lower bound %d outside [1, width=%d]", rep.Monitor.CoverLowerBound, rep.Tracker.Width)
	}
}

// TestValidate rejects the configs Run cannot honour.
func TestValidate(t *testing.T) {
	bad := []Config{
		{Threads: 1, Objects: 1, ReadFrac: 1.5, Ops: 1},
		{Threads: 1, Objects: 1, Dist: "pareto", Ops: 1},
		{Threads: 1, Objects: 1, Backend: "cube", Ops: 1},
	}
	for i, cfg := range bad {
		if _, err := Run(cfg); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
}

// TestHistQuantiles pins the histogram's log-linear resolution: quantiles
// of a known distribution come back within sub-bucket error, and merge is
// count-preserving.
func TestHistQuantiles(t *testing.T) {
	var h hist
	for i := int64(1); i <= 10_000; i++ {
		h.recordN(i, 1)
	}
	checks := []struct {
		q    float64
		want int64
	}{{0.5, 5000}, {0.9, 9000}, {0.99, 9900}}
	for _, c := range checks {
		got := h.quantile(c.q)
		err := float64(got-c.want) / float64(c.want)
		if err < -0.05 || err > 0.05 {
			t.Errorf("q%.2f = %d, want %d ±5%%", c.q, got, c.want)
		}
	}
	if h.quantile(1.0) != 10_000 {
		t.Errorf("max quantile = %d, want exact max 10000", h.quantile(1.0))
	}

	var a, b hist
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 5000; i++ {
		a.recordN(rng.Int63n(1_000_000), 1)
		b.recordN(rng.Int63n(1_000_000), 1)
	}
	n := a.n + b.n
	a.merge(&b)
	if a.n != n {
		t.Errorf("merge lost counts: %d, want %d", a.n, n)
	}
}

// TestBucketRoundTrip checks bucketOf/valueOf stay within sub-bucket error
// across the whole range, including the exact low range and boundaries.
func TestBucketRoundTrip(t *testing.T) {
	for _, v := range []int64{0, 1, 31, 32, 33, 63, 64, 1023, 1 << 20, (1 << 40) + 12345} {
		idx := bucketOf(v)
		rep := valueOf(idx)
		if v < 1<<subBits {
			if rep != v {
				t.Errorf("low range: valueOf(bucketOf(%d)) = %d, want exact", v, rep)
			}
			continue
		}
		ratio := float64(rep) / float64(v)
		if ratio < 0.95 || ratio > 1.05 {
			t.Errorf("valueOf(bucketOf(%d)) = %d, off by %.1f%%", v, rep, (ratio-1)*100)
		}
	}
}
