package tlog

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"mixedclock/internal/event"
	"mixedclock/internal/vclock"
)

// Delta-encoded log format (version 02). Within one thread, consecutive
// stamps differ in only the components the event changed — on wide clocks a
// handful out of k — so shipping the full vector per record wastes both
// bytes and writer time. The delta format stores, per record, the
// (index, value) pairs that changed relative to the same thread's previous
// record, falling back to a full vector every SyncEvery records per thread
// (and for a thread's first record) so a partially corrupt log loses at
// most one sync interval per thread and readers need only bounded state.
//
// Format: the 8-byte magic "MVCLOG02", then one record per event:
//
//	uvarint thread | uvarint object | uvarint op | uvarint tag | payload
//
// where tag 0 (full) is followed by a canonical vector (uvarint count +
// uvarint components, trailing zeros trimmed) and tag 1 (delta) by a
// uvarint pair count and that many (uvarint index, uvarint value) pairs.
// Pairs apply in order, later entries overriding earlier ones, so a raw
// change capture (which may mention a component twice: join raise, then
// tick) is a valid payload as-is. Records are self-delimiting; truncation
// semantics match the full format.
//
// Readers auto-detect the version from the magic, so ReadAll and Reader
// accept either format transparently.

// magicDelta identifies the delta-encoded format.
var magicDelta = [8]byte{'M', 'V', 'C', 'L', 'O', 'G', '0', '2'}

// Record payload tags of the delta format.
const (
	tagFull  = 0
	tagDelta = 1
)

// DefaultSyncEvery is how often (per thread) the delta writer emits a full
// vector when no explicit interval is configured. Small enough to bound
// corruption blast radius, large enough that sync cost disappears into the
// noise on wide clocks.
const DefaultSyncEvery = 64

// DeltaWriter appends timestamped events to a stream in the delta format.
// Call Flush before closing the underlying writer.
//
// The writer keeps one vector of state per thread and reuses its encode
// buffer, so steady-state appends do not allocate — the other half of the
// "stop paying O(k) per event" contract the live tracker's delta records
// start.
type DeltaWriter struct {
	w         *bufio.Writer
	started   bool
	buf       []byte
	scratch   []byte
	pairs     []vclock.Delta
	syncEvery int
	// written counts stream bytes flushed so far; the writer keeps every
	// emitted pair index below deltaBudget(written), mirroring the
	// reader's anti-amplification check, by falling back to full records.
	written int64
	threads map[event.ThreadID]*threadLogState
}

// threadLogState is the writer's running view of one thread: the thread's
// previous stamp and how many records since its last full vector (zero
// meaning no record yet — the first is always full).
type threadLogState struct {
	prev  vclock.Vector
	since int
}

// NewDeltaWriter returns a delta-format Writer on w with the default sync
// interval.
func NewDeltaWriter(w io.Writer) *DeltaWriter { return NewDeltaWriterSync(w, DefaultSyncEvery) }

// NewDeltaWriterSync is NewDeltaWriter with an explicit per-thread full-
// vector interval. syncEvery < 1 means every record is written full (the
// v2 framing with v1 economics — still readable by the same Reader).
func NewDeltaWriterSync(w io.Writer, syncEvery int) *DeltaWriter {
	if syncEvery < 1 {
		syncEvery = 1
	}
	return &DeltaWriter{
		w:         bufio.NewWriter(w),
		syncEvery: syncEvery,
		threads:   make(map[event.ThreadID]*threadLogState),
	}
}

// begin writes the record prelude shared by both payload kinds and returns
// the thread's state.
func (w *DeltaWriter) begin(e event.Event) (st *threadLogState, err error) {
	if e.Thread < 0 || e.Object < 0 || e.Op < 0 {
		return nil, fmt.Errorf("tlog: negative field in event %v", e)
	}
	if !w.started {
		if _, err := w.w.Write(magicDelta[:]); err != nil {
			return nil, fmt.Errorf("tlog: writing header: %w", err)
		}
		w.started = true
		w.written += int64(len(magicDelta))
	}
	st = w.threads[e.Thread]
	if st == nil {
		st = &threadLogState{}
		w.threads[e.Thread] = st
	}
	w.buf = w.buf[:0]
	w.buf = binary.AppendUvarint(w.buf, uint64(e.Thread))
	w.buf = binary.AppendUvarint(w.buf, uint64(e.Object))
	w.buf = binary.AppendUvarint(w.buf, uint64(e.Op))
	return st, nil
}

// syncDue reports whether the thread's next record must carry a full
// vector: its first record, the periodic sync point, or a change set whose
// highest index the reader's width budget would refuse this early in the
// stream (offline clocks assign component indices up front, so a high index
// can legitimately appear before the stream has "paid" for it — the full
// record pays for its width in bytes, replenishing the budget).
func (w *DeltaWriter) syncDue(st *threadLogState, maxIdx uint64) bool {
	return st.since == 0 || st.since >= w.syncEvery || maxIdx >= deltaBudget(w.written)
}

// flushRecord writes the assembled record buffer and settles the thread's
// sync counter.
func (w *DeltaWriter) flushRecord(st *threadLogState, full bool) error {
	if _, err := w.w.Write(w.buf); err != nil {
		return fmt.Errorf("tlog: writing record: %w", err)
	}
	w.written += int64(len(w.buf))
	if full {
		st.since = 1
	} else {
		st.since++
	}
	return nil
}

// Append writes one record, diffing v against the thread's previous stamp.
func (w *DeltaWriter) Append(e event.Event, v vclock.Vector) error {
	st, err := w.begin(e)
	if err != nil {
		return err
	}
	p := st.prev
	// One diff pass emitting pairs into the scratch buffer, so the
	// pair-count prefix can go first without a second scan.
	n := len(p)
	if len(v) > n {
		n = len(v)
	}
	pairs := 0
	var maxIdx uint64
	w.scratch = w.scratch[:0]
	for i := 0; i < n; i++ {
		if x := v.At(i); x != p.At(i) {
			pairs++
			maxIdx = uint64(i)
			w.scratch = binary.AppendUvarint(w.scratch, uint64(i))
			w.scratch = binary.AppendUvarint(w.scratch, x)
		}
	}
	full := w.syncDue(st, maxIdx)
	if full {
		w.buf = binary.AppendUvarint(w.buf, tagFull)
		w.buf = v.AppendBinary(w.buf)
	} else {
		w.buf = binary.AppendUvarint(w.buf, tagDelta)
		w.buf = binary.AppendUvarint(w.buf, uint64(pairs))
		w.buf = append(w.buf, w.scratch...)
	}
	// Absorb v into the retained per-thread state, reusing its storage.
	p = p.Grow(len(v))
	copy(p, v)
	for i := len(v); i < len(p); i++ {
		p[i] = 0
	}
	st.prev = p
	return w.flushRecord(st, full)
}

// AppendDelta writes one record straight from a change capture (the
// (index, value) assignments the event applied to the thread's previous
// stamp — what vclock's JoinDelta/TickDelta or core's TimestampDelta
// produce), so the caller never materializes a full vector. At sync points
// the writer falls back to the full vector it maintains internally.
//
// The capture is canonicalized before encoding: pairs are sorted by
// component index, only the last assignment to each index is kept (captures
// may mention a component twice — join raise, then tick), and assignments
// that leave the component unchanged are dropped. What remains is exactly
// the diff against the thread's previous stamp, so AppendDelta(e, ds) and
// Append(e, prev.Apply(ds)) produce identical bytes — capture order is the
// one thing that differs between clock backends (flat scans ascending, tree
// walks its marks), and canonicalizing here makes a computation export to
// identical bytes whichever backend stamped it and whichever entry point
// fed the writer. Capture values must be monotone (each at least the
// component's current value), as the vclock capture API guarantees.
func (w *DeltaWriter) AppendDelta(e event.Event, ds []vclock.Delta) error {
	st, err := w.begin(e)
	if err != nil {
		return err
	}
	// Stable insertion sort into a retained buffer: change sets are a
	// handful of entries, and this keeps the append allocation-free.
	w.pairs = append(w.pairs[:0], ds...)
	for i := 1; i < len(w.pairs); i++ {
		for j := i; j > 0 && w.pairs[j].Index < w.pairs[j-1].Index; j-- {
			w.pairs[j], w.pairs[j-1] = w.pairs[j-1], w.pairs[j]
		}
	}
	// Compact in place: last-wins per index, no-op assignments dropped.
	// Writes trail reads (each surviving group writes one slot at or before
	// the group's first element), so the in-place rewrite is safe.
	pairs := w.pairs[:0]
	for i := 0; i < len(w.pairs); {
		j := i
		for j+1 < len(w.pairs) && w.pairs[j+1].Index == w.pairs[i].Index {
			j++
		}
		if d := w.pairs[j]; d.Value != st.prev.At(int(d.Index)) {
			pairs = append(pairs, d)
		}
		i = j + 1
	}
	var maxIdx uint64
	if len(pairs) > 0 {
		maxIdx = uint64(pairs[len(pairs)-1].Index)
	}
	full := w.syncDue(st, maxIdx)
	st.prev = st.prev.Apply(pairs)
	if full {
		w.buf = binary.AppendUvarint(w.buf, tagFull)
		w.buf = st.prev.AppendBinary(w.buf)
	} else {
		w.buf = binary.AppendUvarint(w.buf, tagDelta)
		w.buf = binary.AppendUvarint(w.buf, uint64(len(pairs)))
		for _, d := range pairs {
			w.buf = binary.AppendUvarint(w.buf, uint64(d.Index))
			w.buf = binary.AppendUvarint(w.buf, d.Value)
		}
	}
	return w.flushRecord(st, full)
}

// Flush pushes buffered records to the underlying writer.
func (w *DeltaWriter) Flush() error {
	if err := w.w.Flush(); err != nil {
		return fmt.Errorf("tlog: flushing: %w", err)
	}
	return nil
}

// WriteAllDelta writes a whole timestamped computation in the delta format
// with the default sync interval. The stream typically shrinks by the ratio
// of clock width to per-event change count; ReadAll reads either format.
func WriteAllDelta(w io.Writer, tr *event.Trace, stamps []vclock.Vector) error {
	if len(stamps) != tr.Len() {
		return fmt.Errorf("tlog: %d stamps for %d events", len(stamps), tr.Len())
	}
	lw := NewDeltaWriter(w)
	for i := 0; i < tr.Len(); i++ {
		if err := lw.Append(tr.At(i), stamps[i]); err != nil {
			return err
		}
	}
	return lw.Flush()
}
