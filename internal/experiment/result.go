// Package experiment reproduces the paper's evaluation (§V): every figure
// is an entry point that sweeps the paper's parameters over seeded random
// graphs and reports mean vector-clock sizes per mechanism. Results render
// as aligned text tables, CSV, or quick ASCII plots.
package experiment

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// Series is one curve of a figure.
type Series struct {
	Name string
	// Values[i] corresponds to Result.X[i].
	Values []float64
}

// Result is one reproduced figure: an x-axis and one or more series.
type Result struct {
	Title  string
	XLabel string
	YLabel string
	X      []float64
	Series []Series
}

// Get returns the value of the named series at x-index i.
func (r *Result) Get(series string, i int) (float64, bool) {
	for _, s := range r.Series {
		if s.Name == series {
			if i < 0 || i >= len(s.Values) {
				return 0, false
			}
			return s.Values[i], true
		}
	}
	return 0, false
}

// XIndex returns the index of the x value closest to x.
func (r *Result) XIndex(x float64) int {
	best, bestDist := -1, math.Inf(1)
	for i, v := range r.X {
		if d := math.Abs(v - x); d < bestDist {
			best, bestDist = i, d
		}
	}
	return best
}

// WriteCSV emits a header row (x label then series names) and one row per x
// value.
func (r *Result) WriteCSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	cols := make([]string, 0, len(r.Series)+1)
	cols = append(cols, r.XLabel)
	for _, s := range r.Series {
		cols = append(cols, s.Name)
	}
	fmt.Fprintln(bw, strings.Join(cols, ","))
	for i, x := range r.X {
		row := make([]string, 0, len(r.Series)+1)
		row = append(row, trimFloat(x))
		for _, s := range r.Series {
			row = append(row, trimFloat(s.Values[i]))
		}
		fmt.Fprintln(bw, strings.Join(row, ","))
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("experiment: writing CSV: %w", err)
	}
	return nil
}

// WriteTable emits an aligned, human-readable table with the figure title.
func (r *Result) WriteTable(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "%s\n", r.Title)
	fmt.Fprintf(bw, "%s\n", strings.Repeat("-", len(r.Title)))

	widths := make([]int, len(r.Series)+1)
	widths[0] = len(r.XLabel)
	for j, s := range r.Series {
		widths[j+1] = len(s.Name)
	}
	rows := make([][]string, len(r.X))
	for i, x := range r.X {
		rows[i] = make([]string, len(r.Series)+1)
		rows[i][0] = trimFloat(x)
		for j, s := range r.Series {
			rows[i][j+1] = fmt.Sprintf("%.2f", s.Values[i])
		}
		for j, cell := range rows[i] {
			if len(cell) > widths[j] {
				widths[j] = len(cell)
			}
		}
	}
	fmt.Fprintf(bw, "%-*s", widths[0], r.XLabel)
	for j, s := range r.Series {
		fmt.Fprintf(bw, "  %*s", widths[j+1], s.Name)
	}
	fmt.Fprintln(bw)
	for _, row := range rows {
		fmt.Fprintf(bw, "%-*s", widths[0], row[0])
		for j := 1; j < len(row); j++ {
			fmt.Fprintf(bw, "  %*s", widths[j], row[j])
		}
		fmt.Fprintln(bw)
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("experiment: writing table: %w", err)
	}
	return nil
}

// plotGlyphs mark series points in ASCII plots, in series order.
var plotGlyphs = []byte{'n', 'r', 'p', 'o', 'h', 'x', '*'}

// WriteASCIIPlot renders the result as a rough terminal plot of the given
// character height (the width follows the number of x points). Each series
// gets a glyph; the legend maps glyphs back to names.
func (r *Result) WriteASCIIPlot(w io.Writer, height int) error {
	if height < 4 {
		height = 4
	}
	bw := bufio.NewWriter(w)
	maxY := 0.0
	for _, s := range r.Series {
		for _, v := range s.Values {
			if v > maxY {
				maxY = v
			}
		}
	}
	if maxY == 0 {
		maxY = 1
	}
	const colWidth = 3
	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", colWidth*len(r.X)))
	}
	for si, s := range r.Series {
		glyph := plotGlyphs[si%len(plotGlyphs)]
		for i, v := range s.Values {
			row := height - 1 - int(v/maxY*float64(height-1)+0.5)
			col := i*colWidth + 1
			if grid[row][col] == ' ' {
				grid[row][col] = glyph
			} else {
				grid[row][col] = '+' // collision
			}
		}
	}
	fmt.Fprintf(bw, "%s\n", r.Title)
	for i, line := range grid {
		label := "      "
		switch i {
		case 0:
			label = fmt.Sprintf("%5.1f ", maxY)
		case height - 1:
			label = "  0.0 "
		}
		fmt.Fprintf(bw, "%s|%s\n", label, string(line))
	}
	fmt.Fprintf(bw, "      +%s\n", strings.Repeat("-", colWidth*len(r.X)))
	xticks := make([]string, len(r.X))
	for i, x := range r.X {
		xticks[i] = fmt.Sprintf("%*s", colWidth, trimFloat(x))
	}
	fmt.Fprintf(bw, "       %s  (%s)\n", strings.Join(xticks, ""), r.XLabel)
	legend := make([]string, len(r.Series))
	for si, s := range r.Series {
		legend[si] = fmt.Sprintf("%c=%s", plotGlyphs[si%len(plotGlyphs)], s.Name)
	}
	fmt.Fprintf(bw, "       %s\n", strings.Join(legend, "  "))
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("experiment: writing plot: %w", err)
	}
	return nil
}

// trimFloat formats a float without trailing zeros (densities and node
// counts both read naturally).
func trimFloat(x float64) string {
	if x == math.Trunc(x) {
		return strconv.FormatInt(int64(x), 10)
	}
	return strconv.FormatFloat(x, 'g', 4, 64)
}
