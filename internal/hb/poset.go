package hb

import (
	"mixedclock/internal/bipartite"
	"mixedclock/internal/matching"
)

// Height returns the length (number of events) of the longest chain in the
// computation — Mirsky's dual of width. An empty trace has height 0.
func (o *Oracle) Height() int {
	// The trace order is a linearization, so a forward DP over immediate
	// successors computes longest-path lengths.
	if o.n == 0 {
		return 0
	}
	h := make([]int, o.n)
	best := 1
	for i := 0; i < o.n; i++ {
		h[i]++ // count the event itself
		if h[i] > best {
			best = h[i]
		}
		if s := o.succThread[i]; s >= 0 && h[s] < h[i] {
			h[s] = h[i]
		}
		if s := o.succObject[i]; s >= 0 && h[s] < h[i] {
			h[s] = h[i]
		}
	}
	return best
}

// Width returns the maximum antichain size of the computation's poset, via
// Dilworth's theorem: the minimum number of chains covering the poset equals
// the width, and the minimum chain cover of a DAG with n events equals
// n − M where M is a maximum matching of the comparability split graph
// (event i on the left connected to event j on the right iff i → j).
//
// The width lower-bounds the components of any chain-based clock (the
// Agarwal–Garg baseline), which is why the evaluation reports it.
//
// Cost is O(n²) space for the split graph; intended for analysis, not hot
// paths.
func (o *Oracle) Width() int {
	if o.n == 0 {
		return 0
	}
	split := bipartite.New(o.n, o.n)
	for i := 0; i < o.n; i++ {
		for _, j := range o.after[i].members() {
			split.AddEdge(i, j)
		}
	}
	m := matching.HopcroftKarp(split)
	return o.n - m.Size()
}

// ChainCover returns a minimum chain decomposition of the poset: a set of
// chains (event index sequences, each totally ordered by →) that together
// contain every event. Its length equals Width().
func (o *Oracle) ChainCover() [][]int {
	if o.n == 0 {
		return nil
	}
	split := bipartite.New(o.n, o.n)
	for i := 0; i < o.n; i++ {
		for _, j := range o.after[i].members() {
			split.AddEdge(i, j)
		}
	}
	m := matching.HopcroftKarp(split)

	// Each matched edge (i → j) links i to its chain successor j. Chain
	// heads are events that are no one's successor.
	isSuccessor := make([]bool, o.n)
	for i := 0; i < o.n; i++ {
		if j := m.ThreadMatch[i]; j >= 0 {
			isSuccessor[j] = true
		}
	}
	var chains [][]int
	for i := 0; i < o.n; i++ {
		if isSuccessor[i] {
			continue
		}
		chain := []int{i}
		for cur := i; ; {
			next := m.ThreadMatch[cur]
			if next < 0 {
				break
			}
			chain = append(chain, next)
			cur = next
		}
		chains = append(chains, chain)
	}
	return chains
}
