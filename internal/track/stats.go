// Tracker statistics: the one-call summary load generators and operational
// dashboards poll. Everything here is readable lock-free or under the short
// shard read lock the individual accessors already take — Stats never stalls
// commits (but, like Epoch, it is not for use inside a Do callback).
package track

import "mixedclock/internal/vclock"

// TrackerStats is a point-in-time summary of a tracker's clock and storage
// lifecycle. The first block is current state (what the individual accessors
// Events, Size, Epoch, Segments report, gathered in one call); the counters
// in the second block are cumulative over the tracker's lifetime — they only
// grow, across epochs and compaction passes, so two snapshots subtract into
// rates. cmd/loadgen prints one of these after every run.
type TrackerStats struct {
	// Events is the number of committed operations; SealedEvents of them
	// live in immutable segments, and events below RetainedEvents were
	// retired by retention (replay starts at the floor).
	Events         int `json:"events"`
	SealedEvents   int `json:"sealed_events"`
	RetainedEvents int `json:"retained_events"`
	// Width is the current mixed-clock width (the live cover size) and
	// Backend the resolved clock representation; Epoch counts Compact
	// barriers.
	Width   int            `json:"width"`
	Backend vclock.Backend `json:"-"`
	Epoch   int            `json:"epoch"`
	// Segments is the sealed-history length, SpilledBytes the on-disk
	// total across spilled segments, CatalogGen the published catalog
	// generation (bumped by every sealed-history change).
	Segments     int   `json:"segments"`
	SpilledBytes int64 `json:"spilled_bytes"`
	CatalogGen   int64 `json:"catalog_gen"`
	// Seals counts successful seal passes; CompactionPasses ran tiered
	// segment compaction, eliminating CompactedSegments source segments
	// (beyond their merged replacements); RetentionPasses retired
	// RetiredSegments graduated segments.
	Seals             int64 `json:"seals"`
	CompactionPasses  int64 `json:"compaction_passes"`
	CompactedSegments int64 `json:"compacted_segments"`
	RetentionPasses   int64 `json:"retention_passes"`
	RetiredSegments   int64 `json:"retired_segments"`
}

// Stats gathers the tracker's current lifecycle summary. The snapshot is
// internally consistent for the sealed-history fields (they come from one
// immutable hist value); Events and Width are independent atomic loads, so
// under concurrent commits they may run slightly ahead. Stats never blocks
// commits, but it takes the same short shard read lock Epoch does, so don't
// call it from inside a Do callback.
func (t *Tracker) Stats() TrackerStats {
	st := t.hist.Load()
	var spilled int64
	for _, sg := range st.segs {
		if sg.file != "" {
			spilled += sg.size
		}
	}
	return TrackerStats{
		Events:            t.Events(),
		SealedEvents:      int(t.sealed.Load()),
		RetainedEvents:    st.retained,
		Width:             t.Size(),
		Backend:           t.Backend(),
		Epoch:             t.Epoch(),
		Segments:          len(st.segs),
		SpilledBytes:      spilled,
		CatalogGen:        st.gen,
		Seals:             t.sealPasses.Load(),
		CompactionPasses:  t.compactPasses.Load(),
		CompactedSegments: t.compactedSegs.Load(),
		RetentionPasses:   t.retainPasses.Load(),
		RetiredSegments:   t.retiredSegs.Load(),
	}
}
