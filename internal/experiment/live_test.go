package experiment

import (
	"reflect"
	"testing"

	"mixedclock/internal/vclock"
)

// smallOpt keeps the equivalence sweeps to one cheap point per axis.
func smallOpt() Options {
	return Options{
		Trials:     2,
		Seed:       11,
		Nodes:      12,
		Density:    0.1,
		Densities:  []float64{0.1},
		NodeCounts: []int{10, 20},
	}
}

// requireEqualResults asserts two figure Results carry identical series —
// the live tracker pipeline must reproduce the offline simulation exactly,
// not approximately.
func requireEqualResults(t *testing.T, name string, offline, live *Result) {
	t.Helper()
	if !reflect.DeepEqual(offline.X, live.X) {
		t.Fatalf("%s: x-axis differs: offline %v live %v", name, offline.X, live.X)
	}
	if !reflect.DeepEqual(offline.Series, live.Series) {
		t.Fatalf("%s: series differ:\noffline %+v\nlive    %+v", name, offline.Series, live.Series)
	}
}

// TestLiveEquivalence pins the tentpole property: every figure's online
// series measured on a live Tracker (per backend) equals the offline
// core.SimulateCover numbers, point for point — the tracker's concurrent
// cover path realizes the paper's mechanisms exactly, and the shared rng
// discipline keeps the Random series deterministic across pipelines.
func TestLiveEquivalence(t *testing.T) {
	opt := smallOpt()
	for _, backend := range []vclock.Backend{vclock.BackendFlat, vclock.BackendTree} {
		o4u, o4n, err := Fig4(opt)
		if err != nil {
			t.Fatal(err)
		}
		l4u, l4n, err := Fig4Live(opt, backend)
		if err != nil {
			t.Fatal(err)
		}
		requireEqualResults(t, "fig4 uniform", o4u, l4u)
		requireEqualResults(t, "fig4 nonuniform", o4n, l4n)

		o5u, o5n, err := Fig5(opt)
		if err != nil {
			t.Fatal(err)
		}
		l5u, l5n, err := Fig5Live(opt, backend)
		if err != nil {
			t.Fatal(err)
		}
		requireEqualResults(t, "fig5 uniform", o5u, l5u)
		requireEqualResults(t, "fig5 nonuniform", o5n, l5n)

		o6, err := Fig6(opt)
		if err != nil {
			t.Fatal(err)
		}
		l6, err := Fig6Live(opt, backend)
		if err != nil {
			t.Fatal(err)
		}
		requireEqualResults(t, "fig6", o6, l6)

		o7, err := Fig7(opt)
		if err != nil {
			t.Fatal(err)
		}
		l7, err := Fig7Live(opt, backend)
		if err != nil {
			t.Fatal(err)
		}
		requireEqualResults(t, "fig7", o7, l7)
	}
}

// TestBackendWidthSweepShape runs the throughput sweep at minimum scale and
// checks its structure: every series present, one value per worker count,
// all positive.
func TestBackendWidthSweepShape(t *testing.T) {
	if testing.Short() {
		t.Skip("throughput sweep under -short")
	}
	r, err := BackendWidthSweep(Options{Trials: 1, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Series) != 8 {
		t.Fatalf("expected 8 series (2 backends × 2 styles × 2 ratios), got %d", len(r.Series))
	}
	if len(r.X) != len(sweepThreads) {
		t.Fatalf("x-axis has %d points, want %d", len(r.X), len(sweepThreads))
	}
	for _, s := range r.Series {
		if len(s.Values) != len(r.X) {
			t.Fatalf("series %s has %d values, want %d", s.Name, len(s.Values), len(r.X))
		}
		for i, v := range s.Values {
			if v <= 0 {
				t.Errorf("series %s point %d: non-positive throughput %v", s.Name, i, v)
			}
		}
	}
}
