package tlog

import (
	"os"
	"path/filepath"
	"testing"

	"mixedclock/internal/event"
	"mixedclock/internal/vclock"
)

// cursorFixture writes count records split into segments of segSize events
// each under dir, publishing a catalog, and returns the events/stamps.
func cursorFixture(t *testing.T, dir string, count, segSize int) ([]event.Event, []vclock.Vector) {
	t.Helper()
	events := make([]event.Event, count)
	stamps := make([]vclock.Vector, count)
	for i := range events {
		events[i] = event.Event{Index: i, Thread: event.ThreadID(i % 3), Object: event.ObjectID(i % 2), Op: event.OpWrite}
		v := vclock.New(3)
		v.Set(i%3, uint64(i+1))
		stamps[i] = v
	}
	cat := &Catalog{FormatVersion: CatalogFormatVersion, Generation: 1, SealedEvents: count}
	for first := 0; first < count; first += segSize {
		n := min(segSize, count-first)
		meta := SegmentMeta{Epoch: 0, FirstIndex: first, Count: n}
		data := sealSegment(t, meta, events[first:first+n], stamps[first:first+n])
		name := SegmentFileName(meta)
		if err := os.WriteFile(filepath.Join(dir, name), data, 0o644); err != nil {
			t.Fatal(err)
		}
		cat.Segments = append(cat.Segments, CatalogSegment{
			Epoch: 0, FirstIndex: first, Events: n, Bytes: int64(len(data)), Path: name,
		})
	}
	writeCatalog(t, dir, cat)
	return events, stamps
}

func writeCatalog(t *testing.T, dir string, cat *Catalog) {
	t.Helper()
	f, err := os.Create(filepath.Join(dir, CatalogFileName))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := EncodeCatalog(f, cat); err != nil {
		t.Fatal(err)
	}
}

// TestDirCursorFollows checks the cursor delivers sealed records in order,
// is idempotent across polls, and picks up newly published segments.
func TestDirCursorFollows(t *testing.T) {
	dir := t.TempDir()
	events, stamps := cursorFixture(t, dir, 20, 7)

	c := NewDirCursor(dir)
	var got []event.Event
	var gotStamps []vclock.Vector
	sink := func(e event.Event, epoch int, v vclock.Vector) error {
		if epoch != 0 {
			t.Fatalf("epoch %d for event %d", epoch, e.Index)
		}
		got = append(got, e)
		gotStamps = append(gotStamps, v.Clone())
		return nil
	}
	cat, n, err := c.Poll(sink)
	if err != nil || cat == nil || n != 20 {
		t.Fatalf("first poll: cat=%v n=%d err=%v", cat, n, err)
	}
	for i, e := range got {
		if e != events[i] || !gotStamps[i].Equal(stamps[i]) {
			t.Fatalf("record %d: got %v/%v, want %v/%v", i, e, gotStamps[i], events[i], stamps[i])
		}
	}
	if _, n, err := c.Poll(sink); err != nil || n != 0 {
		t.Fatalf("second poll should be empty: n=%d err=%v", n, err)
	}

	// Publish 10 more records in one segment; only they are delivered.
	more := make([]event.Event, 10)
	moreStamps := make([]vclock.Vector, 10)
	for i := range more {
		more[i] = event.Event{Index: 20 + i, Thread: event.ThreadID(i % 3), Object: 0, Op: event.OpRead}
		v := vclock.New(3)
		v.Set(i%3, uint64(100+i))
		moreStamps[i] = v
	}
	meta := SegmentMeta{Epoch: 1, FirstIndex: 20, Count: 10}
	data := sealSegment(t, meta, more, moreStamps)
	if err := os.WriteFile(filepath.Join(dir, SegmentFileName(meta)), data, 0o644); err != nil {
		t.Fatal(err)
	}
	cat.Generation++
	cat.SealedEvents = 30
	cat.Closed = true
	cat.Segments = append(cat.Segments, CatalogSegment{
		Epoch: 1, FirstIndex: 20, Events: 10, Bytes: int64(len(data)), Path: SegmentFileName(meta),
	})
	writeCatalog(t, dir, cat)

	got = got[:0]
	cat2, n, err := c.Poll(func(e event.Event, epoch int, v vclock.Vector) error {
		if epoch != 1 {
			t.Fatalf("epoch %d for event %d, want 1", epoch, e.Index)
		}
		got = append(got, e)
		return nil
	})
	if err != nil || n != 10 || !cat2.Closed {
		t.Fatalf("third poll: n=%d closed=%v err=%v", n, cat2 != nil && cat2.Closed, err)
	}
	if got[0].Index != 20 || got[9].Index != 29 {
		t.Fatalf("third poll range [%d,%d]", got[0].Index, got[9].Index)
	}
	if c.Next() != 30 {
		t.Fatalf("cursor at %d, want 30", c.Next())
	}
}

// TestDirCursorNoCatalogYet checks polling a directory before the first
// seal is a quiet no-op, not an error.
func TestDirCursorNoCatalogYet(t *testing.T) {
	c := NewDirCursor(t.TempDir())
	cat, n, err := c.Poll(func(event.Event, int, vclock.Vector) error { return nil })
	if cat != nil || n != 0 || err != nil {
		t.Fatalf("cat=%v n=%d err=%v", cat, n, err)
	}
}

// TestDirCursorRetentionFloor checks a fresh cursor behind the retention
// floor skips forward and reports the gap instead of failing on missing
// segments.
func TestDirCursorRetentionFloor(t *testing.T) {
	dir := t.TempDir()
	events, stamps := cursorFixture(t, dir, 20, 10)

	// Retire the first segment: floor to 10, drop its entry and file.
	cat, err := func() (*Catalog, error) {
		f, err := os.Open(filepath.Join(dir, CatalogFileName))
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return DecodeCatalog(f)
	}()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(filepath.Join(dir, cat.Segments[0].Path)); err != nil {
		t.Fatal(err)
	}
	cat.Generation++
	cat.RetainedEvents = 10
	cat.Segments = cat.Segments[1:]
	writeCatalog(t, dir, cat)

	c := NewDirCursor(dir)
	var got []event.Event
	_, n, err := c.Poll(func(e event.Event, epoch int, v vclock.Vector) error {
		if !v.Equal(stamps[e.Index]) {
			t.Fatalf("stamp mismatch at %d", e.Index)
		}
		got = append(got, e)
		return nil
	})
	if err != nil || n != 10 {
		t.Fatalf("poll: n=%d err=%v", n, err)
	}
	if c.Skipped() != 10 {
		t.Fatalf("skipped %d, want 10", c.Skipped())
	}
	if got[0] != events[10] {
		t.Fatalf("first delivered %v, want %v", got[0], events[10])
	}
}
