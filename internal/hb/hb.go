// Package hb computes the ground-truth happened-before relation of a
// computation (Lamport's relation restricted to the paper's model): the
// smallest transitive relation where e → f if e immediately precedes f on
// the same thread or on the same object.
//
// The Oracle materializes full reachability with bitsets, so tests can check
// a clock's validity — s → t ⇔ s.V < t.V — against an independent source of
// truth for every pair of events. It also exposes poset structure (height,
// width, chains) used to evaluate the chain-clock baseline.
package hb

import (
	"fmt"
	"math/bits"

	"mixedclock/internal/event"
)

// Oracle answers happened-before queries for a fixed trace.
type Oracle struct {
	n int
	// succThread[i] / succObject[i] are the immediate successors of event i
	// in program order / object order, or -1.
	succThread []int
	succObject []int
	predThread []int
	predObject []int
	// after[i] is the bitset of events j with i → j (transitive, not
	// reflexive).
	after []bitset
}

// New builds the oracle for tr. Construction is O(E²/64) time and space in
// the number of events; intended for test and analysis workloads, not
// production paths.
func New(tr *event.Trace) *Oracle {
	n := tr.Len()
	o := &Oracle{
		n:          n,
		succThread: fill(n, -1),
		succObject: fill(n, -1),
		predThread: fill(n, -1),
		predObject: fill(n, -1),
	}
	lastOfThread := make(map[event.ThreadID]int)
	lastOfObject := make(map[event.ObjectID]int)
	for i := 0; i < n; i++ {
		e := tr.At(i)
		if p, ok := lastOfThread[e.Thread]; ok {
			o.succThread[p] = i
			o.predThread[i] = p
		}
		if p, ok := lastOfObject[e.Object]; ok {
			o.succObject[p] = i
			o.predObject[i] = p
		}
		lastOfThread[e.Thread] = i
		lastOfObject[e.Object] = i
	}

	// The trace order is a linearization: an event's immediate successors
	// always have larger indices, so a reverse sweep computes the closure.
	o.after = make([]bitset, n)
	words := (n + 63) / 64
	for i := n - 1; i >= 0; i-- {
		b := newBitset(words)
		if s := o.succThread[i]; s >= 0 {
			b.set(s)
			b.or(o.after[s])
		}
		if s := o.succObject[i]; s >= 0 {
			b.set(s)
			b.or(o.after[s])
		}
		o.after[i] = b
	}
	return o
}

// Len returns the number of events.
func (o *Oracle) Len() int { return o.n }

// HappenedBefore reports whether event i → event j (strict: an event does
// not happen before itself).
func (o *Oracle) HappenedBefore(i, j int) bool {
	o.check(i)
	o.check(j)
	return o.after[i].get(j)
}

// Comparable reports whether i → j or j → i.
func (o *Oracle) Comparable(i, j int) bool {
	return o.HappenedBefore(i, j) || o.HappenedBefore(j, i)
}

// Concurrent reports whether distinct events i and j are incomparable
// (i ‖ j in the paper's notation). An event is not concurrent with itself.
func (o *Oracle) Concurrent(i, j int) bool {
	return i != j && !o.Comparable(i, j)
}

// ThreadSuccessor returns the next event by the same thread, or -1.
func (o *Oracle) ThreadSuccessor(i int) int { o.check(i); return o.succThread[i] }

// ObjectSuccessor returns the next event on the same object, or -1.
func (o *Oracle) ObjectSuccessor(i int) int { o.check(i); return o.succObject[i] }

// ThreadPredecessor returns the previous event by the same thread, or -1.
func (o *Oracle) ThreadPredecessor(i int) int { o.check(i); return o.predThread[i] }

// ObjectPredecessor returns the previous event on the same object, or -1.
func (o *Oracle) ObjectPredecessor(i int) int { o.check(i); return o.predObject[i] }

// DownSet returns all events that happened before event i, ascending.
func (o *Oracle) DownSet(i int) []int {
	o.check(i)
	var out []int
	for j := 0; j < o.n; j++ {
		if o.after[j].get(i) {
			out = append(out, j)
		}
	}
	return out
}

// UpSet returns all events that happened after event i, ascending.
func (o *Oracle) UpSet(i int) []int {
	o.check(i)
	return o.after[i].members()
}

// ConcurrentPairs counts unordered pairs {i, j} with i ‖ j. A clock scheme
// must report exactly these as concurrent to be valid.
func (o *Oracle) ConcurrentPairs() int {
	total := o.n * (o.n - 1) / 2
	ordered := 0
	for i := 0; i < o.n; i++ {
		ordered += o.after[i].count()
	}
	return total - ordered
}

func (o *Oracle) check(i int) {
	if i < 0 || i >= o.n {
		panic(fmt.Sprintf("hb: event index %d out of range [0, %d)", i, o.n))
	}
}

func fill(n, v int) []int {
	s := make([]int, n)
	for i := range s {
		s[i] = v
	}
	return s
}

// bitset is a fixed-size set of small integers.
type bitset []uint64

func newBitset(words int) bitset { return make(bitset, words) }

func (b bitset) set(i int)      { b[i/64] |= 1 << (uint(i) % 64) }
func (b bitset) get(i int) bool { return b[i/64]&(1<<(uint(i)%64)) != 0 }

func (b bitset) or(c bitset) {
	for i, w := range c {
		b[i] |= w
	}
}

func (b bitset) count() int {
	n := 0
	for _, w := range b {
		n += bits.OnesCount64(w)
	}
	return n
}

func (b bitset) members() []int {
	var out []int
	for i, w := range b {
		for w != 0 {
			out = append(out, i*64+bits.TrailingZeros64(w))
			w &= w - 1
		}
	}
	return out
}
