package vclock

// Change capture. The paper shrinks the clock to the optimal k components,
// but a flat representation still pays O(k) to copy or serialize a timestamp
// whose predecessor differs in only a handful of components. The delta API
// makes that difference a first-class value: mutating operations can report
// exactly which components they changed, and a consumer (the live tracker's
// record buffers, the delta-encoded trace log) reconstructs full vectors only
// when — and where — it actually needs them.

// Delta is one captured change: component Index now holds Value. A sequence
// of deltas is an ordered list of assignments; applying them in order to the
// predecessor vector reproduces the successor (later entries override earlier
// ones, so a join raise followed by a tick of the same component is two
// entries and still replays correctly).
//
// Along any single clock's history values are monotone, so a delta stream is
// also self-healing: replaying a suffix twice is harmless.
type Delta struct {
	// Index is the component that changed.
	Index int32
	// Value is the component's new value.
	Value uint64
}

// Apply replays a captured change sequence onto v, growing it as needed, and
// returns the (possibly reallocated) vector — the append idiom. This is the
// materialization half of the delta pipeline: predecessor.Apply(deltas) is
// the successor.
func (v Vector) Apply(ds []Delta) Vector {
	for _, d := range ds {
		v = v.Grow(int(d.Index) + 1)
		v[d.Index] = d.Value
	}
	return v
}
