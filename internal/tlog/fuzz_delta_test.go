package tlog

import (
	"bytes"
	"testing"

	"mixedclock/internal/event"
	"mixedclock/internal/vclock"
)

// FuzzDeltaRoundTrip derives an arbitrary timestamped computation from the
// fuzz input (stamps need not even be valid clocks — the codec must not
// care), writes it in both formats, and requires the delta log to decode to
// exactly what the full log decodes to. Sync interval and stamp shapes come
// from the input too, so sync-point placement, width growth, width shrink
// and zeroed components all get exercised.
func FuzzDeltaRoundTrip(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10})
	f.Add(bytes.Repeat([]byte{0xff, 0x00, 0x41}, 40))
	f.Fuzz(func(t *testing.T, data []byte) {
		// Decode a computation from the raw bytes: first byte picks the
		// sync interval, then 4-byte groups become (thread, object, op,
		// component-count) with vector values pulled from the tail.
		sync := 1
		if len(data) > 0 {
			sync = int(data[0]%9) - 1 // -1..7: exercises the <1 clamp too
			data = data[1:]
		}
		tr := event.NewTrace()
		var stamps []vclock.Vector
		for len(data) >= 4 && tr.Len() < 200 {
			tid := event.ThreadID(data[0] % 6)
			oid := event.ObjectID(data[1] % 6)
			op := event.Op(data[2] % 2)
			width := int(data[3] % 12)
			data = data[4:]
			v := make(vclock.Vector, width)
			for i := 0; i < width && len(data) > 0; i++ {
				v[i] = uint64(data[0])
				if data[0]%3 == 0 {
					v[i] = 0 // sprinkle zeros so trimming paths run
				}
				data = data[1:]
			}
			tr.Append(tid, oid, op)
			stamps = append(stamps, v)
		}

		var full, delta bytes.Buffer
		if err := WriteAll(&full, tr, stamps); err != nil {
			t.Fatalf("full write: %v", err)
		}
		dw := NewDeltaWriterSync(&delta, sync)
		for i := 0; i < tr.Len(); i++ {
			if err := dw.Append(tr.At(i), stamps[i]); err != nil {
				t.Fatalf("delta write: %v", err)
			}
		}
		if err := dw.Flush(); err != nil {
			t.Fatal(err)
		}

		fTr, fStamps, err := ReadAll(&full)
		if err != nil {
			t.Fatalf("full read: %v", err)
		}
		dTr, dStamps, err := ReadAll(&delta)
		if err != nil {
			t.Fatalf("delta read: %v", err)
		}
		if fTr.Len() != dTr.Len() || fTr.Len() != tr.Len() {
			t.Fatalf("lengths diverge: input %d, full %d, delta %d", tr.Len(), fTr.Len(), dTr.Len())
		}
		for i := 0; i < fTr.Len(); i++ {
			if fTr.At(i) != dTr.At(i) {
				t.Fatalf("event %d: full %+v, delta %+v", i, fTr.At(i), dTr.At(i))
			}
			if !fStamps[i].Equal(dStamps[i]) {
				t.Fatalf("stamp %d: full %v, delta %v", i, fStamps[i], dStamps[i])
			}
			if !fStamps[i].Equal(stamps[i]) {
				t.Fatalf("stamp %d: decoded %v, wrote %v", i, fStamps[i], stamps[i])
			}
		}
	})
}
