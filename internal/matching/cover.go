package matching

import (
	"fmt"
	"sort"

	"mixedclock/internal/bipartite"
)

// Cover is a vertex cover of a thread–object bipartite graph: every edge has
// at least one endpoint in the cover. Produced by KonigCover it is minimum,
// with Size() equal to the maximum matching size (König–Egerváry theorem).
type Cover struct {
	// Threads and Objects are the cover members on each side, sorted
	// ascending.
	Threads []int
	Objects []int
}

// Size returns the total number of cover vertices.
func (c *Cover) Size() int { return len(c.Threads) + len(c.Objects) }

// HasThread reports whether thread t is in the cover.
func (c *Cover) HasThread(t int) bool { return containsSorted(c.Threads, t) }

// HasObject reports whether object o is in the cover.
func (c *Cover) HasObject(o int) bool { return containsSorted(c.Objects, o) }

func containsSorted(xs []int, x int) bool {
	i := sort.SearchInts(xs, x)
	return i < len(xs) && xs[i] == x
}

// String renders the cover in the paper's notation, e.g. "{T2, O2, O3}".
func (c *Cover) String() string {
	parts := make([]string, 0, c.Size())
	for _, t := range c.Threads {
		parts = append(parts, fmt.Sprintf("T%d", t+1))
	}
	for _, o := range c.Objects {
		parts = append(parts, fmt.Sprintf("O%d", o+1))
	}
	out := "{"
	for i, p := range parts {
		if i > 0 {
			out += ", "
		}
		out += p
	}
	return out + "}"
}

// Verify checks that c covers every edge of g. It returns nil for a valid
// cover.
func (c *Cover) Verify(g *bipartite.Graph) error {
	inT := make(map[int]bool, len(c.Threads))
	for _, t := range c.Threads {
		inT[t] = true
	}
	inO := make(map[int]bool, len(c.Objects))
	for _, o := range c.Objects {
		inO[o] = true
	}
	for _, e := range g.EdgeList() {
		if !inT[e.Thread] && !inO[e.Object] {
			return fmt.Errorf("matching: edge (%d, %d) uncovered", e.Thread, e.Object)
		}
	}
	return nil
}

// KonigCover converts a maximum matching into a minimum vertex cover using
// the constructive proof of the König–Egerváry theorem, exactly as lines 3–9
// of the paper's Algorithm 1:
//
//	S := unmatched threads
//	Z := S ∪ {vertices reachable from S via alternating paths}
//	cover := (Threads − Z) ∪ (Objects ∩ Z)
//
// Alternating paths leave a thread over a non-matching edge and return from
// an object over its matching edge. The resulting cover's size equals
// m.Size(); callers may assert that via Verify and Size.
func KonigCover(g *bipartite.Graph, m *Matching) *Cover {
	n := g.NThreads()
	inZT := make([]bool, n)            // threads in Z
	inZO := make([]bool, g.NObjects()) // objects in Z

	// BFS from every unmatched thread along alternating paths.
	queue := make([]int, 0, n)
	for t := 0; t < n; t++ {
		if m.ThreadMatch[t] == unmatched {
			inZT[t] = true
			queue = append(queue, t)
		}
	}
	for head := 0; head < len(queue); head++ {
		t := queue[head]
		for _, o := range g.ThreadNeighbors(t) {
			// Skip the matched edge out of t: alternating paths leave
			// threads via non-matching edges only. (For unmatched t every
			// incident edge qualifies.)
			if m.ThreadMatch[t] == o {
				continue
			}
			if inZO[o] {
				continue
			}
			inZO[o] = true
			nt := m.ObjectMatch[o]
			if nt != unmatched && !inZT[nt] {
				inZT[nt] = true
				queue = append(queue, nt)
			}
		}
	}

	cover := &Cover{}
	for t := 0; t < n; t++ {
		// T − Z: unmatched threads are all in Z (they seed it), so every
		// cover thread is matched, as the minimality proof requires.
		if !inZT[t] {
			cover.Threads = append(cover.Threads, t)
		}
	}
	for o := range inZO {
		if inZO[o] {
			cover.Objects = append(cover.Objects, o)
		}
	}
	// Threads and object indices were appended in ascending order already,
	// but sort defensively so HasThread/HasObject stay correct if the
	// construction changes.
	sort.Ints(cover.Threads)
	sort.Ints(cover.Objects)
	return cover
}

// MinVertexCover computes a minimum vertex cover of g directly:
// Hopcroft–Karp followed by KonigCover. This is the paper's Algorithm 1.
func MinVertexCover(g *bipartite.Graph) *Cover {
	return KonigCover(g, HopcroftKarp(g))
}

// GreedyCover computes a (not necessarily minimum) vertex cover by repeatedly
// taking the highest-degree vertex among uncovered edges. It is the classic
// fallback when an exact algorithm is too slow, and the evaluation uses it to
// show how much optimality buys over a cheap heuristic.
func GreedyCover(g *bipartite.Graph) *Cover {
	degT := make([]int, g.NThreads())
	degO := make([]int, g.NObjects())
	for t := range degT {
		degT[t] = g.ThreadDegree(t)
	}
	for o := range degO {
		degO[o] = g.ObjectDegree(o)
	}
	covered := make(map[bipartite.Edge]bool, g.Edges())
	remaining := g.Edges()
	cover := &Cover{}
	inT := make([]bool, g.NThreads())
	inO := make([]bool, g.NObjects())

	for remaining > 0 {
		// Pick the globally highest-degree uncovered vertex; ties go to
		// threads, then to lower indices, for determinism.
		bestSide, bestV, bestDeg := bipartite.Threads, -1, 0
		for t, d := range degT {
			if !inT[t] && d > bestDeg {
				bestSide, bestV, bestDeg = bipartite.Threads, t, d
			}
		}
		for o, d := range degO {
			if !inO[o] && d > bestDeg {
				bestSide, bestV, bestDeg = bipartite.Objects, o, d
			}
		}
		if bestV < 0 {
			break // no uncovered edges remain (should not happen)
		}
		if bestSide == bipartite.Threads {
			inT[bestV] = true
			cover.Threads = append(cover.Threads, bestV)
			for _, o := range g.ThreadNeighbors(bestV) {
				e := bipartite.Edge{Thread: bestV, Object: o}
				if !covered[e] {
					covered[e] = true
					remaining--
					degO[o]--
					degT[bestV]--
				}
			}
		} else {
			inO[bestV] = true
			cover.Objects = append(cover.Objects, bestV)
			for _, t := range g.ObjectNeighbors(bestV) {
				e := bipartite.Edge{Thread: t, Object: bestV}
				if !covered[e] {
					covered[e] = true
					remaining--
					degT[t]--
					degO[bestV]--
				}
			}
		}
	}
	sort.Ints(cover.Threads)
	sort.Ints(cover.Objects)
	return cover
}
