package experiment

import (
	"fmt"
	"math/rand"

	"mixedclock/internal/baseline"
	"mixedclock/internal/bipartite"
	"mixedclock/internal/clock"
	"mixedclock/internal/core"
	"mixedclock/internal/matching"
	"mixedclock/internal/trace"
)

// Ablations beyond the paper's four figures. DESIGN.md lists these as the
// design-choice experiments: how the mixed clock behaves on structured
// workloads rather than random graphs, how sensitive the online mechanisms
// are to reveal order, and where the Hybrid thresholds should sit.

// WorkloadClockSizes compares clock sizes across the built-in workload
// families: classical thread- and object-based clocks, the chain-clock
// baseline, the offline optimal mixed clock, and the online Popularity
// mixed clock. One Result with workload index on the x-axis (see
// WorkloadNames for labels).
func WorkloadClockSizes(threads, objects, events, trials int, seed int64) (*Result, []string, error) {
	if trials <= 0 {
		trials = 5
	}
	workloads := trace.Workloads()
	names := make([]string, len(workloads))
	r := &Result{
		Title:  fmt.Sprintf("Clock sizes by workload (%d threads, %d objects, %d events)", threads, objects, events),
		XLabel: "workload",
		YLabel: "components",
		Series: []Series{
			{Name: "thread-based", Values: make([]float64, len(workloads))},
			{Name: "object-based", Values: make([]float64, len(workloads))},
			{Name: "chain", Values: make([]float64, len(workloads))},
			{Name: seriesPopularity, Values: make([]float64, len(workloads))},
			{Name: seriesOffline, Values: make([]float64, len(workloads))},
		},
	}
	cfg := trace.Config{Threads: threads, Objects: objects, Events: events}
	for wi, w := range workloads {
		names[wi] = w.String()
		r.X = append(r.X, float64(wi))
		var sums [5]float64
		for trial := 0; trial < trials; trial++ {
			rng := trialRng(seed, wi, trial)
			tr, err := trace.Generate(w, cfg, rng)
			if err != nil {
				return nil, nil, fmt.Errorf("experiment: workload %v: %w", w, err)
			}
			// Classical sizes count active entities (those appearing in the
			// computation), matching how the online naive mechanisms grow.
			sums[0] += float64(tr.Threads())
			sums[1] += float64(tr.Objects())
			cc := baseline.NewChainClock()
			clock.Run(tr, cc)
			sums[2] += float64(cc.Components())
			oc := core.NewOnlineMixedClock(core.Popularity{})
			clock.Run(tr, oc)
			sums[3] += float64(oc.Components())
			sums[4] += float64(core.AnalyzeTrace(tr).VectorSize())
		}
		for si := range r.Series {
			r.Series[si].Values[wi] = sums[si] / float64(trials)
		}
	}
	return r, names, nil
}

// RevealOrderSensitivity measures how much the Popularity mechanism's final
// size varies across random reveal orders of the same graph: for each
// density, the min, mean and max size over `orders` shuffles. The offline
// optimum (order-independent) is included as the floor.
func RevealOrderSensitivity(nodes int, densities []float64, orders int, seed int64) (*Result, error) {
	if orders <= 0 {
		orders = 20
	}
	if len(densities) == 0 {
		densities = []float64{0.02, 0.05, 0.1, 0.2}
	}
	r := &Result{
		Title:  fmt.Sprintf("Popularity size vs reveal order (%d nodes/side, %d orders)", nodes, orders),
		XLabel: "density",
		YLabel: "vector clock size",
		Series: []Series{
			{Name: "pop-min", Values: make([]float64, len(densities))},
			{Name: "pop-mean", Values: make([]float64, len(densities))},
			{Name: "pop-max", Values: make([]float64, len(densities))},
			{Name: seriesOffline, Values: make([]float64, len(densities))},
		},
	}
	for i, d := range densities {
		rng := trialRng(seed, i, 0)
		g, err := bipartite.Generate(bipartite.GenConfig{
			NThreads: nodes, NObjects: nodes, Density: d,
		}, rng)
		if err != nil {
			return nil, err
		}
		minSize, maxSize, sum := int(^uint(0)>>1), 0, 0
		for k := 0; k < orders; k++ {
			size := core.SimulateCover(g.RevealOrder(rng), core.Popularity{})
			if size < minSize {
				minSize = size
			}
			if size > maxSize {
				maxSize = size
			}
			sum += size
		}
		r.X = append(r.X, d)
		r.Series[0].Values[i] = float64(minSize)
		r.Series[1].Values[i] = float64(sum) / float64(orders)
		r.Series[2].Values[i] = float64(maxSize)
		r.Series[3].Values[i] = float64(core.Analyze(g).VectorSize())
	}
	return r, nil
}

// HybridThresholdSweep evaluates the Hybrid mechanism's density threshold:
// for each candidate threshold, the mean final size across a mixed bag of
// sparse and dense graphs. It demonstrates the conclusion's advice — start
// with Popularity, switch to Naive when the revealed graph gets dense.
func HybridThresholdSweep(nodes int, thresholds []float64, trials int, seed int64) (*Result, error) {
	if trials <= 0 {
		trials = 5
	}
	if len(thresholds) == 0 {
		thresholds = []float64{0.05, 0.1, 0.2, 0.4, 0.8}
	}
	// The bag mixes the density regimes from Fig. 4 where different
	// mechanisms win.
	densities := []float64{0.02, 0.05, 0.1, 0.3, 0.6}
	r := &Result{
		Title:  fmt.Sprintf("Hybrid density-threshold sweep (%d nodes/side)", nodes),
		XLabel: "density threshold",
		YLabel: "mean vector clock size",
		Series: []Series{
			{Name: "hybrid", Values: make([]float64, len(thresholds))},
			{Name: seriesNaive, Values: make([]float64, len(thresholds))},
			{Name: seriesPopularity, Values: make([]float64, len(thresholds))},
		},
	}
	for ti, th := range thresholds {
		var sums [3]float64
		count := 0
		for di, d := range densities {
			for trial := 0; trial < trials; trial++ {
				// Keyed by (density, trial) only, so every threshold sees
				// the same graphs and only the hybrid series varies.
				rng := trialRng(seed, di, trial)
				g, err := bipartite.Generate(bipartite.GenConfig{
					NThreads: nodes, NObjects: nodes, Density: d,
				}, rng)
				if err != nil {
					return nil, err
				}
				order := g.RevealOrder(rng)
				h := core.Hybrid{Primary: core.Popularity{}, Fallback: core.NaiveThreads{},
					MaxDensity: th, MaxNodes: 1 << 30}
				sums[0] += float64(core.SimulateCover(order, h))
				sums[1] += float64(core.SimulateCover(order, core.NaiveThreads{}))
				sums[2] += float64(core.SimulateCover(order, core.Popularity{}))
				count++
			}
		}
		r.X = append(r.X, th)
		for si := range sums {
			r.Series[si].Values[ti] = sums[si] / float64(count)
		}
	}
	return r, nil
}

// GreedyVsOptimal quantifies what optimality buys: mean cover size of the
// greedy heuristic vs the exact König cover across densities.
func GreedyVsOptimal(nodes int, densities []float64, trials int, seed int64) (*Result, error) {
	if trials <= 0 {
		trials = 5
	}
	if len(densities) == 0 {
		densities = []float64{0.02, 0.05, 0.1, 0.2, 0.4}
	}
	r := &Result{
		Title:  fmt.Sprintf("Greedy cover vs optimal (%d nodes/side)", nodes),
		XLabel: "density",
		YLabel: "cover size",
		Series: []Series{
			{Name: "greedy", Values: make([]float64, len(densities))},
			{Name: seriesOffline, Values: make([]float64, len(densities))},
		},
	}
	for i, d := range densities {
		var greedySum, optSum float64
		for trial := 0; trial < trials; trial++ {
			rng := trialRng(seed, i, trial)
			g, err := bipartite.Generate(bipartite.GenConfig{
				NThreads: nodes, NObjects: nodes, Density: d,
			}, rng)
			if err != nil {
				return nil, err
			}
			greedySum += float64(matching.GreedyCover(g).Size())
			optSum += float64(core.Analyze(g).VectorSize())
		}
		r.X = append(r.X, d)
		r.Series[0].Values[i] = greedySum / float64(trials)
		r.Series[1].Values[i] = optSum / float64(trials)
	}
	return r, nil
}

// SizeHistogram builds a histogram of optimal sizes across many random
// graphs at one configuration — a distributional view the paper's mean
// curves hide.
func SizeHistogram(nodes int, density float64, samples int, seed int64) (map[int]int, error) {
	if samples <= 0 {
		samples = 50
	}
	hist := make(map[int]int)
	for k := 0; k < samples; k++ {
		rng := rand.New(rand.NewSource(seed + int64(k)))
		g, err := bipartite.Generate(bipartite.GenConfig{
			NThreads: nodes, NObjects: nodes, Density: density,
		}, rng)
		if err != nil {
			return nil, err
		}
		hist[core.Analyze(g).VectorSize()]++
	}
	return hist, nil
}
