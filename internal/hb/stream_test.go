package hb_test

import (
	"math/rand"
	"testing"

	"mixedclock/internal/clock"
	"mixedclock/internal/core"
	"mixedclock/internal/hb"
	"mixedclock/internal/trace"
)

// TestRecentMatchesOracle streams every generator workload's stamps into a
// windowed Recent index and checks each answerable pair against the bitset
// Oracle: within the window the streaming index must agree exactly with the
// offline ground truth, and outside it must refuse (ok=false), never guess.
func TestRecentMatchesOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	for _, w := range trace.Workloads() {
		for _, window := range []int{0, 16} {
			tr, err := trace.Generate(w, trace.Config{Threads: 5, Objects: 6, Events: 120, ReadFraction: 0.3}, rng)
			if err != nil {
				t.Fatal(err)
			}
			stamps := clock.Run(tr, core.AnalyzeTrace(tr).NewClock())
			oracle := hb.New(tr)
			r := hb.NewRecent(window)
			for _, v := range stamps {
				r.Add(0, v)
			}
			if window > 0 && r.Len() != window {
				t.Fatalf("%v: retained %d, want %d", w, r.Len(), window)
			}
			for i := 0; i < tr.Len(); i++ {
				for j := 0; j < tr.Len(); j++ {
					gotHB, ok := r.HappenedBefore(i, j)
					inWindow := i >= r.Lo() && j >= r.Lo()
					if ok != inWindow {
						t.Fatalf("%v window=%d (%d,%d): ok=%v, in-window=%v", w, window, i, j, ok, inWindow)
					}
					if !ok {
						continue
					}
					if want := oracle.HappenedBefore(i, j); gotHB != want {
						t.Fatalf("%v window=%d: HappenedBefore(%d,%d)=%v, oracle %v", w, window, i, j, gotHB, want)
					}
					gotC, _ := r.Concurrent(i, j)
					if want := oracle.Concurrent(i, j); gotC != want {
						t.Fatalf("%v window=%d: Concurrent(%d,%d)=%v, oracle %v", w, window, i, j, gotC, want)
					}
				}
			}
		}
	}
}

// TestRecentEpochBarrier checks that events in different epochs are always
// reported ordered by epoch, regardless of their raw stamps.
func TestRecentEpochBarrier(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	tr, err := trace.Generate(trace.Uniform, trace.Config{Threads: 3, Objects: 3, Events: 20}, rng)
	if err != nil {
		t.Fatal(err)
	}
	stamps := clock.Run(tr, core.AnalyzeTrace(tr).NewClock())
	r := hb.NewRecent(0)
	for i, v := range stamps {
		epoch := 0
		if i >= 10 {
			epoch = 1 // pretend a Compact barrier ran at index 10
		}
		r.Add(epoch, v)
	}
	for i := 0; i < 10; i++ {
		for j := 10; j < 20; j++ {
			if got, ok := r.HappenedBefore(i, j); !ok || !got {
				t.Fatalf("cross-epoch (%d,%d) must be ordered (got %v ok=%v)", i, j, got, ok)
			}
			if got, ok := r.HappenedBefore(j, i); !ok || got {
				t.Fatalf("cross-epoch (%d,%d) reversed must be unordered", j, i)
			}
			if conc, ok := r.Concurrent(i, j); !ok || conc {
				t.Fatalf("cross-epoch (%d,%d) must not be concurrent", i, j)
			}
		}
	}
}
