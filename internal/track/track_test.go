package track

import (
	"sync"
	"testing"

	"mixedclock/internal/clock"
	"mixedclock/internal/core"
	"mixedclock/internal/event"
)

func TestSingleThreadSequence(t *testing.T) {
	tr := NewTracker()
	th := tr.NewThread("main")
	o := tr.NewObject("x")

	var x int
	s1 := th.Write(o, func() { x = 1 })
	s2 := th.Write(o, func() { x = 2 })
	s3 := th.Read(o, nil)

	if x != 2 {
		t.Fatalf("x = %d, want 2", x)
	}
	if !s1.HappenedBefore(s2) || !s2.HappenedBefore(s3) {
		t.Fatal("program order not captured")
	}
	if s1.Concurrent(s2) {
		t.Fatal("sequential events reported concurrent")
	}
	if tr.Events() != 3 {
		t.Fatalf("Events = %d, want 3", tr.Events())
	}
	if err := tr.Err(); err != nil {
		t.Fatal(err)
	}
}

func TestCrossThreadCausalityThroughObject(t *testing.T) {
	tr := NewTracker()
	producer := tr.NewThread("producer")
	consumer := tr.NewThread("consumer")
	q := tr.NewObject("queue")

	// Run the consumer strictly after the producer via channel handoff, so
	// the object order q: produce → consume is also the real-time order.
	type msg struct{}
	ready := make(chan msg)
	var produced, consumed Stamped
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		produced = producer.Write(q, nil)
		ready <- msg{}
	}()
	go func() {
		defer wg.Done()
		<-ready
		consumed = consumer.Write(q, nil)
	}()
	wg.Wait()

	if !produced.HappenedBefore(consumed) {
		t.Fatalf("produce %v should precede consume %v", produced.Vector(), consumed.Vector())
	}
}

func TestConcurrentOperationsAreConcurrent(t *testing.T) {
	tr := NewTracker()
	a := tr.NewThread("a")
	b := tr.NewThread("b")
	oa := tr.NewObject("xa")
	ob := tr.NewObject("xb")

	// Two threads on disjoint objects never communicate: all cross-thread
	// pairs must be concurrent regardless of scheduling.
	var wg sync.WaitGroup
	wg.Add(2)
	var sa, sb []Stamped
	go func() {
		defer wg.Done()
		for i := 0; i < 10; i++ {
			sa = append(sa, a.Write(oa, nil))
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 10; i++ {
			sb = append(sb, b.Write(ob, nil))
		}
	}()
	wg.Wait()

	for _, x := range sa {
		for _, y := range sb {
			if !x.Concurrent(y) {
				t.Fatalf("%v and %v should be concurrent", x.Event, y.Event)
			}
		}
	}
}

func TestRecordedTraceIsValid(t *testing.T) {
	// Hammer a tracker from several goroutines, then check the recorded
	// stamps form a valid vector clock for the recorded trace.
	mechs := map[string]core.Mechanism{
		"hybrid":     core.NewHybrid(),
		"popularity": core.Popularity{},
		"naive":      core.NaiveThreads{},
	}
	for name, mech := range mechs {
		name, mech := name, mech
		t.Run(name, func(t *testing.T) {
			tr := NewTracker(WithMechanism(mech))
			const nThreads, nObjects, opsPer = 8, 6, 40
			objects := make([]*Object, nObjects)
			for i := range objects {
				objects[i] = tr.NewObject("obj")
			}
			var wg sync.WaitGroup
			for i := 0; i < nThreads; i++ {
				th := tr.NewThread("worker")
				wg.Add(1)
				go func(k int) {
					defer wg.Done()
					for j := 0; j < opsPer; j++ {
						th.Write(objects[(k+j*j)%nObjects], nil)
					}
				}(i)
			}
			wg.Wait()

			if tr.Events() != nThreads*opsPer {
				t.Fatalf("Events = %d, want %d", tr.Events(), nThreads*opsPer)
			}
			if err := tr.Err(); err != nil {
				t.Fatal(err)
			}
			if err := clock.Validate(tr.Trace(), tr.Stamps(), name); err != nil {
				t.Fatal(err)
			}
			// Only the naive mechanism bounds the size by the thread count;
			// popularity/hybrid may overshoot (the paper's Fig. 4 effect).
			// Every mechanism is bounded by threads + objects.
			if name == "naive" && tr.Size() > nThreads {
				t.Fatalf("naive clock size %d exceeds thread count %d", tr.Size(), nThreads)
			}
			if tr.Size() > nThreads+nObjects {
				t.Fatalf("clock size %d exceeds all vertices under %s", tr.Size(), name)
			}
		})
	}
}

func TestMixedTrackerBeatsNaiveOnSkewedWorkload(t *testing.T) {
	// Many threads funnel through three shared hot objects and touch
	// nothing else: the optimal cover is the three objects, so popularity
	// should land near 3 while naive pays one component per thread.
	run := func(mech core.Mechanism) int {
		tr := NewTracker(WithMechanism(mech))
		hots := []*Object{tr.NewObject("h0"), tr.NewObject("h1"), tr.NewObject("h2")}
		const n = 12
		var wg sync.WaitGroup
		for i := 0; i < n; i++ {
			th := tr.NewThread("w")
			wg.Add(1)
			go func(k int) {
				defer wg.Done()
				for j := 0; j < 20; j++ {
					th.Write(hots[(k+j)%len(hots)], nil)
				}
			}(i)
		}
		wg.Wait()
		if err := tr.Err(); err != nil {
			t.Fatal(err)
		}
		return tr.Size()
	}
	naive := run(core.NaiveThreads{})
	pop := run(core.Popularity{})
	if naive != 12 {
		t.Fatalf("naive size = %d, want 12", naive)
	}
	// The optimum is 3 (the hot objects); popularity pays a few early
	// tie-breaks to threads before the objects become popular, and the
	// exact count varies with goroutine scheduling. It must still be well
	// below naive's 12.
	if pop > 9 {
		t.Fatalf("popularity size %d should be well below naive %d on funnel workload", pop, naive)
	}
}

func TestTrackerCrossUsePanics(t *testing.T) {
	t1 := NewTracker()
	t2 := NewTracker()
	th := t1.NewThread("a")
	o := t2.NewObject("x")
	defer func() {
		if recover() == nil {
			t.Fatal("cross-tracker Do did not panic")
		}
	}()
	th.Write(o, nil)
}

func TestNestedDo(t *testing.T) {
	tr := NewTracker()
	th := tr.NewThread("main")
	outer := tr.NewObject("outer")
	inner := tr.NewObject("inner")

	var innerStamp Stamped
	outerStamp := th.Write(outer, func() {
		innerStamp = th.Write(inner, nil)
	})
	// The inner operation commits first and precedes the outer one in
	// program order.
	if !innerStamp.HappenedBefore(outerStamp) {
		t.Fatalf("inner %v should precede outer %v", innerStamp.Vector(), outerStamp.Vector())
	}
	if err := clock.Validate(tr.Trace(), tr.Stamps(), "nested"); err != nil {
		t.Fatal(err)
	}
}

func TestAccessors(t *testing.T) {
	tr := NewTracker()
	th := tr.NewThread("worker-1")
	o := tr.NewObject("account")
	if th.Name() != "worker-1" || o.Name() != "account" {
		t.Error("names not kept")
	}
	if th.ID() != 0 || o.ID() != 0 {
		t.Error("dense IDs expected")
	}
	s := th.Write(o, nil)
	if s.Event.Thread != th.ID() || s.Event.Object != o.ID() {
		t.Error("stamped event mismatched")
	}
	comps := tr.Components()
	if len(comps) != 1 {
		t.Fatalf("components = %v", comps)
	}
	if s.Event.Op != event.OpWrite {
		t.Error("op not recorded")
	}
}

func TestStampsAndTraceAreCopies(t *testing.T) {
	tr := NewTracker()
	th := tr.NewThread("t")
	o := tr.NewObject("o")
	th.Write(o, nil)

	stamps := tr.Stamps()
	if len(stamps) != 1 {
		t.Fatal("missing stamp")
	}
	stamps[0] = stamps[0].Set(0, 99)
	if tr.Stamps()[0].At(0) == 99 {
		t.Fatal("Stamps leaked internal storage")
	}
}
