// Shipper cursor: the consumer half of the catalog protocol.
//
// A tracker publishes catalog.json after every seal, compaction and
// retention pass; an external shipper's job is to mirror the listed segment
// files somewhere durable before retention retires them. Shipper does the
// mechanical part — tail the catalog, copy and verify the new segments,
// persist a cursor recording how far shipping got — so a crash on either
// side resumes from the cursor instead of re-copying history.
package track

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"io/fs"
	"path/filepath"

	"mixedclock/internal/tlog"
	"mixedclock/internal/vfs"
)

// ErrCatalogBehind reports that the source catalog has not yet reached the
// generation ConsumeUpTo was asked to consume — the shipper should poll
// again later.
var ErrCatalogBehind = errors.New("track: catalog generation behind")

// Shipper copies a tracker's sealed segments out of its spill directory
// (Src) into a destination directory (Dst), incrementally, driven by the
// published catalog. The zero value is not usable; set both directories.
// Methods are not safe for concurrent use on one Shipper, but any number of
// Shippers (and the tracker itself) may work the same Src concurrently —
// the catalog protocol is read-only on Src except for the cursor file.
type Shipper struct {
	// Src is the tracker's spill directory: catalog.json plus segment
	// files, and where the shipper's cursor file is kept.
	Src string
	// Dst is the mirror directory, created on first use. After a ship it
	// holds the copied segments plus the catalog document that listed them,
	// so Dst is itself a valid directory for track.Open or offline tools.
	Dst string
	// FS is the filesystem both directories are accessed through; nil means
	// vfs.OS. Fault-injection tests substitute vfs.Faulty.
	FS vfs.FS
}

// fsys returns the shipper's filesystem, defaulting to the real one.
func (s *Shipper) fsys() vfs.FS {
	if s.FS != nil {
		return s.FS
	}
	return vfs.OS
}

// ShipReport describes one ConsumeUpTo pass.
type ShipReport struct {
	// Generation is the catalog generation the pass consumed (and the
	// cursor now records).
	Generation int64
	// SealedEvents and ShippedEvents are the source catalog's sealed extent
	// and how far shipping had gotten before this pass.
	SealedEvents  int
	ShippedEvents int
	// Copied lists the segment files this pass copied (already-mirrored
	// files are skipped).
	Copied []string
}

// ConsumeUpTo ships everything the source catalog lists, provided the
// catalog has reached at least the given generation (pass 0 to take
// whatever is current). Each listed segment file missing from Dst — or
// covering events past the cursor — is copied through a temp file, verified
// against the catalog's size and SHA-256, and renamed into place; the
// catalog document itself is mirrored last, so Dst always lists only files
// it already holds. Finally the cursor file in Src is atomically updated to
// the consumed generation. Returns ErrCatalogBehind (wrapped) when the
// catalog is still older than requested.
func (s *Shipper) ConsumeUpTo(generation int64) (*ShipReport, error) {
	if s.Src == "" || s.Dst == "" {
		return nil, fmt.Errorf("track: shipper needs both Src and Dst")
	}
	fsys := s.fsys()
	f, err := fsys.Open(filepath.Join(s.Src, tlog.CatalogFileName))
	if err != nil {
		return nil, fmt.Errorf("track: shipping: %w", err)
	}
	c, err := tlog.DecodeCatalog(f)
	f.Close()
	if err != nil {
		return nil, fmt.Errorf("track: shipping: %w", err)
	}
	if c.Generation < generation {
		return nil, fmt.Errorf("track: shipping: catalog at generation %d, want %d: %w",
			c.Generation, generation, ErrCatalogBehind)
	}
	cursor, err := s.readCursor()
	if err != nil {
		return nil, err
	}
	if cursor.Generation > c.Generation {
		return nil, fmt.Errorf("track: shipping: cursor at generation %d is ahead of catalog generation %d",
			cursor.Generation, c.Generation)
	}
	if err := fsys.MkdirAll(s.Dst); err != nil {
		return nil, fmt.Errorf("track: shipping: %w", err)
	}
	rep := &ShipReport{
		Generation:    c.Generation,
		SealedEvents:  c.SealedEvents,
		ShippedEvents: cursor.ShippedEvents,
	}
	for _, entry := range c.Segments {
		if entry.Path == "" {
			return nil, fmt.Errorf("track: shipping: segment %d..%d has no spill file",
				entry.FirstIndex, entry.FirstIndex+entry.Events)
		}
		dst := filepath.Join(s.Dst, entry.Path)
		// Below the cursor and already mirrored: compaction may have merged
		// the covering files since, so only the name check is meaningful.
		if entry.FirstIndex+entry.Events <= cursor.ShippedEvents {
			if _, err := fsys.Stat(dst); err == nil {
				continue
			}
		}
		data, err := vfs.ReadFile(fsys, filepath.Join(s.Src, entry.Path))
		if err != nil {
			return nil, fmt.Errorf("track: shipping %s: %w", entry.Path, err)
		}
		if int64(len(data)) != entry.Bytes {
			return nil, fmt.Errorf("track: shipping %s: file holds %d bytes, catalog says %d",
				entry.Path, len(data), entry.Bytes)
		}
		if entry.SHA256 != "" {
			sum := sha256.Sum256(data)
			if hex.EncodeToString(sum[:]) != entry.SHA256 {
				return nil, fmt.Errorf("track: shipping %s: content hash mismatch", entry.Path)
			}
		}
		if err := writeFileSync(fsys, s.Dst, entry.Path, data); err != nil {
			return nil, fmt.Errorf("track: shipping %s: %w", entry.Path, err)
		}
		rep.Copied = append(rep.Copied, entry.Path)
	}
	// Mirror the catalog document itself (sans the live run's health — the
	// mirror is a faithful copy of the listing we just shipped), making Dst
	// self-describing and openable.
	var doc bytes.Buffer
	if err := tlog.EncodeCatalog(&doc, c); err != nil {
		return nil, fmt.Errorf("track: shipping catalog: %w", err)
	}
	if err := writeFileSync(fsys, s.Dst, tlog.CatalogFileName, doc.Bytes()); err != nil {
		return nil, fmt.Errorf("track: shipping catalog: %w", err)
	}
	cursor = tlog.ShipCursor{
		FormatVersion: tlog.ShipCursorFormatVersion,
		Generation:    c.Generation,
		ShippedEvents: c.SealedEvents,
	}
	var enc bytes.Buffer
	if err := tlog.EncodeShipCursor(&enc, &cursor); err != nil {
		return nil, fmt.Errorf("track: shipping: %w", err)
	}
	if err := writeFileSync(fsys, s.Src, tlog.ShipCursorFileName, enc.Bytes()); err != nil {
		return nil, fmt.Errorf("track: shipping: persisting cursor: %w", err)
	}
	return rep, nil
}

// readCursor loads the shipper's cursor from Src; a missing file is a zero
// cursor (nothing shipped yet).
func (s *Shipper) readCursor() (tlog.ShipCursor, error) {
	f, err := s.fsys().Open(filepath.Join(s.Src, tlog.ShipCursorFileName))
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return tlog.ShipCursor{FormatVersion: tlog.ShipCursorFormatVersion}, nil
		}
		return tlog.ShipCursor{}, fmt.Errorf("track: shipping: %w", err)
	}
	defer f.Close()
	c, err := tlog.DecodeShipCursor(f)
	if err != nil {
		return tlog.ShipCursor{}, fmt.Errorf("track: shipping: cursor: %w", err)
	}
	return *c, nil
}
