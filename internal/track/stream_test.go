package track

import (
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"mixedclock/internal/clock"
	"mixedclock/internal/event"
	"mixedclock/internal/tlog"
	"mixedclock/internal/trace"
	"mixedclock/internal/vclock"
)

// replayTrace drives a generated trace through a live tracker, one
// registered Thread per trace thread, in trace order. compactAt < 0 means
// never compact.
func replayTrace(t *testing.T, tr *Tracker, src *event.Trace, compactAt int) {
	t.Helper()
	threads := make([]*Thread, src.Threads())
	for i := range threads {
		threads[i] = tr.NewThread(fmt.Sprintf("t%d", i))
	}
	objects := make([]*Object, src.Objects())
	for i := range objects {
		objects[i] = tr.NewObject(fmt.Sprintf("o%d", i))
	}
	for i := 0; i < src.Len(); i++ {
		if i == compactAt {
			if _, _, err := tr.Compact(); err != nil {
				t.Fatal(err)
			}
		}
		e := src.At(i)
		threads[e.Thread].Do(objects[e.Object], e.Op, nil)
	}
	if err := tr.Err(); err != nil {
		t.Fatal(err)
	}
}

// TestSnapshotToMatchesWriteAllDelta is the pipeline's equivalence property:
// for every generator workload, on both backends, with and without sealing/
// spilling/compaction in the middle, the streaming SnapshotTo must produce
// byte-identical output to materializing Snapshot() and writing it with
// tlog.WriteAllDelta. Bytes, not just decoded equality: the stream path re-
// encodes sealed segments record by record, and any drift in sync-point or
// diff behaviour would silently fork the wire format.
func TestSnapshotToMatchesWriteAllDelta(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for _, wl := range trace.Workloads() {
		src, err := trace.Generate(wl, trace.Config{Threads: 8, Objects: 8, Events: 320}, rng)
		if err != nil {
			t.Fatal(err)
		}
		for _, backend := range []vclock.Backend{vclock.BackendFlat, vclock.BackendTree} {
			for _, mode := range []string{"plain", "sealed"} {
				t.Run(fmt.Sprintf("%v/%v/%s", wl, backend, mode), func(t *testing.T) {
					opts := []Option{WithBackend(backend)}
					compactAt := -1
					if mode == "sealed" {
						opts = append(opts, WithSpill(SpillPolicy{Dir: t.TempDir(), SealEvents: 75}))
						compactAt = src.Len() / 2
					}
					tr := NewTracker(opts...)
					replayTrace(t, tr, src, compactAt)

					full, stamps := tr.Snapshot()
					if full.Len() != src.Len() {
						t.Fatalf("snapshot has %d events, want %d", full.Len(), src.Len())
					}
					var want bytes.Buffer
					if err := tlog.WriteAllDelta(&want, full, stamps); err != nil {
						t.Fatal(err)
					}
					var got bytes.Buffer
					if err := tr.SnapshotTo(&got); err != nil {
						t.Fatal(err)
					}
					if !bytes.Equal(want.Bytes(), got.Bytes()) {
						t.Fatalf("SnapshotTo wrote %d bytes differing from materialize+WriteAllDelta's %d",
							got.Len(), want.Len())
					}
					// The log must decode back to the exact snapshot.
					decTr, decStamps, err := tlog.ReadAll(&got)
					if err != nil {
						t.Fatal(err)
					}
					if decTr.Len() != full.Len() {
						t.Fatalf("decoded %d events, want %d", decTr.Len(), full.Len())
					}
					for i := 0; i < full.Len(); i++ {
						if !decStamps[i].Equal(stamps[i]) {
							t.Fatalf("stamp %d: decoded %v, snapshot %v", i, decStamps[i], stamps[i])
						}
					}
					if err := tr.Err(); err != nil {
						t.Fatal(err)
					}
					validateEpochs(t, tr)
				})
			}
		}
	}
}

// TestSealPreservesSemantics pins that sealing is invisible: two identical
// replays, one sealing aggressively and one never, must agree on every
// stamp, every width, every epoch boundary.
func TestSealPreservesSemantics(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	src, err := trace.Generate(trace.HotSet, trace.Config{Threads: 6, Objects: 6, Events: 260}, rng)
	if err != nil {
		t.Fatal(err)
	}
	plain := NewTracker()
	replayTrace(t, plain, src, 130)
	sealing := NewTracker(WithSpill(SpillPolicy{SealEvents: 40}))
	replayTrace(t, sealing, src, 130)
	if err := sealing.Seal(); err != nil {
		t.Fatal(err)
	}
	if len(sealing.Segments()) < 2 {
		t.Fatalf("sealing tracker produced %d segments", len(sealing.Segments()))
	}

	pTr, pStamps := plain.Snapshot()
	sTr, sStamps := sealing.Snapshot()
	if pTr.Len() != sTr.Len() {
		t.Fatalf("event counts diverge: %d vs %d", pTr.Len(), sTr.Len())
	}
	for i := 0; i < pTr.Len(); i++ {
		if pTr.At(i) != sTr.At(i) {
			t.Fatalf("event %d: %+v vs %+v", i, pTr.At(i), sTr.At(i))
		}
		if !pStamps[i].Equal(sStamps[i]) || len(pStamps[i]) != len(sStamps[i]) {
			t.Fatalf("stamp %d: %v (width %d) vs %v (width %d)",
				i, pStamps[i], len(pStamps[i]), sStamps[i], len(sStamps[i]))
		}
	}
	if got, want := sealing.EpochStarts(), plain.EpochStarts(); len(got) != len(want) || got[1] != want[1] {
		t.Fatalf("epoch starts diverge: %v vs %v", got, want)
	}
}

// TestSpillBoundsAndRestores drives a spilling tracker past several seal
// points and checks the contract end to end: segments land as files, the
// full computation (including spilled history) snapshots back intact and
// valid, and a lazy Stamped.Vector of a long-sealed event reads its spill
// file.
func TestSpillBoundsAndRestores(t *testing.T) {
	dir := t.TempDir()
	tr := NewTracker(WithSpill(SpillPolicy{Dir: dir, SealEvents: 50}))
	a := tr.NewThread("a")
	b := tr.NewThread("b")
	x := tr.NewObject("x")
	y := tr.NewObject("y")
	var early Stamped
	const total = 400
	for i := 0; i < total/2; i++ {
		s := a.Write(x, nil)
		if i == 3 {
			early = s // will be sealed and spilled long before it's read
		}
		if i%3 == 0 {
			b.Write(x, nil)
		} else {
			b.Write(y, nil)
		}
	}
	if err := tr.Err(); err != nil {
		t.Fatal(err)
	}

	segs := tr.Segments()
	if len(segs) < 4 {
		t.Fatalf("only %d segments after %d events at SealEvents=50", len(segs), total)
	}
	var covered int
	for i, sg := range segs {
		if sg.Path == "" {
			t.Fatalf("segment %d not spilled: %+v", i, sg)
		}
		if fi, err := os.Stat(sg.Path); err != nil || fi.Size() != sg.Bytes {
			t.Fatalf("segment file %q: err=%v", sg.Path, err)
		}
		if sg.FirstIndex != covered {
			t.Fatalf("segment %d starts at %d, want %d", i, sg.FirstIndex, covered)
		}
		covered += sg.Events
	}
	if covered < total-100 {
		t.Fatalf("sealed only %d of %d events", covered, total)
	}

	full, stamps := tr.Snapshot()
	if full.Len() != total {
		t.Fatalf("snapshot restored %d events, want %d", full.Len(), total)
	}
	if err := clock.Validate(full, stamps, "spilled"); err != nil {
		t.Fatal(err)
	}
	if got := early.Vector(); !got.Equal(stamps[early.Event.Index]) {
		t.Fatalf("lazy stamp of spilled event %d = %v, want %v",
			early.Event.Index, got, stamps[early.Event.Index])
	}
	if err := tr.Err(); err != nil {
		t.Fatal(err)
	}

	// Destroy the spill files: bulk reads must surface the loss through
	// Err rather than panicking or fabricating history.
	if err := os.RemoveAll(dir); err != nil {
		t.Fatal(err)
	}
	if tr2, _ := tr.Snapshot(); tr2.Len() >= total {
		t.Fatalf("snapshot of destroyed spill dir still returned %d events", tr2.Len())
	}
	if err := tr.Err(); err == nil {
		t.Fatal("destroyed spill dir did not surface through Err")
	}
}

// TestAutoSealFailureDisarms pins the broken-storage behaviour: a failing
// spill surfaces once through Err and disarms auto-sealing (so commits stop
// paying a barrier + failing I/O each), history stays readable from memory,
// and a later successful explicit Seal re-arms the policy.
func TestAutoSealFailureDisarms(t *testing.T) {
	dir := t.TempDir()
	blocked := filepath.Join(dir, "blocked")
	// A regular file where the spill directory should be: MkdirAll fails.
	if err := os.WriteFile(blocked, []byte("in the way"), 0o666); err != nil {
		t.Fatal(err)
	}
	tr := NewTracker(WithSpill(SpillPolicy{Dir: blocked, SealEvents: 10}))
	th := tr.NewThread("t")
	o := tr.NewObject("o")
	for i := 0; i < 50; i++ {
		th.Write(o, nil)
	}
	if err := tr.Err(); err == nil {
		t.Fatal("failing spill did not surface through Err")
	}
	if !tr.sealBroken.Load() {
		t.Fatal("failing auto-seal did not disarm the policy")
	}
	if len(tr.Segments()) != 0 {
		t.Fatalf("segments appeared despite failing spill: %+v", tr.Segments())
	}
	// History is intact in memory.
	full, stamps := tr.Snapshot()
	if full.Len() != 50 {
		t.Fatalf("snapshot has %d events, want 50", full.Len())
	}
	if err := clock.Validate(full, stamps, "after-failed-seal"); err != nil {
		t.Fatal(err)
	}
	// Repair the storage: an explicit Seal succeeds and re-arms.
	if err := os.Remove(blocked); err != nil {
		t.Fatal(err)
	}
	if err := tr.Seal(); err != nil {
		t.Fatal(err)
	}
	if tr.sealBroken.Load() {
		t.Fatal("successful Seal did not re-arm auto-sealing")
	}
	for i := 0; i < 30; i++ {
		th.Write(o, nil)
	}
	if segs := tr.Segments(); len(segs) < 2 {
		t.Fatalf("auto-sealing did not resume after repair: %+v", segs)
	}
}

// TestSealedLazyStamp pins the stampAt path through an in-memory segment:
// a stamp never materialized before Compact must come back exactly as the
// merged table would have had it, width included.
func TestSealedLazyStamp(t *testing.T) {
	tr := NewTracker()
	th := tr.NewThread("t")
	o1 := tr.NewObject("o1")
	o2 := tr.NewObject("o2")
	var collected []Stamped
	for i := 0; i < 20; i++ {
		collected = append(collected, th.Write([]*Object{o1, o2}[i%2], nil))
	}
	stamps := tr.Stamps() // materialize the reference table first
	if _, _, err := tr.Compact(); err != nil {
		t.Fatal(err)
	}
	if segs := tr.Segments(); len(segs) != 1 || segs[0].Path != "" || segs[0].Events != 20 {
		t.Fatalf("Segments after Compact = %+v", segs)
	}
	for i, s := range collected {
		got := s.Vector() // first materialization: replays the sealed segment
		if !got.Equal(stamps[i]) || len(got) != len(stamps[i]) {
			t.Fatalf("sealed stamp %d = %v (width %d), want %v (width %d)",
				i, got, len(got), stamps[i], len(stamps[i]))
		}
	}
	if err := tr.Err(); err != nil {
		t.Fatal(err)
	}
}

// streamCollector is a cloning StampSink used by the race tests.
type streamCollector struct {
	events []event.Event
	epochs []int
	stamps []vclock.Vector
}

func (c *streamCollector) ConsumeStamp(e event.Event, epoch int, v vclock.Vector) error {
	c.events = append(c.events, e)
	c.epochs = append(c.epochs, epoch)
	c.stamps = append(c.stamps, v.Clone())
	return nil
}

// TestStreamRacesCompact hammers the tracker from worker goroutines while
// the main goroutine alternates Compact (which seals) and Stream, with no
// synchronization beyond the tracker's own barriers — the streaming
// counterpart of TestCompactRacesDo, run under -race and -count=3 in CI.
// Every streamed snapshot must be a consistent prefix: dense indices from
// zero, epochs non-decreasing, and each stamp identical to what the final
// materialized history records for that index.
func TestStreamRacesCompact(t *testing.T) {
	tr := NewTracker(WithSpill(SpillPolicy{SealEvents: 64}))
	const nWorkers, nObjects, opsPer, rounds = 8, 5, 300, 6
	objects := make([]*Object, nObjects)
	for i := range objects {
		objects[i] = tr.NewObject("obj")
	}
	var wg sync.WaitGroup
	for w := 0; w < nWorkers; w++ {
		th := tr.NewThread("worker")
		wg.Add(1)
		go func(th *Thread, w int) {
			defer wg.Done()
			for i := 0; i < opsPer; i++ {
				th.Write(objects[(w+i)%nObjects], nil)
			}
		}(th, w)
	}
	var streams []*streamCollector
	for r := 0; r < rounds; r++ {
		if _, _, err := tr.Compact(); err != nil {
			t.Error(err)
			break
		}
		c := &streamCollector{}
		if err := tr.Stream(c); err != nil {
			t.Error(err)
			break
		}
		streams = append(streams, c)
	}
	wg.Wait()
	if err := tr.Err(); err != nil {
		t.Fatal(err)
	}

	full, stamps := tr.Snapshot()
	if full.Len() != nWorkers*opsPer {
		t.Fatalf("final snapshot has %d events, want %d", full.Len(), nWorkers*opsPer)
	}
	for si, c := range streams {
		for i, e := range c.events {
			if e.Index != i {
				t.Fatalf("stream %d: record %d has index %d (not dense)", si, i, e.Index)
			}
			if i > 0 && c.epochs[i] < c.epochs[i-1] {
				t.Fatalf("stream %d: epochs went backwards at record %d", si, i)
			}
			if full.At(i).Thread != e.Thread || full.At(i).Object != e.Object {
				t.Fatalf("stream %d: record %d is %+v, final history has %+v", si, i, e, full.At(i))
			}
			if !c.stamps[i].Equal(stamps[i]) {
				t.Fatalf("stream %d: stamp %d = %v, final history has %v", si, i, c.stamps[i], stamps[i])
			}
			if got := tr.EpochOf(i); got != c.epochs[i] {
				t.Fatalf("stream %d: record %d streamed in epoch %d, recorded in %d",
					si, i, c.epochs[i], got)
			}
		}
	}
	validateEpochs(t, tr)
}

// TestStreamWhileSealing overlaps Stream's unlocked phase with concurrent
// auto-sealing: phase 2 must pick up whatever sealed mid-stream without
// dropping or duplicating records.
func TestStreamWhileSealing(t *testing.T) {
	tr := NewTracker(WithSpill(SpillPolicy{Dir: t.TempDir(), SealEvents: 32}))
	o := tr.NewObject("o")
	done := make(chan struct{})
	go func() {
		defer close(done)
		th := tr.NewThread("w")
		for i := 0; i < 2000; i++ {
			th.Write(o, nil)
		}
	}()
	for i := 0; i < 10; i++ {
		c := &streamCollector{}
		if err := tr.Stream(c); err != nil {
			t.Fatal(err)
		}
		for j, e := range c.events {
			if e.Index != j {
				t.Fatalf("stream %d: record %d has index %d", i, j, e.Index)
			}
		}
	}
	<-done
	if err := tr.Err(); err != nil {
		t.Fatal(err)
	}
	full, stamps := tr.Snapshot()
	if full.Len() != 2000 {
		t.Fatalf("final snapshot has %d events", full.Len())
	}
	if err := clock.Validate(full, stamps, "stream-while-sealing"); err != nil {
		t.Fatal(err)
	}
}
