package tlog

import (
	"encoding/json"
	"fmt"
	"io"
)

// Segment catalog: the stable, read-only view of a tracker's sealed history
// that external log shippers poll. The tracker publishes one catalog
// document (catalog.json in the spill directory, rewritten atomically after
// every seal and compaction); a shipper that re-reads it sees a consistent
// generation — which segments exist, where each one's file lives, which
// index range and epoch it covers, its size and its content hash — without
// ever touching the tracker itself. Segment files are immutable once listed,
// so a shipper may copy any listed file at leisure and verify the copy
// against SHA256; compaction retires files only after the catalog generation
// that stops listing them is in place.
//
// The document is plain JSON so shippers need no Go in the loop; Decode
// validates structure on the way in, making the catalog safe to consume
// from untrusted or half-written files.

// CatalogFormatVersion is the catalog document version this package writes
// and accepts.
const CatalogFormatVersion = 1

// CatalogFileName is the catalog's file name inside a spill directory —
// shared by the tracker that publishes it and the tools that read it.
const CatalogFileName = "catalog.json"

// CatalogSegment describes one sealed segment.
type CatalogSegment struct {
	// Epoch the segment's records belong to (a segment never spans one).
	Epoch int `json:"epoch"`
	// FirstIndex is the global trace index of the segment's first record;
	// Events is how many records it holds.
	FirstIndex int `json:"first_index"`
	Events     int `json:"events"`
	// Bytes is the encoded container size.
	Bytes int64 `json:"bytes"`
	// Path is the segment's spill file, relative to the catalog's own
	// directory; empty for a segment still held in memory.
	Path string `json:"path,omitempty"`
	// SHA256 is the hex content hash of the encoded container, when known —
	// what a shipper verifies its copy against.
	SHA256 string `json:"sha256,omitempty"`
}

// Catalog is the JSON-serializable segment catalog.
type Catalog struct {
	// FormatVersion is CatalogFormatVersion.
	FormatVersion int `json:"format_version"`
	// Generation increases on every publication; a shipper that reads the
	// same generation twice saw the same segment list.
	Generation int64 `json:"generation"`
	// SealedEvents is how many records sealed history covers: segments span
	// global indices [0, SealedEvents) with no gaps (barring lost files).
	SealedEvents int `json:"sealed_events"`
	// Health is empty while the tracker is healthy; otherwise the text of
	// its first error (clock misuse or segment I/O — see Tracker.Err).
	Health string `json:"health,omitempty"`
	// AutoSealDisarmed reports that automatic sealing hit a spill I/O
	// failure and stopped; history accumulates in memory until an explicit
	// Seal or Compact succeeds and re-arms it.
	AutoSealDisarmed bool `json:"auto_seal_disarmed,omitempty"`
	// Segments lists sealed history, oldest first.
	Segments []CatalogSegment `json:"segments"`
}

// Validate checks the catalog's internal consistency: known version, sane
// counts, segments ordered and gapless from index zero, hashes well-formed.
func (c *Catalog) Validate() error {
	if c.FormatVersion != CatalogFormatVersion {
		return fmt.Errorf("tlog: catalog format version %d (want %d)", c.FormatVersion, CatalogFormatVersion)
	}
	if c.Generation < 0 || c.SealedEvents < 0 {
		return fmt.Errorf("tlog: negative catalog counters (generation %d, sealed %d)", c.Generation, c.SealedEvents)
	}
	next, epoch := 0, 0
	for i, sg := range c.Segments {
		if sg.Epoch < 0 || sg.FirstIndex < 0 || sg.Events <= 0 || sg.Bytes < 0 {
			return fmt.Errorf("tlog: catalog segment %d has impossible fields %+v", i, sg)
		}
		if sg.FirstIndex != next {
			return fmt.Errorf("tlog: catalog segment %d starts at %d, want %d (gapless from zero)",
				i, sg.FirstIndex, next)
		}
		if sg.Epoch < epoch {
			return fmt.Errorf("tlog: catalog segment %d regresses to epoch %d after %d", i, sg.Epoch, epoch)
		}
		if sg.SHA256 != "" {
			if len(sg.SHA256) != 64 {
				return fmt.Errorf("tlog: catalog segment %d hash %q is not 64 hex digits", i, sg.SHA256)
			}
			for _, r := range sg.SHA256 {
				if (r < '0' || r > '9') && (r < 'a' || r > 'f') {
					return fmt.Errorf("tlog: catalog segment %d hash %q is not lowercase hex", i, sg.SHA256)
				}
			}
		}
		next = sg.FirstIndex + sg.Events
		epoch = sg.Epoch
	}
	if next != c.SealedEvents {
		return fmt.Errorf("tlog: catalog lists %d sealed events, segments cover %d", c.SealedEvents, next)
	}
	return nil
}

// EncodeCatalog writes the catalog as indented JSON. The catalog is
// validated first, so a half-built document never reaches shippers.
func EncodeCatalog(w io.Writer, c *Catalog) error {
	if err := c.Validate(); err != nil {
		return err
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(c); err != nil {
		return fmt.Errorf("tlog: encoding catalog: %w", err)
	}
	return nil
}

// DecodeCatalog reads and validates one catalog document.
func DecodeCatalog(r io.Reader) (*Catalog, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var c Catalog
	if err := dec.Decode(&c); err != nil {
		return nil, fmt.Errorf("tlog: decoding catalog: %w", err)
	}
	if err := c.Validate(); err != nil {
		return nil, err
	}
	return &c, nil
}
