package experiment

import (
	"bytes"
	"strings"
	"testing"
)

func sampleResult() *Result {
	return &Result{
		Title:  "Sample",
		XLabel: "density",
		YLabel: "size",
		X:      []float64{0.1, 0.2, 0.5},
		Series: []Series{
			{Name: "naive", Values: []float64{10, 10, 10}},
			{Name: "popularity", Values: []float64{4, 6, 14}},
		},
	}
}

func TestGet(t *testing.T) {
	r := sampleResult()
	if v, ok := r.Get("popularity", 1); !ok || v != 6 {
		t.Fatalf("Get = %f, %v", v, ok)
	}
	if _, ok := r.Get("missing", 0); ok {
		t.Fatal("missing series found")
	}
	if _, ok := r.Get("naive", 9); ok {
		t.Fatal("out-of-range index accepted")
	}
}

func TestXIndex(t *testing.T) {
	r := sampleResult()
	if got := r.XIndex(0.21); got != 1 {
		t.Fatalf("XIndex(0.21) = %d, want 1", got)
	}
	if got := r.XIndex(99); got != 2 {
		t.Fatalf("XIndex(99) = %d, want 2", got)
	}
}

func TestWriteCSV(t *testing.T) {
	var buf bytes.Buffer
	if err := sampleResult().WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 4 {
		t.Fatalf("CSV has %d lines, want 4:\n%s", len(lines), buf.String())
	}
	if lines[0] != "density,naive,popularity" {
		t.Errorf("header = %q", lines[0])
	}
	if lines[1] != "0.1,10,4" {
		t.Errorf("row 1 = %q", lines[1])
	}
}

func TestWriteTable(t *testing.T) {
	var buf bytes.Buffer
	if err := sampleResult().WriteTable(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Sample", "density", "naive", "popularity", "10.00", "14.00"} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
}

func TestWriteASCIIPlot(t *testing.T) {
	var buf bytes.Buffer
	if err := sampleResult().WriteASCIIPlot(&buf, 10); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "n=naive") || !strings.Contains(out, "r=popularity") {
		t.Errorf("legend missing:\n%s", out)
	}
	if !strings.Contains(out, "density") {
		t.Errorf("x label missing:\n%s", out)
	}
	// Tiny heights are clamped, not rejected.
	if err := sampleResult().WriteASCIIPlot(&buf, 1); err != nil {
		t.Fatal(err)
	}
}

func TestTrimFloat(t *testing.T) {
	tests := []struct {
		x    float64
		want string
	}{
		{50, "50"},
		{0.05, "0.05"},
		{0.5, "0.5"},
	}
	for _, tt := range tests {
		if got := trimFloat(tt.x); got != tt.want {
			t.Errorf("trimFloat(%v) = %q, want %q", tt.x, got, tt.want)
		}
	}
}

func TestWorkloadClockSizes(t *testing.T) {
	r, names, err := WorkloadClockSizes(6, 6, 120, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != len(r.X) {
		t.Fatalf("%d names for %d x", len(names), len(r.X))
	}
	// Offline must lower-bound every other series at every workload.
	offIdx := -1
	for i, s := range r.Series {
		if s.Name == seriesOffline {
			offIdx = i
		}
	}
	if offIdx < 0 {
		t.Fatal("offline series missing")
	}
	for i := range r.X {
		off := r.Series[offIdx].Values[i]
		for _, s := range r.Series {
			if s.Name == "chain" {
				continue // chains can beat the bipartite bound (they exploit time)
			}
			if s.Values[i] < off-1e-9 {
				t.Errorf("workload %s: series %s (%.2f) below offline optimum (%.2f)",
					names[i], s.Name, s.Values[i], off)
			}
		}
	}
}

func TestRevealOrderSensitivity(t *testing.T) {
	r, err := RevealOrderSensitivity(15, []float64{0.05, 0.2}, 5, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := range r.X {
		minV, _ := r.Get("pop-min", i)
		meanV, _ := r.Get("pop-mean", i)
		maxV, _ := r.Get("pop-max", i)
		off, _ := r.Get(seriesOffline, i)
		if !(minV <= meanV && meanV <= maxV) {
			t.Fatalf("min/mean/max disordered at %d: %f %f %f", i, minV, meanV, maxV)
		}
		if minV < off {
			t.Fatalf("an online order beat the offline optimum: %f < %f", minV, off)
		}
	}
}

func TestHybridThresholdSweep(t *testing.T) {
	r, err := HybridThresholdSweep(15, []float64{0.05, 0.5}, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.X) != 2 {
		t.Fatalf("x = %v", r.X)
	}
	// Naive and popularity are threshold-independent; their series must be
	// flat across thresholds.
	for _, name := range []string{seriesNaive, seriesPopularity} {
		a, _ := r.Get(name, 0)
		b, _ := r.Get(name, 1)
		if a != b {
			t.Errorf("series %s not flat: %f vs %f", name, a, b)
		}
	}
}

func TestGreedyVsOptimal(t *testing.T) {
	r, err := GreedyVsOptimal(12, []float64{0.1, 0.3}, 3, 5)
	if err != nil {
		t.Fatal(err)
	}
	for i := range r.X {
		greedy, _ := r.Get("greedy", i)
		off, _ := r.Get(seriesOffline, i)
		if greedy < off-1e-9 {
			t.Fatalf("greedy %.2f beat optimal %.2f", greedy, off)
		}
	}
}

func TestSizeHistogram(t *testing.T) {
	hist, err := SizeHistogram(10, 0.2, 20, 7)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for size, count := range hist {
		if size < 0 || size > 10 {
			t.Fatalf("impossible size %d", size)
		}
		total += count
	}
	if total != 20 {
		t.Fatalf("histogram total %d, want 20", total)
	}
}
