// Package replay manipulates linearizations of a recorded computation. A
// trace is one observed interleaving of a partial order; any other
// interleaving consistent with happened-before could equally have occurred.
// The utilities here re-order traces (for schedule exploration), verify
// candidate orders, and enumerate or sample alternative linearizations —
// the substrate for the schedule-sensitivity findings of package detect and
// for tests that check clock schemes are interleaving-independent.
package replay

import (
	"fmt"
	"math/rand"

	"mixedclock/internal/event"
	"mixedclock/internal/hb"
)

// IsLinearization reports whether perm (a permutation of event indices) is
// a legal interleaving of tr: every event appears exactly once and no event
// precedes one of its happened-before predecessors.
func IsLinearization(tr *event.Trace, perm []int) bool {
	if len(perm) != tr.Len() {
		return false
	}
	oracle := hb.New(tr)
	placed := make([]bool, tr.Len())
	for _, idx := range perm {
		if idx < 0 || idx >= tr.Len() || placed[idx] {
			return false
		}
		// All immediate predecessors must already be placed; transitivity
		// then gives the full condition.
		if p := oracle.ThreadPredecessor(idx); p >= 0 && !placed[p] {
			return false
		}
		if p := oracle.ObjectPredecessor(idx); p >= 0 && !placed[p] {
			return false
		}
		placed[idx] = true
	}
	return true
}

// Reorder returns a new trace whose events follow perm. The permutation
// must be a legal linearization; the returned trace represents the same
// computation (same happened-before relation) scheduled differently.
// Event indices are reassigned to the new positions.
func Reorder(tr *event.Trace, perm []int) (*event.Trace, error) {
	if !IsLinearization(tr, perm) {
		return nil, fmt.Errorf("replay: permutation is not a linearization of the trace")
	}
	out := event.NewTrace()
	for _, idx := range perm {
		e := tr.At(idx)
		out.Append(e.Thread, e.Object, e.Op)
	}
	return out, nil
}

// RandomLinearization samples a uniform-ish alternative interleaving by
// repeatedly picking a random ready event (all predecessors emitted). The
// identity order has nonzero probability; use the rng seed to vary.
func RandomLinearization(tr *event.Trace, rng *rand.Rand) []int {
	oracle := hb.New(tr)
	n := tr.Len()
	// indegree counts unplaced immediate predecessors (0, 1 or 2).
	indeg := make([]int, n)
	for i := 0; i < n; i++ {
		if oracle.ThreadPredecessor(i) >= 0 {
			indeg[i]++
		}
		if oracle.ObjectPredecessor(i) >= 0 {
			indeg[i]++
		}
	}
	ready := make([]int, 0, n)
	for i := 0; i < n; i++ {
		if indeg[i] == 0 {
			ready = append(ready, i)
		}
	}
	out := make([]int, 0, n)
	for len(ready) > 0 {
		k := rng.Intn(len(ready))
		idx := ready[k]
		ready[k] = ready[len(ready)-1]
		ready = ready[:len(ready)-1]
		out = append(out, idx)
		for _, succ := range []int{oracle.ThreadSuccessor(idx), oracle.ObjectSuccessor(idx)} {
			if succ < 0 {
				continue
			}
			indeg[succ]--
			if indeg[succ] == 0 {
				ready = append(ready, succ)
			}
		}
	}
	return out
}

// Enumerate visits every linearization of tr in lexicographic order,
// calling fn with a shared buffer (copy it to retain). Enumeration stops
// when fn returns false or when limit linearizations have been visited
// (limit ≤ 0 means no limit). It returns the number visited.
//
// The count of linearizations is exponential in the computation's width;
// use on small traces or with a limit.
func Enumerate(tr *event.Trace, limit int, fn func(perm []int) bool) int {
	oracle := hb.New(tr)
	n := tr.Len()
	indeg := make([]int, n)
	for i := 0; i < n; i++ {
		if oracle.ThreadPredecessor(i) >= 0 {
			indeg[i]++
		}
		if oracle.ObjectPredecessor(i) >= 0 {
			indeg[i]++
		}
	}
	perm := make([]int, 0, n)
	placed := make([]bool, n)
	visited := 0
	stop := false

	var rec func()
	rec = func() {
		if stop {
			return
		}
		if len(perm) == n {
			visited++
			if !fn(perm) || (limit > 0 && visited >= limit) {
				stop = true
			}
			return
		}
		for i := 0; i < n && !stop; i++ {
			if placed[i] || indeg[i] != 0 {
				continue
			}
			placed[i] = true
			perm = append(perm, i)
			ts, os := oracle.ThreadSuccessor(i), oracle.ObjectSuccessor(i)
			if ts >= 0 {
				indeg[ts]--
			}
			if os >= 0 {
				indeg[os]--
			}
			rec()
			if ts >= 0 {
				indeg[ts]++
			}
			if os >= 0 {
				indeg[os]++
			}
			perm = perm[:len(perm)-1]
			placed[i] = false
		}
	}
	rec()
	return visited
}

// CountLinearizations counts the interleavings of tr, up to limit (0 = no
// limit). A direct measure of how schedule-sensitive a computation is.
func CountLinearizations(tr *event.Trace, limit int) int {
	return Enumerate(tr, limit, func([]int) bool { return true })
}
