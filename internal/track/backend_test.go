package track

import (
	"sync"
	"testing"

	"mixedclock/internal/clock"
	"mixedclock/internal/event"
	"mixedclock/internal/vclock"
)

// TestTrackerTreeBackend runs real goroutines through a tree-backed tracker,
// compacts mid-run, and validates the full recorded computation against the
// happened-before oracle. Run under -race in CI.
func TestTrackerTreeBackend(t *testing.T) {
	tracker := NewTracker(WithBackend(vclock.BackendTree))
	if tracker.Backend() != vclock.BackendTree {
		t.Fatalf("Backend = %v", tracker.Backend())
	}

	const nWorkers, nObjects, opsPerWorker = 4, 3, 25
	objects := make([]*Object, nObjects)
	for i := range objects {
		objects[i] = tracker.NewObject("obj")
	}
	run := func() {
		var wg sync.WaitGroup
		for w := 0; w < nWorkers; w++ {
			wg.Add(1)
			th := tracker.NewThread("worker")
			go func(th *Thread, w int) {
				defer wg.Done()
				for i := 0; i < opsPerWorker; i++ {
					th.Write(objects[(w+i)%nObjects], nil)
				}
			}(th, w)
		}
		wg.Wait()
	}

	run()
	epoch, size, err := tracker.Compact()
	if err != nil {
		t.Fatal(err)
	}
	if epoch != 1 || size == 0 {
		t.Fatalf("Compact = epoch %d size %d", epoch, size)
	}
	// The compacted clock must keep the tree backend.
	run()

	if err := tracker.Err(); err != nil {
		t.Fatal(err)
	}
	// Validate each epoch's stamps independently (epochs are barriers; the
	// cross-epoch order is by construction).
	full, stamps := tracker.Trace(), tracker.Stamps()
	starts := append(tracker.EpochStarts(), full.Len())
	for e := 0; e+1 < len(starts); e++ {
		seg := event.NewTrace()
		for i := starts[e]; i < starts[e+1]; i++ {
			ev := full.At(i)
			seg.Append(ev.Thread, ev.Object, ev.Op)
		}
		if err := clock.Validate(seg, stamps[starts[e]:starts[e+1]], "tracker/tree"); err != nil {
			t.Fatalf("epoch %d: %v", e, err)
		}
	}
}

// TestTrackerBackendsAgree replays one interleaving through a flat and a
// tree tracker and requires identical stamps.
func TestTrackerBackendsAgree(t *testing.T) {
	type op struct{ thread, object int }
	var script []op
	for i := 0; i < 60; i++ {
		script = append(script, op{thread: i % 3, object: (i * 7) % 4})
	}
	runScript := func(b vclock.Backend) []vclock.Vector {
		tracker := NewTracker(WithBackend(b))
		threads := make([]*Thread, 3)
		for i := range threads {
			threads[i] = tracker.NewThread("t")
		}
		objects := make([]*Object, 4)
		for i := range objects {
			objects[i] = tracker.NewObject("o")
		}
		for _, o := range script {
			threads[o.thread].Write(objects[o.object], nil)
		}
		if err := tracker.Err(); err != nil {
			t.Fatal(err)
		}
		return tracker.Stamps()
	}
	flat := runScript(vclock.BackendFlat)
	tree := runScript(vclock.BackendTree)
	for i := range flat {
		if !flat[i].Equal(tree[i]) {
			t.Fatalf("event %d: flat %v, tree %v", i, flat[i], tree[i])
		}
	}
}
