package mixedclock_test

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"

	"mixedclock"
)

// auditTrace: two tellers on one account plus an independent logger.
func auditTrace() *mixedclock.Trace {
	tr := mixedclock.NewTrace()
	tr.Append(0, 0, mixedclock.OpWrite) // e0: T1 writes account
	tr.Append(1, 0, mixedclock.OpWrite) // e1: T2 writes account (lock-only after e0)
	tr.Append(2, 1, mixedclock.OpWrite) // e2: T3 writes log (independent)
	return tr
}

func TestFacadeCensusAndPairs(t *testing.T) {
	tr := auditTrace()
	stamps := mixedclock.Run(tr, mixedclock.AnalyzeTrace(tr).NewClock())

	census := mixedclock.TakeCensus(stamps)
	if census.Events != 3 || census.Concurrent != 2 || census.Ordered != 1 {
		t.Fatalf("census = %+v", census)
	}
	if census.Parallelism() <= 0 {
		t.Fatal("parallelism should be positive")
	}

	pairs := mixedclock.ScheduleSensitivePairs(tr)
	if len(pairs) != 1 || pairs[0].First.Index != 0 || pairs[0].Second.Index != 1 {
		t.Fatalf("pairs = %v", pairs)
	}

	m := mixedclock.ConflictMatrix(tr)
	if m[0][1] != 1 {
		t.Fatalf("conflict matrix = %v", m)
	}
}

func TestFacadeCutHelpers(t *testing.T) {
	tr := auditTrace()
	stamps := mixedclock.Run(tr, mixedclock.AnalyzeTrace(tr).NewClock())

	line, err := mixedclock.RecoveryLine(tr, stamps, 0)
	if err != nil {
		t.Fatal(err)
	}
	// e0 poisons e1 (same account); e2 survives.
	if line.Size() != 1 {
		t.Fatalf("recovery line %v has size %d, want 1", line, line.Size())
	}
	if !mixedclock.IsConsistentCut(tr, line) {
		t.Fatal("recovery line inconsistent")
	}
	if got := mixedclock.Contaminated(stamps, 0); len(got) != 2 {
		t.Fatalf("Contaminated = %v", got)
	}
}

func TestFacadePredicateDetection(t *testing.T) {
	tr := auditTrace()
	// Possibly: T2 has written while T3 has not — reachable.
	_, found, err := mixedclock.Possibly(tr, func(s *mixedclock.GlobalState) bool {
		return s.Executed(1) == 1 && s.Executed(2) == 0
	}, 0)
	if err != nil || !found {
		t.Fatalf("Possibly = %v, %v", found, err)
	}
	// Definitely: the empty state predicate holds trivially at the start.
	def, err := mixedclock.Definitely(tr, func(s *mixedclock.GlobalState) bool {
		return s.Total() == 0
	}, 0)
	if err != nil || !def {
		t.Fatalf("Definitely = %v, %v", def, err)
	}
	// Budget errors surface as ErrStateBudget.
	wide := mixedclock.NewTrace()
	for i := 0; i < 12; i++ {
		wide.Append(mixedclock.ThreadID(i), mixedclock.ObjectID(i), mixedclock.OpWrite)
	}
	_, _, err = mixedclock.Possibly(wide, func(*mixedclock.GlobalState) bool { return false }, 8)
	if !errors.Is(err, mixedclock.ErrStateBudget) {
		t.Fatalf("want ErrStateBudget, got %v", err)
	}
}

func TestFacadeReplayHelpers(t *testing.T) {
	tr := auditTrace()
	if got := mixedclock.CountLinearizations(tr, 0); got != 3 {
		t.Fatalf("linearizations = %d, want 3", got)
	}
	perm := mixedclock.RandomLinearization(tr, rand.New(rand.NewSource(2)))
	if !mixedclock.IsLinearization(tr, perm) {
		t.Fatalf("sampled permutation %v illegal", perm)
	}
	re, err := mixedclock.Reorder(tr, perm)
	if err != nil || re.Len() != tr.Len() {
		t.Fatalf("Reorder: %v", err)
	}
	if _, err := mixedclock.Reorder(tr, []int{2, 1, 0}); err == nil {
		t.Fatal("illegal reorder accepted (e1 before e0 violates account order)")
	}
}

func TestFacadeLogRoundTrip(t *testing.T) {
	tr := auditTrace()
	stamps := mixedclock.Run(tr, mixedclock.AnalyzeTrace(tr).NewClock())

	var buf bytes.Buffer
	if err := mixedclock.WriteLog(&buf, tr, stamps); err != nil {
		t.Fatal(err)
	}
	full := append([]byte(nil), buf.Bytes()...)

	gotTr, gotStamps, err := mixedclock.ReadLog(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if gotTr.Len() != tr.Len() {
		t.Fatalf("round trip lost events: %d", gotTr.Len())
	}
	for i := range gotStamps {
		if !gotStamps[i].Equal(stamps[i]) {
			t.Fatalf("stamp %d changed", i)
		}
	}

	// Truncated logs surface ErrLogTruncated with the prefix intact.
	_, _, err = mixedclock.ReadLog(bytes.NewReader(full[:len(full)-1]))
	if !errors.Is(err, mixedclock.ErrLogTruncated) {
		t.Fatalf("want ErrLogTruncated, got %v", err)
	}
}

func TestFacadeTrackerCompaction(t *testing.T) {
	tracker := mixedclock.NewTracker()
	th := tracker.NewThread("t")
	o := tracker.NewObject("o")
	pre := th.Write(o, nil)
	epoch, size, err := tracker.Compact()
	if err != nil {
		t.Fatal(err)
	}
	if epoch != 1 || size != 1 {
		t.Fatalf("Compact = %d, %d", epoch, size)
	}
	post := th.Write(o, nil)
	if !pre.HappenedBefore(post) {
		t.Fatal("cross-epoch order lost")
	}
	if tracker.EpochOf(0) != 0 || tracker.EpochOf(1) != 1 {
		t.Fatal("EpochOf wrong")
	}
}
