// Bankledger is the live-monitoring showcase: a concurrent bank whose
// invariants are watched while it runs, not audited after the fact.
//
// Teller goroutines debit accounts and journal each debit; a posting
// goroutine applies the matching credits. The banking rule is causal: a
// credit must be posted having observed the debit journal (the poster
// reads "debits" before writing "credits"), so every credit write happens
// after the debit write it settles. The run seeds one violation — a credit
// posted without reading the journal — and an online Monitor registered on
// the live tracker catches it from the stream, with epoch and trace-index
// provenance, while commits continue.
//
// The run spills sealed segments to a directory and prints the matching
// `mvc detect -live` invocation, so a second terminal can attach the same
// detection to the run from outside the process.
package main

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sync"

	"mixedclock"
)

const (
	tellers   = 4
	accounts  = 6
	transfers = 12 // per teller
)

// instruction is a credit order sent to the poster over a plain Go channel
// — deliberately invisible to the tracker, so the only causal link between
// debit and credit is the journal read the banking rule demands.
type instruction struct {
	to, amount int
}

func main() {
	dir := filepath.Join(os.TempDir(), "bankledger-spill")
	os.RemoveAll(dir)
	tracker, err := mixedclock.Open(dir, mixedclock.WithStore(mixedclock.Store{
		Spill: mixedclock.SpillPolicy{SealEvents: 32},
	}))
	if err != nil {
		panic(err)
	}

	balances := make([]int, accounts)
	objs := make([]*mixedclock.Object, accounts)
	for i := range objs {
		balances[i] = 100
		objs[i] = tracker.NewObject(fmt.Sprintf("acct-%d", i))
	}
	var ledgerMu sync.Mutex                 // guards balances entries across debit/credit closures
	debits := tracker.NewObject("debits")   // journal of debits awaiting settlement
	credits := tracker.NewObject("credits") // journal of posted credits

	// The monitor rides the stream: every seal wakes it, it evaluates the
	// newly sealed segments without stopping commits, and detections are
	// delivered as they are found. The order watch is the banking rule;
	// the predicate watch asks whether all tellers were ever mid-transfer
	// at once (debit written, journal entry not yet).
	monitor := tracker.NewMonitor(mixedclock.MonitorPolicy{
		OnDetection: func(d mixedclock.Detection) {
			if d.Kind == mixedclock.DetectOrder {
				fmt.Printf("LIVE DETECTION %v\n", d)
			}
		},
	})
	defer monitor.Close()
	isWriteOn := func(o *mixedclock.Object) mixedclock.Selector {
		id := o.ID()
		return func(e mixedclock.Event) bool { return e.Object == id && e.Op == mixedclock.OpWrite }
	}
	monitor.WatchOrder("credit-after-debit", isWriteOn(debits), isWriteOn(credits))
	monitor.WatchPossibly("all-tellers-mid-transfer", func(s *mixedclock.GlobalState) bool {
		for t := 0; t < tellers; t++ {
			if s.Executed(mixedclock.ThreadID(t))%2 != 1 {
				return false
			}
		}
		return true
	})

	fmt.Printf("spilling to %s\n", dir)
	fmt.Printf("attach from outside with: mvc detect -live -dir %s -follow -order debits,credits\n\n", dir)

	// Phase 1: honest banking. Tellers debit and journal; the poster reads
	// the journal (the causal handshake) before posting each credit.
	orders := make(chan instruction, tellers)
	var posterWg sync.WaitGroup
	poster := tracker.NewThread("poster")
	posterWg.Add(1)
	go func() {
		defer posterWg.Done()
		for in := range orders {
			poster.Read(debits, nil) // observe the debit: credit now happens-after it
			poster.Write(credits, nil)
			poster.Write(objs[in.to], func() {
				ledgerMu.Lock()
				balances[in.to] += in.amount
				ledgerMu.Unlock()
			})
		}
	}()

	var wg sync.WaitGroup
	tellerThreads := make([]*mixedclock.Thread, tellers)
	for tid := 0; tid < tellers; tid++ {
		th := tracker.NewThread(fmt.Sprintf("teller-%d", tid))
		tellerThreads[tid] = th
		rng := rand.New(rand.NewSource(int64(100 + tid)))
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := 0; k < transfers; k++ {
				from, to := rng.Intn(accounts), rng.Intn(accounts)
				if from == to {
					to = (to + 1) % accounts
				}
				amount := 1 + rng.Intn(20)
				th.Write(objs[from], func() {
					ledgerMu.Lock()
					balances[from] -= amount
					ledgerMu.Unlock()
				})
				th.Write(debits, nil) // journal the debit
				orders <- instruction{to: to, amount: amount}
			}
		}()
	}
	wg.Wait()
	close(orders)
	posterWg.Wait()

	// Phase 2: the seeded bug. One more transfer — but the credit is
	// posted without reading the journal. No tracked operation links the
	// debit to the credit (the channel is invisible), so the credit write
	// is concurrent with the latest debit-journal write and the order
	// watch fires as soon as the records reach the monitor.
	tellerThreads[0].Write(objs[0], func() { ledgerMu.Lock(); balances[0] -= 5; ledgerMu.Unlock() })
	tellerThreads[0].Write(debits, nil)
	poster.Write(credits, nil) // BUG: skipped poster.Read(debits, nil)
	poster.Write(objs[1], func() { ledgerMu.Lock(); balances[1] += 5; ledgerMu.Unlock() })

	// Close seals the tail and wakes the monitor one last time; Sync
	// drains everything (including anything not yet sealed) so the
	// detection below is guaranteed delivered before we report.
	if err := tracker.Close(); err != nil {
		panic(err)
	}
	if err := monitor.Sync(); err != nil {
		panic(err)
	}

	stats := monitor.Stats()
	fmt.Printf("\nmonitor consumed %d events across %d tellers + 1 poster\n", stats.Consumed, tellers)
	fmt.Printf("census: %v\n", stats.Census)
	fmt.Printf("schedule-sensitive pairs (lock-only orderings): %d\n", stats.Pairs)
	fmt.Printf("mixed clock width %d; incremental König lower bound %d\n", stats.ClockWidth, stats.CoverLowerBound)

	violations := 0
	for _, d := range monitor.Detections() {
		if d.Kind != mixedclock.DetectPair {
			violations++
		}
	}
	fmt.Printf("watch detections: %d\n", violations)
	if line, ok := monitor.RecoveryLine(); ok {
		fmt.Printf("recovery line excluding the violation's causal future: %v (%d events survive)\n", line, line.Size())
	}

	total := 0
	for _, b := range balances {
		total += b
	}
	fmt.Printf("total balance %d (expect %d)\n", total, accounts*100)
	fmt.Printf("spill directory %s left behind for mvc detect -live / mvc catalog\n", dir)
}
