package mixedclock_test

// One benchmark per figure of the paper's evaluation (§V), plus ablation
// benches for the substrate algorithms and clock schemes. The figure benches
// run the same sweeps as `go run ./cmd/figures` at reduced trial counts, so
// `go test -bench=Fig -benchmem` both times the harness and regenerates the
// series. EXPERIMENTS.md records full-scale outputs.

import (
	"bytes"
	"fmt"
	"io"
	"math/rand"
	"sync"
	"testing"

	"mixedclock"
	"mixedclock/internal/baseline"
	"mixedclock/internal/bipartite"
	"mixedclock/internal/clock"
	"mixedclock/internal/core"
	"mixedclock/internal/experiment"
	"mixedclock/internal/loadgen"
	"mixedclock/internal/matching"
	"mixedclock/internal/tlog"
	"mixedclock/internal/trace"
	"mixedclock/internal/vclock"
)

// benchOpts keeps figure benches fast while preserving the paper's scale
// (50 nodes per side, the full density axis).
func benchOpts() experiment.Options {
	return experiment.Options{Trials: 2, Seed: 42}
}

// BenchmarkFig4 regenerates "Vector Size Varies as Graph Density Increases"
// (uniform + nonuniform panels, Naive/Random/Popularity).
func BenchmarkFig4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, _, err := experiment.Fig4(benchOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig5 regenerates "Vector Size Varies as Number of Nodes
// Increases" (node sweep at density 0.05).
func BenchmarkFig5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, _, err := experiment.Fig5(benchOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig6 regenerates the offline-vs-online density sweep.
func BenchmarkFig6(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiment.Fig6(benchOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig7 regenerates the offline-vs-online node sweep.
func BenchmarkFig7(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiment.Fig7(benchOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMatching compares the paper's Hopcroft–Karp against the Kuhn
// baseline across graph sizes — the ablation for the offline algorithm's
// core.
func BenchmarkMatching(b *testing.B) {
	for _, n := range []int{50, 200, 800} {
		g, err := bipartite.Generate(bipartite.GenConfig{
			NThreads: n, NObjects: n, Density: 4.0 / float64(n),
		}, rand.New(rand.NewSource(7)))
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("hopcroft-karp/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				matching.HopcroftKarp(g)
			}
		})
		b.Run(fmt.Sprintf("kuhn/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				matching.Kuhn(g)
			}
		})
	}
}

// BenchmarkOfflineAnalysis times the complete Algorithm 1 (matching + König
// cover + component set) on paper-scale graphs.
func BenchmarkOfflineAnalysis(b *testing.B) {
	for _, density := range []float64{0.05, 0.2} {
		g, err := bipartite.Generate(bipartite.GenConfig{
			NThreads: 50, NObjects: 50, Density: density,
		}, rand.New(rand.NewSource(11)))
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("d=%.2f", density), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				core.Analyze(g)
			}
		})
	}
}

// BenchmarkTimestamp measures per-event timestamping cost (and allocation)
// for every clock scheme on the same workload — the runtime-overhead
// ablation: the mixed clock's smaller vectors should translate into less
// work per event.
func BenchmarkTimestamp(b *testing.B) {
	rng := rand.New(rand.NewSource(13))
	base, err := trace.Generate(trace.HotSet, trace.Config{Threads: 50, Objects: 50, Events: 1_000}, rng)
	if err != nil {
		b.Fatal(err)
	}
	// Extend the sparse structure (cover ≈29 < 50) to 10k events on the
	// same edges, so the mixed clock stays narrow while the event count is
	// benchmark-sized.
	tr := trace.FromGraph(bipartite.FromTrace(base), 9_000, rng)
	events := tr.Events()
	analysis := core.AnalyzeTrace(tr)
	b.Logf("clock widths: thread=%d object=%d mixed=%d",
		tr.Threads(), tr.Objects(), analysis.VectorSize())

	schemes := []struct {
		name string
		make func() clock.Timestamper
	}{
		{"thread-based", func() clock.Timestamper { return baseline.NewThreadClock(tr.Threads(), tr.Objects()) }},
		{"object-based", func() clock.Timestamper { return baseline.NewObjectClock(tr.Threads(), tr.Objects()) }},
		{"chain", func() clock.Timestamper { return baseline.NewChainClock() }},
		{"mixed-offline", func() clock.Timestamper { return analysis.NewClock() }},
		{"mixed-online-popularity", func() clock.Timestamper { return core.NewOnlineMixedClock(core.Popularity{}) }},
		{"mixed-online-hybrid", func() clock.Timestamper { return core.NewOnlineMixedClock(core.NewHybrid()) }},
	}
	for _, s := range schemes {
		b.Run(s.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				ts := s.make()
				for _, e := range events {
					ts.Timestamp(e)
				}
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*len(events)), "ns/event")
		})
	}
}

// deepJoinTrace builds the deep-join shape at a given width: every thread
// touches a private object once (forcing a wide cover that then goes
// quiescent), after which two threads ping-pong through one token object —
// a causal chain thousands of joins deep where each join changes only the
// chain's own components.
func deepJoinTrace(threads, rounds int) *mixedclock.Trace {
	deep := mixedclock.NewTrace()
	for i := 0; i < threads; i++ {
		deep.Append(mixedclock.ThreadID(i), mixedclock.ObjectID(i), mixedclock.OpWrite)
	}
	token := mixedclock.ObjectID(threads)
	for r := 0; r < rounds; r++ {
		deep.Append(0, token, mixedclock.OpWrite)
		deep.Append(1, token, mixedclock.OpWrite)
	}
	return deep
}

// readHeavyTrace builds the read-heavy shape at a given width: after one
// covering pass, every thread re-reads only its own object — each join is
// already dominated.
func readHeavyTrace(threads, rounds int) *mixedclock.Trace {
	reads := mixedclock.NewTrace()
	for r := 0; r <= rounds; r++ {
		for i := 0; i < threads; i++ {
			op := mixedclock.OpRead
			if r == 0 {
				op = mixedclock.OpWrite
			}
			reads.Append(mixedclock.ThreadID(i), mixedclock.ObjectID(i), op)
		}
	}
	return reads
}

// backendTraces builds the workload shapes for the flat-vs-tree backend
// head-to-head. Each shape stresses a different join profile over a wide
// component set (hundreds of components), which is where the representations
// diverge: flat pays O(width) per event regardless, tree pays only for the
// components each join changes. The w64/w128 variants of the causally local
// shapes bracket the flat→tree crossover that core.ChooseBackend's
// AutoTreeWidth threshold encodes.
func backendTraces() []struct {
	name string
	tr   *mixedclock.Trace
} {
	// wide-fanin: producers tick private mailboxes, one collector sweeps
	// all of them every round.
	fanin := mixedclock.NewTrace()
	const producers, faninRounds = 192, 30
	for r := 0; r < faninRounds; r++ {
		for i := 1; i <= producers; i++ {
			fanin.Append(mixedclock.ThreadID(i), mixedclock.ObjectID(i), mixedclock.OpWrite)
		}
		for i := 1; i <= producers; i++ {
			fanin.Append(0, mixedclock.ObjectID(i), mixedclock.OpRead)
		}
	}

	// seeded: the hot-set generator workload the rest of the suite uses.
	rng := rand.New(rand.NewSource(13))
	base, err := trace.Generate(trace.HotSet, trace.Config{Threads: 50, Objects: 50, Events: 1_000}, rng)
	if err != nil {
		panic(err)
	}
	seeded := trace.FromGraph(bipartite.FromTrace(base), 9_000, rng)

	return []struct {
		name string
		tr   *mixedclock.Trace
	}{
		{"deep-join", deepJoinTrace(256, 6000)},
		{"deep-join-w64", deepJoinTrace(64, 6000)},
		{"deep-join-w128", deepJoinTrace(128, 6000)},
		{"wide-fanin", fanin},
		{"read-heavy", readHeavyTrace(256, 60)},
		{"read-heavy-w64", readHeavyTrace(64, 240)},
		{"read-heavy-w128", readHeavyTrace(128, 120)},
		{"seeded-hotset", seeded},
	}
}

// BenchmarkBackends runs the flat and tree clock backends head-to-head over
// the same optimal component sets. The acceptance bar: tree at least matches
// flat on the deep-join chain, and wins outright wherever joins have causal
// locality.
func BenchmarkBackends(b *testing.B) {
	for _, shape := range backendTraces() {
		analysis := core.AnalyzeTrace(shape.tr)
		events := shape.tr.Events()
		for _, backend := range []vclock.Backend{vclock.BackendFlat, vclock.BackendTree} {
			b.Run(shape.name+"/"+backend.String(), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					mc := analysis.NewClockBackend(backend)
					for _, e := range events {
						mc.Timestamp(e)
					}
					if err := mc.Err(); err != nil {
						b.Fatal(err)
					}
				}
				b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*len(events)), "ns/event")
				b.ReportMetric(float64(analysis.VectorSize()), "components")
			})
		}
	}
}

// BenchmarkStampBytes reports the final timestamp width (components) per
// scheme — the space half of the paper's claim. The hot-set workload keeps
// the access structure sparse so the mixed clock's optimality shows
// (measured: ≈29 components vs 50 for the thread clock).
func BenchmarkStampBytes(b *testing.B) {
	cfg := trace.Config{Threads: 50, Objects: 50, Events: 1_000}
	tr, err := trace.Generate(trace.HotSet, cfg, rand.New(rand.NewSource(13)))
	if err != nil {
		b.Fatal(err)
	}
	analysis := core.AnalyzeTrace(tr)
	schemes := []struct {
		name string
		make func() clock.Timestamper
	}{
		{"thread-based", func() clock.Timestamper { return baseline.NewThreadClock(tr.Threads(), tr.Objects()) }},
		{"mixed-offline", func() clock.Timestamper { return analysis.NewClock() }},
		{"chain", func() clock.Timestamper { return baseline.NewChainClock() }},
	}
	for _, s := range schemes {
		b.Run(s.name, func(b *testing.B) {
			var components int
			for i := 0; i < b.N; i++ {
				ts := s.make()
				clock.Run(tr, ts)
				components = ts.Components()
			}
			b.ReportMetric(float64(components), "components")
			b.ReportMetric(float64(components*8), "stamp-bytes")
		})
	}
}

// BenchmarkOnlineReveal measures the per-edge cost of the online cover
// mechanisms (no timestamping) — what SimulateCover pays in Figs. 4–7.
func BenchmarkOnlineReveal(b *testing.B) {
	g, err := bipartite.Generate(bipartite.GenConfig{
		NThreads: 100, NObjects: 100, Density: 0.1,
	}, rand.New(rand.NewSource(19)))
	if err != nil {
		b.Fatal(err)
	}
	order := g.RevealOrder(rand.New(rand.NewSource(20)))
	mechs := []core.Mechanism{
		core.NaiveThreads{},
		core.Popularity{},
		core.NewHybrid(),
	}
	for _, m := range mechs {
		b.Run(m.Name(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				core.SimulateCover(order, m)
			}
		})
	}
	b.Run("random", func(b *testing.B) {
		rng := rand.New(rand.NewSource(21))
		for i := 0; i < b.N; i++ {
			core.SimulateCover(order, core.Random{Rng: rng})
		}
	})
}

// BenchmarkDeltaEncoding measures the Singhal–Kshemkalyani differential
// encoding against shipping full vectors, on a bursty workload (each thread
// performs runs of operations on one object) where consecutive
// transmissions on a channel differ in few components.
func BenchmarkDeltaEncoding(b *testing.B) {
	const nThreads, nObjects, bursts, burstLen = 40, 40, 15, 10
	rng := rand.New(rand.NewSource(23))
	tr := mixedclock.NewTrace()
	for round := 0; round < bursts; round++ {
		for tid := 0; tid < nThreads; tid++ {
			obj := mixedclock.ObjectID(rng.Intn(nObjects))
			for k := 0; k < burstLen; k++ {
				tr.Append(mixedclock.ThreadID(tid), obj, mixedclock.OpWrite)
			}
		}
	}
	stamps := clock.Run(tr, baseline.NewThreadClock(tr.Threads(), tr.Objects()))
	events := tr.Events()

	b.Run("delta", func(b *testing.B) {
		var ints int
		for i := 0; i < b.N; i++ {
			var enc baseline.DeltaEncoder
			ints = 0
			for j, e := range events {
				d := enc.Encode(fmt.Sprintf("%d-%d", e.Thread, e.Object), stamps[j])
				ints += d.Ints()
			}
		}
		b.ReportMetric(float64(ints)/float64(len(events)), "ints/event")
	})
	b.Run("full", func(b *testing.B) {
		var ints int
		for i := 0; i < b.N; i++ {
			ints = 0
			for j := range events {
				ints += len(stamps[j])
			}
		}
		b.ReportMetric(float64(ints)/float64(len(events)), "ints/event")
	})
}

// BenchmarkTracker measures the live tracker under goroutine contention.
func BenchmarkTracker(b *testing.B) {
	for _, objects := range []int{1, 16} {
		b.Run(fmt.Sprintf("objects=%d", objects), func(b *testing.B) {
			tracker := mixedclock.NewTracker()
			objs := make([]*mixedclock.Object, objects)
			for i := range objs {
				objs[i] = tracker.NewObject("o")
			}
			b.RunParallel(func(pb *testing.PB) {
				th := tracker.NewThread("w")
				i := 0
				for pb.Next() {
					th.Write(objs[i%len(objs)], nil)
					i++
				}
			})
		})
	}
}

// BenchmarkTrackerParallel measures tracker throughput across a goroutine ×
// object grid on both clock backends — the scaling benchmark for the sharded
// hot path. Each goroutine drives its own Thread (as the API requires) over
// a slice of shared objects; with the global tracker lock gone, the only
// cross-goroutine contention left is the object stripes, the sharded world
// barrier's per-thread reader counts (track/world.go), and the padded trace
// index — the goroutines=32 point is where the per-shard cache-line padding
// shows up on many-core runners. CI's benchmark-regression gate compares
// this (and BenchmarkBackends) against the PR base via benchstat +
// cmd/benchdiff.
func BenchmarkTrackerParallel(b *testing.B) {
	for _, backend := range []mixedclock.Backend{mixedclock.Flat, mixedclock.Tree} {
		for _, goroutines := range []int{1, 2, 4, 8, 32} {
			for _, objects := range []int{8, 64} {
				name := fmt.Sprintf("%v/goroutines=%d/objects=%d", backend, goroutines, objects)
				b.Run(name, func(b *testing.B) {
					tracker := mixedclock.NewTracker(mixedclock.WithBackend(backend))
					objs := make([]*mixedclock.Object, objects)
					for i := range objs {
						objs[i] = tracker.NewObject("o")
					}
					threads := make([]*mixedclock.Thread, goroutines)
					for i := range threads {
						threads[i] = tracker.NewThread("w")
					}
					b.ResetTimer()
					var wg sync.WaitGroup
					for g := 0; g < goroutines; g++ {
						wg.Add(1)
						go func(th *mixedclock.Thread, g int) {
							defer wg.Done()
							// Mostly-private slice of objects with periodic
							// crossings, so causality actually flows between
							// goroutines without serializing every op. The
							// crossing index advances with i/16 (decoupled
							// from the %16 phase) so crossings sweep the
							// whole object set from every goroutine.
							n := b.N / goroutines
							for i := 0; i < n; i++ {
								var o *mixedclock.Object
								if i%16 == 0 {
									o = objs[(i/16+g)%len(objs)]
								} else {
									o = objs[(g*7+i*goroutines)%len(objs)]
								}
								th.Write(o, nil)
							}
						}(threads[g], g)
					}
					wg.Wait()
					b.StopTimer()
					if err := tracker.Err(); err != nil {
						b.Fatal(err)
					}
					b.ReportMetric(float64(tracker.Events())/b.Elapsed().Seconds(), "ops/s")
				})
			}
		}
	}
}

// BenchmarkTrackerParallelContended is the contention-heavy shape that
// motivates batching: many goroutines hammering a FEW shared objects, so the
// object stripes and the trace-index counter are the bottleneck rather than
// the clock work. Both commit paths run the identical event sequence — each
// goroutine works one object for a run of 16 operations, then switches —
// so do vs batch16 isolates pure synchronization amortization: one stripe
// hold, one world-shard hold, one cover load and one index fetch per batch
// instead of per event. read-heavy is 90% reads (shared stripe mode for Do,
// which batching trades for a briefer exclusive hold), write-heavy 90%
// writes. CI's regression gate tracks this grid; the batch16 points are the
// ones the batched-commit work must keep ≥25% under their do twins at 8+
// goroutines.
func BenchmarkTrackerParallelContended(b *testing.B) {
	const objects, run = 2, 16
	for _, shape := range []string{"write-heavy", "read-heavy"} {
		for _, goroutines := range []int{8, 32} {
			for _, commit := range []string{"do", "batch16"} {
				name := fmt.Sprintf("%s/goroutines=%d/%s", shape, goroutines, commit)
				b.Run(name, func(b *testing.B) {
					var tracker *mixedclock.Tracker
					var objs []*mixedclock.Object
					var threads []*mixedclock.Thread
					build := func() {
						tracker = mixedclock.NewTracker()
						objs = objs[:0]
						for i := 0; i < objects; i++ {
							objs = append(objs, tracker.NewObject("hot"))
						}
						threads = threads[:0]
						for i := 0; i < goroutines; i++ {
							threads = append(threads, tracker.NewThread("w"))
						}
					}
					// The shared op mix: one run's worth, 90/10 by shape.
					ops := make([]mixedclock.Op, run)
					for k := range ops {
						if (shape == "read-heavy") != (k%10 == 0) {
							ops[k] = mixedclock.OpRead
						}
					}
					build()
					events := 0
					b.ReportAllocs()
					b.ResetTimer()
					// Bounded rounds, rebuilding the tracker outside the
					// timer between them: the unmerged record buffers grow
					// with every commit (nothing seals here), and an
					// unbounded b.N-sized run measures GC pressure instead
					// of the commit paths.
					for remaining := b.N; remaining > 0; {
						perG := (1 << 17) / goroutines / run
						if left := remaining / goroutines / run; left < perG {
							perG = left
						}
						if perG == 0 {
							perG = 1
						}
						var wg sync.WaitGroup
						for g := 0; g < goroutines; g++ {
							wg.Add(1)
							go func(th *mixedclock.Thread, g int) {
								defer wg.Done()
								for i := 0; i < perG; i++ {
									o := objs[(g+i)%objects]
									if commit == "batch16" {
										th.DoBatch(o, ops)
										continue
									}
									for k := 0; k < run; k++ {
										if ops[k] == mixedclock.OpRead {
											th.Read(o, nil)
										} else {
											th.Write(o, nil)
										}
									}
								}
							}(threads[g], g)
						}
						wg.Wait()
						remaining -= perG * goroutines * run
						events += perG * goroutines * run
						if remaining > 0 {
							b.StopTimer()
							if err := tracker.Err(); err != nil {
								b.Fatal(err)
							}
							build()
							b.StartTimer()
						}
					}
					b.StopTimer()
					if err := tracker.Err(); err != nil {
						b.Fatal(err)
					}
					b.ReportMetric(float64(events)/b.Elapsed().Seconds(), "ops/s")
				})
			}
		}
	}
}

// BenchmarkBatch measures the batched commit path in isolation across batch
// sizes: ns and bytes per OPERATION (b.N counts operations, not batches).
// size=1 prices the batch wrapper against plain Do; size=16 and size=256
// show the amortization curve — the per-batch synchronization and the one
// []Stamped allocation spread across the batch, with the per-op clock work
// unchanged. CI's -benchmem gate locks in that B/op shrinks, never grows,
// as the batch widens.
func BenchmarkBatch(b *testing.B) {
	for _, size := range []int{1, 16, 256} {
		b.Run(fmt.Sprintf("size=%d", size), func(b *testing.B) {
			var th *mixedclock.Thread
			var o *mixedclock.Object
			build := func() {
				tracker := mixedclock.NewTracker()
				th = tracker.NewThread("w")
				o = tracker.NewObject("o")
				th.Write(o, nil) // reveal the edge outside the timer
			}
			build()
			ops := make([]mixedclock.Op, size)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i += size {
				if i > 0 && i%(1<<18) < size {
					b.StopTimer()
					build()
					b.StartTimer()
				}
				th.DoBatch(o, ops)
			}
		})
	}
}

// BenchmarkStamp measures the Thread.Do hot path in isolation — ns/op and,
// with -benchmem, allocs/op and B/op — across clock widths and both
// backends. The delta stamping pipeline's contract is that both memory
// figures stay flat as k grows (allocs/op ≲ 1 amortized at every width; no
// O(k) flatten per event). Two shapes bracket the commit paths:
//
//   - same-object: a thread re-acquiring one object — the version-cache
//     fast path, O(1) at any width;
//   - alternate: a thread bouncing between two objects — the full
//     update-rule path, where flat pays an O(k) scan (but no allocation)
//     and tree pays only for what changed.
//
// CI's benchmark-regression gate runs this with -benchmem, so the
// allocation wins are locked in alongside the time.
func BenchmarkStamp(b *testing.B) {
	shapes := []string{"same-object", "alternate"}
	for _, shape := range shapes {
		for _, k := range []int{16, 256, 1024} {
			for _, backend := range []mixedclock.Backend{mixedclock.Flat, mixedclock.Tree} {
				name := fmt.Sprintf("%s/%v/k=%d", shape, backend, k)
				b.Run(name, func(b *testing.B) {
					var th *mixedclock.Thread
					var objs []*mixedclock.Object
					// build widens the cover to ~k components (one per
					// private thread-object edge), then registers the hot
					// thread and its objects.
					build := func() {
						tracker := mixedclock.NewTracker(mixedclock.WithBackend(backend))
						for i := 0; i < k; i++ {
							tracker.NewThread("w").Write(tracker.NewObject("p"), nil)
						}
						th = tracker.NewThread("hot")
						objs = objs[:0]
						for i := 0; i < 2; i++ {
							o := tracker.NewObject("hot")
							th.Write(o, nil) // reveal the edge outside the timer
							objs = append(objs, o)
						}
					}
					build()
					b.ReportAllocs()
					b.ResetTimer()
					for i := 0; i < b.N; i++ {
						// Rebuild periodically (outside the timer) so the
						// record buffers don't grow without bound at large
						// b.N; the measured ops always run against a warm
						// tracker.
						if i > 0 && i%(1<<18) == 0 {
							b.StopTimer()
							build()
							b.StartTimer()
						}
						o := objs[0]
						if shape == "alternate" {
							o = objs[i%2]
						}
						th.Write(o, nil)
					}
				})
			}
		}
	}
}

// BenchmarkSnapshotStream compares the two ways of exporting a live
// tracker's history as a delta log: SnapshotTo (the streaming pipeline —
// sealed segments and the tail feed the log writer record by record) versus
// materializing Snapshot() and handing the vector table to WriteLogDelta.
// The contract CI's -benchmem gate locks in: the streaming path's B/op is
// O(1) in the event count — constant writer/reader state, no per-event
// allocation — so it stays flat across the 10× events sweep, while the
// materializing path grows with events × width. The sealed variant seals
// every 4096 events first, so the stream also exercises segment decode
// (its B/op grows only with the segment count, ~3 orders of magnitude
// below the vector table).
func BenchmarkSnapshotStream(b *testing.B) {
	build := func(events int, seal bool) *mixedclock.Tracker {
		var opts []mixedclock.TrackerOption
		if seal {
			opts = append(opts, mixedclock.WithSpill(mixedclock.SpillPolicy{SealEvents: 4096}))
		}
		tracker := mixedclock.NewTracker(opts...)
		const nThreads, nObjects = 8, 32
		threads := make([]*mixedclock.Thread, nThreads)
		for i := range threads {
			threads[i] = tracker.NewThread("w")
		}
		objs := make([]*mixedclock.Object, nObjects)
		for i := range objs {
			objs[i] = tracker.NewObject("o")
		}
		for i := 0; i < events; i++ {
			threads[i%nThreads].Write(objs[(i*7)%nObjects], nil)
		}
		if err := tracker.Err(); err != nil {
			b.Fatal(err)
		}
		return tracker
	}
	for _, events := range []int{5_000, 50_000} {
		plain := build(events, false)
		sealed := build(events, true)
		b.Run(fmt.Sprintf("stream/events=%d", events), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if err := plain.SnapshotTo(io.Discard); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("stream-sealed/events=%d", events), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if err := sealed.SnapshotTo(io.Discard); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("materialize/events=%d", events), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				tr, stamps := plain.Snapshot()
				if err := mixedclock.WriteLogDelta(io.Discard, tr, stamps); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSegmentCompact measures the segment lifecycle manager's tiered
// compaction on both layers, with -benchmem feeding CI's regression gate:
//
//   - merge: tlog.MergeSegments re-encoding a run of small delta segments
//     into one — the pure rewrite cost per compaction pass (streamed, so
//     B/op is the merged container plus bounded reader/writer state);
//   - tracker: a full Tracker.CompactSegments pass over a freshly sealed
//     in-memory history (plan + merge + barrier swap), rebuilt outside the
//     timer each iteration.
func BenchmarkSegmentCompact(b *testing.B) {
	buildSealed := func(segments, perSegment int) *mixedclock.Tracker {
		tracker := mixedclock.NewTracker(
			mixedclock.WithSpill(mixedclock.SpillPolicy{SealEvents: perSegment}))
		const nThreads, nObjects = 4, 8
		threads := make([]*mixedclock.Thread, nThreads)
		for i := range threads {
			threads[i] = tracker.NewThread("w")
		}
		objs := make([]*mixedclock.Object, nObjects)
		for i := range objs {
			objs[i] = tracker.NewObject("o")
		}
		for i := 0; i < segments*perSegment; i++ {
			threads[i%nThreads].Write(objs[(i*3)%nObjects], nil)
		}
		if err := tracker.Err(); err != nil {
			b.Fatal(err)
		}
		return tracker
	}
	for _, segments := range []int{16, 64} {
		b.Run(fmt.Sprintf("merge/segs=%d", segments), func(b *testing.B) {
			// One recorded run, sealed as `segments` raw containers the way
			// the tracker seals its tail, re-merged every iteration from
			// fresh readers.
			tracker := buildSealed(segments, 32)
			full, stamps := tracker.Snapshot()
			var pieces [][]byte
			per := full.Len() / segments
			for s := 0; s < segments; s++ {
				var payload bytes.Buffer
				w := tlog.NewDeltaWriter(&payload)
				widths := make([]int, 0, per)
				for i := s * per; i < (s+1)*per; i++ {
					if err := w.Append(full.At(i), stamps[i]); err != nil {
						b.Fatal(err)
					}
					widths = append(widths, len(stamps[i]))
				}
				if err := w.Flush(); err != nil {
					b.Fatal(err)
				}
				data, err := tlog.AppendSegment(nil,
					tlog.SegmentMeta{FirstIndex: s * per, Count: per}, widths, payload.Bytes())
				if err != nil {
					b.Fatal(err)
				}
				pieces = append(pieces, data)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				readers := make([]io.Reader, len(pieces))
				for j, p := range pieces {
					readers[j] = bytes.NewReader(p)
				}
				if _, err := tlog.MergeSegments(io.Discard, readers...); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("tracker/segs=%d", segments), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				tracker := buildSealed(segments, 8)
				b.StartTimer()
				if _, err := tracker.CompactSegments(mixedclock.CompactPolicy{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// countingSink drains a stream, keeping nothing.
type countingSink struct{ n int }

func (s *countingSink) ConsumeStamp(mixedclock.Event, int, mixedclock.Vector) error {
	s.n++
	return nil
}

// BenchmarkStreamTail measures Stream over a fully unsealed history — the
// double-buffered merged tail, the path PR 5 took off the world barrier.
// The barrier is now held only for the merge+freeze, so ns/op here is the
// replay the tracker no longer stalls commits for; -benchmem locks in that
// the replay allocates only the freeze snapshot (one block slice), not per
// record.
func BenchmarkStreamTail(b *testing.B) {
	for _, events := range []int{5_000, 50_000} {
		tracker := mixedclock.NewTracker()
		const nThreads, nObjects = 8, 32
		threads := make([]*mixedclock.Thread, nThreads)
		for i := range threads {
			threads[i] = tracker.NewThread("w")
		}
		objs := make([]*mixedclock.Object, nObjects)
		for i := range objs {
			objs[i] = tracker.NewObject("o")
		}
		for i := 0; i < events; i++ {
			threads[i%nThreads].Write(objs[(i*7)%nObjects], nil)
		}
		if err := tracker.Err(); err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("events=%d", events), func(b *testing.B) {
			// Warm outside the timer: the first Stream pays the one-off
			// merge/materialization; the gate watches the steady-state
			// replay.
			if err := tracker.Stream(&countingSink{}); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sink := &countingSink{}
				if err := tracker.Stream(sink); err != nil {
					b.Fatal(err)
				}
				if sink.n != events {
					b.Fatalf("streamed %d of %d records", sink.n, events)
				}
			}
		})
	}
}

// BenchmarkGreedyVsOptimalCover times the greedy cover heuristic against
// the exact algorithm (quality is compared in experiment.GreedyVsOptimal).
func BenchmarkGreedyVsOptimalCover(b *testing.B) {
	g, err := bipartite.Generate(bipartite.GenConfig{
		NThreads: 200, NObjects: 200, Density: 0.05,
	}, rand.New(rand.NewSource(29)))
	if err != nil {
		b.Fatal(err)
	}
	b.Run("greedy", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			matching.GreedyCover(g)
		}
	})
	b.Run("konig", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			matching.MinVertexCover(g)
		}
	})
}

// BenchmarkRecover measures track.Open rebuilding a live tracker from a
// spill directory left by a crash: every listed segment verified (size,
// SHA-256, full decode), per-thread and per-object clocks and the component
// cover reconstructed from the resume manifest plus a current-epoch replay,
// and a fresh catalog generation published. The run is built once per
// configuration; every iteration is a full crash recovery. -benchmem locks
// in the reconstruction allocation profile for cmd/benchdiff.
func BenchmarkRecover(b *testing.B) {
	for _, cfg := range []struct{ segments, perSegment int }{
		{8, 512},
		{32, 512},
	} {
		b.Run(fmt.Sprintf("segs=%d/events=%d", cfg.segments, cfg.segments*cfg.perSegment), func(b *testing.B) {
			dir := b.TempDir()
			tracker, err := mixedclock.Open(dir, mixedclock.WithStore(mixedclock.Store{
				Spill: mixedclock.SpillPolicy{SealEvents: cfg.perSegment},
			}))
			if err != nil {
				b.Fatal(err)
			}
			const nThreads, nObjects = 4, 8
			threads := make([]*mixedclock.Thread, nThreads)
			for i := range threads {
				threads[i] = tracker.NewThread(fmt.Sprintf("w%d", i))
			}
			objs := make([]*mixedclock.Object, nObjects)
			for i := range objs {
				objs[i] = tracker.NewObject(fmt.Sprintf("o%d", i))
			}
			for i := 0; i < cfg.segments*cfg.perSegment; i++ {
				threads[i%nThreads].Write(objs[(i*3)%nObjects], nil)
			}
			if err := tracker.Seal(); err != nil {
				b.Fatal(err)
			}
			if err := tracker.Err(); err != nil {
				b.Fatal(err)
			}
			// Abandoned without Close: each iteration below recovers a
			// crashed run, not a cleanly closed one.
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				re, err := mixedclock.Open(dir)
				if err != nil {
					b.Fatal(err)
				}
				ri := re.Recovery()
				if ri == nil || ri.Events != cfg.segments*cfg.perSegment || re.Err() != nil {
					b.Fatalf("unhealthy recovery: %+v, err %v", ri, re.Err())
				}
			}
		})
	}
}

// BenchmarkMonitorLive measures commit throughput with an online Monitor
// riding the seal stream against the same run bare: the cost of live
// detection is the delta between the sub-benches, and because sealed
// segments are evaluated off the commit path it should stay a small
// constant factor, not a stop-the-world one. The monitor runs a bounded
// census window, the exact pair scanner and an order watch; Sync drains
// the tail after the timer stops and the consumed count is verified.
func BenchmarkMonitorLive(b *testing.B) {
	for _, monitored := range []bool{false, true} {
		name := "bare"
		if monitored {
			name = "monitor"
		}
		b.Run(name, func(b *testing.B) {
			tracker, err := mixedclock.Open(b.TempDir(), mixedclock.WithStore(mixedclock.Store{
				Spill: mixedclock.SpillPolicy{SealEvents: 4096},
			}))
			if err != nil {
				b.Fatal(err)
			}
			const nThreads, nObjects = 4, 8
			threads := make([]*mixedclock.Thread, nThreads)
			for i := range threads {
				threads[i] = tracker.NewThread(fmt.Sprintf("w%d", i))
			}
			objs := make([]*mixedclock.Object, nObjects)
			for i := range objs {
				objs[i] = tracker.NewObject(fmt.Sprintf("o%d", i))
			}
			var m *mixedclock.Monitor
			if monitored {
				m = tracker.NewMonitor(mixedclock.MonitorPolicy{Window: 64})
				m.WatchOrder("o1-after-o0",
					func(e mixedclock.Event) bool { return e.Object == 0 && e.Op == mixedclock.OpWrite },
					func(e mixedclock.Event) bool { return e.Object == 1 && e.Op == mixedclock.OpWrite },
				)
				defer m.Close()
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				threads[i%nThreads].Write(objs[(i*3)%nObjects], nil)
			}
			b.StopTimer()
			if err := tracker.Err(); err != nil {
				b.Fatal(err)
			}
			if m != nil {
				if err := m.Sync(); err != nil {
					b.Fatal(err)
				}
				if st := m.Stats(); st.Consumed != tracker.Events() || m.Err() != nil {
					b.Fatalf("monitor consumed %d of %d, err %v", st.Consumed, tracker.Events(), m.Err())
				}
			}
			if err := tracker.Close(); err != nil {
				b.Fatal(err)
			}
		})
	}
}

// BenchmarkLoadgenMixed is the CI gate's end-to-end harness benchmark: one
// complete loadgen run per iteration — warmup then a fixed-op mixed phase
// across 4 workers — per commit style (per-op Do vs batch-16) and clock
// backend. It locks in what `mvc spam` reports: whole-pipeline throughput,
// with the latency histogram and stats collection riding along.
func BenchmarkLoadgenMixed(b *testing.B) {
	for _, backend := range []string{"flat", "tree"} {
		for _, batch := range []int{1, 16} {
			b.Run(fmt.Sprintf("%s/batch%d", backend, batch), func(b *testing.B) {
				b.ReportAllocs()
				var ops int64
				for i := 0; i < b.N; i++ {
					rep, err := loadgen.Run(loadgen.Config{
						Threads:  4,
						Objects:  64,
						ReadFrac: 0.5,
						Ops:      5_000,
						Warmup:   500,
						Batch:    batch,
						Dist:     "uniform",
						Backend:  backend,
						Seed:     int64(i + 1),
					})
					if err != nil {
						b.Fatal(err)
					}
					ops += rep.Ops
				}
				b.ReportMetric(float64(ops)/b.Elapsed().Seconds()/1e6, "mops/s")
			})
		}
	}
}
