package core

import (
	"sync"

	"mixedclock/internal/bipartite"
	"mixedclock/internal/event"
)

// SharedCover makes a CoverTracker safe for concurrent revealers. It is the
// component-discovery path of the live tracker (package track): many
// goroutines observe (thread, object) pairs at once, but after a short
// warm-up almost every pair has been seen before, so the common case must
// not take an exclusive lock.
//
// Observe is the single entry point for the hot path. It answers, in one
// lock acquisition, everything the §III-C update rule needs for an event:
// which of the two endpoints are clock components (their indices) and the
// current clock width. A revealed edge only ever adds components
// (append-only, §IV), so a reader that finds the edge already present can
// serve the lookups under the read lock; only a genuinely new edge upgrades
// to the write lock and runs the mechanism.
type SharedCover struct {
	mu sync.RWMutex
	ct *CoverTracker
}

// NewSharedCover wraps ct for concurrent use. The SharedCover owns ct
// afterwards; callers must not keep revealing through ct directly.
func NewSharedCover(ct *CoverTracker) *SharedCover {
	return &SharedCover{ct: ct}
}

// Observe reveals the edge (t, o) if it is new and returns the tick plan for
// the event: the component indices of thread t and object o (-1 when the
// endpoint is not a component) and the current clock width. The cover
// invariant guarantees at least one index is non-negative for any edge the
// mechanism has processed.
func (s *SharedCover) Observe(t event.ThreadID, o event.ObjectID) (thrIdx, objIdx, width int) {
	s.mu.RLock()
	if s.ct.graph.HasEdge(int(t), int(o)) {
		thrIdx, objIdx, width = s.lookupLocked(t, o)
		s.mu.RUnlock()
		return thrIdx, objIdx, width
	}
	s.mu.RUnlock()

	s.mu.Lock()
	// Another goroutine may have revealed the same edge between the two
	// locks; Reveal coalesces duplicates, so re-running it is harmless.
	s.ct.Reveal(t, o)
	thrIdx, objIdx, width = s.lookupLocked(t, o)
	s.mu.Unlock()
	return thrIdx, objIdx, width
}

// lookupLocked resolves the component indices of an edge's endpoints and the
// clock width. Callers hold s.mu in either mode.
func (s *SharedCover) lookupLocked(t event.ThreadID, o event.ObjectID) (thrIdx, objIdx, width int) {
	thrIdx, objIdx = -1, -1
	if i, ok := s.ct.comps.IndexOf(ThreadComponent(t)); ok {
		thrIdx = i
	}
	if i, ok := s.ct.comps.IndexOf(ObjectComponent(o)); ok {
		objIdx = i
	}
	return thrIdx, objIdx, s.ct.comps.Len()
}

// Size returns the current vector-clock size.
func (s *SharedCover) Size() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.ct.Size()
}

// Components returns a copy of the current component set.
func (s *SharedCover) Components() []Component {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.ct.Components().Components()
}

// ComponentsString renders the component set (for error messages).
func (s *SharedCover) ComponentsString() string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.ct.Components().String()
}

// Graph returns the revealed thread–object graph. The graph is shared, not
// copied: callers must quiesce all revealers first (the live tracker calls
// this only under its compaction barrier).
func (s *SharedCover) Graph() *bipartite.Graph {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.ct.Graph()
}

// Mechanism returns the driving mechanism.
func (s *SharedCover) Mechanism() Mechanism {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.ct.Mechanism()
}
