package vclock

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestCodecRoundTrip(t *testing.T) {
	tests := []Vector{
		nil,
		{},
		{0},
		{1},
		{1, 2, 3},
		{0, 0, 7},
		{1 << 40, 0, 1 << 63},
	}
	for _, v := range tests {
		data, err := v.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		var got Vector
		if err := got.UnmarshalBinary(data); err != nil {
			t.Fatalf("decode %v: %v", v, err)
		}
		if !got.Equal(v) {
			t.Errorf("round trip %v -> %v", v, got)
		}
	}
}

func TestCodecCanonical(t *testing.T) {
	// Vectors equal under Compare encode identically: trailing zeros trim.
	a, _ := Vector{1, 2}.MarshalBinary()
	b, _ := Vector{1, 2, 0, 0}.MarshalBinary()
	if !bytes.Equal(a, b) {
		t.Fatalf("encodings differ: %x vs %x", a, b)
	}
	empty, _ := Vector{0, 0}.MarshalBinary()
	if len(empty) != 1 || empty[0] != 0 {
		t.Fatalf("all-zero vector encodes as %x, want 00", empty)
	}
}

func TestCodecRoundTripQuick(t *testing.T) {
	f := func(raw []uint16) bool {
		v := make(Vector, len(raw))
		for i, x := range raw {
			v[i] = uint64(x)
		}
		data := v.AppendBinary(nil)
		got, used, err := DecodeVector(data)
		return err == nil && used == len(data) && got.Equal(v)
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Error(err)
	}
}

func TestDecodeVectorStream(t *testing.T) {
	// Multiple vectors concatenated decode sequentially via DecodeVector.
	var buf []byte
	vs := []Vector{{1}, {2, 3}, nil}
	for _, v := range vs {
		buf = v.AppendBinary(buf)
	}
	off := 0
	for i, want := range vs {
		got, used, err := DecodeVector(buf[off:])
		if err != nil {
			t.Fatalf("vector %d: %v", i, err)
		}
		if !got.Equal(want) {
			t.Fatalf("vector %d: got %v, want %v", i, got, want)
		}
		off += used
	}
	if off != len(buf) {
		t.Fatalf("consumed %d of %d bytes", off, len(buf))
	}
}

func TestCodecErrors(t *testing.T) {
	var v Vector
	if err := v.UnmarshalBinary(nil); err == nil {
		t.Error("empty input accepted")
	}
	if err := v.UnmarshalBinary([]byte{3, 1}); err == nil {
		t.Error("truncated components accepted")
	}
	if err := v.UnmarshalBinary([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01}); err == nil {
		t.Error("absurd component count accepted")
	}
	good := Vector{1}.AppendBinary(nil)
	if err := v.UnmarshalBinary(append(good, 0x05)); err == nil {
		t.Error("trailing bytes accepted")
	}
}

func TestCodecCompactness(t *testing.T) {
	// Small values take one byte each: a 3-component vector of small
	// counters is 4 bytes, versus 24 for fixed 64-bit words.
	v := Vector{7, 1, 120}
	data, _ := v.MarshalBinary()
	if len(data) != 4 {
		t.Fatalf("encoding is %d bytes, want 4", len(data))
	}
}
