package tlog

import (
	"bytes"
	"math/rand"
	"testing"

	"mixedclock/internal/clock"
	"mixedclock/internal/core"
	"mixedclock/internal/event"
	"mixedclock/internal/vclock"
)

func benchComputation(b *testing.B, events int) (*event.Trace, []vclock.Vector) {
	b.Helper()
	rng := rand.New(rand.NewSource(3))
	tr := event.NewTrace()
	for i := 0; i < events; i++ {
		tr.Append(event.ThreadID(rng.Intn(16)), event.ObjectID(rng.Intn(16)), event.OpWrite)
	}
	return tr, clock.Run(tr, core.AnalyzeTrace(tr).NewClock())
}

func BenchmarkWriteAll(b *testing.B) {
	tr, stamps := benchComputation(b, 10_000)
	var buf bytes.Buffer
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf.Reset()
		if err := WriteAll(&buf, tr, stamps); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(buf.Len())/float64(tr.Len()), "bytes/event")
}

func BenchmarkReadAll(b *testing.B) {
	tr, stamps := benchComputation(b, 10_000)
	var buf bytes.Buffer
	if err := WriteAll(&buf, tr, stamps); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := ReadAll(bytes.NewReader(data)); err != nil {
			b.Fatal(err)
		}
	}
}

// burstyComputation builds the workload shape the delta format targets:
// each thread performs runs of operations on one object over a wide clock,
// so consecutive per-thread stamps differ in a handful of components.
func burstyComputation(b *testing.B) (*event.Trace, []vclock.Vector) {
	b.Helper()
	rng := rand.New(rand.NewSource(17))
	const threads, objects, bursts, burstLen = 48, 48, 6, 8
	tr := event.NewTrace()
	for round := 0; round < bursts; round++ {
		for tid := 0; tid < threads; tid++ {
			obj := event.ObjectID(rng.Intn(objects))
			for k := 0; k < burstLen; k++ {
				tr.Append(event.ThreadID(tid), obj, event.OpWrite)
			}
		}
	}
	return tr, clock.Run(tr, core.AnalyzeTrace(tr).NewClock())
}

// BenchmarkLogEncode compares the full and delta writers on the same bursty
// computation: ns/op, allocs (the delta writer's steady state allocates
// nothing per event) and encoded bytes/event — the file-size half of the
// comparison.
func BenchmarkLogEncode(b *testing.B) {
	tr, stamps := burstyComputation(b)
	shapes := []struct {
		name  string
		write func(*bytes.Buffer) error
	}{
		{"full", func(buf *bytes.Buffer) error { return WriteAll(buf, tr, stamps) }},
		{"delta", func(buf *bytes.Buffer) error { return WriteAllDelta(buf, tr, stamps) }},
	}
	for _, s := range shapes {
		b.Run(s.name, func(b *testing.B) {
			var buf bytes.Buffer
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				buf.Reset()
				if err := s.write(&buf); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(buf.Len())/float64(tr.Len()), "bytes/event")
		})
	}
}

// BenchmarkLogDecode compares reading the two formats back.
func BenchmarkLogDecode(b *testing.B) {
	tr, stamps := burstyComputation(b)
	var full, delta bytes.Buffer
	if err := WriteAll(&full, tr, stamps); err != nil {
		b.Fatal(err)
	}
	if err := WriteAllDelta(&delta, tr, stamps); err != nil {
		b.Fatal(err)
	}
	for _, s := range []struct {
		name string
		data []byte
	}{{"full", full.Bytes()}, {"delta", delta.Bytes()}} {
		b.Run(s.name, func(b *testing.B) {
			b.ReportAllocs()
			b.SetBytes(int64(len(s.data)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := ReadAll(bytes.NewReader(s.data)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
